package lia

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand/v2"
	"reflect"
	"testing"
)

// rebStars builds k link-disjoint star components of n paths each.
func rebStars(k, n int) []Path {
	var paths []Path
	for c := 0; c < k; c++ {
		base, beacon := c*1000, 100*(c+1)
		for i := 0; i < n; i++ {
			paths = append(paths, Path{Beacon: beacon, Dst: beacon + 1 + i, Links: []int{base, base + 1 + i}})
		}
	}
	return paths
}

// rebSnapshots synthesizes m Gaussian snapshots over rm (same construction
// as the exported-API tests, local to the internal package).
func rebSnapshots(rm *RoutingMatrix, m int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 17))
	sigma := make([]float64, rm.NumLinks())
	for k := range sigma {
		sigma[k] = 1e-3 * (1 + rng.Float64())
	}
	snaps := make([][]float64, m)
	x := make([]float64, rm.NumLinks())
	for t := range snaps {
		for k := range x {
			x[k] = rng.NormFloat64() * sigma[k]
		}
		y := make([]float64, rm.NumPaths())
		for i := range y {
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		snaps[t] = y
	}
	return snaps
}

func TestLPTGroups(t *testing.T) {
	got := lptGroups([]float64{5, 1, 4, 2, 2}, 2)
	// Descending cost order 0(5), 2(4), 3(2), 4(2), 1(1), each to the
	// lightest group (ties to the lower index): {0,4} and {2,3,1}.
	want := [][]int{{0, 4}, {2, 3, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lptGroups = %v, want %v", got, want)
	}
	if c := maxGroupCost(got, []float64{5, 1, 4, 2, 2}); c != 7 {
		t.Fatalf("maxGroupCost = %g, want 7", c)
	}
	// Equal costs tie-break by index, deterministically.
	if got := lptGroups([]float64{3, 3, 3, 3}, 2); !reflect.DeepEqual(got, [][]int{{0, 2}, {1, 3}}) {
		t.Fatalf("tie-broken lptGroups = %v, want [[0 2] [1 3]]", got)
	}
}

// rebEngine builds a ShardedEngine over four equal star components grouped
// into two rebuild shards — the static LPT pairing is {0,2} / {1,3}.
func rebEngine(t *testing.T, options ...Option) *ShardedEngine {
	t.Helper()
	rm, err := NewTopology(rebStars(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(rm, append([]Option{WithShards(2)}, options...)...)
	if err != nil {
		t.Fatal(err)
	}
	if got := se.ShardGroups(); !reflect.DeepEqual(got, [][]int{{0, 2}, {1, 3}}) {
		t.Fatalf("static grouping = %v, want [[0 2] [1 3]]", got)
	}
	return se
}

// TestMaybeRebalanceHysteresis pins the adoption rule: with measured costs
// {10,1,10,1} the static {0,2}/{1,3} wave costs 20 while a fresh LPT
// grouping costs 11 — adopted under the default θ=0.5 (11·1.5 < 20). With
// {10,6,10,6} the candidate only cuts 20 to 16 — inside the hysteresis band
// at θ=0.5 (rejected), a strict improvement at θ=0 (adopted), and never
// considered when rebalancing is disabled.
func TestMaybeRebalanceHysteresis(t *testing.T) {
	cases := []struct {
		name  string
		theta Option
		cost  []float64
		adopt bool
	}{
		{"default theta clear win", nil, []float64{10, 1, 10, 1}, true},
		{"default theta inside band", nil, []float64{10, 6, 10, 6}, false},
		{"zero theta strict improvement", WithRebalance(0), []float64{10, 6, 10, 6}, true},
		{"disabled", WithRebalance(-1), []float64{10, 1, 10, 1}, false},
		{"unmeasured component blocks", nil, []float64{10, 1, 10, 0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var opts []Option
			if tc.theta != nil {
				opts = append(opts, tc.theta)
			}
			se := rebEngine(t, opts...)
			copy(se.rebCost, tc.cost)
			before := se.ShardGroups()
			se.maybeRebalance(*se.groups.Load(), make([]bool, 4))
			after := se.ShardGroups()
			if tc.adopt {
				if se.rebalances.Load() != 1 {
					t.Fatalf("rebalances = %d, want 1", se.rebalances.Load())
				}
				if reflect.DeepEqual(before, after) {
					t.Fatalf("grouping unchanged (%v) despite an adopted rebalance", after)
				}
				if len(after) != len(before) {
					t.Fatalf("rebalance changed the shard count %d -> %d", len(before), len(after))
				}
			} else {
				if se.rebalances.Load() != 0 {
					t.Fatalf("rebalances = %d, want 0", se.rebalances.Load())
				}
				if !reflect.DeepEqual(before, after) {
					t.Fatalf("grouping moved %v -> %v without an adoption", before, after)
				}
			}
		})
	}
}

// TestRebalanceMidStreamBitwise is the losslessness proof the WithRebalance
// contract promises: an engine that re-groups its components mid-stream
// keeps serving variances, inferences and Checkpoint bytes bitwise-equal to
// a never-rebalanced twin fed the identical stream — regrouping moves no
// state, only shard assignments.
func TestRebalanceMidStreamBitwise(t *testing.T) {
	ctx := context.Background()
	reb := rebEngine(t, WithRebalance(0))
	fixed := rebEngine(t, WithRebalance(-1))
	rm := reb.RoutingMatrix()

	stream := rebSnapshots(rm, 60, 11)
	feed := func(ys [][]float64) {
		for _, y := range ys {
			if err := reb.Ingest(y); err != nil {
				t.Fatal(err)
			}
			if err := fixed.Ingest(y); err != nil {
				t.Fatal(err)
			}
		}
	}
	// normalizeCkpt zeroes the wall-clock builtAt stamps (and the CRCs that
	// cover them) in a sharded checkpoint, leaving only moment state: two
	// engines fed the same stream rebuild at different nanoseconds, and that
	// timestamp is the one field the losslessness contract excludes.
	normalizeCkpt := func(t *testing.T, b []byte) []byte {
		t.Helper()
		const hdr = 12 // magic + version + kind + reserved
		out := append([]byte(nil), b...)
		off := hdr + 8 // outer header + u64 epoch
		ncomps := int(binary.LittleEndian.Uint32(out[off:]))
		off += 4
		for c := 0; c < ncomps; c++ {
			n := int(binary.LittleEndian.Uint32(out[off:]))
			off += 4
			nested := out[off : off+n]
			for i := 0; i < 8; i++ {
				nested[hdr+8+i] = 0 // builtAt, after the nested epoch
			}
			for i := n - 4; i < n; i++ {
				nested[i] = 0 // nested CRC
			}
			off += n
		}
		if off != len(out)-4 {
			t.Fatalf("checkpoint layout drifted: %d bytes consumed of %d", off, len(out))
		}
		for i := len(out) - 4; i < len(out); i++ {
			out[i] = 0 // outer CRC
		}
		return out
	}
	compare := func(stage string) {
		rv, err := reb.Variances(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fv, err := fixed.Variances(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for k := range fv {
			if rv[k] != fv[k] {
				t.Fatalf("%s: link %d: rebalanced %g != fixed %g (not bitwise)", stage, k, rv[k], fv[k])
			}
		}
		var rb, fb bytes.Buffer
		if err := reb.Checkpoint(&rb); err != nil {
			t.Fatal(err)
		}
		if err := fixed.Checkpoint(&fb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(normalizeCkpt(t, rb.Bytes()), normalizeCkpt(t, fb.Bytes())) {
			t.Fatalf("%s: checkpoint moment state diverges (%d vs %d bytes)", stage, rb.Len(), fb.Len())
		}
	}

	feed(stream[:40])
	compare("before rebalance")

	// Force a regrouping: skew the measured costs so the static pairing is
	// 2x off the LPT optimum, then let the rebalancer look.
	copy(reb.rebCost, []float64{10, 1, 10, 1})
	reb.maybeRebalance(*reb.groups.Load(), make([]bool, 4))
	if reb.rebalances.Load() == 0 {
		t.Fatal("skewed costs at theta=0 must force a rebalance")
	}
	if reflect.DeepEqual(reb.ShardGroups(), fixed.ShardGroups()) {
		t.Fatal("rebalanced engine still has the static grouping")
	}
	if reb.NumShards() != fixed.NumShards() {
		t.Fatalf("rebalance changed the shard count: %d vs %d", reb.NumShards(), fixed.NumShards())
	}

	feed(stream[40:])
	compare("after rebalance")

	probe := rebSnapshots(rm, 1, 99)[0]
	rres, err := reb.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := fixed.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for k := range fres.LossRates {
		if rres.LossRates[k] != fres.LossRates[k] || rres.LogRates[k] != fres.LogRates[k] {
			t.Fatalf("link %d: inference diverged after rebalance", k)
		}
	}
	if got := reb.Stats().Rebalances; got < 1 {
		t.Fatalf("Stats().Rebalances = %d, want >= 1", got)
	}
}
