// Package baseline implements the Smallest Consistent Failure Set (SCFS)
// algorithm of Duffield ("Network tomography of binary network performance
// characteristics", IEEE Trans. IT 2006), the single-snapshot congested-link
// locator the paper compares LIA against in Figure 5, plus a greedy
// set-cover variant usable on mesh topologies (in the spirit of Padmanabhan
// et al.'s server-based inference).
package baseline

import (
	"fmt"
	"math"

	"lia/internal/topology"
)

// PathStatus classifies each path of a snapshot as good or bad. A path is
// bad when its observed loss rate exceeds the length-adjusted threshold
// 1 − (1 − tl)^L, i.e. when it lost more than L good links could explain.
func PathStatus(rm *topology.RoutingMatrix, frac []float64, tl float64) []bool {
	if len(frac) != rm.NumPaths() {
		panic(fmt.Sprintf("baseline: %d fractions for %d paths", len(frac), rm.NumPaths()))
	}
	bad := make([]bool, rm.NumPaths())
	for i, f := range frac {
		l := len(rm.Row(i))
		thresh := 1 - math.Pow(1-tl, float64(l))
		bad[i] = (1 - f) > thresh
	}
	return bad
}

// SCFS computes the smallest consistent failure set on a single-beacon tree
// topology: the set of links closest to the root such that (i) every path
// through a chosen link is bad and (ii) every bad path contains a chosen
// link. It returns a per-virtual-link congestion verdict.
//
// The routing matrix must come from a tree (every path shares the
// root-adjacent prefix structure); mesh inputs should use GreedyCover.
func SCFS(rm *topology.RoutingMatrix, badPath []bool) []bool {
	nc := rm.NumLinks()
	// candidate(k): all paths through k are bad.
	candidate := make([]bool, nc)
	for k := 0; k < nc; k++ {
		paths := rm.PathsThrough(k)
		all := len(paths) > 0
		for _, p := range paths {
			if !badPath[p] {
				all = false
				break
			}
		}
		candidate[k] = all
	}
	// parent(k): the virtual link preceding k on any path through it. In a
	// tree this is unique; -1 for root-adjacent links.
	parent := make([]int, nc)
	for k := range parent {
		parent[k] = -1
	}
	for i := 0; i < rm.NumPaths(); i++ {
		row := rm.OrderedRow(i)
		for j := 1; j < len(row); j++ {
			parent[row[j]] = row[j-1]
		}
	}
	// SCFS: topmost candidates.
	out := make([]bool, nc)
	for k := 0; k < nc; k++ {
		if candidate[k] && (parent[k] == -1 || !candidate[parent[k]]) {
			out[k] = true
		}
	}
	return out
}

// GreedyCover locates congested links on arbitrary topologies: the
// candidates are links appearing on no good path; bad paths are then covered
// greedily by the candidate that explains the most still-unexplained bad
// paths (ties to the smaller link index for determinism).
func GreedyCover(rm *topology.RoutingMatrix, badPath []bool) []bool {
	nc := rm.NumLinks()
	candidate := make([]bool, nc)
	for k := 0; k < nc; k++ {
		ok := true
		for _, p := range rm.PathsThrough(k) {
			if !badPath[p] {
				ok = false
				break
			}
		}
		candidate[k] = ok && len(rm.PathsThrough(k)) > 0
	}
	uncovered := make(map[int]bool)
	for p, bad := range badPath {
		if bad {
			uncovered[p] = true
		}
	}
	out := make([]bool, nc)
	for len(uncovered) > 0 {
		best, bestN := -1, 0
		for k := 0; k < nc; k++ {
			if !candidate[k] || out[k] {
				continue
			}
			n := 0
			for _, p := range rm.PathsThrough(k) {
				if uncovered[p] {
					n++
				}
			}
			if n > bestN {
				best, bestN = k, n
			}
		}
		if best == -1 {
			break // remaining bad paths have no all-bad candidate link
		}
		out[best] = true
		for _, p := range rm.PathsThrough(best) {
			delete(uncovered, p)
		}
	}
	return out
}
