package baseline

import (
	"math/rand/v2"
	"testing"

	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// star builds a one-beacon, three-leaf tree:
//
//	root --1--> a; a --2--> D1, a --3--> b; b --4--> D2, b --5--> D3
func star(t *testing.T) *topology.RoutingMatrix {
	t.Helper()
	rm, err := topology.Build([]topology.Path{
		{Beacon: 0, Dst: 2, Links: []int{1, 2}},
		{Beacon: 0, Dst: 4, Links: []int{1, 3, 4}},
		{Beacon: 0, Dst: 5, Links: []int{1, 3, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func linkOf(t *testing.T, rm *topology.RoutingMatrix, physical int) int {
	t.Helper()
	k, ok := rm.VirtualOf(physical)
	if !ok {
		t.Fatalf("link %d not covered", physical)
	}
	return k
}

func TestSCFSRootExplanation(t *testing.T) {
	rm := star(t)
	// All paths bad → the smallest explanation is the shared root link.
	got := SCFS(rm, []bool{true, true, true})
	root := linkOf(t, rm, 1)
	for k, v := range got {
		if (k == root) != v {
			t.Fatalf("SCFS = %v, want only root link %d", got, root)
		}
	}
}

func TestSCFSLeafExplanation(t *testing.T) {
	rm := star(t)
	// Only path 1 (to D2) bad: its leaf link is the topmost candidate.
	got := SCFS(rm, []bool{false, true, false})
	leaf := linkOf(t, rm, 4)
	for k, v := range got {
		if (k == leaf) != v {
			t.Fatalf("SCFS = %v, want only leaf link %d", got, leaf)
		}
	}
}

func TestSCFSSubtreeExplanation(t *testing.T) {
	rm := star(t)
	// Paths to D2 and D3 bad, D1 good → link 3 (a→b) explains both.
	got := SCFS(rm, []bool{false, true, true})
	mid := linkOf(t, rm, 3)
	for k, v := range got {
		if (k == mid) != v {
			t.Fatalf("SCFS = %v, want only link %d", got, mid)
		}
	}
}

func TestSCFSNothingBad(t *testing.T) {
	rm := star(t)
	got := SCFS(rm, []bool{false, false, false})
	for _, v := range got {
		if v {
			t.Fatal("SCFS should identify nothing when no path is bad")
		}
	}
}

func TestGreedyCoverMatchesSCFSOnTree(t *testing.T) {
	rm := star(t)
	for _, bad := range [][]bool{
		{true, true, true},
		{false, true, true},
		{true, false, false},
	} {
		s := SCFS(rm, bad)
		g := GreedyCover(rm, bad)
		for k := range s {
			if s[k] != g[k] {
				t.Fatalf("bad=%v: SCFS %v != GreedyCover %v", bad, s, g)
			}
		}
	}
}

func TestPathStatusLengthAdjusted(t *testing.T) {
	rm := star(t)
	// Path 0 has 2 links: threshold 1−(1−tl)² ≈ 0.004.
	frac := []float64{1 - 0.003, 1 - 0.05, 1}
	bad := PathStatus(rm, frac, 0.002)
	if bad[0] {
		t.Error("path 0 at 0.003 loss over 2 links should be good")
	}
	if !bad[1] {
		t.Error("path 1 at 5% loss should be bad")
	}
	if bad[2] {
		t.Error("lossless path should be good")
	}
}

// TestSCFSVersusTruthOnSimulatedTree checks the Figure 5 shape: SCFS from a
// single snapshot finds most congested links but with noticeably lower
// detection than LIA achieves with many snapshots (asserted in core's tests).
func TestSCFSVersusTruthOnSimulatedTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	net := topogen.Tree(rng, 300, 10)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	scen := lossmodel.NewScenario(lossmodel.Config{Model: lossmodel.LLRD1, Fraction: 0.1}, rng, rm.NumLinks())
	sim := netsim.New(rm, netsim.Config{Probes: 1000, Seed: 5})
	snap := sim.Run(scen.Rates())
	truth := make([]bool, rm.NumLinks())
	for k, q := range scen.Rates() {
		truth[k] = q > lossmodel.Threshold
	}
	got := SCFS(rm, PathStatus(rm, snap.Frac, lossmodel.Threshold))
	det := stats.Detect(truth, got)
	if det.DR < 0.4 {
		t.Errorf("SCFS DR = %.3f, implausibly low", det.DR)
	}
	if det.DR > 0.98 {
		t.Errorf("SCFS DR = %.3f: single-snapshot SCFS should trail LIA", det.DR)
	}
}
