// Package linalg provides the dense and structured linear algebra used by the
// loss-inference pipeline: Householder QR (plain and column-pivoted),
// Cholesky factorization, least-squares solvers and rank estimation.
//
// It is written from scratch on the standard library so that the repository
// has no external dependencies. The implementations follow Golub & Van Loan,
// "Matrix Computations" (the reference the paper itself cites for its
// orthogonal-triangular factorizations).
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty matrix; use NewDense to allocate one with a
// shape. Methods panic on out-of-range indices and on dimension mismatches:
// those are programmer errors, not runtime conditions.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds an r×c matrix from row-major data. The slice is copied.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %d×%d", len(data), r, c))
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes y = M·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec length %d != cols %d", len(x), m.cols))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec computes y = Mᵀ·x.
func (m *Dense) TMulVec(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("linalg: TMulVec length %d != rows %d", len(x), m.rows))
	}
	y := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Mul computes the product M·B as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul %d×%d by %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// MaxAbs returns the largest absolute entry (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// SelectColumns returns a new matrix made of the given columns, in order.
func (m *Dense) SelectColumns(cols []int) *Dense {
	out := NewDense(m.rows, len(cols))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := range cols {
			dst[k] = src[j]
		}
	}
	return out
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %d×%d", m.rows, m.cols)
	if m.rows > maxShow || m.cols > maxShow {
		return b.String()
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("\n  ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .4g ", m.At(i, j))
		}
	}
	return b.String()
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(x []float64) float64 {
	// Scaled to avoid overflow/underflow, as in LAPACK's dnrm2.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}
