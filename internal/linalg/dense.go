// Package linalg provides the dense and structured linear algebra used by the
// loss-inference pipeline: Householder QR (plain and column-pivoted),
// Cholesky factorization, least-squares solvers and rank estimation.
//
// It is written from scratch on the standard library so that the repository
// has no external dependencies. The implementations follow Golub & Van Loan,
// "Matrix Computations" (the reference the paper itself cites for its
// orthogonal-triangular factorizations).
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty matrix; use NewDense to allocate one with a
// shape. Methods panic on out-of-range indices and on dimension mismatches:
// those are programmer errors, not runtime conditions.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds an r×c matrix from row-major data. The slice is copied.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %d×%d", len(data), r, c))
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes y = M·x as a new vector. Hot paths that already own a
// destination should call MulVecTo instead.
func (m *Dense) MulVec(x []float64) []float64 {
	y := make([]float64, m.rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes dst = M·x in place without allocating. dst and x must
// not alias.
func (m *Dense) MulVecTo(dst, x []float64) {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVecTo length %d != cols %d", len(x), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: MulVecTo dst length %d != rows %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = DotUnrolled(m.Row(i), x)
	}
}

// TMulVec computes y = Mᵀ·x as a new vector. Hot paths that already own a
// destination should call TMulVecTo instead.
func (m *Dense) TMulVec(x []float64) []float64 {
	y := make([]float64, m.cols)
	m.TMulVecTo(y, x)
	return y
}

// TMulVecTo computes dst = Mᵀ·x in place without allocating — row-major
// axpy passes, so M is streamed sequentially rather than by column. dst and
// x must not alias.
func (m *Dense) TMulVecTo(dst, x []float64) {
	if len(x) != m.rows {
		panic(fmt.Sprintf("linalg: TMulVecTo length %d != rows %d", len(x), m.rows))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: TMulVecTo dst length %d != cols %d", len(dst), m.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// mulBlock is the k-panel width of the blocked Mul: 128 columns of B
// (1 KiB per row) keep the streamed panel of B resident in L1/L2 while it is
// reused across every row of the output.
const mulBlock = 128

// Mul computes the product M·B as a new matrix, blocked over the inner
// dimension so the active panel of B stays cache-resident across output rows.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul %d×%d by %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for kb := 0; kb < m.cols; kb += mulBlock {
		kend := min(kb+mulBlock, m.cols)
		for i := 0; i < m.rows; i++ {
			arow := m.Row(i)
			orow := out.Row(i)
			for k := kb; k < kend; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bkj := range brow {
					orow[j] += aik * bkj
				}
			}
		}
	}
	return out
}

// transBlock is the square tile edge of the blocked transpose; 32×32
// float64s (8 KiB) fit L1 while both the read and write sides stay on a
// bounded set of cache lines.
const transBlock = 32

// T returns the transpose as a new matrix, copied tile by tile so that the
// strided writes stay within one cache-tile at a time.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for ib := 0; ib < m.rows; ib += transBlock {
		iend := min(ib+transBlock, m.rows)
		for jb := 0; jb < m.cols; jb += transBlock {
			jend := min(jb+transBlock, m.cols)
			for i := ib; i < iend; i++ {
				row := m.data[i*m.cols : (i+1)*m.cols]
				for j := jb; j < jend; j++ {
					t.data[j*t.cols+i] = row[j]
				}
			}
		}
	}
	return t
}

// AddMat adds b elementwise: m += b. It is the merge step of the sharded
// Gram accumulation.
func (m *Dense) AddMat(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: AddMat %d×%d += %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i, v := range b.data {
		m.data[i] += v
	}
}

// MaxAbs returns the largest absolute entry (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// SelectColumns returns a new matrix made of the given columns, in order.
func (m *Dense) SelectColumns(cols []int) *Dense {
	out := NewDense(m.rows, len(cols))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := range cols {
			dst[k] = src[j]
		}
	}
	return out
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %d×%d", m.rows, m.cols)
	if m.rows > maxShow || m.cols > maxShow {
		return b.String()
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("\n  ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .4g ", m.At(i, j))
		}
	}
	return b.String()
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(x []float64) float64 {
	// Scaled to avoid overflow/underflow, as in LAPACK's dnrm2.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(x), len(y)))
	}
	return DotUnrolled(x, y)
}

// DotUnrolled is the 4-way unrolled inner-product kernel behind Dot and
// MulVecTo: four independent partial sums break the loop-carried dependence
// on one accumulator so the FMA units stay busy. len(y) must be ≥ len(x);
// extra entries of y are ignored.
func DotUnrolled(x, y []float64) float64 {
	n := len(x)
	_ = y[:n] // one bounds check for the whole loop
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}
