package linalg

import (
	"fmt"
	"math"
	"runtime"

	"lia/internal/par"
)

// PivotedQR is a rank-revealing Householder QR factorization with column
// pivoting: A·P = Q·R with the diagonal of R non-increasing in magnitude.
// It is the workhorse behind the rank tests used by the Phase-2 column
// elimination and the identifiability checks (Lemma 2 of the paper).
type PivotedQR struct {
	qr   *Dense
	tau  []float64
	perm []int // perm[k] = original column index now in position k
	m, n int
}

// NewPivotedQR computes the factorization of a (any shape; the input is not
// modified) on a single goroutine.
func NewPivotedQR(a *Dense) *PivotedQR {
	return NewPivotedQRWorkers(a, 1)
}

// pivotColChunk is the fixed width of the column blocks the parallel
// factorization distributes. Every per-column quantity (initial norm,
// reflector application, norm downdate) depends only on its own column, so
// the chunking — and therefore the worker count — never changes a single
// bit of the result; it only changes who computes it.
const pivotColChunk = 64

// minParallelCols is the trailing-matrix width below which the factorization
// stays serial even when workers are available: per-step goroutine dispatch
// dominates narrow updates.
const minParallelCols = 2 * pivotColChunk

// NewPivotedQRWorkers computes the factorization with the per-step column
// updates (the hot loop of the Phase-2 elimination's rank tests) distributed
// over a worker pool. workers == 0 sizes the pool to GOMAXPROCS; values ≤ 1
// run serial. Results are bitwise-identical across worker counts.
func NewPivotedQRWorkers(a *Dense, workers int) *PivotedQR {
	m, n := a.Dims()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < minParallelCols {
		workers = 1
	}
	f := &PivotedQR{qr: a.Clone(), tau: make([]float64, min(m, n)), perm: make([]int, n), m: m, n: n}
	for j := range f.perm {
		f.perm[j] = j
	}
	// Column squared norms, updated as the factorization proceeds.
	norms := make([]float64, n)
	exact := make([]float64, n)
	initNorms := func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float64
			for i := 0; i < m; i++ {
				v := f.qr.At(i, j)
				s += v * v
			}
			norms[j] = s
			exact[j] = s
		}
	}
	// Per-worker reflector-application scratch, reused across steps.
	scratch := make([][]float64, workers)
	scratch[0] = make([]float64, n)
	forChunks := func(from int, do func(lo, hi int, w []float64)) {
		if workers <= 1 || n-from < minParallelCols {
			do(from, n, scratch[0])
			return
		}
		chunks := (n - from + pivotColChunk - 1) / pivotColChunk
		par.Do(workers, chunks, func(worker, c int) {
			if scratch[worker] == nil {
				scratch[worker] = make([]float64, n)
			}
			lo := from + c*pivotColChunk
			do(lo, min(lo+pivotColChunk, n), scratch[worker])
		})
	}
	forChunks(0, func(lo, hi int, _ []float64) { initNorms(lo, hi) })
	steps := min(m, n)
	for k := 0; k < steps; k++ {
		// Pick the remaining column with the largest updated norm.
		best, bestNorm := k, norms[k]
		for j := k + 1; j < n; j++ {
			if norms[j] > bestNorm {
				best, bestNorm = j, norms[j]
			}
		}
		if best != k {
			f.swapColumns(k, best)
			norms[k], norms[best] = norms[best], norms[k]
			exact[k], exact[best] = exact[best], exact[k]
			f.perm[k], f.perm[best] = f.perm[best], f.perm[k]
		}
		f.tau[k] = houseColumn(f.qr, k, k)
		// Apply the reflector and downdate the column norms, chunked over the
		// trailing columns; recompute a norm when cancellation bites (LAPACK
		// dgeqpf). Each column's arithmetic is chunk-local, so the parallel
		// and serial paths produce the same bits.
		forChunks(k+1, func(lo, hi int, w []float64) {
			applyHouseLeftCols(f.qr, k, k, f.tau[k], lo, hi, w)
			for j := lo; j < hi; j++ {
				r := f.qr.At(k, j)
				norms[j] -= r * r
				if norms[j] <= 1e-12*exact[j] || norms[j] < 0 {
					var s float64
					for i := k + 1; i < m; i++ {
						v := f.qr.At(i, j)
						s += v * v
					}
					norms[j] = s
					exact[j] = s
				}
			}
		})
	}
	return f
}

func (f *PivotedQR) swapColumns(a, b int) {
	for i := 0; i < f.m; i++ {
		va, vb := f.qr.At(i, a), f.qr.At(i, b)
		f.qr.Set(i, a, vb)
		f.qr.Set(i, b, va)
	}
}

// Rank returns the numerical rank using the default tolerance
// max(m,n)·eps·|R₀₀| (the usual SVD-style heuristic applied to the pivoted R).
func (f *PivotedQR) Rank() int {
	return f.RankTol(f.defaultTol())
}

func (f *PivotedQR) defaultTol() float64 {
	if len(f.tau) == 0 {
		return 0
	}
	return float64(max(f.m, f.n)) * eps * math.Abs(f.qr.At(0, 0)) * 16
}

// RankTol returns the number of diagonal entries of R with magnitude > tol.
func (f *PivotedQR) RankTol(tol float64) int {
	r := 0
	for k := 0; k < len(f.tau); k++ {
		if math.Abs(f.qr.At(k, k)) > tol {
			r++
		} else {
			break // diagonal is non-increasing in magnitude
		}
	}
	return r
}

// Perm returns the column permutation: position k of the factorization holds
// original column Perm()[k]. The first Rank() entries index a set of linearly
// independent columns of the original matrix.
func (f *PivotedQR) Perm() []int {
	out := make([]int, len(f.perm))
	copy(out, f.perm)
	return out
}

// IndependentColumns returns the original indices of a maximal set of
// linearly independent columns chosen by the pivoting order.
func (f *PivotedQR) IndependentColumns() []int {
	r := f.Rank()
	out := make([]int, r)
	copy(out, f.perm[:r])
	return out
}

// Rank computes the numerical rank of a.
func Rank(a *Dense) int {
	return RankWorkers(a, 1)
}

// RankWorkers computes the numerical rank of a with the pivoted-QR column
// updates distributed over a worker pool (0 = GOMAXPROCS, ≤ 1 serial). The
// result is identical across worker counts.
func RankWorkers(a *Dense, workers int) int {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return 0
	}
	return NewPivotedQRWorkers(a, workers).Rank()
}

// HasFullColumnRank reports whether a has numerically full column rank.
func HasFullColumnRank(a *Dense) bool {
	_, n := a.Dims()
	return Rank(a) == n
}

// SolveMinNorm returns a basic least-squares solution even for rank-deficient
// systems: free (dependent) columns get 0 and the independent columns are
// solved by back substitution in the pivoted factorization.
func (f *PivotedQR) SolveMinNorm(b []float64) []float64 {
	if len(b) != f.m {
		panic(fmt.Sprintf("linalg: SolveMinNorm rhs length %d != rows %d", len(b), f.m))
	}
	y := make([]float64, f.m)
	copy(y, b)
	// Apply Qᵀ.
	for k := 0; k < len(f.tau); k++ {
		tau := f.tau[k]
		if tau == 0 {
			continue
		}
		w := y[k]
		for i := k + 1; i < f.m; i++ {
			w += f.qr.At(i, k) * y[i]
		}
		w *= tau
		y[k] -= w
		for i := k + 1; i < f.m; i++ {
			y[i] -= w * f.qr.At(i, k)
		}
	}
	r := f.Rank()
	z := make([]float64, f.n) // solution in pivoted order
	for k := r - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < r; j++ {
			s -= f.qr.At(k, j) * z[j]
		}
		z[k] = s / f.qr.At(k, k)
	}
	x := make([]float64, f.n)
	for k := 0; k < f.n; k++ {
		x[f.perm[k]] = z[k]
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
