package linalg

import (
	"math/rand/v2"
	"testing"
)

// benchSize matches the Gram-system scale of a mid-size topology
// (nc ≈ a few hundred virtual links).
const benchSize = 256

func benchMat(r, c int) *Dense {
	rng := rand.New(rand.NewPCG(100, 200))
	return randMat(rng, r, c)
}

func BenchmarkMulVecTo(b *testing.B) {
	m := benchMat(benchSize, benchSize)
	x := make([]float64, benchSize)
	dst := make([]float64, benchSize)
	for i := range x {
		x[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(dst, x)
	}
}

func BenchmarkTMulVecTo(b *testing.B) {
	m := benchMat(benchSize, benchSize)
	x := make([]float64, benchSize)
	dst := make([]float64, benchSize)
	for i := range x {
		x[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TMulVecTo(dst, x)
	}
}

func BenchmarkDotUnrolled(b *testing.B) {
	x := make([]float64, 4096)
	y := make([]float64, 4096)
	for i := range x {
		x[i] = float64(i % 17)
		y[i] = float64(i % 13)
	}
	b.ReportAllocs()
	b.SetBytes(4096 * 8 * 2)
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += DotUnrolled(x, y)
	}
	_ = s
}

func BenchmarkBlockedMul(b *testing.B) {
	x := benchMat(benchSize, benchSize)
	y := benchMat(benchSize, benchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkBlockedTranspose(b *testing.B) {
	m := benchMat(1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.T()
	}
}

func BenchmarkCholeskySolveTo(b *testing.B) {
	a := benchMat(benchSize*2, benchSize)
	g := a.T().Mul(a)
	ch, err := NewCholesky(g)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, benchSize)
	dst := make([]float64, benchSize)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	ch.SolveTo(dst, rhs) // warm the lazy workspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SolveTo(dst, rhs)
	}
}

func BenchmarkQRFactorize(b *testing.B) {
	m := benchMat(benchSize*2, benchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewQR(m)
	}
}
