package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestDenseAtSet(t *testing.T) {
	m := NewDense(3, 4)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 8 {
		t.Fatalf("after Add, At(1,2) = %v, want 8", got)
	}
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
}

func TestDenseOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(1, 0) != 4 || m.At(0, 2) != 3 {
		t.Fatalf("unexpected layout: %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad data length")
		}
	}()
	NewDenseFrom(2, 2, []float64{1})
}

func TestDenseMulVec(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
	z := m.TMulVec([]float64{1, 1})
	want := []float64{5, 7, 9}
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("TMulVec = %v, want %v", z, want)
		}
	}
}

func TestDenseMulMatchesManual(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{5, 6, 7, 8})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestDenseTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	m := randomDense(rng, 5, 3)
	tt := m.T().T()
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if tt.At(i, j) != m.At(i, j) {
				t.Fatal("transpose twice is not identity")
			}
		}
	}
}

func TestSelectColumns(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s := m.SelectColumns([]int{2, 0})
	if s.At(0, 0) != 3 || s.At(0, 1) != 1 || s.At(1, 0) != 6 || s.At(1, 1) != 4 {
		t.Fatalf("SelectColumns wrong: %v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(1, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2(3,4) = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
	// Overflow safety: should not produce +Inf for large entries.
	if got := Norm2([]float64{1e308, 1e308}); math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestNorm2Property(t *testing.T) {
	// Property: scaling a vector scales its norm.
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		a, b, c = math.Mod(a, 1e6), math.Mod(b, 1e6), math.Mod(c, 1e6)
		v := []float64{a, b, c}
		n1 := Norm2(v)
		scaled := []float64{2 * a, 2 * b, 2 * c}
		n2 := Norm2(scaled)
		return math.Abs(n2-2*n1) <= 1e-9*(1+n1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestMaxAbs(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, -7, 3, 2})
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
	if got := NewDense(0, 0).MaxAbs(); got != 0 {
		t.Fatalf("MaxAbs(empty) = %v, want 0", got)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewDense(2, 2)
	if s := small.String(); len(s) == 0 {
		t.Error("String() empty for small matrix")
	}
	large := NewDense(100, 100)
	if s := large.String(); len(s) > 64 {
		t.Errorf("String() should elide large matrices, got %q", s)
	}
}
