package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned by least-squares solvers when the system
// matrix does not have full column rank (within tolerance), so a unique
// minimizer does not exist.
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// QR holds a Householder orthogonal-triangular factorization A = Q·R of an
// m×n matrix with m ≥ n. It is the factorization the paper prescribes for
// solving the moment equations (Section 5.1, citing Golub & Van Loan).
type QR struct {
	qr   *Dense    // packed factors: R in the upper triangle, reflectors below
	tau  []float64 // Householder scalar coefficients
	m, n int
	work []float64 // reusable solve workspace (len m); lazily allocated
}

// NewQR computes the Householder QR factorization of a. The input matrix is
// not modified. It requires m ≥ n.
func NewQR(a *Dense) *QR {
	m, n := a.Dims()
	if m < n {
		panic(fmt.Sprintf("linalg: QR requires rows ≥ cols, got %d×%d", m, n))
	}
	f := &QR{qr: a.Clone(), tau: make([]float64, n), m: m, n: n}
	w := make([]float64, n) // reflector-application scratch, shared across steps
	for k := 0; k < n; k++ {
		f.tau[k] = houseColumn(f.qr, k, k)
		applyHouseLeft(f.qr, k, k, f.tau[k], k+1, w)
	}
	return f
}

// houseColumn generates a Householder reflector that annihilates the entries
// of column col below row row, storing the reflector in place. It returns the
// scalar tau; after the call, qr[row,col] holds the resulting R entry and the
// entries below hold the reflector's essential part.
func houseColumn(a *Dense, row, col int) float64 {
	m := a.Rows()
	// norm of a[row:m, col]
	var normSq float64
	for i := row + 1; i < m; i++ {
		v := a.At(i, col)
		normSq += v * v
	}
	alpha := a.At(row, col)
	if normSq == 0 {
		// Already triangular in this column; reflector is identity.
		return 0
	}
	beta := math.Sqrt(alpha*alpha + normSq)
	if alpha > 0 {
		beta = -beta
	}
	// v = x - beta·e1, normalized so v[0] = 1.
	v0 := alpha - beta
	for i := row + 1; i < m; i++ {
		a.Set(i, col, a.At(i, col)/v0)
	}
	a.Set(row, col, beta)
	return (beta - alpha) / beta
}

// applyHouseLeft applies the reflector stored in column col (with pivot at
// row) to columns [fromCol, n) of a: A ← (I − τ·v·vᵀ)·A.
func applyHouseLeft(a *Dense, row, col int, tau float64, fromCol int, w []float64) {
	_, n := a.Dims()
	applyHouseLeftCols(a, row, col, tau, fromCol, n, w)
}

// applyHouseLeftCols applies the reflector to the column range [lo, hi)
// only. It runs as two row-major sweeps through the scratch vector w
// (len ≥ hi): w ← τ·(vᵀ·A), then A ← A − v·w. Streaming whole rows instead
// of walking columns keeps the trailing submatrix on sequential cache lines
// and needs one bounds check per row rather than one per element. Because
// every write lands inside [lo, hi), disjoint ranges can be updated
// concurrently — the parallel pivoted QR partitions the trailing matrix
// this way — and each column's arithmetic is independent of the ranging,
// so chunked application is bitwise-identical to one full sweep.
func applyHouseLeftCols(a *Dense, row, col int, tau float64, lo, hi int, w []float64) {
	if tau == 0 || lo >= hi {
		return
	}
	m, _ := a.Dims()
	w = w[:hi]
	prow := a.Row(row)
	copy(w[lo:], prow[lo:hi])
	for i := row + 1; i < m; i++ {
		ri := a.Row(i)
		vi := ri[col]
		if vi == 0 {
			continue
		}
		for j := lo; j < hi; j++ {
			w[j] += vi * ri[j]
		}
	}
	for j := lo; j < hi; j++ {
		w[j] *= tau
		prow[j] -= w[j]
	}
	for i := row + 1; i < m; i++ {
		ri := a.Row(i)
		vi := ri[col]
		if vi == 0 {
			continue
		}
		for j := lo; j < hi; j++ {
			ri[j] -= vi * w[j]
		}
	}
}

// applyQT computes y ← Qᵀ·y in place using the stored reflectors.
func (f *QR) applyQT(y []float64) {
	for k := 0; k < f.n; k++ {
		tau := f.tau[k]
		if tau == 0 {
			continue
		}
		w := y[k]
		for i := k + 1; i < f.m; i++ {
			w += f.qr.At(i, k) * y[i]
		}
		w *= tau
		y[k] -= w
		for i := k + 1; i < f.m; i++ {
			y[i] -= w * f.qr.At(i, k)
		}
	}
}

// RCond crudely estimates the reciprocal condition of R via the ratio of the
// smallest to largest diagonal magnitude. Zero means numerically singular.
func (f *QR) RCond() float64 {
	if f.n == 0 {
		return 1
	}
	minD, maxD := math.Inf(1), 0.0
	for k := 0; k < f.n; k++ {
		d := math.Abs(f.qr.At(k, k))
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		return 0
	}
	return minD / maxD
}

// Solve returns the least-squares solution x minimizing ‖A·x − b‖₂.
// It returns ErrRankDeficient when R has a (numerically) zero diagonal entry.
// The factorization's scratch workspace is reused across calls, so a QR
// value must not be shared by concurrent solvers.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		panic(fmt.Sprintf("linalg: QR.Solve rhs length %d != rows %d", len(b), f.m))
	}
	if f.work == nil {
		f.work = make([]float64, f.m)
	}
	y := f.work
	copy(y, b)
	f.applyQT(y)
	// Back substitution on the n×n upper triangle.
	x := make([]float64, f.n)
	tol := float64(f.m) * eps * f.maxDiag()
	for k := f.n - 1; k >= 0; k-- {
		d := f.qr.At(k, k)
		if math.Abs(d) <= tol {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrRankDeficient, k)
		}
		s := y[k]
		for j := k + 1; j < f.n; j++ {
			s -= f.qr.At(k, j) * x[j]
		}
		x[k] = s / d
	}
	return x, nil
}

func (f *QR) maxDiag() float64 {
	var mx float64
	for k := 0; k < f.n; k++ {
		if d := math.Abs(f.qr.At(k, k)); d > mx {
			mx = d
		}
	}
	if mx == 0 {
		return 1
	}
	return mx
}

const eps = 2.220446049250313e-16 // IEEE-754 double machine epsilon

// SolveLeastSquares is a convenience wrapper: QR-factorize a and solve for b.
func SolveLeastSquares(a *Dense, b []float64) ([]float64, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("linalg: under-determined system %d×%d: %w", m, n, ErrRankDeficient)
	}
	return NewQR(a).Solve(b)
}
