package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by NewCholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix G = L·Lᵀ. It is used to solve the normal equations
// AᵀA·v = AᵀΣ* assembled by the scalable variance estimator.
type Cholesky struct {
	l    *Dense
	n    int
	work []float64 // reusable solve workspace (len n); lazily allocated
}

// NewCholesky factorizes the symmetric matrix g (only the lower triangle is
// read). It fails with ErrNotPositiveDefinite on a non-positive pivot.
func NewCholesky(g *Dense) (*Cholesky, error) {
	n, c := g.Dims()
	if n != c {
		panic(fmt.Sprintf("linalg: Cholesky of non-square %d×%d", n, c))
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := g.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, j, d)
		}
		dj := math.Sqrt(d)
		lrowj[j] = dj
		for i := j + 1; i < n; i++ {
			s := g.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s / dj
		}
	}
	return &Cholesky{l: l, n: n}, nil
}

// NewCholeskyRegularized retries the factorization with an increasing ridge
// term λ·diag(G) until it succeeds, returning the factor and the λ used.
// It lets the normal-equations solver survive nearly-dependent augmented
// matrix columns caused by sampling noise.
func NewCholeskyRegularized(g *Dense) (*Cholesky, float64, error) {
	ch, err := NewCholesky(g)
	if err == nil {
		return ch, 0, nil
	}
	n, _ := g.Dims()
	var maxDiag float64
	for i := 0; i < n; i++ {
		if d := math.Abs(g.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		maxDiag = 1
	}
	for lambda := 1e-12; lambda <= 1e-2; lambda *= 100 {
		r := g.Clone()
		for i := 0; i < n; i++ {
			r.Add(i, i, lambda*maxDiag)
		}
		if ch, err := NewCholesky(r); err == nil {
			return ch, lambda, nil
		}
	}
	return nil, 0, fmt.Errorf("linalg: regularized Cholesky failed: %w", err)
}

// Solve solves G·x = b using the factorization, returning a new vector.
func (c *Cholesky) Solve(b []float64) []float64 {
	x := make([]float64, c.n)
	c.SolveTo(x, b)
	return x
}

// SolveTo solves G·x = b into dst without allocating beyond the
// factorization's lazily-created scratch workspace. Because that workspace
// is reused, a Cholesky value must not be shared by concurrent solvers —
// use SolveWith with per-caller workspaces to share one factor.
// dst and b may alias.
func (c *Cholesky) SolveTo(dst, b []float64) {
	if c.work == nil {
		c.work = make([]float64, c.n)
	}
	c.SolveWith(dst, b, c.work)
}

// Dim returns the order n of the factored matrix.
func (c *Cholesky) Dim() int { return c.n }

// SolveWith solves G·x = b into dst using the caller-provided workspace
// (length n). It touches no state shared between calls, so one cached
// factorization may be shared by any number of concurrent solvers as long
// as each brings its own dst and work — this is what lets a long-running
// engine reuse the topology-only factor across rebuilds without locking.
// dst and b may alias; work must not alias either.
func (c *Cholesky) SolveWith(dst, b, work []float64) {
	if len(b) != c.n {
		panic(fmt.Sprintf("linalg: Cholesky.Solve rhs length %d != %d", len(b), c.n))
	}
	if len(dst) != c.n {
		panic(fmt.Sprintf("linalg: Cholesky.SolveTo dst length %d != %d", len(dst), c.n))
	}
	if len(work) != c.n {
		panic(fmt.Sprintf("linalg: Cholesky.SolveWith workspace length %d != %d", len(work), c.n))
	}
	// Forward substitution L·y = b.
	y := work
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		y[i] = (b[i] - DotUnrolled(row[:i], y)) / row[i]
	}
	// Back substitution Lᵀ·x = y, walking L's rows so memory access stays
	// sequential: after computing x[i], the partial sums of every remaining
	// x[k] (k < i) are downdated with row i's entries.
	for i := range dst {
		dst[i] = 0
	}
	for i := c.n - 1; i >= 0; i-- {
		row := c.l.Row(i)
		xi := (y[i] + dst[i]) / row[i]
		dst[i] = xi
		for k := 0; k < i; k++ {
			dst[k] -= row[k] * xi
		}
	}
}
