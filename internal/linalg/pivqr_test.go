package linalg

import (
	"math/rand/v2"
	"testing"
)

// randomLowRank builds an m×n matrix of numerical rank r as a product of
// random factors.
func randomLowRank(rng *rand.Rand, m, n, r int) *Dense {
	left := NewDense(m, r)
	right := NewDense(r, n)
	for i := 0; i < m; i++ {
		for k := 0; k < r; k++ {
			left.Set(i, k, rng.NormFloat64())
		}
	}
	for k := 0; k < r; k++ {
		for j := 0; j < n; j++ {
			right.Set(k, j, rng.NormFloat64())
		}
	}
	return left.Mul(right)
}

// TestPivotedQRWorkersBitwiseDeterministic is the contract the parallel
// Phase-2 elimination rests on: the factorization's column updates are
// independent, so any worker count must reproduce the serial result
// bit-for-bit — factors, reflectors, permutation, rank, and solutions.
func TestPivotedQRWorkersBitwiseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for _, dims := range [][3]int{{40, 30, 30}, {80, 150, 90}, {200, 160, 120}} {
		m, n, r := dims[0], dims[1], dims[2]
		if r > min(m, n) {
			r = min(m, n)
		}
		a := randomLowRank(rng, m, n, r)
		ref := NewPivotedQRWorkers(a, 1)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		refSol := ref.SolveMinNorm(b)
		for _, workers := range []int{2, 3, 8, 0} {
			f := NewPivotedQRWorkers(a, workers)
			if f.Rank() != ref.Rank() {
				t.Fatalf("%dx%d workers=%d: rank %d, want %d", m, n, workers, f.Rank(), ref.Rank())
			}
			for k := range f.perm {
				if f.perm[k] != ref.perm[k] {
					t.Fatalf("%dx%d workers=%d: perm[%d] = %d, want %d", m, n, workers, k, f.perm[k], ref.perm[k])
				}
			}
			for k := range f.tau {
				if f.tau[k] != ref.tau[k] {
					t.Fatalf("%dx%d workers=%d: tau[%d] differs", m, n, workers, k)
				}
			}
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					if f.qr.At(i, j) != ref.qr.At(i, j) {
						t.Fatalf("%dx%d workers=%d: factor (%d,%d) differs", m, n, workers, i, j)
					}
				}
			}
			sol := f.SolveMinNorm(b)
			for k := range sol {
				if sol[k] != refSol[k] {
					t.Fatalf("%dx%d workers=%d: solution[%d] differs", m, n, workers, k)
				}
			}
		}
		if got := RankWorkers(a, 4); got != ref.Rank() {
			t.Fatalf("RankWorkers = %d, want %d", got, ref.Rank())
		}
	}
}

// TestPivotedQRRankRecovery pins the rank-revealing property the
// elimination depends on across the parallel path.
func TestPivotedQRRankRecovery(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for _, workers := range []int{1, 4} {
		for trial := 0; trial < 5; trial++ {
			m := 60 + rng.IntN(80)
			n := 140 + rng.IntN(60) // wide enough to engage the parallel path
			r := 1 + rng.IntN(min(m, n)-1)
			a := randomLowRank(rng, m, n, r)
			if got := RankWorkers(a, workers); got != r {
				t.Fatalf("workers=%d trial %d: rank %d, want %d (%dx%d)", workers, trial, got, r, m, n)
			}
		}
	}
}
