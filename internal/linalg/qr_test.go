package linalg

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// residual returns ‖A·x − b‖₂.
func residual(a *Dense, x, b []float64) float64 {
	ax := a.MulVec(x)
	d := make([]float64, len(b))
	for i := range b {
		d[i] = ax[i] - b[i]
	}
	return Norm2(d)
}

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system: solution must be (nearly) exact.
	a := NewDenseFrom(3, 3, []float64{
		4, 1, 0,
		1, 3, 1,
		0, 1, 2,
	})
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	x, err := NewQR(a).Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestQRSolveRecoversPlantedSolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 25; trial++ {
		m := 5 + rng.IntN(20)
		n := 1 + rng.IntN(m)
		a := randomDense(rng, m, n)
		want := make([]float64, n)
		for j := range want {
			want[j] = rng.NormFloat64()
		}
		b := a.MulVec(want) // consistent system
		x, err := NewQR(a).Solve(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j := range want {
			if math.Abs(x[j]-want[j]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, j, x[j], want[j])
			}
		}
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	// Property: at the least-squares minimizer, the residual is orthogonal to
	// the column space: Aᵀ(Ax−b) = 0.
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 25; trial++ {
		m := 8 + rng.IntN(12)
		n := 1 + rng.IntN(6)
		a := randomDense(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := NewQR(a).Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		ax := a.MulVec(x)
		r := make([]float64, m)
		for i := range r {
			r[i] = ax[i] - b[i]
		}
		g := a.TMulVec(r)
		if Norm2(g) > 1e-8*(1+Norm2(b)) {
			t.Fatalf("trial %d: gradient norm %v too large", trial, Norm2(g))
		}
	}
}

func TestQRRankDeficientDetected(t *testing.T) {
	// Column 2 = 2 × column 0.
	a := NewDenseFrom(4, 3, []float64{
		1, 1, 2,
		2, 0, 4,
		3, 1, 6,
		4, 5, 8,
	})
	_, err := NewQR(a).Solve([]float64{1, 2, 3, 4})
	if !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestQRUnderdeterminedRejected(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := SolveLeastSquares(a, []float64{0, 0}); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestQRRCond(t *testing.T) {
	id := NewDenseFrom(2, 2, []float64{1, 0, 0, 1})
	if rc := NewQR(id).RCond(); math.Abs(rc-1) > 1e-14 {
		t.Fatalf("RCond(I) = %v, want 1", rc)
	}
	sing := NewDenseFrom(2, 2, []float64{1, 1, 1, 1})
	if rc := NewQR(sing).RCond(); rc > 1e-12 {
		t.Fatalf("RCond(singular) = %v, want ~0", rc)
	}
}

func TestPivotedQRRankKnown(t *testing.T) {
	cases := []struct {
		name string
		m    *Dense
		rank int
	}{
		{"identity3", NewDenseFrom(3, 3, []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}), 3},
		{"zero", NewDense(4, 3), 0},
		{"rank1", NewDenseFrom(3, 3, []float64{1, 2, 3, 2, 4, 6, 3, 6, 9}), 1},
		{"rank2tall", NewDenseFrom(4, 3, []float64{
			1, 0, 1,
			0, 1, 1,
			1, 1, 2,
			2, 1, 3,
		}), 2},
		{"wide", NewDenseFrom(2, 4, []float64{1, 0, 1, 0, 0, 1, 0, 1}), 2},
	}
	for _, c := range cases {
		if got := Rank(c.m); got != c.rank {
			t.Errorf("%s: Rank = %d, want %d", c.name, got, c.rank)
		}
	}
}

func TestPivotedQRRankRandomProducts(t *testing.T) {
	// Property: an m×n product B·C with B m×k, C k×n (random Gaussian) has
	// rank exactly min(k, m, n) almost surely.
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.IntN(10)
		n := 3 + rng.IntN(10)
		k := 1 + rng.IntN(min(m, n))
		b := randomDense(rng, m, k)
		c := randomDense(rng, k, n)
		p := b.Mul(c)
		if got := Rank(p); got != k {
			t.Fatalf("trial %d: rank(B·C) = %d, want %d (m=%d n=%d)", trial, got, k, m, n)
		}
	}
}

func TestPivotedQRIndependentColumns(t *testing.T) {
	// Columns: c0, c1 independent; c2 = c0 + c1.
	a := NewDenseFrom(3, 3, []float64{
		1, 0, 1,
		0, 1, 1,
		0, 0, 0,
	})
	f := NewPivotedQR(a)
	ind := f.IndependentColumns()
	if len(ind) != 2 {
		t.Fatalf("IndependentColumns len = %d, want 2", len(ind))
	}
	sub := a.SelectColumns(ind)
	if !HasFullColumnRank(sub) {
		t.Fatal("selected columns are not independent")
	}
}

func TestPivotedQRSolveMinNorm(t *testing.T) {
	// Rank-deficient system: x should still reproduce b in the range.
	a := NewDenseFrom(3, 3, []float64{
		1, 0, 1,
		0, 1, 1,
		1, 1, 2,
	})
	want := []float64{2, 3, 0}
	b := a.MulVec(want)
	x := NewPivotedQR(a).SolveMinNorm(b)
	if r := residual(a, x, b); r > 1e-10 {
		t.Fatalf("residual %v for consistent rank-deficient system", r)
	}
}

func TestPivotedQRPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	a := randomDense(rng, 6, 6)
	perm := NewPivotedQR(a).Perm()
	seen := make(map[int]bool)
	for _, p := range perm {
		if p < 0 || p >= 6 || seen[p] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[p] = true
	}
}

func TestCholeskySolve(t *testing.T) {
	// G = BᵀB + I is SPD.
	rng := rand.New(rand.NewPCG(21, 22))
	b := randomDense(rng, 8, 5)
	g := b.T().Mul(b)
	for i := 0; i < 5; i++ {
		g.Add(i, i, 1)
	}
	want := []float64{1, 2, 3, 4, 5}
	rhs := g.MulVec(want)
	ch, err := NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve(rhs)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	g := NewDenseFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := NewCholesky(g); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyRegularizedRecovers(t *testing.T) {
	// Singular PSD matrix: plain Cholesky fails, regularized succeeds.
	g := NewDenseFrom(2, 2, []float64{1, 1, 1, 1})
	ch, lambda, err := NewCholeskyRegularized(g)
	if err != nil {
		t.Fatal(err)
	}
	if lambda == 0 {
		t.Fatal("expected nonzero ridge for singular matrix")
	}
	x := ch.Solve([]float64{2, 2})
	// Regularized solution of a consistent system stays near [1,1].
	if math.Abs(x[0]+x[1]-2) > 1e-3 {
		t.Fatalf("regularized solution %v drifted too far", x)
	}
}

func TestCholeskyNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-square input")
		}
	}()
	NewCholesky(NewDense(2, 3)) //nolint:errcheck
}

func TestQRZeroColumnMatrix(t *testing.T) {
	// Degenerate but legal: zero columns.
	a := NewDense(3, 0)
	x, err := NewQR(a).Solve([]float64{1, 2, 3})
	if err != nil || len(x) != 0 {
		t.Fatalf("x=%v err=%v, want empty solution", x, err)
	}
}
