package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randMat(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMulVecToMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {17, 17}, {50, 33}, {64, 128}} {
		m := randMat(rng, dims[0], dims[1])
		x := randVec(rng, dims[1])
		dst := make([]float64, dims[0])
		m.MulVecTo(dst, x)
		for i := 0; i < dims[0]; i++ {
			var want float64
			for j := 0; j < dims[1]; j++ {
				want += m.At(i, j) * x[j]
			}
			if math.Abs(dst[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("%v: MulVecTo[%d] = %g, want %g", dims, i, dst[i], want)
			}
		}
		// Dirty destinations must be overwritten, not accumulated into.
		for i := range dst {
			dst[i] = math.NaN()
		}
		m.MulVecTo(dst, x)
		if got := m.MulVec(x); !vecsClose(dst, got, 0) {
			t.Fatalf("%v: MulVecTo with dirty dst differs from MulVec", dims)
		}
	}
}

func TestTMulVecToMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, dims := range [][2]int{{1, 1}, {7, 3}, {17, 17}, {33, 50}, {128, 64}} {
		m := randMat(rng, dims[0], dims[1])
		x := randVec(rng, dims[0])
		dst := make([]float64, dims[1])
		for i := range dst {
			dst[i] = math.NaN() // must be fully overwritten
		}
		m.TMulVecTo(dst, x)
		for j := 0; j < dims[1]; j++ {
			var want float64
			for i := 0; i < dims[0]; i++ {
				want += m.At(i, j) * x[i]
			}
			if math.Abs(dst[j]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("%v: TMulVecTo[%d] = %g, want %g", dims, j, dst[j], want)
			}
		}
	}
}

func vecsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestDotUnrolledMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000} {
		x, y := randVec(rng, n), randVec(rng, n)
		var want float64
		for i := range x {
			want += x[i] * y[i]
		}
		if got := DotUnrolled(x, y); math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("n=%d: DotUnrolled = %g, want %g", n, got, want)
		}
	}
}

func TestBlockedMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	// Spans block boundaries: below, at, and beyond mulBlock.
	for _, dims := range [][3]int{{3, 5, 4}, {60, 127, 40}, {20, 128, 20}, {10, 300, 17}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		got := a.Mul(b)
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[2]; j++ {
				var want float64
				for k := 0; k < dims[1]; k++ {
					want += a.At(i, k) * b.At(k, j)
				}
				if math.Abs(got.At(i, j)-want) > 1e-10*(1+math.Abs(want)) {
					t.Fatalf("%v: Mul[%d,%d] = %g, want %g", dims, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestBlockedTransposeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	// Spans tile boundaries: below, at, and beyond transBlock.
	for _, dims := range [][2]int{{1, 1}, {31, 33}, {32, 32}, {100, 45}, {7, 130}} {
		m := randMat(rng, dims[0], dims[1])
		tr := m.T()
		if r, c := tr.Dims(); r != dims[1] || c != dims[0] {
			t.Fatalf("%v: T dims = %d×%d", dims, r, c)
		}
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				if tr.At(j, i) != m.At(i, j) {
					t.Fatalf("%v: T[%d,%d] != M[%d,%d]", dims, j, i, i, j)
				}
			}
		}
	}
}

func TestAddMat(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	a, b := randMat(rng, 9, 13), randMat(rng, 9, 13)
	want := NewDense(9, 13)
	for i := 0; i < 9; i++ {
		for j := 0; j < 13; j++ {
			want.Set(i, j, a.At(i, j)+b.At(i, j))
		}
	}
	a.AddMat(b)
	for i := 0; i < 9; i++ {
		for j := 0; j < 13; j++ {
			if a.At(i, j) != want.At(i, j) {
				t.Fatalf("AddMat[%d,%d] = %g, want %g", i, j, a.At(i, j), want.At(i, j))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddMat with mismatched shapes should panic")
		}
	}()
	a.AddMat(NewDense(2, 2))
}

func TestCholeskySolveToReuse(t *testing.T) {
	// Repeated SolveTo calls through the shared workspace must match Solve.
	rng := rand.New(rand.NewPCG(13, 14))
	a := randMat(rng, 30, 12)
	g := a.T().Mul(a) // SPD
	ch, err := NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 12)
	for rep := 0; rep < 3; rep++ {
		b := randVec(rng, 12)
		ch.SolveTo(dst, b)
		want := ch.Solve(b)
		if !vecsClose(dst, want, 0) {
			t.Fatalf("rep %d: SolveTo differs from Solve", rep)
		}
		// Residual check: G·x ≈ b.
		res := g.MulVec(dst)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				t.Fatalf("rep %d: residual[%d] = %g", rep, i, res[i]-b[i])
			}
		}
	}
}

func TestKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	m := randMat(rng, 64, 48)
	x := randVec(rng, 48)
	xt := randVec(rng, 64)
	dst := make([]float64, 64)
	dstT := make([]float64, 48)
	if n := testing.AllocsPerRun(100, func() { m.MulVecTo(dst, x) }); n != 0 {
		t.Errorf("MulVecTo allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.TMulVecTo(dstT, xt) }); n != 0 {
		t.Errorf("TMulVecTo allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { DotUnrolled(x, x) }); n != 0 {
		t.Errorf("DotUnrolled allocates %v times per run", n)
	}
	a := randMat(rng, 20, 8)
	g := a.T().Mul(a)
	ch, err := NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(rng, 8)
	out := make([]float64, 8)
	ch.SolveTo(out, b) // warm the lazy workspace
	if n := testing.AllocsPerRun(100, func() { ch.SolveTo(out, b) }); n != 0 {
		t.Errorf("Cholesky.SolveTo allocates %v times per run", n)
	}
}
