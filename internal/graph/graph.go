// Package graph implements the directed multigraph and deterministic
// shortest-path routing used to derive end-to-end probing paths from
// generated or discovered topologies.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Edge is a directed edge. Edges are identified by dense integer IDs in
// insertion order; IDs double as link identifiers in the tomography layers.
type Edge struct {
	ID     int
	From   int
	To     int
	Weight float64
}

// Digraph is a directed multigraph over nodes 0..N-1.
// The zero value is an empty graph ready to use.
type Digraph struct {
	out   [][]int // node -> edge IDs leaving it
	in    [][]int // node -> edge IDs entering it
	edges []Edge
}

// New returns a graph with n isolated nodes.
func New(n int) *Digraph {
	return &Digraph{out: make([][]int, n), in: make([][]int, n)}
}

// AddNode appends a node and returns its ID.
func (g *Digraph) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return len(g.out) - 1
}

// NumNodes returns the number of nodes.
func (g *Digraph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of directed edges.
func (g *Digraph) NumEdges() int { return len(g.edges) }

// AddEdge inserts a directed edge and returns its ID.
func (g *Digraph) AddEdge(from, to int, w float64) int {
	if from < 0 || from >= len(g.out) || to < 0 || to >= len(g.out) {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range (n=%d)", from, to, len(g.out)))
	}
	if w < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %g", w))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Weight: w})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// AddBidirectional inserts the two directed edges a→b and b→a and returns
// their IDs. Network links are full duplex but their two directions have
// independent loss processes, hence two distinct edges.
func (g *Digraph) AddBidirectional(a, b int, w float64) (ab, ba int) {
	return g.AddEdge(a, b, w), g.AddEdge(b, a, w)
}

// Edge returns the edge with the given ID.
func (g *Digraph) Edge(id int) Edge {
	return g.edges[id]
}

// OutEdges returns the IDs of edges leaving node n. The slice is shared; do
// not modify it.
func (g *Digraph) OutEdges(n int) []int { return g.out[n] }

// InEdges returns the IDs of edges entering node n. The slice is shared; do
// not modify it.
func (g *Digraph) InEdges(n int) []int { return g.in[n] }

// OutDegree returns the out-degree of node n.
func (g *Digraph) OutDegree(n int) int { return len(g.out[n]) }

// InDegree returns the in-degree of node n.
func (g *Digraph) InDegree(n int) int { return len(g.in[n]) }

// HasEdgeBetween reports whether any directed edge from a to b exists.
func (g *Digraph) HasEdgeBetween(a, b int) bool {
	for _, id := range g.out[a] {
		if g.edges[id].To == b {
			return true
		}
	}
	return false
}

// PathTree is a shortest-path tree rooted at Src, as produced by Dijkstra.
type PathTree struct {
	Src        int
	Dist       []float64 // +Inf for unreachable nodes
	ParentEdge []int     // edge ID entering each node on its shortest path; -1 at Src / unreachable
}

// Reachable reports whether node n is reachable from the root.
func (t *PathTree) Reachable(n int) bool { return !math.IsInf(t.Dist[n], 1) }

// PathTo returns the edge IDs of the tree path from Src to dst, or nil if
// dst is unreachable (or is the source itself).
func (t *PathTree) PathTo(dst int, g *Digraph) []int {
	if !t.Reachable(dst) || dst == t.Src {
		return nil
	}
	var rev []int
	for n := dst; n != t.Src; {
		eid := t.ParentEdge[n]
		if eid < 0 {
			return nil
		}
		rev = append(rev, eid)
		n = g.Edge(eid).From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type pqItem struct {
	node int
	dist float64
	hops int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	if q[i].hops != q[j].hops {
		return q[i].hops < q[j].hops
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPathTree runs Dijkstra from src with a deterministic tie-break
// (fewer hops, then smaller predecessor node, then smaller edge ID) so that
// repeated runs — and runs from different beacons — produce stable routes.
func (g *Digraph) ShortestPathTree(src int) *PathTree {
	n := g.NumNodes()
	t := &PathTree{Src: src, Dist: make([]float64, n), ParentEdge: make([]int, n)}
	hops := make([]int, n)
	done := make([]bool, n)
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.ParentEdge[i] = -1
	}
	t.Dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, eid := range g.out[u] {
			e := g.edges[eid]
			nd := t.Dist[u] + e.Weight
			nh := hops[u] + 1
			v := e.To
			better := nd < t.Dist[v]
			if !better && nd == t.Dist[v] && !done[v] {
				// Deterministic tie-break.
				if nh < hops[v] {
					better = true
				} else if nh == hops[v] {
					cur := t.ParentEdge[v]
					if cur >= 0 {
						cp := g.edges[cur].From
						if u < cp || (u == cp && eid < cur) {
							better = true
						}
					}
				}
			}
			if better {
				t.Dist[v] = nd
				hops[v] = nh
				t.ParentEdge[v] = eid
				heap.Push(q, pqItem{node: v, dist: nd, hops: nh})
			}
		}
	}
	return t
}

// Connected reports whether every node is reachable from node 0 following
// directed edges (sufficient for our symmetric generators).
func (g *Digraph) Connected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	seen := make([]bool, g.NumNodes())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.NumNodes()
}
