package graph

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestAddEdgeAndDegrees(t *testing.T) {
	g := New(3)
	e0 := g.AddEdge(0, 1, 1)
	e1, e2 := g.AddBidirectional(1, 2, 2)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Edge(e0).To != 1 || g.Edge(e1).From != 1 || g.Edge(e2).From != 2 {
		t.Fatal("edge endpoints wrong")
	}
	if g.OutDegree(1) != 1 || g.InDegree(1) != 2 {
		t.Fatalf("degrees of node 1: out=%d in=%d, want 1/2", g.OutDegree(1), g.InDegree(1))
	}
	if !g.HasEdgeBetween(0, 1) || g.HasEdgeBetween(1, 0) {
		t.Fatal("HasEdgeBetween wrong for directed edges")
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 5, 1) },
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 1, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAddNode(t *testing.T) {
	g := New(0)
	if id := g.AddNode(); id != 0 {
		t.Fatalf("first node id = %d", id)
	}
	if id := g.AddNode(); id != 1 {
		t.Fatalf("second node id = %d", id)
	}
}

func TestShortestPathTreeLine(t *testing.T) {
	// 0 -1- 1 -1- 2 -1- 3
	g := New(4)
	for i := 0; i < 3; i++ {
		g.AddBidirectional(i, i+1, 1)
	}
	tree := g.ShortestPathTree(0)
	if tree.Dist[3] != 3 {
		t.Fatalf("Dist[3] = %v, want 3", tree.Dist[3])
	}
	path := tree.PathTo(3, g)
	if len(path) != 3 {
		t.Fatalf("path length %d, want 3", len(path))
	}
	// Edges must chain 0→1→2→3.
	at := 0
	for _, eid := range path {
		e := g.Edge(eid)
		if e.From != at {
			t.Fatalf("path edge from %d, expected %d", e.From, at)
		}
		at = e.To
	}
	if at != 3 {
		t.Fatalf("path ends at %d, want 3", at)
	}
}

func TestShortestPathPrefersLowerWeight(t *testing.T) {
	// Two routes 0→2: direct cost 5, via 1 cost 2.
	g := New(3)
	g.AddEdge(0, 2, 5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	tree := g.ShortestPathTree(0)
	if tree.Dist[2] != 2 {
		t.Fatalf("Dist[2] = %v, want 2", tree.Dist[2])
	}
	if len(tree.PathTo(2, g)) != 2 {
		t.Fatal("should route via node 1")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	tree := g.ShortestPathTree(0)
	if tree.Reachable(2) {
		t.Fatal("node 2 should be unreachable")
	}
	if tree.PathTo(2, g) != nil {
		t.Fatal("PathTo unreachable node should be nil")
	}
	if !math.IsInf(tree.Dist[2], 1) {
		t.Fatal("unreachable distance should be +Inf")
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	// Diamond with equal-cost routes: 0→1→3 and 0→2→3. The tie-break must
	// pick the same route every time.
	build := func() *Digraph {
		g := New(4)
		g.AddBidirectional(0, 1, 1)
		g.AddBidirectional(0, 2, 1)
		g.AddBidirectional(1, 3, 1)
		g.AddBidirectional(2, 3, 1)
		return g
	}
	ref := build().ShortestPathTree(0).PathTo(3, build())
	for i := 0; i < 10; i++ {
		g := build()
		got := g.ShortestPathTree(0).PathTo(3, g)
		if len(got) != len(ref) {
			t.Fatal("nondeterministic path length")
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatal("nondeterministic tie-break")
			}
		}
	}
}

func TestShortestPathTreeIsTree(t *testing.T) {
	// Property: on a random connected graph, the parent pointers form a
	// tree reaching every node, and Dist satisfies the triangle property
	// along tree edges.
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.IntN(30)
		g := New(n)
		for v := 1; v < n; v++ {
			g.AddBidirectional(v, rng.IntN(v), 1+float64(rng.IntN(3)))
		}
		for e := 0; e < n/2; e++ {
			a, b := rng.IntN(n), rng.IntN(n)
			if a != b {
				g.AddBidirectional(a, b, 1+float64(rng.IntN(3)))
			}
		}
		tree := g.ShortestPathTree(0)
		for v := 1; v < n; v++ {
			if !tree.Reachable(v) {
				t.Fatalf("node %d unreachable in connected graph", v)
			}
			eid := tree.ParentEdge[v]
			e := g.Edge(eid)
			if e.To != v {
				t.Fatalf("parent edge of %d points to %d", v, e.To)
			}
			if math.Abs(tree.Dist[e.From]+e.Weight-tree.Dist[v]) > 1e-12 {
				t.Fatalf("distance inconsistency at node %d", v)
			}
		}
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	g.AddBidirectional(0, 1, 1)
	if g.Connected() {
		t.Fatal("graph with isolated node 2 reported connected")
	}
	g.AddBidirectional(1, 2, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !New(0).Connected() {
		t.Fatal("empty graph should be connected")
	}
}
