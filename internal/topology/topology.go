// Package topology turns raw end-to-end paths into the reduced routing
// matrix R the tomography algorithms operate on: it performs the alias
// reduction of Section 3.1 (merging links that no end-to-end measurement can
// distinguish), drops uncovered links, and validates / repairs the
// no-route-fluttering assumption T.2.
package topology

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"lia/internal/linalg"
	"lia/internal/par"
)

// Path is one end-to-end measurement path: an ordered sequence of physical
// (directed) link IDs from a beacon host to a destination host.
type Path struct {
	Beacon int   // beacon node ID
	Dst    int   // destination node ID
	Links  []int // physical link IDs, in traversal order
}

// RoutingMatrix is the reduced routing matrix R of the paper: np rows
// (paths) by nc columns (covered virtual links). After reduction every
// column is distinct and non-zero.
type RoutingMatrix struct {
	paths []Path

	// rows[i] holds the sorted virtual-link indices traversed by path i.
	rows [][]int
	// ordered[i] holds the virtual-link indices of path i in traversal order.
	ordered [][]int
	// cols[k] holds the sorted path indices traversing virtual link k.
	cols [][]int
	// members[k] lists the physical link IDs merged into virtual link k.
	members [][]int
	// virtualOf maps a physical link ID to its virtual link index.
	virtualOf map[int]int

	// pairOnce guards the lazy construction of pairs, the packed pair-support
	// index shared by every Phase-1 pass over the augmented matrix. pairsErr
	// records a capacity failure of the build (see ErrPairIndexOverflow).
	pairOnce sync.Once
	pairs    *pairIndex
	pairsErr error
}

// pairIndex is a CSR-style packed index of path-pair → shared virtual links:
// the support of pair p (in the canonical upper-triangular order (0,0),
// (0,1), …, (0,np−1), (1,1), …) is idx[off[p]:off[p+1]]. Building it once
// turns every subsequent enumeration of the augmented matrix A into a linear
// index walk instead of np(np+1)/2 repeated sorted-set intersections, and its
// contiguous layout is what the sharded Phase-1 accumulators partition across
// goroutines.
//
// Both arrays are int32-packed: virtual-link indices always fit (nc is
// memory-bounded far below 2³¹) and the offsets are guarded against overflow
// at build time, halving the index footprint on multi-thousand-path
// topologies where off alone holds np(np+1)/2+1 entries.
type pairIndex struct {
	off []int32 // len NumPairs()+1; monotone offsets into idx
	idx []int32 // concatenated sorted supports (virtual-link indices)
}

// maxPairIndexEntries bounds the total packed support length so offsets fit
// in int32. A package variable (not a constant) so the overflow guard is
// testable without materializing a 2³¹-entry index.
var maxPairIndexEntries = int64(math.MaxInt32)

// ErrPairIndexOverflow is returned (via PrecomputePairSupports, and from
// every estimator that consumes the index) when a topology's packed
// pair-support index would exceed the int32-packed capacity. Such path sets
// must be sharded across routing matrices.
var ErrPairIndexOverflow = errors.New("topology: pair-support index exceeds int32-packed capacity; shard the path set across routing matrices")

// Build constructs the reduced routing matrix from a set of paths:
//
//  1. links that appear in exactly the same set of paths are merged into one
//     virtual link ("alias reduction": such links — in particular chains of
//     links without branching points — cannot be distinguished by any
//     end-to-end measurement);
//  2. links covered by no path are dropped.
//
// Paths with no links (beacon == destination) are rejected.
func Build(paths []Path) (*RoutingMatrix, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("topology: no paths")
	}
	for i, p := range paths {
		if len(p.Links) == 0 {
			return nil, fmt.Errorf("topology: path %d (%d→%d) has no links", i, p.Beacon, p.Dst)
		}
	}
	// Signature of a physical link = the sorted set of paths through it.
	pathsOf := make(map[int][]int) // physical link -> path indices
	for i, p := range paths {
		seen := make(map[int]bool, len(p.Links))
		for _, l := range p.Links {
			if seen[l] {
				return nil, fmt.Errorf("topology: path %d traverses link %d twice (routing loop)", i, l)
			}
			seen[l] = true
			pathsOf[l] = append(pathsOf[l], i)
		}
	}
	// Group physical links by identical path sets.
	bySig := make(map[string][]int)
	for link, ps := range pathsOf {
		bySig[sigOf(ps)] = append(bySig[sigOf(ps)], link)
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs) // deterministic virtual-link numbering
	rm := &RoutingMatrix{
		paths:     paths,
		rows:      make([][]int, len(paths)),
		ordered:   make([][]int, len(paths)),
		cols:      make([][]int, 0, len(sigs)),
		members:   make([][]int, 0, len(sigs)),
		virtualOf: make(map[int]int),
	}
	for _, s := range sigs {
		links := bySig[s]
		sort.Ints(links)
		k := len(rm.members)
		rm.members = append(rm.members, links)
		rm.cols = append(rm.cols, append([]int(nil), pathsOf[links[0]]...))
		for _, l := range links {
			rm.virtualOf[l] = k
		}
	}
	for i, p := range paths {
		seen := make(map[int]bool)
		for _, l := range p.Links {
			k := rm.virtualOf[l]
			if !seen[k] {
				seen[k] = true
				rm.ordered[i] = append(rm.ordered[i], k)
			}
		}
		rm.rows[i] = append([]int(nil), rm.ordered[i]...)
		sort.Ints(rm.rows[i])
	}
	return rm, nil
}

func sigOf(ps []int) string {
	b := make([]byte, 0, len(ps)*4)
	for _, p := range ps {
		b = append(b, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	return string(b)
}

// NumPaths returns np, the number of rows of R.
func (rm *RoutingMatrix) NumPaths() int { return len(rm.rows) }

// NumLinks returns nc, the number of covered virtual links (columns of R).
func (rm *RoutingMatrix) NumLinks() int { return len(rm.members) }

// Path returns the original path for row i.
func (rm *RoutingMatrix) Path(i int) Path { return rm.paths[i] }

// Row returns the sorted virtual-link indices of path i. Shared slice; do
// not modify.
func (rm *RoutingMatrix) Row(i int) []int { return rm.rows[i] }

// OrderedRow returns the virtual links of path i in traversal order.
// Shared slice; do not modify.
func (rm *RoutingMatrix) OrderedRow(i int) []int { return rm.ordered[i] }

// PathsThrough returns the sorted path indices traversing virtual link k.
// Shared slice; do not modify.
func (rm *RoutingMatrix) PathsThrough(k int) []int { return rm.cols[k] }

// Members returns the physical link IDs merged into virtual link k.
func (rm *RoutingMatrix) Members(k int) []int { return rm.members[k] }

// VirtualOf returns the virtual link index of a physical link and whether
// the link is covered at all.
func (rm *RoutingMatrix) VirtualOf(physical int) (int, bool) {
	k, ok := rm.virtualOf[physical]
	return k, ok
}

// Dense materializes R as a dense 0/1 matrix.
func (rm *RoutingMatrix) Dense() *linalg.Dense {
	d := linalg.NewDense(rm.NumPaths(), rm.NumLinks())
	for i, row := range rm.rows {
		for _, k := range row {
			d.Set(i, k, 1)
		}
	}
	return d
}

// DenseColumns materializes the sub-matrix of R restricted to the given
// virtual-link columns (in the given order).
func (rm *RoutingMatrix) DenseColumns(cols []int) *linalg.Dense {
	pos := make(map[int]int, len(cols))
	for j, k := range cols {
		pos[k] = j
	}
	d := linalg.NewDense(rm.NumPaths(), len(cols))
	for i, row := range rm.rows {
		for _, k := range row {
			if j, ok := pos[k]; ok {
				d.Set(i, j, 1)
			}
		}
	}
	return d
}

// Rank returns the numerical rank of R.
func (rm *RoutingMatrix) Rank() int {
	return linalg.Rank(rm.Dense())
}

// IntersectRows returns the sorted intersection of the virtual-link sets of
// paths i and j, appended to dst (which may be nil).
func (rm *RoutingMatrix) IntersectRows(i, j int, dst []int) []int {
	a, b := rm.rows[i], rm.rows[j]
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			dst = append(dst, a[x])
			x++
			y++
		}
	}
	return dst
}

// NumPairs returns the number of unordered path pairs (i ≤ j), i.e. the row
// count np(np+1)/2 of the augmented matrix A.
func (rm *RoutingMatrix) NumPairs() int {
	np := rm.NumPaths()
	return np * (np + 1) / 2
}

// PairIndexOf packs a pair (i ≤ j) into its canonical upper-triangular row
// index, the order used by PairSupport and VisitPairSupports.
func (rm *RoutingMatrix) PairIndexOf(i, j int) int {
	np := rm.NumPaths()
	if i < 0 || j < i || j >= np {
		panic(fmt.Sprintf("topology: pair (%d,%d) out of range for %d paths", i, j, np))
	}
	return i*np - i*(i-1)/2 + (j - i)
}

// PairSupport returns the sorted virtual links shared by paths i and j from
// the cached pair-support index, as int32-packed link indices. The slice is
// a view into the index — valid for the lifetime of the routing matrix, but
// it must not be modified.
func (rm *RoutingMatrix) PairSupport(i, j int) []int32 {
	if j < i {
		i, j = j, i
	}
	ps := rm.pairSupports()
	p := rm.PairIndexOf(i, j)
	return ps.idx[ps.off[p]:ps.off[p+1]]
}

// VisitPairSupports walks the pairs with packed indices in [from, to) in
// canonical order, passing each pair's support. Supports are views into the
// cached index (stable, read-only). Disjoint ranges touch disjoint state, so
// concurrent calls on different ranges are safe — this is the primitive the
// sharded Phase-1 accumulators partition across goroutines.
func (rm *RoutingMatrix) VisitPairSupports(from, to int, visit func(i, j int, support []int32)) {
	npairs := rm.NumPairs()
	if from < 0 || to > npairs || from > to {
		panic(fmt.Sprintf("topology: pair range [%d,%d) out of [0,%d)", from, to, npairs))
	}
	if from == to {
		return
	}
	ps := rm.pairSupports()
	np := rm.NumPaths()
	// Unrank `from` to its (i, j): the first row i whose base index
	// base(i) = i·np − i(i−1)/2 exceeds `from`, minus one.
	i := sort.Search(np, func(r int) bool {
		return r*np-r*(r-1)/2 > from
	}) - 1
	j := i + (from - (i*np - i*(i-1)/2))
	for p := from; p < to; p++ {
		visit(i, j, ps.idx[ps.off[p]:ps.off[p+1]])
		j++
		if j >= np {
			i++
			j = i
		}
	}
}

// pairSupports returns the pair-support index, building it on first use. It
// panics on a capacity failure — estimators gate on PrecomputePairSupports
// first so the error surfaces as a value on every public path.
func (rm *RoutingMatrix) pairSupports() *pairIndex {
	rm.pairOnce.Do(rm.buildPairIndex)
	if rm.pairsErr != nil {
		panic(rm.pairsErr)
	}
	return rm.pairs
}

// PrecomputePairSupports forces construction of the cached pair-support
// index now instead of on first use, reporting a capacity failure
// (ErrPairIndexOverflow) as an error. Idempotent and safe for concurrent
// callers. Estimators call it before walking the index so oversized
// topologies fail as errors, and timed sections call it up front so the
// one-time build does not silently inflate the first measured pass.
func (rm *RoutingMatrix) PrecomputePairSupports() error {
	rm.pairOnce.Do(rm.buildPairIndex)
	return rm.pairsErr
}

// buildPairIndex computes every pairwise row intersection once. Rows are
// distributed over GOMAXPROCS goroutines (each row i owns the contiguous
// index range of pairs (i, i..np−1), so writers never overlap) and the
// per-row buffers are stitched into one packed CSR layout afterwards.
func (rm *RoutingMatrix) buildPairIndex() {
	np := rm.NumPaths()
	npairs := rm.NumPairs()
	off := make([]int32, npairs+1)
	rowData := make([][]int32, np)
	par.Do(runtime.GOMAXPROCS(0), np, func(_, i int) {
		base := rm.PairIndexOf(i, i)
		buf := make([]int32, 0, (np-i)*2)
		for j := i; j < np; j++ {
			start := len(buf)
			buf = intersectRows32(rm.rows[i], rm.rows[j], buf)
			// Per-pair support length is at most the shorter row, far below
			// 2³¹; only the running prefix sum below can overflow.
			off[base+(j-i)+1] = int32(len(buf) - start)
		}
		rowData[i] = buf
	})
	var total int64
	for p := 0; p < npairs; p++ {
		total += int64(off[p+1])
		if total > maxPairIndexEntries {
			rm.pairsErr = fmt.Errorf("%w (needs %d+ entries, capacity %d)",
				ErrPairIndexOverflow, total, maxPairIndexEntries)
			return
		}
		off[p+1] = int32(total)
	}
	idx := make([]int32, total)
	for i := 0; i < np; i++ {
		copy(idx[off[rm.PairIndexOf(i, i)]:], rowData[i])
	}
	rm.pairs = &pairIndex{off: off, idx: idx}
}

// intersectRows32 appends the sorted intersection of two sorted int rows to
// dst as int32-packed virtual-link indices.
func intersectRows32(a, b []int, dst []int32) []int32 {
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			dst = append(dst, int32(a[x]))
			x++
			y++
		}
	}
	return dst
}

// LossOnPath aggregates per-physical-link transmission rates into
// per-virtual-link transmission rates (product over members) and returns the
// end-to-end transmission rate of path i.
func (rm *RoutingMatrix) LossOnPath(i int, linkTransmission func(physical int) float64) float64 {
	t := 1.0
	for _, l := range rm.paths[i].Links {
		t *= linkTransmission(l)
	}
	return t
}

// VirtualRates folds per-physical-link mean loss rates into per-virtual-link
// loss rates: the loss rate of a virtual link is the complement of the
// product of its members' transmission rates.
func (rm *RoutingMatrix) VirtualRates(physicalLoss map[int]float64) []float64 {
	out := make([]float64, rm.NumLinks())
	for k, mem := range rm.members {
		t := 1.0
		for _, l := range mem {
			t *= 1 - physicalLoss[l]
		}
		out[k] = 1 - t
	}
	return out
}
