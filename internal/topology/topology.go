// Package topology turns raw end-to-end paths into the reduced routing
// matrix R the tomography algorithms operate on: it performs the alias
// reduction of Section 3.1 (merging links that no end-to-end measurement can
// distinguish), drops uncovered links, and validates / repairs the
// no-route-fluttering assumption T.2.
package topology

import (
	"fmt"
	"sort"

	"lia/internal/linalg"
)

// Path is one end-to-end measurement path: an ordered sequence of physical
// (directed) link IDs from a beacon host to a destination host.
type Path struct {
	Beacon int   // beacon node ID
	Dst    int   // destination node ID
	Links  []int // physical link IDs, in traversal order
}

// RoutingMatrix is the reduced routing matrix R of the paper: np rows
// (paths) by nc columns (covered virtual links). After reduction every
// column is distinct and non-zero.
type RoutingMatrix struct {
	paths []Path

	// rows[i] holds the sorted virtual-link indices traversed by path i.
	rows [][]int
	// ordered[i] holds the virtual-link indices of path i in traversal order.
	ordered [][]int
	// cols[k] holds the sorted path indices traversing virtual link k.
	cols [][]int
	// members[k] lists the physical link IDs merged into virtual link k.
	members [][]int
	// virtualOf maps a physical link ID to its virtual link index.
	virtualOf map[int]int
}

// Build constructs the reduced routing matrix from a set of paths:
//
//  1. links that appear in exactly the same set of paths are merged into one
//     virtual link ("alias reduction": such links — in particular chains of
//     links without branching points — cannot be distinguished by any
//     end-to-end measurement);
//  2. links covered by no path are dropped.
//
// Paths with no links (beacon == destination) are rejected.
func Build(paths []Path) (*RoutingMatrix, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("topology: no paths")
	}
	for i, p := range paths {
		if len(p.Links) == 0 {
			return nil, fmt.Errorf("topology: path %d (%d→%d) has no links", i, p.Beacon, p.Dst)
		}
	}
	// Signature of a physical link = the sorted set of paths through it.
	pathsOf := make(map[int][]int) // physical link -> path indices
	for i, p := range paths {
		seen := make(map[int]bool, len(p.Links))
		for _, l := range p.Links {
			if seen[l] {
				return nil, fmt.Errorf("topology: path %d traverses link %d twice (routing loop)", i, l)
			}
			seen[l] = true
			pathsOf[l] = append(pathsOf[l], i)
		}
	}
	// Group physical links by identical path sets.
	bySig := make(map[string][]int)
	for link, ps := range pathsOf {
		bySig[sigOf(ps)] = append(bySig[sigOf(ps)], link)
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs) // deterministic virtual-link numbering
	rm := &RoutingMatrix{
		paths:     paths,
		rows:      make([][]int, len(paths)),
		ordered:   make([][]int, len(paths)),
		cols:      make([][]int, 0, len(sigs)),
		members:   make([][]int, 0, len(sigs)),
		virtualOf: make(map[int]int),
	}
	for _, s := range sigs {
		links := bySig[s]
		sort.Ints(links)
		k := len(rm.members)
		rm.members = append(rm.members, links)
		rm.cols = append(rm.cols, append([]int(nil), pathsOf[links[0]]...))
		for _, l := range links {
			rm.virtualOf[l] = k
		}
	}
	for i, p := range paths {
		seen := make(map[int]bool)
		for _, l := range p.Links {
			k := rm.virtualOf[l]
			if !seen[k] {
				seen[k] = true
				rm.ordered[i] = append(rm.ordered[i], k)
			}
		}
		rm.rows[i] = append([]int(nil), rm.ordered[i]...)
		sort.Ints(rm.rows[i])
	}
	return rm, nil
}

func sigOf(ps []int) string {
	b := make([]byte, 0, len(ps)*4)
	for _, p := range ps {
		b = append(b, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	return string(b)
}

// NumPaths returns np, the number of rows of R.
func (rm *RoutingMatrix) NumPaths() int { return len(rm.rows) }

// NumLinks returns nc, the number of covered virtual links (columns of R).
func (rm *RoutingMatrix) NumLinks() int { return len(rm.members) }

// Path returns the original path for row i.
func (rm *RoutingMatrix) Path(i int) Path { return rm.paths[i] }

// Row returns the sorted virtual-link indices of path i. Shared slice; do
// not modify.
func (rm *RoutingMatrix) Row(i int) []int { return rm.rows[i] }

// OrderedRow returns the virtual links of path i in traversal order.
// Shared slice; do not modify.
func (rm *RoutingMatrix) OrderedRow(i int) []int { return rm.ordered[i] }

// PathsThrough returns the sorted path indices traversing virtual link k.
// Shared slice; do not modify.
func (rm *RoutingMatrix) PathsThrough(k int) []int { return rm.cols[k] }

// Members returns the physical link IDs merged into virtual link k.
func (rm *RoutingMatrix) Members(k int) []int { return rm.members[k] }

// VirtualOf returns the virtual link index of a physical link and whether
// the link is covered at all.
func (rm *RoutingMatrix) VirtualOf(physical int) (int, bool) {
	k, ok := rm.virtualOf[physical]
	return k, ok
}

// Dense materializes R as a dense 0/1 matrix.
func (rm *RoutingMatrix) Dense() *linalg.Dense {
	d := linalg.NewDense(rm.NumPaths(), rm.NumLinks())
	for i, row := range rm.rows {
		for _, k := range row {
			d.Set(i, k, 1)
		}
	}
	return d
}

// DenseColumns materializes the sub-matrix of R restricted to the given
// virtual-link columns (in the given order).
func (rm *RoutingMatrix) DenseColumns(cols []int) *linalg.Dense {
	pos := make(map[int]int, len(cols))
	for j, k := range cols {
		pos[k] = j
	}
	d := linalg.NewDense(rm.NumPaths(), len(cols))
	for i, row := range rm.rows {
		for _, k := range row {
			if j, ok := pos[k]; ok {
				d.Set(i, j, 1)
			}
		}
	}
	return d
}

// Rank returns the numerical rank of R.
func (rm *RoutingMatrix) Rank() int {
	return linalg.Rank(rm.Dense())
}

// IntersectRows returns the sorted intersection of the virtual-link sets of
// paths i and j, appended to dst (which may be nil).
func (rm *RoutingMatrix) IntersectRows(i, j int, dst []int) []int {
	a, b := rm.rows[i], rm.rows[j]
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			dst = append(dst, a[x])
			x++
			y++
		}
	}
	return dst
}

// LossOnPath aggregates per-physical-link transmission rates into
// per-virtual-link transmission rates (product over members) and returns the
// end-to-end transmission rate of path i.
func (rm *RoutingMatrix) LossOnPath(i int, linkTransmission func(physical int) float64) float64 {
	t := 1.0
	for _, l := range rm.paths[i].Links {
		t *= linkTransmission(l)
	}
	return t
}

// VirtualRates folds per-physical-link mean loss rates into per-virtual-link
// loss rates: the loss rate of a virtual link is the complement of the
// product of its members' transmission rates.
func (rm *RoutingMatrix) VirtualRates(physicalLoss map[int]float64) []float64 {
	out := make([]float64, rm.NumLinks())
	for k, mem := range rm.members {
		t := 1.0
		for _, l := range mem {
			t *= 1 - physicalLoss[l]
		}
		out[k] = 1 - t
	}
	return out
}
