package topology

import (
	"fmt"
	"sort"
)

// Component is one link-connected component of a routing matrix: a maximal
// set of paths transitively joined by shared virtual links, together with
// the virtual links they cover. No path outside the component traverses any
// of its links, so the Phase-1 moment system and the Phase-2 elimination
// restricted to a component are exactly the equations a routing matrix
// built from the component's paths alone would produce.
type Component struct {
	// Paths holds the global path (row) indices, ascending.
	Paths []int
	// Links holds the global virtual-link (column) indices, ascending.
	Links []int
}

// Partition splits a routing matrix into its link-connected components and
// groups them into shards for parallel processing. It is immutable after
// NewPartition and safe for concurrent use.
type Partition struct {
	rm       *RoutingMatrix
	comps    []Component
	pathComp []int // path index -> component index
	linkComp []int // virtual-link index -> component index
}

// NewPartition computes the link-connected components of rm by union-find
// over the link supports: every virtual link unions the paths traversing
// it, and the resulting path classes (with their links) are the components.
// Components are numbered in order of their smallest path index, so the
// decomposition is deterministic for a given routing matrix.
func NewPartition(rm *RoutingMatrix) *Partition {
	np := rm.NumPaths()
	nc := rm.NumLinks()
	parent := make([]int, np)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Attach the larger root under the smaller so the representative of
		// every class is its smallest path index — convenient for the
		// deterministic component numbering below.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for k := 0; k < nc; k++ {
		ps := rm.PathsThrough(k)
		for _, p := range ps[1:] {
			union(ps[0], p)
		}
	}
	p := &Partition{
		rm:       rm,
		pathComp: make([]int, np),
		linkComp: make([]int, nc),
	}
	compOfRoot := make(map[int]int, 8)
	for i := 0; i < np; i++ {
		root := find(i)
		c, ok := compOfRoot[root]
		if !ok {
			c = len(p.comps)
			compOfRoot[root] = c
			p.comps = append(p.comps, Component{})
		}
		p.pathComp[i] = c
		p.comps[c].Paths = append(p.comps[c].Paths, i)
	}
	for k := 0; k < nc; k++ {
		// Every covered link has at least one path; all of them share one
		// component by construction.
		c := p.pathComp[rm.PathsThrough(k)[0]]
		p.linkComp[k] = c
		p.comps[c].Links = append(p.comps[c].Links, k)
	}
	return p
}

// RoutingMatrix returns the matrix the partition decomposes.
func (p *Partition) RoutingMatrix() *RoutingMatrix { return p.rm }

// NumComponents returns the number of link-connected components.
func (p *Partition) NumComponents() int { return len(p.comps) }

// Component returns component c. The slices are shared; do not modify.
func (p *Partition) Component(c int) Component { return p.comps[c] }

// ComponentOfPath returns the component index of global path i.
func (p *Partition) ComponentOfPath(i int) int { return p.pathComp[i] }

// ComponentOfLink returns the component index of global virtual link k.
func (p *Partition) ComponentOfLink(k int) int { return p.linkComp[k] }

// PairWeight estimates the Phase-1 cost of component c as its augmented
// pair count n(n+1)/2 — the number of covariance equations its paths
// produce, and the superlinear term sharding erases for the pairs that
// straddle components (their supports are empty).
func (p *Partition) PairWeight(c int) int {
	n := len(p.comps[c].Paths)
	return n * (n + 1) / 2
}

// Shards groups the components into at most k shards with roughly equal
// total pair weight, returning the component indices of each shard. The
// grouping is the classic longest-processing-time greedy: components are
// placed heaviest-first onto the currently lightest shard, with all ties
// broken by index, so the layout is deterministic. Fewer than k components
// yield one shard per component; k < 1 is treated as 1.
func (p *Partition) Shards(k int) [][]int {
	n := len(p.comps)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := p.PairWeight(order[a]), p.PairWeight(order[b])
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	shards := make([][]int, k)
	load := make([]int, k)
	for _, c := range order {
		lightest := 0
		for s := 1; s < k; s++ {
			if load[s] < load[lightest] {
				lightest = s
			}
		}
		shards[lightest] = append(shards[lightest], c)
		load[lightest] += p.PairWeight(c)
	}
	// Components within a shard process in index order; empty shards cannot
	// occur (k ≤ n and LPT fills lightest-first).
	for _, s := range shards {
		sort.Ints(s)
	}
	return shards
}

// ComponentMatrix builds the reduced routing matrix of component c alone
// and the index map from its local virtual links to the global ones
// (localLinks[kl] is the global index of local link kl).
//
// The alias reduction is stable under restriction to a link-connected
// component: two physical links merge locally exactly when they merge
// globally, because every path through either link lies inside the
// component. The local matrix therefore has the component's links one for
// one — estimates computed on it are the estimates of a full engine run on
// the component's paths, by construction rather than by approximation.
// Local path row pl corresponds to global path Component(c).Paths[pl].
func (p *Partition) ComponentMatrix(c int) (sub *RoutingMatrix, localLinks []int, err error) {
	comp := p.comps[c]
	paths := make([]Path, len(comp.Paths))
	for pl, pg := range comp.Paths {
		paths[pl] = p.rm.Path(pg)
	}
	sub, err = Build(paths)
	if err != nil {
		return nil, nil, fmt.Errorf("topology: component %d: %w", c, err)
	}
	if sub.NumLinks() != len(comp.Links) {
		// Unreachable if the restriction argument above holds; guard so a
		// violation surfaces as an error instead of silent misattribution.
		return nil, nil, fmt.Errorf("topology: component %d reduced to %d links, expected %d",
			c, sub.NumLinks(), len(comp.Links))
	}
	localLinks = make([]int, sub.NumLinks())
	for kl := range localLinks {
		kg, ok := p.rm.VirtualOf(sub.Members(kl)[0])
		if !ok || p.linkComp[kg] != c {
			return nil, nil, fmt.Errorf("topology: component %d local link %d does not map back to the component", c, kl)
		}
		localLinks[kl] = kg
	}
	return sub, localLinks, nil
}
