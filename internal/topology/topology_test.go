package topology

import (
	"errors"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
)

// figure1Paths builds the single-beacon example of Figure 1 of the paper:
// B1 → D1, D2, D3 over links e1..e5 (IDs 1..5).
//
//	B1 --e1--> a --e2--> D1
//	            a --e3--> b --e4--> D2
//	                       b --e5--> D3
func figure1Paths() []Path {
	return []Path{
		{Beacon: 0, Dst: 2, Links: []int{1, 2}},
		{Beacon: 0, Dst: 4, Links: []int{1, 3, 4}},
		{Beacon: 0, Dst: 5, Links: []int{1, 3, 5}},
	}
}

func TestBuildFigure1(t *testing.T) {
	rm, err := Build(figure1Paths())
	if err != nil {
		t.Fatal(err)
	}
	if got := rm.NumPaths(); got != 3 {
		t.Fatalf("NumPaths = %d, want 3", got)
	}
	// All five links are distinguishable (distinct path sets).
	if got := rm.NumLinks(); got != 5 {
		t.Fatalf("NumLinks = %d, want 5", got)
	}
	// R must be rank deficient: rank 3 < 5 columns (the paper's point that
	// first moments cannot identify link loss rates).
	if got := rm.Rank(); got != 3 {
		t.Fatalf("rank(R) = %d, want 3", got)
	}
}

func TestBuildAliasReduction(t *testing.T) {
	// A chain B → x → y → D probed by one path: all three links are
	// indistinguishable and must merge into one virtual link.
	paths := []Path{{Beacon: 0, Dst: 3, Links: []int{10, 11, 12}}}
	rm, err := Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	if got := rm.NumLinks(); got != 1 {
		t.Fatalf("NumLinks = %d, want 1 after alias reduction", got)
	}
	if got := rm.Members(0); !reflect.DeepEqual(got, []int{10, 11, 12}) {
		t.Fatalf("Members(0) = %v, want [10 11 12]", got)
	}
	if k, ok := rm.VirtualOf(11); !ok || k != 0 {
		t.Fatalf("VirtualOf(11) = %d,%v want 0,true", k, ok)
	}
	if _, ok := rm.VirtualOf(99); ok {
		t.Fatal("VirtualOf(99) should report uncovered")
	}
}

func TestBuildMergesNonConsecutiveIndistinguishable(t *testing.T) {
	// Links 1 and 3 appear in exactly the same (single) path, separated by
	// link 2 which also appears in a second path: 1 and 3 merge, 2 stays
	// separate.
	paths := []Path{
		{Beacon: 0, Dst: 9, Links: []int{1, 2, 3}},
		{Beacon: 8, Dst: 9, Links: []int{4, 2}},
	}
	rm, err := Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	if got := rm.NumLinks(); got != 3 {
		t.Fatalf("NumLinks = %d, want 3 (merge {1,3}, keep {2}, {4})", got)
	}
	k1, _ := rm.VirtualOf(1)
	k3, _ := rm.VirtualOf(3)
	k2, _ := rm.VirtualOf(2)
	if k1 != k3 {
		t.Fatalf("links 1 and 3 should share a virtual link, got %d and %d", k1, k3)
	}
	if k2 == k1 {
		t.Fatal("link 2 should not merge with links 1/3")
	}
}

func TestBuildRejectsEmptyAndLoopedPaths(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("Build(nil) should fail")
	}
	if _, err := Build([]Path{{Beacon: 0, Dst: 1}}); err == nil {
		t.Error("Build with empty link list should fail")
	}
	if _, err := Build([]Path{{Beacon: 0, Dst: 1, Links: []int{5, 6, 5}}}); err == nil {
		t.Error("Build with a routing loop should fail")
	}
}

func TestRowsColumnsConsistent(t *testing.T) {
	rm, err := Build(figure1Paths())
	if err != nil {
		t.Fatal(err)
	}
	// Row/column cross-consistency: k ∈ Row(i) ⇔ i ∈ PathsThrough(k).
	for i := 0; i < rm.NumPaths(); i++ {
		for _, k := range rm.Row(i) {
			found := false
			for _, p := range rm.PathsThrough(k) {
				if p == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("link %d lists paths %v, missing %d", k, rm.PathsThrough(k), i)
			}
		}
	}
	for k := 0; k < rm.NumLinks(); k++ {
		for _, p := range rm.PathsThrough(k) {
			found := false
			for _, kk := range rm.Row(p) {
				if kk == k {
					found = true
				}
			}
			if !found {
				t.Fatalf("path %d row %v missing link %d", p, rm.Row(p), k)
			}
		}
	}
}

func TestIntersectRows(t *testing.T) {
	rm, err := Build(figure1Paths())
	if err != nil {
		t.Fatal(err)
	}
	// Paths 1 and 2 share links e1 and e3.
	got := rm.IntersectRows(1, 2, nil)
	if len(got) != 2 {
		t.Fatalf("IntersectRows(1,2) = %v, want 2 shared virtual links", got)
	}
	// Self intersection = own row.
	self := rm.IntersectRows(0, 0, nil)
	if !reflect.DeepEqual(self, rm.Row(0)) {
		t.Fatalf("self-intersection %v != row %v", self, rm.Row(0))
	}
}

func TestDenseMatchesRows(t *testing.T) {
	rm, err := Build(figure1Paths())
	if err != nil {
		t.Fatal(err)
	}
	d := rm.Dense()
	for i := 0; i < rm.NumPaths(); i++ {
		rowSum := 0.0
		for k := 0; k < rm.NumLinks(); k++ {
			rowSum += d.At(i, k)
		}
		if int(rowSum) != len(rm.Row(i)) {
			t.Fatalf("dense row %d sum %v != |row| %d", i, rowSum, len(rm.Row(i)))
		}
	}
}

func TestDenseColumnsSubset(t *testing.T) {
	rm, err := Build(figure1Paths())
	if err != nil {
		t.Fatal(err)
	}
	all := rm.Dense()
	cols := []int{2, 0}
	sub := rm.DenseColumns(cols)
	for i := 0; i < rm.NumPaths(); i++ {
		for j, k := range cols {
			if sub.At(i, j) != all.At(i, k) {
				t.Fatalf("DenseColumns mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestVirtualRates(t *testing.T) {
	paths := []Path{{Beacon: 0, Dst: 3, Links: []int{10, 11}}}
	rm, err := Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	rates := rm.VirtualRates(map[int]float64{10: 0.1, 11: 0.2})
	// Merged virtual link loss = 1 − 0.9·0.8 = 0.28.
	if len(rates) != 1 || rates[0] < 0.2799 || rates[0] > 0.2801 {
		t.Fatalf("VirtualRates = %v, want [0.28]", rates)
	}
}

func TestFindFlutteringDetects(t *testing.T) {
	// P0 and P1 share links 1 and 3 but not the link in between: the
	// classic route-fluttering violation of T.2.
	paths := []Path{
		{Beacon: 0, Dst: 9, Links: []int{1, 2, 3}},
		{Beacon: 7, Dst: 9, Links: []int{0, 1, 4, 3}},
	}
	got := FindFluttering(paths)
	if len(got) != 1 || got[0].I != 0 || got[0].J != 1 {
		t.Fatalf("FindFluttering = %v, want [{0 1}]", got)
	}
}

func TestFindFlutteringAcceptsTreeAndSegments(t *testing.T) {
	// Shared contiguous segment (links 1,2) then divergence: legal.
	paths := []Path{
		{Beacon: 0, Dst: 5, Links: []int{1, 2, 3}},
		{Beacon: 0, Dst: 6, Links: []int{1, 2, 4}},
		{Beacon: 9, Dst: 6, Links: []int{8, 2, 4}},
	}
	if got := FindFluttering(paths); len(got) != 0 {
		t.Fatalf("FindFluttering = %v, want none", got)
	}
}

func TestFindFlutteringReversedSegment(t *testing.T) {
	// Shared links appear in opposite order: contiguous in positions but a
	// direction flip, which must be flagged.
	paths := []Path{
		{Beacon: 0, Dst: 5, Links: []int{1, 2}},
		{Beacon: 3, Dst: 6, Links: []int{2, 1}},
	}
	if got := FindFluttering(paths); len(got) != 1 {
		t.Fatalf("FindFluttering = %v, want one violation", got)
	}
}

func TestRemoveFluttering(t *testing.T) {
	paths := []Path{
		{Beacon: 0, Dst: 9, Links: []int{1, 2, 3}},
		{Beacon: 7, Dst: 9, Links: []int{0, 1, 4, 3}},
		{Beacon: 5, Dst: 6, Links: []int{7}},
	}
	kept, removed := RemoveFluttering(paths)
	if len(kept) != 2 || len(removed) != 1 {
		t.Fatalf("kept %d removed %v, want 2 kept 1 removed", len(kept), removed)
	}
	if got := FindFluttering(kept); len(got) != 0 {
		t.Fatalf("still fluttering after removal: %v", got)
	}
}

func TestRemoveFlutteringNoViolations(t *testing.T) {
	paths := figure1Paths()
	kept, removed := RemoveFluttering(paths)
	if len(kept) != len(paths) || len(removed) != 0 {
		t.Fatalf("expected no removals, got removed=%v", removed)
	}
}

// randomPaths builds a random single-beacon tree-ish path set for exercising
// the pair-support index: path p walks a shared prefix of links plus a
// private suffix, so intersections of every size occur.
func randomPaths(rng *rand.Rand, np int) []Path {
	paths := make([]Path, np)
	for p := 0; p < np; p++ {
		prefix := rng.IntN(6)
		links := make([]int, 0, prefix+3)
		for l := 1; l <= prefix; l++ {
			links = append(links, l) // shared prefix links 1..prefix
		}
		links = append(links, 100+p) // private leaf link
		paths[p] = Path{Beacon: 0, Dst: p + 1, Links: links}
	}
	return paths
}

// toInt32 widens an []int support to the pair index's packed width for
// comparisons.
func toInt32(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

func TestPairSupportMatchesIntersectRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	rm, err := Build(randomPaths(rng, 40))
	if err != nil {
		t.Fatal(err)
	}
	np := rm.NumPaths()
	if want := np * (np + 1) / 2; rm.NumPairs() != want {
		t.Fatalf("NumPairs = %d, want %d", rm.NumPairs(), want)
	}
	for i := 0; i < np; i++ {
		for j := i; j < np; j++ {
			want := toInt32(rm.IntersectRows(i, j, nil))
			got := rm.PairSupport(i, j)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("PairSupport(%d,%d) = %v, want %v", i, j, got, want)
			}
			if sw := rm.PairSupport(j, i); len(sw) > 0 && !reflect.DeepEqual(sw, want) {
				t.Fatalf("PairSupport(%d,%d) (swapped) = %v, want %v", j, i, sw, want)
			}
		}
	}
}

func TestVisitPairSupportsRanges(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 44))
	rm, err := Build(randomPaths(rng, 23))
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ i, j int }
	var fullPairs []pair
	var fullSupports [][]int32
	rm.VisitPairSupports(0, rm.NumPairs(), func(i, j int, support []int32) {
		fullPairs = append(fullPairs, pair{i, j})
		fullSupports = append(fullSupports, support)
	})
	if len(fullPairs) != rm.NumPairs() {
		t.Fatalf("full walk visited %d pairs, want %d", len(fullPairs), rm.NumPairs())
	}
	// The canonical order must agree with PairIndexOf.
	for p, pr := range fullPairs {
		if rm.PairIndexOf(pr.i, pr.j) != p {
			t.Fatalf("pair (%d,%d) visited at position %d, PairIndexOf says %d",
				pr.i, pr.j, p, rm.PairIndexOf(pr.i, pr.j))
		}
	}
	// Any chunked partition must reproduce the full walk exactly.
	for _, chunk := range []int{1, 7, 64, rm.NumPairs()} {
		var pos int
		for lo := 0; lo < rm.NumPairs(); lo += chunk {
			hi := lo + chunk
			if hi > rm.NumPairs() {
				hi = rm.NumPairs()
			}
			rm.VisitPairSupports(lo, hi, func(i, j int, support []int32) {
				if fullPairs[pos] != (pair{i, j}) {
					t.Fatalf("chunk %d: position %d visited (%d,%d), want (%d,%d)",
						chunk, pos, i, j, fullPairs[pos].i, fullPairs[pos].j)
				}
				if !reflect.DeepEqual(support, fullSupports[pos]) {
					t.Fatalf("chunk %d: pair (%d,%d) support %v, want %v",
						chunk, i, j, support, fullSupports[pos])
				}
				pos++
			})
		}
		if pos != rm.NumPairs() {
			t.Fatalf("chunk %d: visited %d pairs, want %d", chunk, pos, rm.NumPairs())
		}
	}
}

func TestPairSupportConcurrentFirstUse(t *testing.T) {
	// The lazy index build must be safe when the first accesses race.
	rng := rand.New(rand.NewPCG(45, 46))
	rm, err := Build(randomPaths(rng, 30))
	if err != nil {
		t.Fatal(err)
	}
	want := toInt32(rm.IntersectRows(0, rm.NumPaths()-1, nil))
	var wg sync.WaitGroup
	got := make([][]int32, 8)
	for w := range got {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = rm.PairSupport(0, rm.NumPaths()-1)
		}(w)
	}
	wg.Wait()
	for w := range got {
		if len(want) == 0 && len(got[w]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[w], want) {
			t.Fatalf("goroutine %d saw support %v, want %v", w, got[w], want)
		}
	}
}

func TestPairIndexOverflowGuard(t *testing.T) {
	// The int32-packed index must refuse to build silently-truncated
	// offsets. Lower the capacity to force the guard on a small matrix.
	defer func(old int64) { maxPairIndexEntries = old }(maxPairIndexEntries)
	maxPairIndexEntries = 3

	rng := rand.New(rand.NewPCG(47, 48))
	rm, err := Build(randomPaths(rng, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.PrecomputePairSupports(); !errors.Is(err, ErrPairIndexOverflow) {
		t.Fatalf("PrecomputePairSupports = %v, want ErrPairIndexOverflow", err)
	}
	// Bypassing the error-returning gate still fails loudly, never with a
	// truncated index.
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected PairSupport on an overflowed index to panic")
		}
	}()
	rm.PairSupport(0, 1)
}

func TestPairIndexInt32Width(t *testing.T) {
	// The packed supports must agree with the wide IntersectRows on every
	// pair — the int32 narrowing loses nothing.
	rng := rand.New(rand.NewPCG(49, 50))
	rm, err := Build(randomPaths(rng, 17))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	rm.VisitPairSupports(0, rm.NumPairs(), func(i, j int, support []int32) {
		want := rm.IntersectRows(i, j, nil)
		if len(want) != len(support) {
			t.Fatalf("pair (%d,%d): packed %d links, wide %d", i, j, len(support), len(want))
		}
		for x := range want {
			if int(support[x]) != want[x] {
				t.Fatalf("pair (%d,%d) entry %d: %d vs %d", i, j, x, support[x], want[x])
			}
		}
		total += len(support)
	})
	if total == 0 {
		t.Fatal("degenerate path set: no shared links at all")
	}
}
