package topology

import (
	"reflect"
	"testing"
)

// starPaths builds a 2-level star component: n leaf paths sharing one root
// link, with link IDs offset by base so several stars are link-disjoint.
func starPaths(base, beacon, n int) []Path {
	paths := make([]Path, n)
	for i := range paths {
		paths[i] = Path{Beacon: beacon, Dst: beacon + 1 + i, Links: []int{base, base + 1 + i}}
	}
	return paths
}

// interleave merges several path sets round-robin, so component rows are
// non-contiguous in the global matrix and the index maps actually work.
func interleave(sets ...[]Path) []Path {
	var out []Path
	for i := 0; ; i++ {
		added := false
		for _, s := range sets {
			if i < len(s) {
				out = append(out, s[i])
				added = true
			}
		}
		if !added {
			return out
		}
	}
}

func TestPartitionConnectedTopology(t *testing.T) {
	rm, err := Build(starPaths(0, 100, 5))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartition(rm)
	if p.NumComponents() != 1 {
		t.Fatalf("connected star split into %d components", p.NumComponents())
	}
	comp := p.Component(0)
	if len(comp.Paths) != rm.NumPaths() || len(comp.Links) != rm.NumLinks() {
		t.Fatalf("component covers %d paths / %d links, want %d / %d",
			len(comp.Paths), len(comp.Links), rm.NumPaths(), rm.NumLinks())
	}
	shards := p.Shards(4)
	if len(shards) != 1 || len(shards[0]) != 1 {
		t.Fatalf("Shards(4) on one component = %v, want one singleton shard", shards)
	}
	sub, links, err := p.ComponentMatrix(0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumPaths() != rm.NumPaths() || sub.NumLinks() != rm.NumLinks() {
		t.Fatalf("component matrix is %dx%d, want %dx%d",
			sub.NumPaths(), sub.NumLinks(), rm.NumPaths(), rm.NumLinks())
	}
	// The rebuilt matrix of the sole component is the original matrix: same
	// paths in the same order, so the reduction is identical.
	for i := 0; i < rm.NumPaths(); i++ {
		want := rm.Row(i)
		got := make([]int, 0, len(want))
		for _, kl := range sub.Row(i) {
			got = append(got, links[kl])
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("path %d: component row maps to %v, want %v", i, got, want)
		}
	}
}

func TestPartitionDisjointComponents(t *testing.T) {
	a := starPaths(0, 100, 4)
	b := starPaths(1000, 200, 3)
	c := starPaths(2000, 300, 2)
	rm, err := Build(interleave(a, b, c))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartition(rm)
	if p.NumComponents() != 3 {
		t.Fatalf("3 disjoint stars split into %d components", p.NumComponents())
	}
	// Every path's component agrees with its links' components, and the
	// per-component path/link lists are exactly the global index sets.
	seenPaths, seenLinks := 0, 0
	for ci := 0; ci < p.NumComponents(); ci++ {
		comp := p.Component(ci)
		seenPaths += len(comp.Paths)
		seenLinks += len(comp.Links)
		for _, pi := range comp.Paths {
			if p.ComponentOfPath(pi) != ci {
				t.Fatalf("path %d listed in component %d but maps to %d", pi, ci, p.ComponentOfPath(pi))
			}
			for _, k := range rm.Row(pi) {
				if p.ComponentOfLink(k) != ci {
					t.Fatalf("path %d (component %d) traverses link %d of component %d",
						pi, ci, k, p.ComponentOfLink(k))
				}
			}
		}
	}
	if seenPaths != rm.NumPaths() || seenLinks != rm.NumLinks() {
		t.Fatalf("components cover %d paths / %d links, want %d / %d",
			seenPaths, seenLinks, rm.NumPaths(), rm.NumLinks())
	}
	// Component matrices map 1:1 back onto the global virtual links.
	for ci := 0; ci < p.NumComponents(); ci++ {
		sub, links, err := p.ComponentMatrix(ci)
		if err != nil {
			t.Fatal(err)
		}
		comp := p.Component(ci)
		if sub.NumLinks() != len(comp.Links) || sub.NumPaths() != len(comp.Paths) {
			t.Fatalf("component %d matrix is %dx%d, want %dx%d",
				ci, sub.NumPaths(), sub.NumLinks(), len(comp.Paths), len(comp.Links))
		}
		for kl, kg := range links {
			if !reflect.DeepEqual(sub.Members(kl), rm.Members(kg)) {
				t.Fatalf("component %d local link %d members %v != global link %d members %v",
					ci, kl, sub.Members(kl), kg, rm.Members(kg))
			}
		}
		for pl, pg := range comp.Paths {
			want := rm.Row(pg)
			got := make([]int, 0, len(want))
			for _, kl := range sub.Row(pl) {
				got = append(got, links[kl])
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("component %d local path %d maps to links %v, global path %d has %v",
					ci, pl, got, pg, want)
			}
		}
	}
}

func TestPartitionSinglePathComponents(t *testing.T) {
	// Every path uses its own private links: np singleton components.
	paths := []Path{
		{Beacon: 0, Dst: 1, Links: []int{10, 11}},
		{Beacon: 0, Dst: 2, Links: []int{20}},
		{Beacon: 0, Dst: 3, Links: []int{30, 31, 32}},
	}
	rm, err := Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartition(rm)
	if p.NumComponents() != 3 {
		t.Fatalf("3 link-disjoint paths split into %d components", p.NumComponents())
	}
	for ci := 0; ci < 3; ci++ {
		comp := p.Component(ci)
		if len(comp.Paths) != 1 || comp.Paths[0] != ci {
			t.Fatalf("component %d holds paths %v, want [%d]", ci, comp.Paths, ci)
		}
		sub, _, err := p.ComponentMatrix(ci)
		if err != nil {
			t.Fatal(err)
		}
		// An unbranched single path alias-reduces to one virtual link.
		if sub.NumPaths() != 1 || sub.NumLinks() != 1 {
			t.Fatalf("component %d matrix is %dx%d, want 1x1", ci, sub.NumPaths(), sub.NumLinks())
		}
	}
}

func TestPartitionAfterFlutteringRepair(t *testing.T) {
	// Two routes between the same host pair disagreeing on links (route
	// fluttering, T.2): the repair drops the later one, and the partition
	// of the repaired set must not reference the dropped row.
	flutter := []Path{
		{Beacon: 0, Dst: 5, Links: []int{1, 2, 3}},
		{Beacon: 0, Dst: 6, Links: []int{1, 9, 3}}, // meets 1, diverges, re-meets 3
		{Beacon: 0, Dst: 7, Links: []int{1, 4}},
		{Beacon: 9, Dst: 8, Links: []int{100}},
	}
	kept, removed := RemoveFluttering(flutter)
	if len(removed) == 0 {
		t.Fatal("fluttering path set repaired nothing")
	}
	rm, err := Build(kept)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartition(rm)
	if p.NumComponents() != 2 {
		t.Fatalf("repaired set split into %d components, want 2", p.NumComponents())
	}
	total := 0
	for ci := 0; ci < p.NumComponents(); ci++ {
		comp := p.Component(ci)
		total += len(comp.Paths)
		for _, pi := range comp.Paths {
			if pi >= rm.NumPaths() {
				t.Fatalf("component %d references row %d beyond the repaired matrix (%d rows)",
					ci, pi, rm.NumPaths())
			}
		}
		if _, _, err := p.ComponentMatrix(ci); err != nil {
			t.Fatalf("component %d: %v", ci, err)
		}
	}
	if total != len(kept) {
		t.Fatalf("components cover %d paths, repaired set has %d", total, len(kept))
	}
}

func TestPartitionShardsBalanceAndCap(t *testing.T) {
	// Components of very different weight: 8, 4, 3, 1, 1 paths.
	rm, err := Build(interleave(
		starPaths(0, 100, 8),
		starPaths(1000, 200, 4),
		starPaths(2000, 300, 3),
		starPaths(3000, 400, 1),
		starPaths(4000, 500, 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartition(rm)
	if p.NumComponents() != 5 {
		t.Fatalf("got %d components, want 5", p.NumComponents())
	}
	// k beyond the component count caps at one shard per component.
	if got := p.Shards(64); len(got) != 5 {
		t.Fatalf("Shards(64) produced %d shards, want 5", len(got))
	}
	// k = 2: LPT must not put the heaviest two components together while a
	// lighter shard exists; with weights 36, 10, 6, 1, 1 the heavy star sits
	// alone-ish and total weight splits 36 vs 18.
	shards := p.Shards(2)
	if len(shards) != 2 {
		t.Fatalf("Shards(2) produced %d shards", len(shards))
	}
	covered := map[int]bool{}
	loads := make([]int, len(shards))
	for si, s := range shards {
		for _, c := range s {
			if covered[c] {
				t.Fatalf("component %d assigned twice", c)
			}
			covered[c] = true
			loads[si] += p.PairWeight(c)
		}
		if len(s) == 0 {
			t.Fatalf("shard %d is empty", si)
		}
	}
	if len(covered) != 5 {
		t.Fatalf("shards cover %d components, want 5", len(covered))
	}
	if loads[0]+loads[1] != 36+10+6+1+1 {
		t.Fatalf("shard loads %v do not cover the total weight", loads)
	}
	max := loads[0]
	if loads[1] > max {
		max = loads[1]
	}
	if max != 36 {
		t.Fatalf("max shard load %d, LPT should isolate the 36-weight component", max)
	}
	// Determinism: same inputs, same layout.
	if again := p.Shards(2); !reflect.DeepEqual(again, shards) {
		t.Fatalf("Shards(2) not deterministic: %v then %v", shards, again)
	}
	// k < 1 degrades to a single shard holding everything.
	if one := p.Shards(0); len(one) != 1 || len(one[0]) != 5 {
		t.Fatalf("Shards(0) = %v, want one shard with all 5 components", one)
	}
}
