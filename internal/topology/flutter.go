package topology

import "sort"

// FlutterPair identifies two paths violating Assumption T.2: they meet at a
// link, diverge, and meet again at a later link without sharing the links in
// between.
type FlutterPair struct {
	I, J int // path indices, I < J
}

// FindFluttering returns all path pairs that violate Assumption T.2
// ("no route fluttering"). Two paths violate it when the set of links they
// share is not a contiguous segment of both paths.
//
// The check is performed on physical links (before alias reduction), which
// is what traceroute-derived paths expose.
func FindFluttering(paths []Path) []FlutterPair {
	// Inverted index to enumerate only pairs that share at least one link.
	pathsOf := make(map[int][]int)
	for i, p := range paths {
		for _, l := range p.Links {
			pathsOf[l] = append(pathsOf[l], i)
		}
	}
	cand := make(map[[2]int]bool)
	for _, ps := range pathsOf {
		for x := 0; x < len(ps); x++ {
			for y := x + 1; y < len(ps); y++ {
				cand[[2]int{ps[x], ps[y]}] = true
			}
		}
	}
	var out []FlutterPair
	for pair := range cand {
		if pathsFlutter(paths[pair[0]], paths[pair[1]]) {
			out = append(out, FlutterPair{I: pair[0], J: pair[1]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// pathsFlutter reports whether the shared links of a and b fail to form a
// contiguous common segment in both paths.
func pathsFlutter(a, b Path) bool {
	inB := make(map[int]int, len(b.Links)) // link -> position in b
	for pos, l := range b.Links {
		inB[l] = pos
	}
	// Positions in a (ascending) of shared links, with their positions in b.
	var posA, posB []int
	for pa, l := range a.Links {
		if pb, ok := inB[l]; ok {
			posA = append(posA, pa)
			posB = append(posB, pb)
		}
	}
	if len(posA) < 2 {
		return false
	}
	// Contiguity in a: shared positions must be consecutive.
	for i := 1; i < len(posA); i++ {
		if posA[i] != posA[i-1]+1 {
			return true
		}
	}
	// Contiguity and identical order in b.
	for i := 1; i < len(posB); i++ {
		if posB[i] != posB[i-1]+1 {
			return true
		}
	}
	return false
}

// RemoveFluttering drops the minimum-index path of every fluttering pair
// until no violation remains, mirroring the paper's treatment ("we keep only
// the measurements on one path and ignore the others"). It returns the
// retained paths and the indices (into the original slice) of removed paths.
func RemoveFluttering(paths []Path) (kept []Path, removed []int) {
	drop := make(map[int]bool)
	for {
		var active []Path
		var activeIdx []int
		for i, p := range paths {
			if !drop[i] {
				active = append(active, p)
				activeIdx = append(activeIdx, i)
			}
		}
		pairs := FindFluttering(active)
		if len(pairs) == 0 {
			for i := range paths {
				if drop[i] {
					removed = append(removed, i)
				}
			}
			sort.Ints(removed)
			return active, removed
		}
		// Drop the path appearing in the most violations (greedy), breaking
		// ties toward the larger index so earlier-measured paths survive.
		count := make(map[int]int)
		for _, pr := range pairs {
			count[activeIdx[pr.I]]++
			count[activeIdx[pr.J]]++
		}
		worst, worstN := -1, -1
		for idx, n := range count {
			if n > worstN || (n == worstN && idx > worst) {
				worst, worstN = idx, n
			}
		}
		drop[worst] = true
	}
}
