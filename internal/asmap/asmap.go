// Package asmap provides the autonomous-system analysis of Section 7.2.2:
// classifying congested links as inter- or intra-AS (Table 3) and tracking
// how long links stay congested across consecutive snapshots.
package asmap

import (
	"fmt"

	"lia/internal/topogen"
	"lia/internal/topology"
)

// InterASLinks classifies every virtual link of the routing matrix: a
// virtual link is inter-AS when any of its member physical links crosses an
// AS boundary (a congested alias group containing a peering link is
// attributed to the boundary, the usual bottleneck).
func InterASLinks(net *topogen.Network, rm *topology.RoutingMatrix) []bool {
	out := make([]bool, rm.NumLinks())
	for k := 0; k < rm.NumLinks(); k++ {
		for _, member := range rm.Members(k) {
			if net.InterAS(member) {
				out[k] = true
				break
			}
		}
	}
	return out
}

// Location is one Table 3 row: the share of congested links that are
// inter- vs intra-AS at a given loss threshold.
type Location struct {
	Threshold float64
	Congested int
	InterAS   float64 // fraction of congested links crossing AS boundaries
	IntraAS   float64
}

// LocateCongested computes Table 3 rows for the given thresholds from
// inferred loss rates.
func LocateCongested(interAS []bool, lossRates []float64, thresholds []float64) ([]Location, error) {
	if len(interAS) != len(lossRates) {
		return nil, fmt.Errorf("asmap: %d classifications for %d rates", len(interAS), len(lossRates))
	}
	out := make([]Location, 0, len(thresholds))
	for _, tl := range thresholds {
		var inter, total int
		for k, q := range lossRates {
			if q > tl {
				total++
				if interAS[k] {
					inter++
				}
			}
		}
		loc := Location{Threshold: tl, Congested: total}
		if total > 0 {
			loc.InterAS = float64(inter) / float64(total)
			loc.IntraAS = 1 - loc.InterAS
		}
		out = append(out, loc)
	}
	return out, nil
}

// DurationTracker measures, per link, how many consecutive snapshots the
// link stays classified as congested.
type DurationTracker struct {
	open      []int // current run length per link (0 = not congested)
	completed []int // lengths of finished congestion episodes
	snapshots int
}

// NewDurationTracker tracks n links.
func NewDurationTracker(n int) *DurationTracker {
	return &DurationTracker{open: make([]int, n)}
}

// Observe folds one snapshot's congestion classification.
func (d *DurationTracker) Observe(congested []bool) {
	if len(congested) != len(d.open) {
		panic(fmt.Sprintf("asmap: observed %d links, tracking %d", len(congested), len(d.open)))
	}
	d.snapshots++
	for k, c := range congested {
		switch {
		case c:
			d.open[k]++
		case d.open[k] > 0:
			d.completed = append(d.completed, d.open[k])
			d.open[k] = 0
		}
	}
}

// Snapshots returns the number of snapshots observed.
func (d *DurationTracker) Snapshots() int { return d.snapshots }

// Episodes returns all completed episode lengths plus the still-open runs.
func (d *DurationTracker) Episodes() []int {
	out := append([]int(nil), d.completed...)
	for _, run := range d.open {
		if run > 0 {
			out = append(out, run)
		}
	}
	return out
}

// Fractions returns the share of episodes with length exactly 1, exactly 2,
// and 3 or more (the paper reports 99% / 1% / ~0%).
func (d *DurationTracker) Fractions() (one, two, more float64) {
	eps := d.Episodes()
	if len(eps) == 0 {
		return 0, 0, 0
	}
	var c1, c2, cm int
	for _, e := range eps {
		switch {
		case e == 1:
			c1++
		case e == 2:
			c2++
		default:
			cm++
		}
	}
	n := float64(len(eps))
	return float64(c1) / n, float64(c2) / n, float64(cm) / n
}
