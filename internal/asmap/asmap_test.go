package asmap

import (
	"math"
	"testing"

	"lia/internal/graph"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func twoASNetwork(t *testing.T) (*topogen.Network, *topology.RoutingMatrix) {
	t.Helper()
	// 0,1 in AS 0; 2,3 in AS 1. Edges: 0-1 (intra), 1-2 (inter), 2-3 (intra).
	g := graph.New(4)
	e01, _ := g.AddBidirectional(0, 1, 1)
	e12, _ := g.AddBidirectional(1, 2, 1)
	e23, _ := g.AddBidirectional(2, 3, 1)
	net := &topogen.Network{Name: "test", G: g, Hosts: []int{0, 3}, AS: []int{0, 0, 1, 1}}
	paths := []topology.Path{
		{Beacon: 0, Dst: 3, Links: []int{e01, e12, e23}},
		{Beacon: 0, Dst: 2, Links: []int{e01, e12}},
	}
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	return net, rm
}

func TestInterASLinks(t *testing.T) {
	net, rm := twoASNetwork(t)
	inter := InterASLinks(net, rm)
	// Find the virtual link containing physical link 2 (edge 1→2).
	k12, ok := rm.VirtualOf(2)
	if !ok {
		t.Fatal("edge 1→2 not covered")
	}
	for k, isInter := range inter {
		if k == k12 {
			if !isInter {
				t.Error("boundary link classified intra-AS")
			}
		} else if isInter {
			t.Errorf("virtual link %d wrongly classified inter-AS", k)
		}
	}
}

func TestLocateCongested(t *testing.T) {
	inter := []bool{true, false, false, true}
	rates := []float64{0.05, 0.03, 0.001, 0.001}
	locs, err := LocateCongested(inter, rates, []float64{0.02, 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	// tl=0.02: links 0 (inter) and 1 (intra) congested → 50/50.
	if locs[0].Congested != 2 || math.Abs(locs[0].InterAS-0.5) > 1e-12 {
		t.Fatalf("tl=0.02: %+v", locs[0])
	}
	// tl=0.0005: all four → 2/4 inter.
	if locs[1].Congested != 4 || math.Abs(locs[1].InterAS-0.5) > 1e-12 {
		t.Fatalf("tl=0.0005: %+v", locs[1])
	}
	if _, err := LocateCongested(inter[:2], rates, []float64{0.1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestLocateCongestedEmpty(t *testing.T) {
	locs, err := LocateCongested([]bool{false}, []float64{0}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if locs[0].Congested != 0 || locs[0].InterAS != 0 || locs[0].IntraAS != 0 {
		t.Fatalf("empty congested set: %+v", locs[0])
	}
}

func TestDurationTracker(t *testing.T) {
	d := NewDurationTracker(2)
	// Link 0: episodes of length 2 then 1. Link 1: one open run of 3.
	d.Observe([]bool{true, true})
	d.Observe([]bool{true, true})
	d.Observe([]bool{false, true})
	d.Observe([]bool{true, false})
	eps := d.Episodes()
	// Completed: link0 len2, link1 len3; open: link0 len1.
	if len(eps) != 3 {
		t.Fatalf("episodes = %v", eps)
	}
	one, two, more := d.Fractions()
	if math.Abs(one-1.0/3) > 1e-12 || math.Abs(two-1.0/3) > 1e-12 || math.Abs(more-1.0/3) > 1e-12 {
		t.Fatalf("fractions = %v %v %v", one, two, more)
	}
	if d.Snapshots() != 4 {
		t.Fatalf("snapshots = %d", d.Snapshots())
	}
}

func TestDurationTrackerEmpty(t *testing.T) {
	d := NewDurationTracker(3)
	one, two, more := d.Fractions()
	if one != 0 || two != 0 || more != 0 {
		t.Fatal("empty tracker should report zero fractions")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	d.Observe([]bool{true})
}
