package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"lia/internal/core"
	"lia/internal/stats"
)

// Figure5 regenerates the paper's Figure 5: detection rate and false
// positive rate of LIA versus single-snapshot SCFS on the 1000-node tree as
// the number of learning snapshots m grows from 10 to 100.
func Figure5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	checkpoints := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	type agg struct{ liaDR, liaFPR, liaStrict, scfsDR, scfsFPR float64 }
	sum := make(map[int]*agg, len(checkpoints))
	for _, m := range checkpoints {
		sum[m] = &agg{}
	}
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(run)))
		w, err := MakeWorkload("tree", cfg, rng)
		if err != nil {
			return nil, err
		}
		results, err := RunCheckpoints(w, cfg, uint64(run), checkpoints)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			a := sum[r.M]
			a.liaDR += r.LIA.Det.DR
			a.liaFPR += r.LIA.Det.FPR
			a.liaStrict += r.LIA.StrictFPR
			a.scfsDR += r.SCFS.DR
			a.scfsFPR += r.SCFS.FPR
		}
	}
	t := &Table{
		Title:     "Figure 5: congested-link location vs number of snapshots m (tree, p=10%)",
		Header:    []string{"m", "LIA DR", "LIA FPR", "LIA FPR*", "SCFS DR", "SCFS FPR"},
		Precision: []int{0, 3, 3, 3, 3, 3},
	}
	n := float64(cfg.Runs)
	for _, m := range checkpoints {
		a := sum[m]
		t.AddRow("", float64(m), a.liaDR/n, a.liaFPR/n, a.liaStrict/n, a.scfsDR/n, a.scfsFPR/n)
	}
	return t, nil
}

// Figure6 regenerates Figure 6: the CDFs of the absolute error and of the
// error factor fδ at m = 50 snapshots on the tree topology.
func Figure6(cfg Config) (absCDF, efCDF *Table, err error) {
	cfg = cfg.withDefaults()
	var absErrs, efs []float64
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(run)))
		w, err := MakeWorkload("tree", cfg, rng)
		if err != nil {
			return nil, nil, err
		}
		r, err := RunOnce(w, cfg, uint64(run))
		if err != nil {
			return nil, nil, err
		}
		absErrs = append(absErrs, r.LIA.AbsErrors...)
		efs = append(efs, r.LIA.ErrFactors...)
	}
	absCDF = &Table{
		Title:     fmt.Sprintf("Figure 6a: CDF of absolute error (m=%d)", cfg.Snapshots),
		Header:    []string{"abs error", "CDF"},
		Precision: []int{5, 3},
	}
	grid := []float64{0, 0.00025, 0.0005, 0.00075, 0.001, 0.00125, 0.0015, 0.002, 0.0025, 0.005, 0.01, 0.02}
	for i, c := range stats.CDF(absErrs, grid) {
		absCDF.AddRow("", grid[i], c)
	}
	efCDF = &Table{
		Title:     fmt.Sprintf("Figure 6b: CDF of error factor fδ (m=%d, δ=%g)", cfg.Snapshots, stats.DefaultDelta),
		Header:    []string{"error factor", "CDF"},
		Precision: []int{3, 3},
	}
	efGrid := []float64{1, 1.01, 1.02, 1.05, 1.1, 1.15, 1.2, 1.25, 1.5, 2, 3, 5}
	for i, c := range stats.CDF(efs, efGrid) {
		efCDF.AddRow("", efGrid[i], c)
	}
	return absCDF, efCDF, nil
}

// table2Topologies are the six rows of Table 2, in paper order.
var table2Topologies = []string{
	"barabasi-albert", "waxman", "hierarchical-td", "hierarchical-bu", "planetlab", "dimes",
}

// Table2 regenerates Table 2: location accuracy and loss-rate error
// statistics across the six mesh topologies.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: fmt.Sprintf("Table 2: simulations on mesh topologies (p=%.0f%%, m=%d, S=%d)",
			cfg.Fraction*100, cfg.Snapshots, cfg.Probes),
		Header:    []string{"DR", "FPR", "FPR*", "EF max", "EF med", "EF min", "AE max", "AE med", "AE min"},
		Precision: []int{3, 3, 3, 2, 2, 2, 4, 4, 4},
	}
	for _, name := range table2Topologies {
		var dr, fpr, strict float64
		var efs, aes []float64
		for run := 0; run < cfg.Runs; run++ {
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(run)*31+7))
			w, err := MakeWorkload(name, cfg, rng)
			if err != nil {
				return nil, err
			}
			r, err := RunOnce(w, cfg, uint64(run))
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", name, run, err)
			}
			dr += r.LIA.Det.DR
			fpr += r.LIA.Det.FPR
			strict += r.LIA.StrictFPR
			efs = append(efs, r.LIA.ErrFactors...)
			aes = append(aes, r.LIA.AbsErrors...)
		}
		n := float64(cfg.Runs)
		ef := stats.Summarize(efs)
		ae := stats.Summarize(aes)
		t.AddRow(name, dr/n, fpr/n, strict/n, ef.Max, ef.Median, ef.Min, ae.Max, ae.Median, ae.Min)
	}
	return t, nil
}

// Figure7 regenerates Figure 7: the ratio between the number of congested
// links and the number of columns retained in R*, per topology. A ratio
// below 1 means the full-rank reduction never had to discard a congested
// link.
func Figure7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:     "Figure 7: (#congested links) / (#columns of R*)",
		Header:    []string{"ratio", "congested", "kept"},
		Precision: []int{3, 1, 1},
	}
	for _, name := range TopologyNames {
		var ratio, cong, kept float64
		for run := 0; run < cfg.Runs; run++ {
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(run)*17+3))
			w, err := MakeWorkload(name, cfg, rng)
			if err != nil {
				return nil, err
			}
			r, err := RunOnce(w, cfg, uint64(run))
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", name, run, err)
			}
			ratio += float64(r.LIA.Congested) / float64(r.LIA.Kept)
			cong += float64(r.LIA.Congested)
			kept += float64(r.LIA.Kept)
		}
		n := float64(cfg.Runs)
		t.AddRow(name, ratio/n, cong/n, kept/n)
	}
	return t, nil
}

// Figure8a regenerates Figure 8(a): DR and FPR as the fraction of congested
// links p sweeps from 5% to 25% on the planetlab-like topology.
func Figure8a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:     "Figure 8a: accuracy vs fraction of congested links p (planetlab-like)",
		Header:    []string{"p", "DR", "FPR", "FPR*"},
		Precision: []int{2, 3, 3, 3},
	}
	for _, p := range []float64{0.05, 0.10, 0.15, 0.20, 0.25} {
		c := cfg
		c.Fraction = p
		dr, fpr, strict, err := sweepPoint("planetlab", c)
		if err != nil {
			return nil, err
		}
		t.AddRow("", p, dr, fpr, strict)
	}
	return t, nil
}

// Figure8b regenerates Figure 8(b): DR and FPR as the number of probes per
// snapshot S sweeps from 50 to 1000. The sweep exists to expose probe
// sampling error, so it always runs at packet fidelity (under exact link
// aggregation S only quantizes the realized rates and the curve is flat).
func Figure8b(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cfg.Fidelity = FidelityPacketShared
	t := &Table{
		Title:     "Figure 8b: accuracy vs probes per snapshot S (planetlab-like)",
		Header:    []string{"S", "DR", "FPR", "FPR*"},
		Precision: []int{0, 3, 3, 3},
	}
	for _, s := range []int{50, 200, 400, 600, 800, 1000} {
		c := cfg
		c.Probes = s
		dr, fpr, strict, err := sweepPoint("planetlab", c)
		if err != nil {
			return nil, err
		}
		t.AddRow("", float64(s), dr, fpr, strict)
	}
	return t, nil
}

func sweepPoint(name string, cfg Config) (dr, fpr, strict float64, err error) {
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(run)*13+11))
		w, err := MakeWorkload(name, cfg, rng)
		if err != nil {
			return 0, 0, 0, err
		}
		r, err := RunOnce(w, cfg, uint64(run))
		if err != nil {
			return 0, 0, 0, err
		}
		dr += r.LIA.Det.DR
		fpr += r.LIA.Det.FPR
		strict += r.LIA.StrictFPR
	}
	n := float64(cfg.Runs)
	return dr / n, fpr / n, strict / n, nil
}

// Figure3 regenerates Figure 3: the relationship between the mean and the
// variance of per-path loss rates across repeated measurements (the paper
// plots 17,200 PlanetLab paths over one day; we bin the simulated scatter).
// The last column reports the Pearson correlation between a path's mean loss
// and its variance, quantifying the monotonicity assumption S.3.
func Figure3(cfg Config, samples int) (*Table, float64, error) {
	cfg = cfg.withDefaults()
	if samples <= 1 {
		samples = 250 // the paper's per-path sample count
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 333))
	w, err := MakeWorkload("planetlab", cfg, rng)
	if err != nil {
		return nil, 0, err
	}
	series := SimulateSeries(w, cfg, 333, samples)
	np := w.RM.NumPaths()
	means := make([]float64, np)
	vars := make([]float64, np)
	for i := 0; i < np; i++ {
		obs := make([]float64, len(series))
		for t, rec := range series {
			obs[t] = 1 - rec.Snap.Frac[i]
		}
		means[i] = stats.Mean(obs)
		vars[i] = stats.Variance(obs)
	}
	corr := stats.Pearson(means, vars)
	// Bin paths by mean loss.
	type bin struct {
		sumVar float64
		n      int
	}
	const nbins = 12
	maxMean := 0.0
	for _, m := range means {
		if m > maxMean {
			maxMean = m
		}
	}
	if maxMean == 0 {
		maxMean = 1e-9
	}
	bins := make([]bin, nbins)
	for i := range means {
		b := int(means[i] / maxMean * float64(nbins-1))
		bins[b].sumVar += vars[i]
		bins[b].n++
	}
	t := &Table{
		Title:     fmt.Sprintf("Figure 3: mean vs variance of path loss rates (%d paths, %d samples, corr=%.3f)", np, samples, corr),
		Header:    []string{"mean loss (bin center)", "avg variance", "paths"},
		Precision: []int{4, 6, 0},
	}
	for b := range bins {
		if bins[b].n == 0 {
			continue
		}
		center := (float64(b) + 0.5) / nbins * maxMean
		t.AddRow("", center, bins[b].sumVar/float64(bins[b].n), float64(bins[b].n))
	}
	return t, corr, nil
}

// RunningTimes reproduces the Section 6.4 measurements: wall-clock time of
// (a) building the Gram system for A once, (b) the Phase-1 variance solve,
// and (c) the Phase-2 reduced solve, on the named topology.
func RunningTimes(cfg Config, name string) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 999))
	w, err := MakeWorkload(name, cfg, rng)
	if err != nil {
		return nil, err
	}
	series := SimulateSeries(w, cfg, 999, cfg.Snapshots+1)
	l := core.New(w.RM, core.Options{Strategy: cfg.Strategy, Variance: cfg.Variance})
	for t := 0; t < cfg.Snapshots; t++ {
		l.AddSnapshot(series[t].Snap.LogRates())
	}
	// The one-time pair-support index build is timed on its own: folding it
	// into the A-build number would conflate a per-topology cost with the
	// steady-state Gram fold (which the benchmarks measure index-warm).
	ti := time.Now()
	if err := w.RM.PrecomputePairSupports(); err != nil {
		return nil, err
	}
	indexMS := time.Since(ti).Seconds() * 1000

	t0 := time.Now()
	buildGram := func() {
		gr := core.NewGram(w.RM.NumLinks())
		core.VisitPairs(w.RM, func(i, j int, support []int32) {
			if len(support) > 0 {
				gr.AddEquation(support, 0)
			}
		})
	}
	buildGram()
	gramMS := time.Since(t0).Seconds() * 1000

	t1 := time.Now()
	if _, err := l.Variances(); err != nil {
		return nil, err
	}
	phase1MS := time.Since(t1).Seconds() * 1000

	t2 := time.Now()
	if _, err := l.Infer(series[cfg.Snapshots].Snap.LogRates()); err != nil {
		return nil, err
	}
	phase2MS := time.Since(t2).Seconds() * 1000

	tab := &Table{
		Title:     fmt.Sprintf("Section 6.4: running times on %s (np=%d, nc=%d)", name, w.RM.NumPaths(), w.RM.NumLinks()),
		Header:    []string{"pair index (ms)", "A build (ms)", "phase 1 (ms)", "phase 2 (ms)"},
		Precision: []int{2, 2, 2, 2},
	}
	tab.AddRow(name, indexMS, gramMS, phase1MS, phase2MS)
	return tab, nil
}
