// Package experiments contains one runner per table and figure of the
// paper's evaluation (Sections 6 and 7). The same runners back the
// cmd/liasim command-line tool and the repository-level benchmarks, so the
// published results can be regenerated from either entry point.
package experiments

import (
	"fmt"
	"math/rand/v2"

	"lia/internal/core"
	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// Config carries the simulation parameters shared by all experiments.
// Zero values select the paper's defaults.
type Config struct {
	Seed      uint64  // base RNG seed (default 1)
	Snapshots int     // m, learning snapshots (default 50)
	Probes    int     // S, probes per snapshot (default 1000)
	Fraction  float64 // p, fraction of congested links (default 0.10)
	Runs      int     // experiment repetitions (default 10)
	Scale     float64 // topology size multiplier (default 1.0)

	Model    lossmodel.RateModel     // LLRD1 (default) or LLRD2
	Kind     lossmodel.ProcessKind   // Gilbert (default) or Bernoulli
	Good     lossmodel.GoodRateShape // good-link rate distribution
	Fidelity Fidelity                // snapshot generation fidelity
	Strategy core.Elimination        // Phase-2 elimination strategy
	Variance core.VarianceOptions    // Phase-1 solver options
}

// Fidelity selects how snapshots are generated (see netsim.Mode).
type Fidelity int

const (
	// FidelityExact (default) aggregates losses at the link level so
	// Y = R·X holds exactly — the regime behind the paper's error tables.
	FidelityExact Fidelity = iota
	// FidelityPacketShared keeps per-probe path trials over shared link
	// state sequences (S.1 exact, path sampling noise present).
	FidelityPacketShared
	// FidelityPacketPerPath is the fully packet-level simulation with
	// independent per-(path,link) processes (S.1 approximate).
	FidelityPacketPerPath
)

func (f Fidelity) String() string {
	switch f {
	case FidelityPacketShared:
		return "packet-shared"
	case FidelityPacketPerPath:
		return "packet-per-path"
	default:
		return "exact"
	}
}

// Mode maps the fidelity to the simulator mode.
func (f Fidelity) Mode() netsim.Mode {
	switch f {
	case FidelityPacketShared:
		return netsim.ModePacketShared
	case FidelityPacketPerPath:
		return netsim.ModePacketPerPath
	default:
		return netsim.ModeExact
	}
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Snapshots == 0 {
		c.Snapshots = 50
	}
	if c.Probes == 0 {
		c.Probes = 1000
	}
	if c.Fraction == 0 {
		c.Fraction = 0.10
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	return c
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 2 {
		v = 2
	}
	return v
}

// TopologyNames lists the named topologies of Table 2 / Figure 7 in paper
// order (plus "tree", which Figure 7 includes).
var TopologyNames = []string{
	"tree",
	"waxman",
	"barabasi-albert",
	"hierarchical-td",
	"hierarchical-bu",
	"planetlab",
	"dimes",
}

// Workload is a generated topology with its probing paths reduced to a
// routing matrix.
type Workload struct {
	Name    string
	Net     *topogen.Network
	Beacons []int
	Dests   []int
	RM      *topology.RoutingMatrix
}

// MakeWorkload builds the named topology at the configured scale, selects
// beacons and destinations as in the paper (the tree probes root→leaves;
// meshes use end hosts as both beacons and destinations), derives the
// routes, removes fluttering paths, and reduces the routing matrix.
func MakeWorkload(name string, cfg Config, rng *rand.Rand) (*Workload, error) {
	cfg = cfg.withDefaults()
	var (
		net              *topogen.Network
		beacons, dests   []int
		defaultHostCount = 20
	)
	switch name {
	case "tree":
		net = topogen.Tree(rng, cfg.scaled(1000), 10)
		beacons = []int{0}
		dests = net.Hosts
	case "waxman":
		net = topogen.Waxman(rng, cfg.scaled(1000), 0.15, 0.2)
	case "barabasi-albert":
		net = topogen.BarabasiAlbert(rng, cfg.scaled(1000), 2)
	case "hierarchical-td":
		net = topogen.HierarchicalTopDown(rng, cfg.scaled(25), 40)
	case "hierarchical-bu":
		net = topogen.HierarchicalBottomUp(rng, cfg.scaled(1000), cfg.scaled(25))
	case "planetlab":
		net = topogen.PlanetLabLike(rng, cfg.scaled(100), 2)
		defaultHostCount = 25
	case "dimes":
		net = topogen.DIMESLike(rng, 8, cfg.scaled(60), 4)
		defaultHostCount = 25
	default:
		return nil, fmt.Errorf("experiments: unknown topology %q (have %v)", name, TopologyNames)
	}
	if beacons == nil {
		hosts := topogen.SelectHosts(rng, net, defaultHostCount)
		beacons, dests = hosts, hosts
	}
	paths := topogen.Routes(net, beacons, dests)
	paths, _ = topology.RemoveFluttering(paths)
	rm, err := topology.Build(paths)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	return &Workload{Name: name, Net: net, Beacons: beacons, Dests: dests, RM: rm}, nil
}
