package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"lia/internal/asmap"
	"lia/internal/core"
	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/topology"
)

// DefaultEpsilon is the paper's cross-validation tolerance (Section 7.1).
const DefaultEpsilon = 0.005

// logRates converts received fractions to log transmission rates, clamping
// zeros to half a probe out of S.
func logRates(frac []float64, probes int) []float64 {
	y := make([]float64, len(frac))
	for i, f := range frac {
		if f <= 0 {
			f = 0.5 / float64(probes)
		}
		y[i] = math.Log(f)
	}
	return y
}

// CrossValidate implements the indirect validation of Section 7.2.1 on one
// snapshot series: the paths are split randomly in half, LIA runs on the
// inference half (learning from the first m snapshots, inferring on
// snapshot m), and the inferred link rates must predict the validation
// half's measured rates within eps. It returns the fraction of consistent
// validation paths.
//
// fracs must hold at least m+1 snapshots of per-path received fractions
// aligned with paths.
func CrossValidate(paths []topology.Path, fracs [][]float64, m int, probes int, eps float64, seed uint64) (float64, error) {
	if len(fracs) < m+1 {
		return 0, fmt.Errorf("experiments: cross-validation needs %d snapshots, have %d", m+1, len(fracs))
	}
	if len(paths) < 4 {
		return 0, fmt.Errorf("experiments: cross-validation needs at least 4 paths")
	}
	rng := rand.New(rand.NewPCG(seed, 0xC5))
	perm := rng.Perm(len(paths))
	half := len(paths) / 2
	infIdx, valIdx := perm[:half], perm[half:]

	infPaths := make([]topology.Path, len(infIdx))
	for i, idx := range infIdx {
		infPaths[i] = paths[idx]
	}
	rmInf, err := topology.Build(infPaths)
	if err != nil {
		return 0, fmt.Errorf("experiments: inference topology: %w", err)
	}
	l := core.New(rmInf, core.Options{})
	for t := 0; t < m; t++ {
		y := make([]float64, len(infIdx))
		for i, idx := range infIdx {
			y[i] = logOne(fracs[t][idx], probes)
		}
		l.AddSnapshot(y)
	}
	yInfer := make([]float64, len(infIdx))
	for i, idx := range infIdx {
		yInfer[i] = logOne(fracs[m][idx], probes)
	}
	res, err := l.Infer(yInfer)
	if err != nil {
		return 0, err
	}
	// Distribute each virtual link's log rate uniformly over its member
	// physical links, so validation paths that cross only part of an alias
	// group get a proportional share.
	physLog := make(map[int]float64)
	for idx, k := range res.Kept {
		_ = idx
		members := rmInf.Members(k)
		share := res.LogRates[k] / float64(len(members))
		for _, l := range members {
			physLog[l] = share
		}
	}
	for _, k := range res.Removed {
		for _, l := range rmInf.Members(k) {
			physLog[l] = 0
		}
	}
	consistent := 0
	for _, idx := range valIdx {
		var sum float64
		for _, link := range paths[idx].Links {
			if x, ok := physLog[link]; ok {
				sum += x
			}
		}
		pred := math.Exp(sum)
		if math.Abs(fracs[m][idx]-pred) <= eps {
			consistent++
		}
	}
	return float64(consistent) / float64(len(valIdx)), nil
}

func logOne(f float64, probes int) float64 {
	if f <= 0 {
		f = 0.5 / float64(probes)
	}
	return math.Log(f)
}

// CrossValidationCurve computes the Figure 9 series — percentage of
// consistent validation paths versus the number of learning snapshots m —
// over the given snapshot data, averaging `splits` random partitions per m.
func CrossValidationCurve(paths []topology.Path, fracs [][]float64, probes int, ms []int, eps float64, splits int, seed uint64) (*Table, error) {
	if splits < 1 {
		splits = 10
	}
	t := &Table{
		Title:     fmt.Sprintf("Figure 9: cross-validation on the overlay (ε=%g)", eps),
		Header:    []string{"m", "consistent %"},
		Precision: []int{0, 2},
	}
	for _, m := range ms {
		var sum float64
		for s := 0; s < splits; s++ {
			c, err := CrossValidate(paths, fracs, m, probes, eps, seed+uint64(m*1000+s))
			if err != nil {
				return nil, err
			}
			sum += c
		}
		t.AddRow("", float64(m), 100*sum/float64(splits))
	}
	return t, nil
}

// Figure9 regenerates Figure 9 using the simulated overlay workload: the
// percentage of validation paths consistent with the inferred link rates as
// m grows (the paper reports >95%, flattening beyond m ≈ 80).
func Figure9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ms := []int{20, 40, 60, 80, 100}
	maxM := ms[len(ms)-1]
	rng := rand.New(rand.NewPCG(cfg.Seed, 99))
	w, err := MakeWorkload("planetlab", cfg, rng)
	if err != nil {
		return nil, err
	}
	series := SimulateSeries(w, cfg, 99, maxM+1)
	fracs := make([][]float64, len(series))
	for t, rec := range series {
		fracs[t] = rec.Snap.Frac
	}
	paths := make([]topology.Path, w.RM.NumPaths())
	for i := range paths {
		paths[i] = w.RM.Path(i)
	}
	return CrossValidationCurve(paths, fracs, cfg.Probes, ms, DefaultEpsilon, cfg.Runs, cfg.Seed)
}

// Table3Thresholds are the loss thresholds of Table 3.
var Table3Thresholds = []float64{0.04, 0.02, 0.01}

// Table3 regenerates Table 3: the split of congested links between inter-AS
// and intra-AS locations for decreasing loss thresholds.
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:     "Table 3: location of congested links (inter- vs intra-AS)",
		Header:    []string{"tl", "inter-AS %", "intra-AS %", "congested"},
		Precision: []int{2, 1, 1, 1},
	}
	sums := make(map[float64]*asmap.Location)
	for _, tl := range Table3Thresholds {
		sums[tl] = &asmap.Location{Threshold: tl}
	}
	counts := make(map[float64]int)
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(run)*101+13))
		w, err := MakeWorkload("planetlab", cfg, rng)
		if err != nil {
			return nil, err
		}
		// Peering (inter-AS) links congest more often than internal ones —
		// the effect behind the paper's inter-AS majority in Table 3.
		interAS := asmap.InterASLinks(w.Net, w.RM)
		weights := make([]float64, w.RM.NumLinks())
		for k, inter := range interAS {
			if inter {
				weights[k] = 1.5
			} else {
				weights[k] = 0.8
			}
		}
		series := simulateSeriesWeighted(w, cfg, uint64(run)+500, cfg.Snapshots+1, weights)
		l := core.New(w.RM, core.Options{Strategy: cfg.Strategy, Variance: cfg.Variance})
		for t := 0; t < cfg.Snapshots; t++ {
			l.AddSnapshot(series[t].Snap.LogRates())
		}
		res, err := l.Infer(series[cfg.Snapshots].Snap.LogRates())
		if err != nil {
			return nil, err
		}
		inter := asmap.InterASLinks(w.Net, w.RM)
		locs, err := asmap.LocateCongested(inter, res.LossRates, Table3Thresholds)
		if err != nil {
			return nil, err
		}
		for _, loc := range locs {
			if loc.Congested == 0 {
				continue
			}
			s := sums[loc.Threshold]
			s.InterAS += loc.InterAS
			s.IntraAS += loc.IntraAS
			s.Congested += loc.Congested
			counts[loc.Threshold]++
		}
	}
	for _, tl := range Table3Thresholds {
		n := float64(counts[tl])
		if n == 0 {
			t.AddRow("", tl, 0, 0, 0)
			continue
		}
		s := sums[tl]
		t.AddRow("", tl, 100*s.InterAS/n, 100*s.IntraAS/n, float64(s.Congested)/n)
	}
	return t, nil
}

// CongestionDurations regenerates the Section 7.2.2 analysis: LIA runs on a
// sliding window of m snapshots over a series with transient (episodic)
// congestion, and the durations of inferred congestion episodes are
// tallied. The paper finds 99% of congested links stay congested for one
// snapshot and the rest for two.
func CongestionDurations(cfg Config, observed int, tl float64) (*Table, error) {
	cfg = cfg.withDefaults()
	if observed <= 0 {
		observed = 60
	}
	if tl <= 0 {
		tl = 0.01
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 777))
	w, err := MakeWorkload("planetlab", cfg, rng)
	if err != nil {
		return nil, err
	}
	// Episodic congestion: prone links flare up with probability 0.25 per
	// snapshot, so true episode lengths are nearly all one snapshot.
	scen := lossmodel.NewScenario(lossmodel.Config{
		Model:    cfg.Model,
		Fraction: cfg.Fraction,
		Good:     cfg.Good,
		Episodic: 0.25,
	}, rng, w.RM.NumLinks())
	sim := netsim.New(w.RM, netsim.Config{
		Probes: cfg.Probes,
		Mode:   cfg.Fidelity.Mode(),
		Kind:   cfg.Kind,
		Seed:   cfg.Seed * 31,
	})
	total := cfg.Snapshots + observed
	series := make([]*netsim.Snapshot, total)
	for t := 0; t < total; t++ {
		if t > 0 {
			scen.Advance()
		}
		series[t] = sim.Run(scen.Rates())
	}
	tracker := asmap.NewDurationTracker(w.RM.NumLinks())
	truthTracker := asmap.NewDurationTracker(w.RM.NumLinks())
	for t := cfg.Snapshots; t < total; t++ {
		l := core.New(w.RM, core.Options{Strategy: cfg.Strategy, Variance: cfg.Variance})
		for s := t - cfg.Snapshots; s < t; s++ {
			l.AddSnapshot(series[s].LogRates())
		}
		res, err := l.Infer(series[t].LogRates())
		if err != nil {
			return nil, err
		}
		tracker.Observe(res.Congested(tl))
		truth := make([]bool, w.RM.NumLinks())
		for k, q := range series[t].LinkRate {
			truth[k] = q > tl
		}
		truthTracker.Observe(truth)
	}
	one, two, more := tracker.Fractions()
	t1, t2, t3 := truthTracker.Fractions()
	tab := &Table{
		Title:     fmt.Sprintf("Section 7.2.2: congestion episode durations (tl=%g, m=%d, %d snapshots)", tl, cfg.Snapshots, observed),
		Header:    []string{"1 snapshot %", "2 snapshots %", "3+ snapshots %"},
		Precision: []int{1, 1, 1},
	}
	tab.AddRow("inferred", 100*one, 100*two, 100*more)
	tab.AddRow("ground truth", 100*t1, 100*t2, 100*t3)
	return tab, nil
}
