package experiments

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast; the benches run larger scales.
func tinyConfig() Config {
	return Config{Scale: 0.15, Runs: 2, Snapshots: 30, Seed: 3}
}

func TestMakeWorkloadAllTopologies(t *testing.T) {
	for _, name := range TopologyNames {
		rng := rand.New(rand.NewPCG(1, 7))
		w, err := MakeWorkload(name, tinyConfig(), rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.RM.NumPaths() < 2 || w.RM.NumLinks() < 2 {
			t.Errorf("%s: degenerate workload np=%d nc=%d", name, w.RM.NumPaths(), w.RM.NumLinks())
		}
	}
	if _, err := MakeWorkload("nope", tinyConfig(), rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestRunCheckpointsProtocol(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 8))
	w, err := MakeWorkload("tree", tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCheckpoints(w, tinyConfig(), 0, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].M != 5 || res[1].M != 10 {
		t.Fatalf("checkpoints = %+v", res)
	}
	for _, r := range res {
		if r.LIA.Kept <= 0 || r.LIA.Kept > w.RM.NumLinks() {
			t.Fatalf("m=%d: kept %d of %d", r.M, r.LIA.Kept, w.RM.NumLinks())
		}
		if len(r.LIA.AbsErrors) != w.RM.NumLinks() {
			t.Fatalf("m=%d: %d abs errors", r.M, len(r.LIA.AbsErrors))
		}
	}
	if _, err := RunCheckpoints(w, tinyConfig(), 0, []int{0}); err == nil {
		t.Error("checkpoint 0 should error")
	}
}

func TestFigure5ShapeLIABeatsSCFS(t *testing.T) {
	cfg := tinyConfig()
	tab, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	liaDR, scfsDR := last[1], last[4]
	if liaDR < 0.85 {
		t.Errorf("LIA DR at m=100 is %.3f", liaDR)
	}
	if liaDR <= scfsDR {
		t.Errorf("LIA DR %.3f should beat SCFS %.3f", liaDR, scfsDR)
	}
}

func TestFigure6CDFsMonotone(t *testing.T) {
	abs, ef, err := Figure6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{abs, ef} {
		prev := -1.0
		for r := range tab.Rows {
			c := tab.Cell(r, 1)
			if c < prev || c < 0 || c > 1 {
				t.Fatalf("%s: CDF not monotone in [0,1]: %v", tab.Title, tab.Column(1))
			}
			prev = c
		}
		if tab.Cell(len(tab.Rows)-1, 1) < 0.95 {
			t.Errorf("%s: CDF does not approach 1", tab.Title)
		}
	}
}

func TestFigure7RatioAtMostOne(t *testing.T) {
	tab, err := Figure7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(TopologyNames) {
		t.Fatalf("%d rows for %d topologies", len(tab.Rows), len(TopologyNames))
	}
	for r := range tab.Rows {
		if ratio := tab.Cell(r, 0); ratio > 1.0001 {
			t.Errorf("%s: ratio %.3f > 1 — a congested link was eliminated", tab.Labels[r], ratio)
		}
	}
}

func TestFigure9ConsistencyHigh(t *testing.T) {
	cfg := tinyConfig()
	tab, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		if c := tab.Cell(r, 1); c < 70 {
			t.Errorf("m=%.0f: consistency %.1f%% too low", tab.Cell(r, 0), c)
		}
	}
}

func TestFigure3MonotoneAssumption(t *testing.T) {
	_, corr, err := Figure3(tinyConfig(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if corr < 0.5 {
		t.Errorf("mean-variance correlation %.3f: Assumption S.3 violated in the model", corr)
	}
}

func TestTable3RowsComplete(t *testing.T) {
	tab, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Table3Thresholds) {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for r := range tab.Rows {
		inter, intra := tab.Cell(r, 1), tab.Cell(r, 2)
		if inter+intra > 0 && (inter+intra < 99.9 || inter+intra > 100.1) {
			t.Errorf("tl=%.2f: inter+intra = %.1f%%", tab.Cell(r, 0), inter+intra)
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	if _, err := CrossValidate(nil, nil, 5, 100, 0.005, 1); err == nil {
		t.Error("missing snapshots should error")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:     "demo",
		Header:    []string{"a", "b"},
		Precision: []int{0, 2},
	}
	tab.AddRow("row1", 42, 0.125)
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "42") || !strings.Contains(out, "0.12") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
	if v, ok := tab.RowByLabel("row1"); !ok || v[0] != 42 {
		t.Fatal("RowByLabel failed")
	}
	if _, ok := tab.RowByLabel("nope"); ok {
		t.Fatal("RowByLabel found a ghost")
	}
	if got := tab.Column(1); len(got) != 1 || got[0] != 0.125 {
		t.Fatalf("Column = %v", got)
	}
}

func TestRunningTimesProducesRow(t *testing.T) {
	tab, err := RunningTimes(tinyConfig(), "planetlab")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Cell(0, 1) < 0 {
		t.Fatalf("running times: %v", tab)
	}
}

func TestCongestionDurationsTrackTruth(t *testing.T) {
	cfg := tinyConfig()
	tab, err := CongestionDurations(cfg, 12, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want inferred + truth rows, got %d", len(tab.Rows))
	}
	// Inferred episode shares should be close to ground truth (the key
	// claim: LIA tracks per-snapshot congestion).
	for c := 0; c < 3; c++ {
		if d := tab.Cell(0, c) - tab.Cell(1, c); d > 35 || d < -35 {
			t.Errorf("column %d: inferred %.1f vs truth %.1f", c, tab.Cell(0, c), tab.Cell(1, c))
		}
	}
}
