package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"lia/internal/baseline"
	"lia/internal/core"
	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/stats"
)

// SnapshotRecord pairs a simulated snapshot with the assigned (ground truth)
// loss rates in force when it was taken.
type SnapshotRecord struct {
	Snap     *netsim.Snapshot
	Assigned []float64
}

// SimulateSeries runs count snapshots of the configured workload, advancing
// the loss scenario between snapshots.
func SimulateSeries(w *Workload, cfg Config, runSeed uint64, count int) []SnapshotRecord {
	return simulateSeriesWeighted(w, cfg, runSeed, count, nil)
}

// simulateSeriesWeighted additionally skews which links are congestion-prone
// (see lossmodel.Config.ProneWeights).
func simulateSeriesWeighted(w *Workload, cfg Config, runSeed uint64, count int, weights []float64) []SnapshotRecord {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, runSeed^0xabcdef12345))
	scen := lossmodel.NewScenario(lossmodel.Config{
		Model:        cfg.Model,
		Process:      cfg.Kind,
		Fraction:     cfg.Fraction,
		Good:         cfg.Good,
		ProneWeights: weights,
	}, rng, w.RM.NumLinks())
	sim := netsim.New(w.RM, netsim.Config{
		Probes: cfg.Probes,
		Mode:   cfg.Fidelity.Mode(),
		Kind:   cfg.Kind,
		Seed:   cfg.Seed*1_000_003 + runSeed,
	})
	out := make([]SnapshotRecord, 0, count)
	for t := 0; t < count; t++ {
		if t > 0 {
			scen.Advance()
		}
		out = append(out, SnapshotRecord{
			Snap:     sim.Run(scen.Rates()),
			Assigned: append([]float64(nil), scen.Rates()...),
		})
	}
	return out
}

// RunMetrics aggregates the quality of one inference.
type RunMetrics struct {
	// Det compares the congestion classification against the assigned
	// (scenario ground truth) statuses.
	Det stats.Detection
	// StrictFPR counts, among links classified congested, only those whose
	// *realized* loss rate in the inferred snapshot was below the threshold:
	// links flagged because of inference error rather than because they
	// genuinely dropped packets that snapshot. Plain FPR additionally counts
	// good-assigned links that burst past tl in the realization — events no
	// estimator of the snapshot's actual losses could classify differently.
	StrictFPR       float64
	StrictPositives int // strict false positives (raw count)
	AbsErrors       []float64
	ErrFactors      []float64
	Kept            int // columns in R*
	Congested       int // truly congested links
}

// evaluate compares an inference result against the snapshot it explains.
func evaluate(rec SnapshotRecord, res *core.Result) RunMetrics {
	nc := len(rec.Assigned)
	truth := make([]bool, nc)
	congested := 0
	for k, q := range rec.Assigned {
		if q > lossmodel.Threshold {
			truth[k] = true
			congested++
		}
	}
	// Classify at tl plus half a probe of margin (realized rates are
	// quantized to 1/S) and gate on the Phase-1 variance (Assumption S.3:
	// a truly congested link cannot have near-zero variance).
	margin := 0.5 / float64(rec.Snap.Probes)
	gate := core.VarGateAt(lossmodel.Threshold, rec.Snap.Probes)
	inferred := res.CongestedGated(lossmodel.Threshold+margin, gate)
	m := RunMetrics{
		Det:        stats.Detect(truth, inferred),
		AbsErrors:  make([]float64, nc),
		ErrFactors: make([]float64, nc),
		Kept:       len(res.Kept),
		Congested:  congested,
	}
	identified, strictFP := 0, 0
	for k := 0; k < nc; k++ {
		real := rec.Snap.LinkRealized[k]
		m.AbsErrors[k] = math.Abs(real - res.LossRates[k])
		m.ErrFactors[k] = stats.ErrorFactor(real, res.LossRates[k], stats.DefaultDelta)
		if inferred[k] {
			identified++
			if real <= lossmodel.Threshold {
				strictFP++
			}
		}
	}
	if identified > 0 {
		m.StrictFPR = float64(strictFP) / float64(identified)
	}
	m.StrictPositives = strictFP
	return m
}

// CheckpointResult is the outcome of LIA (and single-snapshot SCFS) after
// learning from the first M snapshots and inferring on snapshot M.
type CheckpointResult struct {
	M    int
	LIA  RunMetrics
	SCFS stats.Detection
}

// RunCheckpoints drives one experiment run: it simulates max(checkpoints)+1
// snapshots, then for every checkpoint m (ascending) learns on the first m
// snapshots and infers on the (m+1)-th, mirroring the paper's protocol.
// SCFS sees only the inferred snapshot.
func RunCheckpoints(w *Workload, cfg Config, runSeed uint64, checkpoints []int) ([]CheckpointResult, error) {
	cfg = cfg.withDefaults()
	maxM := 0
	for _, m := range checkpoints {
		if m <= 0 {
			return nil, fmt.Errorf("experiments: checkpoint %d must be positive", m)
		}
		if m > maxM {
			maxM = m
		}
	}
	series := SimulateSeries(w, cfg, runSeed, maxM+1)
	l := core.New(w.RM, core.Options{Strategy: cfg.Strategy, Variance: cfg.Variance})
	want := make(map[int]bool, len(checkpoints))
	for _, m := range checkpoints {
		want[m] = true
	}
	var out []CheckpointResult
	for t := 0; t < maxM; t++ {
		l.AddSnapshot(series[t].Snap.LogRates())
		m := t + 1
		if !want[m] {
			continue
		}
		rec := series[m] // the (m+1)-th snapshot
		res, err := l.Infer(rec.Snap.LogRates())
		if err != nil {
			return nil, fmt.Errorf("experiments: checkpoint m=%d: %w", m, err)
		}
		truth := make([]bool, w.RM.NumLinks())
		for k, q := range rec.Assigned {
			truth[k] = q > lossmodel.Threshold
		}
		scfs := baseline.SCFS(w.RM, baseline.PathStatus(w.RM, rec.Snap.Frac, lossmodel.Threshold))
		if w.Name != "tree" {
			scfs = baseline.GreedyCover(w.RM, baseline.PathStatus(w.RM, rec.Snap.Frac, lossmodel.Threshold))
		}
		out = append(out, CheckpointResult{
			M:    m,
			LIA:  evaluate(rec, res),
			SCFS: stats.Detect(truth, scfs),
		})
	}
	return out, nil
}

// RunOnce is the single-checkpoint convenience used by Table 2 and the
// sweeps: learn on cfg.Snapshots snapshots, infer on the next.
func RunOnce(w *Workload, cfg Config, runSeed uint64) (CheckpointResult, error) {
	cfg = cfg.withDefaults()
	res, err := RunCheckpoints(w, cfg, runSeed, []int{cfg.Snapshots})
	if err != nil {
		return CheckpointResult{}, err
	}
	return res[0], nil
}
