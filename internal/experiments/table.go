package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result: a titled grid with named columns.
// Raw numeric cells are retained so tests and benchmarks can assert on them.
type Table struct {
	Title  string
	Header []string
	Rows   [][]float64
	// Labels optionally names each row (e.g. topology names); empty means
	// rows are unlabeled.
	Labels []string
	// Precision per column (default 4 decimal places).
	Precision []int
}

// AddRow appends a labeled row.
func (t *Table) AddRow(label string, cells ...float64) {
	t.Labels = append(t.Labels, label)
	t.Rows = append(t.Rows, cells)
}

// Cell returns the raw value at (row, col).
func (t *Table) Cell(row, col int) float64 { return t.Rows[row][col] }

// Column returns a copy of one column.
func (t *Table) Column(col int) []float64 {
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[col]
	}
	return out
}

// RowByLabel returns the first row with the given label.
func (t *Table) RowByLabel(label string) ([]float64, bool) {
	for i, l := range t.Labels {
		if l == label {
			return t.Rows[i], true
		}
	}
	return nil, false
}

func (t *Table) prec(col int) int {
	if col < len(t.Precision) {
		return t.Precision[col] // 0 means integer formatting
	}
	return 4
}

// Fprint renders the table, padding columns for terminal readability.
func (t *Table) Fprint(w io.Writer) {
	labelled := false
	for _, l := range t.Labels {
		if l != "" {
			labelled = true
			break
		}
	}
	var rows [][]string
	head := []string{}
	if labelled {
		head = append(head, "")
	}
	head = append(head, t.Header...)
	rows = append(rows, head)
	for i, r := range t.Rows {
		var row []string
		if labelled {
			row = append(row, t.Labels[i])
		}
		for c, v := range r {
			row = append(row, fmt.Sprintf("%.*f", t.prec(c), v))
		}
		rows = append(rows, row)
	}
	width := make([]int, len(rows[0]))
	for _, r := range rows {
		for c, cell := range r {
			if c < len(width) && len(cell) > width[c] {
				width[c] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	for _, r := range rows {
		var b strings.Builder
		for c, cell := range r {
			if c > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if c < len(width) {
				pad = width[c] - len(cell)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(cell)
		}
		fmt.Fprintln(w, b.String())
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
