// Package topogen generates the network topologies used throughout the
// paper's evaluation: random trees (Section 6.1), BRITE-style Waxman,
// Barabási–Albert and hierarchical meshes (Section 6.2), and synthetic
// stand-ins for the measured PlanetLab and DIMES topologies.
//
// Every generator labels nodes with an autonomous-system (AS) number so the
// inter- vs intra-AS congestion analysis of Table 3 can run on any topology,
// and nominates the end hosts eligible to act as beacons and probing
// destinations (the paper picks the nodes with least out-degree).
package topogen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"lia/internal/graph"
	"lia/internal/topology"
)

// Network is a generated (or discovered) topology.
type Network struct {
	Name  string
	G     *graph.Digraph
	Hosts []int // end hosts eligible as beacons / destinations
	AS    []int // node -> AS number
}

// InterAS reports whether a directed edge crosses an AS boundary.
func (n *Network) InterAS(edgeID int) bool {
	e := n.G.Edge(edgeID)
	return n.AS[e.From] != n.AS[e.To]
}

// Tree generates a rooted random tree with the given number of nodes and a
// maximum branching ratio (the paper uses 1000 nodes, branching ≤ 10).
// Node 0 is the root (the beacon); the leaves are the probing destinations.
// Edges are directed root-ward and leaf-ward so either direction can be
// probed.
func Tree(rng *rand.Rand, nodes, maxBranch int) *Network {
	if nodes < 2 {
		panic("topogen: Tree needs at least 2 nodes")
	}
	if maxBranch < 2 {
		panic("topogen: Tree needs branching ≥ 2")
	}
	g := graph.New(nodes)
	children := make([]int, nodes)
	eligible := []int{0}
	for v := 1; v < nodes; v++ {
		// Pick a random eligible parent (branching not yet saturated).
		i := rng.IntN(len(eligible))
		p := eligible[i]
		g.AddBidirectional(p, v, 1)
		children[p]++
		if children[p] >= maxBranch {
			eligible[i] = eligible[len(eligible)-1]
			eligible = eligible[:len(eligible)-1]
		}
		eligible = append(eligible, v)
	}
	var leaves []int
	for v := 1; v < nodes; v++ {
		if children[v] == 0 {
			leaves = append(leaves, v)
		}
	}
	return &Network{
		Name:  "tree",
		G:     g,
		Hosts: leaves,
		AS:    contiguousAS(nodes, 1+nodes/200),
	}
}

// Waxman generates a Waxman random graph: nodes placed uniformly in the unit
// square, edge probability alpha·exp(−d/(beta·L)). A random spanning tree
// guarantees connectivity (BRITE does the same). Typical parameters:
// alpha=0.15, beta=0.2.
func Waxman(rng *rand.Rand, nodes int, alpha, beta float64) *Network {
	if nodes < 2 {
		panic("topogen: Waxman needs at least 2 nodes")
	}
	pts := make([]pt, nodes)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
	}
	g := graph.New(nodes)
	// Spanning tree over a random permutation for connectivity.
	perm := rng.Perm(nodes)
	for i := 1; i < nodes; i++ {
		a, b := perm[i], perm[rng.IntN(i)]
		g.AddBidirectional(a, b, 1)
	}
	l := math.Sqrt2 // max distance in unit square
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			if g.HasEdgeBetween(i, j) {
				continue
			}
			d := math.Hypot(pts[i].x-pts[j].x, pts[i].y-pts[j].y)
			if rng.Float64() < alpha*math.Exp(-d/(beta*l)) {
				g.AddBidirectional(i, j, 1)
			}
		}
	}
	return &Network{
		Name:  "waxman",
		G:     g,
		Hosts: lowestDegreeHosts(g, nodes/4),
		AS:    gridAS(ptsX(pts), ptsY(pts), 4),
	}
}

type pt struct{ x, y float64 }

func ptsX(p []pt) []float64 {
	xs := make([]float64, len(p))
	for i := range p {
		xs[i] = p[i].x
	}
	return xs
}

func ptsY(p []pt) []float64 {
	ys := make([]float64, len(p))
	for i := range p {
		ys[i] = p[i].y
	}
	return ys
}

// BarabasiAlbert generates a preferential-attachment graph: each new node
// attaches m edges to existing nodes with probability proportional to their
// degree, yielding the power-law degree distribution of Internet ASes.
func BarabasiAlbert(rng *rand.Rand, nodes, m int) *Network {
	if m < 1 || nodes <= m {
		panic(fmt.Sprintf("topogen: BarabasiAlbert needs nodes > m ≥ 1, got %d, %d", nodes, m))
	}
	g := graph.New(nodes)
	// Attachment pool: node IDs repeated once per incident edge.
	var pool []int
	// Seed: a path over the first m+1 nodes.
	for v := 1; v <= m; v++ {
		g.AddBidirectional(v-1, v, 1)
		pool = append(pool, v-1, v)
	}
	for v := m + 1; v < nodes; v++ {
		chosen := make(map[int]bool)
		for len(chosen) < m {
			t := pool[rng.IntN(len(pool))]
			if t != v {
				chosen[t] = true
			}
		}
		// Attach in sorted order: ranging over the map directly would make
		// edge numbering — and every downstream experiment — vary from run
		// to run even under a fixed seed.
		targets := make([]int, 0, len(chosen))
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			g.AddBidirectional(v, t, 1)
			pool = append(pool, v, t)
		}
	}
	return &Network{
		Name:  "barabasi-albert",
		G:     g,
		Hosts: lowestDegreeHosts(g, nodes/4),
		AS:    attachmentAS(nodes, 1+nodes/100),
	}
}

// HierarchicalTopDown builds a two-level BRITE-style hierarchy from the top
// down: an AS-level Waxman graph first, then a router-level Waxman graph
// inside each AS, with border routers realizing the AS-level edges.
func HierarchicalTopDown(rng *rand.Rand, asCount, routersPerAS int) *Network {
	if asCount < 2 || routersPerAS < 2 {
		panic("topogen: HierarchicalTopDown needs ≥2 ASes and ≥2 routers/AS")
	}
	nodes := asCount * routersPerAS
	g := graph.New(nodes)
	asOf := make([]int, nodes)
	routerOf := func(as, r int) int { return as*routersPerAS + r }
	// Intra-AS: random connected sub-graph per AS.
	for a := 0; a < asCount; a++ {
		for r := 1; r < routersPerAS; r++ {
			g.AddBidirectional(routerOf(a, r), routerOf(a, rng.IntN(r)), 1)
		}
		extra := routersPerAS / 3
		for e := 0; e < extra; e++ {
			x, y := rng.IntN(routersPerAS), rng.IntN(routersPerAS)
			if x != y && !g.HasEdgeBetween(routerOf(a, x), routerOf(a, y)) {
				g.AddBidirectional(routerOf(a, x), routerOf(a, y), 1)
			}
		}
		for r := 0; r < routersPerAS; r++ {
			asOf[routerOf(a, r)] = a
		}
	}
	// AS-level: spanning tree + extra Waxman-like edges, realized by random
	// border routers.
	for a := 1; a < asCount; a++ {
		b := rng.IntN(a)
		g.AddBidirectional(routerOf(a, rng.IntN(routersPerAS)), routerOf(b, rng.IntN(routersPerAS)), 2)
	}
	for e := 0; e < asCount; e++ {
		a, b := rng.IntN(asCount), rng.IntN(asCount)
		if a != b {
			g.AddBidirectional(routerOf(a, rng.IntN(routersPerAS)), routerOf(b, rng.IntN(routersPerAS)), 2)
		}
	}
	return &Network{
		Name:  "hierarchical-td",
		G:     g,
		Hosts: lowestDegreeHosts(g, nodes/4),
		AS:    asOf,
	}
}

// HierarchicalBottomUp builds the hierarchy bottom-up, the other BRITE mode:
// a flat router-level Barabási–Albert graph is generated first and routers
// are then clustered into ASes by breadth-first growth around random seeds,
// so AS shapes follow the organic router-level structure.
func HierarchicalBottomUp(rng *rand.Rand, nodes, asCount int) *Network {
	if asCount < 1 || nodes < asCount {
		panic("topogen: HierarchicalBottomUp needs nodes ≥ asCount ≥ 1")
	}
	base := BarabasiAlbert(rng, nodes, 2)
	g := base.G
	asOf := make([]int, nodes)
	for i := range asOf {
		asOf[i] = -1
	}
	// Multi-source BFS from random seeds.
	queues := make([][]int, asCount)
	for a := 0; a < asCount; a++ {
		for {
			s := rng.IntN(nodes)
			if asOf[s] == -1 {
				asOf[s] = a
				queues[a] = []int{s}
				break
			}
		}
	}
	remaining := nodes - asCount
	for remaining > 0 {
		progressed := false
		for a := 0; a < asCount && remaining > 0; a++ {
			if len(queues[a]) == 0 {
				continue
			}
			u := queues[a][0]
			queues[a] = queues[a][1:]
			for _, eid := range g.OutEdges(u) {
				v := g.Edge(eid).To
				if asOf[v] == -1 {
					asOf[v] = a
					queues[a] = append(queues[a], v)
					remaining--
					progressed = true
				}
			}
			queues[a] = append(queues[a], u) // allow further growth
			progressed = progressed || len(queues[a]) > 0
		}
		if !progressed {
			// Disconnected leftovers (should not happen: BA is connected).
			for v := range asOf {
				if asOf[v] == -1 {
					asOf[v] = rng.IntN(asCount)
					remaining--
				}
			}
		}
	}
	return &Network{
		Name:  "hierarchical-bu",
		G:     g,
		Hosts: base.Hosts,
		AS:    asOf,
	}
}

// PlanetLabLike synthesizes a research-network topology in the spirit of the
// measured PlanetLab graph: university sites (each an AS with a gateway and
// a couple of hosts) hanging off a well-connected national-backbone core.
func PlanetLabLike(rng *rand.Rand, sites, hostsPerSite int) *Network {
	if sites < 2 || hostsPerSite < 1 {
		panic("topogen: PlanetLabLike needs ≥2 sites, ≥1 host/site")
	}
	coreN := sites/5 + 3
	nodes := coreN + sites*(1+hostsPerSite)
	g := graph.New(nodes)
	asOf := make([]int, nodes)
	// Backbone core (AS 0): ring + chords, well meshed like NRENs.
	for c := 0; c < coreN; c++ {
		g.AddBidirectional(c, (c+1)%coreN, 1)
		asOf[c] = 0
	}
	for c := 0; c < coreN; c++ {
		t := rng.IntN(coreN)
		if t != c && !g.HasEdgeBetween(c, t) {
			g.AddBidirectional(c, t, 1)
		}
	}
	var hosts []int
	for s := 0; s < sites; s++ {
		gw := coreN + s*(1+hostsPerSite)
		asOf[gw] = s + 1
		// Each gateway multi-homes to 1–2 core routers.
		g.AddBidirectional(gw, rng.IntN(coreN), 1)
		if rng.Float64() < 0.3 {
			g.AddBidirectional(gw, rng.IntN(coreN), 1)
		}
		for h := 0; h < hostsPerSite; h++ {
			v := gw + 1 + h
			asOf[v] = s + 1
			g.AddBidirectional(gw, v, 1)
			hosts = append(hosts, v)
		}
	}
	return &Network{Name: "planetlab", G: g, Hosts: hosts, AS: asOf}
}

// DIMESLike synthesizes a commercial-Internet topology in the spirit of the
// DIMES measurements: a small clique of tier-1 providers, tier-2 ISPs
// multi-homed beneath them, and access trees reaching end hosts.
func DIMESLike(rng *rand.Rand, tier1, tier2, accessPerTier2 int) *Network {
	if tier1 < 2 || tier2 < 2 || accessPerTier2 < 1 {
		panic("topogen: DIMESLike needs ≥2 tier-1, ≥2 tier-2, ≥1 access")
	}
	// Per tier-2 AS: 1 router + accessPerTier2 aggregation routers with one
	// host each (2 nodes) + accessPerTier2 directly-attached hosts.
	perTier2 := 1 + 3*accessPerTier2
	nodes := tier1 + tier2*perTier2
	g := graph.New(nodes)
	asOf := make([]int, nodes)
	// Tier-1 full mesh (each its own AS).
	for a := 0; a < tier1; a++ {
		asOf[a] = a
		for b := a + 1; b < tier1; b++ {
			g.AddBidirectional(a, b, 1)
		}
	}
	var hosts []int
	idx := tier1
	for t := 0; t < tier2; t++ {
		asn := tier1 + t
		router := idx
		idx++
		asOf[router] = asn
		// Multi-home to 1–3 tier-1s.
		homes := 1 + rng.IntN(3)
		seen := make(map[int]bool)
		for len(seen) < homes {
			u := rng.IntN(tier1)
			if !seen[u] {
				seen[u] = true
				g.AddBidirectional(router, u, 1)
			}
		}
		// Occasional tier-2 peering.
		if t > 0 && rng.Float64() < 0.25 {
			peer := tier1 + rng.IntN(t)*perTier2
			g.AddBidirectional(router, peer, 1)
		}
		// Access trees: aggregation router + two hosts each.
		for aN := 0; aN < accessPerTier2; aN++ {
			agg := idx
			idx++
			asOf[agg] = asn
			g.AddBidirectional(router, agg, 1)
			h := idx
			idx++
			asOf[h] = asn
			g.AddBidirectional(agg, h, 1)
			hosts = append(hosts, h)
		}
		for aN := 0; aN < accessPerTier2; aN++ {
			h := idx
			idx++
			asOf[h] = asn
			g.AddBidirectional(router, h, 1)
			hosts = append(hosts, h)
		}
	}
	return &Network{Name: "dimes", G: g, Hosts: hosts, AS: asOf}
}

// lowestDegreeHosts returns the count nodes with the smallest out-degree
// ("in the simulated topologies, end-hosts are nodes with the least
// out-degree").
func lowestDegreeHosts(g *graph.Digraph, count int) []int {
	if count < 1 {
		count = 1
	}
	type nd struct{ node, deg int }
	all := make([]nd, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		all[v] = nd{v, g.OutDegree(v)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg < all[j].deg
		}
		return all[i].node < all[j].node
	})
	if count > len(all) {
		count = len(all)
	}
	hosts := make([]int, count)
	for i := 0; i < count; i++ {
		hosts[i] = all[i].node
	}
	sort.Ints(hosts)
	return hosts
}

func contiguousAS(nodes, asCount int) []int {
	as := make([]int, nodes)
	if asCount < 1 {
		asCount = 1
	}
	per := (nodes + asCount - 1) / asCount
	for i := range as {
		as[i] = i / per
	}
	return as
}

func attachmentAS(nodes, asCount int) []int { return contiguousAS(nodes, asCount) }

func gridAS(xs, ys []float64, side int) []int {
	as := make([]int, len(xs))
	for i := range xs {
		cx := int(xs[i] * float64(side))
		cy := int(ys[i] * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		as[i] = cy*side + cx
	}
	return as
}

// Routes computes the probing paths from every beacon to every destination
// (excluding self-pairs) along deterministic shortest-path trees, which makes
// routing destination-consistent per beacon (each beacon's paths form a tree,
// as required below Assumption T.2).
func Routes(net *Network, beacons, dests []int) []topology.Path {
	var paths []topology.Path
	for _, b := range beacons {
		tree := net.G.ShortestPathTree(b)
		for _, d := range dests {
			if d == b {
				continue
			}
			links := tree.PathTo(d, net.G)
			if links == nil {
				continue // unreachable
			}
			paths = append(paths, topology.Path{Beacon: b, Dst: d, Links: links})
		}
	}
	return paths
}

// SelectHosts draws n distinct hosts from the network's eligible host set.
func SelectHosts(rng *rand.Rand, net *Network, n int) []int {
	if n > len(net.Hosts) {
		n = len(net.Hosts)
	}
	perm := rng.Perm(len(net.Hosts))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = net.Hosts[perm[i]]
	}
	sort.Ints(out)
	return out
}
