package topogen

import (
	"math/rand/v2"
	"testing"

	"lia/internal/topology"
)

func TestTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	net := Tree(rng, 100, 5)
	// A tree on n nodes has n−1 undirected edges = 2(n−1) directed.
	if got := net.G.NumEdges(); got != 2*99 {
		t.Fatalf("tree has %d directed edges, want %d", got, 2*99)
	}
	if !net.G.Connected() {
		t.Fatal("tree disconnected")
	}
	// Branching bound: out-degree ≤ maxBranch+1 (children + parent).
	for v := 0; v < net.G.NumNodes(); v++ {
		if d := net.G.OutDegree(v); d > 6 {
			t.Fatalf("node %d has out-degree %d, exceeds branching bound", v, d)
		}
	}
	if len(net.Hosts) == 0 {
		t.Fatal("tree has no leaves")
	}
	for _, h := range net.Hosts {
		if h == 0 {
			t.Fatal("root listed as a leaf host")
		}
	}
}

func TestGeneratorsConnectedAndHosted(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	nets := []*Network{
		Waxman(rng, 120, 0.15, 0.2),
		BarabasiAlbert(rng, 120, 2),
		HierarchicalTopDown(rng, 5, 15),
		HierarchicalBottomUp(rng, 120, 5),
		PlanetLabLike(rng, 15, 2),
		DIMESLike(rng, 4, 10, 3),
	}
	for _, net := range nets {
		if !net.G.Connected() {
			t.Errorf("%s: disconnected", net.Name)
		}
		if len(net.Hosts) < 4 {
			t.Errorf("%s: only %d hosts", net.Name, len(net.Hosts))
		}
		if len(net.AS) != net.G.NumNodes() {
			t.Errorf("%s: AS labels for %d of %d nodes", net.Name, len(net.AS), net.G.NumNodes())
		}
	}
}

func TestBarabasiAlbertSkew(t *testing.T) {
	// Preferential attachment must produce hubs: max degree far above the
	// minimum (which is m for late attachers).
	rng := rand.New(rand.NewPCG(3, 3))
	net := BarabasiAlbert(rng, 400, 2)
	maxDeg := 0
	for v := 0; v < net.G.NumNodes(); v++ {
		if d := net.G.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 15 {
		t.Errorf("max degree %d too small for a scale-free graph", maxDeg)
	}
}

func TestHierarchiesHaveInterAS(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for _, net := range []*Network{
		HierarchicalTopDown(rng, 5, 12),
		PlanetLabLike(rng, 12, 2),
		DIMESLike(rng, 4, 8, 2),
	} {
		inter := 0
		for e := 0; e < net.G.NumEdges(); e++ {
			if net.InterAS(e) {
				inter++
			}
		}
		if inter == 0 {
			t.Errorf("%s: no inter-AS links", net.Name)
		}
		if inter == net.G.NumEdges() {
			t.Errorf("%s: every link inter-AS", net.Name)
		}
	}
}

func TestRoutesFormPerBeaconTrees(t *testing.T) {
	// The paths from one beacon must form a tree: any two paths share a
	// prefix and then diverge for good (no fluttering within a beacon).
	rng := rand.New(rand.NewPCG(5, 5))
	net := Waxman(rng, 100, 0.2, 0.25)
	hosts := SelectHosts(rng, net, 6)
	for _, b := range hosts {
		paths := Routes(net, []int{b}, hosts)
		if pairs := topology.FindFluttering(paths); len(pairs) != 0 {
			t.Fatalf("beacon %d: fluttering within its own tree: %v", b, pairs)
		}
	}
}

func TestRoutesEndpoints(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	net := Tree(rng, 60, 4)
	paths := Routes(net, []int{0}, net.Hosts)
	if len(paths) != len(net.Hosts) {
		t.Fatalf("%d paths for %d destinations", len(paths), len(net.Hosts))
	}
	for _, p := range paths {
		if p.Beacon != 0 {
			t.Fatal("wrong beacon")
		}
		// Walk the links and confirm they chain from beacon to destination.
		at := p.Beacon
		for _, eid := range p.Links {
			e := net.G.Edge(eid)
			if e.From != at {
				t.Fatalf("path to %d: edge %d starts at %d, expected %d", p.Dst, eid, e.From, at)
			}
			at = e.To
		}
		if at != p.Dst {
			t.Fatalf("path ends at %d, want %d", at, p.Dst)
		}
	}
}

func TestSelectHosts(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	net := Waxman(rng, 80, 0.2, 0.25)
	hosts := SelectHosts(rng, net, 5)
	if len(hosts) != 5 {
		t.Fatalf("selected %d hosts", len(hosts))
	}
	seen := map[int]bool{}
	eligible := map[int]bool{}
	for _, h := range net.Hosts {
		eligible[h] = true
	}
	for _, h := range hosts {
		if seen[h] {
			t.Fatal("duplicate host")
		}
		seen[h] = true
		if !eligible[h] {
			t.Fatalf("host %d not in eligible set", h)
		}
	}
	// Asking for more than available caps at the eligible set.
	all := SelectHosts(rng, net, 10000)
	if len(all) != len(net.Hosts) {
		t.Fatalf("overselect returned %d of %d", len(all), len(net.Hosts))
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	a := Tree(rand.New(rand.NewPCG(9, 9)), 50, 4)
	b := Tree(rand.New(rand.NewPCG(9, 9)), 50, 4)
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different trees")
	}
	for e := 0; e < a.G.NumEdges(); e++ {
		if a.G.Edge(e) != b.G.Edge(e) {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, fn := range []func(){
		func() { Tree(rng, 1, 5) },
		func() { Tree(rng, 10, 1) },
		func() { Waxman(rng, 1, 0.1, 0.1) },
		func() { BarabasiAlbert(rng, 2, 2) },
		func() { HierarchicalTopDown(rng, 1, 5) },
		func() { DIMESLike(rng, 1, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid generator parameters")
				}
			}()
			fn()
		}()
	}
}
