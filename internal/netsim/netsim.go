// Package netsim is the packet-level probing simulator: it pushes S probe
// packets per snapshot down every end-to-end path, applying the per-link
// loss processes, and reports the per-path received fractions that form one
// network snapshot (Section 3.3 of the paper).
package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"lia/internal/lossmodel"
	"lia/internal/topology"
)

// Mode selects the simulation fidelity.
type Mode int

const (
	// ModePacketPerPath (the default) gives each (path, link) pair an
	// independent loss process and flips a per-probe coin at every hop —
	// closest to a real network, where Assumption S.1 is only an
	// approximation.
	ModePacketPerPath Mode = iota
	// ModePacketShared draws one per-probe state sequence per link and
	// applies it to every path, making S.1 exact while keeping per-probe
	// path trials (so cross-link sampling covariance remains).
	ModePacketShared
	// ModeExact aggregates at the link level: each link realizes a sampled
	// transmission rate from its loss process and the path fractions are
	// the exact products, so Y = R·X holds with zero path-level noise. This
	// matches the snapshot generator behind the paper's reported error
	// magnitudes (its absolute errors are far below per-probe sampling
	// noise) and is the default for the experiment harness.
	ModeExact
)

func (m Mode) String() string {
	switch m {
	case ModePacketShared:
		return "packet-shared"
	case ModeExact:
		return "exact"
	default:
		return "packet-per-path"
	}
}

// Config parameterizes the simulator.
type Config struct {
	// Probes is S, the number of probes sent on each path per snapshot
	// (the paper's heuristic uses S = 1000).
	Probes int
	// Mode selects the simulation fidelity (default ModePacketPerPath).
	Mode Mode
	// Kind selects Gilbert (default) or Bernoulli loss processes.
	Kind lossmodel.ProcessKind
	// PStayBad is the Gilbert burst parameter (default 0.35).
	PStayBad float64
	// Seed drives all per-snapshot randomness; the same seed reproduces the
	// same snapshot bit-for-bit regardless of parallelism.
	Seed uint64
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
}

// Snapshot is the outcome of one probing slot.
type Snapshot struct {
	// Received[i] is the number of probes of path i that reached the
	// destination.
	Received []int
	// Frac[i] is Received[i] / S.
	Frac []float64
	// LinkRate[k] is the ground-truth mean loss rate of virtual link k
	// (complement of the product of its member links' transmission rates).
	LinkRate []float64
	// LinkRealized[k] is the realized (sampled) loss fraction of virtual
	// link k in this snapshot: the fraction of probe traversals the link
	// dropped. In shared-state mode this is φ̂_ek exactly; in per-path mode
	// it averages the per-(path,link) processes, which is what the S.1
	// approximation equates across paths.
	LinkRealized []float64
	// Probes is S.
	Probes int
}

// LogRates returns Y, the per-path log transmission rates, clamping paths
// with zero delivered probes to half a probe so the logarithm stays finite.
func (s *Snapshot) LogRates() []float64 {
	y := make([]float64, len(s.Frac))
	for i, f := range s.Frac {
		if s.Received[i] == 0 {
			f = 0.5 / float64(s.Probes)
		}
		y[i] = math.Log(f)
	}
	return y
}

// Simulator drives repeated snapshots over a fixed routing matrix with an
// evolving loss scenario.
type Simulator struct {
	rm    *topology.RoutingMatrix
	cfg   Config
	snaps int
}

// New creates a simulator. Virtual-link loss rates are derived from the
// scenario's physical rates at snapshot time.
func New(rm *topology.RoutingMatrix, cfg Config) *Simulator {
	if cfg.Probes <= 0 {
		panic(fmt.Sprintf("netsim: Probes must be positive, got %d", cfg.Probes))
	}
	if cfg.PStayBad == 0 {
		cfg.PStayBad = lossmodel.DefaultPStayBad
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Simulator{rm: rm, cfg: cfg}
}

// Run simulates one snapshot with the given per-virtual-link mean loss
// rates. It is deterministic in (cfg.Seed, snapshot counter).
func (s *Simulator) Run(linkRates []float64) *Snapshot {
	if len(linkRates) != s.rm.NumLinks() {
		panic(fmt.Sprintf("netsim: %d rates for %d links", len(linkRates), s.rm.NumLinks()))
	}
	snapID := uint64(s.snaps)
	s.snaps++
	np := s.rm.NumPaths()
	out := &Snapshot{
		Received:     make([]int, np),
		Frac:         make([]float64, np),
		LinkRate:     append([]float64(nil), linkRates...),
		LinkRealized: make([]float64, s.rm.NumLinks()),
		Probes:       s.cfg.Probes,
	}
	switch s.cfg.Mode {
	case ModePacketShared:
		s.runShared(out, snapID)
	case ModeExact:
		s.runExact(out, snapID)
	default:
		s.runPerPath(out, snapID)
	}
	if s.cfg.Mode != ModeExact {
		for i, r := range out.Received {
			out.Frac[i] = float64(r) / float64(s.cfg.Probes)
		}
	}
	return out
}

// runExact realizes each link's sampled transmission rate once and sets each
// path's fraction to the exact product over its links, so the linear system
// Y = R·X holds without per-probe path noise.
func (s *Simulator) runExact(out *Snapshot, snapID uint64) {
	nc := s.rm.NumLinks()
	np := s.rm.NumPaths()
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.cfg.Workers)
	for k := 0; k < nc; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(link int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewPCG(s.cfg.Seed^0x2545f4914f6cdd1d, snapID<<32|uint64(link)))
			proc := lossmodel.NewProcess(s.cfg.Kind, out.LinkRate[link], s.cfg.PStayBad, rng)
			n := 0
			for p := 0; p < s.cfg.Probes; p++ {
				if proc.Drop(rng) {
					n++
				}
			}
			out.LinkRealized[link] = float64(n) / float64(s.cfg.Probes)
		}(k)
	}
	wg.Wait()
	for i := 0; i < np; i++ {
		t := 1.0
		for _, k := range s.rm.Row(i) {
			t *= 1 - out.LinkRealized[k]
		}
		out.Frac[i] = t
		out.Received[i] = int(t*float64(s.cfg.Probes) + 0.5)
	}
}

// runPerPath gives every (path, link) pair its own loss process.
func (s *Simulator) runPerPath(out *Snapshot, snapID uint64) {
	np := s.rm.NumPaths()
	dropCount := make([][]int32, np) // per path: drops per link position
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.cfg.Workers)
	for i := 0; i < np; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(path int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewPCG(s.cfg.Seed^0x9e3779b97f4a7c15, snapID<<32|uint64(path)))
			row := s.rm.OrderedRow(path)
			procs := make([]lossmodel.Process, len(row))
			for j, k := range row {
				procs[j] = lossmodel.NewProcess(s.cfg.Kind, out.LinkRate[k], s.cfg.PStayBad, rng)
			}
			drops := make([]int32, len(row))
			received := 0
			for p := 0; p < s.cfg.Probes; p++ {
				ok := true
				for j, proc := range procs {
					// Every process steps on every probe slot so burst
					// dynamics stay in (virtual) time even when an upstream
					// link already dropped the probe.
					if proc.Drop(rng) {
						ok = false
						drops[j]++
					}
				}
				if ok {
					received++
				}
			}
			out.Received[path] = received
			dropCount[path] = drops
		}(i)
	}
	wg.Wait()
	// Realized link rates: average drop fraction over all traversals.
	total := make([]int64, s.rm.NumLinks())
	trav := make([]int64, s.rm.NumLinks())
	for i := 0; i < np; i++ {
		row := s.rm.OrderedRow(i)
		for j, k := range row {
			total[k] += int64(dropCount[i][j])
			trav[k] += int64(s.cfg.Probes)
		}
	}
	for k := range total {
		if trav[k] > 0 {
			out.LinkRealized[k] = float64(total[k]) / float64(trav[k])
		}
	}
}

// runShared draws one state sequence per link and applies it to all paths:
// probe p of every path observes the same link state, so the sampled loss
// fraction is identical across paths (Assumption S.1 exact).
func (s *Simulator) runShared(out *Snapshot, snapID uint64) {
	nc := s.rm.NumLinks()
	np := s.rm.NumPaths()
	drops := make([][]bool, nc)
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.cfg.Workers)
	for k := 0; k < nc; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(link int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewPCG(s.cfg.Seed^0x517cc1b727220a95, snapID<<32|uint64(link)))
			proc := lossmodel.NewProcess(s.cfg.Kind, out.LinkRate[link], s.cfg.PStayBad, rng)
			d := make([]bool, s.cfg.Probes)
			n := 0
			for p := range d {
				d[p] = proc.Drop(rng)
				if d[p] {
					n++
				}
			}
			drops[link] = d
			out.LinkRealized[link] = float64(n) / float64(s.cfg.Probes)
		}(k)
	}
	wg.Wait()
	for i := 0; i < np; i++ {
		row := s.rm.Row(i)
		received := 0
		for p := 0; p < s.cfg.Probes; p++ {
			ok := true
			for _, k := range row {
				if drops[k][p] {
					ok = false
					break
				}
			}
			if ok {
				received++
			}
		}
		out.Received[i] = received
	}
}

// Series runs a whole measurement campaign: m snapshots with the scenario
// (defined over the virtual links of the routing matrix) advancing between
// snapshots. It returns the snapshots in order.
func (s *Simulator) Series(sc *lossmodel.Scenario, m int) []*Snapshot {
	if sc.NumLinks() != s.rm.NumLinks() {
		panic(fmt.Sprintf("netsim: scenario over %d links, routing matrix has %d", sc.NumLinks(), s.rm.NumLinks()))
	}
	out := make([]*Snapshot, 0, m)
	for t := 0; t < m; t++ {
		if t > 0 {
			sc.Advance()
		}
		out = append(out, s.Run(sc.Rates()))
	}
	return out
}
