package netsim

import (
	"math"
	"math/rand/v2"
	"testing"

	"lia/internal/lossmodel"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func smallTree(t *testing.T) *topology.RoutingMatrix {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	net := topogen.Tree(rng, 40, 4)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestSimulateLossless(t *testing.T) {
	rm := smallTree(t)
	rates := make([]float64, rm.NumLinks())
	for _, mode := range []Mode{ModePacketPerPath, ModePacketShared, ModeExact} {
		sim := New(rm, Config{Probes: 500, Seed: 2, Mode: mode})
		snap := sim.Run(rates)
		for i, f := range snap.Frac {
			if f != 1 {
				t.Fatalf("%v: path %d delivered %v on a lossless network", mode, i, f)
			}
		}
		for k, r := range snap.LinkRealized {
			if r != 0 {
				t.Fatalf("%v: link %d realized loss %v on a lossless network", mode, k, r)
			}
		}
	}
}

func TestSimulateTotalLoss(t *testing.T) {
	rm := smallTree(t)
	rates := make([]float64, rm.NumLinks())
	for k := range rates {
		rates[k] = 1
	}
	sim := New(rm, Config{Probes: 100, Seed: 3})
	snap := sim.Run(rates)
	for i, r := range snap.Received {
		if r != 0 {
			t.Fatalf("path %d received %d probes through fully lossy links", i, r)
		}
	}
	y := snap.LogRates()
	for i, v := range y {
		if !(v < 0) || math.IsInf(v, -1) {
			t.Fatalf("LogRates[%d] = %v, want finite negative (zero-clamp)", i, v)
		}
	}
}

func TestSimulateMatchesAssignedRates(t *testing.T) {
	// Property: realized per-link loss tracks the assigned rate in every
	// mode (law of large numbers at S=4000).
	rm := smallTree(t)
	rng := rand.New(rand.NewPCG(4, 4))
	rates := make([]float64, rm.NumLinks())
	for k := range rates {
		if rng.Float64() < 0.2 {
			rates[k] = 0.05 + 0.1*rng.Float64()
		}
	}
	for _, mode := range []Mode{ModePacketPerPath, ModePacketShared, ModeExact} {
		sim := New(rm, Config{Probes: 4000, Seed: 5, Mode: mode})
		snap := sim.Run(rates)
		for k, want := range rates {
			got := snap.LinkRealized[k]
			if math.Abs(got-want) > 0.03 {
				t.Errorf("%v: link %d realized %.4f, assigned %.4f", mode, k, got, want)
			}
		}
	}
}

func TestExactModeProductIdentity(t *testing.T) {
	// In ModeExact the path fraction equals the product of link realized
	// transmission rates exactly.
	rm := smallTree(t)
	rng := rand.New(rand.NewPCG(6, 6))
	rates := make([]float64, rm.NumLinks())
	for k := range rates {
		rates[k] = 0.3 * rng.Float64()
	}
	sim := New(rm, Config{Probes: 1000, Seed: 7, Mode: ModeExact})
	snap := sim.Run(rates)
	for i := 0; i < rm.NumPaths(); i++ {
		want := 1.0
		for _, k := range rm.Row(i) {
			want *= 1 - snap.LinkRealized[k]
		}
		if math.Abs(snap.Frac[i]-want) > 1e-12 {
			t.Fatalf("path %d: frac %v != product %v", i, snap.Frac[i], want)
		}
	}
}

func TestSharedModeS1Exact(t *testing.T) {
	// In shared mode, two paths through the same single congested link must
	// observe exactly the same loss pattern on it; with all other links
	// lossless, their received counts are identical.
	paths := []topology.Path{
		{Beacon: 0, Dst: 2, Links: []int{1, 2}},
		{Beacon: 0, Dst: 3, Links: []int{1, 3}},
	}
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	shared, _ := rm.VirtualOf(1)
	rates := make([]float64, rm.NumLinks())
	rates[shared] = 0.2
	sim := New(rm, Config{Probes: 2000, Seed: 8, Mode: ModePacketShared})
	snap := sim.Run(rates)
	if snap.Received[0] != snap.Received[1] {
		t.Fatalf("shared-state paths disagree: %d vs %d", snap.Received[0], snap.Received[1])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	rm := smallTree(t)
	rates := make([]float64, rm.NumLinks())
	for k := range rates {
		rates[k] = 0.1
	}
	run := func(workers int) []int {
		sim := New(rm, Config{Probes: 300, Seed: 11, Workers: workers})
		return sim.Run(rates).Received
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallelism changed results at path %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSnapshotCounterAdvancesRandomness(t *testing.T) {
	rm := smallTree(t)
	rates := make([]float64, rm.NumLinks())
	for k := range rates {
		rates[k] = 0.1
	}
	sim := New(rm, Config{Probes: 500, Seed: 12})
	s1 := sim.Run(rates)
	s2 := sim.Run(rates)
	same := 0
	for i := range s1.Received {
		if s1.Received[i] == s2.Received[i] {
			same++
		}
	}
	if same == len(s1.Received) {
		t.Fatal("consecutive snapshots are identical — snapshot counter not advancing the RNG")
	}
}

func TestSeriesAdvancesScenario(t *testing.T) {
	rm := smallTree(t)
	rng := rand.New(rand.NewPCG(13, 13))
	scen := lossmodel.NewScenario(lossmodel.Config{Fraction: 0.5}, rng, rm.NumLinks())
	sim := New(rm, Config{Probes: 200, Seed: 14})
	series := sim.Series(scen, 4)
	if len(series) != 4 {
		t.Fatalf("Series returned %d snapshots", len(series))
	}
	diff := false
	for k := range series[0].LinkRate {
		if series[0].LinkRate[k] != series[1].LinkRate[k] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("scenario did not advance between snapshots")
	}
}

func TestConfigValidation(t *testing.T) {
	rm := smallTree(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Probes ≤ 0")
		}
	}()
	New(rm, Config{})
}

func TestRunValidatesRateLength(t *testing.T) {
	rm := smallTree(t)
	sim := New(rm, Config{Probes: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong rate vector length")
		}
	}()
	sim.Run(make([]float64, rm.NumLinks()+1))
}
