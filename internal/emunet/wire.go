// Package emunet is the overlay measurement plane: an emulated IP network
// that runs over real UDP sockets. A network core forwards probe datagrams
// along configured topology paths while applying per-link loss processes;
// beacon agents send the probes; sink agents count arrivals; a TCP collector
// aggregates per-snapshot reports for the inference server. TTL-limited
// probes and ICMP-style replies reproduce traceroute topology discovery,
// including non-responding routers and multi-interface aliases (Section 7.1
// of the paper).
package emunet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Packet types on the emulated wire.
const (
	TypeProbe      = 1 // beacon → core → sink measurement probe
	TypeTrace      = 2 // beacon → core TTL-limited discovery probe
	TypeTraceReply = 3 // core → beacon "TTL exceeded" / "port unreachable"
	TypeFlush      = 4 // beacon → core barrier, echoed back once processed
)

// Magic and Version identify the wire format.
const (
	Magic   = 0x4C // 'L'
	Version = 1
)

// HeaderLen is the fixed probe header length in bytes.
const HeaderLen = 24

// Header is the fixed-size header of every emunet datagram. Payload (if
// any) follows the header; measurement probes carry a 12-byte pad so the
// 40-byte on-the-wire size in the paper (20 IP + 8 UDP + 12 payload) is
// mirrored.
type Header struct {
	Type     uint8
	TTL      uint8
	PathID   uint32
	Snapshot uint32
	Seq      uint32
	// Hop fields are used by TypeTraceReply: the replying hop index and the
	// interface address it answered with.
	HopIndex  uint16
	Interface uint32
}

// ErrShortPacket is returned when a datagram is too short to hold a header.
var ErrShortPacket = errors.New("emunet: short packet")

// ErrBadMagic is returned for datagrams that are not emunet packets.
var ErrBadMagic = errors.New("emunet: bad magic or version")

// Marshal encodes the header into a fresh slice of HeaderLen bytes.
func (h *Header) Marshal() []byte {
	b := make([]byte, HeaderLen)
	b[0] = Magic
	b[1] = Version
	b[2] = h.Type
	b[3] = h.TTL
	binary.BigEndian.PutUint32(b[4:], h.PathID)
	binary.BigEndian.PutUint32(b[8:], h.Snapshot)
	binary.BigEndian.PutUint32(b[12:], h.Seq)
	binary.BigEndian.PutUint16(b[16:], h.HopIndex)
	binary.BigEndian.PutUint32(b[18:], h.Interface)
	// b[22:24] reserved.
	return b
}

// Unmarshal decodes a datagram into h without retaining the buffer
// (gopacket-style zero-copy decode into a caller-owned struct).
func (h *Header) Unmarshal(b []byte) error {
	if len(b) < HeaderLen {
		return fmt.Errorf("%w: %d bytes", ErrShortPacket, len(b))
	}
	if b[0] != Magic || b[1] != Version {
		return ErrBadMagic
	}
	h.Type = b[2]
	h.TTL = b[3]
	h.PathID = binary.BigEndian.Uint32(b[4:])
	h.Snapshot = binary.BigEndian.Uint32(b[8:])
	h.Seq = binary.BigEndian.Uint32(b[12:])
	h.HopIndex = binary.BigEndian.Uint16(b[16:])
	h.Interface = binary.BigEndian.Uint32(b[18:])
	return nil
}

// Report is one beacon/sink measurement record, shipped to the collector as
// a JSON line over TCP (one object per line, newline-delimited).
type Report struct {
	PathID   int `json:"path"`
	Snapshot int `json:"snapshot"`
	Sent     int `json:"sent"`
	Received int `json:"received"`
}
