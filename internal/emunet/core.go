package emunet

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"

	"lia/internal/lossmodel"
)

// RouterInfo models one emulated router for topology discovery: routers can
// own several interface addresses (16% of PlanetLab routers did) and may
// silently drop TTL-exceeded replies (5–10% did).
type RouterInfo struct {
	ID         int
	Interfaces []uint32 // interface addresses the router may answer with
	Responds   bool
}

// PathSpec tells the core how to forward probes of one path: the sequence
// of physical link IDs to subject the probe to, the routers traversed, and
// the sink address to deliver surviving probes to.
type PathSpec struct {
	ID      int
	Links   []int // physical link IDs, traversal order
	Routers []int // router IDs after each link (for trace replies)
	Sink    *net.UDPAddr
}

// CoreConfig configures the emulated network core.
type CoreConfig struct {
	// Addr is the UDP address to bind (default "127.0.0.1:0").
	Addr string
	// Rates holds the current mean loss rate per physical link.
	Rates map[int]float64
	// Kind selects the loss process (Gilbert by default).
	Kind lossmodel.ProcessKind
	// PStayBad is the Gilbert burst parameter (default 0.35).
	PStayBad float64
	// Seed drives the loss processes.
	Seed uint64
	// Logf, if set, receives diagnostic messages.
	Logf func(format string, args ...interface{})
}

// Core is the emulated network: one UDP socket playing the role of the IP
// fabric between beacons and sinks.
type Core struct {
	conn    *net.UDPConn
	cfg     CoreConfig
	logf    func(string, ...interface{})
	rng     *rand.Rand
	mu      sync.Mutex
	paths   map[int]*PathSpec
	routers map[int]*RouterInfo
	procs   map[int]lossmodel.Process // per physical link
	dropped map[int]int64             // per link: probes dropped
	seen    map[int]int64             // per link: probes traversed
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewCore starts an emulated network core on a UDP socket (loopback
// ephemeral by default).
func NewCore(cfg CoreConfig) (*Core, error) {
	bind := cfg.Addr
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("emunet: core bind %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emunet: core listen: %w", err)
	}
	// Beacons probe at full speed in bursts of a whole snapshot, so the
	// default socket buffer (a few hundred datagrams) silently drops probes
	// before they ever reach a loss process. Best effort: the kernel clamps
	// the request to rmem_max.
	_ = conn.SetReadBuffer(4 << 20)
	if cfg.PStayBad == 0 {
		cfg.PStayBad = lossmodel.DefaultPStayBad
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	c := &Core{
		conn:    conn,
		cfg:     cfg,
		logf:    logf,
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0xC0DE)),
		paths:   make(map[int]*PathSpec),
		routers: make(map[int]*RouterInfo),
		procs:   make(map[int]lossmodel.Process),
		dropped: make(map[int]int64),
		seen:    make(map[int]int64),
		done:    make(chan struct{}),
	}
	for link, rate := range cfg.Rates {
		c.procs[link] = lossmodel.NewProcess(cfg.Kind, rate, cfg.PStayBad, c.rng)
	}
	c.wg.Add(1)
	go c.serve()
	return c, nil
}

// Addr returns the UDP address beacons should send probes to.
func (c *Core) Addr() *net.UDPAddr { return c.conn.LocalAddr().(*net.UDPAddr) }

// AddPath installs or replaces a path specification.
func (c *Core) AddPath(p PathSpec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := p
	cp.Links = append([]int(nil), p.Links...)
	cp.Routers = append([]int(nil), p.Routers...)
	c.paths[p.ID] = &cp
}

// AddRouter installs router metadata for traceroute emulation.
func (c *Core) AddRouter(r RouterInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := r
	cp.Interfaces = append([]uint32(nil), r.Interfaces...)
	c.routers[r.ID] = &cp
}

// SetRates replaces the per-link mean loss rates, rebuilding the loss
// processes (used between snapshots when congestion levels move).
func (c *Core) SetRates(rates map[int]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for link, rate := range rates {
		c.procs[link] = lossmodel.NewProcess(c.cfg.Kind, rate, c.cfg.PStayBad, c.rng)
	}
}

// LinkStats returns per-link (traversals, drops) counters accumulated since
// start — the core-side ground truth for validation.
func (c *Core) LinkStats() (seen, dropped map[int]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen = make(map[int]int64, len(c.seen))
	dropped = make(map[int]int64, len(c.dropped))
	for k, v := range c.seen {
		seen[k] = v
	}
	for k, v := range c.dropped {
		dropped[k] = v
	}
	return seen, dropped
}

// Close shuts the core down and waits for its serving goroutine.
func (c *Core) Close() error {
	close(c.done)
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

func (c *Core) serve() {
	defer c.wg.Done()
	buf := make([]byte, 2048)
	var h Header
	for {
		n, from, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-c.done:
				return
			default:
				c.logf("emunet core: read: %v", err)
				continue
			}
		}
		if err := h.Unmarshal(buf[:n]); err != nil {
			c.logf("emunet core: drop malformed packet from %v: %v", from, err)
			continue
		}
		switch h.Type {
		case TypeProbe:
			c.handleProbe(&h)
		case TypeTrace:
			c.handleTrace(&h, from)
		case TypeFlush:
			// Barrier: echo once every datagram queued before it has been
			// processed (the socket delivers in arrival order).
			reply := Header{Type: TypeFlush, PathID: h.PathID, Seq: h.Seq}
			if _, err := c.conn.WriteToUDP(reply.Marshal(), from); err != nil {
				c.logf("emunet core: flush reply to %v: %v", from, err)
			}
		default:
			c.logf("emunet core: unknown type %d", h.Type)
		}
	}
}

// handleProbe walks the probe through its path's loss processes and, if it
// survives every link, forwards it to the sink.
func (c *Core) handleProbe(h *Header) {
	c.mu.Lock()
	p, ok := c.paths[int(h.PathID)]
	if !ok {
		c.mu.Unlock()
		c.logf("emunet core: probe for unknown path %d", h.PathID)
		return
	}
	alive := true
	for _, link := range p.Links {
		proc, ok := c.procs[link]
		if !ok {
			proc = lossmodel.NewProcess(c.cfg.Kind, 0, c.cfg.PStayBad, c.rng)
			c.procs[link] = proc
		}
		c.seen[link]++
		// Every link's process advances on each traversal so burst dynamics
		// progress in packet time, even after an upstream drop.
		if proc.Drop(c.rng) {
			c.dropped[link]++
			alive = false
		}
	}
	sink := p.Sink
	c.mu.Unlock()
	if !alive || sink == nil {
		return
	}
	if _, err := c.conn.WriteToUDP(h.Marshal(), sink); err != nil {
		c.logf("emunet core: forward to %v: %v", sink, err)
	}
}

// handleTrace emulates TTL processing: the router at hop TTL answers with
// the interface the probe arrived on (or stays silent), and probes with TTL
// beyond the path length get a destination reply with hop index 0xFFFF.
func (c *Core) handleTrace(h *Header, from *net.UDPAddr) {
	c.mu.Lock()
	p, ok := c.paths[int(h.PathID)]
	if !ok {
		c.mu.Unlock()
		return
	}
	reply := Header{Type: TypeTraceReply, PathID: h.PathID, Snapshot: h.Snapshot, Seq: h.Seq}
	hop := int(h.TTL)
	respond := true
	if hop >= 1 && hop <= len(p.Routers) {
		r := c.routers[p.Routers[hop-1]]
		reply.HopIndex = uint16(hop - 1)
		if r == nil || !r.Responds {
			respond = false
		} else {
			// The answering interface is determined by the incoming link, so
			// paths sharing a segment observe identical hop addresses while
			// paths entering a router from different sides observe aliases.
			incoming := p.Links[hop-1]
			reply.Interface = r.Interfaces[incoming%len(r.Interfaces)]
		}
	} else {
		// Beyond the last router: destination "port unreachable".
		reply.HopIndex = 0xFFFF
	}
	c.mu.Unlock()
	if !respond {
		return
	}
	if _, err := c.conn.WriteToUDP(reply.Marshal(), from); err != nil {
		c.logf("emunet core: trace reply to %v: %v", from, err)
	}
}
