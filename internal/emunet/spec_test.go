package emunet

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDeploySpecApply(t *testing.T) {
	sink, err := NewSink()
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	dir := t.TempDir()
	specPath := filepath.Join(dir, "deploy.json")
	spec := `{
	  "rates": {"10": 0.0, "11": 0.0},
	  "paths": [{"id": 1, "links": [10, 11], "routers": [5], "sink": "` + sink.Addr().String() + `"}],
	  "routers": [{"id": 5, "interfaces": [81], "responds": true}]
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDeploySpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Paths) != 1 || loaded.Paths[0].ID != 1 {
		t.Fatalf("spec paths = %+v", loaded.Paths)
	}
	core, err := NewCore(CoreConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	if err := loaded.Apply(core); err != nil {
		t.Fatal(err)
	}
	// The applied path must forward probes end to end.
	b, err := NewBeacon(core.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.ProbePath(1, 0, 50, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sink.Received(1, 0) < 50 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := sink.Received(1, 0); got != 50 {
		t.Fatalf("received %d probes through applied spec, want 50", got)
	}
	// And the router must answer traces.
	tracer, err := NewTracer(core.Addr(), 2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tracer.Close()
	hops, err := tracer.TracePath(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].Interface != 81 {
		t.Fatalf("hops = %+v", hops)
	}
}

func TestDeploySpecErrors(t *testing.T) {
	if _, err := LoadDeploySpec("/nonexistent/spec.json"); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadDeploySpec(bad); err == nil {
		t.Error("malformed JSON should error")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"rates":{},"paths":[]}`), 0o644)
	if _, err := LoadDeploySpec(empty); err == nil {
		t.Error("empty path list should error")
	}
	// Bad link key in rates.
	core, err := NewCore(CoreConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	spec := &DeploySpec{Rates: map[string]float64{"abc": 0.5}, Paths: []DeployPath{{ID: 0, Links: []int{1}, Sink: "127.0.0.1:1"}}}
	if err := spec.Apply(core); err == nil {
		t.Error("non-numeric link key should error")
	}
	spec = &DeploySpec{Paths: []DeployPath{{ID: 0, Links: []int{1}, Sink: "::bad::"}}}
	if err := spec.Apply(core); err == nil {
		t.Error("bad sink address should error")
	}
}
