package emunet

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"lia/internal/lossmodel"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// LabConfig parameterizes an in-process overlay deployment (the stand-in
// for the paper's PlanetLab experiment of Section 7).
type LabConfig struct {
	Probes int           // S probes per path per snapshot
	Gap    time.Duration // inter-probe gap per beacon (0 = full speed)
	Seed   uint64

	Loss lossmodel.Config // loss scenario over physical links

	// Discovery realism (Section 7.1):
	RespondProb    float64 // per-router probability of answering TTL probes (default 0.93)
	MultiIfaceProb float64 // fraction of routers with several interfaces (default 0.16)
	ResolveProb    float64 // probability sr-ally resolves a router's aliases (default 0.8)

	// SequentialBeacons probes one beacon at a time (in beacon-ID order)
	// instead of concurrently. Loopback sockets deliver in order and the
	// loss processes are seeded, so a sequential run is bit-reproducible —
	// the mode statistical tests need. Concurrent probing (the default)
	// mirrors independent real hosts, whose interleaving at the shared core
	// varies from run to run.
	SequentialBeacons bool
}

func (c LabConfig) withDefaults() LabConfig {
	if c.Probes == 0 {
		c.Probes = 1000
	}
	if c.RespondProb == 0 {
		c.RespondProb = 0.93
	}
	if c.MultiIfaceProb == 0 {
		c.MultiIfaceProb = 0.16
	}
	if c.ResolveProb == 0 {
		c.ResolveProb = 0.8
	}
	return c
}

// Lab wires a topogen network into a running emulated overlay: one core,
// one sink per destination host, one beacon per source host, a collector,
// and the ground-truth loss scenario.
type Lab struct {
	cfg     LabConfig
	net     *topogen.Network
	paths   []topology.Path
	core    *Core
	sinks   map[int]*Sink // destination node -> sink
	beacons map[int]*Beacon
	coll    *Collector
	scen    *lossmodel.Scenario
	rng     *rand.Rand
	routers []RouterInfo
	ifOwner map[uint32]int // interface address -> router node
	snap    int
	mu      sync.Mutex
	history [][]float64 // per snapshot: per-path received fraction
	rates   [][]float64 // per snapshot: per-physical-link assigned rates (indexed by edge ID)
}

// NewLab builds and starts the whole deployment. The paths must come from
// the same network (typically topogen.Routes output).
func NewLab(network *topogen.Network, paths []topology.Path, cfg LabConfig) (*Lab, error) {
	cfg = cfg.withDefaults()
	if len(paths) == 0 {
		return nil, fmt.Errorf("emunet: lab needs at least one path")
	}
	lab := &Lab{
		cfg:     cfg,
		net:     network,
		paths:   paths,
		sinks:   make(map[int]*Sink),
		beacons: make(map[int]*Beacon),
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x1AB)),
		ifOwner: make(map[uint32]int),
	}
	// Ground-truth scenario over physical links (edge IDs).
	lab.scen = lossmodel.NewScenario(cfg.Loss, lab.rng, network.G.NumEdges())

	// Router inventory with interfaces and responsiveness.
	for node := 0; node < network.G.NumNodes(); node++ {
		n := 1
		if lab.rng.Float64() < cfg.MultiIfaceProb {
			n = 2 + lab.rng.IntN(2)
		}
		info := RouterInfo{ID: node, Responds: lab.rng.Float64() < cfg.RespondProb}
		for i := 0; i < n; i++ {
			addr := uint32(node)*16 + uint32(i) + 1
			info.Interfaces = append(info.Interfaces, addr)
			lab.ifOwner[addr] = node
		}
		lab.routers = append(lab.routers, info)
	}

	core, err := NewCore(CoreConfig{
		Rates: lab.currentRates(),
		Kind:  cfg.Loss.Process,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	lab.core = core
	if err := core.conn.SetReadBuffer(8 << 20); err != nil {
		core.logf("emunet lab: SetReadBuffer: %v", err)
	}
	for _, r := range lab.routers {
		core.AddRouter(r)
	}

	coll, err := NewCollector()
	if err != nil {
		lab.Close()
		return nil, err
	}
	lab.coll = coll

	// One sink per destination, one beacon per source.
	for i, p := range paths {
		if _, ok := lab.sinks[p.Dst]; !ok {
			s, err := NewSink()
			if err != nil {
				lab.Close()
				return nil, err
			}
			_ = s.conn.SetReadBuffer(8 << 20)
			lab.sinks[p.Dst] = s
		}
		if _, ok := lab.beacons[p.Beacon]; !ok {
			b, err := NewBeacon(core.Addr())
			if err != nil {
				lab.Close()
				return nil, err
			}
			lab.beacons[p.Beacon] = b
		}
		core.AddPath(PathSpec{
			ID:      i,
			Links:   p.Links,
			Routers: lab.intermediateRouters(p),
			Sink:    lab.sinks[p.Dst].Addr(),
		})
	}
	return lab, nil
}

// intermediateRouters lists the router node after each link except the last
// (whose endpoint is the destination host, which answers as destination).
func (l *Lab) intermediateRouters(p topology.Path) []int {
	var routers []int
	for i, linkID := range p.Links {
		if i == len(p.Links)-1 {
			break
		}
		routers = append(routers, l.net.G.Edge(linkID).To)
	}
	return routers
}

func (l *Lab) currentRates() map[int]float64 {
	rates := l.scen.Rates()
	m := make(map[int]float64, len(rates))
	for link, r := range rates {
		m[link] = r
	}
	return m
}

// Paths returns the lab's probing paths (index = path ID on the wire).
func (l *Lab) Paths() []topology.Path { return l.paths }

// Network returns the underlying ground-truth network.
func (l *Lab) Network() *topogen.Network { return l.net }

// Scenario exposes the ground-truth loss scenario.
func (l *Lab) Scenario() *lossmodel.Scenario { return l.scen }

// CollectorAddr returns the central server's TCP endpoint.
func (l *Lab) CollectorAddr() string { return l.coll.Addr() }

// RunSnapshot advances the scenario (except before the first snapshot),
// probes every path with S probes, gathers the sink counts, ships them to
// the collector, and returns the per-path received fractions.
func (l *Lab) RunSnapshot() ([]float64, error) {
	l.mu.Lock()
	snap := l.snap
	l.snap++
	l.mu.Unlock()
	if snap > 0 {
		l.scen.Advance()
		l.core.SetRates(l.currentRates())
	}
	l.mu.Lock()
	l.rates = append(l.rates, append([]float64(nil), l.scen.Rates()...))
	l.mu.Unlock()

	// Beacons probe their paths concurrently by default (one goroutine per
	// beacon, as each PlanetLab host probed independently), paths
	// sequentially within a beacon to respect the per-host rate limit.
	byBeacon := make(map[int][]int)
	for i, p := range l.paths {
		byBeacon[p.Beacon] = append(byBeacon[p.Beacon], i)
	}
	probeBeacon := func(b *Beacon, ids []int) error {
		for _, id := range ids {
			if _, err := b.ProbePath(id, snap, l.cfg.Probes, l.cfg.Gap); err != nil {
				return err
			}
		}
		// Barrier: wait until the core has processed this beacon's probes,
		// so sink counts are complete before reporting.
		return b.Flush(10 * time.Second)
	}
	if l.cfg.SequentialBeacons {
		beacons := make([]int, 0, len(byBeacon))
		for beacon := range byBeacon {
			beacons = append(beacons, beacon)
		}
		sort.Ints(beacons)
		for _, beacon := range beacons {
			if err := probeBeacon(l.beacons[beacon], byBeacon[beacon]); err != nil {
				return nil, err
			}
		}
	} else {
		var wg sync.WaitGroup
		errs := make(chan error, len(byBeacon))
		for beacon, pathIDs := range byBeacon {
			wg.Add(1)
			go func(b *Beacon, ids []int) {
				defer wg.Done()
				if err := probeBeacon(b, ids); err != nil {
					errs <- err
				}
			}(l.beacons[beacon], pathIDs)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	// Short drain for core→sink forwarding of the last probes.
	time.Sleep(10 * time.Millisecond)

	// Sinks report to the collector over TCP.
	rc, err := DialCollector(l.coll.Addr())
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	for i, p := range l.paths {
		rep := Report{
			PathID:   i,
			Snapshot: snap,
			Sent:     l.cfg.Probes,
			Received: l.sinks[p.Dst].Received(i, snap),
		}
		if err := rc.Send(rep); err != nil {
			return nil, err
		}
	}
	frac, err := l.coll.WaitSnapshot(snap, len(l.paths), 5*time.Second)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.history = append(l.history, frac)
	l.mu.Unlock()
	return frac, nil
}

// History returns the received fractions of all completed snapshots.
func (l *Lab) History() [][]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]float64, len(l.history))
	copy(out, l.history)
	return out
}

// AssignedRates returns the ground-truth physical-link rates per snapshot.
func (l *Lab) AssignedRates() [][]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]float64, len(l.rates))
	copy(out, l.rates)
	return out
}

// Discover runs traceroute over every path and reconstructs the measured
// topology: hops become canonical interface addresses (after alias
// resolution), silent routers become synthetic anonymous nodes, and each
// adjacent hop pair becomes a discovered link. The result is the error-prone
// measured counterpart of the true paths, exactly as Section 7.1 builds it.
func (l *Lab) Discover() ([]topology.Path, error) {
	tracer, err := NewTracer(l.core.Addr(), 2, 200*time.Millisecond)
	if err != nil {
		return nil, err
	}
	defer tracer.Close()
	resolver := NewAliasResolver(l.routers, l.cfg.ResolveProb)

	linkID := make(map[[2]uint32]int)
	nextLink := 0
	idOf := func(a, b uint32) int {
		key := [2]uint32{a, b}
		if id, ok := linkID[key]; ok {
			return id
		}
		linkID[key] = nextLink
		nextLink++
		return linkID[key]
	}
	var out []topology.Path
	for i, p := range l.paths {
		hops, err := tracer.TracePath(i, len(p.Links)+4)
		if err != nil {
			return nil, fmt.Errorf("emunet: discover path %d: %w", i, err)
		}
		// Node sequence: beacon, hop interfaces…, destination.
		nodes := []uint32{uint32(p.Beacon)*16 + 1}
		for h, hop := range hops {
			if hop.Responded {
				nodes = append(nodes, resolver.Canonical(hop.Interface))
			} else {
				nodes = append(nodes, AnonAddress(i, h))
			}
		}
		nodes = append(nodes, uint32(p.Dst)*16+1)
		dp := topology.Path{Beacon: p.Beacon, Dst: p.Dst}
		for j := 1; j < len(nodes); j++ {
			dp.Links = append(dp.Links, idOf(nodes[j-1], nodes[j]))
		}
		out = append(out, dp)
	}
	return out, nil
}

// InterfaceOwner resolves an interface address to its true router node
// (the lab-side equivalent of the RouteViews BGP mapping used for Table 3).
func (l *Lab) InterfaceOwner(iface uint32) (int, bool) {
	n, ok := l.ifOwner[iface]
	return n, ok
}

// Close tears the deployment down.
func (l *Lab) Close() {
	if l.core != nil {
		_ = l.core.Close()
	}
	for _, s := range l.sinks {
		_ = s.Close()
	}
	for _, b := range l.beacons {
		_ = b.Close()
	}
	if l.coll != nil {
		_ = l.coll.Close()
	}
}
