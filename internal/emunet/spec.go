package emunet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
)

// DeploySpec is the JSON deployment description shared by the standalone
// processes (cmd/emucore, cmd/beacon, cmd/collector): it tells the core
// which paths exist, which links they traverse at which loss rates, where
// each path's sink lives, and the router inventory for traceroute.
type DeploySpec struct {
	Rates   map[string]float64 `json:"rates"` // link ID (decimal string) -> mean loss rate
	Paths   []DeployPath       `json:"paths"`
	Routers []DeployRouter     `json:"routers,omitempty"`
}

// DeployPath is one forwarding entry.
type DeployPath struct {
	ID      int    `json:"id"`
	Links   []int  `json:"links"`
	Routers []int  `json:"routers,omitempty"`
	Sink    string `json:"sink"` // host:port UDP address
}

// DeployRouter is one traceroute-visible router.
type DeployRouter struct {
	ID         int      `json:"id"`
	Interfaces []uint32 `json:"interfaces"`
	Responds   bool     `json:"responds"`
}

// LoadDeploySpec reads and validates a deployment file.
func LoadDeploySpec(path string) (*DeploySpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("emunet: open spec: %w", err)
	}
	defer f.Close()
	var spec DeploySpec
	if err := json.NewDecoder(f).Decode(&spec); err != nil {
		return nil, fmt.Errorf("emunet: decode spec %s: %w", path, err)
	}
	if len(spec.Paths) == 0 {
		return nil, fmt.Errorf("emunet: spec %s has no paths", path)
	}
	return &spec, nil
}

// Apply installs the spec into a running core.
func (s *DeploySpec) Apply(core *Core) error {
	rates := make(map[int]float64, len(s.Rates))
	for k, v := range s.Rates {
		var link int
		if _, err := fmt.Sscanf(k, "%d", &link); err != nil {
			return fmt.Errorf("emunet: bad link id %q in spec", k)
		}
		rates[link] = v
	}
	core.SetRates(rates)
	for _, r := range s.Routers {
		core.AddRouter(RouterInfo{ID: r.ID, Interfaces: r.Interfaces, Responds: r.Responds})
	}
	for _, p := range s.Paths {
		sink, err := net.ResolveUDPAddr("udp", p.Sink)
		if err != nil {
			return fmt.Errorf("emunet: path %d sink %q: %w", p.ID, p.Sink, err)
		}
		core.AddPath(PathSpec{ID: p.ID, Links: p.Links, Routers: p.Routers, Sink: sink})
	}
	return nil
}
