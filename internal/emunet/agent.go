package emunet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Sink receives surviving probes on a UDP socket and counts arrivals per
// (path, snapshot).
type Sink struct {
	conn *net.UDPConn
	mu   sync.Mutex
	recv map[[2]int]int // (path, snapshot) -> count
	done chan struct{}
	wg   sync.WaitGroup
}

// NewSink opens a loopback sink socket on an ephemeral port.
func NewSink() (*Sink, error) { return NewSinkAddr("127.0.0.1:0") }

// NewSinkAddr opens a sink socket on an explicit address (fixed ports are
// needed when beacons, sinks and the core run as separate processes).
func NewSinkAddr(bind string) (*Sink, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("emunet: sink bind %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emunet: sink listen: %w", err)
	}
	// Surviving probes arrive in bursts of up to a whole snapshot; size the
	// socket buffer so counting keeps up (best effort, clamped to rmem_max).
	_ = conn.SetReadBuffer(4 << 20)
	s := &Sink{conn: conn, recv: make(map[[2]int]int), done: make(chan struct{})}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the sink's UDP address, to be installed in PathSpec.Sink.
func (s *Sink) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

func (s *Sink) serve() {
	defer s.wg.Done()
	buf := make([]byte, 2048)
	var h Header
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		if h.Unmarshal(buf[:n]) != nil || h.Type != TypeProbe {
			continue
		}
		s.mu.Lock()
		s.recv[[2]int{int(h.PathID), int(h.Snapshot)}]++
		s.mu.Unlock()
	}
}

// Received returns the number of probes seen for (path, snapshot).
func (s *Sink) Received(path, snapshot int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recv[[2]int{path, snapshot}]
}

// Counts returns a copy of every (path, snapshot) counter, for periodic
// reporting by standalone sink agents.
func (s *Sink) Counts() map[[2]int]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[[2]int]int, len(s.recv))
	for k, v := range s.recv {
		out[k] = v
	}
	return out
}

// Close stops the sink.
func (s *Sink) Close() error {
	close(s.done)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// Beacon sends measurement probes for a set of paths through the core.
type Beacon struct {
	conn *net.UDPConn
	core *net.UDPAddr
}

// NewBeacon opens a probing socket aimed at the core.
func NewBeacon(core *net.UDPAddr) (*Beacon, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("emunet: beacon listen: %w", err)
	}
	return &Beacon{conn: conn, core: core}, nil
}

// ProbePath sends S probes for the path in one snapshot. The inter-probe
// gap throttles the send rate (the paper uses 10 ms probes at 100 KB/s per
// host; tests pass 0 for full speed). It returns the number of probes
// handed to the socket.
func (b *Beacon) ProbePath(pathID, snapshot, probes int, gap time.Duration) (int, error) {
	payload := make([]byte, HeaderLen+12) // 12-byte pad to mirror 40-byte probes
	sent := 0
	for seq := 0; seq < probes; seq++ {
		h := Header{Type: TypeProbe, PathID: uint32(pathID), Snapshot: uint32(snapshot), Seq: uint32(seq)}
		copy(payload, h.Marshal())
		if _, err := b.conn.WriteToUDP(payload, b.core); err != nil {
			return sent, fmt.Errorf("emunet: probe path %d seq %d: %w", pathID, seq, err)
		}
		sent++
		if gap > 0 {
			time.Sleep(gap)
		}
	}
	return sent, nil
}

// Flush sends a barrier datagram to the core and waits for its echo: when
// it returns, every probe this beacon sent before the barrier has been
// processed by the core (loopback sockets deliver in arrival order).
func (b *Beacon) Flush(timeout time.Duration) error {
	seq := uint32(time.Now().UnixNano())
	h := Header{Type: TypeFlush, Seq: seq}
	buf := make([]byte, 2048)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, err := b.conn.WriteToUDP(h.Marshal(), b.core); err != nil {
			return fmt.Errorf("emunet: flush: %w", err)
		}
		if err := b.conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond)); err != nil {
			return err
		}
		for {
			n, _, err := b.conn.ReadFromUDP(buf)
			if err != nil {
				break // retry the barrier
			}
			var reply Header
			if reply.Unmarshal(buf[:n]) == nil && reply.Type == TypeFlush && reply.Seq == seq {
				return nil
			}
		}
	}
	return fmt.Errorf("emunet: flush timed out after %v", timeout)
}

// Conn exposes the underlying socket (used by the tracer).
func (b *Beacon) Conn() *net.UDPConn { return b.conn }

// Close releases the beacon socket.
func (b *Beacon) Close() error { return b.conn.Close() }

// ErrCollectorClosed reports that a wait on a Collector ended because the
// collector was shut down (or its listener died), not because the caller's
// context expired — the signal a reconnecting consumer keys on.
var ErrCollectorClosed = errors.New("emunet: collector closed")

// Collector is the central server: it accepts newline-delimited JSON
// reports over TCP and assembles them into per-snapshot received counts.
type Collector struct {
	ln        net.Listener
	mu        sync.Mutex
	data      map[[2]int]Report // (path, snapshot) -> last report
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// NewCollector starts a TCP collector on loopback.
func NewCollector() (*Collector, error) { return NewCollectorAddr("127.0.0.1:0") }

// NewCollectorAddr starts a TCP collector on an explicit address.
func NewCollectorAddr(addr string) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("emunet: collector listen %q: %w", addr, err)
	}
	c := &Collector{ln: ln, data: make(map[[2]int]Report), done: make(chan struct{})}
	c.wg.Add(1)
	go c.accept()
	return c, nil
}

// Addr returns the collector's TCP address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

func (c *Collector) accept() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return
			default:
				continue
			}
		}
		c.wg.Add(1)
		go c.handle(conn)
	}
}

func (c *Collector) handle(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		var r Report
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			continue // tolerate malformed lines from misbehaving agents
		}
		// Merge: beacons report Sent, sinks report Received; a full report
		// (the in-process lab) carries both.
		c.mu.Lock()
		key := [2]int{r.PathID, r.Snapshot}
		cur := c.data[key]
		cur.PathID, cur.Snapshot = r.PathID, r.Snapshot
		if r.Sent > cur.Sent {
			cur.Sent = r.Sent
		}
		if r.Received > cur.Received {
			cur.Received = r.Received
		}
		c.data[key] = cur
		c.mu.Unlock()
	}
}

// Snapshot returns the received fractions for all paths of one snapshot,
// or ok=false if any path has not reported yet.
func (c *Collector) Snapshot(snapshot, numPaths int) (frac []float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	frac = make([]float64, numPaths)
	for p := 0; p < numPaths; p++ {
		r, have := c.data[[2]int{p, snapshot}]
		if !have || r.Sent == 0 {
			return nil, false
		}
		frac[p] = float64(r.Received) / float64(r.Sent)
	}
	return frac, true
}

// WaitSnapshot polls until the snapshot is complete or the timeout expires.
func (c *Collector) WaitSnapshot(snapshot, numPaths int, timeout time.Duration) ([]float64, error) {
	deadline := time.Now().Add(timeout)
	for {
		if frac, ok := c.Snapshot(snapshot, numPaths); ok {
			return frac, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("emunet: snapshot %d incomplete after %v", snapshot, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// AwaitSnapshot is the report-assembly step shared by the standalone
// collector command and the live serve.CollectorSource: it blocks until
// every path of the snapshot has a sent count (beacons report immediately),
// waits the settle window so the sinks' timer-driven received reports merge
// in, and re-reads the merged fractions. It returns the context error on
// cancellation, so callers bound the wait with context.WithTimeout.
func (c *Collector) AwaitSnapshot(ctx context.Context, snapshot, numPaths int, settle time.Duration) ([]float64, error) {
	for {
		if _, ok := c.Snapshot(snapshot, numPaths); ok {
			break
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("emunet: snapshot %d incomplete: %w", snapshot, ctx.Err())
		case <-c.done:
			return nil, fmt.Errorf("emunet: snapshot %d: %w", snapshot, ErrCollectorClosed)
		case <-time.After(2 * time.Millisecond):
		}
	}
	if settle > 0 {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("emunet: snapshot %d settle: %w", snapshot, ctx.Err())
		case <-c.done:
			return nil, fmt.Errorf("emunet: snapshot %d settle: %w", snapshot, ErrCollectorClosed)
		case <-time.After(settle):
		}
	}
	frac, ok := c.Snapshot(snapshot, numPaths)
	if !ok {
		return nil, fmt.Errorf("emunet: snapshot %d regressed during settle", snapshot)
	}
	return frac, nil
}

// Done is closed when the collector shuts down — the hook waiters use to
// fail promptly (see ErrCollectorClosed) instead of polling a dead
// listener until their own deadline.
func (c *Collector) Done() <-chan struct{} { return c.done }

// Close stops the collector. Safe to call more than once.
func (c *Collector) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		err = c.ln.Close()
		c.wg.Wait()
	})
	return err
}

// ReportConn is an agent-side connection to the collector.
type ReportConn struct {
	conn net.Conn
	enc  *json.Encoder
}

// DialCollector connects an agent to the central server.
func DialCollector(addr string) (*ReportConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("emunet: dial collector %s: %w", addr, err)
	}
	return &ReportConn{conn: conn, enc: json.NewEncoder(conn)}, nil
}

// Send ships one report line.
func (r *ReportConn) Send(rep Report) error {
	if err := r.enc.Encode(rep); err != nil {
		return fmt.Errorf("emunet: send report: %w", err)
	}
	return nil
}

// Close closes the connection.
func (r *ReportConn) Close() error { return r.conn.Close() }
