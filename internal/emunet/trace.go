package emunet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"
)

// TraceHop is one hop discovered by the tracer: the interface address that
// answered (or 0 if the router stayed silent).
type TraceHop struct {
	Interface uint32
	Responded bool
}

// Tracer performs traceroute-style discovery over the emulated network.
type Tracer struct {
	conn    *net.UDPConn
	core    *net.UDPAddr
	retries int
	timeout time.Duration
}

// NewTracer opens a discovery socket. Each hop is retried up to retries
// times before being declared silent ("5 to 10% of routers do not respond
// to ICMP requests").
func NewTracer(core *net.UDPAddr, retries int, timeout time.Duration) (*Tracer, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("emunet: tracer listen: %w", err)
	}
	if retries < 1 {
		retries = 2
	}
	if timeout <= 0 {
		timeout = 200 * time.Millisecond
	}
	return &Tracer{conn: conn, core: core, retries: retries, timeout: timeout}, nil
}

// Close releases the tracer socket.
func (t *Tracer) Close() error { return t.conn.Close() }

// ErrTraceTimeout is returned when no reply arrives for a hop probe.
var ErrTraceTimeout = errors.New("emunet: trace probe timed out")

// TracePath walks the path hop by hop with increasing TTL until the
// destination replies, returning the discovered hops in order.
func (t *Tracer) TracePath(pathID, maxHops int) ([]TraceHop, error) {
	var hops []TraceHop
	buf := make([]byte, 2048)
	for ttl := 1; ttl <= maxHops; ttl++ {
		hop, done, err := t.probeHop(pathID, ttl, buf)
		if err != nil {
			return hops, err
		}
		if done {
			return hops, nil
		}
		hops = append(hops, hop)
	}
	return hops, fmt.Errorf("emunet: path %d longer than %d hops", pathID, maxHops)
}

func (t *Tracer) probeHop(pathID, ttl int, buf []byte) (TraceHop, bool, error) {
	for attempt := 0; attempt < t.retries; attempt++ {
		h := Header{Type: TypeTrace, TTL: uint8(ttl), PathID: uint32(pathID), Seq: uint32(attempt)}
		if _, err := t.conn.WriteToUDP(h.Marshal(), t.core); err != nil {
			return TraceHop{}, false, fmt.Errorf("emunet: trace send: %w", err)
		}
		if err := t.conn.SetReadDeadline(time.Now().Add(t.timeout)); err != nil {
			return TraceHop{}, false, err
		}
		for {
			n, _, err := t.conn.ReadFromUDP(buf)
			if err != nil {
				break // timeout: retry or give up on this hop
			}
			var reply Header
			if reply.Unmarshal(buf[:n]) != nil || reply.Type != TypeTraceReply ||
				reply.PathID != uint32(pathID) {
				continue // stale or foreign datagram
			}
			if reply.HopIndex == 0xFFFF {
				return TraceHop{}, true, nil // destination reached
			}
			if int(reply.HopIndex) != ttl-1 {
				continue // reply to an earlier retry
			}
			return TraceHop{Interface: reply.Interface, Responded: true}, false, nil
		}
	}
	// Silent router: record an anonymous hop, keep walking.
	return TraceHop{Responded: false}, false, nil
}

// AliasResolver models sr-ally style interface disambiguation: it knows the
// true interface→router mapping for a subset of interfaces (resolution is
// incomplete in practice) and canonicalizes each interface to the smallest
// interface address of its resolved router.
type AliasResolver struct {
	canon map[uint32]uint32
}

// NewAliasResolver builds a resolver from the true router inventory,
// resolving each multi-interface router independently with the given
// probability (the tool "does not guarantee complete identification").
// The decision is deterministic in the interface addresses for a given
// resolveProb, via a cheap hash, so repeated runs agree.
func NewAliasResolver(routers []RouterInfo, resolveProb float64) *AliasResolver {
	r := &AliasResolver{canon: make(map[uint32]uint32)}
	for _, info := range routers {
		if len(info.Interfaces) == 0 {
			continue
		}
		ifs := append([]uint32(nil), info.Interfaces...)
		sort.Slice(ifs, func(a, b int) bool { return ifs[a] < ifs[b] })
		// Hash decides whether this router's aliases get resolved.
		h := uint32(2166136261)
		for _, x := range ifs {
			h = (h ^ x) * 16777619
		}
		if float64(h%1000)/1000 < resolveProb {
			for _, x := range ifs {
				r.canon[x] = ifs[0]
			}
		}
	}
	return r
}

// Canonical maps an interface address to its canonical alias (itself when
// unresolved).
func (r *AliasResolver) Canonical(iface uint32) uint32 {
	if c, ok := r.canon[iface]; ok {
		return c
	}
	return iface
}

// anonBase numbers anonymous (non-responding) hops so that distinct silent
// routers on the same path do not merge. Discovered topologies use the
// canonical interface address as the "node" identity, so a silent hop gets
// a synthetic per-path, per-position address above this base.
const anonBase = 0xF0000000

// AnonAddress synthesizes a stable pseudo-address for a silent hop.
func AnonAddress(pathID, hop int) uint32 {
	return anonBase + uint32(pathID)<<8 + uint32(hop)
}
