package emunet

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"lia/internal/lossmodel"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Type: TypeProbe, TTL: 7, PathID: 12345, Snapshot: 9, Seq: 777, HopIndex: 3, Interface: 0xDEADBEEF}
	var got Header
	if err := got.Unmarshal(h.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(typ, ttl uint8, path, snap, seq, iface uint32, hop uint16) bool {
		h := Header{Type: typ, TTL: ttl, PathID: path, Snapshot: snap, Seq: seq, HopIndex: hop, Interface: iface}
		var got Header
		return got.Unmarshal(h.Marshal()) == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	var h Header
	if err := h.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short packet accepted")
	}
	bad := (&Header{Type: TypeProbe}).Marshal()
	bad[0] = 'X'
	if err := h.Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

// testDeployment wires a 2-link path through a running core to a sink.
func testDeployment(t *testing.T, rates map[int]float64) (*Core, *Sink, *Beacon) {
	t.Helper()
	core, err := NewCore(CoreConfig{Rates: rates, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { core.Close() })
	sink, err := NewSink()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	core.AddPath(PathSpec{ID: 1, Links: []int{10, 11}, Routers: []int{5}, Sink: sink.Addr()})
	beacon, err := NewBeacon(core.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { beacon.Close() })
	return core, sink, beacon
}

func waitReceived(t *testing.T, sink *Sink, path, snap, want int) int {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := sink.Received(path, snap)
		if got >= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCoreForwardsLosslessPath(t *testing.T) {
	_, sink, beacon := testDeployment(t, map[int]float64{10: 0, 11: 0})
	const n = 200
	if _, err := beacon.ProbePath(1, 0, n, 0); err != nil {
		t.Fatal(err)
	}
	if got := waitReceived(t, sink, 1, 0, n); got != n {
		t.Fatalf("received %d of %d probes on a lossless path", got, n)
	}
}

func TestCoreDropsOnLossyLink(t *testing.T) {
	core, sink, beacon := testDeployment(t, map[int]float64{10: 0.5, 11: 0})
	const n = 1000
	if _, err := beacon.ProbePath(1, 0, n, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	got := sink.Received(1, 0)
	if got < 300 || got > 700 {
		t.Fatalf("received %d of %d through a 50%% lossy link", got, n)
	}
	seen, dropped := core.LinkStats()
	if seen[10] != n {
		t.Fatalf("core saw %d traversals of link 10, want %d", seen[10], n)
	}
	if dropped[10] == 0 || dropped[11] != 0 {
		t.Fatalf("drop counters wrong: %v", dropped)
	}
}

func TestCoreSetRates(t *testing.T) {
	core, sink, beacon := testDeployment(t, map[int]float64{10: 1, 11: 0})
	if _, err := beacon.ProbePath(1, 0, 100, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := sink.Received(1, 0); got != 0 {
		t.Fatalf("received %d probes through a 100%% lossy link", got)
	}
	// Heal the link; probes must flow again in the next snapshot.
	core.SetRates(map[int]float64{10: 0})
	if _, err := beacon.ProbePath(1, 1, 100, 0); err != nil {
		t.Fatal(err)
	}
	if got := waitReceived(t, sink, 1, 1, 100); got != 100 {
		t.Fatalf("received %d probes after healing the link, want 100", got)
	}
}

func TestTracerDiscoversPath(t *testing.T) {
	core, _, _ := testDeployment(t, map[int]float64{10: 0, 11: 0})
	core.AddRouter(RouterInfo{ID: 5, Interfaces: []uint32{81, 82}, Responds: true})
	tracer, err := NewTracer(core.Addr(), 2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tracer.Close()
	hops, err := tracer.TracePath(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 {
		t.Fatalf("discovered %d hops, want 1 intermediate router", len(hops))
	}
	if !hops[0].Responded || (hops[0].Interface != 81 && hops[0].Interface != 82) {
		t.Fatalf("hop = %+v, want interface 81 or 82", hops[0])
	}
}

func TestTracerSilentRouter(t *testing.T) {
	core, _, _ := testDeployment(t, map[int]float64{10: 0, 11: 0})
	core.AddRouter(RouterInfo{ID: 5, Interfaces: []uint32{81}, Responds: false})
	tracer, err := NewTracer(core.Addr(), 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tracer.Close()
	hops, err := tracer.TracePath(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].Responded {
		t.Fatalf("hops = %+v, want one silent hop", hops)
	}
}

func TestAliasResolver(t *testing.T) {
	routers := []RouterInfo{
		{ID: 1, Interfaces: []uint32{100, 101, 102}},
		{ID: 2, Interfaces: []uint32{200}},
	}
	r := NewAliasResolver(routers, 1.0) // always resolve
	if r.Canonical(102) != 100 || r.Canonical(101) != 100 {
		t.Fatal("aliases not canonicalized to the smallest interface")
	}
	if r.Canonical(200) != 200 {
		t.Fatal("single-interface router should map to itself")
	}
	none := NewAliasResolver(routers, 0.0) // never resolve
	if none.Canonical(102) != 102 {
		t.Fatal("unresolved alias should stay distinct")
	}
}

func TestCollectorAssemblesSnapshots(t *testing.T) {
	coll, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	rc, err := DialCollector(coll.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, ok := coll.Snapshot(0, 2); ok {
		t.Fatal("snapshot should be incomplete before reports arrive")
	}
	if err := rc.Send(Report{PathID: 0, Snapshot: 0, Sent: 100, Received: 90}); err != nil {
		t.Fatal(err)
	}
	if err := rc.Send(Report{PathID: 1, Snapshot: 0, Sent: 100, Received: 100}); err != nil {
		t.Fatal(err)
	}
	frac, err := coll.WaitSnapshot(0, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if frac[0] != 0.9 || frac[1] != 1.0 {
		t.Fatalf("frac = %v, want [0.9 1.0]", frac)
	}
}

func TestCollectorAwaitSnapshot(t *testing.T) {
	coll, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	rc, err := DialCollector(coll.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Beacon-style sent report lands first; the late sink report must merge
	// in during the settle window.
	if err := rc.Send(Report{PathID: 0, Snapshot: 0, Sent: 100}); err != nil {
		t.Fatal(err)
	}
	if err := rc.Send(Report{PathID: 1, Snapshot: 0, Sent: 100, Received: 80}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = rc.Send(Report{PathID: 0, Snapshot: 0, Received: 50})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	frac, err := coll.AwaitSnapshot(ctx, 0, 2, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if frac[0] != 0.5 || frac[1] != 0.8 {
		t.Fatalf("frac = %v, want [0.5 0.8]", frac)
	}

	// Cancellation surfaces as the context error for an incomplete snapshot.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if _, err := coll.AwaitSnapshot(ctx2, 1, 2, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AwaitSnapshot on incomplete snapshot = %v, want DeadlineExceeded", err)
	}
}

func TestLabEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	network := topogen.PlanetLabLike(rng, 6, 1)
	hosts := topogen.SelectHosts(rng, network, 4)
	paths := topogen.Routes(network, hosts, hosts)
	paths, _ = topology.RemoveFluttering(paths)
	lab, err := NewLab(network, paths, LabConfig{
		Probes: 120,
		Seed:   7,
		Loss:   lossmodel.Config{Fraction: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	for s := 0; s < 3; s++ {
		frac, err := lab.RunSnapshot()
		if err != nil {
			t.Fatalf("snapshot %d: %v", s, err)
		}
		if len(frac) != len(paths) {
			t.Fatalf("snapshot %d: %d fractions for %d paths", s, len(frac), len(paths))
		}
		for i, f := range frac {
			if f < 0 || f > 1 {
				t.Fatalf("snapshot %d path %d: fraction %v out of range", s, i, f)
			}
		}
	}
	if got := len(lab.History()); got != 3 {
		t.Fatalf("history has %d snapshots, want 3", got)
	}

	// Discovery must return one measured path per probing path, each with at
	// least one link, and the measured paths must build into a routing
	// matrix.
	discovered, err := lab.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(discovered) != len(paths) {
		t.Fatalf("discovered %d paths, want %d", len(discovered), len(paths))
	}
	for i, p := range discovered {
		if len(p.Links) == 0 {
			t.Fatalf("discovered path %d has no links", i)
		}
		if len(p.Links) != len(paths[i].Links) {
			t.Fatalf("discovered path %d has %d hops, true path has %d",
				i, len(p.Links), len(paths[i].Links))
		}
	}
	if _, err := topology.Build(discovered); err != nil {
		t.Fatalf("discovered topology does not build: %v", err)
	}
}

func TestLabLosslessDeliversAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	network := topogen.Tree(rng, 12, 3)
	paths := topogen.Routes(network, []int{0}, network.Hosts)
	lab, err := NewLab(network, paths, LabConfig{
		Probes: 150,
		Seed:   7,
		Loss:   lossmodel.Config{Fraction: 0}, // no congested links
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	frac, err := lab.RunSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frac {
		// Good links still lose the occasional probe; bulk delivery must
		// succeed (also guards against UDP buffer overruns in the lab).
		if f < 0.97 {
			t.Fatalf("path %d delivered only %.3f of probes on an almost lossless network", i, f)
		}
	}
}
