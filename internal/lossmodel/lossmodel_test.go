package lossmodel

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGilbertMeanLossRate(t *testing.T) {
	// Property: the long-run drop fraction matches the configured rate for
	// both the feasible-pStayBad regime and the extreme LLRD2 regime.
	rng := rand.New(rand.NewPCG(1, 2))
	for _, rate := range []float64{0, 0.001, 0.05, 0.2, 0.5, 0.8, 0.95, 1} {
		proc := NewProcess(Gilbert, rate, DefaultPStayBad, rng)
		const n = 200000
		drops := 0
		for i := 0; i < n; i++ {
			if proc.Drop(rng) {
				drops++
			}
		}
		got := float64(drops) / n
		tol := 4 * math.Sqrt(rate*(1-rate)/n*10) // burst-inflated
		if tol < 0.004 {
			tol = 0.004
		}
		if math.Abs(got-rate) > tol {
			t.Errorf("Gilbert(%g): empirical rate %g (±%g)", rate, got, tol)
		}
	}
}

func TestGilbertBurstiness(t *testing.T) {
	// Consecutive drops must be far more likely than under Bernoulli: with
	// P(stay bad) = 0.35, P(drop | previous drop) = 0.35 regardless of rate.
	rng := rand.New(rand.NewPCG(3, 4))
	proc := NewProcess(Gilbert, 0.05, DefaultPStayBad, rng)
	prev := false
	both, prevCount := 0, 0
	for i := 0; i < 500000; i++ {
		d := proc.Drop(rng)
		if prev {
			prevCount++
			if d {
				both++
			}
		}
		prev = d
	}
	condl := float64(both) / float64(prevCount)
	if condl < 0.25 || condl > 0.45 {
		t.Errorf("P(drop|drop) = %.3f, want ≈0.35", condl)
	}
}

func TestBernoulliMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	proc := NewProcess(Bernoulli, 0.1, DefaultPStayBad, rng)
	drops := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if proc.Drop(rng) {
			drops++
		}
	}
	if got := float64(drops) / n; math.Abs(got-0.1) > 0.005 {
		t.Errorf("Bernoulli(0.1): empirical %g", got)
	}
}

func TestGilbertRejectsBadRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, bad := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %g should panic", bad)
				}
			}()
			NewProcess(Gilbert, bad, DefaultPStayBad, rng)
		}()
	}
}

func TestScenarioFractionAndRanges(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	const n = 5000
	s := NewScenario(Config{Model: LLRD1, Fraction: 0.1}, rng, n)
	cong := 0
	for i, c := range s.Congested() {
		r := s.Rates()[i]
		if c {
			cong++
			if r < 0.05 || r > 0.2 {
				t.Fatalf("congested rate %g outside LLRD1 range", r)
			}
		} else if r < 0 || r > Threshold {
			t.Fatalf("good rate %g outside [0, %g]", r, Threshold)
		}
	}
	frac := float64(cong) / n
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("congested fraction %.3f, want ≈0.1", frac)
	}
}

func TestScenarioLLRD2Range(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	s := NewScenario(Config{Model: LLRD2, Fraction: 1}, rng, 1000)
	for _, r := range s.Rates() {
		if r < Threshold || r > 1 {
			t.Fatalf("LLRD2 congested rate %g outside [%g, 1]", r, Threshold)
		}
	}
}

func TestScenarioAdvanceRedrawsRates(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	s := NewScenario(Config{Model: LLRD1, Fraction: 1}, rng, 50)
	before := append([]float64(nil), s.Rates()...)
	s.Advance()
	same := 0
	for i, r := range s.Rates() {
		if r == before[i] {
			same++
		}
	}
	if same == 50 {
		t.Fatal("Advance did not redraw congested rates")
	}
	// Statuses stay fixed by default.
	frozen := NewScenario(Config{Model: LLRD1, Fraction: 0.5, FreezeRates: true}, rng, 50)
	b := append([]float64(nil), frozen.Rates()...)
	frozen.Advance()
	for i, r := range frozen.Rates() {
		if r != b[i] {
			t.Fatal("FreezeRates scenario changed rates")
		}
	}
}

func TestScenarioResampleStatuses(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	s := NewScenario(Config{Fraction: 0.5, ResampleStatuses: true}, rng, 200)
	before := append([]bool(nil), s.Congested()...)
	s.Advance()
	diff := 0
	for i, c := range s.Congested() {
		if c != before[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("ResampleStatuses did not change the congested set")
	}
}

func TestScenarioEpisodic(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	s := NewScenario(Config{Fraction: 0.5, Episodic: 0.3}, rng, 2000)
	prone := 0
	for _, p := range s.Prone() {
		if p {
			prone++
		}
	}
	activeTotal := 0
	const rounds = 50
	for r := 0; r < rounds; r++ {
		s.Advance()
		for i, a := range s.Congested() {
			if a {
				activeTotal++
				if !s.Prone()[i] {
					t.Fatal("non-prone link became active")
				}
			}
		}
	}
	got := float64(activeTotal) / float64(rounds*prone)
	if math.Abs(got-0.3) > 0.05 {
		t.Errorf("episodic activation %.3f, want ≈0.3", got)
	}
}

func TestScenarioProneWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	const n = 4000
	w := make([]float64, n)
	for i := range w {
		if i < n/2 {
			w[i] = 2
		} else {
			w[i] = 0.5
		}
	}
	s := NewScenario(Config{Fraction: 0.1, ProneWeights: w}, rng, n)
	var hi, lo int
	for i, p := range s.Prone() {
		if p {
			if i < n/2 {
				hi++
			} else {
				lo++
			}
		}
	}
	if hi < 3*lo {
		t.Errorf("weighted proneness: hi=%d lo=%d, want ≈4× ratio", hi, lo)
	}
}

func TestGoodNearZeroShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	s := NewScenario(Config{Fraction: 0, Good: GoodNearZero}, rng, 5000)
	var mean float64
	for _, r := range s.Rates() {
		mean += r
	}
	mean /= 5000
	// E[u³]·tl = tl/4 = 0.0005.
	if mean > 0.00075 || mean < 0.00035 {
		t.Errorf("near-zero good mean %g, want ≈0.0005", mean)
	}
}

func TestGilbertStationaryStartProperty(t *testing.T) {
	// Property: the first packet's drop probability matches the rate (the
	// chain starts in the stationary distribution).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		const rate = 0.3
		drops := 0
		const n = 3000
		for i := 0; i < n; i++ {
			p := NewProcess(Gilbert, rate, DefaultPStayBad, rng)
			if p.Drop(rng) {
				drops++
			}
		}
		got := float64(drops) / n
		return math.Abs(got-rate) < 0.06
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
