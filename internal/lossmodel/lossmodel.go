// Package lossmodel implements the link loss-rate assignment models (LLRD1
// and LLRD2 of Padmanabhan et al., used in Section 6 of the paper) and the
// per-packet loss processes (Gilbert bursts and Bernoulli drops) that realize
// those mean rates.
package lossmodel

import (
	"fmt"
	"math/rand/v2"
)

// RateModel selects how mean loss rates are drawn for good/congested links.
type RateModel int

const (
	// LLRD1 draws congested-link loss rates uniformly from [0.05, 0.2] and
	// good-link loss rates from [0, 0.002].
	LLRD1 RateModel = iota
	// LLRD2 draws congested-link loss rates from the wider range [0.002, 1].
	LLRD2
)

func (m RateModel) String() string {
	switch m {
	case LLRD1:
		return "LLRD1"
	case LLRD2:
		return "LLRD2"
	default:
		return fmt.Sprintf("RateModel(%d)", int(m))
	}
}

// ProcessKind selects the per-packet loss process on a link.
type ProcessKind int

const (
	// Gilbert is the two-state burst-loss process: a good state that drops
	// nothing and a bad state that drops everything, with P(stay bad) = 0.35
	// per packet (after Paxson's measurements, as in the paper).
	Gilbert ProcessKind = iota
	// Bernoulli drops each packet independently with the link's loss rate.
	Bernoulli
)

func (k ProcessKind) String() string {
	switch k {
	case Gilbert:
		return "gilbert"
	case Bernoulli:
		return "bernoulli"
	default:
		return fmt.Sprintf("ProcessKind(%d)", int(k))
	}
}

// Threshold is the loss-rate threshold tl separating good from congested
// links in both LLRD models.
const Threshold = 0.002

// DefaultPStayBad is the Gilbert P(remain in bad state) used in the paper's
// simulations.
const DefaultPStayBad = 0.35

// GoodRateShape selects the distribution of good-link loss rates within
// [0, Threshold].
type GoodRateShape int

const (
	// GoodNearZero (the default) draws u³·Threshold, concentrating mass
	// near zero: the paper builds on "the loss rates of non-congested links
	// are close to 0" with "virtually zero" first and second moments, and
	// its reported false-positive rates imply good links sit well clear of
	// the classification threshold.
	GoodNearZero GoodRateShape = iota
	// GoodUniform draws good rates uniformly from [0, Threshold] — the
	// literal LLRD reading; kept as an ablation (it parks half the good
	// links within one inference-error quantum of the threshold).
	GoodUniform
)

func (g GoodRateShape) String() string {
	if g == GoodNearZero {
		return "near-zero"
	}
	return "uniform"
}

// Config parameterizes a loss scenario.
type Config struct {
	Model    RateModel
	Process  ProcessKind
	Fraction float64       // p: fraction of links congested
	PStayBad float64       // Gilbert bad-state self-transition (default 0.35)
	Good     GoodRateShape // distribution of good-link rates

	// ResampleStatuses redraws which links are congested at every snapshot
	// instead of fixing the congested set for the whole scenario.
	ResampleStatuses bool
	// Episodic, when positive, makes congestion transient: the Fraction-
	// selected links are only *prone* to congestion, and each is actively
	// congested in a given snapshot with this probability. Episode lengths
	// are then geometric, matching the short congestion durations observed
	// in Section 7.2.2 (99% of congested links stay congested for a single
	// snapshot).
	Episodic float64
	// FreezeRates keeps each link's mean loss rate constant across
	// snapshots. By default congested links re-draw their level each
	// snapshot ("a congested link will experience different congestion
	// levels at different times", Section 3.2), which is what gives
	// congested links their high variance.
	FreezeRates bool
	// ProneWeights optionally skews which links are congestion-prone: the
	// per-link selection probability is Fraction·ProneWeights[i] (clamped
	// to 1). Used to make peering links likelier congestion points, as the
	// paper's Table 3 observes on PlanetLab.
	ProneWeights []float64
}

// Scenario holds the evolving ground truth of a simulation: which links are
// congested and what their current mean loss rates are. Call Advance once per
// snapshot.
type Scenario struct {
	cfg    Config
	rng    *rand.Rand
	n      int
	prone  []bool
	active []bool
	rates  []float64
}

// NewScenario creates a scenario over n links and draws the initial state.
func NewScenario(cfg Config, rng *rand.Rand, n int) *Scenario {
	if cfg.Fraction < 0 || cfg.Fraction > 1 {
		panic(fmt.Sprintf("lossmodel: fraction %g out of [0,1]", cfg.Fraction))
	}
	if cfg.PStayBad == 0 {
		cfg.PStayBad = DefaultPStayBad
	}
	if cfg.ProneWeights != nil && len(cfg.ProneWeights) != n {
		panic(fmt.Sprintf("lossmodel: %d prone weights for %d links", len(cfg.ProneWeights), n))
	}
	s := &Scenario{cfg: cfg, rng: rng, n: n, prone: make([]bool, n), active: make([]bool, n), rates: make([]float64, n)}
	for i := range s.prone {
		s.prone[i] = rng.Float64() < s.proneProb(i)
	}
	s.drawActive()
	s.drawRates()
	return s
}

// proneProb returns link i's probability of being congestion-prone.
func (s *Scenario) proneProb(i int) float64 {
	p := s.cfg.Fraction
	if s.cfg.ProneWeights != nil {
		p *= s.cfg.ProneWeights[i]
	}
	if p > 1 {
		p = 1
	}
	return p
}

// drawActive realizes which prone links are congested this snapshot.
func (s *Scenario) drawActive() {
	for i, p := range s.prone {
		if !p {
			s.active[i] = false
			continue
		}
		if s.cfg.Episodic > 0 {
			s.active[i] = s.rng.Float64() < s.cfg.Episodic
		} else {
			s.active[i] = true
		}
	}
}

func (s *Scenario) drawRates() {
	for i := range s.rates {
		s.rates[i] = s.drawRate(s.active[i])
	}
}

func (s *Scenario) drawRate(congested bool) float64 {
	u := s.rng.Float64()
	if !congested {
		if s.cfg.Good != GoodUniform {
			return u * u * u * Threshold
		}
		return u * Threshold // good: [0, 0.002] under both models
	}
	switch s.cfg.Model {
	case LLRD2:
		return Threshold + u*(1-Threshold) // [0.002, 1]
	default: // LLRD1
		return 0.05 + u*(0.2-0.05) // [0.05, 0.2]
	}
}

// Advance moves the scenario to the next snapshot: congested links re-draw
// their congestion level (unless FreezeRates), and the congested set itself
// is redrawn when ResampleStatuses is set.
func (s *Scenario) Advance() {
	if s.cfg.ResampleStatuses {
		for i := range s.prone {
			s.prone[i] = s.rng.Float64() < s.proneProb(i)
		}
		s.drawActive()
		s.drawRates()
		return
	}
	if s.cfg.Episodic > 0 {
		s.drawActive()
		s.drawRates()
		return
	}
	if s.cfg.FreezeRates {
		return
	}
	s.drawRates()
}

// Rates returns the current per-link mean loss rates. The slice is shared;
// copy before storing.
func (s *Scenario) Rates() []float64 { return s.rates }

// Congested returns the current congestion statuses. Shared slice.
func (s *Scenario) Congested() []bool { return s.active }

// Prone returns which links are congestion-prone (equal to Congested unless
// Episodic is set). Shared slice.
func (s *Scenario) Prone() []bool { return s.prone }

// NumLinks returns the number of links in the scenario.
func (s *Scenario) NumLinks() int { return s.n }

// Config returns the scenario configuration.
func (s *Scenario) Config() Config { return s.cfg }

// Process is a per-packet loss process: Drop reports whether the next packet
// crossing the link is lost.
type Process interface {
	Drop(rng *rand.Rand) bool
}

// NewProcess builds a loss process of the configured kind with the given
// mean loss rate. The process's long-run drop fraction equals rate exactly.
func NewProcess(kind ProcessKind, rate, pStayBad float64, rng *rand.Rand) Process {
	switch kind {
	case Bernoulli:
		return &bernoulliProc{rate: rate}
	default:
		return newGilbert(rate, pStayBad, rng)
	}
}

type bernoulliProc struct{ rate float64 }

func (b *bernoulliProc) Drop(rng *rand.Rand) bool { return rng.Float64() < b.rate }

// gilbertProc is the two-state Gilbert chain. In the good state no packet is
// dropped; in the bad state every packet is dropped. Transition
// probabilities are chosen so that the stationary probability of the bad
// state equals the target mean loss rate, keeping P(stay bad) at pStayBad
// when feasible (always feasible for rates ≤ 1/(1+pBadToGood), which covers
// LLRD1; for extreme LLRD2 rates the bad state's holding time grows
// instead).
type gilbertProc struct {
	pGoodToBad float64
	pBadToGood float64
	bad        bool
}

func newGilbert(rate, pStayBad float64, rng *rand.Rand) *gilbertProc {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("lossmodel: loss rate %g out of [0,1]", rate))
	}
	g := &gilbertProc{}
	pBadToGood := 1 - pStayBad
	switch {
	case rate >= 1:
		g.pGoodToBad, g.pBadToGood = 1, 0
	case rate == 0:
		g.pGoodToBad, g.pBadToGood = 0, 1
	default:
		// Stationary bad probability π = pGB / (pGB + pBG) = rate.
		pGB := pBadToGood * rate / (1 - rate)
		if pGB <= 1 {
			g.pGoodToBad, g.pBadToGood = pGB, pBadToGood
		} else {
			// Keep the mean exact by lengthening bad-state holding time.
			g.pGoodToBad, g.pBadToGood = 1, (1-rate)/rate
		}
	}
	// Start from the stationary distribution.
	g.bad = rng.Float64() < rate
	return g
}

func (g *gilbertProc) Drop(rng *rand.Rand) bool {
	if g.bad {
		if rng.Float64() < g.pBadToGood {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.pGoodToBad {
			g.bad = true
		}
	}
	return g.bad
}
