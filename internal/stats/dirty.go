package stats

import "math"

// Divisor returns the covariance divisor behind the snapshot (n−1 for the
// cumulative and windowed accumulators, the effective-weight analog for the
// decayed one). Two snapshots with bitwise-equal divisors and bitwise-equal
// co-moment blocks yield bitwise-equal covariances over those blocks — the
// invariant the dirty-set below certifies.
func (s *CovSnapshot) Divisor() float64 { return s.div }

// NumComoments returns the length of the packed upper-triangular co-moment
// slice: dim·(dim+1)/2. For a view over np paths this equals the packed pair
// count of the Phase-1 equation stream, and entry k of the triangle is
// exactly the co-moment behind packed pair k — the correspondence that lets
// the Phase-1 delta fold map co-moment blocks onto its pair shards.
func (s *CovSnapshot) NumComoments() int { return len(s.comom) }

// DirtyBlocks compares the packed co-moment triangle of s against an older
// snapshot prev in fixed-size blocks of blockSize entries (the last block may
// be shorter) and returns one flag per block: true where any entry differs
// bitwise, false where the whole block is bitwise-unchanged. A clean block
// certifies that every covariance read from it is bitwise-identical between
// the two snapshots, so downstream folds over that block can be reused
// verbatim.
//
// It returns nil when the snapshots are not comparable block-by-block: a
// different dimension, or a divisor that moved (a divisor change — the
// cumulative count growing, a decay weight rescaling — shifts every
// covariance at once, so the caller must treat the entire view as dirty).
// The comparison is bitwise (math.Float64bits), not numeric: −0 vs +0 is
// dirty, NaN vs the same NaN is clean — exactly the equivalence the
// bit-reproducibility contract needs.
func (s *CovSnapshot) DirtyBlocks(prev *CovSnapshot, blockSize int) []bool {
	if prev == nil || blockSize <= 0 {
		return nil
	}
	if s.dim != prev.dim || len(s.comom) != len(prev.comom) {
		return nil
	}
	if math.Float64bits(s.div) != math.Float64bits(prev.div) {
		return nil
	}
	n := len(s.comom)
	blocks := (n + blockSize - 1) / blockSize
	dirty := make([]bool, blocks)
	for b := 0; b < blocks; b++ {
		lo := b * blockSize
		hi := min(lo+blockSize, n)
		for k := lo; k < hi; k++ {
			if math.Float64bits(s.comom[k]) != math.Float64bits(prev.comom[k]) {
				dirty[b] = true
				break
			}
		}
	}
	return dirty
}

// CountDirty returns the number of true flags in a DirtyBlocks result, with
// nil (incomparable snapshots) counting as "all blocks dirty" out of total.
func CountDirty(dirty []bool, total int) int {
	if dirty == nil {
		return total
	}
	n := 0
	for _, d := range dirty {
		if d {
			n++
		}
	}
	return n
}
