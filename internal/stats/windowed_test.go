package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randVecs(seed uint64, n, dim int, scale float64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0xFEED))
	ys := make([][]float64, n)
	for t := range ys {
		y := make([]float64, dim)
		for i := range y {
			y[i] = scale * rng.NormFloat64()
		}
		ys[t] = y
	}
	return ys
}

// TestWindowedBelowCapacityMatchesCumulative: until the ring wraps, the
// windowed accumulator performs exactly the cumulative Welford update, so
// the two must agree bit for bit.
func TestWindowedBelowCapacityMatchesCumulative(t *testing.T) {
	const dim, n = 7, 12
	ys := randVecs(3, n, dim, 0.02)
	win := NewWindowedCovAccumulator(dim, n) // capacity == sample count: never wraps
	cum := NewCovAccumulator(dim)
	for _, y := range ys {
		win.Add(y)
		cum.Add(y)
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			if win.Cov(i, j) != cum.Cov(i, j) {
				t.Fatalf("Cov(%d,%d): windowed %g != cumulative %g", i, j, win.Cov(i, j), cum.Cov(i, j))
			}
		}
	}
}

// TestWindowedMatchesFresh: after wrapping, the windowed moments must match
// a fresh accumulator fed only the last `window` snapshots, up to the
// rounding error of the reverse-Welford removals.
func TestWindowedMatchesFresh(t *testing.T) {
	const dim, window, total = 9, 25, 140
	ys := randVecs(11, total, dim, 0.05)
	win := NewWindowedCovAccumulator(dim, window)
	for _, y := range ys {
		win.Add(y)
	}
	if win.Count() != window {
		t.Fatalf("Count = %d, want %d", win.Count(), window)
	}
	fresh := NewCovAccumulator(dim)
	for _, y := range ys[total-window:] {
		fresh.Add(y)
	}
	for i := 0; i < dim; i++ {
		if d := math.Abs(win.Mean()[i] - fresh.Mean()[i]); d > 1e-12 {
			t.Fatalf("mean[%d]: windowed %g, fresh %g", i, win.Mean()[i], fresh.Mean()[i])
		}
		for j := i; j < dim; j++ {
			a, b := win.Cov(i, j), fresh.Cov(i, j)
			if d := math.Abs(a - b); d > 1e-12+1e-9*math.Abs(b) {
				t.Fatalf("Cov(%d,%d): windowed %g, fresh %g (Δ=%g)", i, j, a, b, d)
			}
		}
	}
}

// TestWindowedTracksRegimeChange: a window over the recent past must reflect
// a variance regime change the cumulative accumulator still averages away.
func TestWindowedTracksRegimeChange(t *testing.T) {
	const dim, window = 1, 40
	rng := rand.New(rand.NewPCG(5, 6))
	win := NewWindowedCovAccumulator(dim, window)
	cum := NewCovAccumulator(dim)
	feed := func(n int, sigma float64) {
		for t := 0; t < n; t++ {
			y := []float64{sigma * rng.NormFloat64()}
			win.Add(y)
			cum.Add(y)
		}
	}
	feed(400, 1.0)  // old quiet-ish regime
	feed(100, 10.0) // new loud regime (covers the whole window)
	wantVar := 100.0
	if v := win.Cov(0, 0); math.Abs(v-wantVar) > 0.6*wantVar {
		t.Fatalf("windowed variance %g, want ≈ %g", v, wantVar)
	}
	if v := cum.Cov(0, 0); v > 0.5*wantVar {
		t.Fatalf("cumulative variance %g should lag far below %g", v, wantVar)
	}
}

// TestDecayLambdaOneMatchesCumulative: λ = 1 degenerates to the cumulative
// accumulator exactly (same arithmetic, same divisor), bit for bit.
func TestDecayLambdaOneMatchesCumulative(t *testing.T) {
	const dim, n = 6, 50
	ys := randVecs(21, n, dim, 0.03)
	dec := NewDecayCovAccumulator(dim, 1)
	cum := NewCovAccumulator(dim)
	for _, y := range ys {
		dec.Add(y)
		cum.Add(y)
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			if dec.Cov(i, j) != cum.Cov(i, j) {
				t.Fatalf("Cov(%d,%d): decayed %g != cumulative %g", i, j, dec.Cov(i, j), cum.Cov(i, j))
			}
		}
	}
}

// TestDecayTracksRegimeChange: with λ < 1 the effective memory is finite, so
// the decayed variance converges to a new regime.
func TestDecayTracksRegimeChange(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	dec := NewDecayCovAccumulator(1, 0.9) // effective memory ≈ 10 snapshots
	for t := 0; t < 300; t++ {
		dec.Add([]float64{rng.NormFloat64()})
	}
	for t := 0; t < 100; t++ {
		dec.Add([]float64{10 * rng.NormFloat64()})
	}
	if v := dec.Cov(0, 0); v < 30 {
		t.Fatalf("decayed variance %g has not tracked the 100-variance regime", v)
	}
	if ec := dec.EffectiveCount(); math.Abs(ec-10) > 0.5 {
		t.Fatalf("effective count %g, want ≈ 1/(1−λ) = 10", ec)
	}
}

// TestViewIsFrozen: a View must not observe later Adds, and must reproduce
// the covariances it was taken at exactly.
func TestViewIsFrozen(t *testing.T) {
	const dim = 5
	ys := randVecs(31, 20, dim, 0.04)
	for name, acc := range map[string]MomentAccumulator{
		"cumulative": NewCovAccumulator(dim),
		"windowed":   NewWindowedCovAccumulator(dim, 8),
		"decay":      NewDecayCovAccumulator(dim, 0.95),
	} {
		for _, y := range ys[:10] {
			acc.Add(y)
		}
		view := acc.View()
		want := make([]float64, dim*dim)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				want[i*dim+j] = acc.Cov(i, j)
			}
		}
		for _, y := range ys[10:] {
			acc.Add(y)
		}
		if view.Count() != 10 && name == "cumulative" {
			t.Fatalf("%s: view count %d, want 10", name, view.Count())
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				if view.Cov(i, j) != want[i*dim+j] {
					t.Fatalf("%s: view Cov(%d,%d) drifted after Add", name, i, j)
				}
			}
		}
	}
}
