// Package stats provides the second-order sample moments (Section 5.1,
// eq. 7), the evaluation metrics of Section 6 (detection rate, false
// positive rate, absolute error, error factor fδ of eq. 10), and small
// summary/CDF helpers shared by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CovView is the read-only covariance surface the Phase-1 estimators
// consume: the dimension, the number of samples behind the moments, and the
// pairwise covariances Σ̂ᵢⱼ. Every moment accumulator in this package
// implements it, as does the frozen CovSnapshot their View methods return.
type CovView interface {
	// Dim returns the vector dimension (the path count np).
	Dim() int
	// Count returns the number of snapshots the moments currently cover.
	Count() int
	// Cov returns the sample covariance between coordinates i and j. It may
	// panic when Count() < 2.
	Cov(i, j int) float64
}

// MomentAccumulator is the write side shared by the cumulative, windowed and
// decaying second-order accumulators: fold snapshots in with Add, hand the
// solvers a frozen CovView with View. Implementations are not safe for
// concurrent use; callers (e.g. lia.Engine) serialise externally.
type MomentAccumulator interface {
	CovView
	// Add folds one snapshot vector into the moments.
	Add(y []float64)
	// View returns an immutable snapshot of exactly the state a covariance
	// read needs (the packed co-moment triangle and its divisor) — much
	// cheaper than cloning the whole accumulator, and safe to read
	// concurrently with further Adds on the parent.
	View() *CovSnapshot
}

// CovSnapshot is a frozen CovView: the packed upper-triangular co-moment
// sums and the divisor that turns them into covariances. It shares no state
// with the accumulator it came from.
type CovSnapshot struct {
	dim   int
	n     int
	div   float64 // covariance divisor (n−1, or the effective weight analog)
	comom []float64
}

// Dim returns the vector dimension.
func (s *CovSnapshot) Dim() int { return s.dim }

// Count returns the number of snapshots behind the moments.
func (s *CovSnapshot) Count() int { return s.n }

// Cov returns the sample covariance between coordinates i ≤ j.
func (s *CovSnapshot) Cov(i, j int) float64 {
	if s.n < 2 {
		panic("stats: covariance needs at least 2 snapshots")
	}
	if j < i {
		i, j = j, i
	}
	return s.comom[triIndex(i, j, s.dim)] / s.div
}

// CovAccumulator builds the empirical covariance matrix Σ̂ of the per-path
// log transmission rates incrementally, one snapshot vector at a time, using
// a numerically stable streaming update (Welford generalized to
// cross-moments).
type CovAccumulator struct {
	n     int
	dim   int
	mean  []float64
	comom []float64 // packed upper triangle of co-moment sums
	delta []float64 // scratch for Add: pre-update deviations, reused per call
}

// NewCovAccumulator creates an accumulator for dim-dimensional vectors.
func NewCovAccumulator(dim int) *CovAccumulator {
	return &CovAccumulator{
		dim:   dim,
		mean:  make([]float64, dim),
		comom: make([]float64, dim*(dim+1)/2),
		delta: make([]float64, dim),
	}
}

func triIndex(i, j, dim int) int {
	// Upper triangle, row-major: index of (i,j) with i ≤ j.
	return i*dim - i*(i-1)/2 + (j - i)
}

// Add folds one snapshot vector into the moments.
func (c *CovAccumulator) Add(y []float64) {
	if len(y) != c.dim {
		panic(fmt.Sprintf("stats: Add vector of length %d to %d-dim accumulator", len(y), c.dim))
	}
	c.n++
	welfordFold(c.mean, c.comom, c.delta, y, 1/float64(c.n), c.dim)
}

// welfordFold applies one streaming Welford step with new-sample weight inv
// (1/count for uniform weights): delta before the mean update, delta2 after,
// comom += delta_i · delta2_j. It is the single fold shared by the
// cumulative, windowed and decaying accumulators, so their arithmetic — and
// therefore their documented bit-level agreement — cannot drift apart. The
// caller-owned delta scratch keeps the fold allocation-free; it sits on the
// Phase-1 ingest path, called once per snapshot.
func welfordFold(mean, comom, delta, y []float64, inv float64, dim int) {
	for i, v := range y {
		delta[i] = v - mean[i]
	}
	for i := range mean {
		mean[i] += delta[i] * inv
	}
	for i := 0; i < dim; i++ {
		di := delta[i]
		base := triIndex(i, i, dim)
		for j := i; j < dim; j++ {
			comom[base+(j-i)] += di * (y[j] - mean[j])
		}
	}
}

// Count returns the number of snapshots folded in.
func (c *CovAccumulator) Count() int { return c.n }

// Clone returns an independent copy of the accumulator. The concurrent
// inference engine clones the moments under its ingest lock and runs the
// (much longer) variance estimation on the copy, so snapshot folds never
// stall behind a Phase-1 solve.
func (c *CovAccumulator) Clone() *CovAccumulator {
	return &CovAccumulator{
		n:     c.n,
		dim:   c.dim,
		mean:  append([]float64(nil), c.mean...),
		comom: append([]float64(nil), c.comom...),
		delta: make([]float64, c.dim),
	}
}

// View returns a frozen snapshot of the covariance state: the co-moment
// triangle and divisor, without the mean or scratch buffers. The Phase-1
// right-hand-side fold reads nothing else, so this is what lia.Engine
// captures under its ingest lock instead of cloning the whole accumulator.
func (c *CovAccumulator) View() *CovSnapshot {
	return &CovSnapshot{
		dim:   c.dim,
		n:     c.n,
		div:   float64(c.n - 1),
		comom: append([]float64(nil), c.comom...),
	}
}

// Mean returns the per-coordinate sample means.
func (c *CovAccumulator) Mean() []float64 {
	out := make([]float64, c.dim)
	copy(out, c.mean)
	return out
}

// Cov returns the unbiased sample covariance Σ̂ᵢⱼ between coordinates i ≤ j.
// It requires at least two snapshots.
func (c *CovAccumulator) Cov(i, j int) float64 {
	if c.n < 2 {
		panic("stats: covariance needs at least 2 snapshots")
	}
	if j < i {
		i, j = j, i
	}
	return c.comom[triIndex(i, j, c.dim)] / float64(c.n-1)
}

// Dim returns the vector dimension.
func (c *CovAccumulator) Dim() int { return c.dim }

// Covariance computes the full upper-triangular covariance from a slice of
// snapshot vectors (rows). Convenience wrapper over CovAccumulator.
func Covariance(ys [][]float64) *CovAccumulator {
	if len(ys) == 0 {
		panic("stats: Covariance of empty sample")
	}
	acc := NewCovAccumulator(len(ys[0]))
	for _, y := range ys {
		acc.Add(y)
	}
	return acc
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// ErrorFactor computes fδ(q, q*) of eq. 10: the maximum ratio, upward or
// downward, by which the true and inferred loss rates differ, with both
// clamped below by δ. The paper's default is δ = 10⁻³.
func ErrorFactor(q, qStar, delta float64) float64 {
	qd := math.Max(delta, q)
	qs := math.Max(delta, qStar)
	return math.Max(qd/qs, qs/qd)
}

// DefaultDelta is the paper's default error-factor clamp δ.
const DefaultDelta = 1e-3

// Detection holds congested-link location quality: DR is the fraction of
// truly congested links identified; FPR is the fraction of identified links
// that are actually good (|X\F| / |X|, as defined in Section 6).
type Detection struct {
	DR  float64
	FPR float64
	// TruePositives, FalsePositives, FalseNegatives are the raw counts.
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Detect compares inferred congestion statuses against the truth.
// Links where both are false contribute to neither rate. When nothing is
// truly congested DR is 1; when nothing is identified FPR is 0.
func Detect(truth, inferred []bool) Detection {
	if len(truth) != len(inferred) {
		panic(fmt.Sprintf("stats: Detect length mismatch %d vs %d", len(truth), len(inferred)))
	}
	var d Detection
	for i := range truth {
		switch {
		case truth[i] && inferred[i]:
			d.TruePositives++
		case truth[i] && !inferred[i]:
			d.FalseNegatives++
		case !truth[i] && inferred[i]:
			d.FalsePositives++
		}
	}
	if tot := d.TruePositives + d.FalseNegatives; tot > 0 {
		d.DR = float64(d.TruePositives) / float64(tot)
	} else {
		d.DR = 1
	}
	if tot := d.TruePositives + d.FalsePositives; tot > 0 {
		d.FPR = float64(d.FalsePositives) / float64(tot)
	}
	return d
}

// Summary is the (min, median, max) triple reported in Table 2.
type Summary struct {
	Min, Median, Max float64
}

// Summarize computes min/median/max of xs. It panics on empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{Min: s[0], Median: Quantile(s, 0.5), Max: s[len(s)-1]}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted slice
// using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF returns the empirical distribution of xs evaluated at the given
// points: fraction of samples ≤ point.
func CDF(xs, at []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(at))
	for i, p := range at {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(p, math.Inf(1)))) / float64(len(s))
	}
	return out
}

// Pearson returns the sample correlation coefficient of two equal-length
// series (0 when either is constant).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
