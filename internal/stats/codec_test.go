package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func randVec(rng *rand.Rand, dim int) []float64 {
	y := make([]float64, dim)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	return y
}

// covEqualBits asserts every covariance entry of a and b has identical
// float64 bits — the durability invariant, stricter than numeric equality.
func covEqualBits(t *testing.T, a, b CovView) {
	t.Helper()
	if a.Dim() != b.Dim() || a.Count() != b.Count() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", a.Dim(), a.Count(), b.Dim(), b.Count())
	}
	for i := 0; i < a.Dim(); i++ {
		for j := i; j < a.Dim(); j++ {
			ga, gb := math.Float64bits(a.Cov(i, j)), math.Float64bits(b.Cov(i, j))
			if ga != gb {
				t.Fatalf("Cov(%d,%d) bits differ: %#x vs %#x", i, j, ga, gb)
			}
		}
	}
}

// TestCodecResumeBitwise is the core invariant: encoding an accumulator
// mid-stream, decoding it, and folding the remaining snapshots into the copy
// must land on exactly the same moments as the uninterrupted original — for
// all three accumulator kinds, across several split points including ones
// past the window wrap.
func TestCodecResumeBitwise(t *testing.T) {
	const dim, total = 7, 93
	makers := map[string]func() MomentAccumulator{
		"cumulative": func() MomentAccumulator { return NewCovAccumulator(dim) },
		"windowed":   func() MomentAccumulator { return NewWindowedCovAccumulator(dim, 16) },
		"decay":      func() MomentAccumulator { return NewDecayCovAccumulator(dim, 0.97) },
	}
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(42, 7))
			ys := make([][]float64, total)
			for i := range ys {
				ys[i] = randVec(rng, dim)
			}
			for _, split := range []int{0, 1, 5, 17, 40, total} {
				ref := mk()
				resumed := mk()
				for _, y := range ys[:split] {
					ref.Add(y)
					resumed.Add(y)
				}
				rec, err := AppendAccumulator(nil, resumed)
				if err != nil {
					t.Fatalf("encode at split %d: %v", split, err)
				}
				decoded, n, err := DecodeAccumulator(rec)
				if err != nil {
					t.Fatalf("decode at split %d: %v", split, err)
				}
				if n != len(rec) {
					t.Fatalf("decode consumed %d of %d bytes", n, len(rec))
				}
				for _, y := range ys[split:] {
					ref.Add(y)
					decoded.Add(y)
				}
				if ref.Count() >= 2 {
					covEqualBits(t, ref, decoded)
				}
				if split == total {
					continue
				}
				// Decoded accumulator must be independent of the record bytes.
				for i := range rec {
					rec[i] = 0xFF
				}
				if ref.Count() >= 2 {
					covEqualBits(t, ref, decoded)
				}
			}
		})
	}
}

// TestCodecRestoresKindSpecificState checks fields beyond the covariance
// surface: window geometry, decay weights, lifetime counts.
func TestCodecRestoresKindSpecificState(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	w := NewWindowedCovAccumulator(3, 4)
	for i := 0; i < 11; i++ {
		w.Add(randVec(rng, 3))
	}
	rec, err := AppendAccumulator(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeAccumulator(rec)
	if err != nil {
		t.Fatal(err)
	}
	gw := got.(*WindowedCovAccumulator)
	if gw.Window() != w.Window() || gw.Count() != w.Count() || gw.head != w.head {
		t.Fatalf("windowed state: got (%d,%d,%d) want (%d,%d,%d)",
			gw.Window(), gw.Count(), gw.head, w.Window(), w.Count(), w.head)
	}

	d := NewDecayCovAccumulator(3, 0.9)
	for i := 0; i < 9; i++ {
		d.Add(randVec(rng, 3))
	}
	rec, err = AppendAccumulator(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = DecodeAccumulator(rec)
	if err != nil {
		t.Fatal(err)
	}
	gd := got.(*DecayCovAccumulator)
	if gd.Lambda() != d.Lambda() || gd.Count() != d.Count() ||
		math.Float64bits(gd.w) != math.Float64bits(d.w) ||
		math.Float64bits(gd.w2) != math.Float64bits(d.w2) {
		t.Fatalf("decay state not restored exactly: %+v vs %+v", gd, d)
	}
}

// TestCodecConcatenatedRecords decodes two records back to back, as the
// sharded checkpoint format stores them.
func TestCodecConcatenatedRecords(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a, b := NewCovAccumulator(2), NewDecayCovAccumulator(3, 0.5)
	for i := 0; i < 5; i++ {
		a.Add(randVec(rng, 2))
		b.Add(randVec(rng, 3))
	}
	buf, err := AppendAccumulator(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	buf, err = AppendAccumulator(buf, b)
	if err != nil {
		t.Fatal(err)
	}
	first, n, err := DecodeAccumulator(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := first.(*CovAccumulator); !ok {
		t.Fatalf("first record decoded as %T", first)
	}
	second, m, err := DecodeAccumulator(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := second.(*DecayCovAccumulator); !ok {
		t.Fatalf("second record decoded as %T", second)
	}
	if n+m != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n+m, len(buf))
	}
	covEqualBits(t, a, first)
	covEqualBits(t, b, second)
}

// TestCodecRejectsCorruption flips, truncates, and garbles records and
// expects every damaged variant to fail with ErrCorruptRecord.
func TestCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	acc := NewWindowedCovAccumulator(4, 3)
	for i := 0; i < 7; i++ {
		acc.Add(randVec(rng, 4))
	}
	rec, err := AppendAccumulator(nil, acc)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, data []byte) {
		t.Helper()
		if _, _, err := DecodeAccumulator(data); !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("%s: got %v, want ErrCorruptRecord", name, err)
		}
	}
	check("empty", nil)
	check("truncated header", rec[:10])
	check("truncated payload", rec[:len(rec)-8])
	check("missing crc", rec[:len(rec)-2])
	for _, pos := range []int{0, 4, 5, 9, 20, len(rec) / 2, len(rec) - 1} {
		bad := append([]byte(nil), rec...)
		bad[pos] ^= 0x40
		check("bit flip", bad)
	}
}
