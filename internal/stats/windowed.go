package stats

import "fmt"

// WindowedCovAccumulator maintains the second-order moments of the most
// recent `window` snapshots: a ring buffer of the raw vectors plus an exact
// reverse-Welford update that cancels the oldest snapshot as each new one
// arrives. Long-running engines use it (via lia.WithWindow) so Phase 1
// tracks regime changes instead of averaging over all history.
//
// Add is O(dim²) — the same cost as the cumulative accumulator plus one
// O(dim²) removal once the window is full. Memory is window·dim floats for
// the ring plus the usual packed co-moment triangle.
type WindowedCovAccumulator struct {
	window int
	dim    int
	n      int // samples currently inside the window (≤ window)
	mean   []float64
	comom  []float64 // packed upper triangle of co-moment sums
	ring   []float64 // window·dim backing for the retained snapshots
	head   int       // ring slot the next Add overwrites (the oldest sample)
	delta  []float64 // scratch, reused per call
}

// NewWindowedCovAccumulator creates an accumulator over the last `window`
// snapshots of dim-dimensional vectors. window must be at least 2 — a
// single-snapshot window has no covariance.
func NewWindowedCovAccumulator(dim, window int) *WindowedCovAccumulator {
	if window < 2 {
		panic(fmt.Sprintf("stats: covariance window %d < 2", window))
	}
	return &WindowedCovAccumulator{
		window: window,
		dim:    dim,
		mean:   make([]float64, dim),
		comom:  make([]float64, dim*(dim+1)/2),
		ring:   make([]float64, window*dim),
		delta:  make([]float64, dim),
	}
}

// Window returns the configured window length.
func (c *WindowedCovAccumulator) Window() int { return c.window }

// Count returns the number of snapshots currently inside the window.
func (c *WindowedCovAccumulator) Count() int { return c.n }

// Dim returns the vector dimension.
func (c *WindowedCovAccumulator) Dim() int { return c.dim }

// Add folds one snapshot into the moments, evicting the oldest retained
// snapshot once the window is full. Below capacity the arithmetic is
// identical to CovAccumulator.Add, so a windowed accumulator that has not
// wrapped yet matches the cumulative one bit for bit.
func (c *WindowedCovAccumulator) Add(y []float64) {
	if len(y) != c.dim {
		panic(fmt.Sprintf("stats: Add vector of length %d to %d-dim accumulator", len(y), c.dim))
	}
	slot := c.ring[c.head*c.dim : (c.head+1)*c.dim]
	if c.n == c.window {
		c.remove(slot)
	}
	copy(slot, y)
	c.head = (c.head + 1) % c.window
	c.n++
	welfordFold(c.mean, c.comom, c.delta, y, 1/float64(c.n), c.dim)
}

// remove cancels a previously folded snapshot by running the Welford update
// backwards: with y among the current n samples,
//
//	mean_pre  = mean − (y − mean)/(n−1)
//	comom_pre = comom − (y − mean_pre) ⊗ (y − mean)
//
// which inverts Add exactly in real arithmetic (and to rounding error in
// floating point).
func (c *WindowedCovAccumulator) remove(y []float64) {
	c.n--
	if c.n == 0 {
		for i := range c.mean {
			c.mean[i] = 0
		}
		for i := range c.comom {
			c.comom[i] = 0
		}
		return
	}
	inv := 1 / float64(c.n)
	delta2 := c.delta // y − mean (post-add mean, i.e. the current one)
	for i, v := range y {
		delta2[i] = v - c.mean[i]
	}
	for i := range c.mean {
		c.mean[i] -= delta2[i] * inv
	}
	// c.mean is now the pre-add mean, so y − c.mean is the pre-add delta.
	for i := 0; i < c.dim; i++ {
		di := y[i] - c.mean[i]
		base := triIndex(i, i, c.dim)
		for j := i; j < c.dim; j++ {
			c.comom[base+(j-i)] -= di * delta2[j]
		}
	}
}

// Mean returns the per-coordinate means over the current window.
func (c *WindowedCovAccumulator) Mean() []float64 {
	out := make([]float64, c.dim)
	copy(out, c.mean)
	return out
}

// Cov returns the unbiased sample covariance between coordinates i ≤ j over
// the current window. It requires at least two retained snapshots.
func (c *WindowedCovAccumulator) Cov(i, j int) float64 {
	if c.n < 2 {
		panic("stats: covariance needs at least 2 snapshots")
	}
	if j < i {
		i, j = j, i
	}
	return c.comom[triIndex(i, j, c.dim)] / float64(c.n-1)
}

// View returns a frozen snapshot of the windowed covariance state.
func (c *WindowedCovAccumulator) View() *CovSnapshot {
	return &CovSnapshot{
		dim:   c.dim,
		n:     c.n,
		div:   float64(c.n - 1),
		comom: append([]float64(nil), c.comom...),
	}
}

// DecayCovAccumulator maintains exponentially-decayed second-order moments:
// before each new snapshot folds in, every existing sample's weight is
// multiplied by λ ∈ (0, 1], so the effective memory is ≈ 1/(1−λ) snapshots
// (λ = 1 degenerates to the cumulative accumulator, bit for bit). Unlike the
// windowed accumulator it retains no raw snapshots — memory is O(dim²)
// regardless of history length — at the cost of a soft (geometric) horizon
// instead of a sharp one.
type DecayCovAccumulator struct {
	dim    int
	lambda float64
	n      int     // raw snapshots folded in (lifetime)
	w      float64 // decayed weight sum Σ λ^age
	w2     float64 // decayed squared-weight sum Σ λ^2·age (for the unbiased divisor)
	mean   []float64
	comom  []float64
	delta  []float64
}

// NewDecayCovAccumulator creates a decaying accumulator with per-snapshot
// decay factor lambda ∈ (0, 1].
func NewDecayCovAccumulator(dim int, lambda float64) *DecayCovAccumulator {
	if !(lambda > 0 && lambda <= 1) {
		panic(fmt.Sprintf("stats: decay factor %g outside (0, 1]", lambda))
	}
	return &DecayCovAccumulator{
		dim:    dim,
		lambda: lambda,
		mean:   make([]float64, dim),
		comom:  make([]float64, dim*(dim+1)/2),
		delta:  make([]float64, dim),
	}
}

// Lambda returns the per-snapshot decay factor.
func (c *DecayCovAccumulator) Lambda() float64 { return c.lambda }

// Count returns the number of raw snapshots folded in (undecayed — used for
// the "at least two snapshots" gating, not as the effective sample size).
func (c *DecayCovAccumulator) Count() int { return c.n }

// EffectiveCount returns the decayed weight sum, the effective number of
// snapshots the moments currently represent (→ 1/(1−λ) in steady state).
func (c *DecayCovAccumulator) EffectiveCount() float64 { return c.w }

// Dim returns the vector dimension.
func (c *DecayCovAccumulator) Dim() int { return c.dim }

// Add folds one snapshot into the decayed moments (weighted Welford with a
// pre-scale of the existing mass by λ).
func (c *DecayCovAccumulator) Add(y []float64) {
	if len(y) != c.dim {
		panic(fmt.Sprintf("stats: Add vector of length %d to %d-dim accumulator", len(y), c.dim))
	}
	c.n++
	c.w = c.lambda*c.w + 1
	c.w2 = c.lambda*c.lambda*c.w2 + 1
	if c.lambda != 1 {
		for i := range c.comom {
			c.comom[i] *= c.lambda
		}
	}
	welfordFold(c.mean, c.comom, c.delta, y, 1/c.w, c.dim)
}

// div is the reliability-weighted unbiased divisor W − W₂/W, which reduces
// to the usual n−1 when λ = 1.
func (c *DecayCovAccumulator) div() float64 { return c.w - c.w2/c.w }

// Cov returns the decayed sample covariance between coordinates i ≤ j.
func (c *DecayCovAccumulator) Cov(i, j int) float64 {
	if c.n < 2 {
		panic("stats: covariance needs at least 2 snapshots")
	}
	if j < i {
		i, j = j, i
	}
	return c.comom[triIndex(i, j, c.dim)] / c.div()
}

// Mean returns the decayed per-coordinate means.
func (c *DecayCovAccumulator) Mean() []float64 {
	out := make([]float64, c.dim)
	copy(out, c.mean)
	return out
}

// View returns a frozen snapshot of the decayed covariance state.
func (c *DecayCovAccumulator) View() *CovSnapshot {
	return &CovSnapshot{
		dim:   c.dim,
		n:     c.n,
		div:   c.div(),
		comom: append([]float64(nil), c.comom...),
	}
}

var (
	_ MomentAccumulator = (*CovAccumulator)(nil)
	_ MomentAccumulator = (*WindowedCovAccumulator)(nil)
	_ MomentAccumulator = (*DecayCovAccumulator)(nil)
)
