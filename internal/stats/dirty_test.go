package stats

import (
	"math/rand/v2"
	"testing"
)

// fillVec returns a dim-vector whose first dim-tail coordinates carry fresh
// noise and whose last tail coordinates carry the fixed per-coordinate
// constants 0.01·(i+1) — a "quiet tail" snapshot.
func fillVec(rng *rand.Rand, dim, tail int, quietTail bool) []float64 {
	y := make([]float64, dim)
	for i := range y {
		if quietTail && i >= dim-tail {
			y[i] = 0.01 * float64(i+1)
		} else {
			y[i] = rng.NormFloat64()
		}
	}
	return y
}

func TestDirtyBlocksIncomparable(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	acc := NewCovAccumulator(10)
	for i := 0; i < 3; i++ {
		acc.Add(fillVec(rng, 10, 0, false))
	}
	v0 := acc.View()
	acc.Add(fillVec(rng, 10, 0, false))
	v1 := acc.View()
	// Cumulative divisor grew 2 → 3: every covariance rescaled, incomparable.
	if d := v1.DirtyBlocks(v0, 8); d != nil {
		t.Fatalf("cumulative views with different divisors: dirty = %v, want nil", d)
	}
	other := NewCovAccumulator(9)
	for i := 0; i < 4; i++ {
		other.Add(fillVec(rng, 9, 0, false))
	}
	if d := v1.DirtyBlocks(other.View(), 8); d != nil {
		t.Fatalf("dimension mismatch: dirty = %v, want nil", d)
	}
	if d := v1.DirtyBlocks(nil, 8); d != nil {
		t.Fatalf("nil prev: dirty = %v, want nil", d)
	}
	if d := v1.DirtyBlocks(v0, 0); d != nil {
		t.Fatalf("non-positive block size: dirty = %v, want nil", d)
	}
	if got := CountDirty(nil, 7); got != 7 {
		t.Fatalf("CountDirty(nil, 7) = %d, want 7 (incomparable counts all-dirty)", got)
	}
}

func TestDirtyBlocksIdenticalViews(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	acc := NewWindowedCovAccumulator(12, 5)
	for i := 0; i < 5; i++ {
		acc.Add(fillVec(rng, 12, 0, false))
	}
	v0, v1 := acc.View(), acc.View()
	dirty := v1.DirtyBlocks(v0, 10)
	want := (v1.NumComoments() + 9) / 10
	if len(dirty) != want {
		t.Fatalf("got %d blocks, want %d", len(dirty), want)
	}
	if n := CountDirty(dirty, want); n != 0 {
		t.Fatalf("identical views: %d dirty blocks, want 0", n)
	}
}

// TestDirtyBlocksQuietTailStaysClean is the profitability half of the dirty
// set: with a windowed accumulator at capacity (constant divisor) and a
// region of the vector that never changes, the co-moment blocks covering
// only that region stay bitwise clean across adds and evictions, while the
// active blocks go dirty.
func TestDirtyBlocksQuietTailStaysClean(t *testing.T) {
	const dim, tail, window = 8, 4, 3
	rng := rand.New(rand.NewPCG(5, 6))
	acc := NewWindowedCovAccumulator(dim, window)
	// Every snapshot in the ring (and every one to come) carries the fixed
	// constants on the tail.
	for i := 0; i < window; i++ {
		acc.Add(fillVec(rng, dim, tail, true))
	}
	v0 := acc.View()
	acc.Add(fillVec(rng, dim, tail, true)) // evicts a quiet-tail snapshot
	v1 := acc.View()
	// Rows 5..7 of the packed triangle are pure tail×tail entries: indices
	// 30..35, i.e. exactly the last block of size 10 over the 36 entries.
	dirty := v1.DirtyBlocks(v0, 10)
	if dirty == nil {
		t.Fatal("windowed views at capacity should be comparable (constant divisor)")
	}
	if last := dirty[len(dirty)-1]; last {
		t.Fatal("pure quiet-tail block went dirty despite bitwise-unchanged data")
	}
	if n := CountDirty(dirty, len(dirty)); n == 0 {
		t.Fatal("active head blocks should have gone dirty")
	}
}

// TestDirtyBlocksEvictionAloneDirties is the correctness half: a block must
// go dirty when the only change affecting it is a windowed *eviction* — the
// incoming snapshot carries the very same constants the block has seen for
// the whole window, but the evicted snapshot did not, and its reverse-
// Welford removal moves the tail co-moments. An ingest-driven dirty set
// (tracking which coordinates new data touched) would miss this; the
// bitwise comparison cannot.
func TestDirtyBlocksEvictionAloneDirties(t *testing.T) {
	const dim, tail, window = 8, 3, 3
	rng := rand.New(rand.NewPCG(7, 8))
	acc := NewWindowedCovAccumulator(dim, window)
	acc.Add(fillVec(rng, dim, 0, false)) // snapshot 0: tail varies
	for i := 1; i < window; i++ {
		acc.Add(fillVec(rng, dim, tail, true)) // tail at the constants
	}
	v0 := acc.View()
	// The new snapshot's tail is bitwise what snapshots 1..window-1 carried;
	// the only tail-relevant change this add makes is evicting snapshot 0.
	acc.Add(fillVec(rng, dim, tail, true))
	v1 := acc.View()
	dirty := v1.DirtyBlocks(v0, 10)
	if dirty == nil {
		t.Fatal("windowed views at capacity should be comparable (constant divisor)")
	}
	// Rows 5..7 are pure tail×tail (indices 30..35): the last block.
	if last := dirty[len(dirty)-1]; !last {
		t.Fatal("evicting the varying-tail snapshot must dirty the tail block")
	}
}
