package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary accumulator records back the durability layer (lia.WithDurability):
// a checkpoint embeds exactly one record per accumulator, and the invariant
// the codec guarantees is that encode → decode → continued Adds produces
// moments bitwise identical to an uninterrupted run. To that end every
// float64 round-trips through math.Float64bits (no text formatting, no
// re-derivation), and only durable state is persisted — the delta scratch
// buffers are recreated on decode.
//
// Record layout (all integers little-endian):
//
//	u32 magic "LIAM" | u8 version | u8 kind | u16 reserved
//	u32 dim | u32 payloadLen | payload | u32 crc32(IEEE, header+payload)
//
// Payloads by kind:
//
//	cumulative: u64 n, dim·f64 mean, tri·f64 comom
//	windowed:   u32 window, u32 n, u32 head, u32 reserved,
//	            dim·f64 mean, tri·f64 comom, window·dim·f64 ring
//	decay:      f64 lambda, u64 n, f64 w, f64 w2, dim·f64 mean, tri·f64 comom
const (
	codecMagic   uint32 = 0x4D41494C // "LIAM"
	codecVersion byte   = 1

	kindCumulative byte = 1
	kindWindowed   byte = 2
	kindDecay      byte = 3

	recHeaderLen = 16 // magic..payloadLen
)

// ErrCorruptRecord reports an accumulator record that failed structural or
// CRC validation. Decode errors wrap it so callers can classify corruption
// without string matching.
var ErrCorruptRecord = errors.New("stats: corrupt accumulator record")

// maxCodecDim bounds the dimension a decoder will allocate for, mirroring
// lia.ErrTopologyTooLarge's guard against hostile or garbage headers.
const maxCodecDim = 1 << 20

func appendFloats(buf []byte, xs []float64) []byte {
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

func readFloats(data []byte, dst []float64) []byte {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return data[8*len(dst):]
}

// AppendAccumulator appends one framed record for acc to buf and returns the
// extended slice. It supports exactly the three accumulator types this
// package exports; any other MomentAccumulator is an error.
func AppendAccumulator(buf []byte, acc MomentAccumulator) ([]byte, error) {
	start := len(buf)
	var kind byte
	var payload int
	tri := func(dim int) int { return dim * (dim + 1) / 2 }
	switch a := acc.(type) {
	case *CovAccumulator:
		kind, payload = kindCumulative, 8+8*(a.dim+tri(a.dim))
	case *WindowedCovAccumulator:
		kind, payload = kindWindowed, 16+8*(a.dim+tri(a.dim)+a.window*a.dim)
	case *DecayCovAccumulator:
		kind, payload = kindDecay, 32+8*(a.dim+tri(a.dim))
	default:
		return nil, fmt.Errorf("stats: cannot encode accumulator type %T", acc)
	}
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion, kind, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(acc.Dim()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	switch a := acc.(type) {
	case *CovAccumulator:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.n))
		buf = appendFloats(buf, a.mean)
		buf = appendFloats(buf, a.comom)
	case *WindowedCovAccumulator:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a.window))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a.n))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a.head))
		buf = binary.LittleEndian.AppendUint32(buf, 0)
		buf = appendFloats(buf, a.mean)
		buf = appendFloats(buf, a.comom)
		buf = appendFloats(buf, a.ring)
	case *DecayCovAccumulator:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.lambda))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.n))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.w))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.w2))
		buf = appendFloats(buf, a.mean)
		buf = appendFloats(buf, a.comom)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:])), nil
}

// DecodeAccumulator decodes one framed record from the front of data,
// returning the rebuilt accumulator and the number of bytes consumed. The
// returned accumulator is fully independent of data and ready for further
// Adds; all errors wrap ErrCorruptRecord.
func DecodeAccumulator(data []byte) (MomentAccumulator, int, error) {
	fail := func(format string, args ...any) (MomentAccumulator, int, error) {
		return nil, 0, fmt.Errorf("%w: %s", ErrCorruptRecord, fmt.Sprintf(format, args...))
	}
	if len(data) < recHeaderLen+4 {
		return fail("short record: %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != codecMagic {
		return fail("bad magic %#x", m)
	}
	if v := data[4]; v != codecVersion {
		return fail("unsupported version %d", v)
	}
	kind := data[5]
	dim := int(binary.LittleEndian.Uint32(data[8:]))
	payload := int(binary.LittleEndian.Uint32(data[12:]))
	if dim <= 0 || dim > maxCodecDim {
		return fail("dimension %d out of range", dim)
	}
	total := recHeaderLen + payload + 4
	if payload < 0 || len(data) < total {
		return fail("truncated payload: want %d bytes, have %d", total, len(data))
	}
	want := binary.LittleEndian.Uint32(data[recHeaderLen+payload:])
	if got := crc32.ChecksumIEEE(data[:recHeaderLen+payload]); got != want {
		return fail("crc mismatch: computed %#x, stored %#x", got, want)
	}
	body := data[recHeaderLen : recHeaderLen+payload]
	tri := dim * (dim + 1) / 2
	switch kind {
	case kindCumulative:
		if payload != 8+8*(dim+tri) {
			return fail("cumulative payload length %d for dim %d", payload, dim)
		}
		c := NewCovAccumulator(dim)
		c.n = int(binary.LittleEndian.Uint64(body))
		body = readFloats(body[8:], c.mean)
		readFloats(body, c.comom)
		return c, total, nil
	case kindWindowed:
		if payload < 16 {
			return fail("windowed payload length %d", payload)
		}
		window := int(binary.LittleEndian.Uint32(body))
		n := int(binary.LittleEndian.Uint32(body[4:]))
		head := int(binary.LittleEndian.Uint32(body[8:]))
		if window < 2 || window > maxCodecDim || n < 0 || n > window || head < 0 || head >= window {
			return fail("windowed state window=%d n=%d head=%d", window, n, head)
		}
		if payload != 16+8*(dim+tri+window*dim) {
			return fail("windowed payload length %d for dim %d window %d", payload, dim, window)
		}
		c := NewWindowedCovAccumulator(dim, window)
		c.n, c.head = n, head
		body = readFloats(body[16:], c.mean)
		body = readFloats(body, c.comom)
		readFloats(body, c.ring)
		return c, total, nil
	case kindDecay:
		if payload != 32+8*(dim+tri) {
			return fail("decay payload length %d for dim %d", payload, dim)
		}
		lambda := math.Float64frombits(binary.LittleEndian.Uint64(body))
		if !(lambda > 0 && lambda <= 1) {
			return fail("decay factor %g outside (0, 1]", lambda)
		}
		c := NewDecayCovAccumulator(dim, lambda)
		c.n = int(binary.LittleEndian.Uint64(body[8:]))
		c.w = math.Float64frombits(binary.LittleEndian.Uint64(body[16:]))
		c.w2 = math.Float64frombits(binary.LittleEndian.Uint64(body[24:]))
		body = readFloats(body[32:], c.mean)
		readFloats(body, c.comom)
		return c, total, nil
	default:
		return fail("unknown accumulator kind %d", kind)
	}
}
