package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCovAccumulatorMatchesDirect(t *testing.T) {
	// Streaming covariance must equal the textbook two-pass formula.
	rng := rand.New(rand.NewPCG(1, 2))
	const dim, n = 5, 200
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64() * float64(j+1)
		}
		data[i] = row
	}
	acc := Covariance(data)
	for a := 0; a < dim; a++ {
		for b := a; b < dim; b++ {
			var ma, mb float64
			for i := range data {
				ma += data[i][a]
				mb += data[i][b]
			}
			ma /= n
			mb /= n
			var s float64
			for i := range data {
				s += (data[i][a] - ma) * (data[i][b] - mb)
			}
			want := s / (n - 1)
			if got := acc.Cov(a, b); math.Abs(got-want) > 1e-10 {
				t.Fatalf("Cov(%d,%d) = %v, want %v", a, b, got, want)
			}
			if acc.Cov(b, a) != acc.Cov(a, b) {
				t.Fatal("covariance not symmetric in arguments")
			}
		}
	}
}

func TestCovAccumulatorGaussianRecovery(t *testing.T) {
	// Property: i.i.d. N(0, σ²) coordinates yield Cov ≈ diag(σ²).
	rng := rand.New(rand.NewPCG(3, 4))
	acc := NewCovAccumulator(2)
	for i := 0; i < 20000; i++ {
		acc.Add([]float64{2 * rng.NormFloat64(), 0.5 * rng.NormFloat64()})
	}
	if v := acc.Cov(0, 0); math.Abs(v-4) > 0.3 {
		t.Errorf("Var₀ = %v, want ≈4", v)
	}
	if v := acc.Cov(1, 1); math.Abs(v-0.25) > 0.05 {
		t.Errorf("Var₁ = %v, want ≈0.25", v)
	}
	if c := acc.Cov(0, 1); math.Abs(c) > 0.05 {
		t.Errorf("Cov = %v, want ≈0", c)
	}
}

func TestCovAccumulatorErrors(t *testing.T) {
	acc := NewCovAccumulator(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Cov with <2 samples should panic")
			}
		}()
		acc.Add([]float64{1, 2})
		acc.Cov(0, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add with wrong dimension should panic")
			}
		}()
		acc.Add([]float64{1})
	}()
}

func TestErrorFactor(t *testing.T) {
	cases := []struct {
		q, qs, want float64
	}{
		{0.1, 0.1, 1},
		{0.1, 0.2, 2},
		{0.2, 0.1, 2},
		{0, 0, 1},          // both clamp to δ
		{0, 0.01, 10},      // q clamps to δ=1e-3
		{0.0005, 0.001, 1}, // both clamp up to δ
	}
	for _, c := range cases {
		if got := ErrorFactor(c.q, c.qs, DefaultDelta); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ErrorFactor(%g,%g) = %g, want %g", c.q, c.qs, got, c.want)
		}
	}
}

func TestErrorFactorSymmetryProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		x := ErrorFactor(a, b, DefaultDelta)
		y := ErrorFactor(b, a, DefaultDelta)
		return x >= 1 && math.Abs(x-y) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetect(t *testing.T) {
	truth := []bool{true, true, false, false, true}
	inferred := []bool{true, false, true, false, true}
	d := Detect(truth, inferred)
	if d.TruePositives != 2 || d.FalseNegatives != 1 || d.FalsePositives != 1 {
		t.Fatalf("counts: %+v", d)
	}
	if math.Abs(d.DR-2.0/3) > 1e-12 {
		t.Errorf("DR = %v, want 2/3", d.DR)
	}
	if math.Abs(d.FPR-1.0/3) > 1e-12 {
		t.Errorf("FPR = %v, want 1/3 (|X\\F|/|X|)", d.FPR)
	}
}

func TestDetectEdgeCases(t *testing.T) {
	d := Detect([]bool{false, false}, []bool{false, false})
	if d.DR != 1 || d.FPR != 0 {
		t.Fatalf("empty case: %+v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Detect([]bool{true}, []bool{true, false})
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Min != 1 || s.Median != 2 || s.Max != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	s = Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("even-length median = %v, want 2.5", s.Median)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	if q := Quantile(xs, 0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 2 {
		t.Errorf("q.5 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 1 {
		t.Errorf("q.25 = %v", q)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.2, 0.4}
	got := CDF(xs, []float64{0, 0.1, 0.2, 0.3, 0.5})
	want := []float64{0, 0.25, 0.75, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	if r := Pearson(x, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want 32/7", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("edge cases wrong")
	}
}

func TestCovAccumulatorAddZeroAlloc(t *testing.T) {
	// Add sits on the Phase-1 snapshot ingest path: it must not allocate.
	acc := NewCovAccumulator(64)
	y := make([]float64, 64)
	for i := range y {
		y[i] = float64(i%7) - 3
	}
	if n := testing.AllocsPerRun(100, func() { acc.Add(y) }); n != 0 {
		t.Errorf("CovAccumulator.Add allocates %v times per run", n)
	}
}
