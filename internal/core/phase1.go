package core

import (
	"fmt"
	"sync"

	"lia/internal/linalg"
	"lia/internal/stats"
	"lia/internal/topology"
)

// Phase1 is a reusable Phase-1 solver bound to one routing matrix — the
// incremental-rebuild engine behind lia.Engine.
//
// Under the negative-covariance policies whose kept-equation set does not
// depend on the measured data (ClampNegativeCov and KeepNegativeCov — every
// equation survives, only its right-hand side is adjusted), the Gram matrix
// G = AᵀA of the normal equations is a pure function of the topology. Phase1
// therefore accumulates G and its (regularized) Cholesky factor exactly once
// per routing matrix, and every subsequent Estimate costs only the
// O(np²·s̄) right-hand-side fold plus two O(nc²) triangular solves — no Gram
// re-accumulation, no re-factorization. The right-hand side reuses the same
// shard-windowed reduction as the from-scratch build, so a warm Estimate is
// bit-identical to EstimateVariances with the same options.
//
// DropNegativeCov (whose row set depends on the data) and the dense-QR
// method transparently fall back to the full EstimateVariances path.
//
// Estimate is safe for concurrent use: the cached factor is built once under
// an internal lock and solved against with per-call workspaces.
type Phase1 struct {
	rm   *topology.RoutingMatrix
	opts VarianceOptions

	mu     sync.Mutex
	built  bool
	chol   *linalg.Cholesky
	lambda float64 // ridge the factorization needed (diagnostics)
	err    error   // sticky factorization failure (deterministic per topology)
}

// NewPhase1 creates a Phase-1 solver over the routing matrix with the given
// options. Construction is cheap; the factorization is built lazily on the
// first cacheable Estimate.
func NewPhase1(rm *topology.RoutingMatrix, opts VarianceOptions) *Phase1 {
	return &Phase1{rm: rm, opts: opts}
}

// Cacheable reports whether this solver's options admit the cached
// factorization: a data-independent kept-equation set (clamp or keep policy)
// solved by normal equations. Non-cacheable configurations still work — they
// run the full estimation on every call.
func (p *Phase1) Cacheable() bool {
	return p.opts.NegPolicy != DropNegativeCov &&
		p.opts.resolveMethod(p.rm) == VarianceNormalEquations
}

// Warm reports whether the factorization is already cached, i.e. whether the
// next Estimate pays only the RHS fold and the triangular solves.
func (p *Phase1) Warm() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.built && p.err == nil
}

// Ridge returns the regularization λ the cached factorization needed (0 for
// a cleanly positive-definite system; meaningful only once Warm).
func (p *Phase1) Ridge() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lambda
}

// Estimate solves Σ* = A·v for the per-link variances against the given
// covariance view, reusing the cached topology-only factorization when the
// options allow it. Results are bitwise identical to
// EstimateVariances(rm, cov, opts).
func (p *Phase1) Estimate(cov stats.CovView) ([]float64, error) {
	if cov.Count() < 2 {
		return nil, ErrTooFewSnapshots
	}
	if cov.Dim() != p.rm.NumPaths() {
		return nil, fmt.Errorf("core: covariance over %d paths, routing matrix has %d: %w",
			cov.Dim(), p.rm.NumPaths(), ErrDimensionMismatch)
	}
	if !p.Cacheable() {
		return EstimateVariances(p.rm, cov, p.opts)
	}
	if err := p.rm.PrecomputePairSupports(); err != nil {
		return nil, fmt.Errorf("core: phase-1 equations: %w", err)
	}
	ch, err := p.factor()
	if err != nil {
		return nil, err
	}
	nc := p.rm.NumLinks()
	rhs := make([]float64, nc)
	accumulateRHSInto(rhs, p.rm, cov, p.opts, p.opts.shardWorkers(p.rm.NumPairs()), nil)
	v := make([]float64, nc)
	ch.SolveWith(v, rhs, make([]float64, nc))
	return v, nil
}

// factor returns the cached Cholesky factor of the topology-only Gram
// matrix, building it on first use. The build is the one place Phase1 pays
// the cold price: the row-banded shared-matrix Gram accumulation followed by
// the O(nc³) factorization. Failures (an unidentifiable topology even after
// ridge regularization) are deterministic per topology and cached too.
func (p *Phase1) factor() (*linalg.Cholesky, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.built {
		return p.chol, p.err
	}
	nc := p.rm.NumLinks()
	g := linalg.NewDense(nc, nc)
	// nil kept bitmap: under clamp/keep every equation survives, so G needs
	// no covariance data at all.
	accumulateGramInto(g, p.rm, nil, p.opts.shardWorkers(p.rm.NumPairs()))
	ch, lambda, err := linalg.NewCholeskyRegularized(g)
	p.built = true
	if err != nil {
		p.err = fmt.Errorf("core: normal-equations variance solve: %w: %w", ErrUnidentifiable, err)
		return nil, p.err
	}
	p.chol, p.lambda = ch, lambda
	return ch, nil
}
