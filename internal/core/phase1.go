package core

import (
	"fmt"
	"sync"

	"lia/internal/linalg"
	"lia/internal/par"
	"lia/internal/stats"
	"lia/internal/topology"
)

// Phase1 is a reusable Phase-1 solver bound to one routing matrix — the
// incremental-rebuild engine behind lia.Engine.
//
// Under the negative-covariance policies whose kept-equation set does not
// depend on the measured data (ClampNegativeCov and KeepNegativeCov — every
// equation survives, only its right-hand side is adjusted), the Gram matrix
// G = AᵀA of the normal equations is a pure function of the topology. Phase1
// therefore accumulates G and its (regularized) Cholesky factor exactly once
// per routing matrix, and every subsequent Estimate costs only the
// O(np²·s̄) right-hand-side fold plus two O(nc²) triangular solves — no Gram
// re-accumulation, no re-factorization. The right-hand side reuses the same
// shard-windowed reduction as the from-scratch build, so a warm Estimate is
// bit-identical to EstimateVariances with the same options.
//
// DropNegativeCov (whose row set depends on the data) and the dense-QR
// method transparently fall back to the full EstimateVariances path.
//
// On top of the cached factorization, cacheable Estimates against frozen
// *stats.CovSnapshot views maintain the right-hand side incrementally: the
// per-pair-shard partial sums of the previous fold are kept alongside the
// view they came from, and a new view whose divisor is bitwise-unchanged
// recomputes only the shards whose co-moment block moved (packed pair index
// and packed co-moment index coincide, so pair shards map onto contiguous
// co-moment blocks). Clean partials are reused verbatim and all partials
// re-fold in shard order — the identical additions, in the identical order,
// as the cold fold, so the delta path is bitwise-equal by construction. A
// divisor that moved (cumulative counts growing, decay weights rescaling)
// degrades gracefully to recomputing every shard.
//
// Estimate is safe for concurrent use: the cached factor is built once under
// an internal lock, the delta state is serialized under another, and solves
// run against per-call workspaces.
type Phase1 struct {
	rm   *topology.RoutingMatrix
	opts VarianceOptions

	mu     sync.Mutex
	built  bool
	chol   *linalg.Cholesky
	lambda float64 // ridge the factorization needed (diagnostics)
	err    error   // sticky factorization failure (deterministic per topology)

	deltaMu sync.Mutex
	delta   rhsDelta
}

// rhsDelta is the incremental right-hand-side state: the frozen view the
// cached partials were folded from and the per-shard partial sums themselves
// (shards × nc floats, bounded by maxDeltaPartialFloats).
type rhsDelta struct {
	view     *stats.CovSnapshot
	partials []float64

	deltaFolds uint64 // folds that reused at least the dirty-tracking machinery
	fullFolds  uint64 // folds that recomputed every shard
	lastDirty  int    // shards recomputed by the most recent fold
	lastShards int    // total shards at the most recent fold
}

// maxDeltaPartialFloats caps the memory the delta cache may hold
// (shards × nc float64s, 64 MiB worth); systems past the cap fall back to
// the plain windowed fold, which stages only rhsWindowShards slots at once.
const maxDeltaPartialFloats = 8 << 20

// DeltaStats reports the incremental right-hand-side counters: how many
// warm folds ran the delta path vs recomputed from scratch, and the dirty
// shard count of the most recent fold.
type DeltaStats struct {
	// DeltaFolds counts RHS folds that compared against a cached view and
	// recomputed only the dirty shards.
	DeltaFolds uint64
	// FullFolds counts RHS folds that recomputed every shard: the first fold,
	// views whose divisor moved, non-snapshot views, or systems past the
	// partial-cache budget.
	FullFolds uint64
	// LastDirtyShards and LastShards are the recomputed and total pair-shard
	// counts of the most recent fold.
	LastDirtyShards int
	LastShards      int
}

// DeltaStats returns the incremental-fold counters.
func (p *Phase1) DeltaStats() DeltaStats {
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()
	return DeltaStats{
		DeltaFolds:      p.delta.deltaFolds,
		FullFolds:       p.delta.fullFolds,
		LastDirtyShards: p.delta.lastDirty,
		LastShards:      p.delta.lastShards,
	}
}

// NewPhase1 creates a Phase-1 solver over the routing matrix with the given
// options. Construction is cheap; the factorization is built lazily on the
// first cacheable Estimate.
func NewPhase1(rm *topology.RoutingMatrix, opts VarianceOptions) *Phase1 {
	return &Phase1{rm: rm, opts: opts}
}

// Cacheable reports whether this solver's options admit the cached
// factorization: a data-independent kept-equation set (clamp or keep policy)
// solved by normal equations. Non-cacheable configurations still work — they
// run the full estimation on every call.
func (p *Phase1) Cacheable() bool {
	return p.opts.NegPolicy != DropNegativeCov &&
		p.opts.resolveMethod(p.rm) == VarianceNormalEquations
}

// Warm reports whether the factorization is already cached, i.e. whether the
// next Estimate pays only the RHS fold and the triangular solves.
func (p *Phase1) Warm() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.built && p.err == nil
}

// Ridge returns the regularization λ the cached factorization needed (0 for
// a cleanly positive-definite system; meaningful only once Warm).
func (p *Phase1) Ridge() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lambda
}

// Estimate solves Σ* = A·v for the per-link variances against the given
// covariance view, reusing the cached topology-only factorization when the
// options allow it. Results are bitwise identical to
// EstimateVariances(rm, cov, opts).
func (p *Phase1) Estimate(cov stats.CovView) ([]float64, error) {
	if cov.Count() < 2 {
		return nil, ErrTooFewSnapshots
	}
	if cov.Dim() != p.rm.NumPaths() {
		return nil, fmt.Errorf("core: covariance over %d paths, routing matrix has %d: %w",
			cov.Dim(), p.rm.NumPaths(), ErrDimensionMismatch)
	}
	if !p.Cacheable() {
		return EstimateVariances(p.rm, cov, p.opts)
	}
	if err := p.rm.PrecomputePairSupports(); err != nil {
		return nil, fmt.Errorf("core: phase-1 equations: %w", err)
	}
	ch, err := p.factor()
	if err != nil {
		return nil, err
	}
	nc := p.rm.NumLinks()
	rhs := make([]float64, nc)
	p.foldRHS(rhs, cov, p.opts.shardWorkers(p.rm.NumPairs()))
	v := make([]float64, nc)
	ch.SolveWith(v, rhs, make([]float64, nc))
	return v, nil
}

// foldRHS computes the right-hand sides AᵀΣ* into dst (length nc, zeroed),
// through the incremental per-shard partial cache when the view admits it.
// The fold is bitwise-identical to accumulateRHSInto either way: every shard
// partial comes from accumulateRHSShard (cached or recomputed — a shard's
// partial depends only on its own co-moment block and the divisor, both
// certified bitwise-unchanged for clean shards), and the partials fold into
// dst in shard index order, exactly the cold reduction order.
func (p *Phase1) foldRHS(dst []float64, cov stats.CovView, workers int) {
	npairs := p.rm.NumPairs()
	nc := len(dst)
	shards := (npairs + pairsPerShard - 1) / pairsPerShard
	snap, ok := cov.(*stats.CovSnapshot)
	if !ok || npairs == 0 || shards*nc > maxDeltaPartialFloats {
		// Live accumulators (mutable between calls) and over-budget systems
		// cannot cache partials; run the plain windowed fold.
		accumulateRHSInto(dst, p.rm, cov, p.opts, workers, nil)
		p.deltaMu.Lock()
		p.delta.fullFolds++
		p.delta.lastDirty, p.delta.lastShards = shards, shards
		p.deltaMu.Unlock()
		return
	}
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()
	d := &p.delta
	if len(d.partials) != shards*nc {
		d.partials = make([]float64, shards*nc)
		d.view = nil
	}
	// Packed co-moment index and packed pair index share one formula
	// (stats.triIndex == topology.PairIndexOf, both over np), so co-moment
	// blocks of pairsPerShard entries are exactly the pair shards of the
	// equation stream. A nil dirty set means the views are not comparable
	// (first fold, or the divisor moved): every shard recomputes.
	var dirty []bool
	if d.view != nil {
		dirty = snap.DirtyBlocks(d.view, pairsPerShard)
	}
	work := make([]int, 0, shards)
	for s := 0; s < shards; s++ {
		if dirty == nil || dirty[s] {
			work = append(work, s)
		}
	}
	if len(work) > 0 {
		w := min(workers, len(work))
		par.Do(w, len(work), func(_, i int) {
			s := work[i]
			accumulateRHSShard(d.partials[s*nc:(s+1)*nc], p.rm, snap, p.opts,
				s*pairsPerShard, min(s*pairsPerShard+pairsPerShard, npairs), nil)
		})
	}
	for s := 0; s < shards; s++ {
		for k, v := range d.partials[s*nc : (s+1)*nc] {
			dst[k] += v
		}
	}
	d.view = snap
	if dirty == nil {
		d.fullFolds++
	} else {
		d.deltaFolds++
	}
	d.lastDirty, d.lastShards = len(work), shards
}

// factor returns the cached Cholesky factor of the topology-only Gram
// matrix, building it on first use. The build is the one place Phase1 pays
// the cold price: the row-banded shared-matrix Gram accumulation followed by
// the O(nc³) factorization. Failures (an unidentifiable topology even after
// ridge regularization) are deterministic per topology and cached too.
func (p *Phase1) factor() (*linalg.Cholesky, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.built {
		return p.chol, p.err
	}
	nc := p.rm.NumLinks()
	g := linalg.NewDense(nc, nc)
	// nil kept bitmap: under clamp/keep every equation survives, so G needs
	// no covariance data at all.
	accumulateGramInto(g, p.rm, nil, p.opts.shardWorkers(p.rm.NumPairs()))
	ch, lambda, err := linalg.NewCholeskyRegularized(g)
	p.built = true
	if err != nil {
		p.err = fmt.Errorf("core: normal-equations variance solve: %w: %w", ErrUnidentifiable, err)
		return nil, p.err
	}
	p.chol, p.lambda = ch, lambda
	return ch, nil
}
