package core

import (
	"math/rand/v2"
	"testing"

	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// deltaTopology builds a routing matrix whose Phase-1 pair stream spans
// several shards (np(np+1)/2 well past pairsPerShard), so the dirty set has
// real block granularity to work with.
func deltaTopology(t *testing.T, seed uint64) *topology.RoutingMatrix {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	net := topogen.Tree(rng, 200, 4)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	if rm.NumPairs() <= 2*pairsPerShard {
		t.Fatalf("topology too small for shard-granular dirty tracking: %d pairs", rm.NumPairs())
	}
	return rm
}

// tailVec returns an np-vector with noisy head coordinates and — when quiet
// — the last `tail` coordinates pinned to fixed per-path constants.
func tailVec(rng *rand.Rand, np, tail int, quiet bool) []float64 {
	y := make([]float64, np)
	for i := range y {
		if quiet && i >= np-tail {
			y[i] = 0.01 * float64(i+1)
		} else {
			y[i] = rng.NormFloat64()
		}
	}
	return y
}

// TestPhase1DeltaFoldBitwiseWindowed drives the steady-state scenario the
// delta fold exists for: a windowed accumulator at capacity (bitwise-stable
// divisor) over a topology where two thirds of the paths are quiet. Every
// warm Estimate must run the delta path — recomputing strictly fewer shards
// than the total — and stay bitwise-identical to the from-scratch
// EstimateVariances, across worker counts.
func TestPhase1DeltaFoldBitwiseWindowed(t *testing.T) {
	rm := deltaTopology(t, 21)
	np := rm.NumPaths()
	tail := 2 * np / 3
	const window = 24
	for _, workers := range []int{0, 1, 3} {
		rng := rand.New(rand.NewPCG(99, uint64(workers)))
		acc := stats.NewWindowedCovAccumulator(np, window)
		for i := 0; i < window; i++ {
			acc.Add(tailVec(rng, np, tail, true))
		}
		opts := VarianceOptions{Method: VarianceNormalEquations, Workers: workers}
		p1 := NewPhase1(rm, opts)
		for epoch := 0; epoch < 4; epoch++ {
			view := acc.View()
			want, err := EstimateVariances(rm, view, opts)
			if err != nil {
				t.Fatalf("w%d epoch %d: EstimateVariances: %v", workers, epoch, err)
			}
			got, err := p1.Estimate(view)
			if err != nil {
				t.Fatalf("w%d epoch %d: Phase1: %v", workers, epoch, err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("w%d epoch %d link %d: delta %g != cold %g (not bitwise identical)",
						workers, epoch, k, got[k], want[k])
				}
			}
			ds := p1.DeltaStats()
			if epoch == 0 {
				if ds.FullFolds != 1 || ds.DeltaFolds != 0 {
					t.Fatalf("w%d priming fold: stats %+v, want exactly one full fold", workers, ds)
				}
			} else {
				if ds.DeltaFolds != uint64(epoch) {
					t.Fatalf("w%d epoch %d: %d delta folds, want %d", workers, epoch, ds.DeltaFolds, epoch)
				}
				if ds.LastDirtyShards >= ds.LastShards {
					t.Fatalf("w%d epoch %d: %d of %d shards dirty — quiet tail saved nothing",
						workers, epoch, ds.LastDirtyShards, ds.LastShards)
				}
				if ds.LastDirtyShards < 1 {
					t.Fatalf("w%d epoch %d: zero dirty shards after new data", workers, epoch)
				}
			}
			acc.Add(tailVec(rng, np, tail, true))
		}
	}
}

// TestPhase1DeltaEvictionDirtiesShard covers the remove-only edge case: the
// incoming snapshot carries bitwise the same quiet-tail constants the ring
// has held all along, so the only tail-relevant change in the epoch is the
// windowed *eviction* of the one old snapshot whose tail varied. The
// reverse-Welford removal moves the tail co-moments, the dirty set must
// catch it, and the delta estimate must still match the cold fold bitwise.
func TestPhase1DeltaEvictionDirtiesShard(t *testing.T) {
	rm := deltaTopology(t, 23)
	np := rm.NumPaths()
	tail := 2 * np / 3
	const window = 16
	rng := rand.New(rand.NewPCG(101, 7))
	acc := stats.NewWindowedCovAccumulator(np, window)
	acc.Add(tailVec(rng, np, 0, false)) // snapshot 0: tail varies
	for i := 1; i < window; i++ {
		acc.Add(tailVec(rng, np, tail, true))
	}
	opts := VarianceOptions{Method: VarianceNormalEquations}
	p1 := NewPhase1(rm, opts)
	v0 := acc.View()
	if _, err := p1.Estimate(v0); err != nil {
		t.Fatal(err)
	}
	// This add evicts snapshot 0; its tail payload is unchanged data.
	acc.Add(tailVec(rng, np, tail, true))
	v1 := acc.View()
	dirty := v1.DirtyBlocks(v0, pairsPerShard)
	if dirty == nil {
		t.Fatal("windowed views at capacity should be comparable")
	}
	// The last shard covers pure tail×tail pairs; only the eviction touched
	// them.
	if !dirty[len(dirty)-1] {
		t.Fatal("evicting the varying-tail snapshot must dirty the tail shard")
	}
	want, err := EstimateVariances(rm, v1, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p1.Estimate(v1)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("link %d: delta %g != cold %g after eviction-dirtied shard", k, got[k], want[k])
		}
	}
	if ds := p1.DeltaStats(); ds.DeltaFolds != 1 {
		t.Fatalf("stats %+v, want one delta fold", ds)
	}
}

// TestPhase1DeltaDecayDegradesToFullFold: λ<1 rescales every co-moment and
// moves the divisor on each add, so no two views are block-comparable — the
// delta machinery must degrade to recomputing every shard, every time,
// while staying bitwise-identical to the cold fold.
func TestPhase1DeltaDecayDegradesToFullFold(t *testing.T) {
	rm := deltaTopology(t, 29)
	np := rm.NumPaths()
	rng := rand.New(rand.NewPCG(103, 9))
	acc := stats.NewDecayCovAccumulator(np, 0.9)
	for i := 0; i < 30; i++ {
		acc.Add(tailVec(rng, np, 2*np/3, true))
	}
	opts := VarianceOptions{Method: VarianceNormalEquations}
	p1 := NewPhase1(rm, opts)
	for epoch := 0; epoch < 3; epoch++ {
		view := acc.View()
		want, err := EstimateVariances(rm, view, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p1.Estimate(view)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("epoch %d link %d: %g != %g under decay", epoch, k, got[k], want[k])
			}
		}
		ds := p1.DeltaStats()
		if ds.DeltaFolds != 0 {
			t.Fatalf("epoch %d: %d delta folds under λ<1, want 0 (divisor moves every add)", epoch, ds.DeltaFolds)
		}
		if ds.FullFolds != uint64(epoch+1) {
			t.Fatalf("epoch %d: %d full folds, want %d", epoch, ds.FullFolds, epoch+1)
		}
		if ds.LastDirtyShards != ds.LastShards {
			t.Fatalf("epoch %d: %d of %d shards recomputed, want all", epoch, ds.LastDirtyShards, ds.LastShards)
		}
		acc.Add(tailVec(rng, np, 2*np/3, true))
	}
}
