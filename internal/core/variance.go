package core

import (
	"errors"
	"fmt"

	"lia/internal/linalg"
	"lia/internal/stats"
	"lia/internal/topology"
)

// VarianceMethod selects how the moment system Σ* = A·v is solved.
type VarianceMethod int

const (
	// VarianceAuto picks DenseQR for small systems and NormalEquations once
	// the explicit A would be large.
	VarianceAuto VarianceMethod = iota
	// VarianceDenseQR materializes A (non-zero rows only) and solves the
	// least-squares problem with a Householder QR — the paper's reference
	// method.
	VarianceDenseQR
	// VarianceNormalEquations streams the equations into AᵀA and AᵀΣ* and
	// solves by Cholesky; never materializes A.
	VarianceNormalEquations
)

func (m VarianceMethod) String() string {
	switch m {
	case VarianceDenseQR:
		return "dense-qr"
	case VarianceNormalEquations:
		return "normal-equations"
	default:
		return "auto"
	}
}

// NegativeCovPolicy chooses what to do with covariance equations whose
// measured value Σ̂ii′ is negative — a pure sampling artifact under the link
// independence assumption S.2, since true path covariances are sums of link
// variances.
type NegativeCovPolicy int

const (
	// ClampNegativeCov keeps the equation but clamps its right-hand side to
	// zero. This is the default: unlike dropping, it preserves the full
	// column rank guaranteed by Theorem 1 (dropping the only pair equation
	// of two sibling leaf paths leaves their leaf links and shared parent
	// mutually unidentifiable) while still encoding that the shared
	// segment's variance is ≈ 0.
	ClampNegativeCov NegativeCovPolicy = iota
	// DropNegativeCov removes the equation entirely — the paper's rule
	// ("we ignore equations with Σ̂ii′ < 0"). Survives in practice thanks to
	// redundant equations, but can lose identifiability on sparse pair sets;
	// the estimator then falls back to a minimum-norm solution.
	DropNegativeCov
	// KeepNegativeCov uses the raw negative value.
	KeepNegativeCov
)

func (p NegativeCovPolicy) String() string {
	switch p {
	case DropNegativeCov:
		return "drop"
	case KeepNegativeCov:
		return "keep"
	default:
		return "clamp"
	}
}

// VarianceOptions tunes Phase 1.
type VarianceOptions struct {
	Method VarianceMethod
	// NegPolicy selects the treatment of negative measured covariances
	// (default ClampNegativeCov).
	NegPolicy NegativeCovPolicy
	// DenseBudget caps the approximate flop count (rows × nc²) the dense QR
	// path may incur before Auto switches to normal equations
	// (default 2e8, ≈ a few hundred ms).
	DenseBudget int
}

// adjust applies the negative-covariance policy to one measured covariance,
// returning the value to use and whether the equation should be kept.
func (o VarianceOptions) adjust(sigma float64) (float64, bool) {
	if sigma >= 0 {
		return sigma, true
	}
	switch o.NegPolicy {
	case DropNegativeCov:
		return 0, false
	case KeepNegativeCov:
		return sigma, true
	default:
		return 0, true
	}
}

func (o VarianceOptions) budget() int {
	if o.DenseBudget <= 0 {
		return 200_000_000
	}
	return o.DenseBudget
}

// ErrTooFewSnapshots is returned when variance estimation is attempted with
// fewer than two snapshots.
var ErrTooFewSnapshots = errors.New("core: need at least 2 snapshots to estimate covariances")

// EstimateVariances solves Σ* = A·v for the per-link variances from the
// accumulated path covariance moments. The returned slice has one entry per
// virtual link of rm. Entries may come out slightly negative under sampling
// noise; callers that need true variances should clamp at zero, while the
// Phase-2 ordering uses the raw values.
func EstimateVariances(rm *topology.RoutingMatrix, cov *stats.CovAccumulator, opts VarianceOptions) ([]float64, error) {
	if cov.Count() < 2 {
		return nil, ErrTooFewSnapshots
	}
	if cov.Dim() != rm.NumPaths() {
		return nil, fmt.Errorf("core: covariance over %d paths, routing matrix has %d", cov.Dim(), rm.NumPaths())
	}
	method := opts.Method
	if method == VarianceAuto {
		np, nc := rm.NumPaths(), rm.NumLinks()
		rows := np * (np + 1) / 2
		if rows*nc*nc <= opts.budget() {
			method = VarianceDenseQR
		} else {
			method = VarianceNormalEquations
		}
	}
	switch method {
	case VarianceDenseQR:
		return estimateDense(rm, cov, opts)
	default:
		return estimateNormal(rm, cov, opts)
	}
}

func estimateDense(rm *topology.RoutingMatrix, cov *stats.CovAccumulator, opts VarianceOptions) ([]float64, error) {
	nc := rm.NumLinks()
	var rows [][]int
	var rhs []float64
	VisitPairs(rm, func(i, j int, support []int) {
		if len(support) == 0 {
			return
		}
		sigma, keep := opts.adjust(cov.Cov(i, j))
		if !keep {
			return
		}
		rows = append(rows, append([]int(nil), support...))
		rhs = append(rhs, sigma)
	})
	if len(rows) < nc {
		return nil, fmt.Errorf("core: only %d usable covariance equations for %d links: %w",
			len(rows), nc, linalg.ErrRankDeficient)
	}
	a := linalg.NewDense(len(rows), nc)
	for r, support := range rows {
		for _, k := range support {
			a.Set(r, k, 1)
		}
	}
	v, err := linalg.SolveLeastSquares(a, rhs)
	if errors.Is(err, linalg.ErrRankDeficient) {
		// Dropped equations (DropNegativeCov) can cost full column rank;
		// fall back to the minimum-norm basic solution, which resolves only
		// the identifiable directions and zeroes the rest.
		return linalg.NewPivotedQR(a).SolveMinNorm(rhs), nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: dense variance solve: %w", err)
	}
	return v, nil
}

func estimateNormal(rm *topology.RoutingMatrix, cov *stats.CovAccumulator, opts VarianceOptions) ([]float64, error) {
	gr := NewGram(rm.NumLinks())
	VisitPairs(rm, func(i, j int, support []int) {
		if len(support) == 0 {
			return
		}
		sigma, keep := opts.adjust(cov.Cov(i, j))
		if !keep {
			return
		}
		gr.AddEquation(support, sigma)
	})
	v, err := gr.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: normal-equations variance solve: %w", err)
	}
	return v, nil
}
