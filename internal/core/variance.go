package core

import (
	"errors"
	"fmt"
	"runtime"

	"lia/internal/linalg"
	"lia/internal/par"
	"lia/internal/stats"
	"lia/internal/topology"
)

// VarianceMethod selects how the moment system Σ* = A·v is solved.
type VarianceMethod int

const (
	// VarianceAuto picks DenseQR for small systems and NormalEquations once
	// the explicit A would be large.
	VarianceAuto VarianceMethod = iota
	// VarianceDenseQR materializes A (non-zero rows only) and solves the
	// least-squares problem with a Householder QR — the paper's reference
	// method.
	VarianceDenseQR
	// VarianceNormalEquations streams the equations into AᵀA and AᵀΣ* and
	// solves by Cholesky; never materializes A.
	VarianceNormalEquations
)

func (m VarianceMethod) String() string {
	switch m {
	case VarianceDenseQR:
		return "dense-qr"
	case VarianceNormalEquations:
		return "normal-equations"
	default:
		return "auto"
	}
}

// NegativeCovPolicy chooses what to do with covariance equations whose
// measured value Σ̂ii′ is negative — a pure sampling artifact under the link
// independence assumption S.2, since true path covariances are sums of link
// variances.
type NegativeCovPolicy int

const (
	// ClampNegativeCov keeps the equation but clamps its right-hand side to
	// zero. This is the default: unlike dropping, it preserves the full
	// column rank guaranteed by Theorem 1 (dropping the only pair equation
	// of two sibling leaf paths leaves their leaf links and shared parent
	// mutually unidentifiable) while still encoding that the shared
	// segment's variance is ≈ 0.
	ClampNegativeCov NegativeCovPolicy = iota
	// DropNegativeCov removes the equation entirely — the paper's rule
	// ("we ignore equations with Σ̂ii′ < 0"). Survives in practice thanks to
	// redundant equations, but can lose identifiability on sparse pair sets;
	// the estimator then falls back to a minimum-norm solution.
	DropNegativeCov
	// KeepNegativeCov uses the raw negative value.
	KeepNegativeCov
)

func (p NegativeCovPolicy) String() string {
	switch p {
	case DropNegativeCov:
		return "drop"
	case KeepNegativeCov:
		return "keep"
	default:
		return "clamp"
	}
}

// VarianceOptions tunes Phase 1.
type VarianceOptions struct {
	Method VarianceMethod
	// NegPolicy selects the treatment of negative measured covariances
	// (default ClampNegativeCov).
	NegPolicy NegativeCovPolicy
	// DenseBudget caps the approximate flop count (rows × nc²) the dense QR
	// path may incur before Auto switches to normal equations
	// (default 2e8, ≈ a few hundred ms).
	DenseBudget int
	// Workers bounds the goroutines used by the sharded Phase-1 accumulation
	// over the O(np²) equation stream. 0 sizes the pool to GOMAXPROCS (with
	// an inline fallback below a work threshold); values ≤ 1 walk the shards
	// inline without goroutines; any value > 1 engages the pool regardless
	// of the threshold, though the pool is always capped at the shard count
	// (a single-shard system runs inline no matter what). Every setting
	// produces bit-identical results — the shard structure, not the worker
	// count, fixes the reduction order. One exception to the serial
	// contract: the first Phase-1 pass on a routing matrix triggers the
	// lazy pair-support index build in topology, which always fans out over
	// GOMAXPROCS (its layout, and thus every result, is
	// schedule-independent).
	Workers int
}

// adjust applies the negative-covariance policy to one measured covariance,
// returning the value to use and whether the equation should be kept.
func (o VarianceOptions) adjust(sigma float64) (float64, bool) {
	if sigma >= 0 {
		return sigma, true
	}
	switch o.NegPolicy {
	case DropNegativeCov:
		return 0, false
	case KeepNegativeCov:
		return sigma, true
	default:
		return 0, true
	}
}

func (o VarianceOptions) budget() int {
	if o.DenseBudget <= 0 {
		return 200_000_000
	}
	return o.DenseBudget
}

// EstimateVariances solves Σ* = A·v for the per-link variances from the
// accumulated path covariance moments. The returned slice has one entry per
// virtual link of rm. Entries may come out slightly negative under sampling
// noise; callers that need true variances should clamp at zero, while the
// Phase-2 ordering uses the raw values.
func EstimateVariances(rm *topology.RoutingMatrix, cov *stats.CovAccumulator, opts VarianceOptions) ([]float64, error) {
	if cov.Count() < 2 {
		return nil, ErrTooFewSnapshots
	}
	if cov.Dim() != rm.NumPaths() {
		return nil, fmt.Errorf("core: covariance over %d paths, routing matrix has %d: %w",
			cov.Dim(), rm.NumPaths(), ErrDimensionMismatch)
	}
	// Surface a pair-index capacity failure as an error before any
	// estimator walks the index (whose accessors panic instead).
	if err := rm.PrecomputePairSupports(); err != nil {
		return nil, fmt.Errorf("core: phase-1 equations: %w", err)
	}
	method := opts.Method
	if method == VarianceAuto {
		np, nc := rm.NumPaths(), rm.NumLinks()
		rows := np * (np + 1) / 2
		if rows*nc*nc <= opts.budget() {
			method = VarianceDenseQR
		} else {
			method = VarianceNormalEquations
		}
	}
	switch method {
	case VarianceDenseQR:
		return estimateDense(rm, cov, opts)
	default:
		return estimateNormal(rm, cov, opts)
	}
}

// pairsPerShard fixes the shard granularity of the parallel Phase-1 passes.
// Shard boundaries depend only on the pair count — never on the worker count
// — so the floating-point reduction order, and therefore the result, is
// bit-identical across GOMAXPROCS settings and repeated runs.
const pairsPerShard = 1024

// minParallelPairs is the work threshold below which auto-sized runs
// (Workers == 0) stay serial: goroutine startup dominates tiny systems.
const minParallelPairs = 4 * pairsPerShard

// rhsWindowShards is how many shards stage their right-hand sides at once
// before an in-order fold into the result; it bounds rhs staging memory at
// rhsWindowShards·nc floats independent of system size while leaving
// plenty of shards in flight for any sensible worker count.
const rhsWindowShards = 64

// shardWorkers decides the pool size for a stream of npairs equations:
// 1 means "run the shard loop inline, no goroutines". The shard structure —
// and therefore the result — is the same either way; the pool only changes
// who walks the shards.
func (o VarianceOptions) shardWorkers(npairs int) int {
	w := o.Workers
	if w != 0 {
		if w < 1 {
			w = 1 // explicit serial request (negative values included)
		}
	} else if w = runtime.GOMAXPROCS(0); npairs < minParallelPairs {
		w = 1
	}
	shards := (npairs + pairsPerShard - 1) / pairsPerShard
	if w > shards && shards > 0 {
		w = shards
	}
	return w
}

func estimateDense(rm *topology.RoutingMatrix, cov *stats.CovAccumulator, opts VarianceOptions) ([]float64, error) {
	nc := rm.NumLinks()
	rows, rhs := collectEquations(rm, cov, opts)
	if len(rows) < nc {
		return nil, fmt.Errorf("core: only %d usable covariance equations for %d links: %w",
			len(rows), nc, ErrUnidentifiable)
	}
	a := linalg.NewDense(len(rows), nc)
	for r, support := range rows {
		for _, k := range support {
			a.Set(r, int(k), 1)
		}
	}
	v, err := linalg.SolveLeastSquares(a, rhs)
	if errors.Is(err, linalg.ErrRankDeficient) {
		// Dropped equations (DropNegativeCov) can cost full column rank;
		// fall back to the minimum-norm basic solution, which resolves only
		// the identifiable directions and zeroes the rest.
		return linalg.NewPivotedQR(a).SolveMinNorm(rhs), nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: dense variance solve: %w", err)
	}
	return v, nil
}

// collectEquations materializes the usable augmented rows (support views into
// the cached pair index) and their adjusted right-hand sides, in canonical
// pair order. Above the work threshold the collection fans out over pair
// shards; shard results are concatenated in shard order, so the row order is
// identical to the serial walk.
func collectEquations(rm *topology.RoutingMatrix, cov *stats.CovAccumulator, opts VarianceOptions) ([][]int32, []float64) {
	npairs := rm.NumPairs()
	if npairs == 0 {
		return nil, nil
	}
	workers := opts.shardWorkers(npairs)
	shards := (npairs + pairsPerShard - 1) / pairsPerShard
	shardRows := make([][][]int32, shards)
	shardRHS := make([][]float64, shards)
	doShard := func(s int) {
		lo := s * pairsPerShard
		hi := min(lo+pairsPerShard, npairs)
		var rows [][]int32
		var rhs []float64
		VisitPairsRange(rm, lo, hi, func(i, j int, support []int32) {
			if len(support) == 0 {
				return
			}
			sigma, keep := opts.adjust(cov.Cov(i, j))
			if !keep {
				return
			}
			rows = append(rows, support)
			rhs = append(rhs, sigma)
		})
		shardRows[s], shardRHS[s] = rows, rhs
	}
	par.Do(workers, shards, func(_, s int) { doShard(s) })
	total := 0
	for _, r := range shardRows {
		total += len(r)
	}
	rows := make([][]int32, 0, total)
	rhs := make([]float64, 0, total)
	for s := range shardRows {
		rows = append(rows, shardRows[s]...)
		rhs = append(rhs, shardRHS[s]...)
	}
	return rows, rhs
}

func estimateNormal(rm *topology.RoutingMatrix, cov *stats.CovAccumulator, opts VarianceOptions) ([]float64, error) {
	v, err := accumulateGram(rm, cov, opts).Solve()
	if err != nil {
		return nil, fmt.Errorf("core: normal-equations variance solve: %w: %w", ErrUnidentifiable, err)
	}
	return v, nil
}

// accumulateGram streams the augmented equations into the normal-equations
// system AᵀA·v = AᵀΣ*. Above the work threshold the pair stream is cut into
// fixed-size shards pulled by a worker pool. Two facts make the result
// bit-deterministic regardless of how shards land on workers:
//
//   - each worker folds the support outer-products into a private copy of G,
//     whose entries are small integer counts — integer sums are exact in
//     floating point, so the G merge is order-independent;
//   - the order-sensitive right-hand side is accumulated per shard and
//     reduced in shard index order, and shard boundaries depend only on the
//     pair count (pairsPerShard), never on the worker count.
func accumulateGram(rm *topology.RoutingMatrix, cov *stats.CovAccumulator, opts VarianceOptions) *Gram {
	nc := rm.NumLinks()
	npairs := rm.NumPairs()
	if npairs == 0 {
		return NewGram(nc)
	}
	workers := opts.shardWorkers(npairs)
	shards := (npairs + pairsPerShard - 1) / pairsPerShard
	gr := NewGram(nc)
	// Shards are processed in fixed-size windows: workers fan out within a
	// window, then the window's right-hand sides fold into the result in
	// shard order before the next window starts. This bounds the rhs
	// staging memory at window·nc floats no matter how many pairs the
	// system has, while keeping the global reduction order — and therefore
	// the result — exactly the shard index order.
	window := min(shards, rhsWindowShards)
	rhsBacking := make([]float64, window*nc)
	shardN := make([]int, shards)
	// doShard folds the equations of shard s into the caller's private G
	// and the shard's staging slot in the current window.
	doShard := func(g *linalg.Dense, s int, rhs []float64) {
		lo := s * pairsPerShard
		hi := min(lo+pairsPerShard, npairs)
		for i := range rhs {
			rhs[i] = 0 // slots are reused across windows
		}
		n := 0
		rm.VisitPairSupports(lo, hi, func(i, j int, support []int32) {
			if len(support) == 0 {
				return
			}
			sigma, keep := opts.adjust(cov.Cov(i, j))
			if !keep {
				return
			}
			n++
			for _, k := range support {
				rhs[k] += sigma
				rowk := g.Row(int(k))
				for _, l := range support {
					rowk[l]++
				}
			}
		})
		shardN[s] = n
	}
	// Workers beyond the first fold into lazily-allocated private G copies,
	// merged once at the end — exact regardless of order (integer counts).
	// Worker 0 writes straight into the result to save one nc×nc copy.
	// par.Do guarantees each worker index is owned by one goroutine.
	partG := make([]*linalg.Dense, workers)
	partG[0] = gr.g
	for base := 0; base < shards; base += window {
		count := min(window, shards-base)
		par.Do(workers, count, func(w, i int) {
			if partG[w] == nil {
				partG[w] = linalg.NewDense(nc, nc)
			}
			doShard(partG[w], base+i, rhsBacking[i*nc:(i+1)*nc])
		})
		for i := 0; i < count; i++ {
			for k, v := range rhsBacking[i*nc : (i+1)*nc] {
				gr.rhs[k] += v
			}
			gr.n += shardN[base+i]
		}
	}
	for _, g := range partG[1:] {
		if g != nil {
			gr.g.AddMat(g)
		}
	}
	return gr
}
