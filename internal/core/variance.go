package core

import (
	"errors"
	"fmt"
	"runtime"

	"lia/internal/linalg"
	"lia/internal/par"
	"lia/internal/stats"
	"lia/internal/topology"
)

// VarianceMethod selects how the moment system Σ* = A·v is solved.
type VarianceMethod int

const (
	// VarianceAuto picks DenseQR for small systems and NormalEquations once
	// the explicit A would be large.
	VarianceAuto VarianceMethod = iota
	// VarianceDenseQR materializes A (non-zero rows only) and solves the
	// least-squares problem with a Householder QR — the paper's reference
	// method.
	VarianceDenseQR
	// VarianceNormalEquations streams the equations into AᵀA and AᵀΣ* and
	// solves by Cholesky; never materializes A.
	VarianceNormalEquations
)

func (m VarianceMethod) String() string {
	switch m {
	case VarianceDenseQR:
		return "dense-qr"
	case VarianceNormalEquations:
		return "normal-equations"
	default:
		return "auto"
	}
}

// NegativeCovPolicy chooses what to do with covariance equations whose
// measured value Σ̂ii′ is negative — a pure sampling artifact under the link
// independence assumption S.2, since true path covariances are sums of link
// variances.
type NegativeCovPolicy int

const (
	// ClampNegativeCov keeps the equation but clamps its right-hand side to
	// zero. This is the default: unlike dropping, it preserves the full
	// column rank guaranteed by Theorem 1 (dropping the only pair equation
	// of two sibling leaf paths leaves their leaf links and shared parent
	// mutually unidentifiable) while still encoding that the shared
	// segment's variance is ≈ 0.
	ClampNegativeCov NegativeCovPolicy = iota
	// DropNegativeCov removes the equation entirely — the paper's rule
	// ("we ignore equations with Σ̂ii′ < 0"). Survives in practice thanks to
	// redundant equations, but can lose identifiability on sparse pair sets;
	// the estimator then falls back to a minimum-norm solution.
	DropNegativeCov
	// KeepNegativeCov uses the raw negative value.
	KeepNegativeCov
)

func (p NegativeCovPolicy) String() string {
	switch p {
	case DropNegativeCov:
		return "drop"
	case KeepNegativeCov:
		return "keep"
	default:
		return "clamp"
	}
}

// VarianceOptions tunes Phase 1.
type VarianceOptions struct {
	Method VarianceMethod
	// NegPolicy selects the treatment of negative measured covariances
	// (default ClampNegativeCov).
	NegPolicy NegativeCovPolicy
	// DenseBudget caps the approximate flop count (rows × nc²) the dense QR
	// path may incur before Auto switches to normal equations
	// (default 2e8, ≈ a few hundred ms).
	DenseBudget int
	// Workers bounds the goroutines used by the sharded Phase-1 accumulation
	// over the O(np²) equation stream. 0 sizes the pool to GOMAXPROCS (with
	// an inline fallback below a work threshold); values ≤ 1 walk the shards
	// inline without goroutines; any value > 1 engages the pool regardless
	// of the threshold, though the pool is always capped at the shard count
	// (a single-shard system runs inline no matter what). Every setting
	// produces bit-identical results — the shard structure, not the worker
	// count, fixes the reduction order. One exception to the serial
	// contract: the first Phase-1 pass on a routing matrix triggers the
	// lazy pair-support index build in topology, which always fans out over
	// GOMAXPROCS (its layout, and thus every result, is
	// schedule-independent).
	Workers int
}

// adjust applies the negative-covariance policy to one measured covariance,
// returning the value to use and whether the equation should be kept.
func (o VarianceOptions) adjust(sigma float64) (float64, bool) {
	if sigma >= 0 {
		return sigma, true
	}
	switch o.NegPolicy {
	case DropNegativeCov:
		return 0, false
	case KeepNegativeCov:
		return sigma, true
	default:
		return 0, true
	}
}

func (o VarianceOptions) budget() int {
	if o.DenseBudget <= 0 {
		return 200_000_000
	}
	return o.DenseBudget
}

// resolveMethod turns VarianceAuto into a concrete solver choice for the
// given routing matrix. The decision depends only on the topology (and the
// options' dense budget), never on the measured data — which is what lets
// Phase1 decide cacheability once per routing matrix.
func (o VarianceOptions) resolveMethod(rm *topology.RoutingMatrix) VarianceMethod {
	if o.Method != VarianceAuto {
		return o.Method
	}
	np, nc := rm.NumPaths(), rm.NumLinks()
	rows := np * (np + 1) / 2
	if rows*nc*nc <= o.budget() {
		return VarianceDenseQR
	}
	return VarianceNormalEquations
}

// EstimateVariances solves Σ* = A·v for the per-link variances from the
// accumulated path covariance moments (any stats.CovView — a live
// accumulator, a frozen CovSnapshot, a windowed or decayed view). The
// returned slice has one entry per virtual link of rm. Entries may come out
// slightly negative under sampling noise; callers that need true variances
// should clamp at zero, while the Phase-2 ordering uses the raw values.
//
// Long-running callers that rebuild repeatedly over the same routing matrix
// should use Phase1, which caches the topology-only Gram factorization this
// function recomputes from scratch on every call.
func EstimateVariances(rm *topology.RoutingMatrix, cov stats.CovView, opts VarianceOptions) ([]float64, error) {
	if cov.Count() < 2 {
		return nil, ErrTooFewSnapshots
	}
	if cov.Dim() != rm.NumPaths() {
		return nil, fmt.Errorf("core: covariance over %d paths, routing matrix has %d: %w",
			cov.Dim(), rm.NumPaths(), ErrDimensionMismatch)
	}
	// Surface a pair-index capacity failure as an error before any
	// estimator walks the index (whose accessors panic instead).
	if err := rm.PrecomputePairSupports(); err != nil {
		return nil, fmt.Errorf("core: phase-1 equations: %w", err)
	}
	switch opts.resolveMethod(rm) {
	case VarianceDenseQR:
		return estimateDense(rm, cov, opts)
	default:
		return estimateNormal(rm, cov, opts)
	}
}

// pairsPerShard fixes the shard granularity of the parallel Phase-1 passes.
// Shard boundaries depend only on the pair count — never on the worker count
// — so the floating-point reduction order, and therefore the result, is
// bit-identical across GOMAXPROCS settings and repeated runs.
const pairsPerShard = 1024

// minParallelPairs is the work threshold below which auto-sized runs
// (Workers == 0) stay serial: goroutine startup dominates tiny systems.
const minParallelPairs = 4 * pairsPerShard

// rhsWindowShards is how many shards stage their right-hand sides at once
// before an in-order fold into the result; it bounds rhs staging memory at
// rhsWindowShards·nc floats independent of system size while leaving
// plenty of shards in flight for any sensible worker count.
const rhsWindowShards = 64

// shardWorkers decides the pool size for a stream of npairs equations:
// 1 means "run the shard loop inline, no goroutines". The shard structure —
// and therefore the result — is the same either way; the pool only changes
// who walks the shards.
func (o VarianceOptions) shardWorkers(npairs int) int {
	w := o.Workers
	if w != 0 {
		if w < 1 {
			w = 1 // explicit serial request (negative values included)
		}
	} else if w = runtime.GOMAXPROCS(0); npairs < minParallelPairs {
		w = 1
	}
	shards := (npairs + pairsPerShard - 1) / pairsPerShard
	if w > shards && shards > 0 {
		w = shards
	}
	return w
}

func estimateDense(rm *topology.RoutingMatrix, cov stats.CovView, opts VarianceOptions) ([]float64, error) {
	nc := rm.NumLinks()
	rows, rhs := collectEquations(rm, cov, opts)
	if len(rows) < nc {
		return nil, fmt.Errorf("core: only %d usable covariance equations for %d links: %w",
			len(rows), nc, ErrUnidentifiable)
	}
	a := linalg.NewDense(len(rows), nc)
	for r, support := range rows {
		for _, k := range support {
			a.Set(r, int(k), 1)
		}
	}
	v, err := linalg.SolveLeastSquares(a, rhs)
	if errors.Is(err, linalg.ErrRankDeficient) {
		// Dropped equations (DropNegativeCov) can cost full column rank;
		// fall back to the minimum-norm basic solution, which resolves only
		// the identifiable directions and zeroes the rest. The fallback
		// factorization honors the same worker pool as the rest of Phase 1
		// (pivoted QR is bitwise-deterministic across worker counts).
		w := opts.Workers
		if w < 0 {
			w = 1 // explicit serial request, matching shardWorkers
		}
		return linalg.NewPivotedQRWorkers(a, w).SolveMinNorm(rhs), nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: dense variance solve: %w", err)
	}
	return v, nil
}

// collectEquations materializes the usable augmented rows (support views into
// the cached pair index) and their adjusted right-hand sides, in canonical
// pair order. Above the work threshold the collection fans out over pair
// shards; shard results are concatenated in shard order, so the row order is
// identical to the serial walk.
func collectEquations(rm *topology.RoutingMatrix, cov stats.CovView, opts VarianceOptions) ([][]int32, []float64) {
	npairs := rm.NumPairs()
	if npairs == 0 {
		return nil, nil
	}
	workers := opts.shardWorkers(npairs)
	shards := (npairs + pairsPerShard - 1) / pairsPerShard
	shardRows := make([][][]int32, shards)
	shardRHS := make([][]float64, shards)
	doShard := func(s int) {
		lo := s * pairsPerShard
		hi := min(lo+pairsPerShard, npairs)
		var rows [][]int32
		var rhs []float64
		VisitPairsRange(rm, lo, hi, func(i, j int, support []int32) {
			if len(support) == 0 {
				return
			}
			sigma, keep := opts.adjust(cov.Cov(i, j))
			if !keep {
				return
			}
			rows = append(rows, support)
			rhs = append(rhs, sigma)
		})
		shardRows[s], shardRHS[s] = rows, rhs
	}
	par.Do(workers, shards, func(_, s int) { doShard(s) })
	total := 0
	for _, r := range shardRows {
		total += len(r)
	}
	rows := make([][]int32, 0, total)
	rhs := make([]float64, 0, total)
	for s := range shardRows {
		rows = append(rows, shardRows[s]...)
		rhs = append(rhs, shardRHS[s]...)
	}
	return rows, rhs
}

func estimateNormal(rm *topology.RoutingMatrix, cov stats.CovView, opts VarianceOptions) ([]float64, error) {
	v, err := accumulateGram(rm, cov, opts).Solve()
	if err != nil {
		return nil, fmt.Errorf("core: normal-equations variance solve: %w: %w", ErrUnidentifiable, err)
	}
	return v, nil
}

// accumulateGram assembles the normal-equations system AᵀA·v = AᵀΣ* in two
// passes over the cached pair index:
//
//   - the order-sensitive right-hand side (and the kept-equation count) via
//     the shard-windowed fold of accumulateRHSInto — bit-deterministic
//     because shard boundaries depend only on the pair count;
//   - the Gram matrix G = AᵀA via the row-banded shared-matrix reduction of
//     accumulateGramInto — one nc×nc matrix total instead of one private
//     copy per worker, and exact regardless of scheduling because G's
//     entries are small integer counts.
func accumulateGram(rm *topology.RoutingMatrix, cov stats.CovView, opts VarianceOptions) *Gram {
	nc := rm.NumLinks()
	gr := NewGram(nc)
	npairs := rm.NumPairs()
	if npairs == 0 {
		return gr
	}
	workers := opts.shardWorkers(npairs)
	// Under DropNegativeCov the kept-equation set depends on the data; the
	// RHS pass decides it once into a bitmap so the row-banded Gram workers
	// need not re-evaluate the covariances. Under clamp/keep every equation
	// is kept and no bitmap is needed.
	var kept []bool
	if opts.NegPolicy == DropNegativeCov {
		kept = make([]bool, npairs)
	}
	gr.n = accumulateRHSInto(gr.rhs, rm, cov, opts, workers, kept)
	accumulateGramInto(gr.g, rm, kept, workers)
	return gr
}

// accumulateRHSInto folds the adjusted right-hand sides AᵀΣ* of every kept
// equation into dst (length nc, assumed zeroed) and returns the number of
// equations kept. The pair stream is cut into fixed-size shards processed in
// fixed-size windows: workers fan out within a window, then the window's
// per-shard partial sums fold into dst in shard index order before the next
// window starts. This bounds staging memory at window·nc floats no matter
// how many pairs the system has, and — because shard boundaries depend only
// on the pair count (pairsPerShard), never on the worker count — makes the
// reduction order, and therefore every bit of the result, independent of
// scheduling. The warm-rebuild path of Phase1 runs exactly this fold against
// a cached factorization, so its right-hand sides match the from-scratch
// build bit for bit.
//
// When kept is non-nil (length npairs) the fold additionally records which
// packed pair indices survived the negative-covariance policy — shards own
// disjoint ranges, so the concurrent writes are race-free. The cold build
// hands this bitmap to the Gram pass under DropNegativeCov.
func accumulateRHSInto(dst []float64, rm *topology.RoutingMatrix, cov stats.CovView, opts VarianceOptions, workers int, kept []bool) int {
	nc := rm.NumLinks()
	npairs := rm.NumPairs()
	if npairs == 0 {
		return 0
	}
	shards := (npairs + pairsPerShard - 1) / pairsPerShard
	window := min(shards, rhsWindowShards)
	staging := make([]float64, window*nc)
	shardN := make([]int, shards)
	total := 0
	for base := 0; base < shards; base += window {
		count := min(window, shards-base)
		par.Do(workers, count, func(_, i int) {
			s := base + i
			shardN[s] = accumulateRHSShard(staging[i*nc:(i+1)*nc], rm, cov, opts,
				s*pairsPerShard, min(s*pairsPerShard+pairsPerShard, npairs), kept)
		})
		for i := 0; i < count; i++ {
			for k, v := range staging[i*nc : (i+1)*nc] {
				dst[k] += v
			}
			total += shardN[base+i]
		}
	}
	return total
}

// accumulateRHSShard folds the adjusted right-hand sides of the packed pair
// range [lo, hi) — one shard of the equation stream — into rhs (length nc,
// zeroed here because staging slots are reused across windows), and returns
// the kept-equation count. It is the per-shard unit of both the cold fold
// above and Phase1's warm delta fold: a shard's partial depends only on its
// own co-moment block and the divisor, and both paths run this one
// implementation, so a cached partial is bit-for-bit what a recompute would
// produce.
//
// When kept is non-nil (length npairs overall) the walk also records which
// packed pair indices survived the negative-covariance policy; shards own
// disjoint ranges, so concurrent writes are race-free.
func accumulateRHSShard(rhs []float64, rm *topology.RoutingMatrix, cov stats.CovView, opts VarianceOptions, lo, hi int, kept []bool) int {
	for i := range rhs {
		rhs[i] = 0
	}
	n := 0
	p := lo // packed pair index of the current visit
	rm.VisitPairSupports(lo, hi, func(i, j int, support []int32) {
		p++
		if len(support) == 0 {
			return
		}
		sigma, keep := opts.adjust(cov.Cov(i, j))
		if !keep {
			return
		}
		if kept != nil {
			kept[p-1] = true
		}
		n++
		for _, k := range support {
			rhs[k] += sigma
		}
	})
	return n
}

// accumulateGramInto folds the support outer-products of every kept equation
// into the single shared matrix g (nc×nc, assumed zeroed) — the row-banded
// reduction that replaces per-worker private AᵀA copies: peak Gram memory is
// nc² + O(workers) floats instead of workers·nc².
//
// Each worker owns a contiguous band of G's rows (virtual links) and walks
// the whole pair stream, writing only the rows of each support that fall in
// its band — so writers never overlap and no merge is needed. The band
// boundaries are balanced by the per-link pair counts t·(t+1)/2 (the number
// of equations whose support contains the link), which is proportional to
// the row's write traffic. Every entry of G is a small integer count, so the
// result is exact — bit-identical for any worker count or band layout.
//
// kept, when non-nil, is the packed-pair bitmap of equations that survived
// the negative-covariance policy, as recorded by accumulateRHSInto —
// DropNegativeCov is the one policy whose kept set depends on the data. A
// nil kept means every equation survives (clamp/keep), making G a pure
// function of the topology — which is what Phase1's cached cold build
// relies on.
func accumulateGramInto(g *linalg.Dense, rm *topology.RoutingMatrix, kept []bool, workers int) {
	npairs := rm.NumPairs()
	if npairs == 0 {
		return
	}
	bands := gramBands(rm, workers)
	par.Do(len(bands)-1, len(bands)-1, func(_, w int) {
		lo, hi := bands[w], bands[w+1]
		if lo >= hi {
			return
		}
		p := 0 // packed pair index of the current visit
		rm.VisitPairSupports(0, npairs, func(i, j int, support []int32) {
			p++
			if len(support) == 0 || (kept != nil && !kept[p-1]) {
				return
			}
			// Select the slice of the (sorted) support inside this band.
			a := 0
			for a < len(support) && int(support[a]) < lo {
				a++
			}
			b := a
			for b < len(support) && int(support[b]) < hi {
				b++
			}
			for _, k := range support[a:b] {
				rowk := g.Row(int(k))
				for _, l := range support {
					rowk[l]++
				}
			}
		})
	})
}

// gramBands partitions the virtual links [0, nc) into min(workers, nc)
// contiguous bands with roughly equal Gram write traffic, estimated per link
// as t·(t+1)/2 (t = paths through the link): the number of augmented
// equations whose support contains it.
func gramBands(rm *topology.RoutingMatrix, workers int) []int {
	nc := rm.NumLinks()
	if workers < 1 {
		workers = 1
	}
	if workers > nc {
		workers = nc
	}
	if workers == 1 {
		return []int{0, nc}
	}
	var total float64
	weight := make([]float64, nc)
	for k := 0; k < nc; k++ {
		t := float64(len(rm.PathsThrough(k)))
		weight[k] = t * (t + 1) / 2
		total += weight[k]
	}
	bands := make([]int, workers+1)
	bands[workers] = nc
	cum := 0.0
	next := 1
	for k := 0; k < nc && next < workers; k++ {
		cum += weight[k]
		for next < workers && cum >= total*float64(next)/float64(workers) {
			bands[next] = k + 1
			next++
		}
	}
	for ; next < workers; next++ {
		bands[next] = nc
	}
	return bands
}
