package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// phase1Workload builds a randomized topology plus two moment states: the
// initial accumulator and an extended one with extra snapshots, so tests can
// exercise both the cold (cache-building) and warm (factor-reusing) paths of
// Phase1 against genuinely different right-hand sides.
func phase1Workload(t *testing.T, seed uint64) (*topology.RoutingMatrix, *stats.CovAccumulator, *stats.CovAccumulator) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed*31+7))
	net := topogen.Tree(rng, 70, 5)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, rm.NumLinks())
	for k := range truth {
		if rng.Float64() < 0.15 {
			truth[k] = 0.005 + 0.02*rng.Float64()
		} else {
			truth[k] = 1e-6 * rng.Float64()
		}
	}
	acc := syntheticSnapshots(rng, rm, truth, 150)
	more := acc.Clone()
	x := make([]float64, rm.NumLinks())
	y := make([]float64, rm.NumPaths())
	for t := 0; t < 60; t++ {
		for k := range x {
			x[k] = rng.NormFloat64() * math.Sqrt(truth[k])
		}
		for i := range y {
			y[i] = 0
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		more.Add(y)
	}
	return rm, acc, more
}

// TestPhase1MatchesEstimateVariances asserts the cached-factorization solver
// is bitwise identical to the from-scratch EstimateVariances across every
// negative-covariance policy, both solver methods, and several worker
// counts — on both the cold (first) and warm (cached-factor) calls.
func TestPhase1MatchesEstimateVariances(t *testing.T) {
	rm, acc, more := phase1Workload(t, 13)
	for _, method := range []VarianceMethod{VarianceNormalEquations, VarianceDenseQR} {
		for _, pol := range []NegativeCovPolicy{ClampNegativeCov, DropNegativeCov, KeepNegativeCov} {
			for _, workers := range []int{0, 1, 3, 8} {
				opts := VarianceOptions{Method: method, NegPolicy: pol, Workers: workers}
				p1 := NewPhase1(rm, opts)
				for pass, cov := range []*stats.CovAccumulator{acc, more} {
					want, err := EstimateVariances(rm, cov, opts)
					if err != nil {
						t.Fatalf("%v/%v/w%d pass %d: EstimateVariances: %v", method, pol, workers, pass, err)
					}
					got, err := p1.Estimate(cov)
					if err != nil {
						t.Fatalf("%v/%v/w%d pass %d: Phase1: %v", method, pol, workers, pass, err)
					}
					for k := range want {
						if got[k] != want[k] {
							t.Fatalf("%v/%v/w%d pass %d link %d: cached %g != from-scratch %g (not bitwise identical)",
								method, pol, workers, pass, k, got[k], want[k])
						}
					}
				}
				if wantWarm := pol != DropNegativeCov && method == VarianceNormalEquations; p1.Warm() != wantWarm {
					t.Fatalf("%v/%v/w%d: Warm() = %v, want %v", method, pol, workers, p1.Warm(), wantWarm)
				}
			}
		}
	}
}

// TestPhase1ViewMatchesAccumulator: estimating against a frozen CovSnapshot
// (what lia.Engine captures under its ingest lock) must equal estimating
// against the live accumulator, bit for bit.
func TestPhase1ViewMatchesAccumulator(t *testing.T) {
	rm, acc, _ := phase1Workload(t, 29)
	opts := VarianceOptions{Method: VarianceNormalEquations}
	p1 := NewPhase1(rm, opts)
	live, err := p1.Estimate(acc)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := p1.Estimate(acc.View())
	if err != nil {
		t.Fatal(err)
	}
	for k := range live {
		if live[k] != frozen[k] {
			t.Fatalf("link %d: view estimate %g != accumulator estimate %g", k, frozen[k], live[k])
		}
	}
}

// TestPhase1Errors mirrors the EstimateVariances input gating.
func TestPhase1Errors(t *testing.T) {
	rm, _, _ := phase1Workload(t, 41)
	p1 := NewPhase1(rm, VarianceOptions{})
	if _, err := p1.Estimate(stats.NewCovAccumulator(rm.NumPaths())); !errors.Is(err, ErrTooFewSnapshots) {
		t.Fatalf("err = %v, want ErrTooFewSnapshots", err)
	}
	wrong := stats.NewCovAccumulator(rm.NumPaths() + 1)
	wrong.Add(make([]float64, rm.NumPaths()+1))
	wrong.Add(make([]float64, rm.NumPaths()+1))
	if _, err := p1.Estimate(wrong); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
}

// TestGramBandsPartition sanity-checks the row-band layout: monotone,
// covering, and degenerating to one band for one worker.
func TestGramBandsPartition(t *testing.T) {
	rm, _, _ := phase1Workload(t, 53)
	nc := rm.NumLinks()
	for _, workers := range []int{1, 2, 3, 7, nc, nc + 5} {
		bands := gramBands(rm, workers)
		if bands[0] != 0 || bands[len(bands)-1] != nc {
			t.Fatalf("workers=%d: bands %v do not cover [0,%d)", workers, bands, nc)
		}
		for i := 1; i < len(bands); i++ {
			if bands[i] < bands[i-1] {
				t.Fatalf("workers=%d: bands %v not monotone", workers, bands)
			}
		}
	}
	if b := gramBands(rm, 1); len(b) != 2 {
		t.Fatalf("one worker should get one band, got %v", b)
	}
}
