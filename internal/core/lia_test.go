package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"lia/internal/linalg"
	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func TestEliminateKeepsFullRank(t *testing.T) {
	rm := figure1(t)
	vars := []float64{0.5, 0.01, 0.4, 0.02, 0.03} // links 0 and 2 congested
	for _, strat := range []Elimination{EliminatePaperSequential, EliminateGreedyBasis} {
		kept, removed := Eliminate(rm, vars, strat)
		if len(kept)+len(removed) != rm.NumLinks() {
			t.Fatalf("%v: kept+removed != nc", strat)
		}
		sub := rm.DenseColumns(kept)
		if !linalg.HasFullColumnRank(sub) {
			t.Fatalf("%v: R* not full column rank", strat)
		}
		if len(kept) != rm.Rank() {
			t.Fatalf("%v: kept %d columns, rank(R) = %d", strat, len(kept), rm.Rank())
		}
		// The two highest-variance links must survive (they are independent
		// here).
		keptSet := map[int]bool{}
		for _, k := range kept {
			keptSet[k] = true
		}
		if !keptSet[0] || !keptSet[2] {
			t.Fatalf("%v: congested links dropped, kept %v", strat, kept)
		}
	}
}

func TestEliminateStrategiesDiffer(t *testing.T) {
	// Construct the case where the paper's sequential rule discards an
	// independent low-variance link unnecessarily while the greedy basis
	// keeps it: link a independent; links b,c dependent pair; var(a) lowest.
	//
	// Paths: P0={a}, P1={b,c} — after reduction b,c merge (identical path
	// sets), so instead use three paths to keep them distinct columns yet
	// dependent: P0={a}, P1={b}, P2={b,c}, P3={a,b,c} gives R with columns
	// a,b,c. Columns: a=[1,0,0,1], b=[0,1,1,1], c=[0,0,1,1]; independent, no
	// good. Dependency needs nc > rank. Use: P0={a,b}, P1={a,c}, P2={b,c}:
	// columns a=[1,1,0], b=[1,0,1], c=[0,1,1] — independent again. A clean
	// dependent-but-distinct construction: P0={a,b}, P1={c,b} with a,c
	// distinct columns and b shared; add P2={a,c} so all columns distinct:
	// a=[1,0,1], b=[1,1,0], c=[0,1,1] — rank 3. 0/1 routing columns over
	// enough paths are usually independent; dependence arises when nc
	// exceeds np. Take np=2: P0={a,b}, P1={a,c}: columns a=[1,1], b=[1,0],
	// c=[0,1]; rank 2, nc=3 → one column must go.
	rm, err := topology.Build([]topology.Path{
		{Beacon: 0, Dst: 1, Links: []int{10, 11}},
		{Beacon: 0, Dst: 2, Links: []int{10, 12}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Identify virtual indices.
	a, _ := rm.VirtualOf(10)
	b, _ := rm.VirtualOf(11)
	c, _ := rm.VirtualOf(12)
	vars := make([]float64, 3)
	vars[a] = 0.001 // shared link: lowest variance
	vars[b] = 0.5
	vars[c] = 0.4
	// Sequential: removes a first; {b,c} is independent → stops. Greedy:
	// keeps b, then c (independent), then rejects a (dependent on b,c? no —
	// a=[1,1] = b+c = [1,0]+[0,1] → dependent). Both keep {b,c} here, and
	// that's the correct maximum-variance basis.
	kept, _ := Eliminate(rm, vars, EliminatePaperSequential)
	if len(kept) != 2 {
		t.Fatalf("sequential kept %v, want 2 columns", kept)
	}
	keptG, _ := Eliminate(rm, vars, EliminateGreedyBasis)
	if len(keptG) != 2 {
		t.Fatalf("greedy kept %v, want 2 columns", keptG)
	}
	for _, k := range append(kept, keptG...) {
		if k == a {
			t.Fatal("lowest-variance dependent link should have been removed")
		}
	}
}

func TestSequentialMayDropIndependentLink(t *testing.T) {
	// Now give the *independent* link the lowest variance: columns
	// a=[1,1,0,0], b=[0,0,1,1], c=[0,0,1,0], d=[0,0,0,1] where b = c + d.
	// Sequential removal order (ascending variance) must discard a (then
	// possibly more) before reaching independence, while greedy keeps a.
	rm, err := topology.Build([]topology.Path{
		{Beacon: 0, Dst: 1, Links: []int{20, 21}}, // a-members (merged)
		{Beacon: 0, Dst: 2, Links: []int{20, 22}},
		{Beacon: 5, Dst: 6, Links: []int{30, 31}}, // b then c
		{Beacon: 5, Dst: 7, Links: []int{30, 32}}, // b then d
	})
	if err != nil {
		t.Fatal(err)
	}
	// Virtual links: 20 (shared, col [1,1,0,0]); 21 ([1,0,0,0]);
	// 22 ([0,1,0,0]); 30 ([0,0,1,1]); 31 ([0,0,1,0]); 32 ([0,0,0,1]).
	// nc = 6, np = 4 → rank ≤ 4; dependencies exist.
	v20, _ := rm.VirtualOf(20)
	v30, _ := rm.VirtualOf(30)
	vars := make([]float64, rm.NumLinks())
	for k := range vars {
		vars[k] = 0.5 // high by default
	}
	vars[v20] = 0.001 // independent-ish link with lowest variance
	vars[v30] = 0.002
	keptSeq, _ := Eliminate(rm, vars, EliminatePaperSequential)
	keptGreedy, _ := Eliminate(rm, vars, EliminateGreedyBasis)
	if len(keptSeq) > len(keptGreedy) {
		t.Fatalf("greedy basis should keep at least as many columns: seq %d, greedy %d",
			len(keptSeq), len(keptGreedy))
	}
	if len(keptGreedy) != rm.Rank() {
		t.Fatalf("greedy kept %d, want rank %d", len(keptGreedy), rm.Rank())
	}
}

func TestSolveReducedRecoversRates(t *testing.T) {
	rm := figure1(t)
	// Plant log rates on an independent column subset, zero elsewhere.
	vars := []float64{0.5, 0.4, 0.3, 0, 0} // keep 3 highest-variance links
	kept, removed := Eliminate(rm, vars, EliminatePaperSequential)
	x := make([]float64, rm.NumLinks())
	for _, k := range kept {
		x[k] = -0.05 * float64(k+1)
	}
	for _, k := range removed {
		x[k] = 0 // loss-free, consistent with elimination assumption
	}
	y := rm.Dense().MulVec(x)
	got, err := SolveReduced(rm, kept, y)
	if err != nil {
		t.Fatal(err)
	}
	for idx, k := range kept {
		if math.Abs(got[idx]-x[k]) > 1e-10 {
			t.Fatalf("link %d: x = %g, want %g", k, got[idx], x[k])
		}
	}
}

// runLIAOnTree is the end-to-end integration check: packet-level simulation
// on a random tree with the paper's LLRD1/Gilbert workload, then LIA.
func runLIAOnTree(t *testing.T, strategy Elimination, mode netsim.Mode) (stats.Detection, []float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(77, uint64(strategy)))
	net := topogen.Tree(rng, 200, 10)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	scen := lossmodel.NewScenario(lossmodel.Config{
		Model:    lossmodel.LLRD1,
		Fraction: 0.1,
	}, rng, rm.NumLinks())
	sim := netsim.New(rm, netsim.Config{Probes: 1000, Seed: 123, Mode: mode})

	l := New(rm, Options{Strategy: strategy})
	const m = 50
	for s := 0; s < m; s++ {
		if s > 0 {
			scen.Advance()
		}
		snap := sim.Run(scen.Rates())
		l.AddSnapshot(snap.LogRates())
	}
	// The (m+1)-th snapshot to infer.
	scen.Advance()
	truth := append([]float64(nil), scen.Rates()...)
	snap := sim.Run(truth)
	res, err := l.Infer(snap.LogRates())
	if err != nil {
		t.Fatal(err)
	}
	trueCong := make([]bool, rm.NumLinks())
	for k, q := range truth {
		trueCong[k] = q > CongestionThreshold
	}
	det := stats.Detect(trueCong, res.Congested(CongestionThreshold))
	return det, truth, res.LossRates
}

func TestLIAEndToEndTree(t *testing.T) {
	det, truth, inferred := runLIAOnTree(t, EliminatePaperSequential, netsim.ModePacketPerPath)
	if det.DR < 0.85 {
		t.Errorf("DR = %.3f, want ≥ 0.85 (paper reports ≳0.9 at m=50)", det.DR)
	}
	// The FPR bound is looser than the paper's ~3%: with good-link rates
	// drawn uniformly from [0, tl], roughly half the retained good links sit
	// within one inference-error quantum (~0.001) of the threshold. The
	// shape that matters — every congested link found, false positives
	// confined to the handful of retained good links — is asserted here.
	if det.FPR > 0.40 {
		t.Errorf("FPR = %.3f, want ≤ 0.40", det.FPR)
	}
	if det.FalsePositives > len(truth)/10 {
		t.Errorf("%d false positives across %d links", det.FalsePositives, len(truth))
	}
	// Absolute errors should be small for nearly all links (Figure 6).
	var big int
	for k := range truth {
		if math.Abs(truth[k]-inferred[k]) > 0.01 {
			big++
		}
	}
	if frac := float64(big) / float64(len(truth)); frac > 0.1 {
		t.Errorf("%.1f%% links with absolute error > 0.01, want ≤ 10%%", 100*frac)
	}
}

func TestLIAEndToEndGreedy(t *testing.T) {
	det, _, _ := runLIAOnTree(t, EliminateGreedyBasis, netsim.ModePacketPerPath)
	if det.DR < 0.85 {
		t.Errorf("greedy: DR=%.3f, want ≥0.85", det.DR)
	}
	// The greedy basis keeps rank(R) columns — far more retained good links
	// than the paper's sequential rule — so its FPR is structurally worse.
	// That trade-off is exactly what the ablation bench measures.
}

func TestLIAEndToEndSharedState(t *testing.T) {
	det, _, _ := runLIAOnTree(t, EliminatePaperSequential, netsim.ModePacketShared)
	if det.DR < 0.85 || det.FPR > 0.55 {
		t.Errorf("shared-state: DR=%.3f FPR=%.3f, want ≥0.85 / ≤0.55", det.DR, det.FPR)
	}
}

func TestLIAErrorsVsRealizedRates(t *testing.T) {
	// Figure 6 / Table 2 shape: inferred rates track the realized per-link
	// sample rates with median error ~1e-3.
	rng := rand.New(rand.NewPCG(78, 1))
	net := topogen.Tree(rng, 200, 10)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	scen := lossmodel.NewScenario(lossmodel.Config{Model: lossmodel.LLRD1, Fraction: 0.1}, rng, rm.NumLinks())
	sim := netsim.New(rm, netsim.Config{Probes: 1000, Seed: 9})
	l := New(rm, Options{})
	for s := 0; s < 50; s++ {
		if s > 0 {
			scen.Advance()
		}
		l.AddSnapshot(sim.Run(scen.Rates()).LogRates())
	}
	scen.Advance()
	snap := sim.Run(scen.Rates())
	res, err := l.Infer(snap.LogRates())
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]float64, rm.NumLinks())
	for k := range errs {
		errs[k] = math.Abs(snap.LinkRealized[k] - res.LossRates[k])
	}
	sum := stats.Summarize(errs)
	if sum.Median > 0.003 {
		t.Errorf("median |realized − inferred| = %.4f, want ≤ 0.003", sum.Median)
	}
	if sum.Max > 0.05 {
		t.Errorf("max |realized − inferred| = %.4f, want ≤ 0.05", sum.Max)
	}
}

func TestLIAInferErrorsWithoutSnapshots(t *testing.T) {
	rm := figure1(t)
	l := New(rm, Options{})
	if _, err := l.Infer(make([]float64, rm.NumPaths())); err == nil {
		t.Fatal("Infer without learning snapshots should fail")
	}
}

func TestLIAVarianceCaching(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	rm := figure1(t)
	l := New(rm, Options{})
	truth := []float64{0.01, 0, 0.02, 0, 0.001}
	acc := syntheticSnapshots(rng, rm, truth, 100)
	_ = acc
	for s := 0; s < 100; s++ {
		y := make([]float64, rm.NumPaths())
		x := make([]float64, rm.NumLinks())
		for k := range x {
			x[k] = rng.NormFloat64() * math.Sqrt(truth[k])
		}
		for i := range y {
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		l.AddSnapshot(y)
	}
	v1, err := l.Variances()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := l.Variances()
	if err != nil {
		t.Fatal(err)
	}
	if &v1[0] != &v2[0] {
		t.Fatal("expected cached variance slice on second call")
	}
	l.AddSnapshot(make([]float64, rm.NumPaths()))
	v3, err := l.Variances()
	if err != nil {
		t.Fatal(err)
	}
	if &v1[0] == &v3[0] {
		t.Fatal("expected recomputation after new snapshot")
	}
}

func TestResultCongestedThreshold(t *testing.T) {
	r := &Result{LossRates: []float64{0, 0.001, 0.05}}
	got := r.Congested(0.002)
	want := []bool{false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Congested = %v, want %v", got, want)
		}
	}
}
