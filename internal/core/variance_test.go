package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// syntheticSnapshots draws m snapshots of Y = R·X with X ~ independent
// zero-mean Gaussians of the given per-link variances — the exact generative
// model of Section 4 — and accumulates their covariance.
func syntheticSnapshots(rng *rand.Rand, rm *topology.RoutingMatrix, vars []float64, m int) *stats.CovAccumulator {
	acc := stats.NewCovAccumulator(rm.NumPaths())
	x := make([]float64, rm.NumLinks())
	y := make([]float64, rm.NumPaths())
	for t := 0; t < m; t++ {
		for k := range x {
			x[k] = rng.NormFloat64() * math.Sqrt(vars[k])
		}
		for i := range y {
			y[i] = 0
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		acc.Add(y)
	}
	return acc
}

func testVarianceRecovery(t *testing.T, method VarianceMethod) {
	t.Helper()
	rng := rand.New(rand.NewPCG(9, uint64(method)))
	net := topogen.Tree(rng, 80, 5)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, rm.NumLinks())
	for k := range truth {
		if rng.Float64() < 0.1 {
			truth[k] = 0.01 + 0.02*rng.Float64() // congested: high variance
		} else {
			truth[k] = 1e-6 * rng.Float64() // good: ~zero variance
		}
	}
	acc := syntheticSnapshots(rng, rm, truth, 4000)
	got, err := EstimateVariances(rm, acc, VarianceOptions{Method: method})
	if err != nil {
		t.Fatal(err)
	}
	for k := range truth {
		tol := 0.25*truth[k] + 5e-4
		if math.Abs(got[k]-truth[k]) > tol {
			t.Errorf("link %d: variance %g, want %g (±%g)", k, got[k], truth[k], tol)
		}
	}
}

func TestVarianceRecoveryDenseQR(t *testing.T)    { testVarianceRecovery(t, VarianceDenseQR) }
func TestVarianceRecoveryNormalEqns(t *testing.T) { testVarianceRecovery(t, VarianceNormalEquations) }

func TestVarianceMethodsAgree(t *testing.T) {
	// Both solvers minimize the same least-squares objective, so on the same
	// moments they must agree to numerical precision.
	rng := rand.New(rand.NewPCG(10, 20))
	rm := figure2(t)
	truth := []float64{0.02, 0.001, 0.005, 0, 0.01, 0.0002, 0.003, 0}
	truth = truth[:rm.NumLinks()]
	acc := syntheticSnapshots(rng, rm, truth, 500)
	// Keep negative-covariance equations so both paths see identical systems.
	opts := VarianceOptions{NegPolicy: KeepNegativeCov}
	opts.Method = VarianceDenseQR
	a, err := EstimateVariances(rm, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Method = VarianceNormalEquations
	b, err := EstimateVariances(rm, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-8 {
			t.Fatalf("solvers disagree at link %d: %g vs %g", k, a[k], b[k])
		}
	}
}

func TestVarianceOrderingSeparatesCongested(t *testing.T) {
	// Even with few snapshots the congested links must dominate the
	// variance ordering — that is all Phase 2 needs.
	rng := rand.New(rand.NewPCG(11, 21))
	net := topogen.Tree(rng, 60, 6)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, rm.NumLinks())
	congested := map[int]bool{}
	for k := range truth {
		if rng.Float64() < 0.12 {
			truth[k] = 0.02
			congested[k] = true
		} else {
			truth[k] = 1e-7
		}
	}
	acc := syntheticSnapshots(rng, rm, truth, 60)
	got, err := EstimateVariances(rm, acc, VarianceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	order := ascendingByVariance(got)
	// All congested links must sit in the top |congested| positions.
	top := order[len(order)-len(congested):]
	for _, k := range top {
		if !congested[k] {
			t.Errorf("link %d (variance %g) ranked among congested, truth says good", k, got[k])
		}
	}
}

func TestEstimateVariancesErrors(t *testing.T) {
	rm := figure1(t)
	acc := stats.NewCovAccumulator(rm.NumPaths())
	if _, err := EstimateVariances(rm, acc, VarianceOptions{}); !errors.Is(err, ErrTooFewSnapshots) {
		t.Fatalf("err = %v, want ErrTooFewSnapshots", err)
	}
	wrong := stats.NewCovAccumulator(rm.NumPaths() + 1)
	wrong.Add(make([]float64, rm.NumPaths()+1))
	wrong.Add(make([]float64, rm.NumPaths()+1))
	if _, err := EstimateVariances(rm, wrong, VarianceOptions{}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

// randomWorkload builds a randomized tree topology with mixed link variances
// and enough synthetic snapshots for a stable Phase-1 system.
func randomWorkload(t *testing.T, seed uint64, hosts int) (*topology.RoutingMatrix, *stats.CovAccumulator) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xABCD))
	net := topogen.Tree(rng, hosts, 5)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, rm.NumLinks())
	for k := range truth {
		if rng.Float64() < 0.15 {
			truth[k] = 0.005 + 0.02*rng.Float64()
		} else {
			truth[k] = 1e-6 * rng.Float64()
		}
	}
	return rm, syntheticSnapshots(rng, rm, truth, 200)
}

// TestParallelMatchesSerial asserts the sharded Phase-1 accumulation agrees
// with the serial walk within 1e-10 on randomized topologies, for both
// solver methods and every negative-covariance policy.
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		rm, acc := randomWorkload(t, seed, 70)
		for _, method := range []VarianceMethod{VarianceDenseQR, VarianceNormalEquations} {
			for _, pol := range []NegativeCovPolicy{ClampNegativeCov, DropNegativeCov, KeepNegativeCov} {
				serial, err := EstimateVariances(rm, acc, VarianceOptions{Method: method, NegPolicy: pol, Workers: 1})
				if err != nil {
					t.Fatalf("seed %d %v/%v serial: %v", seed, method, pol, err)
				}
				par, err := EstimateVariances(rm, acc, VarianceOptions{Method: method, NegPolicy: pol, Workers: 8})
				if err != nil {
					t.Fatalf("seed %d %v/%v parallel: %v", seed, method, pol, err)
				}
				for k := range serial {
					if math.Abs(serial[k]-par[k]) > 1e-10 {
						t.Fatalf("seed %d %v/%v link %d: serial %g, parallel %g",
							seed, method, pol, k, serial[k], par[k])
					}
				}
			}
		}
	}
}

// TestParallelDeterministic asserts the sharded accumulation returns
// bit-identical results for any worker count — including the inline
// single-worker walk — and across repeated runs: shard boundaries depend
// only on the pair count, the Gram merge is exact integer arithmetic, and
// the right-hand side reduces in fixed shard order.
func TestParallelDeterministic(t *testing.T) {
	rm, acc := randomWorkload(t, 7, 60)
	var want []float64
	for _, workers := range []int{0, 1, 2, 3, 4, 8, 16} {
		for rep := 0; rep < 3; rep++ {
			got, err := EstimateVariances(rm, acc,
				VarianceOptions{Method: VarianceNormalEquations, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
			}
			if want == nil {
				want = got
				continue
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("workers=%d rep=%d link %d: %g != %g (not bitwise deterministic)",
						workers, rep, k, got[k], want[k])
				}
			}
		}
	}
}

// TestGramMergeMatchesSequential exercises the shard-merge API directly:
// folding disjoint equation ranges into separate Grams and merging must
// reproduce the single-accumulator system.
func TestGramMergeMatchesSequential(t *testing.T) {
	rm, acc := randomWorkload(t, 23, 40)
	nc := rm.NumLinks()
	whole := NewGram(nc)
	VisitPairs(rm, func(i, j int, support []int32) {
		if len(support) > 0 {
			whole.AddEquation(support, acc.Cov(i, j))
		}
	})
	merged := NewGram(nc)
	half := rm.NumPairs() / 2
	for _, rng := range [][2]int{{0, half}, {half, rm.NumPairs()}} {
		part := NewGram(nc)
		VisitPairsRange(rm, rng[0], rng[1], func(i, j int, support []int32) {
			if len(support) > 0 {
				part.AddEquation(support, acc.Cov(i, j))
			}
		})
		merged.Merge(part)
	}
	if merged.Equations() != whole.Equations() {
		t.Fatalf("merged %d equations, want %d", merged.Equations(), whole.Equations())
	}
	for a := 0; a < nc; a++ {
		for b := 0; b < nc; b++ {
			if merged.Matrix().At(a, b) != whole.Matrix().At(a, b) {
				t.Fatalf("G[%d,%d]: merged %g, whole %g", a, b,
					merged.Matrix().At(a, b), whole.Matrix().At(a, b))
			}
		}
		if d := math.Abs(merged.RHS()[a] - whole.RHS()[a]); d > 1e-12 {
			t.Fatalf("rhs[%d]: merged %g, whole %g", a, merged.RHS()[a], whole.RHS()[a])
		}
	}
}

func TestNegativeWorkersFallsBackToSerial(t *testing.T) {
	rm, acc := randomWorkload(t, 31, 40)
	serial, err := EstimateVariances(rm, acc, VarianceOptions{Method: VarianceNormalEquations, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := EstimateVariances(rm, acc, VarianceOptions{Method: VarianceNormalEquations, Workers: -3})
	if err != nil {
		t.Fatal(err)
	}
	for k := range serial {
		if serial[k] != neg[k] {
			t.Fatalf("link %d: Workers=-3 gave %g, serial %g", k, neg[k], serial[k])
		}
	}
}
