package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// syntheticSnapshots draws m snapshots of Y = R·X with X ~ independent
// zero-mean Gaussians of the given per-link variances — the exact generative
// model of Section 4 — and accumulates their covariance.
func syntheticSnapshots(rng *rand.Rand, rm *topology.RoutingMatrix, vars []float64, m int) *stats.CovAccumulator {
	acc := stats.NewCovAccumulator(rm.NumPaths())
	x := make([]float64, rm.NumLinks())
	y := make([]float64, rm.NumPaths())
	for t := 0; t < m; t++ {
		for k := range x {
			x[k] = rng.NormFloat64() * math.Sqrt(vars[k])
		}
		for i := range y {
			y[i] = 0
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		acc.Add(y)
	}
	return acc
}

func testVarianceRecovery(t *testing.T, method VarianceMethod) {
	t.Helper()
	rng := rand.New(rand.NewPCG(9, uint64(method)))
	net := topogen.Tree(rng, 80, 5)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, rm.NumLinks())
	for k := range truth {
		if rng.Float64() < 0.1 {
			truth[k] = 0.01 + 0.02*rng.Float64() // congested: high variance
		} else {
			truth[k] = 1e-6 * rng.Float64() // good: ~zero variance
		}
	}
	acc := syntheticSnapshots(rng, rm, truth, 4000)
	got, err := EstimateVariances(rm, acc, VarianceOptions{Method: method})
	if err != nil {
		t.Fatal(err)
	}
	for k := range truth {
		tol := 0.25*truth[k] + 5e-4
		if math.Abs(got[k]-truth[k]) > tol {
			t.Errorf("link %d: variance %g, want %g (±%g)", k, got[k], truth[k], tol)
		}
	}
}

func TestVarianceRecoveryDenseQR(t *testing.T)    { testVarianceRecovery(t, VarianceDenseQR) }
func TestVarianceRecoveryNormalEqns(t *testing.T) { testVarianceRecovery(t, VarianceNormalEquations) }

func TestVarianceMethodsAgree(t *testing.T) {
	// Both solvers minimize the same least-squares objective, so on the same
	// moments they must agree to numerical precision.
	rng := rand.New(rand.NewPCG(10, 20))
	rm := figure2(t)
	truth := []float64{0.02, 0.001, 0.005, 0, 0.01, 0.0002, 0.003, 0}
	truth = truth[:rm.NumLinks()]
	acc := syntheticSnapshots(rng, rm, truth, 500)
	// Keep negative-covariance equations so both paths see identical systems.
	opts := VarianceOptions{NegPolicy: KeepNegativeCov}
	opts.Method = VarianceDenseQR
	a, err := EstimateVariances(rm, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Method = VarianceNormalEquations
	b, err := EstimateVariances(rm, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-8 {
			t.Fatalf("solvers disagree at link %d: %g vs %g", k, a[k], b[k])
		}
	}
}

func TestVarianceOrderingSeparatesCongested(t *testing.T) {
	// Even with few snapshots the congested links must dominate the
	// variance ordering — that is all Phase 2 needs.
	rng := rand.New(rand.NewPCG(11, 21))
	net := topogen.Tree(rng, 60, 6)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, rm.NumLinks())
	congested := map[int]bool{}
	for k := range truth {
		if rng.Float64() < 0.12 {
			truth[k] = 0.02
			congested[k] = true
		} else {
			truth[k] = 1e-7
		}
	}
	acc := syntheticSnapshots(rng, rm, truth, 60)
	got, err := EstimateVariances(rm, acc, VarianceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	order := ascendingByVariance(got)
	// All congested links must sit in the top |congested| positions.
	top := order[len(order)-len(congested):]
	for _, k := range top {
		if !congested[k] {
			t.Errorf("link %d (variance %g) ranked among congested, truth says good", k, got[k])
		}
	}
}

func TestEstimateVariancesErrors(t *testing.T) {
	rm := figure1(t)
	acc := stats.NewCovAccumulator(rm.NumPaths())
	if _, err := EstimateVariances(rm, acc, VarianceOptions{}); !errors.Is(err, ErrTooFewSnapshots) {
		t.Fatalf("err = %v, want ErrTooFewSnapshots", err)
	}
	wrong := stats.NewCovAccumulator(rm.NumPaths() + 1)
	wrong.Add(make([]float64, rm.NumPaths()+1))
	wrong.Add(make([]float64, rm.NumPaths()+1))
	if _, err := EstimateVariances(rm, wrong, VarianceOptions{}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}
