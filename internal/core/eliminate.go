package core

import (
	"fmt"
	"math"
	"sort"

	"lia/internal/linalg"
	"lia/internal/topology"
)

// Elimination selects the Phase-2 strategy for shrinking R to a full-column-
// rank R*.
type Elimination int

const (
	// EliminatePaperSequential is the algorithm exactly as printed in the
	// paper: repeatedly remove the remaining column with the smallest
	// variance until R* has full column rank. Because independence of a
	// column suffix is monotone in the number of removals, the loop is
	// implemented as a binary search over the ascending-variance order.
	EliminatePaperSequential Elimination = iota
	// EliminateGreedyBasis builds R* greedily from the highest-variance
	// column down, keeping a column only if it is linearly independent of
	// the columns already kept. This yields the maximum-variance basis (a
	// matroid-greedy optimum) and never discards an independent congested
	// link, unlike the sequential rule; it is evaluated as an ablation.
	EliminateGreedyBasis
)

func (e Elimination) String() string {
	switch e {
	case EliminateGreedyBasis:
		return "greedy-basis"
	default:
		return "paper-sequential"
	}
}

// Eliminate reduces the routing matrix to a full-column-rank set of columns,
// preferring to keep high-variance (congested) links. It returns the kept
// and removed virtual-link indices; kept is sorted ascending.
func Eliminate(rm *topology.RoutingMatrix, variances []float64, strategy Elimination) (kept, removed []int) {
	return EliminateWorkers(rm, variances, strategy, 1)
}

// EliminateWorkers is Eliminate with the rank tests of the paper-sequential
// strategy running the pivoted-QR factorization over a worker pool (0 sizes
// it to GOMAXPROCS, ≤ 1 runs serial). The factorization's column updates are
// independent, so results are bitwise-identical across worker counts.
func EliminateWorkers(rm *topology.RoutingMatrix, variances []float64, strategy Elimination, workers int) (kept, removed []int) {
	nc := rm.NumLinks()
	if len(variances) != nc {
		panic(fmt.Sprintf("core: %d variances for %d links", len(variances), nc))
	}
	switch strategy {
	case EliminateGreedyBasis:
		kept = greedyBasis(rm, variances)
	default:
		kept = sequentialSuffix(rm, variances, workers)
	}
	keptSet := make(map[int]bool, len(kept))
	for _, k := range kept {
		keptSet[k] = true
	}
	for k := 0; k < nc; k++ {
		if !keptSet[k] {
			removed = append(removed, k)
		}
	}
	sort.Ints(kept)
	return kept, removed
}

// VarianceOrder returns the link indices sorted by (variance, index) —
// ascending, ties broken by index. Both elimination strategies are pure
// functions of this permutation and the routing matrix: sequentialSuffix
// binary-searches over suffixes of it and greedyBasis walks it in reverse,
// neither reads the variance values again. Callers (lia.Engine) exploit
// that to reuse a cached elimination across epochs whose orderings match.
func VarianceOrder(variances []float64) []int {
	return ascendingByVariance(variances)
}

// ascendingByVariance returns link indices sorted by (variance, index).
func ascendingByVariance(variances []float64) []int {
	order := make([]int, len(variances))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := variances[order[a]], variances[order[b]]
		if va != vb {
			return va < vb
		}
		return order[a] < order[b]
	})
	return order
}

// sequentialSuffix finds the smallest t such that the columns with the
// (nc−t) largest variances are linearly independent — exactly the state the
// paper's remove-smallest loop terminates in — via binary search (suffix
// independence is monotone in t).
func sequentialSuffix(rm *topology.RoutingMatrix, variances []float64, workers int) []int {
	nc := rm.NumLinks()
	order := ascendingByVariance(variances)
	suffixIndependent := func(t int) bool {
		cols := order[t:]
		if len(cols) == 0 {
			return true
		}
		if len(cols) > rm.NumPaths() {
			return false
		}
		sub := rm.DenseColumns(cols)
		return linalg.RankWorkers(sub, workers) == len(cols)
	}
	// Lower bound: at least nc − rank(R) columns must go.
	lo := nc - rm.Rank()
	hi := nc
	if suffixIndependent(lo) {
		hi = lo
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if suffixIndependent(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return append([]int(nil), order[hi:]...)
}

// greedyBasis performs modified Gram–Schmidt over columns in descending
// variance order, keeping every column that adds a new direction.
func greedyBasis(rm *topology.RoutingMatrix, variances []float64) []int {
	np := rm.NumPaths()
	order := ascendingByVariance(variances)
	// Descending.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	var basis [][]float64
	var kept []int
	col := make([]float64, np)
	tol := 1e-9 * math.Sqrt(float64(np))
	for _, k := range order {
		for i := range col {
			col[i] = 0
		}
		for _, p := range rm.PathsThrough(k) {
			col[p] = 1
		}
		norm0 := linalg.Norm2(col)
		if norm0 == 0 {
			continue
		}
		// Two rounds of MGS for numerical safety.
		for round := 0; round < 2; round++ {
			for _, q := range basis {
				d := linalg.Dot(q, col)
				for i := range col {
					col[i] -= d * q[i]
				}
			}
		}
		if n := linalg.Norm2(col); n > tol*norm0 {
			q := make([]float64, np)
			for i := range col {
				q[i] = col[i] / n
			}
			basis = append(basis, q)
			kept = append(kept, k)
		}
	}
	return kept
}

// SolveReduced solves the reduced first-order system Y = R*·X* (eq. 9) for
// one snapshot's per-path log transmission rates y, returning the estimated
// per-link log transmission rates for the kept columns (aligned with kept).
func SolveReduced(rm *topology.RoutingMatrix, kept []int, y []float64) ([]float64, error) {
	if len(y) != rm.NumPaths() {
		return nil, fmt.Errorf("core: snapshot of %d paths, routing matrix has %d: %w",
			len(y), rm.NumPaths(), ErrDimensionMismatch)
	}
	sub := rm.DenseColumns(kept)
	x, err := linalg.SolveLeastSquares(sub, y)
	if err != nil {
		return nil, fmt.Errorf("core: reduced solve over %d links: %w", len(kept), err)
	}
	return x, nil
}
