package core

import (
	"fmt"
	"math"

	"lia/internal/stats"
	"lia/internal/topology"
)

// CongestionThreshold is the default loss-rate threshold tl separating good
// from congested links (the LLRD models' 0.002).
const CongestionThreshold = 0.002

// Observation selects what the snapshot vectors measure. The identifiability
// theory and both LIA phases are agnostic to it; only the final conversion
// differs.
type Observation int

const (
	// ObserveLogTransmission (default): Y holds log path transmission rates
	// and results convert to loss rates via 1 − eˣ.
	ObserveLogTransmission Observation = iota
	// ObserveLinear: Y holds additive path metrics (e.g. excess queueing
	// delays, the Section 8 extension); results are reported as-is, clamped
	// at zero.
	ObserveLinear
)

// Options configures a LIA instance.
type Options struct {
	Variance VarianceOptions
	Strategy Elimination
	// Observation selects the snapshot semantics (default log transmission).
	Observation Observation
	// Threshold tl used by Result.Congested. When ThresholdSet is false,
	// values ≤ 0 fall back to CongestionThreshold; with ThresholdSet the
	// value is honored verbatim, so an explicit tl = 0 (flag every link with
	// any inferred loss) is expressible.
	Threshold    float64
	ThresholdSet bool
}

// EffectiveThreshold resolves the congestion threshold tl these options
// select, applying the default only when no threshold was set explicitly.
func (o Options) EffectiveThreshold() float64 {
	if o.ThresholdSet {
		return o.Threshold
	}
	if o.Threshold <= 0 {
		return CongestionThreshold
	}
	return o.Threshold
}

// LIA is the Loss Inference Algorithm of Section 5.3. Feed it the learning
// snapshots (Phase 1) with AddSnapshot, then call Infer on the newest
// snapshot (Phase 2).
//
// A LIA instance is not safe for concurrent use.
type LIA struct {
	rm   *topology.RoutingMatrix
	opts Options
	acc  *stats.CovAccumulator

	vars      []float64 // cached variance estimates
	varsAt    int       // snapshot count the cache was computed at
	keptCache []int
	remCache  []int
}

// New creates a LIA over the reduced routing matrix.
func New(rm *topology.RoutingMatrix, opts Options) *LIA {
	return &LIA{rm: rm, opts: opts, acc: stats.NewCovAccumulator(rm.NumPaths())}
}

// RoutingMatrix returns the matrix the instance operates on.
func (l *LIA) RoutingMatrix() *topology.RoutingMatrix { return l.rm }

// AddSnapshot folds one learning snapshot of per-path log transmission
// rates into the covariance moments.
func (l *LIA) AddSnapshot(y []float64) {
	l.acc.Add(y)
}

// Snapshots returns the number of learning snapshots absorbed so far.
func (l *LIA) Snapshots() int { return l.acc.Count() }

// Variances returns the Phase-1 estimates of the per-link variances,
// recomputing only when new snapshots arrived since the last call.
func (l *LIA) Variances() ([]float64, error) {
	if l.vars != nil && l.varsAt == l.acc.Count() {
		return l.vars, nil
	}
	v, err := EstimateVariances(l.rm, l.acc, l.opts.Variance)
	if err != nil {
		return nil, err
	}
	l.vars, l.varsAt = v, l.acc.Count()
	l.keptCache, l.remCache = nil, nil
	return v, nil
}

// Result is the output of one Phase-2 inference.
type Result struct {
	// LossRates[k] is the inferred per-link metric: the mean loss rate under
	// ObserveLogTransmission, or the clamped linear metric (e.g. excess
	// delay) under ObserveLinear. Eliminated links report 0.
	LossRates []float64
	// LogRates[k] is the raw reduced-system solution (log transmission rate,
	// or the linear metric; 0 for eliminated links).
	LogRates []float64
	// Kept and Removed partition the virtual links: Kept columns form the
	// full-column-rank R*, Removed columns were approximated as loss-free.
	Kept, Removed []int
	// Variances are the Phase-1 estimates used for the ordering.
	Variances []float64
	// Epoch is the ingestion epoch of the Phase-1 state behind Kept/
	// Variances, when the producer tracks one (lia.Engine does); 0
	// otherwise.
	Epoch int
	// Unresolved lists links whose owning sharded component failed to
	// produce estimates (see lia.ShardedEngine.Infer): their entries above
	// are zero and they appear in neither Kept nor Removed. Nil everywhere
	// else — a plain engine's Result never carries unresolved links.
	Unresolved []int
}

// Congested classifies every virtual link against the threshold tl.
func (r *Result) Congested(tl float64) []bool {
	out := make([]bool, len(r.LossRates))
	for k, q := range r.LossRates {
		out[k] = q > tl
	}
	return out
}

// CongestedGated classifies links as congested only when the inferred rate
// exceeds tl AND the Phase-1 variance exceeds varGate. Under the
// monotonicity assumption S.3 a link with mean loss above tl cannot have a
// variance below the variance at tl, so gating removes false positives
// caused by one-snapshot inference noise on links the learning phase saw to
// be quiet. VarGateAt derives a suitable gate.
func (r *Result) CongestedGated(tl, varGate float64) []bool {
	out := r.Congested(tl)
	for k := range out {
		if out[k] && r.Variances[k] <= varGate {
			out[k] = false
		}
	}
	return out
}

// VarGateAt estimates the variance a link sitting exactly at the congestion
// threshold tl would exhibit across snapshots measured with S probes: the
// sum of the level-redraw variance (uniform on [0, tl]: tl²/12) and the
// burst-inflated sampling variance of the realized rate (≈2.5·tl/S for the
// paper's Gilbert parameter), with a 3× safety factor.
func VarGateAt(tl float64, probes int) float64 {
	if probes <= 0 {
		probes = 1000
	}
	return 3 * (tl*tl/12 + 2.5*tl/float64(probes))
}

// Infer runs Phase 2 on the newest snapshot's per-path log transmission
// rates. The learning snapshots previously added determine the elimination
// order; the elimination itself is cached across calls until new learning
// data arrives.
func (l *LIA) Infer(y []float64) (*Result, error) {
	vars, err := l.Variances()
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	if l.keptCache == nil {
		l.keptCache, l.remCache = EliminateWorkers(l.rm, vars, l.opts.Strategy, l.opts.Variance.Workers)
	}
	kept, removed := l.keptCache, l.remCache
	x, err := SolveReduced(l.rm, kept, y)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	return AssembleResult(l.rm, l.opts.Observation, vars, kept, removed, x), nil
}

// AssembleResult maps the reduced-system solution x (aligned with kept) back
// to full per-link vectors under the given observation semantics. The input
// slices are stored in the Result, not copied.
func AssembleResult(rm *topology.RoutingMatrix, obs Observation, vars []float64, kept, removed []int, x []float64) *Result {
	res := &Result{
		LossRates: make([]float64, rm.NumLinks()),
		LogRates:  make([]float64, rm.NumLinks()),
		Kept:      kept,
		Removed:   removed,
		Variances: vars,
	}
	for idx, k := range kept {
		res.LogRates[k] = x[idx]
		switch obs {
		case ObserveLinear:
			v := x[idx]
			if v < 0 {
				v = 0
			}
			res.LossRates[k] = v
		default:
			// Loss = 1 − e^x, clamped to [0, 1]: sampling noise can push the
			// estimated log transmission rate slightly above 0.
			loss := 1 - math.Exp(x[idx])
			if loss < 0 {
				loss = 0
			} else if loss > 1 {
				loss = 1
			}
			res.LossRates[k] = loss
		}
	}
	return res
}

// InferCongested is a convenience wrapper returning the congestion
// classification at the configured threshold.
func (l *LIA) InferCongested(y []float64) ([]bool, *Result, error) {
	res, err := l.Infer(y)
	if err != nil {
		return nil, nil, err
	}
	return res.Congested(l.opts.EffectiveThreshold()), res, nil
}
