// Package core implements the paper's contribution: the Loss Inference
// Algorithm (LIA) of Section 5.
//
// Phase 1 learns the per-link variances v of the log transmission rates by
// solving Σ* = A·v (Lemma 1), where A is the augmented routing matrix of
// Definition 1 — guaranteed to have full column rank by Theorem 1 whenever
// routing is time-invariant (T.1) and free of route fluttering (T.2).
//
// Phase 2 sorts links by learned variance, eliminates the least-variant
// (least congested) columns from the first-order system Y = R·X until the
// reduced matrix R* has full column rank, solves the reduced system for the
// newest snapshot, and reports zero loss for the eliminated links.
package core

import (
	"lia/internal/linalg"
	"lia/internal/topology"
)

// PairVisitor receives one augmented-matrix equation: the path pair (i ≤ j)
// and the support of row Ri∗ ⊗ Rj∗, i.e. the virtual links common to both
// paths, as int32-packed link indices (the topology pair index's native
// width). Pairs with empty intersections are visited with an empty support.
type PairVisitor func(i, j int, support []int32)

// VisitPairs enumerates every row of the augmented matrix A in the packed
// upper-triangular order used throughout this package ((0,0), (0,1), …,
// (0,np−1), (1,1), …). Supports come from the routing matrix's cached
// pair-support index: they are stable views that may be retained but must
// not be modified.
func VisitPairs(rm *topology.RoutingMatrix, visit PairVisitor) {
	VisitPairsRange(rm, 0, rm.NumPairs(), visit)
}

// VisitPairsRange enumerates the augmented rows with packed pair indices in
// [from, to). Disjoint ranges can be walked concurrently; the sharded
// Phase-1 accumulators rely on this to partition the O(np²) equation stream
// across goroutines.
func VisitPairsRange(rm *topology.RoutingMatrix, from, to int, visit PairVisitor) {
	rm.VisitPairSupports(from, to, visit)
}

// AugmentedDense materializes the full augmented matrix A of Definition 1:
// np(np+1)/2 rows (one per unordered path pair, including i = j) by nc
// columns. Exposed for tests and small-topology analysis; the estimators use
// VisitPairs / Gram instead to avoid materializing A.
func AugmentedDense(rm *topology.RoutingMatrix) *linalg.Dense {
	np, nc := rm.NumPaths(), rm.NumLinks()
	a := linalg.NewDense(np*(np+1)/2, nc)
	row := 0
	VisitPairs(rm, func(i, j int, support []int32) {
		for _, k := range support {
			a.Set(row, int(k), 1)
		}
		row++
	})
	return a
}

// Gram accumulates the normal equations AᵀA·v = AᵀΣ* without materializing
// A: each equation contributes its support outer-product to G = AᵀA and its
// measured covariance to the right-hand side. This is what lets the variance
// estimator scale to large path sets (the paper reports solving networks
// with thousands of nodes in seconds).
type Gram struct {
	g   *linalg.Dense
	rhs []float64
	n   int // equations folded in
}

// NewGram creates an accumulator over nc links.
func NewGram(nc int) *Gram {
	return &Gram{g: linalg.NewDense(nc, nc), rhs: make([]float64, nc)}
}

// AddEquation folds one augmented row: support ⊗ support into G and
// sigma·support into the right-hand side.
func (gr *Gram) AddEquation(support []int32, sigma float64) {
	for _, k := range support {
		gr.rhs[k] += sigma
		rowk := gr.g.Row(int(k))
		for _, l := range support {
			rowk[l]++
		}
	}
	gr.n++
}

// RemoveEquation cancels a previously added equation (used for incremental
// updates when paths appear or disappear, Section 5.1's "only the rows
// corresponding to the changes need to be updated").
func (gr *Gram) RemoveEquation(support []int32, sigma float64) {
	for _, k := range support {
		gr.rhs[k] -= sigma
		rowk := gr.g.Row(int(k))
		for _, l := range support {
			rowk[l]--
		}
	}
	gr.n--
}

// Merge folds another accumulator over the same link set into this one.
// It mirrors the reduction rule of the sharded Phase-1 pipeline (whose
// production fold lives inline in accumulateGram): G entries are small
// integer counts, so their merge is exact in floating point regardless of
// order, while the right-hand side is order-sensitive — callers that need
// determinism must merge partial Grams in a fixed order.
func (gr *Gram) Merge(other *Gram) {
	gr.g.AddMat(other.g)
	for k, v := range other.rhs {
		gr.rhs[k] += v
	}
	gr.n += other.n
}

// Equations returns the number of equations currently folded in.
func (gr *Gram) Equations() int { return gr.n }

// Matrix returns the accumulated AᵀA (shared storage; treat as read-only).
func (gr *Gram) Matrix() *linalg.Dense { return gr.g }

// RHS returns the accumulated AᵀΣ* (shared storage; treat as read-only).
func (gr *Gram) RHS() []float64 { return gr.rhs }

// Solve solves the normal equations for v by Cholesky factorization,
// falling back to a minimally regularized factorization when sampling noise
// or dropped equations leave G semi-definite.
func (gr *Gram) Solve() ([]float64, error) {
	ch, _, err := linalg.NewCholeskyRegularized(gr.g)
	if err != nil {
		return nil, err
	}
	return ch.Solve(gr.rhs), nil
}

// AugmentedRank returns rank(A) computed through the (much smaller) Gram
// matrix: rank(A) = rank(AᵀA).
func AugmentedRank(rm *topology.RoutingMatrix) int {
	gr := NewGram(rm.NumLinks())
	VisitPairs(rm, func(i, j int, support []int32) {
		if len(support) > 0 {
			gr.AddEquation(support, 0)
		}
	})
	return linalg.Rank(gr.g)
}

// Identifiable reports whether the link variances are statistically
// identifiable from end-to-end measurements on this routing matrix, i.e.
// whether A has full column rank (Lemma 2). Theorem 1 guarantees this for
// every topology satisfying Assumptions T.1 and T.2.
func Identifiable(rm *topology.RoutingMatrix) bool {
	return AugmentedRank(rm) == rm.NumLinks()
}
