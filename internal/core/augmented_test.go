package core

import (
	"math/rand/v2"
	"testing"

	"lia/internal/linalg"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// figure1 returns the routing matrix of the paper's Figure 1 single-beacon
// example (3 paths, 5 links; R rank deficient, A full column rank).
func figure1(t *testing.T) *topology.RoutingMatrix {
	t.Helper()
	rm, err := topology.Build([]topology.Path{
		{Beacon: 0, Dst: 2, Links: []int{1, 2}},
		{Beacon: 0, Dst: 4, Links: []int{1, 3, 4}},
		{Beacon: 0, Dst: 5, Links: []int{1, 3, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

// figure2 returns the two-beacon example of Figure 2 (6 paths, 8 links).
//
//	B1=0, B2=1, D1=2, D2=3, D3=4, internal a=5, b=6.
//	B1→a (1), a→D1 (2), a→b (3), b→D2 (4), b→D3 (5), B2→b (6), B2→D1 (7)… the
//	exact figure is not fully specified in text, so we use a faithful variant:
//	both beacons reach all three destinations through a shared internal chain.
func figure2(t *testing.T) *topology.RoutingMatrix {
	t.Helper()
	rm, err := topology.Build([]topology.Path{
		{Beacon: 0, Dst: 2, Links: []int{1, 2}},
		{Beacon: 0, Dst: 3, Links: []int{1, 3, 4}},
		{Beacon: 0, Dst: 4, Links: []int{1, 3, 5}},
		{Beacon: 1, Dst: 2, Links: []int{6, 7, 2}},
		{Beacon: 1, Dst: 3, Links: []int{6, 8, 4}},
		{Beacon: 1, Dst: 4, Links: []int{6, 8, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestAugmentedDenseShape(t *testing.T) {
	rm := figure1(t)
	a := AugmentedDense(rm)
	r, c := a.Dims()
	if r != 6 || c != 5 { // np(np+1)/2 = 6 rows
		t.Fatalf("A is %d×%d, want 6×5", r, c)
	}
	// Every entry is 0/1 and row (i,i) equals row i of R.
	d := rm.Dense()
	for j := 0; j < c; j++ {
		if a.At(0, j) != d.At(0, j) {
			t.Fatalf("A row (0,0) != R row 0 at col %d", j)
		}
	}
}

func TestFigure1Identifiability(t *testing.T) {
	rm := figure1(t)
	// First moments: rank deficient.
	if rm.Rank() >= rm.NumLinks() {
		t.Fatal("R should be rank deficient in the Figure 1 example")
	}
	// Second moments: full column rank (Lemma 3 / Theorem 1).
	if got := AugmentedRank(rm); got != rm.NumLinks() {
		t.Fatalf("rank(A) = %d, want %d", got, rm.NumLinks())
	}
	if !Identifiable(rm) {
		t.Fatal("Figure 1 example must be identifiable")
	}
}

func TestFigure2Identifiability(t *testing.T) {
	rm := figure2(t)
	if !Identifiable(rm) {
		t.Fatal("Figure 2 example must be identifiable")
	}
}

func TestAugmentedRankMatchesDense(t *testing.T) {
	// The Gram-based rank must agree with the rank of the explicit A.
	for name, rm := range map[string]*topology.RoutingMatrix{
		"fig1": figure1(t),
		"fig2": figure2(t),
	} {
		dense := linalg.Rank(AugmentedDense(rm))
		gram := AugmentedRank(rm)
		if dense != gram {
			t.Errorf("%s: rank via A = %d, via Gram = %d", name, dense, gram)
		}
	}
}

func TestTheorem1OnRandomTrees(t *testing.T) {
	// Property (Lemma 3): every single-beacon tree topology is identifiable.
	rng := rand.New(rand.NewPCG(42, 1))
	for trial := 0; trial < 10; trial++ {
		net := topogen.Tree(rng, 30+rng.IntN(50), 2+rng.IntN(8))
		paths := topogen.Routes(net, []int{0}, net.Hosts)
		rm, err := topology.Build(paths)
		if err != nil {
			t.Fatal(err)
		}
		if !Identifiable(rm) {
			t.Fatalf("trial %d: tree topology not identifiable (nc=%d, rank=%d)",
				trial, rm.NumLinks(), AugmentedRank(rm))
		}
	}
}

func TestTheorem1OnRandomMeshes(t *testing.T) {
	// Property (Theorem 1): multi-beacon mesh topologies with tree-consistent
	// routing and no fluttering are identifiable.
	rng := rand.New(rand.NewPCG(43, 2))
	gens := []func() *topogen.Network{
		func() *topogen.Network { return topogen.Waxman(rng, 60, 0.2, 0.25) },
		func() *topogen.Network { return topogen.BarabasiAlbert(rng, 60, 2) },
		func() *topogen.Network { return topogen.HierarchicalTopDown(rng, 4, 12) },
	}
	for gi, gen := range gens {
		net := gen()
		hosts := topogen.SelectHosts(rng, net, 8)
		paths := topogen.Routes(net, hosts, hosts)
		paths, _ = topology.RemoveFluttering(paths)
		rm, err := topology.Build(paths)
		if err != nil {
			t.Fatal(err)
		}
		if !Identifiable(rm) {
			t.Errorf("generator %d (%s): mesh not identifiable (np=%d nc=%d rank(A)=%d)",
				gi, net.Name, rm.NumPaths(), rm.NumLinks(), AugmentedRank(rm))
		}
	}
}

func TestGramAddRemoveEquation(t *testing.T) {
	gr := NewGram(3)
	gr.AddEquation([]int32{0, 2}, 1.5)
	gr.AddEquation([]int32{1}, 0.5)
	if gr.Equations() != 2 {
		t.Fatalf("Equations = %d, want 2", gr.Equations())
	}
	gr.RemoveEquation([]int32{1}, 0.5)
	if gr.Equations() != 1 {
		t.Fatalf("Equations = %d, want 1 after removal", gr.Equations())
	}
	if gr.Matrix().At(1, 1) != 0 || gr.RHS()[1] != 0 {
		t.Fatal("RemoveEquation did not cancel the contribution")
	}
	if gr.Matrix().At(0, 2) != 1 || gr.Matrix().At(2, 0) != 1 {
		t.Fatal("AddEquation should fill the symmetric outer product")
	}
}

func TestVisitPairsCountsAndOrder(t *testing.T) {
	rm := figure1(t)
	count := 0
	var lastI, lastJ = -1, -1
	VisitPairs(rm, func(i, j int, support []int32) {
		if i > j {
			t.Fatalf("VisitPairs emitted i=%d > j=%d", i, j)
		}
		if i < lastI || (i == lastI && j <= lastJ) {
			t.Fatalf("VisitPairs order violated: (%d,%d) after (%d,%d)", i, j, lastI, lastJ)
		}
		lastI, lastJ = i, j
		count++
	})
	if want := 3 * 4 / 2; count != want {
		t.Fatalf("VisitPairs count = %d, want %d", count, want)
	}
}
