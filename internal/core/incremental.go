package core

import (
	"fmt"

	"lia/internal/stats"
	"lia/internal/topology"
)

// IncrementalLearner maintains the normal-equations system AᵀA·v = AᵀΣ*
// under routing changes. Section 5.1 notes that computing A dominates the
// setup cost but "when there are changes in the routing matrix R due to
// arrivals of new beacons, removals of existing beacons or routing changes,
// we can rapidly modify A ... because only the rows corresponding to the
// changes need to be updated". This type implements exactly that: paths can
// be deactivated and reactivated, and only the equations involving those
// paths are touched.
//
// The measured covariances are supplied by the caller (typically a
// stats.CovAccumulator over the active paths' snapshots).
type IncrementalLearner struct {
	rm     *topology.RoutingMatrix
	opts   VarianceOptions
	gram   *Gram
	active []bool
	// sigma caches the covariance used for each folded equation so it can
	// be cancelled exactly on removal. Keyed by packed pair index.
	sigma map[int]float64
}

// NewIncrementalLearner builds the full system for all paths of rm using the
// covariances in cov.
func NewIncrementalLearner(rm *topology.RoutingMatrix, cov stats.CovView, opts VarianceOptions) (*IncrementalLearner, error) {
	if cov.Count() < 2 {
		return nil, ErrTooFewSnapshots
	}
	if cov.Dim() != rm.NumPaths() {
		return nil, fmt.Errorf("core: covariance over %d paths, routing matrix has %d: %w",
			cov.Dim(), rm.NumPaths(), ErrDimensionMismatch)
	}
	if err := rm.PrecomputePairSupports(); err != nil {
		return nil, fmt.Errorf("core: incremental system: %w", err)
	}
	il := &IncrementalLearner{
		rm:     rm,
		opts:   opts,
		gram:   NewGram(rm.NumLinks()),
		active: make([]bool, rm.NumPaths()),
		sigma:  make(map[int]float64),
	}
	for i := range il.active {
		il.active[i] = true
	}
	np := rm.NumPaths()
	VisitPairs(rm, func(i, j int, support []int32) {
		if len(support) == 0 {
			return
		}
		s, keep := opts.adjust(cov.Cov(i, j))
		if !keep {
			return
		}
		il.gram.AddEquation(support, s)
		il.sigma[pairIndex(i, j, np)] = s
	})
	return il, nil
}

// pairIndex packs (i ≤ j) into the upper-triangular row index used
// throughout the package.
func pairIndex(i, j, np int) int {
	return i*np - i*(i-1)/2 + (j - i)
}

// Equations returns the number of covariance equations currently folded in.
func (il *IncrementalLearner) Equations() int { return il.gram.Equations() }

// DeactivatePath removes every equation involving path i — the update for a
// departed beacon or a rerouted path. Only O(np) equations are touched,
// versus O(np²) for a rebuild.
func (il *IncrementalLearner) DeactivatePath(i int) error {
	if err := il.checkPath(i); err != nil {
		return err
	}
	if !il.active[i] {
		return fmt.Errorf("core: path %d already inactive", i)
	}
	il.forEachPairOf(i, func(a, b int, support []int32) {
		key := pairIndex(a, b, il.rm.NumPaths())
		if s, ok := il.sigma[key]; ok {
			il.gram.RemoveEquation(support, s)
			delete(il.sigma, key)
		}
	})
	il.active[i] = false
	return nil
}

// ReactivatePath re-adds the equations of path i using covariances from cov
// (which must cover all paths of the routing matrix).
func (il *IncrementalLearner) ReactivatePath(i int, cov stats.CovView) error {
	if err := il.checkPath(i); err != nil {
		return err
	}
	if il.active[i] {
		return fmt.Errorf("core: path %d already active", i)
	}
	if cov.Dim() != il.rm.NumPaths() {
		return fmt.Errorf("core: covariance over %d paths, routing matrix has %d: %w",
			cov.Dim(), il.rm.NumPaths(), ErrDimensionMismatch)
	}
	il.active[i] = true
	il.forEachPairOf(i, func(a, b int, support []int32) {
		s, keep := il.opts.adjust(cov.Cov(a, b))
		if !keep {
			return
		}
		il.gram.AddEquation(support, s)
		il.sigma[pairIndex(a, b, il.rm.NumPaths())] = s
	})
	return nil
}

// forEachPairOf visits every pair (a ≤ b) that involves path i and at least
// one other *active* path (including the self pair), with a non-empty
// support.
func (il *IncrementalLearner) forEachPairOf(i int, visit func(a, b int, support []int32)) {
	for j := 0; j < il.rm.NumPaths(); j++ {
		if j != i && !il.active[j] {
			continue
		}
		a, b := i, j
		if b < a {
			a, b = b, a
		}
		support := il.rm.PairSupport(a, b)
		if len(support) == 0 {
			continue
		}
		visit(a, b, support)
	}
}

func (il *IncrementalLearner) checkPath(i int) error {
	if i < 0 || i >= il.rm.NumPaths() {
		return fmt.Errorf("core: path %d out of range [0, %d)", i, il.rm.NumPaths())
	}
	return nil
}

// Variances solves the current system. Links covered only by inactive paths
// come out of the regularized solve near zero; callers typically mask them
// with CoveredLinks.
func (il *IncrementalLearner) Variances() ([]float64, error) {
	v, err := il.gram.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: incremental variance solve: %w", err)
	}
	return v, nil
}

// CoveredLinks reports which virtual links are traversed by at least one
// active path.
func (il *IncrementalLearner) CoveredLinks() []bool {
	out := make([]bool, il.rm.NumLinks())
	for k := 0; k < il.rm.NumLinks(); k++ {
		for _, p := range il.rm.PathsThrough(k) {
			if il.active[p] {
				out[k] = true
				break
			}
		}
	}
	return out
}

// RebuildCheck recomputes the Gram system from scratch over the active
// paths and reports the largest absolute deviation from the incrementally
// maintained one — a consistency diagnostic used by tests and long-running
// deployments.
func (il *IncrementalLearner) RebuildCheck(cov stats.CovView) (float64, error) {
	fresh := NewGram(il.rm.NumLinks())
	VisitPairs(il.rm, func(i, j int, support []int32) {
		if !il.active[i] || !il.active[j] || len(support) == 0 {
			return
		}
		s, keep := il.opts.adjust(cov.Cov(i, j))
		if !keep {
			return
		}
		fresh.AddEquation(support, s)
	})
	var maxDev float64
	nc := il.rm.NumLinks()
	for a := 0; a < nc; a++ {
		for b := 0; b < nc; b++ {
			d := fresh.Matrix().At(a, b) - il.gram.Matrix().At(a, b)
			if d < 0 {
				d = -d
			}
			if d > maxDev {
				maxDev = d
			}
		}
		d := fresh.RHS()[a] - il.gram.RHS()[a]
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
	}
	return maxDev, nil
}
