package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"lia/internal/topogen"
	"lia/internal/topology"
)

func TestIncrementalLearnerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 1))
	net := topogen.Tree(rng, 60, 5)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, rm.NumLinks())
	for k := range truth {
		if rng.Float64() < 0.15 {
			truth[k] = 0.02
		} else {
			truth[k] = 1e-7
		}
	}
	cov := syntheticSnapshots(rng, rm, truth, 2000)

	il, err := NewIncrementalLearner(rm, cov, VarianceOptions{NegPolicy: KeepNegativeCov})
	if err != nil {
		t.Fatal(err)
	}
	vInc, err := il.Variances()
	if err != nil {
		t.Fatal(err)
	}
	vBatch, err := EstimateVariances(rm, cov, VarianceOptions{
		Method:    VarianceNormalEquations,
		NegPolicy: KeepNegativeCov,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := range vBatch {
		if math.Abs(vInc[k]-vBatch[k]) > 1e-9 {
			t.Fatalf("link %d: incremental %g vs batch %g", k, vInc[k], vBatch[k])
		}
	}
}

func TestIncrementalDeactivateReactivateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 2))
	net := topogen.Tree(rng, 50, 4)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, rm.NumLinks())
	for k := range truth {
		truth[k] = 1e-4 * rng.Float64()
	}
	cov := syntheticSnapshots(rng, rm, truth, 500)
	il, err := NewIncrementalLearner(rm, cov, VarianceOptions{NegPolicy: KeepNegativeCov})
	if err != nil {
		t.Fatal(err)
	}
	before := il.Equations()

	// Deactivate two paths; the system must match a from-scratch rebuild.
	for _, p := range []int{0, 3} {
		if err := il.DeactivatePath(p); err != nil {
			t.Fatal(err)
		}
	}
	if dev, err := il.RebuildCheck(cov); err != nil || dev > 1e-9 {
		t.Fatalf("after deactivation: deviation %g, err %v", dev, err)
	}
	covered := il.CoveredLinks()
	uncovered := 0
	for _, c := range covered {
		if !c {
			uncovered++
		}
	}
	if uncovered == 0 {
		t.Log("note: all links still covered after removing two paths (dense tree)")
	}

	// Reactivate: the system must return to the original equation count and
	// contents.
	for _, p := range []int{0, 3} {
		if err := il.ReactivatePath(p, cov); err != nil {
			t.Fatal(err)
		}
	}
	if il.Equations() != before {
		t.Fatalf("equations %d after round trip, want %d", il.Equations(), before)
	}
	if dev, err := il.RebuildCheck(cov); err != nil || dev > 1e-9 {
		t.Fatalf("after reactivation: deviation %g, err %v", dev, err)
	}
}

func TestIncrementalErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 3))
	rm := figure1(t)
	truth := []float64{0.01, 0, 0.01, 0, 0}
	cov := syntheticSnapshots(rng, rm, truth, 100)
	il, err := NewIncrementalLearner(rm, cov, VarianceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := il.DeactivatePath(99); err == nil {
		t.Error("out-of-range deactivate should fail")
	}
	if err := il.ReactivatePath(0, cov); err == nil {
		t.Error("reactivating an active path should fail")
	}
	if err := il.DeactivatePath(0); err != nil {
		t.Fatal(err)
	}
	if err := il.DeactivatePath(0); err == nil {
		t.Error("double deactivate should fail")
	}
}

func TestVarGateAt(t *testing.T) {
	g := VarGateAt(0.002, 1000)
	if g <= 0 {
		t.Fatal("gate must be positive")
	}
	// More probes → tighter sampling variance → smaller gate.
	if VarGateAt(0.002, 4000) >= g {
		t.Error("gate should shrink with more probes")
	}
	// Default probes fallback.
	if VarGateAt(0.002, 0) != g {
		t.Error("zero probes should default to 1000")
	}
}

func TestCongestedGated(t *testing.T) {
	r := &Result{
		LossRates: []float64{0.05, 0.05, 0.001},
		Variances: []float64{1e-3, 1e-9, 1e-3},
	}
	got := r.CongestedGated(0.002, 1e-5)
	want := []bool{true, false, false} // link 1 gated out by variance
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CongestedGated = %v, want %v", got, want)
		}
	}
}

func TestObserveLinearDelays(t *testing.T) {
	// The Section 8 delay extension: plant additive link delays, verify the
	// linear-observation mode recovers them for kept links.
	rng := rand.New(rand.NewPCG(44, 4))
	rm := figure1(t)
	congested := []bool{true, false, true, false, false}
	draw := func() []float64 {
		d := make([]float64, rm.NumLinks())
		for k := range d {
			if congested[k] {
				d[k] = 5 + 10*rng.Float64()
			} else {
				d[k] = 0.01 * rng.Float64()
			}
		}
		return d
	}
	l := New(rm, Options{Observation: ObserveLinear})
	for s := 0; s < 300; s++ {
		d := draw()
		y := make([]float64, rm.NumPaths())
		for i := range y {
			for _, k := range rm.Row(i) {
				y[i] += d[k]
			}
		}
		l.AddSnapshot(y)
	}
	truth := draw()
	y := make([]float64, rm.NumPaths())
	for i := range y {
		for _, k := range rm.Row(i) {
			y[i] += truth[k]
		}
	}
	res, err := l.Infer(y)
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range congested {
		if !c {
			continue
		}
		if math.Abs(res.LossRates[k]-truth[k]) > 0.1 {
			t.Errorf("link %d delay: inferred %.3f, want %.3f", k, res.LossRates[k], truth[k])
		}
	}
}
