package core

import "errors"

// Typed sentinel errors for the failure modes callers are expected to branch
// on with errors.Is. The public root package re-exports these values, so the
// engine room and the facade agree on identity.
var (
	// ErrTooFewSnapshots is returned when variance estimation is attempted
	// with fewer than two learning snapshots.
	ErrTooFewSnapshots = errors.New("core: need at least 2 snapshots to estimate covariances")

	// ErrDimensionMismatch is returned when a snapshot or covariance
	// accumulator does not match the routing matrix's path count.
	ErrDimensionMismatch = errors.New("core: dimension mismatch")

	// ErrUnidentifiable is returned when the link variances cannot be
	// resolved from the available covariance equations — the augmented
	// matrix A lost full column rank (route fluttering violating T.2, or
	// equations discarded by DropNegativeCov).
	ErrUnidentifiable = errors.New("core: link variances not identifiable from the available covariance equations")
)
