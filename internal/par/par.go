// Package par provides the one work-distribution primitive shared by the
// parallel Phase-1 stages (pair-index build, sharded Gram accumulation,
// sharded equation collection): a fixed item space pulled by a bounded pool
// through an atomic counter. Determinism is the caller's concern — items
// must write disjoint state, and any order-sensitive reduction must happen
// after Do returns, keyed by item index.
package par

import (
	"sync"
	"sync/atomic"
)

// Do runs fn(worker, item) for every item in [0, items), distributing items
// dynamically over min(workers, items) goroutines. Each worker index is
// owned by exactly one goroutine, so fn may keep per-worker state indexed by
// its first argument without synchronization. workers ≤ 1 runs every item
// inline on worker 0. Do returns when all items have been processed.
func Do(workers, items int, fn func(worker, item int)) {
	if items <= 0 {
		return
	}
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		for i := 0; i < items; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= items {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
