package par

import (
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, items := range []int{0, 1, 5, 1000} {
			counts := make([]atomic.Int32, items)
			Do(workers, items, func(_, i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d items=%d: item %d ran %d times", workers, items, i, got)
				}
			}
		}
	}
}

func TestDoWorkerOwnership(t *testing.T) {
	// A worker index must never be shared: per-worker tallies written
	// without synchronization have to survive the race detector.
	const workers, items = 8, 500
	tallies := make([][]int, workers)
	Do(workers, items, func(w, i int) {
		tallies[w] = append(tallies[w], i)
	})
	total := 0
	for _, tl := range tallies {
		total += len(tl)
	}
	if total != items {
		t.Fatalf("workers processed %d items, want %d", total, items)
	}
}

func TestDoInlineUsesWorkerZero(t *testing.T) {
	Do(1, 10, func(w, _ int) {
		if w != 0 {
			t.Fatalf("inline run used worker %d", w)
		}
	})
}
