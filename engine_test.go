package lia_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"lia"
)

func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong-length snapshots are rejected with ErrDimensionMismatch.
	bad := make([]float64, rm.NumPaths()+1)
	if err := eng.Ingest(bad); !errors.Is(err, lia.ErrDimensionMismatch) {
		t.Fatalf("Ingest dim error = %v, want ErrDimensionMismatch", err)
	}
	if err := eng.IngestBatch([][]float64{make([]float64, rm.NumPaths()), bad}); !errors.Is(err, lia.ErrDimensionMismatch) {
		t.Fatalf("IngestBatch dim error = %v, want ErrDimensionMismatch", err)
	}
	if eng.Snapshots() != 0 {
		t.Fatalf("failed IngestBatch folded %d snapshots, want 0", eng.Snapshots())
	}
	if _, err := eng.Infer(ctx, bad); !errors.Is(err, lia.ErrDimensionMismatch) {
		t.Fatalf("Infer dim error = %v, want ErrDimensionMismatch", err)
	}

	// Inference before two learning snapshots: ErrTooFewSnapshots.
	y := make([]float64, rm.NumPaths())
	if _, err := eng.Infer(ctx, y); !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Fatalf("Infer with 0 snapshots = %v, want ErrTooFewSnapshots", err)
	}
	if err := eng.Ingest(y); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Variances(ctx); !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Fatalf("Variances with 1 snapshot = %v, want ErrTooFewSnapshots", err)
	}

	// Watch has the same requirement.
	if _, err := eng.Watch(); !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Fatalf("Watch with 1 snapshot = %v, want ErrTooFewSnapshots", err)
	}
}

func TestSentinelUnidentifiable(t *testing.T) {
	// Two paths sharing a link, with anti-correlated observations: the
	// single cross-pair covariance equation comes out negative, and the
	// paper's drop rule discards it — leaving 2 equations for 3 virtual
	// links. The engine must diagnose this as ErrUnidentifiable.
	ctx := context.Background()
	rm, err := lia.NewTopology([]lia.Path{
		{Beacon: 0, Dst: 1, Links: []int{1, 2}},
		{Beacon: 0, Dst: 2, Links: []int{1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm, lia.WithNegCovPolicy(lia.NegDrop))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		y := []float64{-0.01, -0.02}
		if i%2 == 0 {
			y = []float64{-0.02, -0.01}
		}
		if err := eng.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Infer(ctx, []float64{-0.01, -0.01}); !errors.Is(err, lia.ErrUnidentifiable) {
		t.Fatalf("Infer on dropped-equation system = %v, want ErrUnidentifiable", err)
	}
	// The default clamp policy keeps the equation and stays solvable.
	clamped, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		y := []float64{-0.01, -0.02}
		if i%2 == 0 {
			y = []float64{-0.02, -0.01}
		}
		if err := clamped.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := clamped.Infer(ctx, []float64{-0.01, -0.01}); err != nil {
		t.Fatalf("clamp policy should stay identifiable, got %v", err)
	}
}

func TestThresholdOption(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	def, _ := lia.NewEngine(rm)
	if got := def.Threshold(); got != lia.DefaultThreshold {
		t.Fatalf("default threshold = %g, want %g", got, lia.DefaultThreshold)
	}
	custom, _ := lia.NewEngine(rm, lia.WithThreshold(0.01))
	if got := custom.Threshold(); got != 0.01 {
		t.Fatalf("threshold = %g, want 0.01", got)
	}
	// An explicit zero is honored, not silently replaced by the default.
	zero, _ := lia.NewEngine(rm, lia.WithThreshold(0))
	if got := zero.Threshold(); got != 0 {
		t.Fatalf("explicit zero threshold = %g, want 0", got)
	}
}

func TestThresholdZeroClassifies(t *testing.T) {
	// With tl = 0, InferCongested must flag every link with any inferred
	// loss — the behaviour the old threshold() default silently prevented.
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm, lia.WithThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	src := lia.NewSimSource(rm, lia.SimConfig{Probes: 500, Seed: 21, CongestedFraction: 0.3})
	if _, err := eng.Consume(ctx, lia.Limit(src, 30)); err != nil {
		t.Fatal(err)
	}
	probe, err := src.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	congested, res, err := eng.InferCongested(ctx, probe.Y)
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range congested {
		if want := res.LossRates[k] > 0; c != want {
			t.Fatalf("link %d: congested=%v with loss %g under tl=0", k, c, res.LossRates[k])
		}
	}
}

func TestWatcherDeactivateReactivate(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	src := lia.NewSimSource(rm, lia.SimConfig{Probes: 800, Seed: 17, CongestedFraction: 0.2})
	if _, err := eng.Consume(ctx, lia.Limit(src, 30)); err != nil {
		t.Fatal(err)
	}

	w, err := eng.Watch()
	if err != nil {
		t.Fatal(err)
	}
	before, err := w.Variances()
	if err != nil {
		t.Fatal(err)
	}
	eqBefore := w.Equations()

	if err := w.Deactivate(0); err != nil {
		t.Fatal(err)
	}
	if w.Active(0) {
		t.Fatal("path 0 still active after Deactivate")
	}
	if err := w.Deactivate(0); err == nil {
		t.Fatal("double Deactivate must fail")
	}
	if w.Equations() >= eqBefore {
		t.Fatalf("equations did not shrink: %d -> %d", eqBefore, w.Equations())
	}
	covered := w.Covered()
	if len(covered) != rm.NumLinks() {
		t.Fatalf("Covered length %d, want %d", len(covered), rm.NumLinks())
	}
	if _, err := w.Variances(); err != nil {
		t.Fatalf("variances over deactivated system: %v", err)
	}

	if err := w.Reactivate(0); err != nil {
		t.Fatal(err)
	}
	if w.Equations() != eqBefore {
		t.Fatalf("equations after reactivate = %d, want %d", w.Equations(), eqBefore)
	}
	after, err := w.Variances()
	if err != nil {
		t.Fatal(err)
	}
	for k := range before {
		if d := math.Abs(after[k] - before[k]); d > 1e-9*(1+math.Abs(before[k])) {
			t.Fatalf("link %d variance drifted across deactivate/reactivate: %g vs %g", k, before[k], after[k])
		}
	}

	// Refresh re-syncs to the engine's newer moments, preserving the
	// active set.
	if err := w.Deactivate(1); err != nil {
		t.Fatal(err)
	}
	snap, err := src.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(snap.Y); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	if w.Active(1) {
		t.Fatal("Refresh must preserve the deactivated set")
	}
	if _, err := w.Variances(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWorkerCountsAgree(t *testing.T) {
	// The Workers option must never change a bit of the answer.
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	var ref *lia.Result
	for _, workers := range []int{1, 2, 7} {
		eng, err := lia.NewEngine(rm, lia.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		src := lia.NewSimSource(rm, lia.SimConfig{Probes: 600, Seed: 9, CongestedFraction: 0.2})
		if _, err := eng.Consume(ctx, lia.Limit(src, 25)); err != nil {
			t.Fatal(err)
		}
		probe, err := src.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Infer(ctx, probe.Y)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for k := range ref.LossRates {
			if ref.LossRates[k] != res.LossRates[k] || ref.Variances[k] != res.Variances[k] {
				t.Fatalf("workers=%d diverges from workers=1 at link %d", workers, k)
			}
		}
	}
}
