package lia_test

// retry_test.go covers the resilience source combinators: RetrySource's
// backoff/attempt accounting and terminal-error passthrough,
// SanitizeSource's quarantine rules and counters, and the io.Closer
// propagation convention shared by every wrapping source.

import (
	"context"
	"errors"
	"io"
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"lia"
)

// flakySource fails deterministically: each snapshot takes failures+1
// attempts to deliver, then the source yields ys in order and EOF.
type flakySource struct {
	mu       sync.Mutex
	ys       [][]float64
	failures int
	attempt  int
	pos      int
	calls    int
}

var errFlaky = errors.New("transient network failure")

func (f *flakySource) Next(ctx context.Context) (lia.Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.pos >= len(f.ys) {
		return lia.Snapshot{}, io.EOF
	}
	if f.attempt < f.failures {
		f.attempt++
		return lia.Snapshot{}, errFlaky
	}
	f.attempt = 0
	y := f.ys[f.pos]
	f.pos++
	return lia.Snapshot{Y: y}, nil
}

func TestRetrySourceRecoversTransientErrors(t *testing.T) {
	ys := [][]float64{{-0.1}, {-0.2}, {-0.3}}
	src := lia.RetrySource(
		&flakySource{ys: ys, failures: 2},
		lia.RetryPolicy{MaxAttempts: 5, InitialBackoff: time.Microsecond, Seed: 1},
	)
	ctx := context.Background()
	for i, want := range ys {
		snap, err := src.Next(ctx)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if snap.Y[0] != want[0] {
			t.Fatalf("snapshot %d = %v, want %v", i, snap.Y, want)
		}
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream end: %v, want io.EOF", err)
	}
}

func TestRetrySourceExhaustsBudgetWithTypedError(t *testing.T) {
	inner := &flakySource{ys: [][]float64{{-0.1}}, failures: 100}
	src := lia.RetrySource(inner, lia.RetryPolicy{MaxAttempts: 3, InitialBackoff: time.Microsecond, Seed: 1})
	_, err := src.Next(context.Background())
	var re *lia.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T), want *lia.RetryError", err, err)
	}
	if re.Attempts != 3 {
		t.Fatalf("RetryError.Attempts = %d, want 3", re.Attempts)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("RetryError does not wrap the underlying cause: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("wrapped source tried %d times, want 3", inner.calls)
	}
}

func TestRetrySourcePassesThroughCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := lia.RetrySource(lia.NewSliceSource([][]float64{{-0.1}}),
		lia.RetryPolicy{InitialBackoff: time.Microsecond})
	if _, err := src.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Next = %v, want context.Canceled", err)
	}
}

func TestRetryPolicyBackoffDeterministicAndBounded(t *testing.T) {
	p := lia.RetryPolicy{InitialBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond,
		Multiplier: 2, Jitter: 0.5, Seed: 7}
	a := rand.New(rand.NewPCG(7, 1))
	b := rand.New(rand.NewPCG(7, 1))
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := p.Backoff(attempt, a), p.Backoff(attempt, b)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v vs %v", attempt, da, db)
		}
		if da > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds MaxBackoff", attempt, da)
		}
		if da < 5*time.Millisecond {
			t.Fatalf("attempt %d: delay %v fell below InitialBackoff·(1−Jitter)", attempt, da)
		}
	}
}

func TestSanitizeSourceQuarantinesPoison(t *testing.T) {
	clean1, clean2 := []float64{-0.1, -0.2}, []float64{-0.3, -0.4}
	src := lia.SanitizeSource(lia.NewSliceSource([][]float64{
		clean1,
		{math.NaN(), -0.2},  // non-finite
		{math.Inf(1), -0.2}, // non-finite
		{-0.1},              // wrong dimension
		{-0.1, -0.2, -0.3},  // wrong dimension
		{},                  // empty
		{-1e9, -0.2},        // outlier beyond MaxAbs
		clean2,
	}), lia.SanitizeConfig{Dim: 2, MaxAbs: 50})
	ctx := context.Background()
	for i, want := range [][]float64{clean1, clean2} {
		snap, err := src.Next(ctx)
		if err != nil {
			t.Fatalf("clean snapshot %d: %v", i, err)
		}
		for j := range want {
			if math.Float64bits(snap.Y[j]) != math.Float64bits(want[j]) {
				t.Fatalf("clean snapshot %d altered: %v, want %v", i, snap.Y, want)
			}
		}
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream end: %v, want io.EOF", err)
	}
	st := src.Stats()
	want := lia.SanitizeStats{Passed: 2, Quarantined: 6, NonFinite: 2, Dimension: 3, Outlier: 1}
	if st != want {
		t.Fatalf("sanitize stats = %+v, want %+v", st, want)
	}
}

// closeRecorder is a source that records whether Close reached it.
type closeRecorder struct {
	lia.SnapshotSource
	closed bool
}

func (c *closeRecorder) Close() error { c.closed = true; return nil }

func TestCloseSourcePropagatesThroughWrappers(t *testing.T) {
	for _, tc := range []struct {
		name string
		wrap func(lia.SnapshotSource) lia.SnapshotSource
	}{
		{"limit", func(s lia.SnapshotSource) lia.SnapshotSource { return lia.Limit(s, 3) }},
		{"retry", func(s lia.SnapshotSource) lia.SnapshotSource { return lia.RetrySource(s, lia.RetryPolicy{}) }},
		{"sanitize", func(s lia.SnapshotSource) lia.SnapshotSource {
			return lia.SanitizeSource(s, lia.SanitizeConfig{})
		}},
		{"limit(retry(sanitize))", func(s lia.SnapshotSource) lia.SnapshotSource {
			return lia.Limit(lia.RetrySource(lia.SanitizeSource(s, lia.SanitizeConfig{}), lia.RetryPolicy{}), 3)
		}},
	} {
		inner := &closeRecorder{SnapshotSource: lia.NewSliceSource(nil)}
		if err := lia.CloseSource(tc.wrap(inner)); err != nil {
			t.Fatalf("%s: Close: %v", tc.name, err)
		}
		if !inner.closed {
			t.Fatalf("%s: Close did not propagate to the wrapped source", tc.name)
		}
	}
	// A source without resources is a no-op, not an error.
	if err := lia.CloseSource(lia.NewSliceSource(nil)); err != nil {
		t.Fatalf("CloseSource on a plain source: %v", err)
	}
}
