// Command liaworld runs the congestion-driven world server (package
// lia/world): a long-lived, seeded-deterministic scenario simulator that
// liaserve (via -world), the examples, and soak harnesses stream
// non-stationary, correlated-loss snapshots from.
//
//	liaworld -listen 127.0.0.1:9310 -seed 7 -schedule schedule.json
//
// serves scenarios over the NDJSON TCP protocol: consumers assign their
// topology's physical routes and pull snapshot batches, control
// connections schedule congestion/flap/reroute regime shifts and query
// ground truth. The -schedule file (a JSON array of world.Event documents)
// is pre-applied to every scenario, so a CI run scripts its regime shifts
// up front; the same seed and schedule reproduce every stream bit for bit.
//
// With -dump N the binary runs offline instead: it builds one world from
// the -topo document (the liainfer topology schema), steps it N ticks, and
// writes the NDJSON snapshot stream to stdout — piping two runs through
// sha256sum is the replay-determinism check.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"lia/world"
)

// topoDoc is the topology file schema shared with liainfer/liaserve; only
// the physical routes matter here.
type topoDoc struct {
	Probes int `json:"probes"`
	Paths  []struct {
		Beacon int   `json:"beacon"`
		Dst    int   `json:"dst"`
		Links  []int `json:"links"`
	} `json:"paths"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "liaworld: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("liaworld", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:9310", "TCP listen address for the NDJSON protocol")
		seed     = fs.Uint64("seed", 1, "world seed: same seed + same schedule reproduces every stream bitwise")
		probes   = fs.Int("probes", 0, "default per-path probe count for binomial observation sampling (0 = exact fractions; assigns may override)")
		schedule = fs.String("schedule", "", "JSON file holding an array of events pre-applied to every scenario")

		utilization = fs.Float64("utilization", 0, "mean base link utilisation rho (0 = default 0.55)")
		spread      = fs.Float64("utilization-spread", 0, "per-link base utilisation spread (0 = default 0.2)")
		queue       = fs.Float64("queue", 0, "per-link buffer in capacity-ticks (0 = default 0.5)")
		diurnalP    = fs.Int("diurnal-period", 0, "diurnal load-curve period in ticks (0 disables)")
		diurnalA    = fs.Float64("diurnal-amplitude", 0, "diurnal swing as a fraction of base load (0 = default 0.3 when enabled)")
		jitter      = fs.Float64("jitter", 0, "per-tick multiplicative load noise amplitude (0 = default 0.15)")

		dump = fs.Int("dump", 0, "offline mode: step one world this many ticks, write NDJSON to stdout, exit (requires -topo)")
		topo = fs.String("topo", "", "topology document for -dump mode (the liainfer -topo schema)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := world.Config{
		Seed:              *seed,
		Probes:            *probes,
		Utilization:       *utilization,
		UtilizationSpread: *spread,
		Queue:             *queue,
		DiurnalPeriod:     *diurnalP,
		DiurnalAmplitude:  *diurnalA,
		Jitter:            *jitter,
	}
	var events []world.Event
	if *schedule != "" {
		b, err := os.ReadFile(*schedule)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(b, &events); err != nil {
			return fmt.Errorf("-schedule %s: %w", *schedule, err)
		}
	}

	if *dump > 0 {
		return dumpStream(cfg, events, *topo, *dump)
	}

	srv := world.NewServer(world.ServerConfig{World: cfg, Schedule: events, Logf: log.Printf})
	if err := srv.Listen(*listen); err != nil {
		return err
	}
	log.Printf("liaworld: serving scenarios on %s (seed %d, %d scheduled events)",
		srv.Addr(), *seed, len(events))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("liaworld: shutting down")
	return srv.Close()
}

// dumpStream runs the offline replay: one world over the topology's
// routes, N ticks of NDJSON on stdout.
func dumpStream(cfg world.Config, events []world.Event, topoFile string, n int) error {
	if topoFile == "" {
		return fmt.Errorf("-dump requires -topo file.json")
	}
	b, err := os.ReadFile(topoFile)
	if err != nil {
		return err
	}
	var doc topoDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("-topo %s: %w", topoFile, err)
	}
	paths := make([][]int, len(doc.Paths))
	for i, p := range doc.Paths {
		paths[i] = p.Links
	}
	if cfg.Probes == 0 {
		cfg.Probes = doc.Probes
	}
	w, err := world.New(paths, cfg, events)
	if err != nil {
		return err
	}
	out := bufio.NewWriterSize(os.Stdout, 256*1024)
	enc := json.NewEncoder(out)
	for i := 0; i < n; i++ {
		if err := enc.Encode(w.Step()); err != nil {
			return err
		}
	}
	return out.Flush()
}
