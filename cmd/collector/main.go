// Command collector is the central measurement server: it accepts JSON-line
// reports from beacons and sinks over TCP and emits each completed snapshot
// (all paths reported) as a JSON line of received fractions on stdout.
// The output stream feeds directly into liainfer.
//
//	collector -listen 127.0.0.1:7000 -paths 6 -snapshots 5
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"lia/internal/emunet"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7000", "TCP address to accept reports on")
		paths     = flag.Int("paths", 0, "number of paths per snapshot (required)")
		snapshots = flag.Int("snapshots", 1, "snapshots to wait for before exiting")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-snapshot completion timeout")
		settle    = flag.Duration("settle", 1500*time.Millisecond, "extra wait after completion so sink reports merge in")
	)
	flag.Parse()
	if *paths <= 0 {
		log.Fatal("collector: -paths is required")
	}
	coll, err := emunet.NewCollectorAddr(*listen)
	if err != nil {
		log.Fatalf("collector: %v", err)
	}
	defer coll.Close()
	log.Printf("collector: listening on %s for %d paths × %d snapshots", coll.Addr(), *paths, *snapshots)

	enc := json.NewEncoder(os.Stdout)
	for snap := 0; snap < *snapshots; snap++ {
		// The settle wait runs after completion, so it gets its own budget
		// on top of the completion timeout (as the old WaitSnapshot + Sleep
		// sequence behaved).
		ctx, cancel := context.WithTimeout(context.Background(), *timeout+*settle)
		frac, err := coll.AwaitSnapshot(ctx, snap, *paths, *settle)
		cancel()
		if err != nil {
			log.Fatalf("collector: %v", err)
		}
		if err := enc.Encode(map[string]interface{}{"snapshot": snap, "frac": frac}); err != nil {
			log.Fatalf("collector: %v", err)
		}
		log.Printf("collector: snapshot %d complete", snap)
	}
}
