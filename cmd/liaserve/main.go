// Command liaserve runs the inference engine as a long-lived HTTP service:
// learning snapshots stream in continuously (over HTTP, from a live
// collector listener, from an NDJSON file, from the built-in simulator, or
// from a congestion-driven world server via -world, see cmd/liaworld) and
// per-link loss estimates are queryable at any moment.
//
//	liaserve -listen 127.0.0.1:8420 -topo default=topo.json \
//	         -collect default=127.0.0.1:7000
//
// starts one engine over the topology document (the liainfer -topo schema:
// {"probes": N, "paths": [{"beacon","dst","links"}]}) and accepts
// beacon/sink reports on :7000 — `collector | liainfer` as one process.
// Repeat -topo to serve several topologies; the first is the default one
// addressed by the unprefixed /v1 routes, the rest live under
// /v1/topologies/{name}/. Topologies whose routing matrix splits into
// link-disjoint components are sharded automatically (or explicitly with
// -shards k): each component keeps its own solver caches and the shards
// rebuild concurrently, with identical estimates. Query with:
//
//	curl localhost:8420/v1/links
//	curl localhost:8420/v1/status
//	curl -d '{"frac": [0.98, 1.0, ...]}' localhost:8420/v1/infer
//
// SIGINT/SIGTERM drain in-flight requests and stop background ingestion
// before exiting.
//
// The server degrades rather than fails: background sources are supervised
// (a dead collector listener is re-opened with backoff), poisoned
// snapshots are quarantined before they can reach the estimators, and
// /v1/links keeps answering from the last successfully built state while
// rebuilds fail. GET /readyz separates readiness (state built, sources
// live) from /healthz liveness. The -chaos-kill-collector flag kills every
// live collector listener once after the given delay — the fault-injection
// hook the CI smoke test uses to verify the recovery path end to end.
//
// With -state-dir the accumulated moments survive the process: every
// sanitizer-surviving snapshot is journaled to a write-ahead log before it
// is folded, the moments are checkpointed periodically (-checkpoint-every /
// -checkpoint-interval), and a restarted server restores the newest valid
// checkpoint plus the WAL tail before sources start — bitwise-identical to
// never having crashed. -fsync picks the WAL durability/throughput
// tradeoff (batch, interval, off). NDJSON -stream sources resume at their
// persisted byte offset instead of re-ingesting from line 1, and recovery
// is visible in /v1/status ("durability") and /metrics
// (liaserve_checkpoints_total, liaserve_wal_bytes,
// liaserve_recovery_replayed_snapshots). Cluster nodes take the same flags:
// each placed component journals under its own subdirectory, and a
// restarted node returns with its moments instead of re-learning.
//
// The same binary also runs as a multi-process cluster. A coordinator
//
//	liaserve -listen :8420 -topo default=topo.json -coordinator 2
//
// waits for two nodes, places the topology's link-connected components
// across them (deterministically, independent of join order), scatters
// every ingested snapshot to the owning nodes over persistent NDJSON
// streams, and serves the full /v1 API by gathering per-component results
// — bitwise-identical to the single-process engine. Nodes are started as
//
//	liaserve -listen :8421 -join http://coordinator:8420 -node-id a
//
// and need no topology file; their components arrive from the coordinator,
// and a restarted node (same -node-id) is re-assigned and re-learns. While
// a node is down only its components' links read unresolved; /readyz on
// the coordinator names the degradation. GET /v1/watch streams epoch
// updates (NDJSON, heartbeats included) for both single-process and
// cluster serving.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lia"
	"lia/cluster"
	"lia/serve"
	"lia/wal"
)

// topoDoc is the topology file schema (liainfer's -topo document; any
// "snapshots" field is ignored).
type topoDoc struct {
	Probes int `json:"probes"`
	Paths  []struct {
		Beacon int   `json:"beacon"`
		Dst    int   `json:"dst"`
		Links  []int `json:"links"`
	} `json:"paths"`
}

// multiFlag collects repeatable name=value flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// splitSpec parses a "name=value" flag occurrence; a bare value gets the
// default topology name.
func splitSpec(spec string) (name, value string) {
	if i := strings.IndexByte(spec, '='); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	return "default", spec
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "liaserve: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("liaserve", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:8420", "HTTP listen address")
		topos   multiFlag
		collect multiFlag
		streams multiFlag
		sims    multiFlag
		worlds  multiFlag

		rebuildEvery    = fs.Int("rebuild-every", serve.DefaultRebuildEvery, "rebuild the served state after this many new snapshots (negative disables)")
		rebuildInterval = fs.Duration("rebuild-interval", 5*time.Second, "also rebuild a stale state at least this often (0 disables)")

		window    = fs.Int("window", 0, "sliding moment window in snapshots (0 = cumulative)")
		decay     = fs.Float64("decay", 0, "exponential moment decay factor in (0,1] (0 = cumulative)")
		workers   = fs.Int("workers", 0, "phase-1/phase-2 goroutines (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 0, "topology shards rebuilding concurrently: 0 auto-shards disconnected topologies to GOMAXPROCS, 1 forces a single engine, k caps at k")
		rebalance = fs.Float64("rebalance", 0.5, "sharded dynamic LPT rebalance hysteresis θ: re-group components across rebuild shards only when it cuts the estimated wave critical path by more than this fraction (negative disables)")
		strategy  = fs.String("strategy", "paper", "phase-2 elimination: paper or greedy")
		tl        = fs.Float64("tl", lia.DefaultThreshold, "congestion threshold")

		settle      = fs.Duration("settle", 1500*time.Millisecond, "collector settle window after snapshot completion")
		snapTimeout = fs.Duration("snapshot-timeout", 2*time.Minute, "collector per-snapshot completion timeout")
		simSeed     = fs.Uint64("sim-seed", 1, "simulator source seed")

		shutdownGrace = fs.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")

		chaosKillCollector = fs.Duration("chaos-kill-collector", 0, "fault injection: kill every live collector listener once after this delay (0 disables; the source must reconnect on its own)")

		stateDir           = fs.String("state-dir", "", "durable state root: moments are checkpointed and snapshots journaled per topology (server mode) or per placed component (node mode), and restored on boot before sources start (empty = in-memory only)")
		checkpointEvery    = fs.Int("checkpoint-every", 0, "with -state-dir, checkpoint after this many journaled snapshots (0 = library default, negative disables count-based checkpoints)")
		checkpointInterval = fs.Duration("checkpoint-interval", 0, "with -state-dir, also checkpoint when this much time has passed since the last one and new snapshots arrived (0 disables)")
		fsyncPolicy        = fs.String("fsync", "batch", "with -state-dir, WAL fsync policy: batch (fsync every append batch), interval (background cadence, see -fsync-interval), off (page cache only)")
		fsyncInterval      = fs.Duration("fsync-interval", 0, "with -fsync interval, fsync the WAL at least this often (0 = library default)")

		coordinator = fs.Int("coordinator", 0, "run as a cluster coordinator placing the topology's components across this many nodes (requires exactly one -topo)")
		join        = fs.String("join", "", "run as a cluster node: base URL of the coordinator to register with (ignores -topo; components arrive from the coordinator)")
		nodeID      = fs.String("node-id", "", "stable cluster node identity surviving restarts (default: the -listen address)")
		advertise   = fs.String("advertise", "", "base URL the coordinator dials this node back on (default http://<listen>)")
	)
	fs.Var(&topos, "topo", "topology to serve, as name=file.json (repeatable; first is the default)")
	fs.Var(&collect, "collect", "live collector listener, as name=host:port (repeatable)")
	fs.Var(&streams, "stream", "NDJSON snapshot file source, as name=file (repeatable)")
	fs.Var(&sims, "sim", "built-in simulator source streaming N snapshots (0 = unbounded), as name=N (repeatable)")
	fs.Var(&worlds, "world", "world-server source (see cmd/liaworld), as name=host:port (repeatable; the scenario is named after the topology)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dur := lia.DurabilityOptions{
		CheckpointEvery:    *checkpointEvery,
		CheckpointInterval: *checkpointInterval,
		FsyncInterval:      *fsyncInterval,
	}
	switch *fsyncPolicy {
	case "batch":
		dur.Fsync = wal.SyncBatch
	case "interval":
		dur.Fsync = wal.SyncInterval
	case "off":
		dur.Fsync = wal.SyncOff
	default:
		return fmt.Errorf("unknown -fsync %q (batch, interval, or off)", *fsyncPolicy)
	}
	if *join != "" {
		if *coordinator > 0 {
			return errors.New("-join and -coordinator are mutually exclusive")
		}
		return runNode(*listen, *join, *nodeID, *advertise, *shutdownGrace, *stateDir, dur)
	}
	if *coordinator > 0 && *stateDir != "" {
		return errors.New("-state-dir applies where the moments live: pass it to the cluster nodes (-join mode), not the coordinator")
	}
	if len(topos) == 0 {
		return errors.New("at least one -topo name=file.json is required")
	}
	if *coordinator > 0 && len(topos) != 1 {
		return errors.New("-coordinator requires exactly one -topo")
	}
	tlSet, rebalanceSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "tl":
			tlSet = true
		case "rebalance":
			rebalanceSet = true
		}
	})

	var opts []lia.Option
	opts = append(opts, lia.WithWorkers(*workers), lia.WithShards(*shards))
	if rebalanceSet {
		opts = append(opts, lia.WithRebalance(*rebalance))
	}
	switch *strategy {
	case "paper":
	case "greedy":
		opts = append(opts, lia.WithStrategy(lia.StrategyGreedyBasis))
	default:
		return fmt.Errorf("unknown -strategy %q", *strategy)
	}
	if *window > 0 {
		opts = append(opts, lia.WithWindow(*window))
	}
	if *decay > 0 {
		opts = append(opts, lia.WithDecay(*decay))
	}
	if tlSet {
		opts = append(opts, lia.WithThreshold(*tl))
	}

	srv := serve.New(serve.Config{
		RebuildEvery:    *rebuildEvery,
		RebuildInterval: *rebuildInterval,
		Shards:          *shards,
	})

	type topoState struct {
		spec    serve.Topology
		rm      *lia.RoutingMatrix
		eng     lia.Inferencer
		nPaths  int
		nProbes int
		dropped int // fluttering paths removed from the input document
	}
	states := make(map[string]*topoState)
	var order []string
	var fleet *cluster.Fleet
	for _, spec := range topos {
		name, file := splitSpec(spec)
		if _, dup := states[name]; dup {
			return fmt.Errorf("-topo %s: duplicate topology name", name)
		}
		rm, probes, dropped, err := loadTopology(file)
		if err != nil {
			return fmt.Errorf("-topo %s: %w", name, err)
		}
		var eng lia.Inferencer
		if *coordinator > 0 {
			fleet, err = cluster.NewFleet(rm, cluster.FleetConfig{
				Size: *coordinator,
				Options: cluster.EngineOptions{
					Strategy:     *strategy,
					Threshold:    *tl,
					ThresholdSet: tlSet,
					Window:       *window,
					Decay:        *decay,
					Workers:      *workers,
				},
				Logf: log.Printf,
			})
			eng = fleet
		} else {
			topts := opts
			if *stateDir != "" {
				topts = append(append([]lia.Option{}, opts...),
					lia.WithDurability(filepath.Join(*stateDir, name), dur))
			}
			eng, err = lia.New(rm, topts...)
			var corrupt *lia.CorruptStateError
			if errors.As(err, &corrupt) {
				return fmt.Errorf("-topo %s: %w (repair or remove the state directory to boot cold)", name, err)
			}
		}
		if err != nil {
			return fmt.Errorf("-topo %s: %w", name, err)
		}
		states[name] = &topoState{rm: rm, eng: eng, nPaths: rm.NumPaths(), nProbes: probes, dropped: dropped}
		order = append(order, name)
	}

	stateFor := func(flagName, spec string) (*topoState, string, error) {
		name, value := splitSpec(spec)
		st, ok := states[name]
		if !ok {
			return nil, "", fmt.Errorf("-%s %s: unknown topology %q", flagName, spec, name)
		}
		return st, value, nil
	}
	// Collector reports and NDJSON lines are indexed by the positions in the
	// input document: if fluttering repair dropped paths, those indices no
	// longer match the engine's rows and every estimate downstream would be
	// silently misattributed. Refuse instead of remapping wrongly.
	externallyIndexed := func(flagName, spec string, st *topoState) error {
		if st.dropped > 0 {
			return fmt.Errorf("-%s %s: topology dropped %d fluttering paths, so externally measured "+
				"path indices no longer match the engine's rows; remove the fluttering paths from "+
				"the topology file first", flagName, spec, st.dropped)
		}
		return nil
	}
	var closers []func() error
	if fleet != nil {
		closers = append(closers, fleet.Close)
	}
	for _, name := range order {
		st := states[name]
		ds, ok := st.eng.(interface{ DurabilityStats() lia.DurabilityStats })
		if !ok {
			continue
		}
		// Graceful shutdown writes a final checkpoint, so the next boot
		// restores without WAL replay; an unclean kill recovers identically,
		// just replaying the journal tail.
		closers = append(closers, st.eng.(io.Closer).Close)
		d := ds.DurabilityStats()
		log.Printf("liaserve: topology %s: durable state in %s (fsync %s), restored epoch %d (%d snapshots replayed from the WAL)",
			name, d.Dir, d.SyncPolicy, d.RecoveredEpoch, d.ReplayedSnapshots)
	}
	var collectors []*serve.CollectorSource
	for _, spec := range collect {
		st, addr, err := stateFor("collect", spec)
		if err != nil {
			return err
		}
		if err := externallyIndexed("collect", spec, st); err != nil {
			return err
		}
		src, err := serve.NewCollectorSource(addr, serve.CollectorConfig{
			Paths:   st.nPaths,
			Probes:  st.nProbes,
			Settle:  *settle,
			Timeout: *snapTimeout,
		})
		if err != nil {
			return err
		}
		closers = append(closers, src.Close)
		collectors = append(collectors, src)
		st.spec.Sources = append(st.spec.Sources, src)
		log.Printf("liaserve: accepting collector reports on %s (%d paths)", src.Addr(), st.nPaths)
	}
	streamIdx := make(map[string]int)
	for _, spec := range streams {
		st, file, err := stateFor("stream", spec)
		if err != nil {
			return err
		}
		if err := externallyIndexed("stream", spec, st); err != nil {
			return err
		}
		if *stateDir == "" {
			src, err := lia.OpenFileSource(file, st.nProbes)
			if err != nil {
				return err
			}
			closers = append(closers, src.Close)
			st.spec.Sources = append(st.spec.Sources, src)
			continue
		}
		// With durable state the NDJSON stream resumes where the previous
		// process left off instead of re-folding the whole file into the
		// restored moments: the consumed byte offset is persisted in a
		// sidecar next to the topology's checkpoints.
		name, _ := splitSpec(spec)
		sidecar := filepath.Join(*stateDir, name, fmt.Sprintf("stream-%02d.offset", streamIdx[name]))
		streamIdx[name]++
		offset := readOffsetSidecar(sidecar)
		src, err := lia.OpenFileSourceAt(file, offset, st.nProbes)
		if err != nil {
			return err
		}
		if offset > 0 {
			log.Printf("liaserve: topology %s: resuming %s at byte offset %d", name, file, offset)
		}
		tracked := &offsetSidecarSource{src: src, sidecar: sidecar}
		closers = append(closers, tracked.Close)
		st.spec.Sources = append(st.spec.Sources, tracked)
	}
	for _, spec := range sims {
		st, nStr, err := stateFor("sim", spec)
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			return fmt.Errorf("-sim %s: snapshot count must be a non-negative integer", spec)
		}
		st.spec.Sources = append(st.spec.Sources,
			lia.NewSimSource(st.rm, lia.SimConfig{Probes: st.nProbes, Seed: *simSeed, Snapshots: n}))
	}
	for _, spec := range worlds {
		st, addr, err := stateFor("world", spec)
		if err != nil {
			return err
		}
		// The scenario is named after the topology, so several liaserve
		// topologies (or a restarted liaserve) attach to their own worlds on
		// a shared server — and a reconnect resumes rather than restarts.
		name, _ := splitSpec(spec)
		src := lia.NewWorldSource(addr, st.rm, lia.WorldConfig{Scenario: name, Probes: st.nProbes})
		closers = append(closers, src.Close)
		st.spec.Sources = append(st.spec.Sources, src)
		log.Printf("liaserve: topology %s: streaming world scenario %q from %s", name, name, addr)
	}
	defer func() {
		for _, c := range closers {
			_ = c()
		}
	}()

	for _, name := range order {
		st := states[name]
		st.spec.Engine = st.eng
		st.spec.Probes = st.nProbes
		if err := srv.Add(name, st.spec); err != nil {
			return err
		}
		if es := st.eng.Stats(); es.Shards > 0 {
			log.Printf("liaserve: topology %s: %d paths, %d virtual links, %d components in %d shards, %d sources",
				name, st.nPaths, st.rm.NumLinks(), es.Components, es.Shards, len(st.spec.Sources))
		} else {
			log.Printf("liaserve: topology %s: %d paths, %d virtual links, %d sources",
				name, st.nPaths, st.rm.NumLinks(), len(st.spec.Sources))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		_ = srv.Run(ctx)
	}()

	if *chaosKillCollector > 0 && len(collectors) > 0 {
		go func() {
			select {
			case <-ctx.Done():
				return
			case <-time.After(*chaosKillCollector):
			}
			for _, src := range collectors {
				log.Printf("liaserve: CHAOS killing collector listener %s", src.Addr())
				if err := src.InjectListenerFailure(); err != nil {
					log.Printf("liaserve: chaos kill %s: %v", src.Addr(), err)
				}
			}
		}()
	}

	handler := srv.Handler()
	if fleet != nil {
		// The coordinator mounts the node-registration protocol next to the
		// serving API on one listener.
		mux := http.NewServeMux()
		mux.Handle("/cluster/v1/", fleet.Handler())
		mux.Handle("/", handler)
		handler = mux
		log.Printf("liaserve: coordinating a fleet of %d nodes for topology %q", *coordinator, order[0])
	}
	httpSrv := &http.Server{Addr: *listen, Handler: handler}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.ListenAndServe() }()
	log.Printf("liaserve: serving on http://%s (default topology %q)", *listen, order[0])

	select {
	case err := <-httpDone:
		stop()
		<-runDone
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}
	log.Printf("liaserve: shutting down (draining for up to %v)", *shutdownGrace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx)
	<-runDone
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("liaserve: bye")
	return nil
}

// runNode runs the process as a cluster worker: it serves the node side of
// the cluster protocol on -listen, registers with the coordinator (retrying
// until it is up), and then runs whatever components the coordinator
// assigns until SIGINT/SIGTERM.
func runNode(listen, coordinatorURL, id, advertiseURL string, grace time.Duration, stateDir string, dur lia.DurabilityOptions) error {
	if id == "" {
		id = listen
	}
	if advertiseURL == "" {
		advertiseURL = "http://" + listen
	}
	node := cluster.NewNode(id)
	node.Logf = log.Printf
	if stateDir != "" {
		// Placed components journal and checkpoint under stateDir and restore
		// on rejoin, so this node returns with its moments instead of cold.
		node.StateDir = stateDir
		node.Durability = dur
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: listen, Handler: node.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.ListenAndServe() }()
	log.Printf("liaserve: cluster node %q on http://%s, joining %s", id, listen, coordinatorURL)

	regDone := make(chan error, 1)
	go func() { regDone <- node.Register(ctx, nil, coordinatorURL, advertiseURL) }()

	select {
	case err := <-httpDone:
		stop()
		return fmt.Errorf("http server: %w", err)
	case err := <-regDone:
		if err != nil {
			return fmt.Errorf("register with %s: %w", coordinatorURL, err)
		}
		select {
		case err := <-httpDone:
			stop()
			return fmt.Errorf("http server: %w", err)
		case <-ctx.Done():
		}
	case <-ctx.Done():
	}
	log.Printf("liaserve: node %q shutting down (draining for up to %v)", id, grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx)
	if cerr := node.Close(); cerr != nil {
		log.Printf("liaserve: node %q close: %v", id, cerr)
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("liaserve: bye")
	return nil
}

// offsetSidecarSource persists the wrapped NDJSON file source's consumed
// byte offset to a sidecar file after every snapshot it yields, so the next
// boot resumes the stream past everything this process already read. The
// offset is written when a snapshot is handed to the ingestion pump, which
// is just before it reaches the engine's journal — so a kill in that window
// skips (never double-folds) at most one snapshot per source; a graceful
// shutdown is exact.
type offsetSidecarSource struct {
	src     *lia.FileSource
	sidecar string
}

func (o *offsetSidecarSource) Next(ctx context.Context) (lia.Snapshot, error) {
	snap, err := o.src.Next(ctx)
	if err == nil {
		writeOffsetSidecar(o.sidecar, o.src.Offset())
	}
	return snap, err
}

func (o *offsetSidecarSource) Close() error {
	writeOffsetSidecar(o.sidecar, o.src.Offset())
	return o.src.Close()
}

// readOffsetSidecar returns the persisted stream offset, or 0 (start of
// file) when the sidecar is absent or unreadable — a bad sidecar degrades
// to re-reading, never to refusing to boot.
func readOffsetSidecar(path string) int64 {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	v, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil || v < 0 {
		return 0
	}
	return v
}

// writeOffsetSidecar atomically replaces the sidecar (write + rename), so a
// kill mid-write leaves the previous offset intact. Persistence is best
// effort: a failed write costs re-reading some lines on the next boot.
func writeOffsetSidecar(path string, offset int64) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatInt(offset, 10)+"\n"), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// loadTopology reads a topology document, repairs fluttering, and builds
// the reduced routing matrix. It also reports how many input paths the
// repair dropped, so callers can refuse sources whose path indexing would
// no longer line up.
func loadTopology(file string) (*lia.RoutingMatrix, int, int, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, 0, 0, err
	}
	var doc topoDoc
	err = json.NewDecoder(f).Decode(&doc)
	f.Close()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("decode topology: %w", err)
	}
	if doc.Probes <= 0 {
		doc.Probes = 1000
	}
	paths := make([]lia.Path, len(doc.Paths))
	for i, p := range doc.Paths {
		paths[i] = lia.Path{Beacon: p.Beacon, Dst: p.Dst, Links: p.Links}
	}
	paths, droppedIdx := lia.RemoveFluttering(paths)
	if len(droppedIdx) > 0 {
		log.Printf("liaserve: dropped %d fluttering paths (T.2): %v", len(droppedIdx), droppedIdx)
	}
	rm, err := lia.NewTopology(paths)
	if err != nil {
		return nil, 0, 0, err
	}
	return rm, doc.Probes, len(droppedIdx), nil
}
