// Command liasim regenerates every table and figure of the paper's
// evaluation (Sections 6 and 7) from the simulation harness.
//
// Usage:
//
//	liasim -experiment fig5 [-scale 0.5] [-runs 10] [-seed 1] ...
//	liasim -experiment all
//
// Experiments: fig3, fig5, fig6, fig7, fig8a, fig8b, table2, fig9, table3,
// durations, runtimes, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lia"
	"lia/internal/experiments"
	"lia/internal/lossmodel"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment to run (fig3, fig5, fig6, fig7, fig8a, fig8b, table2, fig9, table3, durations, runtimes, all)")
		scale    = flag.Float64("scale", 1.0, "topology size multiplier (1.0 = paper-scale)")
		runs     = flag.Int("runs", 10, "repetitions per configuration")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		m        = flag.Int("m", 50, "learning snapshots")
		probes   = flag.Int("S", 1000, "probes per snapshot")
		p        = flag.Float64("p", 0.10, "fraction of congested links")
		model    = flag.String("model", "llrd1", "loss-rate model: llrd1 or llrd2")
		kind     = flag.String("process", "gilbert", "loss process: gilbert or bernoulli")
		good     = flag.String("good", "near-zero", "good-link rate shape: near-zero or uniform")
		fidelity = flag.String("fidelity", "exact", "snapshot fidelity: exact, packet-shared, packet-per-path")
		strategy = flag.String("strategy", "paper", "phase-2 elimination: paper or greedy")
		variant  = flag.String("variance", "auto", "phase-1 solver: auto, dense, normal")
		workers  = flag.Int("workers", 0, "phase-1 accumulation goroutines (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed:      *seed,
		Snapshots: *m,
		Probes:    *probes,
		Fraction:  *p,
		Runs:      *runs,
		Scale:     *scale,
	}
	switch strings.ToLower(*model) {
	case "llrd1":
		cfg.Model = lossmodel.LLRD1
	case "llrd2":
		cfg.Model = lossmodel.LLRD2
	default:
		fatalf("unknown -model %q", *model)
	}
	switch strings.ToLower(*kind) {
	case "gilbert":
		cfg.Kind = lossmodel.Gilbert
	case "bernoulli":
		cfg.Kind = lossmodel.Bernoulli
	default:
		fatalf("unknown -process %q", *kind)
	}
	switch strings.ToLower(*good) {
	case "near-zero":
		cfg.Good = lossmodel.GoodNearZero
	case "uniform":
		cfg.Good = lossmodel.GoodUniform
	default:
		fatalf("unknown -good %q", *good)
	}
	switch strings.ToLower(*fidelity) {
	case "exact":
		cfg.Fidelity = experiments.FidelityExact
	case "packet-shared":
		cfg.Fidelity = experiments.FidelityPacketShared
	case "packet-per-path":
		cfg.Fidelity = experiments.FidelityPacketPerPath
	default:
		fatalf("unknown -fidelity %q", *fidelity)
	}
	switch strings.ToLower(*strategy) {
	case "paper":
		cfg.Strategy = lia.StrategyPaperSequential
	case "greedy":
		cfg.Strategy = lia.StrategyGreedyBasis
	default:
		fatalf("unknown -strategy %q", *strategy)
	}
	switch strings.ToLower(*variant) {
	case "auto":
		cfg.Variance.Method = lia.VarianceAuto
	case "dense":
		cfg.Variance.Method = lia.VarianceDenseQR
	case "normal":
		cfg.Variance.Method = lia.VarianceNormalEquations
	default:
		fatalf("unknown -variance %q", *variant)
	}
	cfg.Variance.Workers = *workers

	which := strings.ToLower(*exp)
	run := func(name string) {
		if which != "all" && which != name {
			return
		}
		if err := runExperiment(name, cfg); err != nil {
			fatalf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"fig3", "fig5", "fig6", "fig7", "fig8a", "fig8b", "table2", "fig9", "table3", "durations", "runtimes"} {
		run(name)
	}
}

func runExperiment(name string, cfg experiments.Config) error {
	switch name {
	case "fig3":
		t, corr, err := experiments.Figure3(cfg, 250)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		fmt.Printf("mean-variance Pearson correlation: %.3f (Assumption S.3)\n\n", corr)
	case "fig5":
		return printTable(experiments.Figure5(cfg))
	case "fig6":
		a, b, err := experiments.Figure6(cfg)
		if err != nil {
			return err
		}
		a.Fprint(os.Stdout)
		fmt.Println()
		b.Fprint(os.Stdout)
		fmt.Println()
	case "fig7":
		return printTable(experiments.Figure7(cfg))
	case "fig8a":
		return printTable(experiments.Figure8a(cfg))
	case "fig8b":
		return printTable(experiments.Figure8b(cfg))
	case "table2":
		return printTable(experiments.Table2(cfg))
	case "fig9":
		return printTable(experiments.Figure9(cfg))
	case "table3":
		return printTable(experiments.Table3(cfg))
	case "durations":
		t, err := experiments.CongestionDurations(cfg, 60, 0.01)
		return printTable(t, err)
	case "runtimes":
		return printTable(experiments.RunningTimes(cfg, "planetlab"))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func printTable(t *experiments.Table, err error) error {
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	fmt.Println()
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "liasim: "+format+"\n", args...)
	os.Exit(2)
}
