// Command beacon is the end-host agent: it probes a set of paths through
// the emulated core (reporting sent counts to the collector) and can also
// serve as the destination-side sink (reporting received counts). A host
// that is both beacon and probing destination — as every PlanetLab node in
// the paper — runs one process with both flags.
//
//	beacon -core 127.0.0.1:9000 -collector 127.0.0.1:7000 \
//	       -paths 0,1,2 -S 1000 -snapshots 5 -gap 1ms -sink 127.0.0.1:9101
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"lia/internal/emunet"
)

func main() {
	var (
		coreAddr  = flag.String("core", "127.0.0.1:9000", "emulated core UDP address")
		collector = flag.String("collector", "", "collector TCP address (required)")
		pathsArg  = flag.String("paths", "", "comma-separated path IDs to probe")
		sinkAddr  = flag.String("sink", "", "also run a sink agent bound to this UDP address")
		probes    = flag.Int("S", 1000, "probes per path per snapshot")
		snapshots = flag.Int("snapshots", 1, "number of snapshots to probe")
		gap       = flag.Duration("gap", time.Millisecond, "inter-probe gap (paper: 10ms)")
		trace     = flag.Bool("traceroute", false, "run traceroute discovery over the probed paths first")
	)
	flag.Parse()
	if *collector == "" {
		fmt.Fprintln(os.Stderr, "beacon: -collector is required")
		os.Exit(2)
	}
	rc, err := emunet.DialCollector(*collector)
	if err != nil {
		log.Fatalf("beacon: %v", err)
	}
	defer rc.Close()

	var sink *emunet.Sink
	if *sinkAddr != "" {
		sink, err = emunet.NewSinkAddr(*sinkAddr)
		if err != nil {
			log.Fatalf("beacon: %v", err)
		}
		defer sink.Close()
		go reportLoop(sink, *collector, *probes)
		log.Printf("beacon: sink listening on %s", sink.Addr())
	}

	if *pathsArg == "" {
		// Pure sink mode: serve until interrupted.
		if sink == nil {
			fmt.Fprintln(os.Stderr, "beacon: need -paths and/or -sink")
			os.Exit(2)
		}
		select {}
	}
	var pathIDs []int
	for _, tok := range strings.Split(*pathsArg, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			log.Fatalf("beacon: bad path id %q", tok)
		}
		pathIDs = append(pathIDs, id)
	}

	b, err := emunet.NewBeacon(mustUDP(*coreAddr))
	if err != nil {
		log.Fatalf("beacon: %v", err)
	}
	defer b.Close()

	if *trace {
		tracer, err := emunet.NewTracer(mustUDP(*coreAddr), 2, 300*time.Millisecond)
		if err != nil {
			log.Fatalf("beacon: %v", err)
		}
		for _, id := range pathIDs {
			hops, err := tracer.TracePath(id, 64)
			if err != nil {
				log.Printf("beacon: trace path %d: %v", id, err)
				continue
			}
			var parts []string
			for _, h := range hops {
				if h.Responded {
					parts = append(parts, fmt.Sprintf("%d", h.Interface))
				} else {
					parts = append(parts, "*")
				}
			}
			log.Printf("beacon: path %d hops: %s", id, strings.Join(parts, " "))
		}
		tracer.Close()
	}

	for snap := 0; snap < *snapshots; snap++ {
		for _, id := range pathIDs {
			sent, err := b.ProbePath(id, snap, *probes, *gap)
			if err != nil {
				log.Fatalf("beacon: %v", err)
			}
			if err := rc.Send(emunet.Report{PathID: id, Snapshot: snap, Sent: sent}); err != nil {
				log.Fatalf("beacon: %v", err)
			}
		}
		log.Printf("beacon: snapshot %d done (%d paths × %d probes)", snap, len(pathIDs), *probes)
	}
	if sink != nil {
		// Give in-flight probes a moment, flush one last sink report.
		time.Sleep(200 * time.Millisecond)
		reportOnce(sink, rc)
	}
}

func mustUDP(addr string) *net.UDPAddr {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		log.Fatalf("beacon: resolve %q: %v", addr, err)
	}
	return a
}

// reportLoop periodically ships the sink's counters to the collector.
func reportLoop(sink *emunet.Sink, collector string, _ int) {
	for {
		time.Sleep(500 * time.Millisecond)
		rc, err := emunet.DialCollector(collector)
		if err != nil {
			continue
		}
		reportOnce(sink, rc)
		rc.Close()
	}
}

func reportOnce(sink *emunet.Sink, rc *emunet.ReportConn) {
	for key, n := range sink.Counts() {
		_ = rc.Send(emunet.Report{PathID: key[0], Snapshot: key[1], Received: n})
	}
}
