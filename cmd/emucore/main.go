// Command emucore runs the emulated network core as a standalone process:
// it binds a UDP socket, loads a deployment spec (paths, link loss rates,
// router inventory), and forwards measurement probes / answers traceroute
// probes until interrupted.
//
//	emucore -addr 127.0.0.1:9000 -spec deploy.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"lia/internal/emunet"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:9000", "UDP address to serve the emulated network on")
		spec = flag.String("spec", "", "deployment spec (JSON; see emunet.DeploySpec)")
	)
	flag.Parse()
	if *spec == "" {
		fmt.Fprintln(os.Stderr, "emucore: -spec is required")
		os.Exit(2)
	}
	s, err := emunet.LoadDeploySpec(*spec)
	if err != nil {
		log.Fatalf("emucore: %v", err)
	}
	core, err := emunet.NewCore(emunet.CoreConfig{
		Addr: *addr,
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("emucore: %v", err)
	}
	defer core.Close()
	if err := s.Apply(core); err != nil {
		log.Fatalf("emucore: %v", err)
	}
	log.Printf("emucore: serving %d paths on %s", len(s.Paths), core.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	seen, dropped := core.LinkStats()
	for link, n := range seen {
		log.Printf("emucore: link %d: %d traversals, %d dropped", link, n, dropped[link])
	}
}
