// Command planetlab runs the full Section 7 Internet experiment on the
// emulated overlay, end to end: it deploys a planetlab-like topology over
// real UDP sockets, discovers the topology with traceroute (with
// non-responding routers and interface aliases), probes m+1 snapshots,
// runs LIA on the discovered topology, and reports the paper's three
// analyses — cross-validation consistency (Figure 9), the inter-/intra-AS
// location of congested links (Table 3), and congestion durations
// (Section 7.2.2).
//
//	planetlab -sites 12 -hosts 8 -S 300 -m 30
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"time"

	"lia"
	"lia/internal/asmap"
	"lia/internal/emunet"
	"lia/internal/experiments"
	"lia/internal/lossmodel"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func main() {
	var (
		sites    = flag.Int("sites", 12, "planetlab-like sites")
		hosts    = flag.Int("hosts", 8, "hosts acting as beacons and destinations")
		probes   = flag.Int("S", 600, "probes per path per snapshot")
		m        = flag.Int("m", 30, "learning snapshots")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		p        = flag.Float64("p", 0.04, "fraction of congestion-prone links")
		episodic = flag.Float64("episodic", 0.20, "per-snapshot activation probability of prone links")
	)
	flag.Parse()

	rng := rand.New(rand.NewPCG(*seed, 0))
	network := topogen.PlanetLabLike(rng, *sites, 2)
	hostSet := topogen.SelectHosts(rng, network, *hosts)
	truePaths := topogen.Routes(network, hostSet, hostSet)
	truePaths, dropped := topology.RemoveFluttering(truePaths)
	log.Printf("planetlab: %d nodes, %d paths (%d fluttering removed)",
		network.G.NumNodes(), len(truePaths), len(dropped))

	lab, err := emunet.NewLab(network, truePaths, emunet.LabConfig{
		Probes: *probes,
		Seed:   *seed,
		Loss: lossmodel.Config{
			Fraction: *p,
			Episodic: *episodic,
		},
	})
	if err != nil {
		log.Fatalf("planetlab: %v", err)
	}
	defer lab.Close()

	// Phase 0: topology discovery over the wire (Section 7.1).
	t0 := time.Now()
	discovered, err := lab.Discover()
	if err != nil {
		log.Fatalf("planetlab: discovery: %v", err)
	}
	discovered, flut := topology.RemoveFluttering(discovered)
	rm, err := topology.Build(discovered)
	if err != nil {
		log.Fatalf("planetlab: discovered topology: %v", err)
	}
	log.Printf("planetlab: discovery in %v: %d paths, %d virtual links, identifiable=%v (%d fluttering dropped)",
		time.Since(t0).Round(time.Millisecond), rm.NumPaths(), rm.NumLinks(), lia.Identifiable(rm), len(flut))

	// Probing campaign: m learning snapshots + 1 to infer.
	t0 = time.Now()
	for s := 0; s <= *m; s++ {
		if _, err := lab.RunSnapshot(); err != nil {
			log.Fatalf("planetlab: snapshot %d: %v", s, err)
		}
	}
	log.Printf("planetlab: %d snapshots probed in %v", *m+1, time.Since(t0).Round(time.Millisecond))
	fracs := lab.History()

	// Figure 9: cross-validation on the measured data over the discovered
	// topology.
	ms := []int{*m / 3, 2 * *m / 3, *m}
	fig9, err := experiments.CrossValidationCurve(discovered, fracs, *probes, ms, experiments.DefaultEpsilon, 5, *seed)
	if err != nil {
		log.Fatalf("planetlab: figure 9: %v", err)
	}
	fig9.Fprint(os.Stdout)
	fmt.Println()

	// Full inference for Table 3 and duration analysis, through the public
	// engine fed by the emunet trace adapter.
	ctx := context.Background()
	eng, err := lia.NewEngine(rm)
	if err != nil {
		log.Fatalf("planetlab: %v", err)
	}
	if _, err := eng.Consume(ctx, lia.NewTraceSource(fracs[:*m], *probes)); err != nil {
		log.Fatalf("planetlab: ingest: %v", err)
	}
	res, err := eng.Infer(ctx, lia.LogRates(fracs[*m], *probes))
	if err != nil {
		log.Fatalf("planetlab: inference: %v", err)
	}
	keptCongested := 0
	for _, q := range res.LossRates {
		if q > 0.01 {
			keptCongested++
		}
	}
	log.Printf("planetlab: inferred %d congested links (tl=0.01), kept %d of %d columns",
		keptCongested, len(res.Kept), rm.NumLinks())

	// Table 3: classify congested links by AS location through the
	// interface-owner mapping (the lab's stand-in for RouteViews BGP data).
	interAS := classifyDiscovered(lab, rm, discovered)
	locs, err := asmap.LocateCongested(interAS, res.LossRates, experiments.Table3Thresholds)
	if err != nil {
		log.Fatalf("planetlab: table 3: %v", err)
	}
	fmt.Println("== Table 3: location of congested links (emulated overlay) ==")
	fmt.Println("   tl  inter-AS %  intra-AS %  congested")
	for _, loc := range locs {
		fmt.Printf("%5.2f  %9.1f  %9.1f  %9d\n", loc.Threshold, 100*loc.InterAS, 100*loc.IntraAS, loc.Congested)
	}
	fmt.Println()

	// Section 7.2.2: durations over the probed series with a sliding
	// learning window (shortened to the available snapshots).
	tracker := asmap.NewDurationTracker(rm.NumLinks())
	warm := *m / 2
	for t := warm; t <= *m; t++ {
		lw, err := lia.NewEngine(rm)
		if err != nil {
			log.Fatalf("planetlab: durations: %v", err)
		}
		if _, err := lw.Consume(ctx, lia.NewTraceSource(fracs[t-warm:t], *probes)); err != nil {
			log.Fatalf("planetlab: durations: %v", err)
		}
		r, err := lw.Infer(ctx, lia.LogRates(fracs[t], *probes))
		if err != nil {
			log.Fatalf("planetlab: durations: %v", err)
		}
		tracker.Observe(r.Congested(0.01))
	}
	one, two, more := tracker.Fractions()
	fmt.Println("== Section 7.2.2: congestion episode durations (emulated overlay) ==")
	fmt.Printf("1 snapshot: %.1f%%   2 snapshots: %.1f%%   3+: %.1f%%\n", 100*one, 100*two, 100*more)
}

// classifyDiscovered maps each discovered virtual link to inter/intra-AS by
// resolving its endpoints' interface addresses to routers and comparing AS
// numbers. Links with anonymous endpoints inherit the known side's AS
// (intra) — the conservative choice a BGP-based mapping would also make.
func classifyDiscovered(lab *emunet.Lab, rm *topology.RoutingMatrix, paths []topology.Path) []bool {
	// Rebuild the (a,b) interface pairs per discovered link ID by re-walking
	// the discovered paths' link IDs in parallel with the lab's true paths.
	// Discovered link IDs were assigned per unique (a,b) pair; recover the
	// endpoint ASes via the true path structure instead: member link i of
	// path p corresponds to hop i, whose true routers we know.
	type hopRef struct{ path, hop int }
	refOf := make(map[int]hopRef) // discovered physical link -> a representative hop
	for pi, p := range paths {
		for hi, link := range p.Links {
			if _, ok := refOf[link]; !ok {
				refOf[link] = hopRef{pi, hi}
			}
		}
	}
	truePaths := lab.Paths()
	network := lab.Network()
	out := make([]bool, rm.NumLinks())
	for k := 0; k < rm.NumLinks(); k++ {
		for _, member := range rm.Members(k) {
			ref, ok := refOf[member]
			if !ok || ref.path >= len(truePaths) {
				continue
			}
			tp := truePaths[ref.path]
			if ref.hop >= len(tp.Links) {
				continue
			}
			e := network.G.Edge(tp.Links[ref.hop])
			if network.AS[e.From] != network.AS[e.To] {
				out[k] = true
				break
			}
		}
	}
	return out
}
