// Command topogen generates one of the evaluation topologies and reports
// its measurement-plane statistics: routing-matrix dimensions, rank, and
// the identifiability of link variances (Theorem 1).
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"lia"
	"lia/internal/experiments"
	"lia/internal/topology"
)

func main() {
	var (
		name  = flag.String("topology", "tree", fmt.Sprintf("topology name %v", experiments.TopologyNames))
		scale = flag.Float64("scale", 1.0, "size multiplier")
		seed  = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	rng := rand.New(rand.NewPCG(*seed, 0))
	w, err := experiments.MakeWorkload(*name, cfg, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(2)
	}
	flutter := topology.FindFluttering(pathsOf(w))
	fmt.Printf("topology:      %s\n", w.Name)
	fmt.Printf("nodes:         %d\n", w.Net.G.NumNodes())
	fmt.Printf("directed links:%d\n", w.Net.G.NumEdges())
	fmt.Printf("hosts:         %d (beacons %d, destinations %d)\n", len(w.Net.Hosts), len(w.Beacons), len(w.Dests))
	fmt.Printf("paths (np):    %d\n", w.RM.NumPaths())
	fmt.Printf("covered links (nc, after alias reduction): %d\n", w.RM.NumLinks())
	fmt.Printf("rank(R):       %d (first moments %s)\n", w.RM.Rank(), deficiency(w.RM.Rank(), w.RM.NumLinks()))
	ar := lia.AugmentedRank(w.RM)
	fmt.Printf("rank(A):       %d (second moments %s — Theorem 1)\n", ar, deficiency(ar, w.RM.NumLinks()))
	fmt.Printf("fluttering path pairs remaining: %d\n", len(flutter))
}

func pathsOf(w *experiments.Workload) []topology.Path {
	out := make([]topology.Path, w.RM.NumPaths())
	for i := range out {
		out[i] = w.RM.Path(i)
	}
	return out
}

func deficiency(rank, nc int) string {
	if rank == nc {
		return "identifiable"
	}
	return fmt.Sprintf("rank deficient by %d", nc-rank)
}
