// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results as artifacts and the performance trajectory across PRs has data
// points.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
//
// Each benchmark line ("BenchmarkX-8  120  9255 ns/op  12 B/op  3 allocs/op
// 0.98 DR") becomes one record with the iteration count and every reported
// metric keyed by its unit; the goos/goarch/pkg/cpu header lines become the
// environment block.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type report struct {
	Env     map[string]string `json:"env"`
	Benches []bench           `json:"benches"`
}

type bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value (e.g. "ns/op")
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	rep := report{Env: map[string]string{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			rep.Env[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benches = append(rep.Benches, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs.
func parseBench(line string) (bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return bench{}, false
	}
	b := bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
