// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, compares benchmark documents against a
// committed baseline, and renders multi-run speedup tables — the three
// legs of the CI performance harness.
//
// Convert (default mode, stdin → stdout):
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
//
// Each benchmark line ("BenchmarkX-8  120  9255 ns/op  12 B/op  3 allocs/op
// 0.98 DR") becomes one record with the iteration count and every reported
// metric keyed by its unit; the goos/goarch/cpu header lines become the
// environment block. Multi-package streams (`go test -bench . ./pkg1
// ./pkg2`) are supported: each bench record carries the "pkg" header it
// appeared under, so one BENCH.json can hold the whole module's results.
//
// Compare against a baseline (the regression gate):
//
//	go run ./cmd/benchjson -baseline BENCH_pr4.json -max-regress 0.25 \
//	    -track 'BenchmarkEngineRebuild|BenchmarkServer' BENCH_pr5.json
//
// prints a markdown delta table (ns/op per bench, package-aware: benches
// are matched by package and name with the -N GOMAXPROCS suffix stripped)
// and exits non-zero when any bench matching -track regressed by more than
// -max-regress. Benches absent from the baseline are listed as new and
// never gate. When the baseline was recorded on a different cpu the deltas
// are cross-machine and the gate is advisory (reported, exit 0) unless
// -strict forces it.
//
// Speedup table across runs (the GOMAXPROCS scaling harness):
//
//	go run ./cmd/benchjson -speedup -labels 1,2,4 \
//	    -assert 'BenchmarkShardedEngineRebuild/sharded:1.5' \
//	    scale_1.json scale_2.json scale_4.json
//
// prints a markdown table of each bench's speedup relative to the first
// document (baseline ns/op ÷ run ns/op, so larger is faster) and, with
// -assert regex:min, exits non-zero unless every matching bench reaches
// the minimum speedup in the last document.
//
// Absolute latency gate (the steady-state SLO harness):
//
//	go run ./cmd/benchjson \
//	    -gate 'BenchmarkEngineDeltaRebuild/dirty1:1000000' scale.json
//
// prints a markdown table and exits non-zero unless every bench matching
// each -gate regex (repeatable; the spec splits on its last colon) comes in
// at or under the ns/op ceiling. Unlike -baseline, the limit is absolute —
// machine-dependent, but immune to a drifting baseline — so it suits hard
// targets like "a dirty-shard epoch stays under a millisecond". A -gate
// that matches no bench fails rather than passing vacuously.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type report struct {
	Env     map[string]string `json:"env"`
	Benches []bench           `json:"benches"`
}

type bench struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"` // package the bench ran in
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value (e.g. "ns/op")
}

func main() {
	var (
		baseline   = flag.String("baseline", "", "baseline BENCH.json to compare the argument document against")
		maxRegress = flag.Float64("max-regress", 0.25, "with -baseline: fail when a tracked bench's ns/op grows by more than this fraction")
		track      = flag.String("track", ".", "with -baseline: regex of bench names that gate (others are reported but never fail)")
		strict     = flag.Bool("strict", false, "with -baseline: gate regressions even when the baseline was recorded on a different cpu (default: advisory across machines)")
		speedup    = flag.Bool("speedup", false, "render a speedup table across the argument documents, relative to the first")
		labels     = flag.String("labels", "", "with -speedup: comma-separated column labels, one per document")
		assertSpec = flag.String("assert", "", "with -speedup: regex:min — every matching bench must reach the minimum speedup in the last document")
	)
	var gates []gateSpec
	flag.Func("gate", "regex:max-ns — every matching bench's ns/op must come in at or under the ceiling (repeatable)", func(s string) error {
		g, err := parseGate(s)
		if err != nil {
			return err
		}
		gates = append(gates, g)
		return nil
	})
	flag.Parse()
	var err error
	switch {
	case *baseline != "" && *speedup,
		len(gates) > 0 && (*baseline != "" || *speedup):
		err = fmt.Errorf("-baseline, -speedup and -gate are mutually exclusive")
	case *baseline != "":
		err = runBaseline(os.Stdout, *baseline, flag.Args(), *maxRegress, *track, *strict)
	case *speedup:
		err = runSpeedup(os.Stdout, flag.Args(), *labels, *assertSpec)
	case len(gates) > 0:
		err = runGate(os.Stdout, flag.Args(), gates)
	default:
		err = runConvert()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runConvert is the original mode: bench text on stdin, JSON on stdout.
func runConvert() error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	rep := report{Env: map[string]string{}}
	pkg := ""
	pkgs := map[string]bool{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "pkg:"):
			// Package headers repeat per package in a multi-package run;
			// track the current one and stamp it on each bench record.
			_, val, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(val)
			pkgs[pkg] = true
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			rep.Env[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Pkg = pkg
				rep.Benches = append(rep.Benches, b)
			}
		}
	}
	// env.pkg only describes a single-package stream; in multi-package runs
	// the per-record pkg fields carry the attribution.
	if len(pkgs) == 1 {
		rep.Env["pkg"] = pkg
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs.
func parseBench(line string) (bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return bench{}, false
	}
	b := bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// gomaxprocsSuffix matches the trailing -N goroutine-count suffix the test
// runner appends to bench names ("BenchmarkX/sub-8").
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// benchKey identifies a bench across documents: package plus name with the
// GOMAXPROCS suffix stripped, so runs at different -cpu settings compare.
func benchKey(b bench) string {
	return b.Pkg + " " + gomaxprocsSuffix.ReplaceAllString(b.Name, "")
}

func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// nsByKey indexes a document's ns/op by bench key, keeping the first record
// per key and the document's bench order.
func nsByKey(rep *report) (ns map[string]float64, order []string) {
	ns = map[string]float64{}
	for _, b := range rep.Benches {
		v, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		k := benchKey(b)
		if _, dup := ns[k]; dup {
			continue
		}
		ns[k] = v
		order = append(order, k)
	}
	return ns, order
}

// runBaseline compares one document against a committed baseline and gates
// on ns/op regressions of tracked benches.
func runBaseline(w io.Writer, basePath string, args []string, maxRegress float64, track string, strict bool) error {
	if len(args) != 1 {
		return fmt.Errorf("-baseline mode takes exactly one current BENCH.json argument")
	}
	trackRE, err := regexp.Compile(track)
	if err != nil {
		return fmt.Errorf("-track: %w", err)
	}
	base, err := loadReport(basePath)
	if err != nil {
		return err
	}
	cur, err := loadReport(args[0])
	if err != nil {
		return err
	}
	baseNS, _ := nsByKey(base)
	curNS, order := nsByKey(cur)
	// ns/op is only commensurable on the same hardware: when the baseline
	// was produced on a different CPU the deltas are still reported, but
	// the gate downgrades to a warning unless -strict forces it — a slower
	// runner generation must not read as a code regression.
	sameCPU := base.Env["cpu"] == cur.Env["cpu"]
	if !sameCPU {
		fmt.Fprintf(w, "> note: baseline cpu %q differs from current cpu %q — absolute deltas are cross-machine",
			base.Env["cpu"], cur.Env["cpu"])
		if !strict {
			fmt.Fprintf(w, "; the regression gate is advisory for this comparison")
		}
		fmt.Fprintf(w, "\n\n")
	}
	fmt.Fprintf(w, "| bench | baseline ns/op | current ns/op | delta | gated |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|:---:|\n")
	var regressions []string
	for _, k := range order {
		old, inBase := baseNS[k]
		now := curNS[k]
		gated := trackRE.MatchString(k)
		switch {
		case !inBase:
			fmt.Fprintf(w, "| %s | — | %.6g | new | %s |\n", k, now, mark(false))
		default:
			delta := (now - old) / old
			fmt.Fprintf(w, "| %s | %.6g | %.6g | %+.1f%% | %s |\n", k, old, now, 100*delta, mark(gated))
			if gated && delta > maxRegress {
				regressions = append(regressions,
					fmt.Sprintf("%s regressed %+.1f%% (%.6g → %.6g ns/op, limit %+.0f%%)",
						k, 100*delta, old, now, 100*maxRegress))
			}
		}
	}
	removed := make([]string, 0, len(baseNS))
	for k := range baseNS {
		if _, ok := curNS[k]; !ok {
			removed = append(removed, k)
		}
	}
	sort.Strings(removed)
	for _, k := range removed {
		fmt.Fprintf(w, "| %s | %.6g | — | removed | %s |\n", k, baseNS[k], mark(false))
	}
	if len(regressions) > 0 {
		if sameCPU || strict {
			return fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(regressions, "\n  "))
		}
		fmt.Fprintf(w, "\n> WARNING (not gating, cross-machine baseline):\n")
		for _, r := range regressions {
			fmt.Fprintf(w, "> %s\n", r)
		}
		return nil
	}
	fmt.Fprintf(w, "\n> no tracked bench regressed beyond %.0f%%\n", 100*maxRegress)
	return nil
}

// gateSpec is one -gate flag: an absolute ns/op ceiling every matching
// bench must respect.
type gateSpec struct {
	re    *regexp.Regexp
	maxNS float64
	raw   string
}

// parseGate decodes a regex:max-ns spec, splitting on the LAST colon so the
// regex part may itself contain colons.
func parseGate(s string) (gateSpec, error) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return gateSpec{}, fmt.Errorf("-gate wants regex:max-ns, got %q", s)
	}
	re, err := regexp.Compile(s[:i])
	if err != nil {
		return gateSpec{}, fmt.Errorf("-gate: %w", err)
	}
	maxNS, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil || maxNS <= 0 {
		return gateSpec{}, fmt.Errorf("-gate ceiling %q: want a positive ns/op number", s[i+1:])
	}
	return gateSpec{re: re, maxNS: maxNS, raw: s}, nil
}

// runGate checks one document's ns/op against absolute ceilings.
func runGate(w io.Writer, args []string, gates []gateSpec) error {
	if len(args) != 1 {
		return fmt.Errorf("-gate mode takes exactly one BENCH.json argument")
	}
	rep, err := loadReport(args[0])
	if err != nil {
		return err
	}
	ns, order := nsByKey(rep)
	fmt.Fprintf(w, "| bench | ns/op | limit ns | ok |\n")
	fmt.Fprintf(w, "|---|---:|---:|:---:|\n")
	var failures []string
	matched := make([]int, len(gates))
	for _, k := range order {
		limit := 0.0 // tightest ceiling across the specs that match this bench
		hit := false
		for gi, g := range gates {
			if !g.re.MatchString(k) {
				continue
			}
			matched[gi]++
			if !hit || g.maxNS < limit {
				limit = g.maxNS
			}
			hit = true
		}
		if !hit {
			continue
		}
		ok := ns[k] <= limit
		fmt.Fprintf(w, "| %s | %.6g | %.6g | %s |\n", k, ns[k], limit, mark(ok))
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s took %.6g ns/op, ceiling %.6g", k, ns[k], limit))
		}
	}
	// A spec that matches nothing must fail: a renamed or filtered-out bench
	// would otherwise turn the gate green with no data.
	for gi, g := range gates {
		if matched[gi] == 0 {
			failures = append(failures, fmt.Sprintf("-gate %q matched no bench", g.raw))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("latency gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "\n> every gated bench is under its ns/op ceiling\n")
	return nil
}

func mark(b bool) string {
	if b {
		return "✓"
	}
	return " "
}

// runSpeedup renders ns/op speedups of each document relative to the first
// and optionally asserts a minimum speedup in the last document.
func runSpeedup(w io.Writer, paths []string, labels, assertSpec string) error {
	if len(paths) < 2 {
		return fmt.Errorf("-speedup mode needs at least two BENCH.json arguments")
	}
	cols := make([]string, len(paths))
	for i, p := range paths {
		cols[i] = p
	}
	if labels != "" {
		parts := strings.Split(labels, ",")
		if len(parts) != len(paths) {
			return fmt.Errorf("-labels names %d columns for %d documents", len(parts), len(paths))
		}
		cols = parts
	}
	var assertRE *regexp.Regexp
	minSpeedup := 0.0
	if assertSpec != "" {
		spec, minStr, ok := strings.Cut(assertSpec, ":")
		if !ok {
			return fmt.Errorf("-assert wants regex:min, got %q", assertSpec)
		}
		var err error
		if assertRE, err = regexp.Compile(spec); err != nil {
			return fmt.Errorf("-assert: %w", err)
		}
		if minSpeedup, err = strconv.ParseFloat(minStr, 64); err != nil {
			return fmt.Errorf("-assert minimum %q: %w", minStr, err)
		}
	}
	reps := make([]*report, len(paths))
	for i, p := range paths {
		var err error
		if reps[i], err = loadReport(p); err != nil {
			return err
		}
	}
	ns := make([]map[string]float64, len(reps))
	var order []string
	for i, rep := range reps {
		ns[i], _ = nsByKey(rep)
		if i == 0 {
			_, order = nsByKey(rep)
		}
	}
	fmt.Fprintf(w, "| bench | %s ns/op |", cols[0])
	for _, c := range cols[1:] {
		fmt.Fprintf(w, " ×%s |", c)
	}
	fmt.Fprintf(w, "\n|---|---:|")
	for range cols[1:] {
		fmt.Fprintf(w, "---:|")
	}
	fmt.Fprintf(w, "\n")
	var failures []string
	asserted := 0
	for _, k := range order {
		base := ns[0][k]
		assertThis := assertRE != nil && assertRE.MatchString(k)
		if assertThis {
			asserted++
		}
		fmt.Fprintf(w, "| %s | %.6g |", k, base)
		for i := range paths[1:] {
			last := i+1 == len(paths)-1
			now, ok := ns[i+1][k]
			if !ok || now == 0 {
				fmt.Fprintf(w, " — |")
				// A missing or zero measurement must fail the assertion,
				// not vacuously pass it: a crashed or filtered bench run
				// would otherwise turn the gate green with no data.
				if last && assertThis {
					failures = append(failures,
						fmt.Sprintf("%s has no ns/op in %s, cannot assert ≥ %.2f×", k, cols[len(cols)-1], minSpeedup))
				}
				continue
			}
			sp := base / now
			fmt.Fprintf(w, " %.2f |", sp)
			if last && assertThis && sp < minSpeedup {
				failures = append(failures,
					fmt.Sprintf("%s reached %.2f× in %s, need ≥ %.2f×", k, sp, cols[len(cols)-1], minSpeedup))
			}
		}
		fmt.Fprintf(w, "\n")
	}
	if assertRE != nil && asserted == 0 {
		failures = append(failures, fmt.Sprintf("-assert %q matched no bench", assertRE))
	}
	if len(failures) > 0 {
		return fmt.Errorf("speedup assertion failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
