// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results as artifacts and the performance trajectory across PRs has data
// points.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
//
// Each benchmark line ("BenchmarkX-8  120  9255 ns/op  12 B/op  3 allocs/op
// 0.98 DR") becomes one record with the iteration count and every reported
// metric keyed by its unit; the goos/goarch/cpu header lines become the
// environment block. Multi-package streams (`go test -bench . ./pkg1
// ./pkg2`) are supported: each bench record carries the "pkg" header it
// appeared under, so one BENCH.json can hold the whole module's results.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type report struct {
	Env     map[string]string `json:"env"`
	Benches []bench           `json:"benches"`
}

type bench struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"` // package the bench ran in
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value (e.g. "ns/op")
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	rep := report{Env: map[string]string{}}
	pkg := ""
	pkgs := map[string]bool{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "pkg:"):
			// Package headers repeat per package in a multi-package run;
			// track the current one and stamp it on each bench record.
			_, val, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(val)
			pkgs[pkg] = true
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			rep.Env[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Pkg = pkg
				rep.Benches = append(rep.Benches, b)
			}
		}
	}
	// env.pkg only describes a single-package stream; in multi-package runs
	// the per-record pkg fields carry the attribution.
	if len(pkgs) == 1 {
		rep.Env["pkg"] = pkg
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs.
func parseBench(line string) (bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return bench{}, false
	}
	b := bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
