package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals a report to a temp file and returns its path.
func writeReport(t *testing.T, name string, rep report) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func mkReport(cpu string, ns map[string]float64) report {
	rep := report{Env: map[string]string{"cpu": cpu}}
	for name, v := range ns {
		rep.Benches = append(rep.Benches, bench{
			Name: name, Pkg: "lia", Iterations: 10,
			Metrics: map[string]float64{"ns/op": v},
		})
	}
	return rep
}

func TestBenchKeyStripsGOMAXPROCS(t *testing.T) {
	a := bench{Name: "BenchmarkEngineRebuild/warm-8", Pkg: "lia"}
	b := bench{Name: "BenchmarkEngineRebuild/warm-4", Pkg: "lia"}
	if benchKey(a) != benchKey(b) {
		t.Fatalf("keys differ across -cpu runs: %q vs %q", benchKey(a), benchKey(b))
	}
	if benchKey(a) == benchKey(bench{Name: "BenchmarkEngineRebuild/warm-8", Pkg: "lia/serve"}) {
		t.Fatal("keys must be package-aware")
	}
}

func TestBaselineGate(t *testing.T) {
	base := writeReport(t, "base.json", mkReport("x", map[string]float64{
		"BenchmarkA-4": 100, "BenchmarkB-4": 100, "BenchmarkUntracked-4": 100,
	}))
	// B regressed 50%, A improved, Untracked regressed but is not tracked,
	// New has no baseline.
	cur := writeReport(t, "cur.json", mkReport("x", map[string]float64{
		"BenchmarkA-8": 80, "BenchmarkB-8": 150, "BenchmarkUntracked-8": 400, "BenchmarkNew-8": 5,
	}))
	var out strings.Builder
	err := runBaseline(&out, base, []string{cur}, 0.25, "BenchmarkA|BenchmarkB", false)
	if err == nil {
		t.Fatalf("50%% regression passed the 25%% gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkB") || strings.Contains(err.Error(), "Untracked") {
		t.Fatalf("gate blamed the wrong bench: %v", err)
	}
	if !strings.Contains(out.String(), "| new |") {
		t.Fatalf("new bench not reported:\n%s", out.String())
	}
	// Within the limit the gate passes.
	out.Reset()
	if err := runBaseline(&out, base, []string{cur}, 0.6, "BenchmarkA|BenchmarkB", false); err != nil {
		t.Fatalf("60%% gate rejected a 50%% regression: %v", err)
	}
}

func TestBaselineCPUMismatchAdvisory(t *testing.T) {
	base := writeReport(t, "base.json", mkReport("old-cpu", map[string]float64{"BenchmarkA-4": 100}))
	// 100% regression, but recorded on different hardware.
	cur := writeReport(t, "cur.json", mkReport("new-cpu", map[string]float64{"BenchmarkA-4": 200}))
	var out strings.Builder
	if err := runBaseline(&out, base, []string{cur}, 0.25, ".", false); err != nil {
		t.Fatalf("cross-machine regression gated by default: %v", err)
	}
	if !strings.Contains(out.String(), "cross-machine") || !strings.Contains(out.String(), "WARNING") {
		t.Fatalf("cpu mismatch or advisory warning not surfaced:\n%s", out.String())
	}
	// -strict restores the gate regardless of hardware.
	out.Reset()
	if err := runBaseline(&out, base, []string{cur}, 0.25, ".", true); err == nil {
		t.Fatalf("-strict did not gate a cross-machine regression:\n%s", out.String())
	}
}

func TestSpeedupTableAndAssert(t *testing.T) {
	p1 := writeReport(t, "1.json", mkReport("x", map[string]float64{"BenchmarkSharded-4": 400, "BenchmarkOther-4": 100}))
	p2 := writeReport(t, "2.json", mkReport("x", map[string]float64{"BenchmarkSharded-4": 210, "BenchmarkOther-4": 95}))
	p4 := writeReport(t, "4.json", mkReport("x", map[string]float64{"BenchmarkSharded-4": 100, "BenchmarkOther-4": 90}))
	var out strings.Builder
	if err := runSpeedup(&out, []string{p1, p2, p4}, "1,2,4", "BenchmarkSharded:1.5"); err != nil {
		t.Fatalf("4.00x speedup failed a 1.5x assertion: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "4.00") {
		t.Fatalf("speedup table missing the 4.00x entry:\n%s", out.String())
	}
	// Assertion failure: require 1.5x of the bench that only reached 1.11x.
	out.Reset()
	if err := runSpeedup(&out, []string{p1, p2, p4}, "1,2,4", "BenchmarkOther:1.5"); err == nil {
		t.Fatalf("1.11x speedup passed a 1.5x assertion:\n%s", out.String())
	}
	// An assertion that matches nothing must fail loudly, not pass silently.
	out.Reset()
	if err := runSpeedup(&out, []string{p1, p4}, "", "BenchmarkMissing:1.5"); err == nil {
		t.Fatal("assertion over no matching benches passed")
	}
	// An asserted bench missing from the last document (crashed or filtered
	// run) must fail, not vacuously pass.
	pEmpty := writeReport(t, "empty.json", mkReport("x", map[string]float64{"BenchmarkOther-4": 90}))
	out.Reset()
	if err := runSpeedup(&out, []string{p1, pEmpty}, "", "BenchmarkSharded:1.5"); err == nil {
		t.Fatalf("assertion passed with no measurement in the last document:\n%s", out.String())
	}
	// Label count must match the document count.
	if err := runSpeedup(&out, []string{p1, p4}, "1,2,4", ""); err == nil {
		t.Fatal("mismatched -labels accepted")
	}
}

func TestParseGate(t *testing.T) {
	g, err := parseGate("BenchmarkDelta/dirty1:1e6")
	if err != nil {
		t.Fatal(err)
	}
	if g.maxNS != 1e6 || !g.re.MatchString("lia BenchmarkDelta/dirty1") {
		t.Fatalf("parsed %+v", g)
	}
	// The spec splits on its LAST colon, so the regex part may contain one.
	g, err = parseGate("Benchmark(Delta|Full):500000")
	if err != nil {
		t.Fatal(err)
	}
	if g.maxNS != 500000 {
		t.Fatalf("ceiling = %g, want 500000", g.maxNS)
	}
	for _, bad := range []string{"no-colon", "Bench:-5", "Bench:0", "Bench:not-a-number", "(:1e6"} {
		if _, err := parseGate(bad); err == nil {
			t.Fatalf("%q parsed", bad)
		}
	}
}

func TestLatencyGate(t *testing.T) {
	doc := writeReport(t, "scale.json", mkReport("x", map[string]float64{
		"BenchmarkDelta/dirty1-4": 120_000,
		"BenchmarkDelta/cold-4":   3_600_000,
		"BenchmarkOther-4":        50,
	}))
	mustGate := func(specs ...string) []gateSpec {
		t.Helper()
		gs := make([]gateSpec, len(specs))
		for i, s := range specs {
			g, err := parseGate(s)
			if err != nil {
				t.Fatal(err)
			}
			gs[i] = g
		}
		return gs
	}
	// Under the ceiling: pass, and the table shows the gated benches only.
	var out strings.Builder
	if err := runGate(&out, []string{doc}, mustGate("BenchmarkDelta/dirty1:1000000")); err != nil {
		t.Fatalf("120µs failed a 1ms ceiling: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "dirty1") || strings.Contains(out.String(), "BenchmarkOther") {
		t.Fatalf("gate table wrong:\n%s", out.String())
	}
	// Over the ceiling: fail and blame the right bench.
	out.Reset()
	err := runGate(&out, []string{doc}, mustGate("BenchmarkDelta:1000000"))
	if err == nil {
		t.Fatalf("3.6ms cold rebuild passed a 1ms ceiling:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "cold") || strings.Contains(err.Error(), "dirty1") {
		t.Fatalf("gate blamed the wrong bench: %v", err)
	}
	// Overlapping specs: the tightest ceiling wins.
	out.Reset()
	if err := runGate(&out, []string{doc}, mustGate("BenchmarkDelta/dirty1:5000000", "BenchmarkDelta/dirty1:100000")); err == nil {
		t.Fatalf("tightest overlapping ceiling not enforced:\n%s", out.String())
	}
	// A spec matching no bench must fail loudly, not pass vacuously.
	out.Reset()
	if err := runGate(&out, []string{doc}, mustGate("BenchmarkRenamed:1000000")); err == nil {
		t.Fatal("gate over no matching benches passed")
	}
	// Exactly one document.
	if err := runGate(&out, []string{doc, doc}, mustGate("BenchmarkDelta:1")); err == nil {
		t.Fatal("two documents accepted")
	}
}

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkServerInfer-8   52452   44019 ns/op   14491 B/op   123 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkServerInfer-8" || b.Iterations != 52452 {
		t.Fatalf("parsed %+v", b)
	}
	if b.Metrics["ns/op"] != 44019 || b.Metrics["allocs/op"] != 123 {
		t.Fatalf("metrics %v", b.Metrics)
	}
	if _, ok := parseBench("BenchmarkBroken-8 not-a-number ns/op"); ok {
		t.Fatal("malformed line must not parse")
	}
}
