package main

import "testing"

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkServerInfer-8   52452   44019 ns/op   14491 B/op   123 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkServerInfer-8" || b.Iterations != 52452 {
		t.Fatalf("parsed %+v", b)
	}
	if b.Metrics["ns/op"] != 44019 || b.Metrics["allocs/op"] != 123 {
		t.Fatalf("metrics %v", b.Metrics)
	}
	if _, ok := parseBench("BenchmarkBroken-8 not-a-number ns/op"); ok {
		t.Fatal("malformed line must not parse")
	}
}
