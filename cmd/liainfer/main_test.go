package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenStream drives the binary end to end through the file-based
// SnapshotSource: topology document + newline-delimited measurement stream
// (mixing bare-array and collector-format lines), compared byte-for-byte
// against the committed golden output. The whole pipeline is deterministic,
// so any drift in topology reduction, Phase 1, Phase 2, or the output
// schema shows up here.
func TestGoldenStream(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{
		"-topo", filepath.Join("testdata", "topology.json"),
		"-stream", filepath.Join("testdata", "snapshots.ndjson"),
		"-json",
	}, strings.NewReader(""), &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	compareGolden(t, out.Bytes())
}

// TestGoldenClassic feeds the same campaign through the classic one-document
// mode; the result must be identical to the streaming mode's.
func TestGoldenClassic(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{
		"-in", filepath.Join("testdata", "measurements.json"),
		"-json",
	}, strings.NewReader(""), &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	compareGolden(t, out.Bytes())
}

// TestGoldenStdin exercises the default stdin path.
func TestGoldenStdin(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("testdata", "measurements.json"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-json"}, bytes.NewReader(doc), &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	compareGolden(t, out.Bytes())
}

func compareGolden(t *testing.T, got []byte) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Byte mismatch: decode both for a readable diagnosis before failing.
	var g, w Output
	if err := json.Unmarshal(got, &g); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, got)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	t.Fatalf("output drifted from golden: got kept=%d removed=%d threshold=%g %d links, want kept=%d removed=%d threshold=%g %d links\nfull output:\n%s",
		g.Kept, g.Removed, g.Threshold, len(g.Links), w.Kept, w.Removed, w.Threshold, len(w.Links), got)
}

// TestRunErrors pins the argument-validation paths.
func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-stream", "x.ndjson"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Fatal("-stream without -topo must fail")
	}
	if err := run([]string{"-topo", "x.json"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Fatal("-topo without -stream must fail (not fall through to stdin)")
	}
	if err := run([]string{"-strategy", "bogus", "-in", filepath.Join("testdata", "measurements.json")},
		strings.NewReader(""), &out, &errb); err == nil {
		t.Fatal("unknown strategy must fail")
	}
	if err := run([]string{}, strings.NewReader(`{"probes":10,"paths":[{"beacon":0,"dst":1,"links":[1]}],"snapshots":[[1.0]]}`),
		&out, &errb); err == nil || !strings.Contains(err.Error(), "at least 3 snapshots") {
		t.Fatalf("single-snapshot input error = %v", err)
	}
}
