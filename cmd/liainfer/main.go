// Command liainfer is the central-server batch tool: it reads a measurement
// file (topology paths plus per-snapshot received fractions), learns the
// link variances from all but the last snapshot, and infers the per-link
// loss rates of the last snapshot.
//
// Input format (JSON):
//
//	{
//	  "probes": 1000,
//	  "paths": [{"beacon": 0, "dst": 5, "links": [1, 2, 3]}, ...],
//	  "snapshots": [[0.99, 1.0, ...], ...]   // received fraction per path
//	}
//
// Output: one line per virtual link with the inferred loss rate, the
// learned variance, and the member physical links, or JSON with -json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"lia/internal/core"
	"lia/internal/topology"
)

// Input is the measurement file schema.
type Input struct {
	Probes    int         `json:"probes"`
	Paths     []pathSpec  `json:"paths"`
	Snapshots [][]float64 `json:"snapshots"`
}

type pathSpec struct {
	Beacon int   `json:"beacon"`
	Dst    int   `json:"dst"`
	Links  []int `json:"links"`
}

// Output is the machine-readable result schema.
type Output struct {
	Kept    int          `json:"kept"`
	Removed int          `json:"removed"`
	Links   []LinkResult `json:"links"`
}

// LinkResult describes one virtual link's inference.
type LinkResult struct {
	Members  []int   `json:"members"`
	LossRate float64 `json:"loss_rate"`
	Variance float64 `json:"variance"`
	Kept     bool    `json:"kept"`
}

func main() {
	var (
		file     = flag.String("in", "-", "measurement file (JSON); - for stdin")
		asJSON   = flag.Bool("json", false, "emit JSON instead of text")
		strategy = flag.String("strategy", "paper", "phase-2 elimination: paper or greedy")
	)
	flag.Parse()

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}
	var input Input
	if err := json.NewDecoder(in).Decode(&input); err != nil {
		fatalf("decode input: %v", err)
	}
	if input.Probes <= 0 {
		input.Probes = 1000
	}
	if len(input.Snapshots) < 3 {
		fatalf("need at least 3 snapshots (2 to learn, 1 to infer), have %d", len(input.Snapshots))
	}
	paths := make([]topology.Path, len(input.Paths))
	for i, p := range input.Paths {
		paths[i] = topology.Path{Beacon: p.Beacon, Dst: p.Dst, Links: p.Links}
	}
	paths, dropped := topology.RemoveFluttering(paths)
	if len(dropped) > 0 {
		fmt.Fprintf(os.Stderr, "liainfer: dropped %d fluttering paths (T.2): %v\n", len(dropped), dropped)
	}
	rm, err := topology.Build(paths)
	if err != nil {
		fatalf("%v", err)
	}
	opts := core.Options{}
	if *strategy == "greedy" {
		opts.Strategy = core.EliminateGreedyBasis
	}
	l := core.New(rm, opts)
	for _, snap := range input.Snapshots[:len(input.Snapshots)-1] {
		if len(snap) != rm.NumPaths() {
			fatalf("snapshot has %d fractions for %d paths", len(snap), rm.NumPaths())
		}
		l.AddSnapshot(logRates(snap, input.Probes))
	}
	res, err := l.Infer(logRates(input.Snapshots[len(input.Snapshots)-1], input.Probes))
	if err != nil {
		fatalf("%v", err)
	}

	out := Output{Kept: len(res.Kept), Removed: len(res.Removed)}
	keptSet := make(map[int]bool)
	for _, k := range res.Kept {
		keptSet[k] = true
	}
	for k := 0; k < rm.NumLinks(); k++ {
		out.Links = append(out.Links, LinkResult{
			Members:  rm.Members(k),
			LossRate: res.LossRates[k],
			Variance: res.Variances[k],
			Kept:     keptSet[k],
		})
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("learned from %d snapshots over %d paths, %d virtual links (kept %d in R*)\n",
		len(input.Snapshots)-1, rm.NumPaths(), rm.NumLinks(), len(res.Kept))
	for k, lr := range out.Links {
		status := "eliminated (≈0)"
		if lr.Kept {
			status = "solved"
		}
		fmt.Printf("link %3d members=%v loss=%.5f variance=%.3g %s\n",
			k, lr.Members, lr.LossRate, lr.Variance, status)
	}
}

func logRates(frac []float64, probes int) []float64 {
	y := make([]float64, len(frac))
	for i, f := range frac {
		if f <= 0 {
			f = 0.5 / float64(probes)
		}
		y[i] = math.Log(f)
	}
	return y
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "liainfer: "+format+"\n", args...)
	os.Exit(2)
}
