// Command liainfer is the central-server batch tool: it learns the link
// variances from all snapshots but the last and infers the per-link loss
// rates of the last one, using the public lia Engine and SnapshotSource
// API.
//
// Two input modes:
//
// Classic (-in): one JSON document carrying topology and measurements:
//
//	{
//	  "probes": 1000,
//	  "paths": [{"beacon": 0, "dst": 5, "links": [1, 2, 3]}, ...],
//	  "snapshots": [[0.99, 1.0, ...], ...]   // received fraction per path
//	}
//
// Streaming (-topo + -stream): the topology document (probes + paths, no
// snapshots) plus a newline-delimited measurement file — one JSON array of
// received fractions per line, or collector-format {"frac": [...]} lines —
// read through a file-based lia.SnapshotSource.
//
// Output: one line per virtual link with the inferred loss rate, the
// learned variance, and the member physical links, or JSON with -json.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"lia"
)

// Input is the classic measurement file schema; TopoInput (the -topo
// schema) is the same document without snapshots.
type Input struct {
	Probes    int         `json:"probes"`
	Paths     []pathSpec  `json:"paths"`
	Snapshots [][]float64 `json:"snapshots"`
}

type pathSpec struct {
	Beacon int   `json:"beacon"`
	Dst    int   `json:"dst"`
	Links  []int `json:"links"`
}

// Output is the machine-readable result schema.
type Output struct {
	Kept      int          `json:"kept"`
	Removed   int          `json:"removed"`
	Threshold float64      `json:"threshold"`
	Links     []LinkResult `json:"links"`
}

// LinkResult describes one virtual link's inference.
type LinkResult struct {
	Members   []int   `json:"members"`
	LossRate  float64 `json:"loss_rate"`
	Variance  float64 `json:"variance"`
	Kept      bool    `json:"kept"`
	Congested bool    `json:"congested"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "liainfer: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("liainfer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file     = fs.String("in", "-", "measurement file (JSON); - for stdin")
		topoFile = fs.String("topo", "", "topology file (JSON, probes+paths) for streaming mode")
		stream   = fs.String("stream", "", "newline-delimited snapshot file (streaming mode; requires -topo)")
		asJSON   = fs.Bool("json", false, "emit JSON instead of text")
		strategy = fs.String("strategy", "paper", "phase-2 elimination: paper or greedy")
		tl       = fs.Float64("tl", lia.DefaultThreshold, "congestion threshold (explicit 0 flags any inferred loss)")
		workers  = fs.Int("workers", 0, "phase-1/phase-2 goroutines (0 = GOMAXPROCS, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tlSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "tl" {
			tlSet = true
		}
	})

	var input Input
	switch {
	case *stream != "" && *topoFile == "":
		return errors.New("-stream requires -topo")
	case *topoFile != "" && *stream == "":
		return errors.New("-topo requires -stream")
	case *stream != "":
		f, err := os.Open(*topoFile)
		if err != nil {
			return err
		}
		err = json.NewDecoder(f).Decode(&input)
		f.Close()
		if err != nil {
			return fmt.Errorf("decode topology: %w", err)
		}
	case *file == "-":
		if err := json.NewDecoder(stdin).Decode(&input); err != nil {
			return fmt.Errorf("decode input: %w", err)
		}
	default:
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		err = json.NewDecoder(f).Decode(&input)
		f.Close()
		if err != nil {
			return fmt.Errorf("decode input: %w", err)
		}
	}
	if input.Probes <= 0 {
		input.Probes = 1000
	}

	paths := make([]lia.Path, len(input.Paths))
	for i, p := range input.Paths {
		paths[i] = lia.Path{Beacon: p.Beacon, Dst: p.Dst, Links: p.Links}
	}
	paths, dropped := lia.RemoveFluttering(paths)
	if len(dropped) > 0 {
		fmt.Fprintf(stderr, "liainfer: dropped %d fluttering paths (T.2): %v\n", len(dropped), dropped)
	}
	rm, err := lia.NewTopology(paths)
	if err != nil {
		return err
	}

	opts := []lia.Option{lia.WithWorkers(*workers)}
	switch *strategy {
	case "paper":
	case "greedy":
		opts = append(opts, lia.WithStrategy(lia.StrategyGreedyBasis))
	default:
		return fmt.Errorf("unknown -strategy %q", *strategy)
	}
	if tlSet {
		opts = append(opts, lia.WithThreshold(*tl))
	}
	eng, err := lia.NewEngine(rm, opts...)
	if err != nil {
		return err
	}

	var src lia.SnapshotSource
	if *stream != "" {
		fsrc, err := lia.OpenFileSource(*stream, input.Probes)
		if err != nil {
			return err
		}
		defer fsrc.Close()
		src = fsrc
	} else {
		src = lia.NewTraceSource(input.Snapshots, input.Probes)
	}

	ctx := context.Background()
	last, err := ingestAllButLast(ctx, eng, src)
	if err != nil {
		return err
	}
	if eng.Snapshots() < 2 {
		return fmt.Errorf("need at least 3 snapshots (2 to learn, 1 to infer), have %d", eng.Snapshots()+1)
	}
	congested, res, err := eng.InferCongested(ctx, last.Y)
	if err != nil {
		return err
	}

	out := Output{Kept: len(res.Kept), Removed: len(res.Removed), Threshold: eng.Threshold()}
	keptSet := make(map[int]bool)
	for _, k := range res.Kept {
		keptSet[k] = true
	}
	for k := 0; k < rm.NumLinks(); k++ {
		out.Links = append(out.Links, LinkResult{
			Members:   rm.Members(k),
			LossRate:  res.LossRates[k],
			Variance:  res.Variances[k],
			Kept:      keptSet[k],
			Congested: congested[k],
		})
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(stdout, "learned from %d snapshots over %d paths, %d virtual links (kept %d in R*)\n",
		eng.Snapshots(), rm.NumPaths(), rm.NumLinks(), len(res.Kept))
	for k, lr := range out.Links {
		status := "eliminated (≈0)"
		if lr.Kept {
			status = "solved"
		}
		if lr.Congested {
			status += " CONGESTED"
		}
		fmt.Fprintf(stdout, "link %3d members=%v loss=%.5f variance=%.3g %s\n",
			k, lr.Members, lr.LossRate, lr.Variance, status)
	}
	return nil
}

// ingestAllButLast streams the source into the engine holding one snapshot
// back, and returns that final snapshot as the inference target.
func ingestAllButLast(ctx context.Context, eng *lia.Engine, src lia.SnapshotSource) (lia.Snapshot, error) {
	pending, err := src.Next(ctx)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return lia.Snapshot{}, errors.New("no snapshots in input")
		}
		return lia.Snapshot{}, err
	}
	for {
		next, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			return pending, nil
		}
		if err != nil {
			return lia.Snapshot{}, err
		}
		if err := eng.Ingest(pending.Y); err != nil {
			return lia.Snapshot{}, err
		}
		pending = next
	}
}
