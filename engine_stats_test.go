package lia_test

// engine_stats_test.go covers the engine observability hooks behind
// liaserve's /v1/status endpoint (Stats, Eliminated), the Phase-2
// elimination cache keyed on the variance ordering, the watcher's
// staleness/refresh API over windowed moments, and the typed NDJSON line
// errors of FileSource.

import (
	"context"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/iotest"

	"lia"
)

// TestEngineStatsElimCache: Stats must track epochs and rebuilds, and a
// rebuild whose variance ordering matches the previous epoch's must reuse
// the cached elimination — with results bitwise identical to a from-scratch
// engine fed the same snapshots.
func TestEngineStatsElimCache(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	ys := collectSnapshots(t, rm, 11, 60)

	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Snapshots != 0 || st.StateEpoch != -1 || st.Rebuilds != 0 {
		t.Fatalf("fresh engine Stats = %+v", st)
	}
	if err := eng.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.EpochLag != 60 {
		t.Fatalf("pre-rebuild EpochLag = %d, want 60", st.EpochLag)
	}
	if _, err := eng.Infer(ctx, ys[len(ys)-1]); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Snapshots != 60 || st.StateEpoch != 60 || st.EpochLag != 0 {
		t.Fatalf("post-rebuild Stats = %+v", st)
	}
	if st.Rebuilds != 1 || st.LastRebuild <= 0 {
		t.Fatalf("Rebuilds = %d, LastRebuild = %v", st.Rebuilds, st.LastRebuild)
	}
	if st.Window != 0 || st.Decay != 0 {
		t.Fatalf("cumulative engine reports Window=%d Decay=%g", st.Window, st.Decay)
	}

	// Doubling the identical campaign leaves the variance ordering intact,
	// so the second rebuild must hit the elimination cache.
	if err := eng.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Infer(ctx, ys[len(ys)-1])
	if err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Rebuilds != 2 || st.ElimReuses != 1 {
		t.Fatalf("after stable-order rebuild: Rebuilds=%d ElimReuses=%d, want 2/1", st.Rebuilds, st.ElimReuses)
	}

	// From-scratch reference over the same 120 snapshots: the cached
	// elimination and every inferred value must match bitwise.
	fresh, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	if err := fresh.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	wantRes, err := fresh.Infer(ctx, ys[len(ys)-1])
	if err != nil {
		t.Fatal(err)
	}
	kept, removed, err := eng.Eliminated(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantKept, wantRemoved, err := fresh.Eliminated(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(wantKept) || len(removed) != len(wantRemoved) {
		t.Fatalf("partition sizes: kept %d/%d removed %d/%d", len(kept), len(wantKept), len(removed), len(wantRemoved))
	}
	for i := range kept {
		if kept[i] != wantKept[i] {
			t.Fatalf("kept[%d] = %d, from-scratch %d", i, kept[i], wantKept[i])
		}
	}
	for i := range removed {
		if removed[i] != wantRemoved[i] {
			t.Fatalf("removed[%d] = %d, from-scratch %d", i, removed[i], wantRemoved[i])
		}
	}
	for k := range wantRes.LossRates {
		if math.Float64bits(res.LossRates[k]) != math.Float64bits(wantRes.LossRates[k]) ||
			math.Float64bits(res.Variances[k]) != math.Float64bits(wantRes.Variances[k]) {
			t.Fatalf("link %d: cached-elimination result differs from from-scratch: loss %v vs %v, var %v vs %v",
				k, res.LossRates[k], wantRes.LossRates[k], res.Variances[k], wantRes.Variances[k])
		}
	}
	if fs := fresh.Stats(); fs.ElimReuses != 0 {
		t.Fatalf("from-scratch engine reports %d elim reuses", fs.ElimReuses)
	}
}

// TestWatcherStaleRefresh: a watcher over a WithWindow engine must report
// staleness as the stream advances and, after RefreshIfStale, solve over
// exactly the engine's current windowed moments — tracking the regime
// change — while preserving its deactivated-path set.
func TestWatcherStaleRefresh(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	const window = 30
	eng, err := lia.NewEngine(rm, lia.WithWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Window != window {
		t.Fatalf("Stats.Window = %d, want %d", st.Window, window)
	}
	old := collectSnapshots(t, rm, 21, 60)
	cur := collectSnapshots(t, rm, 22, 60)
	if err := eng.IngestBatch(old); err != nil {
		t.Fatal(err)
	}
	w, err := eng.Watch()
	if err != nil {
		t.Fatal(err)
	}
	if w.Stale() {
		t.Fatal("watcher stale immediately after Watch")
	}
	if w.Epoch() != 60 {
		t.Fatalf("watcher epoch = %d, want 60", w.Epoch())
	}
	if err := w.Deactivate(0); err != nil {
		t.Fatal(err)
	}

	// New regime fully turns the window over.
	if err := eng.IngestBatch(cur); err != nil {
		t.Fatal(err)
	}
	if !w.Stale() {
		t.Fatal("watcher not stale after 60 new snapshots")
	}
	refreshed, err := w.RefreshIfStale()
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("RefreshIfStale did not refresh a stale watcher")
	}
	if w.Stale() || w.Epoch() != 120 {
		t.Fatalf("after refresh: stale=%v epoch=%d", w.Stale(), w.Epoch())
	}
	if w.Active(0) {
		t.Fatal("refresh lost the deactivated-path set")
	}
	if again, err := w.RefreshIfStale(); err != nil || again {
		t.Fatalf("RefreshIfStale on fresh watcher = (%v, %v), want (false, nil)", again, err)
	}

	// Reference: a watcher built over a fresh windowed engine that only ever
	// saw the last `window` snapshots, with the same path deactivated. The
	// refreshed watcher's moments must match it (same windowed covariances up
	// to reverse-Welford rounding), i.e. the regime change is tracked.
	ref, err := lia.NewEngine(rm, lia.WithWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.IngestBatch(cur[len(cur)-window:]); err != nil {
		t.Fatal(err)
	}
	rw, err := ref.Watch()
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Deactivate(0); err != nil {
		t.Fatal(err)
	}
	got, err := w.Variances()
	if err != nil {
		t.Fatal(err)
	}
	want, err := rw.Variances()
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if d := math.Abs(got[k] - want[k]); d > 1e-9+1e-6*math.Abs(want[k]) {
			t.Fatalf("link %d: refreshed watcher variance %g, fresh-window watcher %g (Δ=%g)", k, got[k], want[k], d)
		}
	}
}

// TestFileSourceLineErrorResume: malformed and partial NDJSON lines surface
// as *LineError with the 1-based line number, and the source resumes on the
// following line.
func TestFileSourceLineErrorResume(t *testing.T) {
	ctx := context.Background()
	const stream = "[0.9, 1.0]\n[0.8, 0.95\n{\"snapshot\": 2}\n[0.7, 0.85]\n"
	src := lia.NewFileSource(strings.NewReader(stream), 1000)

	if _, err := src.Next(ctx); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	var le *lia.LineError
	if _, err := src.Next(ctx); !errors.As(err, &le) || le.Line != 2 {
		t.Fatalf("line 2: got %v, want *LineError{Line: 2}", err)
	}
	le = nil
	if _, err := src.Next(ctx); !errors.As(err, &le) || le.Line != 3 {
		t.Fatalf("line 3 (object without frac): got %v, want *LineError{Line: 3}", err)
	}
	if !strings.Contains(le.Error(), "line 3") {
		t.Fatalf("LineError message %q does not name the line", le.Error())
	}
	if _, err := src.Next(ctx); err != nil {
		t.Fatalf("resume after bad lines: %v", err)
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF: got %v", err)
	}
}

// TestFileSourceOverlongLineResume: a line beyond the 16 MB bound is
// consumed and reported as a *LineError, and the stream resumes on the
// following line instead of dying.
func TestFileSourceOverlongLineResume(t *testing.T) {
	ctx := context.Background()
	huge := "[" + strings.Repeat("0.5,", (16<<20)/4+16) + "0.5]" // > 16 MB, one line
	stream := "[0.9, 1.0]\n" + huge + "\n[0.7, 0.85]\n"
	src := lia.NewFileSource(strings.NewReader(stream), 1000)

	if _, err := src.Next(ctx); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	var le *lia.LineError
	if _, err := src.Next(ctx); !errors.As(err, &le) || le.Line != 2 {
		t.Fatalf("overlong line: got %v, want *LineError{Line: 2}", err)
	}
	if _, err := src.Next(ctx); err != nil {
		t.Fatalf("resume after overlong line: %v", err)
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF: got %v", err)
	}
}

// TestFileSourceReadErrorSticky: an I/O failure of the underlying reader is
// terminal — every later Next repeats the same *LineError instead of
// pretending the stream can resume.
func TestFileSourceReadErrorSticky(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("disk on fire")
	src := lia.NewFileSource(io.MultiReader(
		strings.NewReader("[0.9, 1.0]\n"),
		iotest.ErrReader(boom),
	), 1000)

	if _, err := src.Next(ctx); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	var le *lia.LineError
	if _, err := src.Next(ctx); !errors.As(err, &le) || !errors.Is(err, boom) || le.Line != 2 {
		t.Fatalf("read failure: got %v, want *LineError{Line: 2} wrapping the cause", err)
	}
	if _, err := src.Next(ctx); !errors.Is(err, boom) {
		t.Fatalf("sticky failure: got %v, want the same cause again", err)
	}
}

// TestConsumePartialStreamReportsPrefix: Engine.Consume over a stream with a
// corrupt middle line must ingest the valid prefix, report its exact count,
// and surface the line number of the failure.
func TestConsumePartialStreamReportsPrefix(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	const stream = "[0.9, 1.0]\n[0.8, 0.95]\n[0.7, 0.85,\n[0.6, 0.75]\n"
	n, err := eng.Consume(ctx, lia.NewFileSource(strings.NewReader(stream), 1000))
	var le *lia.LineError
	if !errors.As(err, &le) || le.Line != 3 {
		t.Fatalf("Consume error = %v, want *LineError{Line: 3}", err)
	}
	if n != 2 {
		t.Fatalf("Consume ingested %d before the failure, want 2", n)
	}
	if eng.Snapshots() != 2 {
		t.Fatalf("engine holds %d snapshots, want the 2-snapshot prefix", eng.Snapshots())
	}
}

// TestIngestBatchNamesOffendingIndex: a dimension error inside a batch names
// the bad index and leaves the moments untouched.
func TestIngestBatchNamesOffendingIndex(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.IngestBatch([][]float64{{-0.1, -0.2}, {-0.1}, {-0.3, -0.4}})
	if !errors.Is(err, lia.ErrDimensionMismatch) {
		t.Fatalf("IngestBatch error = %v, want ErrDimensionMismatch", err)
	}
	if !strings.Contains(err.Error(), "batch snapshot 1") {
		t.Fatalf("error %q does not name the offending batch index", err)
	}
	if eng.Snapshots() != 0 {
		t.Fatalf("failed batch ingested %d snapshots, want 0", eng.Snapshots())
	}
}
