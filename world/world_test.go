package world

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"
)

// startServer spins up a listening server on a loopback port.
func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s := NewServer(cfg)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// rawConn speaks the protocol by hand so tests can hash the exact bytes the
// server emits (Client would decode them).
type rawConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (rc *rawConn) send(line string) {
	rc.t.Helper()
	if _, err := rc.conn.Write([]byte(line + "\n")); err != nil {
		rc.t.Fatalf("write: %v", err)
	}
}

func (rc *rawConn) readLine() string {
	rc.t.Helper()
	line, err := rc.r.ReadString('\n')
	if err != nil {
		rc.t.Fatalf("read: %v", err)
	}
	return strings.TrimSuffix(line, "\n")
}

// mustOK decodes a response line and fails the test on a protocol error.
func (rc *rawConn) mustOK(line string) response {
	rc.t.Helper()
	var resp response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		rc.t.Fatalf("decode %q: %v", line, err)
	}
	if !resp.OK {
		rc.t.Fatalf("server error: %s", resp.Error)
	}
	return resp
}

var testPaths = [][]int{{1, 4}, {1, 5}, {2, 6}, {2, 7}, {3, 8}, {3, 9}}

// streamHash pulls `ticks` snapshots in the given batch pattern, scheduling
// a congest shift and a reroute (topology churn) mid-run, and returns the
// SHA-256 of the raw NDJSON snapshot lines. Two runs with the same seed
// must produce identical hashes regardless of the batch pattern.
func streamHash(t *testing.T, seed uint64, ticks int, batches []int) [sha256.Size]byte {
	t.Helper()
	s := startServer(t, ServerConfig{
		World: Config{Seed: seed, Probes: 200, DiurnalPeriod: 50},
		// Schedule the churn up front so the link set is stable and the
		// stream is a pure function of (seed, schedule, pull count).
		Schedule: []Event{
			{Kind: KindCongest, Tick: 20, Duration: 30, Links: []int{1, 2}, Factor: 6},
			{Kind: KindReroute, Tick: 40, Reroutes: []Reroute{{Path: 0, Links: []int{1, 42}}}},
		},
	})
	rc := dialRaw(t, s.Addr())
	pathsJSON, _ := json.Marshal(testPaths)
	rc.send(fmt.Sprintf(`{"op":"assign","paths":%s}`, pathsJSON))
	rc.mustOK(rc.readLine())

	h := sha256.New()
	got, bi := 0, 0
	for got < ticks {
		n := batches[bi%len(batches)]
		bi++
		if n > ticks-got {
			n = ticks - got
		}
		rc.send(fmt.Sprintf(`{"op":"next","count":%d}`, n))
		rc.mustOK(rc.readLine())
		for i := 0; i < n; i++ {
			h.Write([]byte(rc.readLine()))
			h.Write([]byte{'\n'})
		}
		got += n
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// TestStreamDeterminism is the tentpole contract: same seed + same schedule
// (including mid-run topology churn) => bitwise-identical NDJSON stream,
// independent of how the consumer batches its pulls.
func TestStreamDeterminism(t *testing.T) {
	a := streamHash(t, 77, 120, []int{16})
	b := streamHash(t, 77, 120, []int{16})
	if a != b {
		t.Fatalf("same seed, same batching: hashes differ\n a=%x\n b=%x", a, b)
	}
	c := streamHash(t, 77, 120, []int{1, 7, 31})
	if a != c {
		t.Fatalf("same seed, different batching: hashes differ\n a=%x\n c=%x", a, c)
	}
	d := streamHash(t, 78, 120, []int{16})
	if a == d {
		t.Fatalf("different seeds produced identical streams (hash %x)", a)
	}
}

// TestWorldFingerprint logs a stable stream digest; CI's scale job runs it
// at GOMAXPROCS=1,2,4 and diffs the logged fingerprints.
func TestWorldFingerprint(t *testing.T) {
	h := streamHash(t, 1907, 200, []int{13})
	t.Logf("fingerprint=%x", h)
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"congest defaults", Event{Kind: KindCongest, Links: []int{1}}, true},
		{"congest no links", Event{Kind: KindCongest}, false},
		{"congest negative factor", Event{Kind: KindCongest, Links: []int{1}, Factor: -2}, false},
		{"flap defaults", Event{Kind: KindFlap, Links: []int{1}}, true},
		{"flap loss out of range", Event{Kind: KindFlap, Links: []int{1}, Loss: 1.5}, false},
		{"reroute ok", Event{Kind: KindReroute, Reroutes: []Reroute{{Path: 0, Links: []int{9}}}}, true},
		{"reroute bad path", Event{Kind: KindReroute, Reroutes: []Reroute{{Path: 6, Links: []int{9}}}}, false},
		{"reroute empty route", Event{Kind: KindReroute, Reroutes: []Reroute{{Path: 0}}}, false},
		{"unknown kind", Event{Kind: "quench", Links: []int{1}}, false},
		{"negative tick", Event{Kind: KindCongest, Links: []int{1}, Tick: -1}, false},
	}
	for _, tc := range cases {
		err := tc.ev.validate(6)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	ev := Event{Kind: KindFlap, Links: []int{1}}
	if err := ev.validate(6); err != nil {
		t.Fatal(err)
	}
	if ev.Period != 8 || ev.Loss != 0.3 {
		t.Fatalf("flap defaults not applied: period=%d loss=%g", ev.Period, ev.Loss)
	}
}

// TestCongestCorrelates checks that a congest event drives the loss of its
// link group up together: the regime truth is positive for every affected
// link while the event is active and returns to its pre-event level after.
func TestCongestCorrelates(t *testing.T) {
	w, err := New(testPaths, Config{Seed: 5}, []Event{
		{Kind: KindCongest, Tick: 10, Duration: 10, Links: []int{1, 2}, Factor: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := map[int]int{}
	for i, id := range w.LinkIDs() {
		idx[id] = i
	}
	for tick := 0; tick < 30; tick++ {
		tk := w.Step()
		inEvent := tick >= 10 && tick < 20
		for _, id := range []int{1, 2} {
			r := tk.Regime[idx[id]]
			if inEvent && r <= 0 {
				t.Fatalf("tick %d: link %d regime %g, want > 0 under 8x congest", tick, id, r)
			}
			if !inEvent && r != 0 {
				t.Fatalf("tick %d: link %d regime %g, want 0 outside event", tick, id, r)
			}
		}
		// An unaffected link stays at its baseline regime.
		if r := tk.Regime[idx[9]]; r != 0 {
			t.Fatalf("tick %d: untouched link 9 regime %g, want 0", tick, r)
		}
	}
}

// TestFlapPhases checks the lossy/healthy alternation and the duty-cycle
// regime mean.
func TestFlapPhases(t *testing.T) {
	w, err := New(testPaths, Config{Seed: 5}, []Event{
		{Kind: KindFlap, Tick: 0, Links: []int{4}, Period: 4, Loss: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := map[int]int{}
	for i, id := range w.LinkIDs() {
		idx[id] = i
	}
	wantDuty := 0.5 * 2 / 4 // Loss * ceil(P/2)/P
	for tick := 0; tick < 16; tick++ {
		tk := w.Step()
		loss := tk.Loss[idx[4]]
		if tick%4 < 2 {
			if loss != 0.5 {
				t.Fatalf("tick %d: lossy phase loss %g, want 0.5", tick, loss)
			}
		} else if loss != 0 {
			t.Fatalf("tick %d: healthy phase loss %g, want 0 at base utilisation", tick, loss)
		}
		if got := tk.Regime[idx[4]]; math.Abs(got-wantDuty) > 1e-12 {
			t.Fatalf("tick %d: regime %g, want duty mean %g", tick, got, wantDuty)
		}
	}
}

// TestReroute checks that churn switches the path's loss dependence to the
// new links and that past events are rejected.
func TestReroute(t *testing.T) {
	w, err := New(testPaths, Config{Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleEvent(Event{
		Kind: KindReroute, Tick: 5,
		Reroutes: []Reroute{{Path: 0, Links: []int{2, 99}}},
	}); err != nil {
		t.Fatal(err)
	}
	// The reroute target is materialised immediately.
	found := false
	for _, id := range w.LinkIDs() {
		if id == 99 {
			found = true
		}
	}
	if !found {
		t.Fatalf("link 99 not materialised at schedule time; LinkIDs=%v", w.LinkIDs())
	}
	if err := w.ScheduleEvent(Event{Kind: KindFlap, Tick: 6, Links: []int{99}, Loss: 0.9, Period: 2}); err != nil {
		t.Fatal(err)
	}
	idx := map[int]int{}
	for i, id := range w.LinkIDs() {
		idx[id] = i
	}
	for tick := 0; tick < 10; tick++ {
		tk := w.Step()
		if tick == 6 { // flap lossy phase on the post-reroute link 99
			want := (1 - tk.Loss[idx[2]]) * (1 - tk.Loss[idx[99]])
			if math.Abs(tk.Frac[0]-want) > 1e-12 {
				t.Fatalf("tick %d: path 0 frac %g, want %g from rerouted links", tick, tk.Frac[0], want)
			}
			if tk.Frac[0] > 0.2 {
				t.Fatalf("tick %d: path 0 frac %g, want heavy loss through flapping link 99", tick, tk.Frac[0])
			}
		}
	}
	// The world is at tick 10 now; scheduling into the past must fail.
	if err := w.ScheduleEvent(Event{Kind: KindCongest, Tick: 3, Links: []int{1}}); err == nil {
		t.Fatal("scheduling an event in the past succeeded")
	}
}

// TestServerAttachAndConflict checks create-or-attach semantics and the
// conflicting-paths error.
func TestServerAttachAndConflict(t *testing.T) {
	s := startServer(t, ServerConfig{World: Config{Seed: 9}})
	c1, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	info, err := c1.Assign("soak", testPaths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Paths != len(testPaths) || info.Tick != 0 {
		t.Fatalf("fresh assign: paths=%d tick=%d", info.Paths, info.Tick)
	}
	if _, _, err := c1.Next("soak", 7); err != nil {
		t.Fatal(err)
	}

	// A second connection re-attaches at the current tick.
	c2, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	info2, err := c2.Assign("soak", testPaths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Tick != 7 {
		t.Fatalf("re-attach tick = %d, want 7", info2.Tick)
	}
	// Different paths under the same name conflict, and the connection
	// stays usable afterwards.
	if _, err := c2.Assign("soak", [][]int{{1, 2}}, 0); err == nil {
		t.Fatal("conflicting assign succeeded")
	}
	st, err := c2.Stats("soak")
	if err != nil {
		t.Fatalf("stats after error: %v", err)
	}
	if st.Tick != 7 || st.Served != 7 {
		t.Fatalf("stats = %+v, want tick 7 served 7", st)
	}
	// Unknown scenario errors.
	if _, _, err := c2.Next("nope", 1); err == nil {
		t.Fatal("next on unknown scenario succeeded")
	}
}

// TestClientShiftAndTruth drives the control surface end to end.
func TestClientShiftAndTruth(t *testing.T) {
	s := startServer(t, ServerConfig{World: Config{Seed: 3}})
	c, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Assign("", testPaths, 100); err != nil {
		t.Fatal(err)
	}
	// Truth before the first snapshot reports tick −1.
	tr, err := c.Truth("")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tick != -1 || tr.Loss != nil {
		t.Fatalf("pre-step truth = %+v, want tick −1 and no loss", tr)
	}
	if err := c.Shift("", Event{Kind: KindCongest, Tick: 2, Links: []int{1, 2, 3}, Factor: 10}); err != nil {
		t.Fatal(err)
	}
	batch, tick, err := c.Next("", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 5 || tick != 5 {
		t.Fatalf("batch len %d tick %d, want 5 and 5", len(batch), tick)
	}
	for i, tk := range batch {
		if tk.Tick != i {
			t.Fatalf("batch[%d].Tick = %d", i, tk.Tick)
		}
		if len(tk.Frac) != len(testPaths) {
			t.Fatalf("batch[%d]: %d fracs, want %d", i, len(tk.Frac), len(testPaths))
		}
	}
	tr, err = c.Truth("")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tick != 4 {
		t.Fatalf("truth tick %d, want 4", tr.Tick)
	}
	// The 10x congest on links 1..3 is active from tick 2 on: ground-truth
	// regime must be positive for an affected link.
	idx := map[int]int{}
	for i, id := range tr.LinkIDs {
		idx[id] = i
	}
	if r := tr.Regime[idx[1]]; r <= 0 {
		t.Fatalf("regime for congested link 1 = %g, want > 0", r)
	}
	// Scheduling into the past through the protocol fails cleanly.
	if err := c.Shift("", Event{Kind: KindFlap, Tick: 1, Links: []int{4}}); err == nil {
		t.Fatal("past shift succeeded")
	}
}

// TestQueueAbsorbsTransients: with a roomy queue, a brief overload spike
// causes no loss (the buffer soaks it up), while sustained overload must
// eventually drop — the capacity/queue semantics the model advertises.
func TestQueueAbsorbsTransients(t *testing.T) {
	paths := [][]int{{1}}
	// Deterministic load (no jitter is impossible since 0 means default;
	// use a tiny value), base utilisation 0.5, queue of 2 ticks' capacity.
	cfg := Config{Seed: 1, Utilization: 0.5, UtilizationSpread: 1e-9, Jitter: 1e-9, Queue: 2}
	// A 2-tick 1.5x spike: offered 0.75 < capacity 1 — no overload at all.
	w, err := New(paths, cfg, []Event{
		{Kind: KindCongest, Tick: 5, Duration: 2, Links: []int{1}, Factor: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 10; tick++ {
		if tk := w.Step(); tk.Loss[0] != 0 {
			t.Fatalf("tick %d: loss %g under sub-capacity load", tick, tk.Loss[0])
		}
	}
	// Sustained 4x overload (offered ~2): the queue fills within ~2 ticks
	// and loss then approaches 1 − C/R = 0.5.
	w2, err := New(paths, cfg, []Event{
		{Kind: KindCongest, Tick: 0, Links: []int{1}, Factor: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for tick := 0; tick < 10; tick++ {
		last = w2.Step().Loss[0]
	}
	if math.Abs(last-0.5) > 0.05 {
		t.Fatalf("sustained 4x overload loss %g, want ≈ 1 − C/R = 0.5", last)
	}
}
