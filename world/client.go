package world

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"
)

// Client speaks the Server protocol over one TCP connection: the snapshot
// consumer side (Assign + Next, what lia.WorldSource is built on) and the
// control side (Shift + Truth + Stats, what soak harnesses steer worlds
// with). A Client serialises internally, so one may be shared; a Client
// whose connection died returns errors from every call — dial a new one
// (the consumer-side reconnect policy lives in lia.WorldSource).
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	out  *bufio.Writer
	enc  *json.Encoder
}

// AssignInfo is the scenario description an assign returns.
type AssignInfo struct {
	// Paths is the scenario's path count (the snapshot dimension).
	Paths int
	// LinkIDs is the ascending physical link-ID order Tick.Loss and
	// Tick.Regime are aligned with.
	LinkIDs []int
	// Tick is the world time at attach: 0 for a fresh scenario, the
	// current tick when re-attaching to a running one.
	Tick int
}

// TruthInfo is the ground truth a truth query returns.
type TruthInfo struct {
	// Tick is the time of the most recently generated snapshot (−1 before
	// the first).
	Tick int
	// LinkIDs aligns Loss and Regime.
	LinkIDs []int
	// Loss is the realized per-link loss at Tick.
	Loss []float64
	// Regime is the noise-free mean loss of the regime active at Tick.
	Regime []float64
}

// StatsInfo is a scenario's serving counters.
type StatsInfo struct {
	Tick   int
	Paths  int
	Links  int
	Events int
	Served uint64
}

// Dial connects to a world server. A zero timeout dials without a bound.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("world: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (Dial is the common path; this
// exists for pipes in tests).
func NewClient(conn net.Conn) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxRequestLine)
	out := bufio.NewWriterSize(conn, 64*1024)
	return &Client{conn: conn, sc: sc, out: out, enc: json.NewEncoder(out)}
}

// Close severs the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetDeadline bounds the next round-trip's I/O (a zero time clears it).
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// roundTrip sends one request and decodes the response line.
func (c *Client) roundTrip(req *request) (*response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("world: send %s: %w", req.Op, err)
	}
	if err := c.out.Flush(); err != nil {
		return nil, fmt.Errorf("world: send %s: %w", req.Op, err)
	}
	return c.readResponse(req.Op)
}

// readResponse decodes one response line, turning protocol-level errors
// into Go errors.
func (c *Client) readResponse(op string) (*response, error) {
	if !c.sc.Scan() {
		err := c.sc.Err()
		if err == nil {
			err = errors.New("connection closed")
		}
		return nil, fmt.Errorf("world: %s: %w", op, err)
	}
	var resp response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("world: %s: malformed response: %w", op, err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("world: %s: %s", op, resp.Error)
	}
	return &resp, nil
}

// Assign creates or re-attaches to the named scenario ("" selects
// "default") with the given physical routes. probes > 0 overrides the
// server's default probe sampling for a fresh scenario.
func (c *Client) Assign(name string, paths [][]int, probes int) (*AssignInfo, error) {
	resp, err := c.roundTrip(&request{Op: "assign", Name: name, Paths: paths, Probes: probes})
	if err != nil {
		return nil, err
	}
	return &AssignInfo{Paths: resp.Paths, LinkIDs: resp.LinkIDs, Tick: resp.Tick}, nil
}

// Next advances the scenario count ticks and returns the batch, plus the
// world tick after it (the freshness reference for lag accounting).
func (c *Client) Next(name string, count int) ([]*Tick, int, error) {
	if count <= 0 {
		count = 1
	}
	resp, err := c.roundTrip(&request{Op: "next", Name: name, Count: count})
	if err != nil {
		return nil, 0, err
	}
	batch := make([]*Tick, 0, resp.Count)
	for i := 0; i < resp.Count; i++ {
		if !c.sc.Scan() {
			err := c.sc.Err()
			if err == nil {
				err = errors.New("connection closed")
			}
			return nil, 0, fmt.Errorf("world: next: snapshot %d of %d: %w", i, resp.Count, err)
		}
		tick := new(Tick)
		if err := json.Unmarshal(c.sc.Bytes(), tick); err != nil {
			return nil, 0, fmt.Errorf("world: next: snapshot %d of %d: %w", i, resp.Count, err)
		}
		batch = append(batch, tick)
	}
	return batch, resp.Tick, nil
}

// Shift schedules a regime change on the named scenario.
func (c *Client) Shift(name string, ev Event) error {
	_, err := c.roundTrip(&request{Op: "shift", Name: name, Event: &ev})
	return err
}

// Truth queries the scenario's current ground truth.
func (c *Client) Truth(name string) (*TruthInfo, error) {
	resp, err := c.roundTrip(&request{Op: "truth", Name: name})
	if err != nil {
		return nil, err
	}
	return &TruthInfo{Tick: resp.Tick, LinkIDs: resp.LinkIDs, Loss: resp.Loss, Regime: resp.Regime}, nil
}

// Stats queries the scenario's serving counters.
func (c *Client) Stats(name string) (*StatsInfo, error) {
	resp, err := c.roundTrip(&request{Op: "stats", Name: name})
	if err != nil {
		return nil, err
	}
	return &StatsInfo{
		Tick: resp.Tick, Paths: resp.Paths, Links: resp.Links,
		Events: resp.Events, Served: resp.Served,
	}, nil
}
