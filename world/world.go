// Package world is a congestion-driven scenario simulator for
// non-stationary, correlated-loss worlds — the loss processes the paper's
// i.i.d. assumption explicitly sidesteps.
//
// Where internal/netsim draws independent per-link loss from a stationary
// scenario, a world.World models the *mechanism* that couples losses in a
// real network: every physical link has a capacity C and an offered load R,
// utilisation rho = R/C drives overload loss (p = 1 − C/R when R > C, per
// the capacity/queue traffic model), and a bounded queue absorbs transient
// bursts and drains at capacity per tick. Layered on top are
//
//   - diurnal load curves (a sinusoidal multiplier over a configurable
//     period), so utilisation — and with it loss — is non-stationary by
//     construction;
//   - congestion events that multiply the offered load of a *group* of
//     links sharing a bottleneck, correlating their losses in time;
//   - flapping links that alternate between healthy and lossy phases on a
//     fixed period; and
//   - topology churn: scheduled reroutes that switch a path onto different
//     physical links mid-run, so observations stop matching the routing
//     matrix the consumer learned — the hardest regime shift of all.
//
// Determinism is a hard contract, not an accident: every random draw is
// keyed by (seed, tick, link) or (seed, tick, path) through its own PCG
// stream, never by call order, so the same seed and the same event schedule
// produce a bitwise-identical snapshot stream on every run, at every
// GOMAXPROCS, on every machine. Soak tests rely on this to compare a chaos
// run against a clean replay.
//
// A World advances only through Step — there is no wall clock anywhere —
// and Server (see server.go) exposes it over a TCP NDJSON protocol that
// lia.WorldSource consumes, so liaserve and the examples plug into a live
// world exactly like any other lia.SnapshotSource.
package world

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Event kinds understood by the scheduler.
const (
	// KindCongest multiplies the offered load of Links by Factor — a shared
	// bottleneck filling up. All affected links overload together, so their
	// losses correlate snapshot-to-snapshot.
	KindCongest = "congest"
	// KindFlap alternates Links between a healthy phase and a lossy phase
	// (loss = Loss) every Period/2 ticks — interface damping, a wedged LAG
	// member, a route that keeps withdrawing.
	KindFlap = "flap"
	// KindReroute switches the listed paths onto new physical links at
	// Tick — topology churn mid-run. Links never seen before are created
	// with the world's deterministic defaults.
	KindReroute = "reroute"
)

// Reroute is one path's new physical route under a KindReroute event.
type Reroute struct {
	// Path is the row index of the rerouted path.
	Path int `json:"path"`
	// Links is its new physical link sequence.
	Links []int `json:"links"`
}

// Event is one scheduled regime change. Events activate at the start of
// tick Tick and, for congest/flap, stay active for Duration ticks
// (Duration <= 0 means permanently — a regime shift rather than an
// episode).
type Event struct {
	// Tick is the world tick the event activates at (the first Step is
	// tick 0).
	Tick int `json:"tick"`
	// Duration bounds congest/flap activity in ticks; <= 0 is permanent.
	// Ignored for reroutes, which are instantaneous and irreversible.
	Duration int `json:"duration,omitempty"`
	// Kind is one of KindCongest, KindFlap, KindReroute.
	Kind string `json:"kind"`
	// Links are the physical links a congest/flap event affects.
	Links []int `json:"links,omitempty"`
	// Factor is the congest load multiplier (default 4).
	Factor float64 `json:"factor,omitempty"`
	// Period is the flap full cycle in ticks (default 8): lossy for the
	// first half of each cycle, healthy for the second.
	Period int `json:"period,omitempty"`
	// Loss is the flap lossy-phase loss rate (default 0.3).
	Loss float64 `json:"loss,omitempty"`
	// Reroutes are the path changes of a KindReroute event.
	Reroutes []Reroute `json:"reroutes,omitempty"`
}

// validate normalises defaults and rejects malformed events.
func (ev *Event) validate(numPaths int) error {
	switch ev.Kind {
	case KindCongest:
		if len(ev.Links) == 0 {
			return errors.New("world: congest event needs links")
		}
		if ev.Factor == 0 {
			ev.Factor = 4
		}
		if ev.Factor < 0 {
			return fmt.Errorf("world: congest factor %g < 0", ev.Factor)
		}
	case KindFlap:
		if len(ev.Links) == 0 {
			return errors.New("world: flap event needs links")
		}
		if ev.Period <= 0 {
			ev.Period = 8
		}
		if ev.Loss == 0 {
			ev.Loss = 0.3
		}
		if ev.Loss < 0 || ev.Loss > 1 {
			return fmt.Errorf("world: flap loss %g outside [0,1]", ev.Loss)
		}
	case KindReroute:
		if len(ev.Reroutes) == 0 {
			return errors.New("world: reroute event needs reroutes")
		}
		for _, rr := range ev.Reroutes {
			if rr.Path < 0 || rr.Path >= numPaths {
				return fmt.Errorf("world: reroute of path %d, world has %d paths", rr.Path, numPaths)
			}
			if len(rr.Links) == 0 {
				return fmt.Errorf("world: reroute of path %d to an empty route", rr.Path)
			}
		}
	default:
		return fmt.Errorf("world: unknown event kind %q", ev.Kind)
	}
	if ev.Tick < 0 {
		return fmt.Errorf("world: event tick %d < 0", ev.Tick)
	}
	return nil
}

// active reports whether a congest/flap event applies at tick t.
func (ev *Event) active(t int) bool {
	if t < ev.Tick {
		return false
	}
	return ev.Duration <= 0 || t < ev.Tick+ev.Duration
}

// Config tunes the world's traffic model. The zero value selects the
// documented defaults.
type Config struct {
	// Seed drives every random stream; the same seed (with the same paths
	// and schedule) reproduces the snapshot stream bit-for-bit.
	Seed uint64

	// Probes, when positive, samples each path's received fraction as a
	// Binomial(Probes, p)/Probes draw — per-probe measurement noise on top
	// of the congestion process. 0 reports exact fractions.
	Probes int

	// Utilization is the mean base utilisation rho = R/C a link idles at
	// (default 0.55). Individual links draw their base load from
	// [Utilization−UtilizationSpread/2, Utilization+UtilizationSpread/2]
	// deterministically from (Seed, link ID).
	Utilization float64
	// UtilizationSpread is the per-link base utilisation spread
	// (default 0.2).
	UtilizationSpread float64

	// Capacity is the per-link service rate in load units per tick
	// (default 1). Loss depends only on rho, so this is a pure scale knob.
	Capacity float64
	// Queue is the per-link buffer in units of Capacity·tick (default 0.5):
	// how much transient overload a link absorbs before dropping.
	Queue float64

	// DiurnalPeriod is the load-curve cycle length in ticks (0 disables the
	// diurnal multiplier).
	DiurnalPeriod int
	// DiurnalAmplitude is the peak-to-mean diurnal swing as a fraction of
	// base load (default 0.3 when DiurnalPeriod > 0).
	DiurnalAmplitude float64

	// Jitter is the per-tick, per-link multiplicative load noise amplitude
	// (default 0.15): each tick every link's load is scaled by
	// 1 + Jitter·u, u uniform in [−1, 1), drawn from a PCG keyed by
	// (Seed, tick, link). This is what makes losses vary snapshot to
	// snapshot — the second-order signal the engine learns from.
	Jitter float64
}

// withDefaults resolves the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.Utilization == 0 {
		c.Utilization = 0.55
	}
	if c.UtilizationSpread == 0 {
		c.UtilizationSpread = 0.2
	}
	if c.Capacity <= 0 {
		c.Capacity = 1
	}
	if c.Queue == 0 {
		c.Queue = 0.5
	}
	if c.DiurnalPeriod > 0 && c.DiurnalAmplitude == 0 {
		c.DiurnalAmplitude = 0.3
	}
	if c.Jitter == 0 {
		c.Jitter = 0.15
	}
	return c
}

// link is one physical link's static parameters and queue state.
type link struct {
	id       int
	capacity float64
	baseLoad float64 // offered load before diurnal/jitter/events
	queueCap float64 // buffer in load units
	queue    float64 // current occupancy
}

// Tick is one world snapshot: the observation the consumer sees plus the
// ground truth the consumer is trying to infer.
type Tick struct {
	// Tick is the world time this snapshot was generated at.
	Tick int `json:"tick"`
	// Frac is the per-path received fraction (exact products, or binomial
	// samples when Config.Probes > 0).
	Frac []float64 `json:"frac"`
	// Loss is the realized per-physical-link loss rate this tick, aligned
	// with the world's sorted link-ID order (see World.LinkIDs).
	Loss []float64 `json:"loss"`
	// Regime is the noise-free mean loss of the current regime per link —
	// the steady-state overload loss max(0, 1−C/R) under the tick's diurnal
	// and event multipliers with jitter stripped, and the flap duty-cycle
	// mean for flapping links. This is the ground truth a windowed engine
	// should re-converge to after a shift.
	Regime []float64 `json:"regime"`
}

// World is one deterministic scenario instance. It is not safe for
// concurrent use; Server serialises access.
type World struct {
	cfg   Config
	seed  uint64
	paths [][]int // physical link IDs per path (current routes)

	links   []*link     // sorted by id
	linkIdx map[int]int // id -> index into links

	schedule []Event // all events ever scheduled, in scheduling order
	tick     int     // next tick to be generated by Step
	last     *Tick   // most recent Step result (nil before the first)
}

// New builds a world over the given physical routes. paths[i] is the
// ordered physical link IDs of path i — exactly the Links field of the
// topology documents liaserve serves. The schedule may be nil; more events
// can be added later with ScheduleEvent as long as they are in the future.
func New(paths [][]int, cfg Config, schedule []Event) (*World, error) {
	if len(paths) == 0 {
		return nil, errors.New("world: no paths")
	}
	for i, p := range paths {
		if len(p) == 0 {
			return nil, fmt.Errorf("world: path %d has no links", i)
		}
	}
	w := &World{
		cfg:     cfg.withDefaults(),
		seed:    cfg.Seed,
		linkIdx: make(map[int]int),
	}
	w.paths = make([][]int, len(paths))
	for i, p := range paths {
		w.paths[i] = append([]int(nil), p...)
		for _, id := range p {
			w.ensureLink(id)
		}
	}
	for _, ev := range schedule {
		if err := w.ScheduleEvent(ev); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// ensureLink creates the state of physical link id if it does not exist
// yet, drawing its parameters deterministically from (seed, id) — so a
// reroute onto a brand-new link is just as reproducible as the initial
// topology. Links are kept sorted by ID so every per-link iteration is
// order-deterministic.
func (w *World) ensureLink(id int) {
	if _, ok := w.linkIdx[id]; ok {
		return
	}
	rng := rand.New(rand.NewPCG(w.seed^0x11afc0de, uint64(uint(id))))
	u := w.cfg.Utilization + w.cfg.UtilizationSpread*(rng.Float64()-0.5)
	if u < 0.05 {
		u = 0.05
	}
	l := &link{
		id:       id,
		capacity: w.cfg.Capacity,
		baseLoad: u * w.cfg.Capacity,
		queueCap: w.cfg.Queue * w.cfg.Capacity,
	}
	// Insert sorted by ID.
	pos := sort.Search(len(w.links), func(i int) bool { return w.links[i].id >= id })
	w.links = append(w.links, nil)
	copy(w.links[pos+1:], w.links[pos:])
	w.links[pos] = l
	for i := pos; i < len(w.links); i++ {
		w.linkIdx[w.links[i].id] = i
	}
}

// ScheduleEvent adds an event to the schedule. Events may only be scheduled
// at the current tick or later: rewriting the past would break the replay
// contract (the same schedule must reproduce the same stream).
func (w *World) ScheduleEvent(ev Event) error {
	if err := ev.validate(len(w.paths)); err != nil {
		return err
	}
	if ev.Tick < w.tick {
		return fmt.Errorf("world: event at tick %d is in the past (world is at %d)", ev.Tick, w.tick)
	}
	for _, rr := range rerouteLinks(ev) {
		// Materialise rerouted-onto links now, so LinkIDs (and the Loss/
		// Regime alignment the protocol advertises) is stable from assign
		// time — a mid-run reroute must not re-index the truth arrays.
		w.ensureLink(rr)
	}
	w.schedule = append(w.schedule, ev)
	return nil
}

// rerouteLinks lists the physical links a reroute event routes onto.
func rerouteLinks(ev Event) []int {
	if ev.Kind != KindReroute {
		return nil
	}
	var out []int
	for _, rr := range ev.Reroutes {
		out = append(out, rr.Links...)
	}
	return out
}

// LinkIDs returns the world's physical link IDs in ascending order — the
// alignment of Tick.Loss and Tick.Regime. The set is stable from creation
// (scheduled reroute targets are pre-materialised), so the protocol can
// advertise it once at assign time.
func (w *World) LinkIDs() []int {
	out := make([]int, len(w.links))
	for i, l := range w.links {
		out[i] = l.id
	}
	return out
}

// NumPaths returns the number of paths (the snapshot dimension).
func (w *World) NumPaths() int { return len(w.paths) }

// Now returns the number of ticks generated so far (the tick of the next
// Step).
func (w *World) Now() int { return w.tick }

// Last returns the most recent Step result (nil before the first Step).
// The caller must not modify it.
func (w *World) Last() *Tick { return w.last }

// Events returns how many events have been scheduled over the world's life.
func (w *World) Events() int { return len(w.schedule) }

// diurnal returns the tick's diurnal load multiplier.
func (w *World) diurnal(t int) float64 {
	if w.cfg.DiurnalPeriod <= 0 {
		return 1
	}
	return 1 + w.cfg.DiurnalAmplitude*math.Sin(2*math.Pi*float64(t)/float64(w.cfg.DiurnalPeriod))
}

// eventState aggregates the active events' effect on one link at tick t:
// the combined congest load factor, and whether a flap pins the loss.
func (w *World) eventState(t, linkID int) (factor float64, flapping bool, flapLoss, flapDuty float64) {
	factor = 1
	for i := range w.schedule {
		ev := &w.schedule[i]
		if !ev.active(t) {
			continue
		}
		switch ev.Kind {
		case KindCongest:
			for _, id := range ev.Links {
				if id == linkID {
					factor *= ev.Factor
					break
				}
			}
		case KindFlap:
			for _, id := range ev.Links {
				if id != linkID {
					continue
				}
				// Lossy during the first half of each cycle.
				phase := (t - ev.Tick) % ev.Period
				if phase < (ev.Period+1)/2 {
					flapping, flapLoss = true, ev.Loss
				}
				flapDuty += ev.Loss * float64((ev.Period+1)/2) / float64(ev.Period)
				break
			}
		}
	}
	if flapDuty > 1 {
		flapDuty = 1
	}
	return factor, flapping, flapLoss, flapDuty
}

// applyReroutes switches paths onto their new routes for events activating
// exactly at tick t.
func (w *World) applyReroutes(t int) {
	for i := range w.schedule {
		ev := &w.schedule[i]
		if ev.Kind != KindReroute || ev.Tick != t {
			continue
		}
		for _, rr := range ev.Reroutes {
			w.paths[rr.Path] = append([]int(nil), rr.Links...)
		}
	}
}

// Step advances the world one tick and returns its snapshot. The result is
// owned by the world until the next Step (Server encodes it immediately).
//
// Per link: offered load R = base·diurnal·congest·(1 + jitter), the queue
// absorbs R−C up to its capacity and drains at C, and the tick's loss is
// the dropped fraction of offered load — zero while the queue still has
// room, rising toward 1 − C/R as sustained overload saturates it. A
// flapping link's lossy phase overrides the queue model. Per path: the
// received fraction is the product of its current links' transmission
// rates, optionally binomially sampled at Config.Probes.
func (w *World) Step() *Tick {
	t := w.tick
	w.tick++
	w.applyReroutes(t)

	out := &Tick{
		Tick:   t,
		Frac:   make([]float64, len(w.paths)),
		Loss:   make([]float64, len(w.links)),
		Regime: make([]float64, len(w.links)),
	}
	dn := w.diurnal(t)
	for i, l := range w.links {
		factor, flapping, flapLoss, flapDuty := w.eventState(t, l.id)
		mean := l.baseLoad * dn * factor
		// Regime truth: steady-state overload loss of the noise-free load,
		// plus the flap duty-cycle mean — what the loss converges to if the
		// regime holds.
		regime := 0.0
		if mean > l.capacity {
			regime = 1 - l.capacity/mean
		}
		out.Regime[i] = 1 - (1-regime)*(1-flapDuty)

		if flapping {
			// The lossy phase pins the loss; the queue neither fills nor
			// drains during it (the link is dropping at the policer, not
			// overflowing the buffer).
			out.Loss[i] = flapLoss
			continue
		}
		jit := jitterDraw(w.seed, t, l.id)
		offered := mean * (1 + w.cfg.Jitter*jit)
		if offered < 0 {
			offered = 0
		}
		q := l.queue + offered - l.capacity
		if q < 0 {
			q = 0
		}
		dropped := 0.0
		if q > l.queueCap {
			dropped = q - l.queueCap
			q = l.queueCap
		}
		l.queue = q
		if offered > 0 {
			out.Loss[i] = dropped / offered
		}
	}
	for p, route := range w.paths {
		tr := 1.0
		for _, id := range route {
			tr *= 1 - out.Loss[w.linkIdx[id]]
		}
		if w.cfg.Probes > 0 {
			out.Frac[p] = binomialFrac(w.seed, t, p, w.cfg.Probes, tr)
		} else {
			out.Frac[p] = tr
		}
	}
	w.last = out
	return out
}

// jitterDraw returns the uniform [−1, 1) jitter of (tick, link), keyed so
// the draw is independent of evaluation order.
func jitterDraw(seed uint64, tick, linkID int) float64 {
	rng := rand.New(rand.NewPCG(seed^0x6a177e12, uint64(uint(tick))<<32|uint64(uint32(linkID))))
	return 2*rng.Float64() - 1
}

// binomialFrac samples Binomial(n, p)/n with a PCG keyed by (seed, tick,
// path) — per-probe measurement noise, bit-reproducible.
func binomialFrac(seed uint64, tick, path, n int, p float64) float64 {
	rng := rand.New(rand.NewPCG(seed^0x9b0be5, uint64(uint(tick))<<32|uint64(uint32(path))))
	got := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			got++
		}
	}
	return float64(got) / float64(n)
}
