package world

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Protocol: newline-delimited JSON over TCP, request/response. Every
// request line yields exactly one response line; a successful "next"
// response is followed by exactly Count snapshot lines (the Tick JSON
// encoding). Ops:
//
//	{"op":"assign","name":"default","paths":[[1,4],[1,5]],"probes":400}
//	  -> {"ok":true,"paths":2,"links":3,"link_ids":[1,4,5],"tick":0}
//	  Creates the named scenario (world defaults + the server's schedule)
//	  or re-attaches when it already exists with the same paths — so a
//	  reconnecting consumer resumes the world where it is, not at tick 0.
//
//	{"op":"next","name":"default","count":16}
//	  -> {"ok":true,"count":16,"tick":16}
//	  -> 16 × {"tick":N,"frac":[...],"loss":[...],"regime":[...]}
//	  Advances the world count ticks and streams the batch. The response
//	  tick is the world time after the batch — a consumer's snapshot lag
//	  is that minus the tick it last ingested.
//
//	{"op":"shift","name":"default","event":{"kind":"congest","tick":200,"links":[1,2],"factor":6}}
//	  -> {"ok":true,"events":3,"tick":57}
//	  Schedules a regime change (congest, flap, or reroute — see Event).
//	  Events must be at the current tick or later; scheduling controls the
//	  run, it never rewrites history, so a fixed schedule replays exactly.
//
//	{"op":"truth","name":"default"}
//	  -> {"ok":true,"tick":N,"loss":[...],"regime":[...],"link_ids":[...]}
//	  Ground truth of the most recently generated tick: realized per-link
//	  loss and the regime's noise-free mean loss (tick −1 before the first
//	  snapshot).
//
//	{"op":"stats","name":"default"}
//	  -> {"ok":true,"tick":N,"paths":P,"links":L,"events":E,"served":S}
//
// Errors come back as {"ok":false,"error":"..."} and leave the connection
// usable. Multiple connections may address the same scenario: a consumer
// pulls snapshots while a control connection schedules shifts and queries
// truth — the soak harness pattern.

// request is one protocol line from a client.
type request struct {
	Op     string  `json:"op"`
	Name   string  `json:"name,omitempty"`
	Paths  [][]int `json:"paths,omitempty"`
	Probes int     `json:"probes,omitempty"`
	Count  int     `json:"count,omitempty"`
	Event  *Event  `json:"event,omitempty"`
}

// response is the first line answering any request.
type response struct {
	OK      bool      `json:"ok"`
	Error   string    `json:"error,omitempty"`
	Paths   int       `json:"paths,omitempty"`
	Links   int       `json:"links,omitempty"`
	LinkIDs []int     `json:"link_ids,omitempty"`
	Count   int       `json:"count,omitempty"`
	Tick    int       `json:"tick"`
	Events  int       `json:"events,omitempty"`
	Served  uint64    `json:"served,omitempty"`
	Loss    []float64 `json:"loss,omitempty"`
	Regime  []float64 `json:"regime,omitempty"`
}

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// World is the traffic-model template every assigned scenario is built
	// from (see Config). World.Probes acts as the default when an assign
	// omits its own.
	World Config

	// Schedule is pre-applied to every new scenario — how a CI run or the
	// liaworld binary scripts regime shifts before any client connects.
	Schedule []Event

	// Logf receives operational lines (assigns, shifts, connection errors).
	// nil disables logging.
	Logf func(format string, args ...any)
}

// scenario is one named world and its serving counters.
type scenario struct {
	mu      sync.Mutex
	w       *World
	pathSig string
	served  atomic.Uint64 // snapshots streamed to clients
}

// pathsSignature fingerprints a path set for attach-vs-conflict decisions.
func pathsSignature(paths [][]int) string {
	b, _ := json.Marshal(paths)
	return string(b)
}

// Server hosts named world scenarios behind the NDJSON TCP protocol.
type Server struct {
	cfg ServerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	worlds map[string]*scenario
	closed bool

	wg sync.WaitGroup
}

// NewServer creates a server; call Listen to start accepting.
func NewServer(cfg ServerConfig) *Server {
	return &Server{
		cfg:    cfg,
		conns:  make(map[net.Conn]struct{}),
		worlds: make(map[string]*scenario),
	}
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and serves connections until
// Close.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("world: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("world: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, severs every connection, and waits for the
// connection handlers to drain. Scenario state is retained (a Server is
// one process's world; Close is shutdown, not reset).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// acceptLoop accepts connections until the listener dies.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// maxRequestLine bounds one protocol line (16 MB — a 100k-path assign fits
// with room to spare).
const maxRequestLine = 16 * 1024 * 1024

// handle serves one connection's request loop.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxRequestLine)
	out := bufio.NewWriterSize(conn, 256*1024)
	enc := json.NewEncoder(out)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(response{Error: "malformed request: " + err.Error()})
			_ = out.Flush()
			continue
		}
		if err := s.serveRequest(enc, &req); err != nil {
			_ = enc.Encode(response{Error: err.Error()})
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// lookup resolves a named scenario ("" selects "default").
func (s *Server) lookup(name string) (*scenario, string, error) {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sn, ok := s.worlds[name]
	if !ok {
		return nil, name, fmt.Errorf("world: unknown scenario %q (assign first)", name)
	}
	return sn, name, nil
}

// serveRequest dispatches one request; a returned error becomes the error
// response line.
func (s *Server) serveRequest(enc *json.Encoder, req *request) error {
	switch req.Op {
	case "assign":
		return s.assign(enc, req)
	case "next":
		return s.next(enc, req)
	case "shift":
		return s.shift(enc, req)
	case "truth":
		return s.truth(enc, req)
	case "stats":
		return s.stats(enc, req)
	default:
		return fmt.Errorf("world: unknown op %q", req.Op)
	}
}

// assign creates the named scenario or re-attaches to it.
func (s *Server) assign(enc *json.Encoder, req *request) error {
	if len(req.Paths) == 0 {
		return errors.New("world: assign needs paths")
	}
	name := req.Name
	if name == "" {
		name = "default"
	}
	sig := pathsSignature(req.Paths)
	s.mu.Lock()
	sn, ok := s.worlds[name]
	if !ok {
		cfg := s.cfg.World
		if req.Probes > 0 {
			cfg.Probes = req.Probes
		}
		w, err := New(req.Paths, cfg, s.cfg.Schedule)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		sn = &scenario{w: w, pathSig: sig}
		s.worlds[name] = sn
		s.mu.Unlock()
		s.logf("world: scenario %q assigned: %d paths, %d links, %d scheduled events",
			name, w.NumPaths(), len(w.LinkIDs()), w.Events())
	} else {
		s.mu.Unlock()
		if sn.pathSig != sig {
			return fmt.Errorf("world: scenario %q exists with a different path set", name)
		}
	}
	sn.mu.Lock()
	resp := response{
		OK:      true,
		Paths:   sn.w.NumPaths(),
		LinkIDs: sn.w.LinkIDs(),
		Tick:    sn.w.Now(),
	}
	resp.Links = len(resp.LinkIDs)
	sn.mu.Unlock()
	return enc.Encode(resp)
}

// next advances the scenario Count ticks, streaming each snapshot.
func (s *Server) next(enc *json.Encoder, req *request) error {
	sn, _, err := s.lookup(req.Name)
	if err != nil {
		return err
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	const maxBatch = 4096
	if count > maxBatch {
		return fmt.Errorf("world: batch of %d exceeds %d", count, maxBatch)
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if err := enc.Encode(response{OK: true, Count: count, Tick: sn.w.Now() + count}); err != nil {
		return nil // conn dead; handle's flush will notice
	}
	for i := 0; i < count; i++ {
		if err := enc.Encode(sn.w.Step()); err != nil {
			return nil
		}
		sn.served.Add(1)
	}
	return nil
}

// shift schedules a regime change on the named scenario.
func (s *Server) shift(enc *json.Encoder, req *request) error {
	sn, name, err := s.lookup(req.Name)
	if err != nil {
		return err
	}
	if req.Event == nil {
		return errors.New("world: shift needs an event")
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if err := sn.w.ScheduleEvent(*req.Event); err != nil {
		return err
	}
	s.logf("world: scenario %q: scheduled %s at tick %d (world at %d)",
		name, req.Event.Kind, req.Event.Tick, sn.w.Now())
	return enc.Encode(response{OK: true, Events: sn.w.Events(), Tick: sn.w.Now()})
}

// truth reports the ground truth of the most recently generated tick.
func (s *Server) truth(enc *json.Encoder, req *request) error {
	sn, _, err := s.lookup(req.Name)
	if err != nil {
		return err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	resp := response{OK: true, Tick: -1, LinkIDs: sn.w.LinkIDs()}
	if last := sn.w.Last(); last != nil {
		resp.Tick = last.Tick
		resp.Loss = last.Loss
		resp.Regime = last.Regime
	}
	return enc.Encode(resp)
}

// stats reports the scenario's counters.
func (s *Server) stats(enc *json.Encoder, req *request) error {
	sn, _, err := s.lookup(req.Name)
	if err != nil {
		return err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return enc.Encode(response{
		OK:     true,
		Tick:   sn.w.Now(),
		Paths:  sn.w.NumPaths(),
		Links:  len(sn.w.LinkIDs()),
		Events: sn.w.Events(),
		Served: sn.served.Load(),
	})
}
