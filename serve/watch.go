package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"time"

	"lia"
)

// WatchComponentStats is one sharded component's entry in a WatchEvent: the
// per-component learning state behind the aggregate, so a watcher can tell
// which component is stale or degraded without polling /v1/status.
type WatchComponentStats struct {
	Component       int    `json:"component"`
	StateEpoch      int    `json:"state_epoch"`
	Snapshots       int    `json:"snapshots"`
	Rebuilds        uint64 `json:"rebuilds"`
	RebuildFailures uint64 `json:"rebuild_failures,omitempty"`
	Degraded        bool   `json:"degraded,omitempty"`
}

// WatchEvent is one NDJSON line of GET /v1/watch: a push notification that
// the topology's learning state changed (type "epoch"), or a liveness
// heartbeat while nothing changes (type "heartbeat", same payload). Epoch is
// the state epoch served to queries (-1 before the first rebuild), Snapshots
// the lifetime ingestion count, and EpochLag their difference — a watcher
// knows the served state is fresh exactly when EpochLag is 0. Components
// carries the per-component breakdown for sharded and clustered engines
// (absent for a plain Engine).
type WatchEvent struct {
	Type               string                `json:"type"`
	Topology           string                `json:"topology"`
	Epoch              int                   `json:"epoch"`
	Snapshots          int                   `json:"snapshots"`
	EpochLag           int                   `json:"epoch_lag"`
	Degraded           bool                  `json:"degraded"`
	DegradedComponents int                   `json:"degraded_components,omitempty"`
	Components         []WatchComponentStats `json:"components,omitempty"`
}

// componentStatser is the optional per-component breakdown interface:
// lia.ShardedEngine and cluster.Fleet implement it, a plain Engine does not.
type componentStatser interface {
	ComponentStats() []lia.Stats
}

// watchEvent assembles the current WatchEvent for a topology.
func watchEvent(tp *topo, typ string) WatchEvent {
	st := tp.eng.Stats()
	ev := WatchEvent{
		Type:               typ,
		Topology:           tp.name,
		Epoch:              st.StateEpoch,
		Snapshots:          st.Snapshots,
		EpochLag:           st.EpochLag,
		Degraded:           st.Degraded,
		DegradedComponents: st.DegradedComponents,
	}
	if cs, ok := tp.eng.(componentStatser); ok {
		for c, s := range cs.ComponentStats() {
			ev.Components = append(ev.Components, WatchComponentStats{
				Component:       c,
				StateEpoch:      s.StateEpoch,
				Snapshots:       s.Snapshots,
				Rebuilds:        s.Rebuilds,
				RebuildFailures: s.RebuildFailures,
				Degraded:        s.Degraded,
			})
		}
	}
	return ev
}

// sameState reports whether two events describe the same learning state
// (everything but the event type).
func sameState(a, b WatchEvent) bool {
	a.Type, b.Type = "", ""
	return reflect.DeepEqual(a, b)
}

// handleWatch serves GET /v1/watch: an NDJSON push stream of epoch updates.
// The current state is emitted immediately on connect, a new event whenever
// the served epoch, ingestion count or degradation changes (polled at
// Config.WatchPoll), and a heartbeat every Config.WatchHeartbeat while
// nothing changes, so a reader can distinguish "no news" from a dead
// connection. The stream runs until the client disconnects.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	tp, ok := s.resolve(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	tp.watchers.Add(1)
	defer tp.watchers.Add(-1)

	enc := json.NewEncoder(w)
	emit := func(ev WatchEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	last := watchEvent(tp, "epoch")
	if !emit(last) {
		return
	}
	lastWrite := time.Now()

	ticker := time.NewTicker(s.cfg.WatchPoll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
		ev := watchEvent(tp, "epoch")
		switch {
		case !sameState(ev, last):
			if !emit(ev) {
				return
			}
			last, lastWrite = ev, time.Now()
		case time.Since(lastWrite) >= s.cfg.WatchHeartbeat:
			ev.Type = "heartbeat"
			if !emit(ev) {
				return
			}
			lastWrite = time.Now()
		}
	}
}

// StreamIngestResponse is the body of POST /v1/snapshots/stream, written
// when the request stream ends (or aborts on a bad record).
type StreamIngestResponse struct {
	Topology string `json:"topology"`
	// Ingested is the number of snapshots folded in by the stream.
	Ingested int `json:"ingested"`
	// Snapshots is the engine's lifetime snapshot count afterwards.
	Snapshots int `json:"snapshots"`
}

// handleStreamIngest serves POST /v1/snapshots/stream: a streaming ingest
// connection. The request body is a sequence of JSON records (NDJSON, or any
// concatenated-JSON framing), each an IngestRequest — a single snapshot or an
// atomic batch — folded in as it arrives, so one persistent connection can
// carry an unbounded measurement stream without per-request overhead. A
// malformed or rejected record aborts the stream; the error response names
// the offending record index and how many snapshots were ingested before it.
func (s *Server) handleStreamIngest(w http.ResponseWriter, r *http.Request) {
	tp, ok := s.resolve(w, r)
	if !ok {
		return
	}
	dec := json.NewDecoder(r.Body)
	ingested := 0
	fail := func(code int, rec int, err error) {
		writeJSON(w, code, ErrorResponse{
			Error:    fmt.Sprintf("stream record %d: %v", rec, err),
			Ingested: &ingested,
		})
	}
	for rec := 0; ; rec++ {
		var req IngestRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			fail(http.StatusBadRequest, rec, fmt.Errorf("decode: %w", err))
			return
		}
		ys, err := tp.ingestVectors(req)
		if err != nil {
			fail(http.StatusBadRequest, rec, err)
			return
		}
		if err := tp.eng.IngestBatch(ys); err != nil {
			fail(errorCode(err), rec, err)
			return
		}
		ingested += len(ys)
		tp.httpSnapshots.Add(uint64(len(ys)))
	}
	writeJSON(w, http.StatusOK, StreamIngestResponse{
		Topology:  tp.name,
		Ingested:  ingested,
		Snapshots: tp.eng.Snapshots(),
	})
}

// ingestVectors converts one IngestRequest (inline snapshot or batch) to the
// engine's observation vectors, shared by the unary and streaming ingest
// handlers.
func (tp *topo) ingestVectors(req IngestRequest) ([][]float64, error) {
	single := len(req.Y) > 0 || len(req.Frac) > 0
	if single && len(req.Snapshots) > 0 {
		return nil, errors.New(`use either an inline snapshot or "snapshots", not both`)
	}
	payloads := req.Snapshots
	if single {
		payloads = []SnapshotPayload{req.SnapshotPayload}
	}
	if len(payloads) == 0 {
		return nil, errors.New("no snapshots in request")
	}
	ys := make([][]float64, len(payloads))
	for i, p := range payloads {
		y, err := tp.vector(p)
		if err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", i, err)
		}
		ys[i] = y
	}
	return ys, nil
}
