package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lia"
	"lia/internal/emunet"
)

// CollectorConfig parameterizes a live CollectorSource.
type CollectorConfig struct {
	// Paths is the number of measurement paths per snapshot (required):
	// a snapshot is complete once every path has a beacon report.
	Paths int

	// Probes is S, the probe count behind each received fraction, used
	// only to clamp zero-delivery paths in the log conversion (0 → 1000).
	Probes int

	// Settle is the extra wait after a snapshot completes so the sinks'
	// timer-driven received reports merge in before the fractions are
	// read. 0 selects 1500ms (the standalone collector's default);
	// negative disables the wait (in-process tests).
	Settle time.Duration

	// Timeout bounds the wait for each snapshot's completion. 0 selects
	// 2 minutes (the standalone collector's default).
	Timeout time.Duration

	// Snapshots caps the stream; after that many snapshots Next reports
	// io.EOF. 0 streams until the source is closed.
	Snapshots int
}

// CollectorSource is a live lia.SnapshotSource over the emulated overlay's
// measurement plane: it listens for the internal/emunet collector report
// protocol (newline-delimited JSON over TCP, beacons reporting sent counts
// and sinks reporting received counts), assembles completed snapshots
// in-process, and hands them to the engine as log transmission rates. It
// replaces the `collector | liainfer` NDJSON pipe with a single process:
// point the beacon/sink agents' -collector flag at Addr.
//
// Snapshots are delivered strictly in order (0, 1, 2, ...), matching the
// snapshot indices the agents stamp on their reports. Next is safe for one
// consumer at a time, like every source in package lia.
//
// The source auto-reconnects: when the underlying listener dies, the Next
// call that observes the death surfaces the error (so a supervisor sees
// the outage), and the following Next re-listens on the same address and
// resumes awaiting the same snapshot index — mid-stream, nothing skipped.
// Wrap it in lia.RetrySource to get redial-with-backoff as a single
// self-healing source; under serve.Server.Run the source supervisor
// provides the backoff instead. Reconnects reports the redial count.
type CollectorSource struct {
	cfg  CollectorConfig
	addr string // concrete listen address, reused across reconnects

	closed     atomic.Bool
	reconnects atomic.Uint64

	// cmu guards the collector pointer alone, so Close and
	// InjectListenerFailure can reach it while Next holds mu in a wait.
	cmu  sync.Mutex
	coll *emunet.Collector

	mu   sync.Mutex // serialises Next: snapshot cursor and death/redial state
	next int
	dead bool // the listener died; next Next re-listens before awaiting
}

// NewCollectorSource starts the TCP report listener on addr (host:port;
// port 0 picks an ephemeral one, see Addr).
func NewCollectorSource(addr string, cfg CollectorConfig) (*CollectorSource, error) {
	if cfg.Paths <= 0 {
		return nil, fmt.Errorf("serve: collector source needs a positive path count, got %d", cfg.Paths)
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1000
	}
	if cfg.Settle == 0 {
		cfg.Settle = 1500 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Minute
	}
	coll, err := emunet.NewCollectorAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("serve: collector source: %w", err)
	}
	return &CollectorSource{cfg: cfg, addr: coll.Addr(), coll: coll}, nil
}

// Addr returns the TCP address agents report to. It is stable across
// reconnects: the source always re-listens on the same address.
func (s *CollectorSource) Addr() string { return s.addr }

// Reconnects returns how many times the source re-listened after its
// collector died.
func (s *CollectorSource) Reconnects() uint64 { return s.reconnects.Load() }

// collector returns the current underlying collector.
func (s *CollectorSource) collector() *emunet.Collector {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.coll
}

// Next implements lia.SnapshotSource: it blocks until the next snapshot in
// sequence is complete (every path reported, settle window elapsed) and
// returns its log transmission rates. It reports io.EOF once the configured
// snapshot cap is reached or the source is closed. When the collector
// listener has died, Next re-listens first (see CollectorSource) and picks
// up at the snapshot index the outage interrupted.
func (s *CollectorSource) Next(ctx context.Context) (lia.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() || (s.cfg.Snapshots > 0 && s.next >= s.cfg.Snapshots) {
		return lia.Snapshot{}, io.EOF
	}
	if s.dead {
		coll, err := emunet.NewCollectorAddr(s.addr)
		if err != nil {
			return lia.Snapshot{}, fmt.Errorf("serve: collector source re-listen %s: %w", s.addr, err)
		}
		s.cmu.Lock()
		s.coll = coll
		s.cmu.Unlock()
		s.dead = false
		s.reconnects.Add(1)
		if s.closed.Load() { // Close raced the swap: shut the new listener too
			_ = coll.Close()
			return lia.Snapshot{}, io.EOF
		}
	}
	settle := s.cfg.Settle
	if settle < 0 {
		settle = 0
	}
	// Timeout bounds the wait for completion; the settle window runs after
	// completion and gets its own budget on top.
	waitCtx, cancel := context.WithTimeout(ctx, s.cfg.Timeout+settle)
	defer cancel()
	frac, err := s.collector().AwaitSnapshot(waitCtx, s.next, s.cfg.Paths, settle)
	if err != nil {
		if s.closed.Load() {
			return lia.Snapshot{}, io.EOF
		}
		if errors.Is(err, emunet.ErrCollectorClosed) {
			// The listener died under us: flag for re-listen and surface the
			// outage so supervisors can count and pace the recovery.
			s.dead = true
		}
		return lia.Snapshot{}, fmt.Errorf("serve: collector source: %w", err)
	}
	s.next++
	return lia.Snapshot{Y: lia.LogRates(frac, s.cfg.Probes)}, nil
}

// InjectListenerFailure kills the underlying report listener without
// closing the source — exactly what a crashed collector process looks like
// to consumers. The in-flight or next Next observes the death and the
// source then re-listens on the same address. A fault-injection hook for
// resilience tests and the -chaos-kill-collector smoke flag; production
// code has no reason to call it.
func (s *CollectorSource) InjectListenerFailure() error {
	return s.collector().Close()
}

// Close stops the report listener. A Next call blocked on an incomplete
// snapshot returns once it observes the closed collector (promptly — the
// collector's done channel short-circuits the wait); subsequent calls
// report io.EOF.
func (s *CollectorSource) Close() error {
	// Flag first, and not under the mutex: Next holds it while waiting.
	s.closed.Store(true)
	return s.collector().Close()
}
