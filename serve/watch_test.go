package serve_test

// watch_test.go covers the push-stream surface added with /v1/watch and
// /v1/snapshots/stream: the NDJSON event schema (golden-pinned), push
// semantics (state changes arrive without polling, heartbeats fill idle
// gaps), watcher-count accounting across disconnects, a -race stress run
// with concurrent watchers, ingesters and rebuild-triggering queries, and
// the Run exit path closing every configured source.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lia"
	"lia/serve"
)

// newWatchServer builds a single-topology server with fast watch timing so
// tests observe pushes and heartbeats quickly.
func newWatchServer(t testing.TB, heartbeat time.Duration) (*lia.RoutingMatrix, *httptest.Server) {
	t.Helper()
	rm, err := lia.NewTopology(treePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{
		RebuildEvery:   -1,
		WatchPoll:      2 * time.Millisecond,
		WatchHeartbeat: heartbeat,
		Logf:           t.Logf,
	})
	if err := s.Add("default", serve.Topology{Engine: eng, Probes: 400}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return rm, ts
}

// watchStream opens GET /v1/watch and returns a decoder over its NDJSON
// events plus a closer that severs the connection.
func watchStream(t testing.TB, base string) (*json.Decoder, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/watch", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("watch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		cancel()
		t.Fatalf("watch: content type %q", ct)
	}
	return json.NewDecoder(resp.Body), func() {
		cancel()
		resp.Body.Close()
	}
}

// nextEvent decodes one event, failing the test on stream errors.
func nextEvent(t testing.TB, dec *json.Decoder) serve.WatchEvent {
	t.Helper()
	var ev serve.WatchEvent
	if err := dec.Decode(&ev); err != nil {
		t.Fatalf("watch stream: %v", err)
	}
	return ev
}

// TestWatchGolden pins the exact NDJSON bytes of the first watch event on a
// fresh topology and of the epoch event after one deterministic batch — the
// event schema contract for external watchers.
func TestWatchGolden(t *testing.T) {
	rm, ts := newWatchServer(t, 10*time.Second)
	dec, closeStream := watchStream(t, ts.URL)
	defer closeStream()

	var first json.RawMessage
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "watch_first.golden", append(first, '\n'))

	// One atomic batch: exactly one state transition, so exactly one
	// deterministic epoch event follows the connect event.
	var batch serve.IngestRequest
	for _, y := range testVectors(t, rm, 42, 40) {
		batch.Snapshots = append(batch.Snapshots, serve.SnapshotPayload{Y: y})
	}
	if code, body := do(t, http.MethodPost, ts.URL+"/v1/snapshots", batch); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	var after json.RawMessage
	if err := dec.Decode(&after); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "watch_after_ingest.golden", append(after, '\n'))
}

// TestWatchPush checks push semantics: the current state arrives on
// connect, ingestion produces an epoch event without the client polling,
// and idle streams carry heartbeats with the same state.
func TestWatchPush(t *testing.T) {
	rm, ts := newWatchServer(t, 20*time.Millisecond)
	dec, closeStream := watchStream(t, ts.URL)
	defer closeStream()

	first := nextEvent(t, dec)
	if first.Type != "epoch" || first.Snapshots != 0 || first.Topology != "default" {
		t.Fatalf("first event: %+v", first)
	}

	ys := testVectors(t, rm, 7, 5)
	ingestAll(t, ts.URL, "/v1", ys)
	// Heartbeats from before the ingest may interleave; the epoch event
	// carrying the new count must arrive without the client asking.
	var ev serve.WatchEvent
	for ev = nextEvent(t, dec); ev.Snapshots != len(ys); ev = nextEvent(t, dec) {
		if ev.Type != "heartbeat" {
			t.Fatalf("unexpected event before ingest landed: %+v", ev)
		}
	}
	if ev.Type != "epoch" {
		t.Fatalf("after ingest: %+v", ev)
	}

	hb := nextEvent(t, dec)
	if hb.Type != "heartbeat" {
		t.Fatalf("expected heartbeat while idle, got %+v", hb)
	}
	if hb.Snapshots != ev.Snapshots || hb.Epoch != ev.Epoch {
		t.Fatalf("heartbeat changed state: %+v vs %+v", hb, ev)
	}
}

// watcherGauge scrapes liaserve_watchers for the default topology.
func watcherGauge(t testing.TB, base string) int {
	t.Helper()
	_, body := do(t, http.MethodGet, base+"/metrics", nil)
	m := regexp.MustCompile(`liaserve_watchers\{topology="default"\} (\d+)`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("no liaserve_watchers series in:\n%s", body)
	}
	n := 0
	fmt.Sscanf(string(m[1]), "%d", &n)
	return n
}

// waitGauge polls the watcher gauge until it reports want.
func waitGauge(t testing.TB, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := watcherGauge(t, base); got == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("liaserve_watchers: got %d, want %d", got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchDisconnectCleanup checks that every watcher is counted while
// connected and released when its connection drops.
func TestWatchDisconnectCleanup(t *testing.T) {
	_, ts := newWatchServer(t, 10*time.Second)
	var closers []func()
	for i := 0; i < 3; i++ {
		dec, closeStream := watchStream(t, ts.URL)
		nextEvent(t, dec) // stream established
		closers = append(closers, closeStream)
	}
	waitGauge(t, ts.URL, 3)
	for _, c := range closers {
		c()
	}
	waitGauge(t, ts.URL, 0)
}

// TestWatchConcurrent hammers the stream under -race: watchers decode
// events while ingesters fold snapshots and query goroutines force
// rebuilds. Every watcher must observe a monotone snapshot count that
// reaches the total, and the watcher gauge must return to zero.
func TestWatchConcurrent(t *testing.T) {
	rm, ts := newWatchServer(t, 50*time.Millisecond)
	const (
		watchers  = 6
		ingesters = 4
		batches   = 5
		batchLen  = 4
	)
	total := ingesters * batches * batchLen
	ys := testVectors(t, rm, 11, total)

	// Streams open in the main goroutine and register cleanup closers, so a
	// failing assertion can never leave a watcher pinning the test server.
	var wg sync.WaitGroup
	errc := make(chan error, watchers+ingesters)
	var closers []func()
	for w := 0; w < watchers; w++ {
		dec, closeStream := watchStream(t, ts.URL)
		t.Cleanup(closeStream)
		closers = append(closers, closeStream)
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := -1
			for {
				var ev serve.WatchEvent
				if err := dec.Decode(&ev); err != nil {
					errc <- fmt.Errorf("watch stream: %w", err)
					return
				}
				if ev.Snapshots < seen {
					errc <- fmt.Errorf("watch went backwards: %d after %d", ev.Snapshots, seen)
					return
				}
				seen = ev.Snapshots
				if seen == total {
					return
				}
			}
		}()
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			part := ys[g*batches*batchLen : (g+1)*batches*batchLen]
			for b := 0; b < batches; b++ {
				var req serve.IngestRequest
				for _, y := range part[b*batchLen : (b+1)*batchLen] {
					req.Snapshots = append(req.Snapshots, serve.SnapshotPayload{Y: y})
				}
				if code, body := do(t, http.MethodPost, ts.URL+"/v1/snapshots", req); code != http.StatusOK {
					errc <- fmt.Errorf("ingest: %d %s", code, body)
					return
				}
			}
		}(g)
	}
	stopQueries := make(chan struct{})
	var queryWG sync.WaitGroup
	queryWG.Add(1)
	go func() {
		defer queryWG.Done()
		for {
			select {
			case <-stopQueries:
				return
			default:
			}
			do(t, http.MethodGet, ts.URL+"/v1/links", nil)
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	select {
	case <-done:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("watchers or ingesters never finished")
	}
	close(stopQueries)
	queryWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	for _, c := range closers {
		c()
	}
	waitGauge(t, ts.URL, 0)
}

// TestStreamIngest drives POST /v1/snapshots/stream: NDJSON records fold in
// as they arrive, the summary reports the totals, and a bad record aborts
// the stream naming its index and the count ingested before it.
func TestStreamIngest(t *testing.T) {
	rm, ts := newWatchServer(t, 10*time.Second)
	ys := testVectors(t, rm, 21, 10)

	var b strings.Builder
	enc := json.NewEncoder(&b)
	// Mix framings: one single snapshot, then a batch record of the rest.
	if err := enc.Encode(serve.IngestRequest{SnapshotPayload: serve.SnapshotPayload{Y: ys[0]}}); err != nil {
		t.Fatal(err)
	}
	var batch serve.IngestRequest
	for _, y := range ys[1:] {
		batch.Snapshots = append(batch.Snapshots, serve.SnapshotPayload{Y: y})
	}
	if err := enc.Encode(batch); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/snapshots/stream", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var sum serve.StreamIngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sum.Ingested != len(ys) || sum.Snapshots != len(ys) {
		t.Fatalf("stream ingest: %d %+v", resp.StatusCode, sum)
	}

	// A record with the wrong dimension aborts the stream, reporting the
	// record index and how much of the stream was folded before it.
	b.Reset()
	if err := enc.Encode(serve.IngestRequest{SnapshotPayload: serve.SnapshotPayload{Y: ys[0]}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(serve.IngestRequest{SnapshotPayload: serve.SnapshotPayload{Y: []float64{0.5}}}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/snapshots/stream", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var fail serve.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&fail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad record: status %d", resp.StatusCode)
	}
	if !strings.Contains(fail.Error, "stream record 1") {
		t.Fatalf("bad record error does not name its index: %q", fail.Error)
	}
	if fail.Ingested == nil || *fail.Ingested != 1 {
		t.Fatalf("bad record ingested count: %+v", fail.Ingested)
	}
}

// closeRecordingSource wraps a snapshot source and records Close calls.
type closeRecordingSource struct {
	src    lia.SnapshotSource
	closed atomic.Int32
}

func (c *closeRecordingSource) Next(ctx context.Context) (lia.Snapshot, error) {
	return c.src.Next(ctx)
}

func (c *closeRecordingSource) Close() error {
	c.closed.Add(1)
	return lia.CloseSource(c.src)
}

// TestRunClosesSources checks the shutdown contract: when Run drains, every
// configured source is closed exactly once — no leaked files or listeners.
func TestRunClosesSources(t *testing.T) {
	rm, err := lia.NewTopology(treePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []*closeRecordingSource{
		{src: lia.NewSimSource(rm, lia.SimConfig{Probes: 400, Seed: 1})},
		{src: lia.NewSimSource(rm, lia.SimConfig{Probes: 400, Seed: 2})},
	}
	s := serve.New(serve.Config{RebuildEvery: -1, Logf: t.Logf})
	if err := s.Add("default", serve.Topology{
		Engine:  eng,
		Probes:  400,
		Sources: []lia.SnapshotSource{srcs[0], srcs[1]},
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()

	// Let the sources make progress, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Snapshots() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sources never ingested")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never returned")
	}
	for i, src := range srcs {
		if got := src.closed.Load(); got != 1 {
			t.Fatalf("source %d closed %d times, want 1", i, got)
		}
	}
}
