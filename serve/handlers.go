package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lia"
)

// SnapshotPayload is one snapshot in the ingest/infer request bodies:
// either "y" (observation vector, e.g. log transmission rates — ingested
// as-is) or "frac" (per-path received fractions, converted with
// lia.LogRates using "probes" or the topology's configured probe count).
type SnapshotPayload struct {
	Y      []float64 `json:"y,omitempty"`
	Frac   []float64 `json:"frac,omitempty"`
	Probes int       `json:"probes,omitempty"`
}

// IngestRequest is the body of POST /v1/snapshots: a single snapshot
// (inline "y"/"frac") or a batch under "snapshots". A batch is atomic —
// either every snapshot folds in or none does.
type IngestRequest struct {
	SnapshotPayload
	Snapshots []SnapshotPayload `json:"snapshots,omitempty"`
}

// IngestResponse reports an accepted ingestion.
type IngestResponse struct {
	Topology string `json:"topology"`
	// Ingested is the number of snapshots folded in by this request.
	Ingested int `json:"ingested"`
	// Snapshots is the engine's lifetime snapshot count afterwards.
	Snapshots int `json:"snapshots"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Ingested, on ingest failures, is how many snapshots of the request
	// were folded in before the failure (always 0: batches are atomic).
	Ingested *int `json:"ingested,omitempty"`
}

// LinkResult is one virtual link's inference in an InferResponse.
// Unresolved marks a link whose owning sharded component failed to produce
// estimates — its values read zero and it is neither kept nor removed.
type LinkResult struct {
	Members    []int   `json:"members"`
	LossRate   float64 `json:"loss_rate"`
	Variance   float64 `json:"variance"`
	Kept       bool    `json:"kept"`
	Congested  bool    `json:"congested"`
	Unresolved bool    `json:"unresolved,omitempty"`
}

// InferResponse is the body of POST /v1/infer. Unresolved counts links
// whose sharded component is failing (0 in healthy operation).
type InferResponse struct {
	Topology   string       `json:"topology"`
	Epoch      int          `json:"epoch"`
	Kept       int          `json:"kept"`
	Removed    int          `json:"removed"`
	Unresolved int          `json:"unresolved,omitempty"`
	Threshold  float64      `json:"threshold"`
	Links      []LinkResult `json:"links"`
}

// LinkState is one virtual link's steady-state learning summary.
type LinkState struct {
	Members    []int   `json:"members"`
	Variance   float64 `json:"variance"`
	Kept       bool    `json:"kept"`
	Unresolved bool    `json:"unresolved,omitempty"`
}

// LinksResponse is the body of GET /v1/links: the Phase-1 estimates and
// elimination partition of the current epoch cache. Unresolved counts
// links whose sharded component is failing (0 in healthy operation).
type LinksResponse struct {
	Topology   string      `json:"topology"`
	Epoch      int         `json:"epoch"`
	Snapshots  int         `json:"snapshots"`
	Unresolved int         `json:"unresolved,omitempty"`
	Links      []LinkState `json:"links"`
}

// SourceStatus is one background source's supervision record in a
// TopoStatus: its consumption state, restart count, quarantine counter and
// last error (empty when it never failed).
type SourceStatus struct {
	State       string `json:"state"`
	Restarts    uint64 `json:"restarts"`
	Quarantined uint64 `json:"quarantined"`
	LastError   string `json:"last_error,omitempty"`
	LastErrorAt string `json:"last_error_at,omitempty"`
}

// DurabilityStatus is the durability block of a TopoStatus, present only
// for engines persisting state (lia.WithDurability). It mirrors
// lia.DurabilityStats: the recovery that happened at boot and the
// WAL/checkpoint activity since.
type DurabilityStatus struct {
	Dir                string  `json:"dir"`
	SyncPolicy         string  `json:"sync_policy"`
	Checkpoints        uint64  `json:"checkpoints"`
	CheckpointEpoch    uint64  `json:"checkpoint_epoch"`
	LastCheckpointMs   float64 `json:"last_checkpoint_ms"`
	LastCheckpointAt   string  `json:"last_checkpoint_at,omitempty"`
	WALBytes           int64   `json:"wal_bytes"`
	WALRecords         uint64  `json:"wal_records"`
	WALSegments        int     `json:"wal_segments"`
	RecoveredEpoch     uint64  `json:"recovered_epoch"`
	ReplayedSnapshots  int     `json:"recovery_replayed_snapshots"`
	CorruptCheckpoints int     `json:"corrupt_checkpoints"`
}

// TopoStatus is one topology's entry in a StatusResponse. The degradation
// block (Degraded through StateAgeMs) mirrors lia.Stats: a degraded
// topology is still serving, from the last-good epoch, while rebuilds fail.
type TopoStatus struct {
	Paths         int     `json:"paths"`
	Links         int     `json:"links"`
	Snapshots     int     `json:"snapshots"`
	StateEpoch    int     `json:"state_epoch"`
	EpochLag      int     `json:"epoch_lag"`
	Rebuilds      uint64  `json:"rebuilds"`
	ElimReuses    uint64  `json:"elim_reuses"`
	LastRebuildMs float64 `json:"last_rebuild_ms"`

	// The O(delta) steady-state block mirrors the incremental-rebuild
	// fields of lia.Stats: how many rebuilds ran the dirty-shard delta
	// fold, the shard/component work of the most recent wave, the lifetime
	// count of skipped component rebuilds, and adopted LPT rebalances.
	DeltaRebuilds     uint64 `json:"delta_rebuilds"`
	DirtyShards       int    `json:"dirty_shards"`
	DirtyComponents   int    `json:"dirty_components,omitempty"`
	SkippedComponents uint64 `json:"skipped_components,omitempty"`
	Rebalances        uint64 `json:"rebalances,omitempty"`

	Degraded           bool    `json:"degraded"`
	DegradedComponents int     `json:"degraded_components,omitempty"`
	RebuildFailures    uint64  `json:"rebuild_failures"`
	LastError          string  `json:"last_error,omitempty"`
	LastFailure        string  `json:"last_failure,omitempty"`
	StateAgeMs         float64 `json:"state_age_ms"`

	Shards          int            `json:"shards"`
	Components      int            `json:"components"`
	Window          int            `json:"window"`
	Decay           float64        `json:"decay"`
	Threshold       float64        `json:"threshold"`
	Probes          int            `json:"probes"`
	Sources         int            `json:"sources"`
	SourceRestarts  uint64         `json:"source_restarts"`
	Quarantined     uint64         `json:"quarantined"`
	SourceDetail    []SourceStatus `json:"source_detail,omitempty"`
	HTTPSnapshots   uint64         `json:"http_snapshots"`
	SourceSnapshots uint64         `json:"source_snapshots"`
	Inferences      uint64         `json:"inferences"`

	// Durability is present only when the topology's engine persists its
	// state (lia.WithDurability); plain engines omit the block.
	Durability *DurabilityStatus `json:"durability,omitempty"`
}

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Default         string  `json:"default"`
	RebuildEvery    int     `json:"rebuild_every"`
	RebuildInterval string  `json:"rebuild_interval"`
	// Shards is the configured server-wide shard policy (Config.Shards:
	// 0 = auto, 1 = unsharded, k = up to k shards); each topology reports
	// its actual shard and component counts.
	Shards     int                   `json:"shards"`
	Topologies map[string]TopoStatus `json:"topologies"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status     string `json:"status"`
	Topologies int    `json:"topologies"`
}

// ReadyResponse is the body of GET /readyz: 200 when every topology has a
// built state, no engine is degraded and no source is in failure backoff;
// 503 otherwise, with the violations listed in Reasons. Liveness
// (/healthz) stays 200 either way — a degraded server is up, just not
// fully serving fresh state.
type ReadyResponse struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`
}

// Handler builds the HTTP API over the registered topologies. The handler
// is safe for concurrent use and may be mounted before or while Run is
// active.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/snapshots", s.handleIngest)
	mux.HandleFunc("POST /v1/snapshots/stream", s.handleStreamIngest)
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/links", s.handleLinks)
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	mux.HandleFunc("POST /v1/topologies/{topo}/snapshots", s.handleIngest)
	mux.HandleFunc("POST /v1/topologies/{topo}/snapshots/stream", s.handleStreamIngest)
	mux.HandleFunc("POST /v1/topologies/{topo}/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/topologies/{topo}/links", s.handleLinks)
	mux.HandleFunc("GET /v1/topologies/{topo}/watch", s.handleWatch)
	return mux
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError maps an error to a status code and the ErrorResponse body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// errorCode classifies engine errors for HTTP: client payload problems are
// 400s, not-learned-yet is 409 (retry after more snapshots), a rebuild
// failure with nothing to serve is 503 (the service is unavailable until
// healthier data arrives), the rest 500.
func errorCode(err error) int {
	switch {
	case errors.Is(err, lia.ErrDimensionMismatch):
		return http.StatusBadRequest
	case errors.Is(err, lia.ErrTooFewSnapshots):
		return http.StatusConflict
	case errors.Is(err, lia.ErrRebuildFailed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// resolve extracts the addressed topology, writing the 404 itself when the
// name is unknown.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*topo, bool) {
	tp, err := s.lookup(r.PathValue("topo"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return tp, true
}

// vector converts one snapshot payload to the engine's observation vector.
func (tp *topo) vector(p SnapshotPayload) ([]float64, error) {
	switch {
	case len(p.Y) > 0 && len(p.Frac) > 0:
		return nil, errors.New(`"y" and "frac" are mutually exclusive`)
	case len(p.Y) > 0:
		return p.Y, nil
	case len(p.Frac) > 0:
		probes := p.Probes
		if probes <= 0 {
			probes = tp.probes
		}
		return lia.LogRates(p.Frac, probes), nil
	default:
		return nil, errors.New(`snapshot needs "y" or "frac"`)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Topologies: len(s.names())})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready, reasons := s.readiness()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "degraded", Reasons: reasons})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Status: "ok"})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	tp, ok := s.resolve(w, r)
	if !ok {
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	ys, err := tp.ingestVectors(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := tp.eng.IngestBatch(ys); err != nil {
		zero := 0
		writeJSON(w, errorCode(err), ErrorResponse{Error: err.Error(), Ingested: &zero})
		return
	}
	tp.httpSnapshots.Add(uint64(len(ys)))
	writeJSON(w, http.StatusOK, IngestResponse{
		Topology:  tp.name,
		Ingested:  len(ys),
		Snapshots: tp.eng.Snapshots(),
	})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	tp, ok := s.resolve(w, r)
	if !ok {
		return
	}
	var req SnapshotPayload
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	y, err := tp.vector(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	congested, res, err := tp.eng.InferCongested(r.Context(), y)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	tp.inferences.Add(1)
	rm := tp.eng.RoutingMatrix()
	keptSet := make(map[int]bool, len(res.Kept))
	for _, k := range res.Kept {
		keptSet[k] = true
	}
	unresolvedSet := make(map[int]bool, len(res.Unresolved))
	for _, k := range res.Unresolved {
		unresolvedSet[k] = true
	}
	out := InferResponse{
		Topology:   tp.name,
		Epoch:      res.Epoch,
		Kept:       len(res.Kept),
		Removed:    len(res.Removed),
		Unresolved: len(res.Unresolved),
		Threshold:  tp.eng.Threshold(),
		Links:      make([]LinkResult, rm.NumLinks()),
	}
	for k := 0; k < rm.NumLinks(); k++ {
		out.Links[k] = LinkResult{
			Members:    rm.Members(k),
			LossRate:   res.LossRates[k],
			Variance:   res.Variances[k],
			Kept:       keptSet[k],
			Congested:  congested[k],
			Unresolved: unresolvedSet[k],
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	tp, ok := s.resolve(w, r)
	if !ok {
		return
	}
	// One consistent state read: variances, partition and epoch can never
	// mix epochs, even under concurrent ingestion.
	st, err := tp.eng.Steady(r.Context())
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	keptSet := make(map[int]bool, len(st.Kept))
	for _, k := range st.Kept {
		keptSet[k] = true
	}
	unresolvedSet := make(map[int]bool, len(st.Unresolved))
	for _, k := range st.Unresolved {
		unresolvedSet[k] = true
	}
	rm := tp.eng.RoutingMatrix()
	out := LinksResponse{
		Topology:   tp.name,
		Epoch:      st.Epoch,
		Snapshots:  tp.eng.Snapshots(),
		Unresolved: len(st.Unresolved),
		Links:      make([]LinkState, rm.NumLinks()),
	}
	for k := 0; k < rm.NumLinks(); k++ {
		out.Links[k] = LinkState{
			Members:    rm.Members(k),
			Variance:   st.Variances[k],
			Kept:       keptSet[k],
			Unresolved: unresolvedSet[k],
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	names := s.names()
	out := StatusResponse{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		RebuildEvery:    s.cfg.RebuildEvery,
		RebuildInterval: s.cfg.RebuildInterval.String(),
		Shards:          s.cfg.Shards,
		Topologies:      make(map[string]TopoStatus, len(names)),
	}
	if len(names) > 0 {
		out.Default = names[0]
	}
	for _, name := range names {
		tp, err := s.lookup(name)
		if err != nil {
			continue
		}
		st := tp.eng.Stats()
		rm := tp.eng.RoutingMatrix()
		ts := TopoStatus{
			Paths:         rm.NumPaths(),
			Links:         rm.NumLinks(),
			Snapshots:     st.Snapshots,
			StateEpoch:    st.StateEpoch,
			EpochLag:      st.EpochLag,
			Rebuilds:      st.Rebuilds,
			ElimReuses:    st.ElimReuses,
			LastRebuildMs: float64(st.LastRebuild) / float64(time.Millisecond),

			DeltaRebuilds:     st.DeltaRebuilds,
			DirtyShards:       st.DirtyShards,
			DirtyComponents:   st.DirtyComponents,
			SkippedComponents: st.SkippedComponents,
			Rebalances:        st.Rebalances,

			Degraded:           st.Degraded,
			DegradedComponents: st.DegradedComponents,
			RebuildFailures:    st.RebuildFailures,
			LastError:          st.LastError,
			StateAgeMs:         float64(st.StateAge) / float64(time.Millisecond),

			Shards:          st.Shards,
			Components:      st.Components,
			Window:          st.Window,
			Decay:           st.Decay,
			Threshold:       tp.eng.Threshold(),
			Probes:          tp.probes,
			Sources:         len(tp.sources),
			SourceRestarts:  tp.sourceRestarts(),
			Quarantined:     tp.quarantined(),
			HTTPSnapshots:   tp.httpSnapshots.Load(),
			SourceSnapshots: tp.sourceSnapshots.Load(),
			Inferences:      tp.inferences.Load(),
		}
		if !st.LastFailure.IsZero() {
			ts.LastFailure = st.LastFailure.UTC().Format(time.RFC3339Nano)
		}
		if dst, ok := tp.eng.(durabilityStatser); ok {
			ds := dst.DurabilityStats()
			dur := &DurabilityStatus{
				Dir:                ds.Dir,
				SyncPolicy:         ds.SyncPolicy,
				Checkpoints:        ds.Checkpoints,
				CheckpointEpoch:    ds.CheckpointEpoch,
				LastCheckpointMs:   float64(ds.LastCheckpoint) / float64(time.Millisecond),
				WALBytes:           ds.WALBytes,
				WALRecords:         ds.WALRecords,
				WALSegments:        ds.WALSegments,
				RecoveredEpoch:     ds.RecoveredEpoch,
				ReplayedSnapshots:  ds.ReplayedSnapshots,
				CorruptCheckpoints: ds.CorruptCheckpoints,
			}
			if !ds.LastCheckpointAt.IsZero() {
				dur.LastCheckpointAt = ds.LastCheckpointAt.UTC().Format(time.RFC3339Nano)
			}
			ts.Durability = dur
		}
		for _, ss := range tp.sources {
			state, lastErr, lastErrAt := ss.health()
			det := SourceStatus{
				State:       state,
				Restarts:    ss.restarts.Load(),
				Quarantined: ss.sanitizer.Stats().Quarantined,
				LastError:   lastErr,
			}
			if !lastErrAt.IsZero() {
				det.LastErrorAt = lastErrAt.UTC().Format(time.RFC3339Nano)
			}
			ts.SourceDetail = append(ts.SourceDetail, det)
		}
		out.Topologies[name] = ts
	}
	writeJSON(w, http.StatusOK, out)
}
