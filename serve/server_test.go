package serve_test

// server_test.go drives the HTTP API end to end over httptest servers:
// golden tests pin every JSON endpoint's exact bytes, a bitwise-parity test
// checks the served estimates against an offline engine fed the same
// snapshots, and a -race load test hammers concurrent ingestion and
// queries.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"lia"
	"lia/serve"
)

var update = flag.Bool("update", false, "rewrite golden files")

// treePaths builds the paths of a complete fanout-ary probing tree of the
// given depth (beacon at the root probing every leaf) — the identifiable
// topology family used across the repo's tests.
func treePaths(depth, fanout int) []lia.Path {
	var paths []lia.Path
	nextNode, nextLink := 1, 1
	var walk func(node int, trail []int, d int)
	walk = func(node int, trail []int, d int) {
		if d == depth {
			paths = append(paths, lia.Path{Beacon: 0, Dst: node, Links: append([]int(nil), trail...)})
			return
		}
		for f := 0; f < fanout; f++ {
			child, link := nextNode, nextLink
			nextNode++
			nextLink++
			walk(child, append(trail, link), d+1)
		}
	}
	walk(0, nil, 0)
	return paths
}

// testVectors streams n deterministic observation vectors for rm.
func testVectors(t testing.TB, rm *lia.RoutingMatrix, seed uint64, n int) [][]float64 {
	t.Helper()
	src := lia.NewSimSource(rm, lia.SimConfig{Probes: 400, Seed: seed, CongestedFraction: 0.2})
	ctx := context.Background()
	ys := make([][]float64, n)
	for i := range ys {
		snap, err := src.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ys[i] = snap.Y
	}
	return ys
}

// newTestServer builds a two-topology server ("default" 9 paths, "lab" 3
// paths) with background rebuilds disabled, so every state change is
// driven — deterministically — by the requests the test makes.
func newTestServer(t testing.TB) (*serve.Server, *lia.RoutingMatrix, *httptest.Server) {
	t.Helper()
	rm, err := lia.NewTopology(treePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	labRM, err := lia.NewTopology(treePaths(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	labEng, err := lia.NewEngine(labRM, lia.WithWindow(16))
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{RebuildEvery: -1, Logf: t.Logf})
	if err := s.Add("default", serve.Topology{Engine: eng, Probes: 400}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("lab", serve.Topology{Engine: labEng, Probes: 400}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, rm, ts
}

// do issues one request and returns the status code and body.
func do(t testing.TB, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// ingestAll POSTs ys as /v1/snapshots batches of 20.
func ingestAll(t testing.TB, base, topoPath string, ys [][]float64) {
	t.Helper()
	for len(ys) > 0 {
		n := min(20, len(ys))
		var req serve.IngestRequest
		for _, y := range ys[:n] {
			req.Snapshots = append(req.Snapshots, serve.SnapshotPayload{Y: y})
		}
		code, body := do(t, http.MethodPost, base+topoPath+"/snapshots", req)
		if code != http.StatusOK {
			t.Fatalf("ingest: %d %s", code, body)
		}
		ys = ys[n:]
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenEndpoints pins the exact response bytes of every JSON endpoint
// over a deterministic campaign (volatile timing fields normalized).
func TestGoldenEndpoints(t *testing.T) {
	_, rm, ts := newTestServer(t)
	ys := testVectors(t, rm, 42, 41)
	learn, probe := ys[:40], ys[40]

	// healthz before any learning.
	code, body := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	compareGolden(t, "healthz.golden", body)

	// Single-snapshot and batch ingest responses.
	code, body = do(t, http.MethodPost, ts.URL+"/v1/snapshots", serve.IngestRequest{
		SnapshotPayload: serve.SnapshotPayload{Y: learn[0]},
	})
	if code != http.StatusOK {
		t.Fatalf("single ingest: %d %s", code, body)
	}
	compareGolden(t, "ingest_single.golden", body)
	var batch serve.IngestRequest
	for _, y := range learn[1:] {
		batch.Snapshots = append(batch.Snapshots, serve.SnapshotPayload{Y: y})
	}
	code, body = do(t, http.MethodPost, ts.URL+"/v1/snapshots", batch)
	if code != http.StatusOK {
		t.Fatalf("batch ingest: %d %s", code, body)
	}
	compareGolden(t, "ingest_batch.golden", body)

	// Steady-state links and one inference.
	code, body = do(t, http.MethodGet, ts.URL+"/v1/links", nil)
	if code != http.StatusOK {
		t.Fatalf("links: %d %s", code, body)
	}
	compareGolden(t, "links.golden", body)
	code, body = do(t, http.MethodPost, ts.URL+"/v1/infer", serve.SnapshotPayload{Y: probe})
	if code != http.StatusOK {
		t.Fatalf("infer: %d %s", code, body)
	}
	compareGolden(t, "infer.golden", body)

	// Status and metrics, with wall-clock-dependent values normalized.
	code, body = do(t, http.MethodGet, ts.URL+"/v1/status", nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	compareGolden(t, "status.golden", normalizeStatus(t, body))
	code, body = do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, body)
	}
	compareGolden(t, "metrics.golden", normalizeMetrics(body))

	// Error bodies: unknown topology, empty ingest, inference before
	// learning (the "lab" topology has no snapshots), dimension mismatch.
	code, body = do(t, http.MethodGet, ts.URL+"/v1/topologies/nosuch/links", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown topology: %d %s", code, body)
	}
	compareGolden(t, "err_unknown_topology.golden", body)
	code, body = do(t, http.MethodPost, ts.URL+"/v1/snapshots", serve.IngestRequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("empty ingest: %d %s", code, body)
	}
	compareGolden(t, "err_empty_ingest.golden", body)
	code, body = do(t, http.MethodPost, ts.URL+"/v1/topologies/lab/infer",
		serve.SnapshotPayload{Y: []float64{-0.1, -0.2, -0.3}})
	if code != http.StatusConflict {
		t.Fatalf("infer before learning: %d %s", code, body)
	}
	compareGolden(t, "err_too_few_snapshots.golden", body)
	code, body = do(t, http.MethodPost, ts.URL+"/v1/snapshots", serve.IngestRequest{
		SnapshotPayload: serve.SnapshotPayload{Y: []float64{1}},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("dimension mismatch: %d %s", code, body)
	}
	compareGolden(t, "err_dimension.golden", body)
}

// normalizeStatus zeroes the wall-clock-dependent fields of a status body.
func normalizeStatus(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("status is not valid JSON: %v\n%s", err, body)
	}
	m["uptime_seconds"] = 0
	topos, ok := m["topologies"].(map[string]any)
	if !ok {
		t.Fatalf("status without topologies map: %s", body)
	}
	for _, v := range topos {
		if tm, ok := v.(map[string]any); ok {
			tm["last_rebuild_ms"] = 0
			tm["state_age_ms"] = 0
			delete(tm, "last_failure")
		}
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

var volatileMetric = regexp.MustCompile(`(?m)^(liaserve_(?:uptime_seconds|rebuild_last_seconds|state_age_seconds)(?:\{[^}]*\})?) .*$`)

// normalizeMetrics zeroes the timing-valued series of a metrics body.
func normalizeMetrics(body []byte) []byte {
	return volatileMetric.ReplaceAll(body, []byte("$1 0"))
}

// TestServedMatchesOfflineBitwise is the acceptance criterion: estimates
// served over HTTP must be bitwise identical to an offline lia.Engine fed
// the same snapshots. JSON carries float64 exactly (shortest round-trip
// encoding), so the comparison is on Float64bits.
func TestServedMatchesOfflineBitwise(t *testing.T) {
	_, rm, ts := newTestServer(t)
	ys := testVectors(t, rm, 7, 61)
	learn, probe := ys[:60], ys[60]
	ingestAll(t, ts.URL, "/v1", learn)

	offline, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.IngestBatch(learn); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	wantVars, err := offline.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := offline.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}

	code, body := do(t, http.MethodGet, ts.URL+"/v1/links", nil)
	if code != http.StatusOK {
		t.Fatalf("links: %d %s", code, body)
	}
	var links serve.LinksResponse
	if err := json.Unmarshal(body, &links); err != nil {
		t.Fatal(err)
	}
	if links.Epoch != 60 || links.Snapshots != 60 {
		t.Fatalf("links epoch/snapshots = %d/%d, want 60/60", links.Epoch, links.Snapshots)
	}
	if len(links.Links) != len(wantVars) {
		t.Fatalf("links count %d, offline %d", len(links.Links), len(wantVars))
	}
	for k, l := range links.Links {
		if math.Float64bits(l.Variance) != math.Float64bits(wantVars[k]) {
			t.Fatalf("link %d: served variance %v, offline %v", k, l.Variance, wantVars[k])
		}
	}

	code, body = do(t, http.MethodPost, ts.URL+"/v1/infer", serve.SnapshotPayload{Y: probe})
	if code != http.StatusOK {
		t.Fatalf("infer: %d %s", code, body)
	}
	var inf serve.InferResponse
	if err := json.Unmarshal(body, &inf); err != nil {
		t.Fatal(err)
	}
	if inf.Kept != len(wantRes.Kept) || inf.Removed != len(wantRes.Removed) {
		t.Fatalf("partition %d/%d, offline %d/%d", inf.Kept, inf.Removed, len(wantRes.Kept), len(wantRes.Removed))
	}
	for k, l := range inf.Links {
		if math.Float64bits(l.LossRate) != math.Float64bits(wantRes.LossRates[k]) ||
			math.Float64bits(l.Variance) != math.Float64bits(wantRes.Variances[k]) {
			t.Fatalf("link %d: served (%v, %v), offline (%v, %v)",
				k, l.LossRate, l.Variance, wantRes.LossRates[k], wantRes.Variances[k])
		}
	}
}

// TestConcurrentIngestInferLoad hammers the live server with concurrent
// snapshot POSTs, /v1/links reads and /v1/infer calls while the background
// rebuild loop runs — the -race acceptance test. Every response must be a
// 200 and decode into its schema.
func TestConcurrentIngestInferLoad(t *testing.T) {
	rm, err := lia.NewTopology(treePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{RebuildEvery: 16, RebuildInterval: 20 * time.Millisecond, PollInterval: 5 * time.Millisecond, Logf: t.Logf})
	if err := s.Add("default", serve.Topology{
		Engine:  eng,
		Sources: []lia.SnapshotSource{lia.NewSimSource(rm, lia.SimConfig{Probes: 300, Seed: 5, Snapshots: 400})},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = s.Run(ctx) }()
	defer func() { cancel(); <-runDone }()

	ys := testVectors(t, rm, 9, 160)
	ingestAll(t, ts.URL, "/v1", ys[:8]) // enough learning that queries can't 409

	const writers, readers = 4, 4
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	writersDone := make(chan struct{})
	var writersLeft sync.WaitGroup
	writersLeft.Add(writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersLeft.Done()
			for i := w; i < len(ys); i += writers {
				var req serve.IngestRequest
				req.Snapshots = append(req.Snapshots, serve.SnapshotPayload{Y: ys[i]})
				code, body := do(t, http.MethodPost, ts.URL+"/v1/snapshots", req)
				if code != http.StatusOK {
					errc <- fmt.Errorf("writer %d: %d %s", w, code, body)
					return
				}
			}
		}(w)
	}
	go func() { writersLeft.Wait(); close(writersDone) }()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-writersDone:
					return
				default:
				}
				if i%2 == 0 {
					code, body := do(t, http.MethodGet, ts.URL+"/v1/links", nil)
					if code != http.StatusOK {
						errc <- fmt.Errorf("reader %d links: %d %s", r, code, body)
						return
					}
					var out serve.LinksResponse
					if err := json.Unmarshal(body, &out); err != nil {
						errc <- fmt.Errorf("reader %d links decode: %v", r, err)
						return
					}
				} else {
					code, body := do(t, http.MethodPost, ts.URL+"/v1/infer",
						serve.SnapshotPayload{Y: ys[i%len(ys)]})
					if code != http.StatusOK {
						errc <- fmt.Errorf("reader %d infer: %d %s", r, code, body)
						return
					}
					var out serve.InferResponse
					if err := json.Unmarshal(body, &out); err != nil {
						errc <- fmt.Errorf("reader %d infer decode: %v", r, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The service stayed consistent: status reflects every HTTP snapshot.
	code, body := do(t, http.MethodGet, ts.URL+"/v1/status", nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st serve.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if got := st.Topologies["default"].HTTPSnapshots; got != uint64(len(ys)+8) {
		t.Fatalf("http_snapshots = %d, want %d", got, len(ys)+8)
	}
}

// TestRunConsumesSourcesAndRebuilds: a server with a bounded simulator
// source must drain it in the background and keep the served state warm per
// the rebuild policy.
func TestRunConsumesSourcesAndRebuilds(t *testing.T) {
	rm, err := lia.NewTopology(treePaths(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{RebuildEvery: 10, RebuildInterval: 50 * time.Millisecond, PollInterval: 5 * time.Millisecond, Logf: t.Logf})
	if err := s.Add("default", serve.Topology{
		Engine:  eng,
		Sources: []lia.SnapshotSource{lia.NewSimSource(rm, lia.SimConfig{Probes: 200, Seed: 3, Snapshots: 50})},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = s.Run(ctx) }()
	defer func() { cancel(); <-runDone }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := do(t, http.MethodGet, ts.URL+"/v1/status", nil)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var st serve.StatusResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		d := st.Topologies["default"]
		if d.SourceSnapshots == 50 && d.EpochLag == 0 && d.Rebuilds >= 1 {
			if d.Snapshots != 50 {
				t.Fatalf("engine snapshots = %d, want 50", d.Snapshots)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("source not drained/rebuilt in time: %+v", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
