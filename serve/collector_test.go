package serve_test

// collector_test.go round-trips the live CollectorSource against in-process
// emunet agents speaking the collector report protocol over real TCP.

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"lia"
	"lia/internal/emunet"
	"lia/serve"
)

// TestCollectorSourceRoundTrip: beacon-style sent reports and sink-style
// received reports merge into ordered snapshots whose log rates match
// lia.LogRates exactly.
func TestCollectorSourceRoundTrip(t *testing.T) {
	src, err := serve.NewCollectorSource("127.0.0.1:0", serve.CollectorConfig{
		Paths:     2,
		Probes:    100,
		Settle:    -1, // reports below are synchronous; skip the merge wait
		Timeout:   10 * time.Second,
		Snapshots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	rc, err := emunet.DialCollector(src.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// Out-of-order and split reports, as real agents produce: beacons send
	// Sent immediately, sinks send Received on their own timer.
	reports := []emunet.Report{
		{PathID: 1, Snapshot: 0, Sent: 100},
		{PathID: 0, Snapshot: 0, Sent: 100},
		{PathID: 0, Snapshot: 0, Received: 90},
		{PathID: 1, Snapshot: 0, Received: 100},
		{PathID: 0, Snapshot: 1, Sent: 100, Received: 0}, // total loss
		{PathID: 1, Snapshot: 1, Sent: 100, Received: 37},
	}
	for _, rep := range reports {
		if err := rc.Send(rep); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	snap0, err := src.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want0 := lia.LogRates([]float64{0.9, 1.0}, 100)
	for i := range want0 {
		if math.Float64bits(snap0.Y[i]) != math.Float64bits(want0[i]) {
			t.Fatalf("snapshot 0 path %d: %v, want %v", i, snap0.Y[i], want0[i])
		}
	}
	snap1, err := src.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Zero delivery clamps to half a probe: log(0.5/100).
	want1 := lia.LogRates([]float64{0, 0.37}, 100)
	for i := range want1 {
		if math.Float64bits(snap1.Y[i]) != math.Float64bits(want1[i]) {
			t.Fatalf("snapshot 1 path %d: %v, want %v", i, snap1.Y[i], want1[i])
		}
	}
	// The configured cap makes the stream finite.
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("after cap: %v, want io.EOF", err)
	}
}

// TestCollectorSourceFeedsEngine closes the loop: Engine.Consume drains a
// CollectorSource while an agent goroutine reports measurements, with no
// NDJSON hop in between.
func TestCollectorSourceFeedsEngine(t *testing.T) {
	rm, err := lia.NewTopology(treePaths(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	const snapshots = 5
	src, err := serve.NewCollectorSource("127.0.0.1:0", serve.CollectorConfig{
		Paths:     rm.NumPaths(),
		Probes:    200,
		Settle:    -1,
		Timeout:   10 * time.Second,
		Snapshots: snapshots,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	go func() {
		rc, err := emunet.DialCollector(src.Addr())
		if err != nil {
			return
		}
		defer rc.Close()
		for snap := 0; snap < snapshots; snap++ {
			for p := 0; p < rm.NumPaths(); p++ {
				_ = rc.Send(emunet.Report{
					PathID: p, Snapshot: snap,
					Sent: 200, Received: 180 + (snap+p)%20,
				})
			}
			time.Sleep(5 * time.Millisecond) // agents pace their snapshots
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n, err := eng.Consume(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != snapshots || eng.Snapshots() != snapshots {
		t.Fatalf("consumed %d, engine holds %d, want %d", n, eng.Snapshots(), snapshots)
	}
	if _, err := eng.Variances(ctx); err != nil {
		t.Fatalf("variances over collector-fed moments: %v", err)
	}
}

// TestCollectorSourceValidation pins the constructor's contract.
func TestCollectorSourceValidation(t *testing.T) {
	if _, err := serve.NewCollectorSource("127.0.0.1:0", serve.CollectorConfig{}); err == nil {
		t.Fatal("zero path count must be rejected")
	}
}
