package serve

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"lia"
)

// metricDef is one exported gauge/counter family.
type metricDef struct {
	name, help, kind string
	value            func(tp *topo) float64
}

// metricDefs are the per-topology series of the /metrics exposition, in
// output order. Ingest and inference rates are derived by the scraper from
// the *_total counters; rebuild latency is exported directly.
var metricDefs = []metricDef{
	{"liaserve_snapshots_total", "Learning snapshots ingested (HTTP + background sources).", "counter",
		func(tp *topo) float64 { return float64(tp.eng.Snapshots()) }},
	{"liaserve_http_snapshots_total", "Learning snapshots ingested via POST /v1/snapshots.", "counter",
		func(tp *topo) float64 { return float64(tp.httpSnapshots.Load()) }},
	{"liaserve_source_snapshots_total", "Learning snapshots ingested from background sources.", "counter",
		func(tp *topo) float64 { return float64(tp.sourceSnapshots.Load()) }},
	{"liaserve_inferences_total", "Inference requests served.", "counter",
		func(tp *topo) float64 { return float64(tp.inferences.Load()) }},
	{"liaserve_rebuilds_total", "Phase-1 state rebuilds.", "counter",
		func(tp *topo) float64 { return float64(tp.eng.Stats().Rebuilds) }},
	{"liaserve_elim_reuses_total", "Rebuilds that reused the cached Phase-2 elimination.", "counter",
		func(tp *topo) float64 { return float64(tp.eng.Stats().ElimReuses) }},
	{"liaserve_rebuild_last_seconds", "Duration of the most recent rebuild.", "gauge",
		func(tp *topo) float64 { return tp.eng.Stats().LastRebuild.Seconds() }},
	{"liaserve_epoch_lag", "Snapshots ingested but not yet absorbed by the served state.", "gauge",
		func(tp *topo) float64 { return float64(tp.eng.Stats().EpochLag) }},
	{"liaserve_paths", "Routing-matrix path count.", "gauge",
		func(tp *topo) float64 { return float64(tp.eng.RoutingMatrix().NumPaths()) }},
	{"liaserve_links", "Routing-matrix virtual-link count.", "gauge",
		func(tp *topo) float64 { return float64(tp.eng.RoutingMatrix().NumLinks()) }},
	{"liaserve_shards", "Concurrent rebuild shards of the engine (0 = unsharded).", "gauge",
		func(tp *topo) float64 { return float64(tp.eng.Stats().Shards) }},
	{"liaserve_components", "Link-connected topology components (0 = unsharded engine).", "gauge",
		func(tp *topo) float64 { return float64(tp.eng.Stats().Components) }},
	{"liaserve_delta_rebuilds_total", "Rebuilds that ran the incremental O(delta) Phase-1 fold over dirty shards only.", "counter",
		func(tp *topo) float64 { return float64(tp.eng.Stats().DeltaRebuilds) }},
	{"liaserve_rebuild_dirty_shards", "Shard work of the most recent rebuild (pair shards refolded, or rebuild groups that rebuilt).", "gauge",
		func(tp *topo) float64 { return float64(tp.eng.Stats().DirtyShards) }},
	{"liaserve_rebuild_dirty_components", "Components that actually rebuilt in the most recent sharded rebuild wave.", "gauge",
		func(tp *topo) float64 { return float64(tp.eng.Stats().DirtyComponents) }},
	{"liaserve_rebuild_skipped_components", "Components whose Phase-1 rebuild was skipped because their moments were untouched.", "counter",
		func(tp *topo) float64 { return float64(tp.eng.Stats().SkippedComponents) }},
	{"liaserve_rebalances_total", "Dynamic LPT re-groupings of sharded components across rebuild shards.", "counter",
		func(tp *topo) float64 { return float64(tp.eng.Stats().Rebalances) }},
	{"liaserve_rebuild_failures_total", "Phase-1 rebuild attempts that failed or panicked.", "counter",
		func(tp *topo) float64 { return float64(tp.eng.Stats().RebuildFailures) }},
	{"liaserve_degraded", "1 while the engine serves its last-good state through rebuild failures.", "gauge",
		func(tp *topo) float64 {
			if tp.eng.Stats().Degraded {
				return 1
			}
			return 0
		}},
	{"liaserve_degraded_components", "Sharded components currently failing (their links read unresolved).", "gauge",
		func(tp *topo) float64 { return float64(tp.eng.Stats().DegradedComponents) }},
	{"liaserve_state_age_seconds", "Age of the served Phase-1 state.", "gauge",
		func(tp *topo) float64 { return tp.eng.Stats().StateAge.Seconds() }},
	{"liaserve_source_restarts_total", "Background source restarts by the supervisor.", "counter",
		func(tp *topo) float64 { return float64(tp.sourceRestarts()) }},
	{"liaserve_snapshots_quarantined_total", "Source snapshots quarantined by sanitization (NaN/Inf, dimension, outlier).", "counter",
		func(tp *topo) float64 { return float64(tp.quarantined()) }},
	{"liaserve_watchers", "GET /v1/watch push streams currently connected.", "gauge",
		func(tp *topo) float64 { return float64(tp.watchers.Load()) }},
	// The world-lag gauge applies only to topologies fed by a world server
	// (lia.WorldSource); other sources skip the series (NaN sentinel).
	{"liaserve_world_lag", "World-server snapshots generated but not yet ingested (largest across sources).", "gauge",
		func(tp *topo) float64 { return tp.worldLag() }},
	// The cluster gauges apply only to engines with a node fleet behind them
	// (cluster.Fleet); other engines skip the series entirely (NaN sentinel).
	{"liaserve_cluster_nodes", "Nodes registered with the clustered engine's fleet.", "gauge",
		func(tp *topo) float64 {
			if cn, ok := tp.eng.(clusterNoder); ok {
				total, _ := cn.ClusterNodes()
				return float64(total)
			}
			return math.NaN()
		}},
	{"liaserve_cluster_nodes_live", "Fleet nodes with healthy ingest and watch streams.", "gauge",
		func(tp *topo) float64 {
			if cn, ok := tp.eng.(clusterNoder); ok {
				_, live := cn.ClusterNodes()
				return float64(live)
			}
			return math.NaN()
		}},
	{"liaserve_cluster_snapshots_missed_total", "Snapshot deliveries dropped on the way to down or backlogged fleet nodes.", "counter",
		func(tp *topo) float64 {
			if cm, ok := tp.eng.(clusterMisser); ok {
				return float64(cm.Missed())
			}
			return math.NaN()
		}},
	// The durability series apply only to engines persisting state
	// (lia.WithDurability); other engines skip them (NaN sentinel).
	{"liaserve_checkpoints_total", "State checkpoints written this process lifetime.", "counter",
		func(tp *topo) float64 {
			if ds, ok := tp.eng.(durabilityStatser); ok {
				return float64(ds.DurabilityStats().Checkpoints)
			}
			return math.NaN()
		}},
	{"liaserve_wal_bytes", "Total size of the write-ahead-log segment files.", "gauge",
		func(tp *topo) float64 {
			if ds, ok := tp.eng.(durabilityStatser); ok {
				return float64(ds.DurabilityStats().WALBytes)
			}
			return math.NaN()
		}},
	{"liaserve_recovery_replayed_snapshots", "Snapshots replayed from the WAL tail by boot recovery.", "gauge",
		func(tp *topo) float64 {
			if ds, ok := tp.eng.(durabilityStatser); ok {
				return float64(ds.DurabilityStats().ReplayedSnapshots)
			}
			return math.NaN()
		}},
}

// worldLagger is the optional lag interface a world-server consumer
// (lia.WorldSource) implements; other sources do not.
type worldLagger interface {
	WorldLag() int
}

// clusterNoder is the optional fleet-size interface a clustered engine
// (cluster.Fleet) implements; plain and sharded engines do not.
type clusterNoder interface {
	ClusterNodes() (total, live int)
}

// clusterMisser exposes the fleet's dropped-delivery counter.
type clusterMisser interface {
	Missed() int64
}

// durabilityStatser is the optional interface a durable engine
// (lia.DurableEngine) implements; plain engines do not, so the status block
// and metric families are emitted only where they apply.
type durabilityStatser interface {
	DurabilityStats() lia.DurabilityStats
}

// handleMetrics writes the Prometheus text exposition (version 0.0.4): one
// series per metric family per topology, labelled {topology="name"}, in
// registration order so the output is deterministic for a fixed state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP liaserve_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(&b, "# TYPE liaserve_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "liaserve_uptime_seconds %g\n", time.Since(s.start).Seconds())
	names := s.names()
	for _, def := range metricDefs {
		// A NaN value means the metric does not apply to the topology's
		// engine (e.g. cluster gauges on a single-process engine); emit the
		// family only for topologies it applies to.
		var lines []string
		for _, name := range names {
			tp, err := s.lookup(name)
			if err != nil {
				continue
			}
			v := def.value(tp)
			if math.IsNaN(v) {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s{topology=%q} %g\n", def.name, tp.name, v))
		}
		if len(lines) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", def.name, def.help, def.name, def.kind)
		b.WriteString(strings.Join(lines, ""))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
