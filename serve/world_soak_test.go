package serve_test

// world_soak_test.go is the regime-shift soak: liaserve's ingestion path
// (supervised, sanitized background sources) fed by an in-process world
// server through a scheduled congestion regime change. Windowed and decayed
// engines must re-converge to the post-shift ground truth; a Watcher
// snapped before the shift must flip Stale, provably miss the new regime
// until RefreshIfStale, and match the engine after. Runs under -race in CI.

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lia"
	"lia/serve"
	"lia/world"
)

// recordingWorldSource remembers every observation it delivers, so the test
// can replay the engine's exact input through a reference engine.
type recordingWorldSource struct {
	src lia.SnapshotSource
	mu  sync.Mutex
	ys  [][]float64
}

func (r *recordingWorldSource) Next(ctx context.Context) (lia.Snapshot, error) {
	snap, err := r.src.Next(ctx)
	if err == nil {
		r.mu.Lock()
		r.ys = append(r.ys, append([]float64(nil), snap.Y...))
		r.mu.Unlock()
	}
	return snap, err
}

func (r *recordingWorldSource) Close() error { return lia.CloseSource(r.src) }

// recorded returns a copy of the first n delivered observations.
func (r *recordingWorldSource) recorded(n int) [][]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.ys) {
		n = len(r.ys)
	}
	return append([][]float64(nil), r.ys[:n]...)
}

func TestWorldRegimeShiftSoak(t *testing.T) {
	rm, err := lia.NewTopology(treePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	// The congestion victim: the first-level link shared by paths 0..2.
	shared := rm.Path(0).Links[0]
	vShared, ok := rm.VirtualOf(shared)
	if !ok {
		t.Fatalf("physical link %d has no virtual link", shared)
	}

	ws := world.NewServer(world.ServerConfig{World: world.Config{Seed: 1909}})
	if err := ws.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	const window = 64
	const probes = 400
	retry := lia.RetryPolicy{MaxAttempts: 5, InitialBackoff: time.Millisecond, Seed: 2}
	// Exact fractions (no binomial sampling): per-probe noise on the log
	// scale is ~(1−p)/(S·p) per path and would land on the leaf links,
	// blurring the congested link's dominance this test asserts.
	newSource := func(scenario string) *recordingWorldSource {
		return &recordingWorldSource{src: lia.RetrySource(
			lia.NewWorldSource(ws.Addr(), rm, lia.WorldConfig{
				Scenario: scenario, Batch: 8,
			}), retry)}
	}
	recWin := newSource("win")
	recDec := newSource("dec")

	engWin, err := lia.NewEngine(rm, lia.WithWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	engDec, err := lia.NewEngine(rm, lia.WithDecay(0.9))
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{RebuildEvery: 16, RebuildInterval: 25 * time.Millisecond})
	if err := s.Add("win", serve.Topology{Engine: engWin, Probes: probes,
		Sources: []lia.SnapshotSource{recWin}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("dec", serve.Topology{Engine: engDec, Probes: probes,
		Sources: []lia.SnapshotSource{recDec}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = s.Run(ctx) }()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", desc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Phase 1 — pre-shift regime: the default world is uncongested, so
	// every path delivers all probes and every link variance is exactly 0.
	waitFor("pre-shift ingestion", func() bool {
		return engWin.Snapshots() >= 80 && engDec.Snapshots() >= 80
	})
	waitFor("/readyz", func() bool {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	preVars, err := engWin.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if preVars[vShared] > 1e-9 {
		t.Fatalf("pre-shift variance of shared link = %g, want ~0 (uncongested world)", preVars[vShared])
	}
	watcher, err := engWin.Watch()
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2 — schedule a permanent 6x congest on the shared link in both
	// scenarios. The world advances between Stats and Shift (the consumers
	// keep pulling), so aim a few ticks ahead and retry on a lost race.
	ctl, err := world.Dial(ws.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	shift := func(scenario string) int {
		t.Helper()
		for attempt := 0; attempt < 10; attempt++ {
			st, err := ctl.Stats(scenario)
			if err != nil {
				t.Fatal(err)
			}
			tick := st.Tick + 16
			err = ctl.Shift(scenario, world.Event{
				Kind: world.KindCongest, Tick: tick, Links: []int{shared}, Factor: 6,
			})
			if err == nil {
				return tick
			}
		}
		t.Fatalf("could not schedule the %s shift in 10 attempts", scenario)
		return 0
	}
	shiftWin := shift("win")
	shiftDec := shift("dec")

	// Phase 3 — run deep into the new regime: enough that the window holds
	// only post-shift snapshots (ticks equal ingestion indices, since these
	// scenarios have exactly one consumer each).
	waitFor("post-shift ingestion", func() bool {
		return engWin.Snapshots() >= shiftWin+window+32 && engDec.Snapshots() >= shiftDec+window+32
	})
	// The served state must have stayed ready straight through the shift.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d after the regime shift, want 200", resp.StatusCode)
	}
	cancel()
	<-runDone
	ctx = context.Background()

	// Ground truth moved: the world's regime for the shared link is the 6x
	// overload loss now.
	truth, err := ctl.Truth("win")
	if err != nil {
		t.Fatal(err)
	}
	sharedRegime := math.NaN()
	for i, id := range truth.LinkIDs {
		if id == shared {
			sharedRegime = truth.Regime[i]
		}
	}
	if !(sharedRegime > 0.4) {
		t.Fatalf("post-shift ground-truth regime for link %d = %g, want > 0.4 under 6x congest", shared, sharedRegime)
	}

	// The watcher snapped before the shift is stale, and its estimate
	// provably does not track the new regime.
	if !watcher.Stale() {
		t.Fatal("watcher is not stale after 100+ post-shift snapshots")
	}
	staleVars, err := watcher.Variances()
	if err != nil {
		t.Fatal(err)
	}
	if staleVars[vShared] > 1e-9 {
		t.Fatalf("stale watcher variance for the congested link = %g, want pre-shift ~0", staleVars[vShared])
	}

	// Post-shift, the windowed engine's moments cover only the new regime:
	// the congested link's variance is positive, the largest in the
	// topology, and equal to replaying the window's exact input through a
	// fresh engine.
	postVars, err := engWin.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if postVars[vShared] < 1e-4 {
		t.Fatalf("windowed post-shift variance for the congested link = %g, want clearly positive", postVars[vShared])
	}
	for k, v := range postVars {
		if k != vShared && v >= postVars[vShared] {
			t.Fatalf("link %d variance %g >= congested link's %g — the shift signature is not dominant",
				k, v, postVars[vShared])
		}
	}
	n := engWin.Snapshots()
	ys := recWin.recorded(n)
	if len(ys) < n {
		t.Fatalf("recorded %d observations, engine ingested %d", len(ys), n)
	}
	fresh, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.IngestBatch(ys[n-window:]); err != nil {
		t.Fatal(err)
	}
	refVars, err := fresh.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range refVars {
		if d := math.Abs(postVars[k] - refVars[k]); d > 1e-12+1e-8*math.Abs(refVars[k]) {
			t.Fatalf("link %d: windowed %g vs fresh-last-%d replay %g (Δ=%g)",
				k, postVars[k], window, refVars[k], d)
		}
	}

	// RefreshIfStale recovers: the watcher re-snaps the windowed moments
	// and now agrees with the engine.
	refreshed, err := watcher.RefreshIfStale()
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("RefreshIfStale did not refresh a stale watcher")
	}
	wVars, err := watcher.Variances()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(wVars[vShared] - postVars[vShared]); d > 1e-12+1e-8*postVars[vShared] {
		t.Fatalf("refreshed watcher variance %g != engine %g", wVars[vShared], postVars[vShared])
	}

	// A cumulative engine over the full mixed stream does NOT converge to
	// the within-regime variance: the regime shift moves the mean, so the
	// mixture variance overshoots by the between-regime term. That gap is
	// what windowing buys.
	cum, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := cum.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	cumVars, err := cum.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cumVars[vShared] < 2*postVars[vShared] {
		t.Fatalf("cumulative variance %g vs windowed %g — expected the mixed-regime estimate to overshoot the within-regime one by ≥ 2x",
			cumVars[vShared], postVars[vShared])
	}

	// The decayed engine forgets the old regime geometrically and lands in
	// the same within-regime ballpark as the windowed engine.
	decVars, err := engDec.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if decVars[vShared] < 1e-4 {
		t.Fatalf("decayed post-shift variance for the congested link = %g, want clearly positive", decVars[vShared])
	}
	if r := decVars[vShared] / postVars[vShared]; r < 0.1 || r > 10 {
		t.Fatalf("decayed %g vs windowed %g (ratio %g) — both should estimate the new regime",
			decVars[vShared], postVars[vShared], r)
	}
}
