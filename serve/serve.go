// Package serve turns lia inference engines into a long-running monitoring
// service: an HTTP JSON API over one or more lia.Engine instances, with
// live measurement ingestion from background SnapshotSources and a periodic
// rebuild policy that keeps the served Phase-1 state warm.
//
// The API (see Handler) exposes, per named topology:
//
//	POST /v1/snapshots   ingest one snapshot or a batch (learning data)
//	POST /v1/infer       Phase-2 inference on one observation vector
//	GET  /v1/links       latest steady-state per-link estimates (epoch cache)
//	GET  /v1/status      epochs, rebuild latency, degradation, source health
//	GET  /healthz        liveness (the process is up)
//	GET  /readyz         readiness (state built, engines healthy, sources live)
//	GET  /metrics        Prometheus text exposition
//
// The server is built to degrade rather than fail: background sources are
// supervised (a dead source restarts with exponential backoff and its last
// error shows in /v1/status), every source is sanitized (poisoned
// snapshots are quarantined behind counters instead of reaching the moment
// accumulators), and the engines serve their last-good state through
// rebuild failures — so /v1/links answers 200 from the freshest healthy
// epoch while /readyz reports the degradation.
//
// The unprefixed routes address the default topology (the first one added);
// /v1/topologies/{topo}/... addresses any registered topology by name, so
// one server can monitor several overlay scenarios at once.
//
// Measurement collection plugs in through lia.SnapshotSource: attach the
// packet-level simulator, an NDJSON trace, or — closing the loop with the
// emulated overlay plane — a CollectorSource that accepts beacon/sink
// reports over TCP (the internal/emunet collector protocol) and assembles
// them into snapshots in-process, with no NDJSON pipe hop between the
// collector and the inference engine.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"lia"
)

// DefaultRebuildEvery is the snapshot-count rebuild trigger when
// Config.RebuildEvery is 0: rebuild the served state once 64 new snapshots
// have accumulated (matching the engine's Consume batch size).
const DefaultRebuildEvery = 64

// Config tunes the server-wide policies.
type Config struct {
	// RebuildEvery rebuilds a topology's Phase-1 state in the background
	// once this many snapshots have arrived since the state's epoch.
	// 0 selects DefaultRebuildEvery; negative disables count-triggered
	// rebuilds (the state still rebuilds lazily on queries).
	RebuildEvery int

	// RebuildInterval, when positive, additionally rebuilds a stale
	// topology at least this often regardless of how few snapshots
	// arrived — bounding the staleness of GET /v1/links in time.
	RebuildInterval time.Duration

	// PollInterval is the cadence of the background rebuild check.
	// 0 selects 250ms.
	PollInterval time.Duration

	// Shards records the shard policy the operator configured for this
	// server's engines (the value handed to lia.WithShards when they were
	// built: 0 = auto, 1 = unsharded, k = up to k shards). It is
	// observability metadata — /v1/status reports it as the server-wide
	// default next to each engine's actual shard and component counts,
	// which come from Engine.Stats.
	Shards int

	// RestartBackoff is the delay before a failed background source is
	// restarted; it doubles per consecutive no-progress failure up to
	// RestartMaxBackoff and resets once a restart ingests snapshots.
	// 0 selects 500ms.
	RestartBackoff time.Duration

	// RestartMaxBackoff caps the restart backoff growth. 0 selects 30s.
	RestartMaxBackoff time.Duration

	// WatchPoll is how often GET /v1/watch streams poll their engine for a
	// state change worth pushing. 0 selects 100ms.
	WatchPoll time.Duration

	// WatchHeartbeat is the idle interval after which a /v1/watch stream
	// emits a heartbeat event so readers can tell a quiet topology from a
	// dead connection. 0 selects 15s.
	WatchHeartbeat time.Duration

	// Logf receives operational log lines (source errors, rebuild
	// failures). nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Topology is one named inference domain served by the Server.
type Topology struct {
	// Engine is the inference session (required): a *lia.Engine, or a
	// *lia.ShardedEngine for partitioned topologies whose components
	// rebuild concurrently.
	Engine lia.Inferencer

	// Probes is the probe count behind "frac" snapshot payloads, used to
	// clamp zero-delivery paths in the log conversion (0 selects 1000).
	Probes int

	// Sources are consumed concurrently in the background while the server
	// runs; each snapshot they yield is ingested as learning data. Every
	// source is supervised (restarted with backoff when it fails) and
	// sanitized (snapshots with NaN/Inf entries or wrong dimensions are
	// quarantined, never ingested — see lia.SanitizeSource).
	Sources []lia.SnapshotSource

	// SanitizeMaxAbs, when positive, additionally quarantines source
	// snapshots containing an entry with |v| > SanitizeMaxAbs — the spike
	// filter for corrupted magnitudes. 0 disables the bound.
	SanitizeMaxAbs float64
}

// supervisedSource is the server-side state of one background source: the
// sanitized consumption chain plus the restart/health record the
// supervisor maintains and /v1/status reports.
type supervisedSource struct {
	src       lia.SnapshotSource // counting(sanitize(raw)): what Consume reads
	raw       lia.SnapshotSource // the unwrapped source, for optional interfaces
	sanitizer *lia.Sanitizer
	restarts  atomic.Uint64

	mu        sync.Mutex
	state     string // pending → running / backoff / exhausted / stopped
	lastErr   string
	lastErrAt time.Time
}

func (ss *supervisedSource) setState(state string) {
	ss.mu.Lock()
	ss.state = state
	ss.mu.Unlock()
}

func (ss *supervisedSource) recordError(err error) {
	ss.mu.Lock()
	ss.lastErr = err.Error()
	ss.lastErrAt = time.Now()
	ss.mu.Unlock()
}

// health returns one consistent view of the source's supervision record.
func (ss *supervisedSource) health() (state, lastErr string, lastErrAt time.Time) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.state, ss.lastErr, ss.lastErrAt
}

// topo is the server-side state of one registered topology.
type topo struct {
	name    string
	eng     lia.Inferencer
	probes  int
	sources []*supervisedSource

	httpSnapshots   atomic.Uint64 // ingested via POST /v1/snapshots[/stream]
	sourceSnapshots atomic.Uint64 // ingested from background sources
	inferences      atomic.Uint64 // POST /v1/infer calls served
	watchers        atomic.Int64  // GET /v1/watch streams currently connected
}

// sourceRestarts sums the supervisor restarts across the topology's
// sources.
func (tp *topo) sourceRestarts() uint64 {
	var n uint64
	for _, ss := range tp.sources {
		n += ss.restarts.Load()
	}
	return n
}

// worldLag returns the largest world-server snapshot lag across the
// topology's sources, or NaN when none of them is a world consumer (the
// metric-skip sentinel).
func (tp *topo) worldLag() float64 {
	lag, found := 0, false
	for _, ss := range tp.sources {
		if wl, ok := ss.raw.(worldLagger); ok {
			found = true
			if l := wl.WorldLag(); l > lag {
				lag = l
			}
		}
	}
	if !found {
		return math.NaN()
	}
	return float64(lag)
}

// quarantined sums the sanitizer quarantine counters across the
// topology's sources.
func (tp *topo) quarantined() uint64 {
	var n uint64
	for _, ss := range tp.sources {
		n += ss.sanitizer.Stats().Quarantined
	}
	return n
}

// Server wires named topologies behind the HTTP API. Register topologies
// with Add (the first becomes the default), then mount Handler and start
// Run for background ingestion and rebuilds.
type Server struct {
	cfg   Config
	start time.Time

	mu    sync.RWMutex
	topos map[string]*topo
	order []string // registration order; order[0] is the default
}

// New creates an empty server with the given policies.
func New(cfg Config) *Server {
	if cfg.RebuildEvery == 0 {
		cfg.RebuildEvery = DefaultRebuildEvery
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = 500 * time.Millisecond
	}
	if cfg.RestartMaxBackoff <= 0 {
		cfg.RestartMaxBackoff = 30 * time.Second
	}
	if cfg.WatchPoll <= 0 {
		cfg.WatchPoll = 100 * time.Millisecond
	}
	if cfg.WatchHeartbeat <= 0 {
		cfg.WatchHeartbeat = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Server{
		cfg:   cfg,
		start: time.Now(),
		topos: make(map[string]*topo),
	}
}

// topoName constrains names to URL-path-safe tokens.
var topoName = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Add registers a named topology. The first topology added is the default
// one addressed by the unprefixed /v1 routes. Names must match
// [A-Za-z0-9._-]+ and be unique.
func (s *Server) Add(name string, t Topology) error {
	if !topoName.MatchString(name) {
		return fmt.Errorf("serve: topology name %q must match %s", name, topoName)
	}
	if t.Engine == nil {
		return fmt.Errorf("serve: topology %q has a nil engine", name)
	}
	probes := t.Probes
	if probes <= 0 {
		probes = 1000
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.topos[name]; dup {
		return fmt.Errorf("serve: topology %q already registered", name)
	}
	tp := &topo{
		name:   name,
		eng:    t.Engine,
		probes: probes,
	}
	// Each source is consumed through counting(sanitize(raw)): the
	// sanitizer quarantines poisoned snapshots before they can reach the
	// moment accumulators, and the counter then sees only what is actually
	// ingested.
	np := t.Engine.RoutingMatrix().NumPaths()
	for _, src := range t.Sources {
		san := lia.SanitizeSource(src, lia.SanitizeConfig{Dim: np, MaxAbs: t.SanitizeMaxAbs})
		tp.sources = append(tp.sources, &supervisedSource{
			src:       &countingSource{src: san, n: &tp.sourceSnapshots},
			raw:       src,
			sanitizer: san,
			state:     "pending",
		})
	}
	s.topos[name] = tp
	s.order = append(s.order, name)
	return nil
}

// lookup resolves a topology by name; the empty name selects the default.
func (s *Server) lookup(name string) (*topo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.order) == 0 {
			return nil, errors.New("serve: no topologies registered")
		}
		name = s.order[0]
	}
	tp, ok := s.topos[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown topology %q", name)
	}
	return tp, nil
}

// names returns the registered topology names in registration order.
func (s *Server) names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// Run consumes every topology's sources and enforces the rebuild policy
// until ctx is cancelled, then waits for its workers and returns nil.
// Sources are supervised: a source that fails is restarted with
// exponential backoff (see Config.RestartBackoff) until it exhausts or the
// server stops, with its last error and restart count surfaced through
// /v1/status and /metrics. Failures never stop the server.
func (s *Server) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, name := range s.names() {
		tp, err := s.lookup(name)
		if err != nil {
			continue
		}
		for i, ss := range tp.sources {
			wg.Add(1)
			go func(i int, ss *supervisedSource) {
				defer wg.Done()
				s.superviseSource(ctx, tp, i, ss)
			}(i, ss)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.rebuildLoop(ctx, tp)
		}()
	}
	<-ctx.Done()
	wg.Wait()
	s.closeSources()
	return nil
}

// closeSources releases every configured source's underlying resources
// (files, listeners) on the server's own exit path, honoring the package lia
// io.Closer convention: each supervised chain forwards Close inward to the
// raw source. Run calls it after its workers drain, so no source is closed
// while a consume loop still reads it.
func (s *Server) closeSources() {
	for _, name := range s.names() {
		tp, err := s.lookup(name)
		if err != nil {
			continue
		}
		for i, ss := range tp.sources {
			if err := lia.CloseSource(ss.src); err != nil {
				s.cfg.Logf("serve: topology %s source %d close: %v", name, i, err)
			}
		}
	}
}

// superviseSource consumes one background source until it exhausts or the
// context cancels, restarting it with exponential backoff after failures.
// A restart that makes progress (ingests at least one snapshot) resets the
// backoff curve, so a source that limps is retried briskly while one that
// is down backs off toward RestartMaxBackoff.
func (s *Server) superviseSource(ctx context.Context, tp *topo, i int, ss *supervisedSource) {
	backoff := s.cfg.RestartBackoff
	for {
		ss.setState("running")
		n, err := consumeLive(ctx, tp.eng, ss.src)
		switch {
		case err == nil:
			ss.setState("exhausted")
			s.cfg.Logf("serve: topology %s source %d exhausted after %d snapshots", tp.name, i, n)
			return
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
			ss.setState("stopped")
			return
		default:
			ss.recordError(err)
			restarts := ss.restarts.Add(1)
			if n > 0 {
				backoff = s.cfg.RestartBackoff
			}
			ss.setState("backoff")
			s.cfg.Logf("serve: topology %s source %d failed after %d snapshots (restart %d in %v): %v",
				tp.name, i, n, restarts, backoff, err)
			select {
			case <-ctx.Done():
				ss.setState("stopped")
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > s.cfg.RestartMaxBackoff {
				backoff = s.cfg.RestartMaxBackoff
			}
		}
	}
}

// consumeLive drains src one snapshot at a time, folding each into the
// engine as it arrives. Engine.Consume's 64-snapshot batching amortizes
// the ingest lock for high-rate offline sources, but a live measurement
// plane yields one snapshot per probe round — buffered, those would stay
// invisible to the served state (and to /readyz) until a batch fills,
// minutes later. io.EOF is clean exhaustion, like Consume.
func consumeLive(ctx context.Context, eng lia.Inferencer, src lia.SnapshotSource) (int, error) {
	n := 0
	for {
		snap, err := src.Next(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		if err := eng.Ingest(snap.Y); err != nil {
			return n, err
		}
		n++
	}
}

// readiness evaluates GET /readyz: the server is ready when every topology
// has a built inference state, no engine is degraded, and no source is in
// failure backoff. The reasons list names each violation.
func (s *Server) readiness() (bool, []string) {
	var reasons []string
	for _, name := range s.names() {
		tp, err := s.lookup(name)
		if err != nil {
			continue
		}
		st := tp.eng.Stats()
		switch {
		case st.Degraded:
			reasons = append(reasons, fmt.Sprintf("topology %s: degraded (%s)", name, st.LastError))
		case st.StateEpoch < 0 && st.RebuildFailures > 0:
			reasons = append(reasons, fmt.Sprintf("topology %s: no state built, rebuilds failing (%s)", name, st.LastError))
		case st.StateEpoch < 0:
			reasons = append(reasons, fmt.Sprintf("topology %s: no inference state built yet", name))
		}
		for i, ss := range tp.sources {
			if state, lastErr, _ := ss.health(); state == "backoff" {
				reasons = append(reasons, fmt.Sprintf("topology %s: source %d restarting (%s)", name, i, lastErr))
			}
		}
	}
	return len(reasons) == 0, reasons
}

// rebuildLoop keeps tp's served Phase-1 state warm: it polls the engine's
// epoch lag and rebuilds when RebuildEvery snapshots accumulated, or when
// the state is stale and RebuildInterval elapsed since the last rebuild.
func (s *Server) rebuildLoop(ctx context.Context, tp *topo) {
	ticker := time.NewTicker(s.cfg.PollInterval)
	defer ticker.Stop()
	lastForced := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		st := tp.eng.Stats()
		if st.EpochLag == 0 || st.Snapshots < 2 {
			continue
		}
		due := s.cfg.RebuildEvery > 0 && st.EpochLag >= s.cfg.RebuildEvery
		if s.cfg.RebuildInterval > 0 && time.Since(lastForced) >= s.cfg.RebuildInterval {
			due = true
		}
		if !due {
			continue
		}
		lastForced = time.Now()
		// Variances faults in the current epoch's state; results are
		// discarded, the point is warming the cache queries read.
		if _, err := tp.eng.Variances(ctx); err != nil && ctx.Err() == nil {
			s.cfg.Logf("serve: topology %s rebuild: %v", tp.name, err)
		}
	}
}

// countingSource counts delivered snapshots so /metrics can report live
// per-source ingest progress (Engine.Consume reports totals only when it
// returns).
type countingSource struct {
	src lia.SnapshotSource
	n   *atomic.Uint64
}

func (c *countingSource) Next(ctx context.Context) (lia.Snapshot, error) {
	snap, err := c.src.Next(ctx)
	if err == nil {
		c.n.Add(1)
	}
	return snap, err
}

// Close propagates to the wrapped source when it is closeable, honoring
// the package lia wrapping convention.
func (c *countingSource) Close() error { return lia.CloseSource(c.src) }
