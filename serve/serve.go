// Package serve turns lia inference engines into a long-running monitoring
// service: an HTTP JSON API over one or more lia.Engine instances, with
// live measurement ingestion from background SnapshotSources and a periodic
// rebuild policy that keeps the served Phase-1 state warm.
//
// The API (see Handler) exposes, per named topology:
//
//	POST /v1/snapshots   ingest one snapshot or a batch (learning data)
//	POST /v1/infer       Phase-2 inference on one observation vector
//	GET  /v1/links       latest steady-state per-link estimates (epoch cache)
//	GET  /v1/status      epochs, rebuild latency, moment configuration
//	GET  /healthz        liveness
//	GET  /metrics        Prometheus text exposition
//
// The unprefixed routes address the default topology (the first one added);
// /v1/topologies/{topo}/... addresses any registered topology by name, so
// one server can monitor several overlay scenarios at once.
//
// Measurement collection plugs in through lia.SnapshotSource: attach the
// packet-level simulator, an NDJSON trace, or — closing the loop with the
// emulated overlay plane — a CollectorSource that accepts beacon/sink
// reports over TCP (the internal/emunet collector protocol) and assembles
// them into snapshots in-process, with no NDJSON pipe hop between the
// collector and the inference engine.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"lia"
)

// DefaultRebuildEvery is the snapshot-count rebuild trigger when
// Config.RebuildEvery is 0: rebuild the served state once 64 new snapshots
// have accumulated (matching the engine's Consume batch size).
const DefaultRebuildEvery = 64

// Config tunes the server-wide policies.
type Config struct {
	// RebuildEvery rebuilds a topology's Phase-1 state in the background
	// once this many snapshots have arrived since the state's epoch.
	// 0 selects DefaultRebuildEvery; negative disables count-triggered
	// rebuilds (the state still rebuilds lazily on queries).
	RebuildEvery int

	// RebuildInterval, when positive, additionally rebuilds a stale
	// topology at least this often regardless of how few snapshots
	// arrived — bounding the staleness of GET /v1/links in time.
	RebuildInterval time.Duration

	// PollInterval is the cadence of the background rebuild check.
	// 0 selects 250ms.
	PollInterval time.Duration

	// Shards records the shard policy the operator configured for this
	// server's engines (the value handed to lia.WithShards when they were
	// built: 0 = auto, 1 = unsharded, k = up to k shards). It is
	// observability metadata — /v1/status reports it as the server-wide
	// default next to each engine's actual shard and component counts,
	// which come from Engine.Stats.
	Shards int

	// Logf receives operational log lines (source errors, rebuild
	// failures). nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Topology is one named inference domain served by the Server.
type Topology struct {
	// Engine is the inference session (required): a *lia.Engine, or a
	// *lia.ShardedEngine for partitioned topologies whose components
	// rebuild concurrently.
	Engine lia.Inferencer

	// Probes is the probe count behind "frac" snapshot payloads, used to
	// clamp zero-delivery paths in the log conversion (0 selects 1000).
	Probes int

	// Sources are consumed concurrently in the background while the server
	// runs; each snapshot they yield is ingested as learning data.
	Sources []lia.SnapshotSource
}

// topo is the server-side state of one registered topology.
type topo struct {
	name    string
	eng     lia.Inferencer
	probes  int
	sources []lia.SnapshotSource

	httpSnapshots   atomic.Uint64 // ingested via POST /v1/snapshots
	sourceSnapshots atomic.Uint64 // ingested from background sources
	inferences      atomic.Uint64 // POST /v1/infer calls served
}

// Server wires named topologies behind the HTTP API. Register topologies
// with Add (the first becomes the default), then mount Handler and start
// Run for background ingestion and rebuilds.
type Server struct {
	cfg   Config
	start time.Time

	mu    sync.RWMutex
	topos map[string]*topo
	order []string // registration order; order[0] is the default
}

// New creates an empty server with the given policies.
func New(cfg Config) *Server {
	if cfg.RebuildEvery == 0 {
		cfg.RebuildEvery = DefaultRebuildEvery
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Server{
		cfg:   cfg,
		start: time.Now(),
		topos: make(map[string]*topo),
	}
}

// topoName constrains names to URL-path-safe tokens.
var topoName = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Add registers a named topology. The first topology added is the default
// one addressed by the unprefixed /v1 routes. Names must match
// [A-Za-z0-9._-]+ and be unique.
func (s *Server) Add(name string, t Topology) error {
	if !topoName.MatchString(name) {
		return fmt.Errorf("serve: topology name %q must match %s", name, topoName)
	}
	if t.Engine == nil {
		return fmt.Errorf("serve: topology %q has a nil engine", name)
	}
	probes := t.Probes
	if probes <= 0 {
		probes = 1000
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.topos[name]; dup {
		return fmt.Errorf("serve: topology %q already registered", name)
	}
	s.topos[name] = &topo{
		name:    name,
		eng:     t.Engine,
		probes:  probes,
		sources: t.Sources,
	}
	s.order = append(s.order, name)
	return nil
}

// lookup resolves a topology by name; the empty name selects the default.
func (s *Server) lookup(name string) (*topo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.order) == 0 {
			return nil, errors.New("serve: no topologies registered")
		}
		name = s.order[0]
	}
	tp, ok := s.topos[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown topology %q", name)
	}
	return tp, nil
}

// names returns the registered topology names in registration order.
func (s *Server) names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// Run consumes every topology's sources and enforces the rebuild policy
// until ctx is cancelled, then waits for its workers and returns nil.
// Source errors other than stream exhaustion and cancellation are logged
// through Config.Logf; they never stop the server.
func (s *Server) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, name := range s.names() {
		tp, err := s.lookup(name)
		if err != nil {
			continue
		}
		for i, src := range tp.sources {
			wg.Add(1)
			go func(i int, src lia.SnapshotSource) {
				defer wg.Done()
				n, err := tp.eng.Consume(ctx, &countingSource{src: src, n: &tp.sourceSnapshots})
				switch {
				case err == nil:
					s.cfg.Logf("serve: topology %s source %d exhausted after %d snapshots", tp.name, i, n)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					// Shutdown.
				default:
					s.cfg.Logf("serve: topology %s source %d failed after %d snapshots: %v", tp.name, i, n, err)
				}
			}(i, src)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.rebuildLoop(ctx, tp)
		}()
	}
	<-ctx.Done()
	wg.Wait()
	return nil
}

// rebuildLoop keeps tp's served Phase-1 state warm: it polls the engine's
// epoch lag and rebuilds when RebuildEvery snapshots accumulated, or when
// the state is stale and RebuildInterval elapsed since the last rebuild.
func (s *Server) rebuildLoop(ctx context.Context, tp *topo) {
	ticker := time.NewTicker(s.cfg.PollInterval)
	defer ticker.Stop()
	lastForced := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		st := tp.eng.Stats()
		if st.EpochLag == 0 || st.Snapshots < 2 {
			continue
		}
		due := s.cfg.RebuildEvery > 0 && st.EpochLag >= s.cfg.RebuildEvery
		if s.cfg.RebuildInterval > 0 && time.Since(lastForced) >= s.cfg.RebuildInterval {
			due = true
		}
		if !due {
			continue
		}
		lastForced = time.Now()
		// Variances faults in the current epoch's state; results are
		// discarded, the point is warming the cache queries read.
		if _, err := tp.eng.Variances(ctx); err != nil && ctx.Err() == nil {
			s.cfg.Logf("serve: topology %s rebuild: %v", tp.name, err)
		}
	}
}

// countingSource counts delivered snapshots so /metrics can report live
// per-source ingest progress (Engine.Consume reports totals only when it
// returns).
type countingSource struct {
	src lia.SnapshotSource
	n   *atomic.Uint64
}

func (c *countingSource) Next(ctx context.Context) (lia.Snapshot, error) {
	snap, err := c.src.Next(ctx)
	if err == nil {
		c.n.Add(1)
	}
	return snap, err
}
