package serve_test

// bench_test.go measures the serving hot paths over real HTTP: snapshot
// ingest throughput, inference latency, and the steady-state /v1/links
// read. CI archives these through cmd/benchjson into BENCH_pr4.json; the
// latency-distribution test below feeds PERFORMANCE.md's p50/p99 numbers.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"lia"
	"lia/serve"
)

// benchServer builds a warmed single-topology server over a 9-path tree.
func benchServer(b *testing.B, learn int) (*httptest.Server, [][]float64) {
	b.Helper()
	rm, err := lia.NewTopology(treePaths(2, 3))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		b.Fatal(err)
	}
	s := serve.New(serve.Config{RebuildEvery: -1, Logf: b.Logf})
	if err := s.Add("default", serve.Topology{Engine: eng}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	ys := testVectors(b, rm, 17, learn+64)
	ingestAll(b, ts.URL, "/v1", ys[:learn])
	// Warm the epoch cache so steady-state reads dominate the measurement.
	if code, body := do(b, http.MethodGet, ts.URL+"/v1/links", nil); code != http.StatusOK {
		b.Fatalf("warmup: %d %s", code, body)
	}
	return ts, ys[learn:]
}

// BenchmarkServerIngest measures single-snapshot POST /v1/snapshots
// round-trips (snapshots/s = 1e9 / ns/op).
func BenchmarkServerIngest(b *testing.B) {
	ts, extra := benchServer(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := serve.IngestRequest{SnapshotPayload: serve.SnapshotPayload{Y: extra[i%len(extra)]}}
		if code, body := do(b, http.MethodPost, ts.URL+"/v1/snapshots", req); code != http.StatusOK {
			b.Fatalf("%d %s", code, body)
		}
	}
}

// BenchmarkServerIngestBatch64 measures 64-snapshot batches per POST.
func BenchmarkServerIngestBatch64(b *testing.B) {
	ts, extra := benchServer(b, 40)
	var req serve.IngestRequest
	for _, y := range extra[:64] {
		req.Snapshots = append(req.Snapshots, serve.SnapshotPayload{Y: y})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code, body := do(b, http.MethodPost, ts.URL+"/v1/snapshots", req); code != http.StatusOK {
			b.Fatalf("%d %s", code, body)
		}
	}
	b.StopTimer()
	snapsPerOp := float64(64)
	b.ReportMetric(snapsPerOp*float64(b.N)/b.Elapsed().Seconds(), "snaps/s")
}

// BenchmarkServerInfer measures POST /v1/infer against a warm epoch cache —
// the steady-state query path (one reduced least-squares solve per call).
func BenchmarkServerInfer(b *testing.B) {
	ts, extra := benchServer(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := serve.SnapshotPayload{Y: extra[i%len(extra)]}
		if code, body := do(b, http.MethodPost, ts.URL+"/v1/infer", req); code != http.StatusOK {
			b.Fatalf("%d %s", code, body)
		}
	}
}

// BenchmarkServerLinks measures GET /v1/links against a warm epoch cache.
func BenchmarkServerLinks(b *testing.B) {
	ts, _ := benchServer(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code, body := do(b, http.MethodGet, ts.URL+"/v1/links", nil); code != http.StatusOK {
			b.Fatalf("%d %s", code, body)
		}
	}
}

// TestLinksLatencyDistribution reports the p50/p99 of GET /v1/links while
// a background writer keeps ingesting (the realistic monitoring mix). Run
// with -v to read the numbers; PERFORMANCE.md quotes them.
func TestLinksLatencyDistribution(t *testing.T) {
	rm, err := lia.NewTopology(treePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{RebuildEvery: 32, PollInterval: 10 * time.Millisecond, Logf: t.Logf})
	if err := s.Add("default", serve.Topology{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = s.Run(ctx) }()
	defer func() { cancel(); <-runDone }()

	ys := testVectors(t, rm, 23, 400)
	ingestAll(t, ts.URL, "/v1", ys[:40])

	samples := 300
	if !testing.Short() {
		samples = 2000
	}
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 40; i < len(ys); i++ {
			select {
			case <-ctx.Done():
				return
			default:
			}
			req := serve.IngestRequest{SnapshotPayload: serve.SnapshotPayload{Y: ys[i]}}
			if code, _ := do(t, http.MethodPost, ts.URL+"/v1/snapshots", req); code != http.StatusOK {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	lat := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		start := time.Now()
		code, body := do(t, http.MethodGet, ts.URL+"/v1/links", nil)
		if code != http.StatusOK {
			t.Fatalf("links: %d %s", code, body)
		}
		lat = append(lat, float64(time.Since(start).Microseconds()))
	}
	cancel()
	<-writerDone
	sort.Float64s(lat)
	q := func(p float64) float64 { return lat[min(len(lat)-1, int(p*float64(len(lat))))] }
	t.Logf("GET /v1/links latency over %d requests with concurrent ingest: p50=%.0fµs p90=%.0fµs p99=%.0fµs max=%.0fµs",
		len(lat), q(0.50), q(0.90), q(0.99), lat[len(lat)-1])
}
