package serve_test

// sharded_test.go serves a ShardedEngine over a two-component topology and
// checks the API surface end to end: status and metrics report the shard
// and component counts, ingestion scatters to the per-component
// accumulators, and the served inference is bitwise-identical to an offline
// sharded engine fed the same snapshots.

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"testing"

	"lia"
	"lia/serve"
)

// twoComponentPaths joins two link-disjoint probing stars (each a shared
// root link fanning out to leaf links) into one path set.
func twoComponentPaths() []lia.Path {
	var paths []lia.Path
	for comp, base := range []int{0, 1000} {
		for i := 0; i < 3+comp; i++ {
			paths = append(paths, lia.Path{
				Beacon: base,
				Dst:    base + 1 + i,
				Links:  []int{base + 1, base + 2 + i},
			})
		}
	}
	return paths
}

func TestServedShardedEngine(t *testing.T) {
	rm, err := lia.NewTopology(twoComponentPaths())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.New(rm, lia.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	se, ok := eng.(*lia.ShardedEngine)
	if !ok {
		t.Fatalf("two-component topology built a %T, want *lia.ShardedEngine", eng)
	}
	if se.NumComponents() != 2 || se.NumShards() != 2 {
		t.Fatalf("engine has %d components in %d shards, want 2 in 2", se.NumComponents(), se.NumShards())
	}
	s := serve.New(serve.Config{RebuildEvery: -1, Shards: 2, Logf: t.Logf})
	if err := s.Add("multi", serve.Topology{Engine: eng, Probes: 400}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Offline reference: a second sharded engine fed the same snapshots.
	ref, err := lia.New(rm, lia.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	ys := testVectors(t, rm, 11, 40)
	if err := ref.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	batch := map[string]any{"snapshots": []map[string]any{}}
	for _, y := range ys {
		batch["snapshots"] = append(batch["snapshots"].([]map[string]any), map[string]any{"y": y})
	}
	if code, body := do(t, "POST", ts.URL+"/v1/snapshots", batch); code != 200 {
		t.Fatalf("ingest: %d %s", code, body)
	}

	code, body := do(t, "GET", ts.URL+"/v1/status", nil)
	if code != 200 {
		t.Fatalf("status: %d %s", code, body)
	}
	var status serve.StatusResponse
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Shards != 2 {
		t.Fatalf("status reports server shard policy %d, want 2", status.Shards)
	}
	topo := status.Topologies["multi"]
	if topo.Shards != 2 || topo.Components != 2 {
		t.Fatalf("topology reports %d shards / %d components, want 2 / 2", topo.Shards, topo.Components)
	}
	if topo.Snapshots != len(ys) {
		t.Fatalf("topology absorbed %d snapshots, want %d", topo.Snapshots, len(ys))
	}

	// Inference parity against the offline engine, link by link.
	probe := testVectors(t, rm, 99, 1)[0]
	code, body = do(t, "POST", ts.URL+"/v1/infer", map[string]any{"y": probe})
	if code != 200 {
		t.Fatalf("infer: %d %s", code, body)
	}
	var inf serve.InferResponse
	if err := json.Unmarshal(body, &inf); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Infer(t.Context(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Links) != rm.NumLinks() {
		t.Fatalf("inference over %d links, want %d", len(inf.Links), rm.NumLinks())
	}
	for k, link := range inf.Links {
		// JSON round-trips float64 exactly (encoding/json emits the
		// shortest uniquely-decodable representation).
		if link.LossRate != want.LossRates[k] || link.Variance != want.Variances[k] {
			t.Fatalf("link %d: served (%g, %g) != offline sharded (%g, %g)",
				k, link.LossRate, link.Variance, want.LossRates[k], want.Variances[k])
		}
	}

	// Metrics exposition carries the shard/component gauges.
	code, body = do(t, "GET", ts.URL+"/metrics", nil)
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, pat := range []string{
		`liaserve_shards\{topology="multi"\} 2`,
		`liaserve_components\{topology="multi"\} 2`,
		fmt.Sprintf(`liaserve_snapshots_total\{topology="multi"\} %d`, len(ys)),
	} {
		if !regexp.MustCompile(pat).Match(body) {
			t.Fatalf("metrics missing %s:\n%s", pat, body)
		}
	}
}
