package serve_test

// resilience_test.go covers the serve layer's failure-mode contract: the
// readiness split (/readyz flips while /healthz stays up), degrade-don't-
// fail serving (last-good epoch through rebuild failures, 503 only when
// there is nothing to serve), source supervision (restart with backoff,
// quarantine and error surfacing in /v1/status), and the CollectorSource's
// mid-stream reconnect.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lia"
	"lia/internal/emunet"
	"lia/serve"
)

// pairTopology is the smallest topology whose identifiability hangs on one
// covariance equation: two paths sharing link 1. Under WithWindow(4) +
// NegDrop, a window of anti-correlated snapshots drops that equation and
// every rebuild fails — the deterministic poison used below.
func pairTopology(t *testing.T) *lia.RoutingMatrix {
	t.Helper()
	rm, err := lia.NewTopology([]lia.Path{
		{Beacon: 0, Dst: 2, Links: []int{1, 2}},
		{Beacon: 0, Dst: 3, Links: []int{1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

var (
	pairCorrelated = [][]float64{
		{-0.01, -0.01}, {-0.04, -0.04}, {-0.02, -0.02}, {-0.05, -0.05},
	}
	pairAntiCorrelated = [][]float64{
		{-0.01, -0.04}, {-0.04, -0.01}, {-0.02, -0.05}, {-0.05, -0.02},
	}
)

// newPairServer serves one WithWindow(4)+NegDrop engine over the pair
// topology, rebuilds driven only by queries.
func newPairServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	eng, err := lia.NewEngine(pairTopology(t),
		lia.WithWindow(4), lia.WithNegCovPolicy(lia.NegDrop))
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{RebuildEvery: -1, Logf: t.Logf})
	if err := s.Add("default", serve.Topology{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getStatus fetches and decodes /v1/status.
func getStatus(t *testing.T, base string) serve.StatusResponse {
	t.Helper()
	code, body := do(t, http.MethodGet, base+"/v1/status", nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st serve.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReadyzLifecycle: a fresh server is alive but not ready; once every
// topology has a built state it turns ready.
func TestReadyzLifecycle(t *testing.T) {
	_, ts := newPairServer(t)

	code, body := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz on cold server: %d %s", code, body)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/readyz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on cold server: %d %s", code, body)
	}
	var rr serve.ReadyResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "degraded" || len(rr.Reasons) != 1 || !strings.Contains(rr.Reasons[0], "no inference state built yet") {
		t.Fatalf("cold readyz body: %s", body)
	}

	ingestAll(t, ts.URL, "/v1", pairCorrelated)
	if code, body = do(t, http.MethodGet, ts.URL+"/v1/links", nil); code != http.StatusOK {
		t.Fatalf("links: %d %s", code, body)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/readyz", nil)
	if code != http.StatusOK {
		t.Fatalf("readyz with built state: %d %s", code, body)
	}
}

// TestDegradedEngineKeepsServingLinks is the acceptance criterion at the
// HTTP level: when every rebuild fails, /v1/links and /v1/infer keep
// answering 200 from the last-good epoch — never a 500 — while /readyz,
// /v1/status and /metrics all report the degradation; fresh solvable data
// heals everything.
func TestDegradedEngineKeepsServingLinks(t *testing.T) {
	_, ts := newPairServer(t)

	ingestAll(t, ts.URL, "/v1", pairCorrelated)
	code, body := do(t, http.MethodGet, ts.URL+"/v1/links", nil)
	if code != http.StatusOK {
		t.Fatalf("links in solvable regime: %d %s", code, body)
	}
	var good serve.LinksResponse
	if err := json.Unmarshal(body, &good); err != nil {
		t.Fatal(err)
	}
	if good.Epoch != 4 {
		t.Fatalf("solvable epoch = %d, want 4", good.Epoch)
	}

	// Poison the window: every rebuild now fails, the served state must not.
	ingestAll(t, ts.URL, "/v1", pairAntiCorrelated)
	code, body = do(t, http.MethodGet, ts.URL+"/v1/links", nil)
	if code != http.StatusOK {
		t.Fatalf("links while degraded: %d %s — degraded serving must stay 200", code, body)
	}
	var degraded serve.LinksResponse
	if err := json.Unmarshal(body, &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.Epoch != 4 {
		t.Fatalf("degraded epoch = %d, want last-good 4", degraded.Epoch)
	}
	for k := range good.Links {
		if math.Float64bits(degraded.Links[k].Variance) != math.Float64bits(good.Links[k].Variance) {
			t.Fatalf("link %d drifted while degraded: %g != %g",
				k, degraded.Links[k].Variance, good.Links[k].Variance)
		}
	}
	if code, body = do(t, http.MethodPost, ts.URL+"/v1/infer",
		serve.SnapshotPayload{Y: []float64{-0.02, -0.03}}); code != http.StatusOK {
		t.Fatalf("infer while degraded: %d %s", code, body)
	}

	code, body = do(t, http.MethodGet, ts.URL+"/readyz", nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "degraded") {
		t.Fatalf("readyz while degraded: %d %s", code, body)
	}
	d := getStatus(t, ts.URL).Topologies["default"]
	if !d.Degraded || d.RebuildFailures == 0 || d.LastError == "" || d.LastFailure == "" {
		t.Fatalf("status does not surface the degradation: %+v", d)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `liaserve_degraded{topology="default"} 1`) {
		t.Fatalf("metrics while degraded: %d\n%s", code, body)
	}

	// Healing: a solvable window brings readiness and a fresh epoch back.
	ingestAll(t, ts.URL, "/v1", pairCorrelated)
	code, body = do(t, http.MethodGet, ts.URL+"/v1/links", nil)
	if code != http.StatusOK {
		t.Fatalf("links after healing: %d %s", code, body)
	}
	var healed serve.LinksResponse
	if err := json.Unmarshal(body, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Epoch != 12 {
		t.Fatalf("healed epoch = %d, want 12", healed.Epoch)
	}
	if code, body = do(t, http.MethodGet, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz after healing: %d %s", code, body)
	}
	if d := getStatus(t, ts.URL).Topologies["default"]; d.Degraded {
		t.Fatalf("still degraded after healing: %+v", d)
	}
}

// TestRebuildFailureWithoutStateIs503: with no last-good state to fall back
// on, a failing rebuild is a 503 (service unavailable until healthier
// data), not a 500.
func TestRebuildFailureWithoutStateIs503(t *testing.T) {
	_, ts := newPairServer(t)
	ingestAll(t, ts.URL, "/v1", pairAntiCorrelated)
	code, body := do(t, http.MethodGet, ts.URL+"/v1/links", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("links with nothing to serve: %d %s, want 503", code, body)
	}
	if !strings.Contains(string(body), "rebuild failed") {
		t.Fatalf("503 body does not name the rebuild failure: %s", body)
	}
}

// scriptStep is one Next outcome of a scriptedSource.
type scriptStep struct {
	y   []float64
	err error
}

// scriptedSource replays a fixed script of snapshots and errors, then EOF.
type scriptedSource struct {
	mu    sync.Mutex
	steps []scriptStep
	i     int
}

func (s *scriptedSource) Next(ctx context.Context) (lia.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.i >= len(s.steps) {
		return lia.Snapshot{}, io.EOF
	}
	st := s.steps[s.i]
	s.i++
	if st.err != nil {
		return lia.Snapshot{}, st.err
	}
	return lia.Snapshot{Y: st.y}, nil
}

// TestSupervisorRestartsFailingSource: a source that fails mid-stream is
// restarted and drained to exhaustion, its poisoned snapshot is
// quarantined, and the whole history — restarts, last error, quarantine —
// shows in /v1/status.
func TestSupervisorRestartsFailingSource(t *testing.T) {
	rm, err := lia.NewTopology(treePaths(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	ys := testVectors(t, rm, 11, 6)
	script := []scriptStep{
		{y: ys[0]}, {y: ys[1]},
		{err: errors.New("probe plane flapped")},
		{y: ys[2]}, {y: ys[3]},
		{y: []float64{math.NaN(), -0.01, -0.02}}, // quarantined, not ingested
		{y: ys[4]}, {y: ys[5]},
	}
	s := serve.New(serve.Config{
		RebuildEvery: 1, PollInterval: 2 * time.Millisecond,
		RestartBackoff: 5 * time.Millisecond, Logf: t.Logf,
	})
	if err := s.Add("default", serve.Topology{
		Engine:  eng,
		Sources: []lia.SnapshotSource{&scriptedSource{steps: script}},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = s.Run(ctx) }()
	defer func() { cancel(); <-runDone }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		d := getStatus(t, ts.URL).Topologies["default"]
		if len(d.SourceDetail) == 1 && d.SourceDetail[0].State == "exhausted" && d.StateEpoch >= 2 {
			if d.SourceSnapshots != 6 {
				t.Fatalf("ingested %d source snapshots, want the 6 clean ones", d.SourceSnapshots)
			}
			if d.SourceRestarts != 1 || d.SourceDetail[0].Restarts != 1 {
				t.Fatalf("restarts = %d/%d, want 1", d.SourceRestarts, d.SourceDetail[0].Restarts)
			}
			if d.Quarantined != 1 || d.SourceDetail[0].Quarantined != 1 {
				t.Fatalf("quarantined = %d/%d, want 1", d.Quarantined, d.SourceDetail[0].Quarantined)
			}
			if !strings.Contains(d.SourceDetail[0].LastError, "probe plane flapped") ||
				d.SourceDetail[0].LastErrorAt == "" {
				t.Fatalf("source error not surfaced: %+v", d.SourceDetail[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("source never drained: %+v", d)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Exhausted is a clean end state: with the state built, the server is
	// ready despite the restart in its history.
	if code, body := do(t, http.MethodGet, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz after recovery: %d %s", code, body)
	}
}

// brokenSource always fails: the supervisor can never make progress, so
// the source lives in restart backoff.
type brokenSource struct{}

func (brokenSource) Next(ctx context.Context) (lia.Snapshot, error) {
	return lia.Snapshot{}, errors.New("collector unreachable")
}

// TestReadyzFlipsWhileSourceRestarting: a persistently failing source flips
// /readyz to 503 with the restart reason while the API keeps serving the
// built state.
func TestReadyzFlipsWhileSourceRestarting(t *testing.T) {
	rm, err := lia.NewTopology(treePaths(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch(testVectors(t, rm, 13, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Variances(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{
		RebuildEvery: -1, RestartBackoff: 50 * time.Millisecond, Logf: t.Logf,
	})
	if err := s.Add("default", serve.Topology{
		Engine:  eng,
		Sources: []lia.SnapshotSource{brokenSource{}},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = s.Run(ctx) }()
	defer func() { cancel(); <-runDone }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := do(t, http.MethodGet, ts.URL+"/readyz", nil)
		if code == http.StatusServiceUnavailable && strings.Contains(string(body), "restarting") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never flipped: %d %s", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The data plane is unaffected: the built state keeps serving.
	if code, body := do(t, http.MethodGet, ts.URL+"/v1/links", nil); code != http.StatusOK {
		t.Fatalf("links during source outage: %d %s", code, body)
	}
	if d := getStatus(t, ts.URL).Topologies["default"]; d.SourceRestarts == 0 ||
		!strings.Contains(d.SourceDetail[0].LastError, "collector unreachable") {
		t.Fatalf("restart history not surfaced: %+v", d)
	}
}

// TestCollectorSourceReconnects: killing the report listener mid-stream
// surfaces one error, then the source re-listens on the same address and
// resumes at the interrupted snapshot index.
func TestCollectorSourceReconnects(t *testing.T) {
	src, err := serve.NewCollectorSource("127.0.0.1:0", serve.CollectorConfig{
		Paths:     2,
		Probes:    100,
		Settle:    -1,
		Timeout:   10 * time.Second,
		Snapshots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	addr := src.Addr()

	send := func(t *testing.T, reports []emunet.Report) {
		t.Helper()
		rc, err := emunet.DialCollector(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		for _, rep := range reports {
			if err := rc.Send(rep); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctx := context.Background()
	send(t, []emunet.Report{
		{PathID: 0, Snapshot: 0, Sent: 100, Received: 90},
		{PathID: 1, Snapshot: 0, Sent: 100, Received: 80},
	})
	if _, err := src.Next(ctx); err != nil {
		t.Fatalf("snapshot 0: %v", err)
	}

	// The listener dies. The Next that observes it must error — that is the
	// supervisor's signal — without closing the source.
	if err := src.InjectListenerFailure(); err != nil {
		t.Fatal(err)
	}
	_, err = src.Next(ctx)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("Next over dead listener: %v, want a surfaced outage", err)
	}
	if !errors.Is(err, emunet.ErrCollectorClosed) {
		t.Fatalf("outage error = %v, want ErrCollectorClosed in the chain", err)
	}

	// An agent redials once the address answers again (the next Next
	// re-listens) and reports the interrupted snapshot.
	go func() {
		for {
			rc, err := emunet.DialCollector(addr)
			if err != nil {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			for _, rep := range []emunet.Report{
				{PathID: 0, Snapshot: 1, Sent: 100, Received: 70},
				{PathID: 1, Snapshot: 1, Sent: 100, Received: 60},
			} {
				_ = rc.Send(rep)
			}
			rc.Close()
			return
		}
	}()
	snap, err := src.Next(ctx)
	if err != nil {
		t.Fatalf("snapshot 1 after reconnect: %v", err)
	}
	want := lia.LogRates([]float64{0.7, 0.6}, 100)
	for i := range want {
		if math.Float64bits(snap.Y[i]) != math.Float64bits(want[i]) {
			t.Fatalf("resumed snapshot path %d: %v, want %v", i, snap.Y[i], want[i])
		}
	}
	if src.Reconnects() != 1 {
		t.Fatalf("Reconnects = %d, want 1", src.Reconnects())
	}
	if src.Addr() != addr {
		t.Fatalf("address changed across reconnect: %s != %s", src.Addr(), addr)
	}
}
