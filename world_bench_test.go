package lia_test

// world_bench_test.go compares snapshot-source throughput: the in-process
// simulator (NewSimSource) against the world server consumed over TCP
// loopback (NewWorldSource) — the cost of moving scenario generation behind
// a socket.

import (
	"context"
	"testing"

	"lia"
	"lia/world"
)

func BenchmarkSnapshotSources(b *testing.B) {
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("sim", func(b *testing.B) {
		src := lia.NewSimSource(rm, lia.SimConfig{Probes: 400, Seed: 1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := src.Next(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("world", func(b *testing.B) {
		srv := world.NewServer(world.ServerConfig{World: world.Config{Seed: 1}})
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		src := lia.NewWorldSource(srv.Addr(), rm, lia.WorldConfig{Probes: 400, Batch: 256})
		defer src.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := src.Next(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
