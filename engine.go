package lia

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lia/internal/core"
	"lia/internal/stats"
)

// Engine is a concurrency-safe inference session over one routing matrix.
//
// Learning snapshots stream in through Ingest / IngestBatch / Consume;
// inferences run through Infer. Internally the engine keys a cached
// Phase-1 state (link variances and the Phase-2 elimination order) by an
// ingestion epoch — the number of snapshots folded in. Infer loads the
// cache with two atomic reads; only the first inference after new learning
// data recomputes it, and concurrent inferences behind that rebuild
// single-flight on one recompute. Ingestion itself serialises on a short
// lock around the streaming moment fold, never on a solve: the rebuild
// snapshots the frozen covariance view under the lock and solves on that.
//
// Rebuilds are incremental: under the default clamp (and the keep)
// negative-covariance policy the Gram matrix of the Phase-1 normal
// equations depends only on the topology, so its Cholesky factorization is
// computed once and every later rebuild pays only the right-hand-side fold
// plus two triangular solves — with results bit-identical to a from-scratch
// solve (see core.Phase1).
//
// By default the moments are cumulative over all ingested history; the
// WithWindow and WithDecay options switch to sliding-window or
// exponentially-decayed moments so long-running engines track regime
// changes.
//
// Rebuilds are also the engine's degraded-mode boundary: a rebuild that
// fails (an unidentifiable windowed regime under NegDrop, say) or panics
// does not take queries down with it. Once at least one state has been
// built, Infer/Steady/Variances keep serving that last-good epoch while
// every later query retries the rebuild; Stats reports the degradation
// (Degraded, RebuildFailures, LastError, StateAge). WithStrictRebuilds
// restores fail-fast semantics. Only an engine that has never built a
// state surfaces the failure, wrapped in ErrRebuildFailed.
//
// Construct with NewEngine; the zero value is not usable.
type Engine struct {
	rm   *RoutingMatrix
	opts core.Options
	p1   *core.Phase1

	// window and decay record the moment configuration (WithWindow /
	// WithDecay) for observability; the acc itself enforces it.
	window int
	decay  float64
	strict bool // WithStrictRebuilds: fail queries instead of degrading

	mu    sync.Mutex // guards acc and the epoch advance
	acc   stats.MomentAccumulator
	epoch atomic.Uint64 // lifetime snapshots ingested; published by Ingest

	rebuildMu sync.Mutex // single-flights state rebuilds
	state     atomic.Pointer[phaseState]

	// restoredAt is the unix-nano wall time the last-rebuilt state of a
	// checkpointed engine was built, installed by RestoreFrom so StateAge
	// reports continuity across a restart instead of resetting to boot time
	// (0 = never restored). It is consulted only until the first
	// post-restore rebuild publishes a state of its own.
	restoredAt atomic.Int64

	// Observability counters, read by Stats (and liaserve's /v1/status and
	// /metrics endpoints).
	rebuilds        atomic.Uint64
	elimReuses      atomic.Uint64
	lastRebuildNano atomic.Int64
	rebuildFailures atomic.Uint64
	degraded        atomic.Bool // serving last-good after a rebuild failure
	lastFailure     atomic.Pointer[rebuildFailure]
}

// rebuildFailure records one failed rebuild for observability.
type rebuildFailure struct {
	err   error
	at    time.Time
	epoch uint64 // ingestion epoch the failed rebuild targeted
}

// phaseState is one immutable Phase-1 result: everything Phase 2 needs that
// depends only on the learning data.
type phaseState struct {
	epoch         uint64 // ingestion epoch the state was computed at
	builtAt       time.Time
	vars          []float64
	order         []int // ascending variance permutation (elimination cache key)
	kept, removed []int
}

// NewEngine creates an engine over the reduced routing matrix.
func NewEngine(rm *RoutingMatrix, options ...Option) (*Engine, error) {
	if rm == nil {
		return nil, errors.New("lia: nil routing matrix")
	}
	var s settings
	for _, o := range options {
		o(&s)
	}
	acc, err := s.newAccumulator(rm.NumPaths())
	if err != nil {
		return nil, err
	}
	return &Engine{
		rm:     rm,
		opts:   s.opts,
		p1:     core.NewPhase1(rm, s.opts.Variance),
		window: s.window,
		decay:  s.effectiveDecay(),
		strict: s.strict,
		acc:    acc,
	}, nil
}

// RoutingMatrix returns the matrix the engine operates on.
func (e *Engine) RoutingMatrix() *RoutingMatrix { return e.rm }

// Snapshots returns the number of learning snapshots ingested over the
// engine's lifetime. With WithWindow the moments cover at most the window's
// worth of these; the count still advances per ingest.
func (e *Engine) Snapshots() int { return int(e.epoch.Load()) }

// Threshold returns the effective congestion threshold tl: the value given
// to WithThreshold (honored verbatim, including 0), or DefaultThreshold.
func (e *Engine) Threshold() float64 { return e.opts.EffectiveThreshold() }

// Ingest folds one learning snapshot of per-path observations into the
// second-order moments (§5.1, eq. 7). Safe for concurrent use with other
// Ingest and Infer calls.
func (e *Engine) Ingest(y []float64) error {
	if err := checkDim(e.rm, y); err != nil {
		return err
	}
	e.mu.Lock()
	e.acc.Add(y)
	e.epoch.Add(1)
	e.mu.Unlock()
	return nil
}

// IngestBatch folds a batch of learning snapshots under one lock
// acquisition. All vectors are validated before any is folded, so a
// dimension error leaves the moments untouched — the error names the
// offending batch index and reports zero snapshots ingested.
func (e *Engine) IngestBatch(ys [][]float64) error {
	for i, y := range ys {
		if err := checkDim(e.rm, y); err != nil {
			return fmt.Errorf("lia: batch snapshot %d of %d (0 ingested): %w", i, len(ys), err)
		}
	}
	e.mu.Lock()
	for _, y := range ys {
		e.acc.Add(y)
	}
	e.epoch.Add(uint64(len(ys)))
	e.mu.Unlock()
	return nil
}

// IngestSparse folds one learning snapshot that names the paths it covers:
// paths holds strictly ascending global path indices and y the matching
// observations. A plain Engine is one link-connected solve — its moments
// fold whole snapshots or none — so sparse ingestion here requires full
// coverage (every path, making it equivalent to Ingest); anything less
// returns ErrPartialComponent with nothing ingested. The method exists so
// the steady-state streaming surface is uniform across engines: on a
// ShardedEngine, covering only some components advances only those
// components, and the untouched ones skip their next rebuild entirely.
func (e *Engine) IngestSparse(paths []int, y []float64) error {
	if err := checkSparse(e.rm, paths, y); err != nil {
		return err
	}
	if len(paths) != e.rm.NumPaths() {
		return fmt.Errorf("lia: sparse snapshot covers %d of %d paths: %w",
			len(paths), e.rm.NumPaths(), ErrPartialComponent)
	}
	// Strictly ascending, in range, full length: paths is the identity
	// permutation and y is a complete snapshot in path order.
	return e.Ingest(y)
}

// checkSparse validates the shape of a sparse snapshot: matching lengths,
// and strictly ascending path indices within the matrix's range.
func checkSparse(rm *RoutingMatrix, paths []int, y []float64) error {
	if len(paths) != len(y) {
		return fmt.Errorf("lia: sparse snapshot names %d paths but carries %d values: %w",
			len(paths), len(y), ErrDimensionMismatch)
	}
	if len(paths) == 0 {
		return fmt.Errorf("lia: sparse snapshot covers no paths: %w", ErrDimensionMismatch)
	}
	np := rm.NumPaths()
	for i, p := range paths {
		if p < 0 || p >= np {
			return fmt.Errorf("lia: sparse snapshot path %d outside [0, %d): %w", p, np, ErrDimensionMismatch)
		}
		if i > 0 && p <= paths[i-1] {
			return fmt.Errorf("lia: sparse snapshot paths not strictly ascending at index %d: %w", i, ErrDimensionMismatch)
		}
	}
	return nil
}

// consumeBatch is how many snapshots Consume buffers between IngestBatch
// folds: large enough that a high-rate source stops serialising on
// per-snapshot lock acquisition, small enough that snapshots become visible
// to concurrent inferences with little delay.
const consumeBatch = 64

// Consume pulls snapshots from a source until it is exhausted (io.EOF) or
// the context is cancelled, ingesting each. It returns the number of
// snapshots ingested.
//
// Snapshots are drained into an internal buffer and folded via IngestBatch
// in batches of up to 64, so a high-rate source takes the ingest lock once
// per batch instead of once per snapshot. Each snapshot is copied into the
// buffer, so — exactly as with a per-snapshot Ingest loop — the source may
// reuse its Y backing array across Next calls. Buffered snapshots become
// visible to concurrent Infer calls at batch boundaries (and on EOF, error,
// or cancellation, when the remainder is always flushed); the fold order is
// exactly the source order, so results are identical to a per-snapshot
// Ingest loop.
func (e *Engine) Consume(ctx context.Context, src SnapshotSource) (int, error) {
	return consumeSource(ctx, src, e.rm, e.IngestBatch)
}

// consumeSource is the shared Consume loop behind Engine and ShardedEngine:
// drain src into batches of up to consumeBatch snapshots and fold each batch
// through ingestBatch.
func consumeSource(ctx context.Context, src SnapshotSource, rm *RoutingMatrix, ingestBatch func([][]float64) error) (int, error) {
	n := 0
	np := rm.NumPaths()
	// One backing array, reused across batches: IngestBatch copies the
	// vectors into the moments before returning, so the slots are free for
	// the next batch as soon as flush returns.
	backing := make([]float64, consumeBatch*np)
	buf := make([][]float64, 0, consumeBatch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := ingestBatch(buf); err != nil {
			return err
		}
		n += len(buf)
		buf = buf[:0]
		return nil
	}
	for {
		snap, err := src.Next(ctx)
		if err != nil {
			ferr := flush()
			if errors.Is(err, io.EOF) {
				return n, ferr
			}
			return n, err
		}
		// Validate before buffering so one bad snapshot cannot poison the
		// whole batch: the valid prefix is flushed, then the error surfaces
		// with the same count a per-snapshot loop would report.
		if err := checkDim(rm, snap.Y); err != nil {
			if ferr := flush(); ferr != nil {
				return n, ferr
			}
			return n, err
		}
		slot := backing[len(buf)*np : (len(buf)+1)*np]
		copy(slot, snap.Y)
		buf = append(buf, slot)
		if len(buf) == consumeBatch {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
}

// currentState returns the Phase-1 state for the latest ingestion epoch,
// recomputing it if learning data arrived since the last rebuild. Callers
// racing a rebuild single-flight behind one solver. The recompute snapshots
// only the frozen covariance view the right-hand-side fold needs (not the
// whole accumulator) and reuses the cached Gram factorization whenever the
// options allow.
//
// A failed (or panicking) rebuild does not fail the query when a
// previously built state exists: the engine flags itself degraded, records
// the failure for Stats, and serves the last-good state. The next query at
// a newer epoch retries the rebuild, so a transient bad regime self-heals.
// Context cancellation is the caller's deadline, not a data problem — it
// propagates without touching the failure counters.
func (e *Engine) currentState(ctx context.Context) (*phaseState, error) {
	if st := e.state.Load(); st != nil && st.epoch == e.epoch.Load() {
		return st, nil
	}
	e.rebuildMu.Lock()
	defer e.rebuildMu.Unlock()
	if st := e.state.Load(); st != nil && st.epoch == e.epoch.Load() {
		return st, nil // a racing caller rebuilt while we waited
	}
	st, epoch, err := e.rebuild(ctx)
	if err != nil {
		// Cancellation is the caller's deadline and warm-up is not a
		// failure: both pass through untouched (and unrecorded), keeping
		// cold-start semantics — ErrTooFewSnapshots until two snapshots
		// arrive — exactly as before degraded mode existed.
		if ctx.Err() != nil || errors.Is(err, ErrTooFewSnapshots) {
			return nil, err
		}
		e.rebuildFailures.Add(1)
		e.lastFailure.Store(&rebuildFailure{err: err, at: time.Now(), epoch: epoch})
		if prev := e.state.Load(); prev != nil && !e.strict {
			e.degraded.Store(true)
			return prev, nil
		}
		return nil, fmt.Errorf("lia: rebuild at epoch %d: %w: %w", epoch, ErrRebuildFailed, err)
	}
	e.degraded.Store(false)
	e.state.Store(st)
	return st, nil
}

// rebuildPanicHook, when non-nil, runs at the top of every rebuild. It
// exists so tests can prove the recover path; production never sets it.
var rebuildPanicHook func()

// rebuild computes the phase state for the current ingestion epoch,
// converting a panic anywhere in the solve into an error so a poisoned
// moment view cannot take down the serving goroutine. It returns the epoch
// the rebuild targeted either way, for failure records. Caller holds
// e.rebuildMu.
func (e *Engine) rebuild(ctx context.Context) (st *phaseState, epoch uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = nil, fmt.Errorf("lia: rebuild panicked: %v", r)
		}
	}()
	if rebuildPanicHook != nil {
		rebuildPanicHook()
	}
	view, epoch := e.momentsView()
	if err := ctx.Err(); err != nil {
		return nil, epoch, err
	}
	start := time.Now()
	vars, err := e.p1.Estimate(view)
	if err != nil {
		return nil, epoch, fmt.Errorf("lia: phase 1: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, epoch, err
	}
	// Phase-2 elimination cache: both strategies are pure functions of the
	// ascending-variance permutation (see core.VarianceOrder), so when the
	// new epoch's ordering matches the previous state's, the kept/removed
	// partition is reused verbatim — identical, not approximately so, to the
	// from-scratch elimination. With m snapshots already learned, one more
	// rarely reorders the variances, and the rank-test search now dominating
	// warm rebuilds is skipped entirely.
	order := core.VarianceOrder(vars)
	var kept, removed []int
	if prev := e.state.Load(); prev != nil && intsEqual(prev.order, order) {
		kept, removed = prev.kept, prev.removed
		e.elimReuses.Add(1)
	} else {
		kept, removed = core.EliminateWorkers(e.rm, vars, e.opts.Strategy, e.opts.Variance.Workers)
	}
	e.lastRebuildNano.Store(time.Since(start).Nanoseconds())
	e.rebuilds.Add(1)
	return &phaseState{
		epoch: epoch, builtAt: time.Now(),
		vars: vars, order: order, kept: kept, removed: removed,
	}, epoch, nil
}

// momentsView snapshots the frozen covariance view and the ingestion epoch
// it corresponds to, consistently (both under the ingest lock).
func (e *Engine) momentsView() (*stats.CovSnapshot, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.acc.View(), e.epoch.Load()
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Stats is a point-in-time observability snapshot of an Engine, the hook
// behind liaserve's /v1/status and /metrics endpoints. Counters are read
// individually (not under one lock), so a Stats taken during concurrent
// ingestion is approximate to within the in-flight operations.
type Stats struct {
	// Snapshots is the lifetime number of learning snapshots ingested.
	Snapshots int
	// StateEpoch is the ingestion epoch of the cached Phase-1/elimination
	// state served to Infer, or -1 before the first rebuild.
	StateEpoch int
	// EpochLag is Snapshots − StateEpoch: how many ingested snapshots the
	// cached state has not absorbed yet (0 when fully warm).
	EpochLag int
	// Rebuilds counts Phase-1 state recomputations over the engine's life.
	Rebuilds uint64
	// ElimReuses counts rebuilds that reused the previous elimination
	// because the variance ordering was unchanged.
	ElimReuses uint64
	// LastRebuild is the duration of the most recent rebuild (Phase 1 +
	// elimination); 0 before the first.
	LastRebuild time.Duration
	// RebuildFailures counts rebuilds that errored or panicked over the
	// engine's life (context cancellations are not failures).
	RebuildFailures uint64
	// Degraded reports that the most recent rebuild attempt failed and
	// queries are being served from the last-good state. It clears on the
	// next successful rebuild.
	Degraded bool
	// LastError is the message of the most recent rebuild failure ("" when
	// none has occurred); LastFailure is when it happened.
	LastError   string
	LastFailure time.Time
	// StateAge is how long ago the served Phase-1 state was built — the
	// staleness bound of degraded answers. 0 before the first rebuild.
	StateAge time.Duration
	// Window is the sliding-window length (WithWindow), 0 when cumulative.
	Window int
	// Decay is the per-snapshot decay factor (WithDecay), 0 when unset.
	Decay float64
	// Shards is the number of concurrent rebuild groups of a ShardedEngine
	// (0 for a plain Engine).
	Shards int
	// Components is the number of link-connected topology components a
	// ShardedEngine partitioned its routing matrix into (0 for a plain
	// Engine).
	Components int
	// DegradedComponents counts the components of a ShardedEngine that are
	// currently unhealthy — serving stale state or failing with none built
	// (0 for a plain Engine, where Degraded alone tells the story).
	DegradedComponents int
	// DeltaRebuilds counts rebuilds whose Phase-1 right-hand side ran the
	// incremental delta fold — recomputing only the pair shards whose
	// co-moment block changed since the previous epoch — instead of a full
	// fold (summed across components for a ShardedEngine). Delta folds
	// require a bitwise-stable covariance divisor, so they appear with
	// windowed moments at capacity; cumulative and decayed moments always
	// full-fold.
	DeltaRebuilds uint64
	// DirtyShards is the shard work of the most recent rebuild: for a plain
	// Engine, the pair shards the last RHS fold recomputed; for a
	// ShardedEngine, the concurrent rebuild groups that contained at least
	// one rebuilt component in the most recent rebuild wave.
	DirtyShards int
	// DirtyComponents counts the components that actually rebuilt in the
	// most recent rebuild wave of a ShardedEngine (0 for a plain Engine).
	DirtyComponents int
	// SkippedComponents is the lifetime count of components a ShardedEngine
	// left untouched across rebuild waves because their epochs had not
	// advanced — each skip avoids a Phase-1 solve and reuses the cached
	// elimination outright (0 for a plain Engine).
	SkippedComponents uint64
	// Rebalances counts dynamic LPT re-groupings of a ShardedEngine's
	// components across its rebuild shards (see WithRebalance; 0 for a
	// plain Engine).
	Rebalances uint64
}

// Stats reports the engine's observability counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Snapshots:       int(e.epoch.Load()),
		StateEpoch:      -1,
		Rebuilds:        e.rebuilds.Load(),
		ElimReuses:      e.elimReuses.Load(),
		LastRebuild:     time.Duration(e.lastRebuildNano.Load()),
		RebuildFailures: e.rebuildFailures.Load(),
		Degraded:        e.degraded.Load(),
		Window:          e.window,
		Decay:           e.decay,
	}
	ds := e.p1.DeltaStats()
	s.DeltaRebuilds = ds.DeltaFolds
	s.DirtyShards = ds.LastDirtyShards
	if f := e.lastFailure.Load(); f != nil {
		s.LastError = f.err.Error()
		s.LastFailure = f.at
	}
	if st := e.state.Load(); st != nil {
		s.StateEpoch = int(st.epoch)
		if !st.builtAt.IsZero() {
			s.StateAge = time.Since(st.builtAt)
		}
	} else if ns := e.restoredAt.Load(); ns != 0 {
		// Freshly restored from a checkpoint: no state rebuilt this process
		// yet, but the served moments descend from one built at the
		// checkpointed wall time — report that age, not zero.
		s.StateAge = time.Since(time.Unix(0, ns))
	}
	if s.StateEpoch >= 0 {
		if s.EpochLag = s.Snapshots - s.StateEpoch; s.EpochLag < 0 {
			s.EpochLag = 0 // counters raced; lag is defined non-negative
		}
	} else {
		s.EpochLag = s.Snapshots
	}
	return s
}

// Eliminated returns the Phase-2 partition of the virtual links at the
// current ingestion epoch: the kept columns forming the full-column-rank R*
// and the removed (approximated loss-free) ones. Both slices are the
// caller's to keep.
func (e *Engine) Eliminated(ctx context.Context) (kept, removed []int, err error) {
	st, err := e.currentState(ctx)
	if err != nil {
		return nil, nil, err
	}
	return append([]int(nil), st.kept...), append([]int(nil), st.removed...), nil
}

// SteadyState is one consistent view of the engine's cached learning state:
// the Phase-1 variances and the Phase-2 partition computed from them, with
// the ingestion epoch they belong to. Unlike separate Variances/Eliminated
// calls, every field comes from the same internal state — a concurrent
// ingestion can never mix epochs within it.
type SteadyState struct {
	Epoch         int
	Variances     []float64
	Kept, Removed []int
	// Unresolved lists global virtual links whose owning sharded component
	// failed to produce a state: their variances read zero and they belong
	// to neither Kept nor Removed. Always nil for a plain Engine.
	Unresolved []int
}

// Steady returns the steady-state learning view at the current ingestion
// epoch (rebuilding it first if learning data arrived). The slices are the
// caller's to keep.
func (e *Engine) Steady(ctx context.Context) (*SteadyState, error) {
	st, err := e.currentState(ctx)
	if err != nil {
		return nil, err
	}
	return &SteadyState{
		Epoch:     int(st.epoch),
		Variances: append([]float64(nil), st.vars...),
		Kept:      append([]int(nil), st.kept...),
		Removed:   append([]int(nil), st.removed...),
	}, nil
}

// Variances returns the Phase-1 estimates of the per-link variances at the
// current ingestion epoch. Entries may be slightly negative under sampling
// noise. The slice is the caller's to keep.
func (e *Engine) Variances(ctx context.Context) ([]float64, error) {
	st, err := e.currentState(ctx)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), st.vars...), nil
}

// Infer runs Phase 2 on one snapshot of per-path observations: solve the
// reduced full-column-rank system Y = R*·X* ordered by the learned
// variances, and report per-link metrics (loss rates under
// ObserveLogTransmission, the clamped linear metric under ObserveLinear;
// eliminated links report 0).
//
// Infer is safe for heavy concurrent use: the Phase-1 state is cached
// across calls and shared lock-free; each call then performs one
// independent least-squares solve. The returned Result is exclusively the
// caller's.
func (e *Engine) Infer(ctx context.Context, y []float64) (*Result, error) {
	if err := checkDim(e.rm, y); err != nil {
		return nil, err
	}
	st, err := e.currentState(ctx)
	if err != nil {
		return nil, err
	}
	x, err := core.SolveReduced(e.rm, st.kept, y)
	if err != nil {
		return nil, fmt.Errorf("lia: phase 2: %w", err)
	}
	// Copy the cached slices: Results outlive state swaps and callers may
	// modify them.
	res := core.AssembleResult(
		e.rm, e.opts.Observation,
		append([]float64(nil), st.vars...),
		append([]int(nil), st.kept...),
		append([]int(nil), st.removed...),
		x,
	)
	res.Epoch = int(st.epoch)
	return res, nil
}

// InferCongested runs Infer and classifies every virtual link against the
// engine's congestion threshold (see Threshold).
func (e *Engine) InferCongested(ctx context.Context, y []float64) ([]bool, *Result, error) {
	res, err := e.Infer(ctx, y)
	if err != nil {
		return nil, nil, err
	}
	return res.Congested(e.Threshold()), res, nil
}

// CheckIdentifiable verifies that the link variances are identifiable on
// this engine's routing matrix (Theorem 1), returning an error wrapping
// ErrUnidentifiable if the augmented matrix is rank deficient. The check is
// not implied by NewEngine — it costs a rank computation — but running it
// once per topology turns silent minimum-norm fallbacks into a diagnosis.
func (e *Engine) CheckIdentifiable() error {
	if err := e.rm.PrecomputePairSupports(); err != nil {
		return fmt.Errorf("lia: %w", err)
	}
	if r, nc := core.AugmentedRank(e.rm), e.rm.NumLinks(); r < nc {
		return fmt.Errorf("lia: rank(A) = %d < %d links: %w", r, nc, ErrUnidentifiable)
	}
	return nil
}
