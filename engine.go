package lia

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"lia/internal/core"
	"lia/internal/stats"
)

// Engine is a concurrency-safe inference session over one routing matrix.
//
// Learning snapshots stream in through Ingest / IngestBatch / Consume;
// inferences run through Infer. Internally the engine keys a cached
// Phase-1 state (link variances and the Phase-2 elimination order) by an
// ingestion epoch — the number of snapshots folded in. Infer loads the
// cache with two atomic reads; only the first inference after new learning
// data recomputes it, and concurrent inferences behind that rebuild
// single-flight on one recompute. Ingestion itself serialises on a short
// lock around the streaming moment fold, never on a solve: the rebuild
// clones the moment accumulator under the lock and solves on the clone.
//
// Construct with NewEngine; the zero value is not usable.
type Engine struct {
	rm   *RoutingMatrix
	opts core.Options

	mu    sync.Mutex // guards acc
	acc   *stats.CovAccumulator
	epoch atomic.Uint64 // snapshots folded in; published by Ingest

	rebuildMu sync.Mutex // single-flights state rebuilds
	state     atomic.Pointer[phaseState]
}

// phaseState is one immutable Phase-1 result: everything Phase 2 needs that
// depends only on the learning data.
type phaseState struct {
	epoch         uint64 // ingestion epoch the state was computed at
	vars          []float64
	kept, removed []int
}

// NewEngine creates an engine over the reduced routing matrix.
func NewEngine(rm *RoutingMatrix, options ...Option) (*Engine, error) {
	if rm == nil {
		return nil, errors.New("lia: nil routing matrix")
	}
	var s settings
	for _, o := range options {
		o(&s)
	}
	return &Engine{rm: rm, opts: s.opts, acc: stats.NewCovAccumulator(rm.NumPaths())}, nil
}

// RoutingMatrix returns the matrix the engine operates on.
func (e *Engine) RoutingMatrix() *RoutingMatrix { return e.rm }

// Snapshots returns the number of learning snapshots ingested so far.
func (e *Engine) Snapshots() int { return int(e.epoch.Load()) }

// Threshold returns the effective congestion threshold tl: the value given
// to WithThreshold (honored verbatim, including 0), or DefaultThreshold.
func (e *Engine) Threshold() float64 { return e.opts.EffectiveThreshold() }

// Ingest folds one learning snapshot of per-path observations into the
// second-order moments (§5.1, eq. 7). Safe for concurrent use with other
// Ingest and Infer calls.
func (e *Engine) Ingest(y []float64) error {
	if err := checkDim(e.rm, y); err != nil {
		return err
	}
	e.mu.Lock()
	e.acc.Add(y)
	e.epoch.Store(uint64(e.acc.Count()))
	e.mu.Unlock()
	return nil
}

// IngestBatch folds a batch of learning snapshots under one lock
// acquisition. All vectors are validated before any is folded, so a
// dimension error leaves the moments untouched.
func (e *Engine) IngestBatch(ys [][]float64) error {
	for _, y := range ys {
		if err := checkDim(e.rm, y); err != nil {
			return err
		}
	}
	e.mu.Lock()
	for _, y := range ys {
		e.acc.Add(y)
	}
	e.epoch.Store(uint64(e.acc.Count()))
	e.mu.Unlock()
	return nil
}

// Consume pulls snapshots from a source until it is exhausted (io.EOF) or
// the context is cancelled, ingesting each. It returns the number of
// snapshots ingested.
func (e *Engine) Consume(ctx context.Context, src SnapshotSource) (int, error) {
	n := 0
	for {
		snap, err := src.Next(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		if err := e.Ingest(snap.Y); err != nil {
			return n, err
		}
		n++
	}
}

// currentState returns the Phase-1 state for the latest ingestion epoch,
// recomputing it if learning data arrived since the last rebuild. Callers
// racing a rebuild single-flight behind one solver.
func (e *Engine) currentState(ctx context.Context) (*phaseState, error) {
	if st := e.state.Load(); st != nil && st.epoch == e.epoch.Load() {
		return st, nil
	}
	e.rebuildMu.Lock()
	defer e.rebuildMu.Unlock()
	if st := e.state.Load(); st != nil && st.epoch == e.epoch.Load() {
		return st, nil // a racing caller rebuilt while we waited
	}
	e.mu.Lock()
	cov := e.acc.Clone()
	e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vars, err := core.EstimateVariances(e.rm, cov, e.opts.Variance)
	if err != nil {
		return nil, fmt.Errorf("lia: phase 1: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kept, removed := core.EliminateWorkers(e.rm, vars, e.opts.Strategy, e.opts.Variance.Workers)
	st := &phaseState{epoch: uint64(cov.Count()), vars: vars, kept: kept, removed: removed}
	e.state.Store(st)
	return st, nil
}

// Variances returns the Phase-1 estimates of the per-link variances at the
// current ingestion epoch. Entries may be slightly negative under sampling
// noise. The slice is the caller's to keep.
func (e *Engine) Variances(ctx context.Context) ([]float64, error) {
	st, err := e.currentState(ctx)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), st.vars...), nil
}

// Infer runs Phase 2 on one snapshot of per-path observations: solve the
// reduced full-column-rank system Y = R*·X* ordered by the learned
// variances, and report per-link metrics (loss rates under
// ObserveLogTransmission, the clamped linear metric under ObserveLinear;
// eliminated links report 0).
//
// Infer is safe for heavy concurrent use: the Phase-1 state is cached
// across calls and shared lock-free; each call then performs one
// independent least-squares solve. The returned Result is exclusively the
// caller's.
func (e *Engine) Infer(ctx context.Context, y []float64) (*Result, error) {
	if err := checkDim(e.rm, y); err != nil {
		return nil, err
	}
	st, err := e.currentState(ctx)
	if err != nil {
		return nil, err
	}
	x, err := core.SolveReduced(e.rm, st.kept, y)
	if err != nil {
		return nil, fmt.Errorf("lia: phase 2: %w", err)
	}
	// Copy the cached slices: Results outlive state swaps and callers may
	// modify them.
	return core.AssembleResult(
		e.rm, e.opts.Observation,
		append([]float64(nil), st.vars...),
		append([]int(nil), st.kept...),
		append([]int(nil), st.removed...),
		x,
	), nil
}

// InferCongested runs Infer and classifies every virtual link against the
// engine's congestion threshold (see Threshold).
func (e *Engine) InferCongested(ctx context.Context, y []float64) ([]bool, *Result, error) {
	res, err := e.Infer(ctx, y)
	if err != nil {
		return nil, nil, err
	}
	return res.Congested(e.Threshold()), res, nil
}

// CheckIdentifiable verifies that the link variances are identifiable on
// this engine's routing matrix (Theorem 1), returning an error wrapping
// ErrUnidentifiable if the augmented matrix is rank deficient. The check is
// not implied by NewEngine — it costs a rank computation — but running it
// once per topology turns silent minimum-norm fallbacks into a diagnosis.
func (e *Engine) CheckIdentifiable() error {
	if err := e.rm.PrecomputePairSupports(); err != nil {
		return fmt.Errorf("lia: %w", err)
	}
	if r, nc := core.AugmentedRank(e.rm), e.rm.NumLinks(); r < nc {
		return fmt.Errorf("lia: rank(A) = %d < %d links: %w", r, nc, ErrUnidentifiable)
	}
	return nil
}
