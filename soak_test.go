package lia_test

// soak_test.go drives the full resilience chain under deterministic fault
// injection: sim → chaos (drops, duplicates, NaN poison, spikes, transient
// errors, stalls, mid-stream EOFs) → retry → sanitize → windowed engine,
// with concurrent readers hammering the epoch cache. The acceptance bar is
// exact: no panic, monotone epoch progression, and a final estimate
// bitwise-identical to replaying the surviving snapshots through a plain
// engine — chaos may starve the stream, but it must never skew it.

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"lia"
	"lia/chaos"
)

// recordingSource remembers every snapshot it delivers, so the soak test
// can replay the exact survivors through a reference engine.
type recordingSource struct {
	src      lia.SnapshotSource
	recorded [][]float64
}

func (r *recordingSource) Next(ctx context.Context) (lia.Snapshot, error) {
	snap, err := r.src.Next(ctx)
	if err == nil {
		r.recorded = append(r.recorded, append([]float64(nil), snap.Y...))
	}
	return snap, err
}

func TestEngineSoakUnderChaos(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	const total = 400
	base := lia.NewSimSource(rm, lia.SimConfig{Probes: 400, Seed: 42, Snapshots: total})
	chaotic := chaos.New(base, chaos.Config{
		Seed:         7,
		TransientErr: 0.05,
		EOF:          0.02,
		Stall:        0.01,
		StallFor:     time.Millisecond,
		Drop:         0.05,
		Duplicate:    0.05,
		CorruptNaN:   0.03,
		Spike:        0.02,
	})
	hardened := lia.RetrySource(chaotic, lia.RetryPolicy{
		MaxAttempts:    10,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
		Seed:           1,
	})
	san := lia.SanitizeSource(hardened, lia.SanitizeConfig{Dim: rm.NumPaths(), MaxAbs: 100})
	rec := &recordingSource{src: san}

	eng, err := lia.NewEngine(rm, lia.WithWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Concurrent readers: every successful read must observe a
	// non-decreasing epoch; warm-up is the only tolerated error.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			last := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				st, err := eng.Steady(ctx)
				if err != nil {
					if errors.Is(err, lia.ErrTooFewSnapshots) {
						time.Sleep(100 * time.Microsecond)
						continue
					}
					t.Errorf("reader: %v", err)
					return
				}
				if st.Epoch < last {
					t.Errorf("epoch went backwards: %d after %d", st.Epoch, last)
					return
				}
				last = st.Epoch
			}
		}()
	}

	// Consume until the wrapped stream is truly dry: injected mid-stream
	// EOFs end a Consume cleanly, Exhausted distinguishes them from the
	// real one.
	for !chaotic.Exhausted() {
		if _, err := eng.Consume(ctx, rec); err != nil {
			t.Fatalf("consume under chaos: %v", err)
		}
	}
	close(done)
	readers.Wait()

	// The schedule must actually have exercised every fault class.
	cs := chaotic.Stats()
	if cs.Errors == 0 || cs.EOFs == 0 || cs.Stalls == 0 || cs.Drops == 0 ||
		cs.Duplicates == 0 || cs.NaNs == 0 || cs.Spikes == 0 {
		t.Fatalf("fault schedule left a class untested: %+v", cs)
	}
	ss := san.Stats()
	if ss.Quarantined == 0 || ss.NonFinite == 0 {
		t.Fatalf("sanitizer saw no poison: %+v", ss)
	}
	if got := uint64(len(rec.recorded)); got != ss.Passed {
		t.Fatalf("recorded %d snapshots, sanitizer passed %d", got, ss.Passed)
	}
	if eng.Snapshots() != len(rec.recorded) {
		t.Fatalf("engine ingested %d, survivors %d", eng.Snapshots(), len(rec.recorded))
	}
	if st := eng.Stats(); st.Degraded || st.RebuildFailures != 0 {
		t.Fatalf("sanitized chaos must not degrade the engine: %+v", st)
	}

	// Bitwise parity: the chaotic run's final estimate equals a plain
	// engine replaying the surviving snapshots.
	vars, err := eng.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := lia.NewEngine(rm, lia.WithWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.IngestBatch(rec.recorded); err != nil {
		t.Fatal(err)
	}
	want, err := replay.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if math.Float64bits(vars[k]) != math.Float64bits(want[k]) {
			t.Fatalf("link %d: chaotic %g != replay %g (not bitwise)", k, vars[k], want[k])
		}
	}
}
