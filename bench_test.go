// Package lia_test holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation, plus ablation
// benches for the design choices called out in DESIGN.md and micro-benches
// for the linear-algebra kernels.
//
// Every experiment bench regenerates its table (use -v to see the rows) and
// reports the headline quantities as custom benchmark metrics, so a single
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Benches run at a reduced topology scale
// (BenchScale) so the suite completes in minutes; cmd/liasim regenerates
// paper-scale results.
package lia_test

import (
	"context"
	"math/rand/v2"
	"testing"

	"lia"
	"lia/internal/core"
	"lia/internal/experiments"
	"lia/internal/linalg"
	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// BenchScale shrinks the paper-scale topologies for the benchmark suite.
const BenchScale = 0.35

// BenchRuns is the number of repetitions per configuration.
const BenchRuns = 3

func benchConfig() experiments.Config {
	return experiments.Config{Scale: BenchScale, Runs: BenchRuns, Seed: 1}
}

// --- Figures and tables -----------------------------------------------------

func BenchmarkFigure3MeanVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, corr, err := experiments.Figure3(benchConfig(), 120)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(corr, "corr")
		if corr < 0.5 {
			b.Fatalf("mean-variance correlation %.3f violates Assumption S.3", corr)
		}
	}
}

func BenchmarkFigure5DRFPRvsM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last[1], "LIA-DR@m100")
		b.ReportMetric(last[4], "SCFS-DR")
		if last[1] <= last[4] {
			b.Fatalf("LIA (DR %.3f) should beat single-snapshot SCFS (DR %.3f)", last[1], last[4])
		}
	}
}

func BenchmarkFigure6ErrorCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		abs, ef, err := experiments.Figure6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s\n%s", abs, ef)
		// Fraction of links with absolute error ≤ 0.0025 (paper: ≈1.0).
		row := abs.Rows[len(abs.Rows)-4]
		b.ReportMetric(row[1], "CDF@2.5e-3")
	}
}

func BenchmarkTable2Topologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		var minDR = 1.0
		for r := range t.Rows {
			if dr := t.Cell(r, 0); dr < minDR {
				minDR = dr
			}
		}
		b.ReportMetric(minDR, "min-DR")
	}
}

func BenchmarkFigure7EliminationRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		for r := range t.Rows {
			if ratio := t.Cell(r, 0); ratio > 1.0001 {
				b.Fatalf("%s: congested/kept ratio %.3f exceeds 1 — congested links were eliminated",
					t.Labels[r], ratio)
			}
		}
	}
}

func BenchmarkFigure8aVaryP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure8a(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(t.Cell(len(t.Rows)-1, 1), "DR@p25")
	}
}

func BenchmarkFigure8bVaryS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure8b(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(t.Cell(0, 1), "DR@S50")
	}
}

func BenchmarkFigure9CrossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		last := t.Cell(len(t.Rows)-1, 1)
		b.ReportMetric(last, "consistent%@m100")
		if last < 80 {
			b.Fatalf("cross-validation consistency %.1f%% too low (paper: >95%%)", last)
		}
	}
}

func BenchmarkTable3ASLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(t.Cell(len(t.Rows)-1, 1), "interAS%@tl0.01")
	}
}

func BenchmarkCongestionDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.CongestionDurations(benchConfig(), 25, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(t.Cell(0, 0), "one-snapshot%")
	}
}

// --- Section 6.4 running-time benches ---------------------------------------

// benchWorkload builds the planetlab-like workload once per bench.
func benchWorkload(b *testing.B) (*experiments.Workload, []experiments.SnapshotRecord) {
	b.Helper()
	cfg := benchConfig()
	rng := rand.New(rand.NewPCG(1, 12))
	w, err := experiments.MakeWorkload("planetlab", cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	series := experiments.SimulateSeries(w, cfg, 12, 51)
	return w, series
}

func BenchmarkAugmentedBuild(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gr := core.NewGram(w.RM.NumLinks())
		core.VisitPairs(w.RM, func(pi, pj int, support []int32) {
			if len(support) > 0 {
				gr.AddEquation(support, 0)
			}
		})
	}
}

func BenchmarkSolveFirstOrder(b *testing.B) {
	// Phase 1: the variance solve of eq. (8) — "solved within seconds for
	// networks with thousands of nodes".
	w, series := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := core.New(w.RM, core.Options{})
		for t := 0; t < 50; t++ {
			l.AddSnapshot(series[t].Snap.LogRates())
		}
		if _, err := l.Variances(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveReduced(b *testing.B) {
	// Phase 2: eliminating and solving eq. (9) — "about 10 times longer".
	w, series := benchWorkload(b)
	l := core.New(w.RM, core.Options{})
	for t := 0; t < 50; t++ {
		l.AddSnapshot(series[t].Snap.LogRates())
	}
	if _, err := l.Variances(); err != nil {
		b.Fatal(err)
	}
	y := series[50].Snap.LogRates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Infer(y); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md design choices) ----------------------------

func ablationRun(b *testing.B, cfg experiments.Config) stats.Detection {
	b.Helper()
	rng := rand.New(rand.NewPCG(cfg.Seed, 77))
	w, err := experiments.MakeWorkload("tree", cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	r, err := experiments.RunOnce(w, cfg, 77)
	if err != nil {
		b.Fatal(err)
	}
	return r.LIA.Det
}

func BenchmarkAblationVarianceSolver(b *testing.B) {
	for _, method := range []core.VarianceMethod{core.VarianceDenseQR, core.VarianceNormalEquations} {
		b.Run(method.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Scale = 0.2 // dense QR is the expensive leg
			cfg.Variance.Method = method
			for i := 0; i < b.N; i++ {
				det := ablationRun(b, cfg)
				b.ReportMetric(det.DR, "DR")
			}
		})
	}
}

func BenchmarkAblationElimination(b *testing.B) {
	for _, strat := range []core.Elimination{core.EliminatePaperSequential, core.EliminateGreedyBasis} {
		b.Run(strat.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Strategy = strat
			for i := 0; i < b.N; i++ {
				det := ablationRun(b, cfg)
				b.ReportMetric(det.DR, "DR")
				b.ReportMetric(det.FPR, "FPR")
			}
		})
	}
}

func BenchmarkAblationLossProcess(b *testing.B) {
	// Paper: "we also run simulations with Bernoulli losses, but the
	// differences are insignificant."
	for _, kind := range []lossmodel.ProcessKind{lossmodel.Gilbert, lossmodel.Bernoulli} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Kind = kind
			cfg.Fidelity = experiments.FidelityPacketShared
			for i := 0; i < b.N; i++ {
				det := ablationRun(b, cfg)
				b.ReportMetric(det.DR, "DR")
			}
		})
	}
}

func BenchmarkAblationS1Sharing(b *testing.B) {
	// Assumption S.1 exact (shared link state) vs approximate (independent
	// per-(path,link) processes) vs link-level aggregation.
	for _, f := range []experiments.Fidelity{
		experiments.FidelityExact,
		experiments.FidelityPacketShared,
		experiments.FidelityPacketPerPath,
	} {
		b.Run(f.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Fidelity = f
			for i := 0; i < b.N; i++ {
				det := ablationRun(b, cfg)
				b.ReportMetric(det.DR, "DR")
				b.ReportMetric(det.FPR, "FPR")
			}
		})
	}
}

func BenchmarkAblationNegativeCovPolicy(b *testing.B) {
	for _, pol := range []core.NegativeCovPolicy{core.ClampNegativeCov, core.DropNegativeCov, core.KeepNegativeCov} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Variance.NegPolicy = pol
			for i := 0; i < b.N; i++ {
				det := ablationRun(b, cfg)
				b.ReportMetric(det.DR, "DR")
				b.ReportMetric(det.FPR, "FPR")
			}
		})
	}
}

func BenchmarkAblationGoodRateShape(b *testing.B) {
	for _, g := range []lossmodel.GoodRateShape{lossmodel.GoodNearZero, lossmodel.GoodUniform} {
		b.Run(g.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Good = g
			for i := 0; i < b.N; i++ {
				det := ablationRun(b, cfg)
				b.ReportMetric(det.FPR, "FPR")
			}
		})
	}
}

// --- Substrate micro-benches -------------------------------------------------

func BenchmarkPivotedQRRank(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 3))
	m := linalg.NewDense(300, 200)
	for i := 0; i < 300; i++ {
		for j := 0; j < 200; j++ {
			if rng.Float64() < 0.05 {
				m.Set(i, j, 1)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.Rank(m)
	}
}

func BenchmarkGilbertProcess(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 5))
	proc := lossmodel.NewProcess(lossmodel.Gilbert, 0.1, lossmodel.DefaultPStayBad, rng)
	b.ResetTimer()
	drops := 0
	for i := 0; i < b.N; i++ {
		if proc.Drop(rng) {
			drops++
		}
	}
	_ = drops
}

func BenchmarkSnapshotSimulation(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 7))
	net := topogen.Tree(rng, 200, 10)
	paths := topogen.Routes(net, []int{0}, net.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		b.Fatal(err)
	}
	scen := lossmodel.NewScenario(lossmodel.Config{Fraction: 0.1}, rng, rm.NumLinks())
	for _, mode := range []netsim.Mode{netsim.ModeExact, netsim.ModePacketShared, netsim.ModePacketPerPath} {
		b.Run(mode.String(), func(b *testing.B) {
			sim := netsim.New(rm, netsim.Config{Probes: 1000, Seed: 1, Mode: mode})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(scen.Rates())
			}
		})
	}
}

func BenchmarkCovarianceAccumulate(b *testing.B) {
	rng := rand.New(rand.NewPCG(8, 9))
	const dim = 300
	y := make([]float64, dim)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	acc := stats.NewCovAccumulator(dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Add(y)
	}
}

// --- Parallel Phase-1 pipeline benches ---------------------------------------

// benchCov accumulates the learning snapshots of the planetlab-like workload
// into covariance moments, the input of EstimateVariances.
func benchCov(b *testing.B, w *experiments.Workload, series []experiments.SnapshotRecord) *stats.CovAccumulator {
	b.Helper()
	acc := stats.NewCovAccumulator(w.RM.NumPaths())
	for t := 0; t < 50; t++ {
		acc.Add(series[t].Snap.LogRates())
	}
	return acc
}

// BenchmarkEstimateVariances measures Phase 1 proper (the Σ* = A·v solve)
// for both solver methods, serial vs sharded. Workers=0 sizes the pool to
// GOMAXPROCS; compare the serial and parallel rows, and run with -cpu to
// scale the pool.
func BenchmarkEstimateVariances(b *testing.B) {
	w, series := benchWorkload(b)
	acc := benchCov(b, w, series)
	w.RM.PrecomputePairSupports() // one-time index build is not timed here
	for _, cfg := range []struct {
		name string
		opts core.VarianceOptions
	}{
		{"normal/serial", core.VarianceOptions{Method: core.VarianceNormalEquations, Workers: 1}},
		{"normal/parallel", core.VarianceOptions{Method: core.VarianceNormalEquations, Workers: 0}},
		{"dense/serial", core.VarianceOptions{Method: core.VarianceDenseQR, Workers: 1}},
		{"dense/parallel", core.VarianceOptions{Method: core.VarianceDenseQR, Workers: 0}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateVariances(w.RM, acc, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVisitPairs measures the steady-state augmented-row enumeration —
// an index walk over the cached pair supports.
func BenchmarkVisitPairs(b *testing.B) {
	w, _ := benchWorkload(b)
	w.RM.PrecomputePairSupports() // one-time index build is not timed here
	b.ReportAllocs()
	b.ResetTimer()
	links := 0
	for i := 0; i < b.N; i++ {
		core.VisitPairs(w.RM, func(pi, pj int, support []int32) {
			links += len(support)
		})
	}
	_ = links
}

// --- Incremental-rebuild benches ----------------------------------------------

// benchRebuildWorkload builds the incremental-rebuild scale target: a
// 600-path tree (180 300 augmented pairs) with synthetic Gaussian snapshot
// moments, the regime a long-running engine rebuilds in.
func benchRebuildWorkload(b *testing.B) (*topology.RoutingMatrix, *stats.CovAccumulator) {
	b.Helper()
	rng := rand.New(rand.NewPCG(42, 1))
	net := topogen.Tree(rng, 1600, 6)
	if len(net.Hosts) < 600 {
		b.Fatalf("tree has %d hosts, need 600", len(net.Hosts))
	}
	paths := topogen.Routes(net, []int{0}, net.Hosts[:600])
	rm, err := topology.Build(paths)
	if err != nil {
		b.Fatal(err)
	}
	if rm.NumPaths() != 600 {
		b.Fatalf("workload has %d paths, want 600", rm.NumPaths())
	}
	truth := make([]float64, rm.NumLinks())
	for k := range truth {
		if rng.Float64() < 0.1 {
			truth[k] = 0.005 + 0.02*rng.Float64()
		} else {
			truth[k] = 1e-6 * rng.Float64()
		}
	}
	acc := stats.NewCovAccumulator(rm.NumPaths())
	x := make([]float64, rm.NumLinks())
	y := make([]float64, rm.NumPaths())
	for t := 0; t < 60; t++ {
		for k := range x {
			x[k] = rng.NormFloat64() * truth[k]
		}
		for i := range y {
			y[i] = 0
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		acc.Add(y)
	}
	return rm, acc
}

// BenchmarkEngineRebuild measures one Phase-1 rebuild under the default
// clamp policy at the 600-path scale:
//
//   - cold: the from-scratch path — Gram accumulation over all 180 300
//     pairs plus the O(nc³) Cholesky factorization (what every rebuild cost
//     before the cached factorization);
//   - warm: the incremental path — core.Phase1 with its topology-only
//     factor already cached, paying only the right-hand-side fold and two
//     triangular solves.
//
// The two are bitwise-identical by construction; the benchmark asserts it
// before timing. The one-time pair-index build is excluded from both.
func BenchmarkEngineRebuild(b *testing.B) {
	rm, acc := benchRebuildWorkload(b)
	if err := rm.PrecomputePairSupports(); err != nil {
		b.Fatal(err)
	}
	opts := core.VarianceOptions{} // Auto resolves to normal equations at this scale
	p1 := core.NewPhase1(rm, opts)
	cold, err := core.EstimateVariances(rm, acc, opts)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := p1.Estimate(acc) // first call builds the cached factor
	if err != nil {
		b.Fatal(err)
	}
	if !p1.Warm() {
		b.Fatal("Phase1 did not cache the factorization under the clamp policy")
	}
	for k := range cold {
		if cold[k] != warm[k] {
			b.Fatalf("link %d: warm rebuild %g != cold rebuild %g (not bitwise identical)", k, warm[k], cold[k])
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.EstimateVariances(rm, acc, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p1.Estimate(acc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineEpochRebuild measures the full per-epoch cost of a
// long-running serving engine at the 600-path scale: one Ingest plus the
// lazy state rebuild an inference then pays (warm Phase-1 estimate +
// Phase-2). With the ordering-keyed elimination cache the Phase-2 rank
// search — which dominates warm rebuilds — is skipped whenever one more
// snapshot leaves the variance ordering unchanged; the "eliminate" sub-bench
// reports what each cache hit saves. The benchmark asserts every timed
// rebuild actually hit the cache.
func BenchmarkEngineEpochRebuild(b *testing.B) {
	rm, acc := benchRebuildWorkload(b)
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(43, 7))
	y := make([]float64, rm.NumPaths())
	for i := range y {
		y[i] = -1e-4 * rng.Float64()
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < 60; t++ {
		if err := eng.Ingest(y); err != nil { // content is irrelevant to the timing
			b.Fatal(err)
		}
	}
	if _, err := eng.Variances(ctx); err != nil {
		b.Fatal(err)
	}
	b.Run("reuse", func(b *testing.B) {
		before := eng.Stats()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.Ingest(y); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Variances(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		after := eng.Stats()
		if got := after.ElimReuses - before.ElimReuses; got != uint64(b.N) {
			b.Fatalf("elimination cache hit %d of %d rebuilds", got, b.N)
		}
	})
	b.Run("eliminate", func(b *testing.B) {
		vars, err := core.EstimateVariances(rm, acc, core.VarianceOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.EliminateWorkers(rm, vars, core.EliminatePaperSequential, 0)
		}
	})
}

// --- Sharded-engine benches ----------------------------------------------------

// benchShardedWorkload builds the sharding scale target: four link-disjoint
// 150-path trees in one 600-path routing matrix. Every path of a tree
// shares the tree's root uplink, so each tree is exactly one link-connected
// component — and at 150 paths each component's Auto solver resolves to the
// cacheable normal-equations path, the serving regime. The unsharded engine
// walks all 180 300 augmented pairs per rebuild; the partitioned engine
// walks 4 × 11 325 (cross-component pairs have empty supports and vanish)
// and rebuilds the components on separate cores.
func benchShardedWorkload(b testing.TB) (*topology.RoutingMatrix, []float64) {
	b.Helper()
	const comps = 4
	var paths []topology.Path
	for c := 0; c < comps; c++ {
		rng := rand.New(rand.NewPCG(42, uint64(c)))
		net := topogen.Tree(rng, 400, 6)
		if len(net.Hosts) < 150 {
			b.Fatalf("component %d tree has %d hosts, need 150", c, len(net.Hosts))
		}
		base := c * 10_000_000 // link-disjoint components
		for _, p := range topogen.Routes(net, []int{0}, net.Hosts[:150]) {
			links := make([]int, 0, len(p.Links)+1)
			links = append(links, base) // shared root uplink joins the tree
			for _, l := range p.Links {
				links = append(links, base+1+l)
			}
			paths = append(paths, topology.Path{
				Beacon: p.Beacon + base,
				Dst:    p.Dst + 1 + base,
				Links:  links,
			})
		}
	}
	rm, err := topology.Build(paths)
	if err != nil {
		b.Fatal(err)
	}
	if rm.NumPaths() != comps*150 {
		b.Fatalf("workload has %d paths, want %d", rm.NumPaths(), comps*150)
	}
	rng := rand.New(rand.NewPCG(43, 7))
	y := make([]float64, rm.NumPaths())
	for i := range y {
		y[i] = -1e-4 * rng.Float64()
	}
	return rm, y
}

// BenchmarkShardedEngineRebuild measures the steady-state per-epoch rebuild
// (one Ingest plus the state recomputation the next query pays) at the
// 600-path four-component scale, unsharded vs sharded. Before timing it
// asserts the sharded estimates are bitwise-identical across shard counts —
// the scheduling never changes the answer — so the CI scaling job can
// compare ns/op across GOMAXPROCS knowing the work is the same.
func BenchmarkShardedEngineRebuild(b *testing.B) {
	rm, y := benchShardedWorkload(b)
	ctx := context.Background()
	warm := func(b *testing.B, eng lia.Inferencer) {
		b.Helper()
		for t := 0; t < 60; t++ {
			if err := eng.Ingest(y); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eng.Variances(ctx); err != nil {
			b.Fatal(err)
		}
	}
	se1, err := lia.NewShardedEngine(rm, lia.WithShards(1))
	if err != nil {
		b.Fatal(err)
	}
	se4, err := lia.NewShardedEngine(rm, lia.WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	warm(b, se1)
	warm(b, se4)
	v1, err := se1.Variances(ctx)
	if err != nil {
		b.Fatal(err)
	}
	v4, err := se4.Variances(ctx)
	if err != nil {
		b.Fatal(err)
	}
	for k := range v1 {
		if v1[k] != v4[k] {
			b.Fatalf("link %d: 1-shard estimate %g != 4-shard estimate %g (not bitwise identical)", k, v1[k], v4[k])
		}
	}
	bench := func(eng lia.Inferencer) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.Ingest(y); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Variances(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	un, err := lia.NewEngine(rm)
	if err != nil {
		b.Fatal(err)
	}
	warm(b, un)
	b.Run("unsharded", bench(un))
	b.Run("sharded", bench(se4))
}

// benchDeltaWorkload builds the steady-state delta target: twenty-four
// link-disjoint 25-path trees in one 600-path routing matrix. Many small
// components is the serving regime the O(delta) path exists for — beacon
// domains mostly quiet, traffic localized — so an epoch that touches one
// component can skip twenty-three.
func benchDeltaWorkload(b testing.TB) *topology.RoutingMatrix {
	b.Helper()
	const comps, compPaths = 24, 25
	var paths []topology.Path
	for c := 0; c < comps; c++ {
		rng := rand.New(rand.NewPCG(52, uint64(c)))
		net := topogen.Tree(rng, 100, 4)
		if len(net.Hosts) < compPaths {
			b.Fatalf("component %d tree has %d hosts, need %d", c, len(net.Hosts), compPaths)
		}
		base := c * 10_000_000 // link-disjoint components
		for _, p := range topogen.Routes(net, []int{0}, net.Hosts[:compPaths]) {
			links := make([]int, 0, len(p.Links)+1)
			links = append(links, base) // shared root uplink joins the tree
			for _, l := range p.Links {
				links = append(links, base+1+l)
			}
			paths = append(paths, topology.Path{
				Beacon: p.Beacon + base,
				Dst:    p.Dst + 1 + base,
				Links:  links,
			})
		}
	}
	rm, err := topology.Build(paths)
	if err != nil {
		b.Fatal(err)
	}
	if rm.NumPaths() != comps*compPaths {
		b.Fatalf("workload has %d paths, want %d", rm.NumPaths(), comps*compPaths)
	}
	return rm
}

// BenchmarkEngineDeltaRebuild measures the O(delta) steady-state epoch at
// the 600-path scale (24 components of 25 paths), with windowed moments
// (constant divisor — the regime the incremental RHS fold exists for):
//
//   - cold: a from-scratch rebuild wave — full Phase-1 fold, Cholesky and
//     elimination for all twenty-four components (engine construction and
//     window fill are excluded from the timing);
//   - alldirty: warm epoch where a full snapshot dirties every component —
//     delta folds run but must refold every shard;
//   - dirty1: warm epoch where a sparse snapshot covers only component 0 —
//     twenty-three components skip Phase-1 outright and only comp0's dirty
//     pair shards refold. This is the sub-millisecond CI gate target;
//   - rebalance: alldirty with the LPT rebalancer at theta=0, so every wave
//     also pays cost-EWMA bookkeeping and a candidate-grouping evaluation.
//
// Before timing, dirty1 asserts its sparse-fed component is bitwise-equal
// to a standalone windowed engine fed the same rows; after timing it
// asserts the wave really skipped the untouched components.
func BenchmarkEngineDeltaRebuild(b *testing.B) {
	rm := benchDeltaWorkload(b)
	ctx := context.Background()
	const window = 64
	pool := make([][]float64, 128) // distinct snapshots so every epoch moves the window
	rng := rand.New(rand.NewPCG(44, 9))
	for t := range pool {
		y := make([]float64, rm.NumPaths())
		for i := range y {
			y[i] = -1e-4 * rng.Float64()
		}
		pool[t] = y
	}
	// At 25 paths per component VarianceAuto would pick dense QR, which has
	// no incremental path; pin the cacheable normal-equations solver — the
	// method any long-running deployment at scale resolves to — so the
	// benchmark exercises the delta fold it exists to measure.
	newEngine := func(b *testing.B, opts ...lia.Option) *lia.ShardedEngine {
		b.Helper()
		se, err := lia.NewShardedEngine(rm, append([]lia.Option{
			lia.WithShards(4),
			lia.WithWindow(window),
			lia.WithVarianceMethod(lia.VarianceNormalEquations),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		return se
	}
	fill := func(b *testing.B, se *lia.ShardedEngine) {
		b.Helper()
		for t := 0; t < window; t++ {
			if err := se.Ingest(pool[t%len(pool)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	warm := func(b *testing.B, se *lia.ShardedEngine) {
		b.Helper()
		fill(b, se)
		if _, err := se.Variances(ctx); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			se := newEngine(b)
			fill(b, se)
			b.StartTimer()
			if _, err := se.Variances(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("alldirty", func(b *testing.B) {
		se := newEngine(b)
		warm(b, se)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := se.Ingest(pool[i%len(pool)]); err != nil {
				b.Fatal(err)
			}
			if _, err := se.Variances(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := se.Stats(); st.DeltaRebuilds == 0 {
			b.Fatal("windowed warm epochs never took the delta fold")
		}
	})

	b.Run("dirty1", func(b *testing.B) {
		se := newEngine(b)
		part := topology.NewPartition(rm)
		ncomps := part.NumComponents()
		comp0 := part.Component(0)
		// Steady-state traffic localized to one beacon domain: every epoch
		// delivers fresh rows for component 0's paths only, so the other
		// twenty-three components skip Phase-1 (and Phase-2) outright and
		// comp0 pays one small delta fold plus its own solve.
		sub := make([]float64, len(comp0.Paths))
		variant := func(t int) []float64 {
			hrng := rand.New(rand.NewPCG(45, uint64(t)))
			for pl := range sub {
				sub[pl] = -1e-4 * hrng.Float64()
			}
			return sub
		}
		sparse := func(b *testing.B, t int) {
			b.Helper()
			if err := se.IngestSparse(comp0.Paths, variant(t)); err != nil {
				b.Fatal(err)
			}
		}
		// Parity: the sparse-fed component must stay bitwise-equal to a
		// standalone windowed engine over its paths alone.
		cpaths := make([]lia.Path, len(comp0.Paths))
		for pl, pg := range comp0.Paths {
			cpaths[pl] = rm.Path(pg)
		}
		crm, err := lia.NewTopology(cpaths)
		if err != nil {
			b.Fatal(err)
		}
		ref, err := lia.NewEngine(crm,
			lia.WithWindow(window), lia.WithVarianceMethod(lia.VarianceNormalEquations))
		if err != nil {
			b.Fatal(err)
		}
		refIngest := func(b *testing.B, y []float64) {
			b.Helper()
			proj := make([]float64, len(comp0.Paths))
			for pl, pg := range comp0.Paths {
				proj[pl] = y[pg]
			}
			if err := ref.Ingest(proj); err != nil {
				b.Fatal(err)
			}
		}
		for t := 0; t < window; t++ {
			if err := se.Ingest(pool[t%len(pool)]); err != nil {
				b.Fatal(err)
			}
			refIngest(b, pool[t%len(pool)])
		}
		if _, err := se.Variances(ctx); err != nil {
			b.Fatal(err)
		}
		for t := 0; t < 3; t++ {
			sparse(b, t)
			if err := ref.Ingest(sub); err != nil {
				b.Fatal(err)
			}
		}
		vars, err := se.Variances(ctx)
		if err != nil {
			b.Fatal(err)
		}
		want, err := ref.Variances(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for kl := 0; kl < crm.NumLinks(); kl++ {
			kg, ok := rm.VirtualOf(crm.Members(kl)[0])
			if !ok {
				b.Fatalf("component link %d lost its global identity", kl)
			}
			if vars[kg] != want[kl] {
				b.Fatalf("link %d: sparse-fed %g != reference %g (not bitwise identical)", kg, vars[kg], want[kl])
			}
		}
		before := se.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sparse(b, 3+i)
			if _, err := se.Variances(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := se.Stats()
		if st.DirtyComponents != 1 {
			b.Fatalf("DirtyComponents = %d, want 1 (%d components must skip)", st.DirtyComponents, ncomps-1)
		}
		if st.DirtyShards != 1 {
			b.Fatalf("DirtyShards = %d, want 1 rebuild group of 4", st.DirtyShards)
		}
		if got := st.DeltaRebuilds - before.DeltaRebuilds; got != uint64(b.N) {
			b.Fatalf("delta fold ran on %d of %d warm epochs", got, b.N)
		}
		if got := st.SkippedComponents - before.SkippedComponents; got != uint64(b.N*(ncomps-1)) {
			b.Fatalf("skipped %d component rebuilds over %d warm epochs, want %d", got, b.N, b.N*(ncomps-1))
		}
	})

	b.Run("rebalance", func(b *testing.B) {
		se := newEngine(b, lia.WithRebalance(0))
		warm(b, se)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := se.Ingest(pool[i%len(pool)]); err != nil {
				b.Fatal(err)
			}
			if _, err := se.Variances(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPairIndexBuild measures the one-time cost of constructing the
// cached pair-support index on a fresh routing matrix.
func BenchmarkPairIndexBuild(b *testing.B) {
	w, _ := benchWorkload(b)
	paths := make([]topology.Path, w.RM.NumPaths())
	for i := range paths {
		paths[i] = w.RM.Path(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rm, err := topology.Build(paths)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rm.PrecomputePairSupports()
	}
}

// BenchmarkSourceWrappers measures the per-snapshot cost the resilience
// combinators add to a healthy stream: the same simulator source consumed
// raw, behind RetrySource, and behind the full RetrySource+SanitizeSource
// chain liaserve installs. With no faults to absorb, a retry attempt is one
// delegated Next and the sanitizer one finite-check pass over the vector,
// so the wrapped rows should sit within noise of the raw row — the paper's
// inference math, not the armor, dominates the ingest path.
func BenchmarkSourceWrappers(b *testing.B) {
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sources := []struct {
		name string
		make func() lia.SnapshotSource
	}{
		{"raw", func() lia.SnapshotSource {
			return lia.NewSimSource(rm, lia.SimConfig{Probes: 400, Seed: 42})
		}},
		{"retry", func() lia.SnapshotSource {
			base := lia.NewSimSource(rm, lia.SimConfig{Probes: 400, Seed: 42})
			return lia.RetrySource(base, lia.RetryPolicy{MaxAttempts: 10, Seed: 1})
		}},
		{"retry+sanitize", func() lia.SnapshotSource {
			base := lia.NewSimSource(rm, lia.SimConfig{Probes: 400, Seed: 42})
			hardened := lia.RetrySource(base, lia.RetryPolicy{MaxAttempts: 10, Seed: 1})
			return lia.SanitizeSource(hardened, lia.SanitizeConfig{Dim: rm.NumPaths(), MaxAbs: 100})
		}},
	}
	for _, tc := range sources {
		b.Run(tc.name, func(b *testing.B) {
			src := tc.make()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := src.Next(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
