package lia

import (
	"fmt"
	"sync"

	"lia/internal/core"
	"lia/internal/stats"
)

// Watcher tracks routing-matrix membership changes incrementally — the
// §5.1 update path for beacons that depart, return, or reroute: "only the
// rows corresponding to the changes need to be updated". Deactivating a
// path removes its O(np) covariance equations from the maintained normal
// equations instead of rebuilding the O(np²) system, and the variances stay
// solvable over the remaining active paths.
//
// A Watcher snapshots the engine's learning moments at creation (and on
// Refresh); it does not observe later Ingest calls. The snapshot honours
// the engine's moment configuration — a WithWindow or WithDecay engine
// hands the watcher its windowed/decayed covariances, so a long-running
// deployment's beacon-churn watcher tracks regime changes exactly like the
// engine's own Phase 1 does. Use Stale / RefreshIfStale to follow the
// stream. A Watcher is safe for concurrent use.
type Watcher struct {
	eng *Engine

	mu      sync.Mutex
	learner *core.IncrementalLearner
	cov     stats.CovView
	epoch   uint64 // engine ingestion epoch the moments were snapped at
	active  []bool
}

// Watch creates a watcher over the engine's current learning moments. It
// requires at least two ingested snapshots (ErrTooFewSnapshots otherwise).
func (e *Engine) Watch() (*Watcher, error) {
	cov, epoch := e.momentsView()
	learner, err := core.NewIncrementalLearner(e.rm, cov, e.opts.Variance)
	if err != nil {
		return nil, fmt.Errorf("lia: watch: %w", err)
	}
	active := make([]bool, e.rm.NumPaths())
	for i := range active {
		active[i] = true
	}
	return &Watcher{eng: e, learner: learner, cov: cov, epoch: epoch, active: active}, nil
}

// Deactivate removes every covariance equation involving path i — the
// update for a departed beacon or a rerouted path.
func (w *Watcher) Deactivate(path int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.learner.DeactivatePath(path); err != nil {
		return fmt.Errorf("lia: watch: %w", err)
	}
	w.active[path] = false
	return nil
}

// Reactivate restores the equations of a previously deactivated path using
// the moments the watcher was created (or last refreshed) with.
func (w *Watcher) Reactivate(path int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.learner.ReactivatePath(path, w.cov); err != nil {
		return fmt.Errorf("lia: watch: %w", err)
	}
	w.active[path] = true
	return nil
}

// Refresh re-snapshots the engine's learning moments and rebuilds the
// maintained system over them, preserving the current active set. On a
// WithWindow/WithDecay engine this is how the watcher follows regime
// changes: the refreshed system covers exactly the engine's current
// (windowed or decayed) moments, not all history.
func (w *Watcher) Refresh() error {
	cov, epoch := w.eng.momentsView()
	learner, err := core.NewIncrementalLearner(w.eng.rm, cov, w.eng.opts.Variance)
	if err != nil {
		return fmt.Errorf("lia: watch refresh: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, on := range w.active {
		if !on {
			if err := learner.DeactivatePath(i); err != nil {
				return fmt.Errorf("lia: watch refresh: %w", err)
			}
		}
	}
	w.learner, w.cov, w.epoch = learner, cov, epoch
	return nil
}

// Epoch returns the engine ingestion epoch the watcher's moments were
// snapped at (by Watch or the last Refresh).
func (w *Watcher) Epoch() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int(w.epoch)
}

// Stale reports whether the engine has ingested snapshots the watcher's
// moments do not cover yet.
func (w *Watcher) Stale() bool {
	w.mu.Lock()
	epoch := w.epoch
	w.mu.Unlock()
	return w.eng.epoch.Load() > epoch
}

// RefreshIfStale refreshes only when the engine has ingested new snapshots
// since the watcher's moments were snapped, and reports whether it did. A
// long-running server calls this on its rebuild cadence so the watcher's
// windowed or decayed moments keep tracking the live stream without paying
// for redundant rebuilds.
func (w *Watcher) RefreshIfStale() (bool, error) {
	if !w.Stale() {
		return false, nil
	}
	if err := w.Refresh(); err != nil {
		return false, err
	}
	return true, nil
}

// Variances solves the maintained system for the per-link variances over
// the active paths. Links covered only by inactive paths come out near
// zero; mask them with Covered.
func (w *Watcher) Variances() ([]float64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	v, err := w.learner.Variances()
	if err != nil {
		return nil, fmt.Errorf("lia: watch: %w", err)
	}
	return v, nil
}

// Covered reports which virtual links are traversed by at least one active
// path.
func (w *Watcher) Covered() []bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.learner.CoveredLinks()
}

// Active reports whether path i currently contributes equations.
func (w *Watcher) Active(path int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return path >= 0 && path < len(w.active) && w.active[path]
}

// Equations returns the number of covariance equations currently folded
// into the maintained system.
func (w *Watcher) Equations() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.learner.Equations()
}
