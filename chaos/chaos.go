// Package chaos injects deterministic faults into lia snapshot streams —
// the adversary the resilience layer is tested against.
//
// A chaos.Source wraps any lia.SnapshotSource with a seeded schedule of
// the failure modes a production collector path exhibits: dropped
// snapshots, duplicated deliveries, corrupted values (NaN poison and
// amplitude spikes), stalls, transient errors, and mid-stream EOFs. The
// schedule is a pure function of Config.Seed and the call sequence, so a
// soak test replays bit-identically: the same seed produces the same
// faults at the same positions, every run, on every machine.
//
// Fault probabilities compose in a fixed evaluation order per Next call —
// transient error, mid-stream EOF, stall, then per-delivered-snapshot
// drop, duplicate, corruption — each consuming its random draws whether or
// not it fires, which is what keeps downstream faults aligned across runs
// when an upstream probability is tuned to zero.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"lia"
)

// ErrInjected is the transient failure chaos.Source returns on an
// error-injection tick, wrapped with the tick index; test with errors.Is.
var ErrInjected = errors.New("chaos: injected transient error")

// Config is the fault schedule of a Source. All probabilities are per
// Next call (or per delivered snapshot, where noted) in [0, 1]; zero
// values disable the corresponding fault, so the zero Config is a
// transparent pass-through.
type Config struct {
	// Seed drives the whole schedule; the same seed reproduces the same
	// fault sequence bit-for-bit.
	Seed uint64

	// TransientErr is the probability that Next fails with an error
	// wrapping ErrInjected instead of delivering (the source stays usable;
	// the snapshot is not consumed from the wrapped stream).
	TransientErr float64

	// EOF is the probability that Next reports a mid-stream io.EOF. A
	// consumer like Engine.Consume treats it as exhaustion and returns
	// cleanly; calling Next again resumes the stream — exactly the
	// truncated-connection behaviour a TCP collector feed exhibits. Use
	// Exhausted to distinguish injected EOFs from the real one.
	EOF float64

	// Stall is the probability that Next sleeps StallFor before
	// proceeding (honouring context cancellation during the stall).
	Stall float64

	// StallFor is the stall duration (default 10ms).
	StallFor time.Duration

	// Drop is the probability that a snapshot pulled from the wrapped
	// source is discarded and the next one delivered instead.
	Drop float64

	// Duplicate is the probability that the previously delivered snapshot
	// is delivered again instead of pulling a new one.
	Duplicate float64

	// CorruptNaN is the probability that one entry of the delivered
	// vector is replaced with NaN (on a private copy; the wrapped
	// source's backing array is never touched).
	CorruptNaN float64

	// Spike is the probability that one entry is multiplied by
	// SpikeFactor — the corrupted-magnitude case NaN checks miss.
	Spike float64

	// SpikeFactor is the spike multiplier (default 1e6).
	SpikeFactor float64
}

// Stats counts the faults a Source has injected, by kind.
type Stats struct {
	Delivered  uint64 // snapshots handed to the consumer
	Errors     uint64 // transient errors returned
	EOFs       uint64 // mid-stream EOFs returned
	Stalls     uint64
	Drops      uint64
	Duplicates uint64
	NaNs       uint64
	Spikes     uint64
}

// Source wraps a lia.SnapshotSource with the configured fault schedule.
// Like every source in package lia it serialises internally and is safe to
// hand between goroutines (one consumer at a time). It implements
// io.Closer, propagating Close to the wrapped source.
type Source struct {
	src lia.SnapshotSource
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	tick      uint64
	prev      []float64 // last delivered vector (for duplicates), owned copy
	exhausted bool      // the wrapped source reported the real io.EOF
	stats     Stats
}

// New wraps src with the fault schedule in cfg.
func New(src lia.SnapshotSource, cfg Config) *Source {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 10 * time.Millisecond
	}
	if cfg.SpikeFactor == 0 {
		cfg.SpikeFactor = 1e6
	}
	return &Source{
		src: src,
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0xC4405)),
	}
}

// Next implements lia.SnapshotSource, applying the fault schedule.
func (s *Source) Next(ctx context.Context) (lia.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	// Pre-delivery faults. Every branch consumes its draw unconditionally
	// so the schedule downstream stays aligned when probabilities change.
	injectErr := s.rng.Float64() < s.cfg.TransientErr
	injectEOF := s.rng.Float64() < s.cfg.EOF
	stall := s.rng.Float64() < s.cfg.Stall
	dup := s.rng.Float64() < s.cfg.Duplicate
	if injectErr {
		s.stats.Errors++
		return lia.Snapshot{}, fmt.Errorf("%w (tick %d)", ErrInjected, s.tick)
	}
	if injectEOF && !s.exhausted {
		s.stats.EOFs++
		return lia.Snapshot{}, io.EOF
	}
	if stall {
		s.stats.Stalls++
		timer := time.NewTimer(s.cfg.StallFor)
		select {
		case <-ctx.Done():
			timer.Stop()
			return lia.Snapshot{}, ctx.Err()
		case <-timer.C:
		}
	}
	if dup && s.prev != nil {
		s.stats.Duplicates++
		s.stats.Delivered++
		return lia.Snapshot{Y: append([]float64(nil), s.prev...)}, nil
	}
	for {
		snap, err := s.src.Next(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) {
				s.exhausted = true
			}
			return lia.Snapshot{}, err
		}
		if s.rng.Float64() < s.cfg.Drop {
			s.stats.Drops++
			continue
		}
		return s.deliver(snap), nil
	}
}

// deliver applies value corruption to a private copy and records the
// delivered vector for later duplication. Caller holds s.mu.
func (s *Source) deliver(snap lia.Snapshot) lia.Snapshot {
	y := append([]float64(nil), snap.Y...)
	if len(y) > 0 {
		if s.rng.Float64() < s.cfg.CorruptNaN {
			y[s.rng.IntN(len(y))] = math.NaN()
			s.stats.NaNs++
		}
		if s.rng.Float64() < s.cfg.Spike {
			y[s.rng.IntN(len(y))] *= s.cfg.SpikeFactor
			s.stats.Spikes++
		}
	}
	s.prev = y
	s.stats.Delivered++
	return lia.Snapshot{Y: y, Truth: snap.Truth}
}

// Exhausted reports whether the wrapped source has returned its real
// io.EOF — the signal that distinguishes a finished stream from an
// injected mid-stream EOF, so resilient consumers know when to stop
// re-consuming.
func (s *Source) Exhausted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exhausted
}

// Stats returns the fault counters accumulated so far.
func (s *Source) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close propagates to the wrapped source when it is closeable.
func (s *Source) Close() error { return lia.CloseSource(s.src) }

// KillSchedule returns kills distinct crash points, sorted ascending, each
// strictly inside (0, total) — the ingestion epochs at which a kill-restart
// soak test abandons its process (simulating SIGKILL) before recovering and
// continuing. Like every schedule in this package it is a pure function of
// its inputs: the same seed yields the same crash points on every run and
// machine. kills is clamped to total-1 (there are only that many interior
// epochs); total < 2 yields an empty schedule.
func KillSchedule(seed uint64, total, kills int) []int {
	if total < 2 || kills <= 0 {
		return nil
	}
	if kills > total-1 {
		kills = total - 1
	}
	rng := rand.New(rand.NewPCG(seed, 0x5191c1))
	picked := make(map[int]bool, kills)
	out := make([]int, 0, kills)
	for len(out) < kills {
		k := 1 + rng.IntN(total-1)
		if !picked[k] {
			picked[k] = true
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}
