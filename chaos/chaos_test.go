package chaos_test

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"

	"lia"
	"lia/chaos"
)

// vectors builds n deterministic 3-path observation vectors.
func vectors(n int) [][]float64 {
	ys := make([][]float64, n)
	for i := range ys {
		ys[i] = []float64{-0.01 * float64(i+1), -0.02 * float64(i+1), -0.03 * float64(i+1)}
	}
	return ys
}

// drain pulls src to real exhaustion, resuming through injected errors and
// EOFs, and returns the delivered vectors in order.
func drain(t *testing.T, src *chaos.Source) [][]float64 {
	t.Helper()
	ctx := context.Background()
	var out [][]float64
	for {
		snap, err := src.Next(ctx)
		switch {
		case err == nil:
			out = append(out, snap.Y)
		case errors.Is(err, chaos.ErrInjected):
			// transient: retry
		case errors.Is(err, io.EOF):
			if src.Exhausted() {
				return out
			}
			// injected mid-stream EOF: resume
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestChaosScheduleDeterministic(t *testing.T) {
	cfg := chaos.Config{
		Seed: 42, TransientErr: 0.1, EOF: 0.05, Drop: 0.1,
		Duplicate: 0.1, CorruptNaN: 0.05, Spike: 0.05,
	}
	a := drain(t, chaos.New(lia.NewSliceSource(vectors(200)), cfg))
	b := drain(t, chaos.New(lia.NewSliceSource(vectors(200)), cfg))
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d snapshots", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				t.Fatalf("snapshot %d entry %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	c := drain(t, chaos.New(lia.NewSliceSource(vectors(200)), chaos.Config{
		Seed: 43, TransientErr: 0.1, EOF: 0.05, Drop: 0.1,
		Duplicate: 0.1, CorruptNaN: 0.05, Spike: 0.05,
	}))
	if len(c) == len(a) {
		same := true
		for i := range c {
			for j := range c[i] {
				if math.Float64bits(c[i][j]) != math.Float64bits(a[i][j]) {
					same = false
				}
			}
		}
		if same {
			t.Fatal("different seeds produced an identical fault schedule")
		}
	}
}

func TestChaosZeroConfigIsTransparent(t *testing.T) {
	ys := vectors(50)
	got := drain(t, chaos.New(lia.NewSliceSource(ys), chaos.Config{Seed: 1}))
	if len(got) != len(ys) {
		t.Fatalf("delivered %d snapshots, want %d", len(got), len(ys))
	}
	for i := range ys {
		for j := range ys[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(ys[i][j]) {
				t.Fatalf("snapshot %d altered by pass-through config", i)
			}
		}
	}
}

func TestChaosInjectsEveryConfiguredFault(t *testing.T) {
	src := chaos.New(lia.NewSliceSource(vectors(400)), chaos.Config{
		Seed: 7, TransientErr: 0.1, EOF: 0.05, Drop: 0.15,
		Duplicate: 0.1, CorruptNaN: 0.1, Spike: 0.1,
	})
	delivered := drain(t, src)
	st := src.Stats()
	if st.Errors == 0 || st.EOFs == 0 || st.Drops == 0 || st.Duplicates == 0 ||
		st.NaNs == 0 || st.Spikes == 0 {
		t.Fatalf("some faults never fired over 400 snapshots: %+v", st)
	}
	if st.Delivered != uint64(len(delivered)) {
		t.Fatalf("Delivered counter %d, drained %d", st.Delivered, len(delivered))
	}
	nan := false
	for _, y := range delivered {
		for _, v := range y {
			if math.IsNaN(v) {
				nan = true
			}
		}
	}
	if !nan {
		t.Fatal("NaN corruption counted but never observed in the stream")
	}
}

func TestChaosClosePropagates(t *testing.T) {
	f, err := lia.OpenFileSource("/dev/null", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := chaos.New(f, chaos.Config{}).Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestKillSchedule(t *testing.T) {
	a := chaos.KillSchedule(9, 100, 5)
	b := chaos.KillSchedule(9, 100, 5)
	if len(a) != 5 {
		t.Fatalf("schedule %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic: %v vs %v", a, b)
		}
		if a[i] <= 0 || a[i] >= 100 {
			t.Fatalf("kill point %d outside (0, 100)", a[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("not sorted/distinct: %v", a)
		}
	}
	if got := chaos.KillSchedule(1, 4, 99); len(got) != 3 {
		t.Fatalf("clamp: %v", got)
	}
	if got := chaos.KillSchedule(1, 1, 3); got != nil {
		t.Fatalf("degenerate: %v", got)
	}
}
