package lia

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy tunes the exponential backoff of RetrySource (and of the
// serve package's source supervisor). The zero value selects the defaults
// documented per field; every delay draw is deterministic in Seed, so a
// fixed seed reproduces the exact retry schedule — the property the chaos
// soak tests rely on.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per snapshot (the first call plus
	// retries). 0 selects 8; negative retries forever (until the context
	// cancels).
	MaxAttempts int

	// InitialBackoff is the delay after the first failure (default 100ms).
	InitialBackoff time.Duration

	// MaxBackoff caps the exponential growth (default 10s).
	MaxBackoff time.Duration

	// Multiplier grows the delay between attempts (default 2; values
	// below 1 are treated as 1, i.e. constant backoff).
	Multiplier float64

	// Jitter spreads each delay uniformly over [d·(1−Jitter), d]; 0
	// selects 0.2, negative disables jitter. Draws come from a PCG seeded
	// with Seed, never from the global source, so the schedule is
	// reproducible.
	Jitter float64

	// Seed drives the jitter stream (same seed, same schedule).
	Seed uint64

	// AttemptTimeout, when positive, bounds each individual Next attempt
	// with a context deadline, so one stalled attempt cannot absorb the
	// whole retry budget.
	AttemptTimeout time.Duration
}

// withDefaults resolves the documented zero-value defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 8
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 10 * time.Second
	}
	if p.Multiplier < 1 {
		if p.Multiplier == 0 {
			p.Multiplier = 2
		} else {
			p.Multiplier = 1
		}
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Backoff returns the delay before retry attempt (1-based: attempt 1 is
// the delay after the first failure), jittered by rng when non-nil. The
// exponential curve is computed from the attempt index, not accumulated,
// so concurrent users of one policy agree on the schedule.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.InitialBackoff)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 - p.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// RetryError reports that RetrySource exhausted its attempt budget for one
// snapshot. It wraps the last underlying error, so errors.Is/As keep
// working through it.
type RetryError struct {
	// Attempts is how many times the wrapped source's Next was tried.
	Attempts int
	// Err is the error of the final attempt.
	Err error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("lia: source failed after %d attempts: %v", e.Attempts, e.Err)
}

func (e *RetryError) Unwrap() error { return e.Err }

// retrySource is the SnapshotSource returned by RetrySource.
type retrySource struct {
	src    SnapshotSource
	policy RetryPolicy

	retries atomic.Uint64 // lifetime retry attempts (excluding first tries)

	mu  sync.Mutex // serialises the rng and the wrapped source
	rng *rand.Rand
}

// RetrySource wraps a source so that transient Next failures are retried
// with exponential backoff and deterministic seeded jitter instead of
// surfacing to the consumer — the combinator that keeps a lossy collector
// link from killing an ingestion loop. io.EOF and context
// cancellation/deadline errors pass through untouched (they are
// terminal/intentional, not transient); every other error is retried up to
// Policy.MaxAttempts, after which Next returns a *RetryError carrying the
// attempt count and the last error.
//
// The returned source implements io.Closer, propagating Close to the
// wrapped source when it is closeable (see CloseSource).
func RetrySource(src SnapshotSource, policy RetryPolicy) SnapshotSource {
	p := policy.withDefaults()
	return &retrySource{
		src:    src,
		policy: p,
		rng:    rand.New(rand.NewPCG(p.Seed, 0x5e77f)),
	}
}

// Next implements SnapshotSource.
func (r *retrySource) Next(ctx context.Context) (Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	for attempt := 1; ; attempt++ {
		snap, err := r.attempt(ctx)
		switch {
		case err == nil:
			return snap, nil
		case errors.Is(err, io.EOF),
			errors.Is(err, context.Canceled),
			errors.Is(err, context.DeadlineExceeded) && ctx.Err() != nil:
			// Stream exhaustion and caller cancellation are not transient.
			return Snapshot{}, err
		}
		lastErr = err
		if r.policy.MaxAttempts > 0 && attempt >= r.policy.MaxAttempts {
			return Snapshot{}, &RetryError{Attempts: attempt, Err: lastErr}
		}
		r.retries.Add(1)
		delay := r.policy.Backoff(attempt, r.rng)
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return Snapshot{}, ctx.Err()
		case <-timer.C:
		}
	}
}

// attempt runs one Next call against the wrapped source, bounded by the
// per-attempt timeout when one is configured.
func (r *retrySource) attempt(ctx context.Context) (Snapshot, error) {
	if r.policy.AttemptTimeout <= 0 {
		return r.src.Next(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, r.policy.AttemptTimeout)
	defer cancel()
	return r.src.Next(actx)
}

// Retries returns the lifetime number of retry attempts the source has
// performed (first tries excluded).
func (r *retrySource) Retries() uint64 { return r.retries.Load() }

// Close propagates to the wrapped source when it is closeable.
func (r *retrySource) Close() error { return CloseSource(r.src) }

// CloseSource releases a source's underlying resources when it has any:
// sources that wrap files, sockets or other sources implement io.Closer by
// convention (FileSource, CollectorSource, and the Limit / RetrySource /
// SanitizeSource / chaos.Source combinators, which all propagate Close
// inward). Sources without resources are a no-op.
func CloseSource(src SnapshotSource) error {
	if c, ok := src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
