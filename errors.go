package lia

import (
	"errors"

	"lia/internal/core"
	"lia/internal/topology"
)

// Sentinel errors returned (possibly wrapped) by the engine; test with
// errors.Is. They are shared with the internal engine room, so errors
// surfacing from any layer keep their identity.
var (
	// ErrTooFewSnapshots: an inference was attempted before at least two
	// learning snapshots were ingested, so path covariances — and with them
	// the Phase-1 variances — do not exist yet.
	ErrTooFewSnapshots = core.ErrTooFewSnapshots

	// ErrDimensionMismatch: a snapshot vector's length does not match the
	// routing matrix's path count.
	ErrDimensionMismatch = core.ErrDimensionMismatch

	// ErrUnidentifiable: the link variances cannot be resolved from the
	// available covariance equations — the augmented matrix of Definition 1
	// lost full column rank (route fluttering violating assumption T.2, or
	// too many equations discarded by NegDrop).
	ErrUnidentifiable = core.ErrUnidentifiable

	// ErrTopologyTooLarge: the topology's int32-packed pair-support index
	// would exceed 2³¹ entries. Shard the path set across several routing
	// matrices (and engines) instead.
	ErrTopologyTooLarge = topology.ErrPairIndexOverflow
)

// ErrPartialComponent: an IngestSparse snapshot covered some but not all
// paths of a link-connected component. Component moments fold whole
// snapshots or none — a partial fold would silently skew the component's
// covariances — so sparse snapshots must cover the union of complete
// components (for a plain Engine: every path). Nothing is ingested when
// this error is returned.
var ErrPartialComponent = errors.New("lia: sparse snapshot must cover complete components")

// ErrRebuildFailed: a Phase-1 state rebuild failed (or panicked) and no
// previously built state exists to fall back on. Engines that have served
// at least one epoch degrade instead — queries keep answering from the
// last-good state (see Stats.Degraded) — so this sentinel only surfaces
// when there is nothing to serve at all, or under WithStrictRebuilds. The
// wrapped chain keeps the underlying cause, so errors.Is(err,
// ErrUnidentifiable) etc. still work through it.
var ErrRebuildFailed = errors.New("lia: rebuild failed")
