package lia

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"strings"
	"sync"

	"lia/internal/lossmodel"
	"lia/internal/netsim"
)

// Snapshot is one network snapshot as delivered by a SnapshotSource.
type Snapshot struct {
	// Y is the per-path observation vector (one entry per routing-matrix
	// row): log transmission rates under ObserveLogTransmission, additive
	// path metrics under ObserveLinear.
	Y []float64
	// Truth, when the source knows ground truth (simulators), holds the
	// per-virtual-link true mean loss rates of the snapshot; nil otherwise.
	Truth []float64
}

// SnapshotSource is a pull-based stream of network snapshots — the seam
// that decouples measurement collection from the inference engine. Next
// returns io.EOF (possibly wrapped) when the source is exhausted.
// Implementations must be safe for use by one consumer at a time; the
// sources in this package additionally serialise internally, so handing a
// source between goroutines needs no extra locking.
//
// Sources holding resources (files, sockets) implement io.Closer by
// convention, and wrapping sources (Limit, RetrySource, SanitizeSource,
// chaos.Source) propagate Close inward; CloseSource releases any source
// without a type assertion at the call site.
type SnapshotSource interface {
	Next(ctx context.Context) (Snapshot, error)
}

// LogRates converts per-path received fractions into the log transmission
// rates Y the engine ingests, clamping zero-delivery paths to half a probe
// (the paper's heuristic) so the logarithm stays finite.
func LogRates(frac []float64, probes int) []float64 {
	if probes <= 0 {
		probes = 1000
	}
	y := make([]float64, len(frac))
	for i, f := range frac {
		if f <= 0 {
			f = 0.5 / float64(probes)
		}
		y[i] = math.Log(f)
	}
	return y
}

// SliceSource streams already-prepared observation vectors.
type SliceSource struct {
	mu  sync.Mutex
	ys  [][]float64
	pos int
}

// NewSliceSource returns a source over pre-computed Y vectors (ingested
// as-is, no conversion).
func NewSliceSource(ys [][]float64) *SliceSource {
	return &SliceSource{ys: ys}
}

// Next implements SnapshotSource.
func (s *SliceSource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.ys) {
		return Snapshot{}, io.EOF
	}
	y := s.ys[s.pos]
	s.pos++
	return Snapshot{Y: y}, nil
}

// TraceSource adapts a recorded measurement trace of per-path received
// fractions — e.g. the emulated overlay lab's History() or a replayed
// collector session — converting each snapshot to log transmission rates.
type TraceSource struct {
	mu     sync.Mutex
	fracs  [][]float64
	probes int
	pos    int
}

// NewTraceSource returns a source over recorded received fractions; probes
// is S, the probe count behind each fraction (≤ 0 selects the paper's
// default of 1000), used only to clamp zero-delivery paths.
func NewTraceSource(fracs [][]float64, probes int) *TraceSource {
	return &TraceSource{fracs: fracs, probes: probes}
}

// Next implements SnapshotSource.
func (t *TraceSource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pos >= len(t.fracs) {
		return Snapshot{}, io.EOF
	}
	f := t.fracs[t.pos]
	t.pos++
	return Snapshot{Y: LogRates(f, t.probes)}, nil
}

// LineError reports a malformed, partial, or empty snapshot line in a
// newline-delimited measurement stream. Line is 1-based. It wraps the
// underlying cause (a JSON syntax error for truncated or corrupt lines, a
// length error for overlong ones), so errors.Is/As keep working through
// it. A FileSource whose Next returned a *LineError for a bad line has
// already consumed that line: calling Next again resumes with the
// following one, letting callers choose skip-and-continue or abort. The
// one exception is an I/O failure of the underlying reader mid-stream —
// there is nothing to resume past, so every later Next repeats the same
// *LineError.
type LineError struct {
	Line int
	Err  error
}

func (e *LineError) Error() string {
	return fmt.Sprintf("lia: snapshot file line %d: %v", e.Line, e.Err)
}

func (e *LineError) Unwrap() error { return e.Err }

// FileSource reads newline-delimited measurement snapshots. Each non-empty
// line is either a bare JSON array of per-path received fractions
//
//	[0.993, 1.0, 0.871]
//
// or a collector-format JSON object with a "frac" field
//
//	{"snapshot": 3, "frac": [0.993, 1.0, 0.871]}
//
// Fractions are converted to log transmission rates with LogRates.
// Malformed, partial, or overlong lines surface as *LineError carrying the
// 1-based line number; the source stays usable and resumes after the bad
// line (see LineError for the one terminal case).
type FileSource struct {
	mu     sync.Mutex
	r      *bufio.Reader
	closer io.Closer
	probes int
	line   int
	offset int64 // bytes consumed from the underlying reader (line-aligned)
	fatal  error // sticky mid-stream I/O failure
}

// maxSnapshotLine bounds one NDJSON line (16 MB); a longer line is consumed
// through its newline and reported as a *LineError, so the stream resumes
// with the next line instead of dying.
const maxSnapshotLine = 16 * 1024 * 1024

// NewFileSource reads snapshots from r; probes is S, the probe count behind
// each fraction (≤ 0 selects 1000).
func NewFileSource(r io.Reader, probes int) *FileSource {
	return &FileSource{r: bufio.NewReaderSize(r, 64*1024), probes: probes}
}

// OpenFileSource opens path and reads snapshots from it; Close releases the
// file.
func OpenFileSource(path string, probes int) (*FileSource, error) {
	return OpenFileSourceAt(path, 0, probes)
}

// OpenFileSourceAt opens path and resumes reading at the given byte offset —
// the position a previous source reported through Offset, so a restarted
// process continues a stream exactly where its predecessor stopped instead
// of re-ingesting from the top. The offset must be line-aligned (Offset
// values are); an offset inside a line yields a *LineError for the partial
// line and resumes with the next one. Line numbers restart at 1 from the
// resume point.
func OpenFileSourceAt(path string, offset int64, probes int) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lia: open snapshot file: %w", err)
	}
	if offset > 0 {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("lia: seek snapshot file to %d: %w", offset, err)
		}
	}
	src := NewFileSource(f, probes)
	src.closer = f
	src.offset = offset
	return src, nil
}

// Offset reports the byte position just past the last line consumed —
// including skipped blank, malformed, and overlong lines — counted from the
// start of the underlying stream (so for OpenFileSourceAt the start offset
// is included). Because Next always consumes whole lines, the value is
// line-aligned and safe to persist for OpenFileSourceAt resumption.
func (f *FileSource) Offset() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.offset
}

// Next implements SnapshotSource.
func (f *FileSource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.fatal != nil {
			return Snapshot{}, f.fatal
		}
		text, err := f.readLine()
		if err != nil {
			return Snapshot{}, err
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		var frac []float64
		if strings.HasPrefix(text, "{") {
			var rec struct {
				Frac []float64 `json:"frac"`
			}
			if err := json.Unmarshal([]byte(text), &rec); err != nil {
				return Snapshot{}, &LineError{Line: f.line, Err: err}
			}
			frac = rec.Frac
		} else if err := json.Unmarshal([]byte(text), &frac); err != nil {
			return Snapshot{}, &LineError{Line: f.line, Err: err}
		}
		if len(frac) == 0 {
			return Snapshot{}, &LineError{Line: f.line, Err: errors.New("no fractions")}
		}
		return Snapshot{Y: LogRates(frac, f.probes)}, nil
	}
}

// readLine returns the next line (trailing newline included) and advances
// the 1-based line counter. An overlong line is consumed through its
// newline and reported as a resumable *LineError; a reader failure other
// than EOF is terminal and made sticky in f.fatal.
func (f *FileSource) readLine() (string, error) {
	var buf []byte
	overlong := false
	for {
		chunk, err := f.r.ReadSlice('\n')
		f.offset += int64(len(chunk))
		if !overlong && len(buf)+len(chunk) > maxSnapshotLine {
			overlong = true
			buf = nil
		}
		if !overlong {
			buf = append(buf, chunk...)
		}
		switch {
		case err == nil:
			// Line complete.
		case errors.Is(err, bufio.ErrBufferFull):
			continue // mid-line; keep accumulating (or draining, if overlong)
		case errors.Is(err, io.EOF):
			if len(buf) == 0 && len(chunk) == 0 && !overlong {
				return "", io.EOF
			}
			// A final unterminated line; the next call hits clean EOF.
		default:
			f.line++
			f.fatal = &LineError{Line: f.line, Err: err}
			return "", f.fatal
		}
		f.line++
		if overlong {
			return "", &LineError{Line: f.line,
				Err: fmt.Errorf("line exceeds %d bytes", maxSnapshotLine)}
		}
		return string(buf), nil
	}
}

// Close releases the underlying file when the source was opened with
// OpenFileSource; otherwise it is a no-op.
func (f *FileSource) Close() error {
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// SimConfig parameterizes a synthetic measurement campaign.
type SimConfig struct {
	// Probes is S, the probes per path per snapshot (default 1000).
	Probes int
	// Seed drives all randomness; the same seed reproduces the same
	// campaign bit-for-bit.
	Seed uint64
	// CongestedFraction is p, the fraction of congested links (default
	// 0.10, the paper's LLRD1 setting).
	CongestedFraction float64
	// Episodic, when positive, makes congestion come and go: each prone
	// link is active per-snapshot with this probability.
	Episodic float64
	// Snapshots bounds the campaign length; 0 streams forever.
	Snapshots int
}

// SimSource streams synthetic snapshots from the packet-level probing
// simulator under the paper's LLRD1/Gilbert loss workload, advancing the
// loss scenario between snapshots. Each Snapshot carries the ground-truth
// link rates in Truth.
type SimSource struct {
	mu    sync.Mutex
	sim   *netsim.Simulator
	scen  *lossmodel.Scenario
	limit int
	n     int
}

// NewSimSource creates a simulator-backed source over the routing matrix.
func NewSimSource(rm *RoutingMatrix, cfg SimConfig) *SimSource {
	if cfg.Probes <= 0 {
		cfg.Probes = 1000
	}
	if cfg.CongestedFraction == 0 {
		cfg.CongestedFraction = 0.10
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x10ca1))
	scen := lossmodel.NewScenario(lossmodel.Config{
		Model:    lossmodel.LLRD1,
		Fraction: cfg.CongestedFraction,
		Episodic: cfg.Episodic,
	}, rng, rm.NumLinks())
	sim := netsim.New(rm, netsim.Config{Probes: cfg.Probes, Seed: cfg.Seed})
	return &SimSource{sim: sim, scen: scen, limit: cfg.Snapshots}
}

// Next implements SnapshotSource: it advances the loss scenario (after the
// first snapshot), probes every path, and returns the observed log rates
// with the ground truth attached.
func (s *SimSource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.limit > 0 && s.n >= s.limit {
		return Snapshot{}, io.EOF
	}
	if s.n > 0 {
		s.scen.Advance()
	}
	s.n++
	snap := s.sim.Run(s.scen.Rates())
	return Snapshot{Y: snap.LogRates(), Truth: snap.LinkRate}, nil
}

// limitedSource caps another source at n snapshots.
type limitedSource struct {
	mu   sync.Mutex
	src  SnapshotSource
	left int
}

// Limit wraps a source so it reports io.EOF after n snapshots — e.g. to
// Consume a learning prefix of an unbounded SimSource and keep the stream
// position for the inference snapshot. The returned source implements
// io.Closer, propagating Close to the wrapped source when it is closeable
// (see CloseSource).
func Limit(src SnapshotSource, n int) SnapshotSource {
	return &limitedSource{src: src, left: n}
}

// Close propagates to the wrapped source when it is closeable, so a
// limited view over a file or collector source still releases the
// underlying handle on shutdown.
func (l *limitedSource) Close() error { return CloseSource(l.src) }

// Next implements SnapshotSource.
func (l *limitedSource) Next(ctx context.Context) (Snapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.left <= 0 {
		return Snapshot{}, io.EOF
	}
	snap, err := l.src.Next(ctx)
	if err == nil {
		l.left--
	}
	return snap, err
}
