package lia

import (
	"errors"
	"fmt"

	"lia/internal/core"
	"lia/internal/stats"
)

// Strategy selects the Phase-2 column-elimination rule (§5.2).
type Strategy = core.Elimination

const (
	// StrategyPaperSequential removes remaining columns in ascending
	// learned-variance order until R* has full column rank — the algorithm
	// exactly as printed in the paper.
	StrategyPaperSequential Strategy = core.EliminatePaperSequential
	// StrategyGreedyBasis keeps a maximum-variance linearly-independent
	// column basis (a matroid-greedy optimum); evaluated as an ablation.
	StrategyGreedyBasis Strategy = core.EliminateGreedyBasis
)

// Observation selects what the snapshot vectors measure.
type Observation = core.Observation

const (
	// ObserveLogTransmission (default): snapshots hold per-path log
	// transmission rates and results convert to loss rates via 1 − eˣ.
	ObserveLogTransmission Observation = core.ObserveLogTransmission
	// ObserveLinear: snapshots hold additive path metrics (e.g. excess
	// queueing delays — the §8 extension); results are reported as-is,
	// clamped at zero.
	ObserveLinear Observation = core.ObserveLinear
)

// VarianceMethod selects how the Phase-1 moment system Σ* = A·v is solved.
type VarianceMethod = core.VarianceMethod

const (
	// VarianceAuto (default) picks dense QR for small systems and normal
	// equations once the explicit augmented matrix would be large.
	VarianceAuto VarianceMethod = core.VarianceAuto
	// VarianceDenseQR materializes the augmented matrix and solves by
	// Householder QR — the paper's reference method.
	VarianceDenseQR VarianceMethod = core.VarianceDenseQR
	// VarianceNormalEquations streams the equations into AᵀA and solves by
	// Cholesky; never materializes A.
	VarianceNormalEquations VarianceMethod = core.VarianceNormalEquations
)

// NegCovPolicy chooses the treatment of negative measured path covariances
// (a pure sampling artifact under the link-independence assumption S.2).
type NegCovPolicy = core.NegativeCovPolicy

const (
	// NegClamp (default) keeps the equation with its right-hand side
	// clamped to zero, preserving Theorem 1's rank guarantee.
	NegClamp NegCovPolicy = core.ClampNegativeCov
	// NegDrop discards the equation — the paper's printed rule. Can cost
	// identifiability on sparse pair sets (see ErrUnidentifiable).
	NegDrop NegCovPolicy = core.DropNegativeCov
	// NegKeep uses the raw negative value.
	NegKeep NegCovPolicy = core.KeepNegativeCov
)

// DefaultThreshold is the paper's congestion threshold tl = 0.002 (the LLRD
// models' boundary between good and congested links).
const DefaultThreshold = core.CongestionThreshold

// settings is the private option sink; Option values are only constructible
// through the With* functions, keeping the surface closed for extension.
type settings struct {
	opts         core.Options
	window       int
	decay        float64
	decaySet     bool
	shards       int
	strict       bool
	durDir       string
	dur          DurabilityOptions
	rebalance    float64
	rebalanceSet bool
}

// defaultRebalanceTheta is the hysteresis threshold dynamic LPT rebalancing
// uses when WithRebalance was not given: a regrouping must cut the
// estimated critical-path cost of a rebuild wave by more than 50% before
// the sharded engine adopts it, so measurement noise never causes layout
// churn.
const defaultRebalanceTheta = 0.5

// effectiveRebalance resolves the rebalance hysteresis: the configured θ, the
// conservative default when unset, or -1 (disabled) for negative settings.
func (s *settings) effectiveRebalance() float64 {
	if !s.rebalanceSet {
		return defaultRebalanceTheta
	}
	if s.rebalance < 0 {
		return -1
	}
	return s.rebalance
}

// newAccumulator builds the moment accumulator the options select:
// cumulative by default, sliding-window with WithWindow, exponentially
// decayed with WithDecay.
func (s *settings) newAccumulator(dim int) (stats.MomentAccumulator, error) {
	switch {
	case s.window != 0 && s.decaySet:
		return nil, errors.New("lia: WithWindow and WithDecay are mutually exclusive")
	case s.window != 0:
		if s.window < 2 {
			return nil, fmt.Errorf("lia: moment window %d must be at least 2 snapshots", s.window)
		}
		return stats.NewWindowedCovAccumulator(dim, s.window), nil
	case s.decaySet:
		if !(s.decay > 0 && s.decay <= 1) {
			return nil, fmt.Errorf("lia: decay factor %g outside (0, 1]", s.decay)
		}
		return stats.NewDecayCovAccumulator(dim, s.decay), nil
	default:
		return stats.NewCovAccumulator(dim), nil
	}
}

// effectiveDecay returns the decay factor for the engine's observability
// surface: the configured λ, or 0 when WithDecay was not used.
func (s *settings) effectiveDecay() float64 {
	if s.decaySet {
		return s.decay
	}
	return 0
}

// Option configures an Engine at construction.
type Option func(*settings)

// WithWorkers bounds the goroutines used by the parallel Phase-1
// accumulation and the Phase-2 elimination's rank tests. 0 (the default)
// sizes pools to GOMAXPROCS; 1 forces serial execution. Every setting
// produces bit-identical results — parallelism never changes the answer.
func WithWorkers(n int) Option {
	return func(s *settings) { s.opts.Variance.Workers = n }
}

// WithStrategy selects the Phase-2 elimination strategy.
func WithStrategy(st Strategy) Option {
	return func(s *settings) { s.opts.Strategy = st }
}

// WithObservation selects the snapshot semantics.
func WithObservation(obs Observation) Option {
	return func(s *settings) { s.opts.Observation = obs }
}

// WithThreshold sets the congestion threshold tl used by InferCongested and
// Threshold. The value is honored verbatim — WithThreshold(0) flags every
// link with any inferred loss, it does not reinstate the default.
func WithThreshold(tl float64) Option {
	return func(s *settings) {
		s.opts.Threshold = tl
		s.opts.ThresholdSet = true
	}
}

// WithVarianceMethod selects the Phase-1 solver.
func WithVarianceMethod(m VarianceMethod) Option {
	return func(s *settings) { s.opts.Variance.Method = m }
}

// WithNegCovPolicy selects the treatment of negative measured covariances.
func WithNegCovPolicy(p NegCovPolicy) Option {
	return func(s *settings) { s.opts.Variance.NegPolicy = p }
}

// WithWindow makes the engine's second-order moments cover only the most
// recent n learning snapshots (a sliding window over a retained ring of raw
// vectors, removed exactly as new snapshots arrive), instead of the default
// cumulative average over all history. Long-running engines use this so
// Phase 1 tracks congestion regime changes; n trades responsiveness against
// estimation noise (the paper's experiments use 50–several hundred
// snapshots). n must be at least 2; memory grows by n·np floats.
// Mutually exclusive with WithDecay.
func WithWindow(n int) Option {
	return func(s *settings) { s.window = n }
}

// WithShards requests topology sharding: the routing matrix is split into
// its link-disjoint components (see topology.Partition) and the components
// are grouped into at most k shards whose Phase-1/Phase-2 rebuilds run
// concurrently, each with its own accumulator and caches. k = 0 (the
// default) is the auto policy: New shards whenever the topology is
// disconnected, sizing the shard count to GOMAXPROCS; k = 1 forces the
// single unsharded engine; k > 1 requests up to k shards (never more than
// the number of components — and a fully connected topology always gets
// the plain Engine, where sharding could only add overhead). Sharding is
// exact, not approximate: each
// component's estimates are bitwise-identical to an unsharded engine run on
// that component alone. The option selects the implementation New returns;
// NewEngine ignores it and NewShardedEngine honors the count.
func WithShards(k int) Option {
	return func(s *settings) { s.shards = k }
}

// WithStrictRebuilds disables degraded-mode serving: a failed or panicking
// Phase-1 rebuild fails the query (wrapped in ErrRebuildFailed) instead of
// answering from the last successfully built state. Use it in batch and
// test contexts where a stale answer is worse than no answer; long-running
// services generally want the default degraded behaviour (see Engine).
func WithStrictRebuilds() Option {
	return func(s *settings) { s.strict = true }
}

// WithDurability makes the engine New returns durable: ingested snapshots
// append to a write-ahead log under dir before they fold into the moments,
// checkpoints of the full moment state land there periodically, and
// construction recovers the previous process's state (newest valid
// checkpoint + WAL tail replay) so a restarted engine resumes with moments
// bitwise-identical to an uninterrupted run. An empty or absent dir boots
// cold, exactly as without the option. See DurabilityOptions for the
// checkpoint cadence and fsync policy, and DurableEngine for the recovery
// semantics (including *CorruptStateError). The option selects the
// implementation New returns; NewEngine and NewShardedEngine ignore it —
// wrap them explicitly if needed.
func WithDurability(dir string, o DurabilityOptions) Option {
	return func(s *settings) { s.durDir, s.dur = dir, o }
}

// WithRebalance tunes the sharded engine's dynamic LPT rebalancing: after
// rebuild waves the engine re-groups its components across the fixed number
// of concurrent rebuild shards by measured per-component rebuild cost
// (an EWMA of observed rebuild durations — which windowed or decayed
// moments shift as regimes change), adopting a new LPT grouping only when
// it would cut the estimated critical-path cost of a wave by more than the
// hysteresis fraction theta. Regrouping moves no state — components keep
// their accumulators, factorizations and elimination caches, only their
// shard assignment changes — so every estimate is bitwise-identical to a
// never-rebalanced engine (Checkpoint moment state included; only the
// wall-clock rebuild timestamps recorded in checkpoints can differ).
// theta = 0 adopts any
// strict improvement; a negative theta disables rebalancing; unset defaults
// to 0.5. Plain engines ignore the option.
func WithRebalance(theta float64) Option {
	return func(s *settings) { s.rebalance, s.rebalanceSet = theta, true }
}

// WithDecay exponentially decays the engine's second-order moments: before
// each new snapshot folds in, all previous mass is multiplied by
// lambda ∈ (0, 1], giving an effective memory of ≈ 1/(1−lambda) snapshots
// with O(1) extra state (no retained vectors). lambda = 1 is exactly the
// default cumulative behaviour. Mutually exclusive with WithWindow.
func WithDecay(lambda float64) Option {
	return func(s *settings) { s.decay, s.decaySet = lambda, true }
}
