package lia

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lia/internal/stats"
	"lia/wal"
)

// This file is the durability layer: exact binary checkpoints of the moment
// state (Engine.Checkpoint / RestoreFrom, and the sharded equivalents), and
// the DurableEngine wrapper that pairs periodic checkpoints with a
// write-ahead log of the ingested snapshots so a crashed process recovers
// moments bitwise-identical to an uninterrupted run.
//
// Checkpoint format (little-endian):
//
//	8-byte magic "LIACKPT1" | u16 version | u8 kind | u8 reserved
//	kind-specific body | u32 crc32(IEEE, everything before it)
//
//	Engine body:  u64 epoch | i64 builtAt (unix nanos, 0 = none) |
//	              u32 recLen | accumulator record (internal/stats codec)
//	Sharded body: u64 epoch | u32 ncomps | per component: u32 len +
//	              a complete nested Engine checkpoint
const (
	ckptMagic   = "LIACKPT1"
	ckptVersion = 1

	ckptKindEngine  byte = 1
	ckptKindSharded byte = 2
)

// CheckpointRestorer is the persistence surface Engine and ShardedEngine
// share: serialize the complete moment state, or replace it with a
// previously serialized one. DurableEngine drives it; it is exported so
// callers can build their own persistence on top of the same exact format.
type CheckpointRestorer interface {
	// Checkpoint writes the engine's moment state (accumulator, ingestion
	// epoch, last-rebuild wall time) to w. The snapshot is consistent: it is
	// taken under the ingest lock.
	Checkpoint(w io.Writer) error
	// RestoreFrom replaces the engine's moment state with a checkpoint
	// previously written by the same engine shape (matching dimension,
	// window/decay configuration, and — for sharded engines — partition).
	// It validates everything before touching any state: on error the
	// engine is exactly as before. Restoring resets the cached Phase-1
	// state; the next query rebuilds from the restored moments.
	RestoreFrom(r io.Reader) error
}

var (
	_ CheckpointRestorer = (*Engine)(nil)
	_ CheckpointRestorer = (*ShardedEngine)(nil)
)

// errCorruptCheckpoint classifies checkpoint bytes that failed structural or
// CRC validation (as opposed to a configuration mismatch); both make
// recovery skip to an older checkpoint.
var errCorruptCheckpoint = errors.New("lia: corrupt checkpoint")

// CorruptStateError reports that a durability directory holds persisted
// state — checkpoints and/or WAL segments — none of which could be
// salvaged into a consistent engine: every checkpoint failed validation and
// the write-ahead log does not reach back far enough to rebuild from
// scratch. The engine is NOT started cold in this case (silently discarding
// state a production operator relied on would be worse); clear the
// directory, or point the engine at a fresh one, to boot cold explicitly.
type CorruptStateError struct {
	// Dir is the durability directory.
	Dir string
	// Checkpoints lists the checkpoint files tried, newest first.
	Checkpoints []string
	// Err joins the per-file restore errors and any WAL replay error.
	Err error
}

func (e *CorruptStateError) Error() string {
	return fmt.Sprintf("lia: no salvageable state in %s (tried %d checkpoints): %v",
		e.Dir, len(e.Checkpoints), e.Err)
}

func (e *CorruptStateError) Unwrap() error { return e.Err }

// engineCkpt is one parsed (not yet installed) engine checkpoint.
type engineCkpt struct {
	epoch   uint64
	builtAt int64
	acc     stats.MomentAccumulator
}

// appendEngineBody marshals the engine's moment state under its ingest lock.
func (e *Engine) appendEngineBody(buf []byte) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	buf = binary.LittleEndian.AppendUint64(buf, e.epoch.Load())
	builtAt := e.restoredAt.Load()
	if st := e.state.Load(); st != nil && !st.builtAt.IsZero() {
		builtAt = st.builtAt.UnixNano()
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(builtAt))
	lenAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // recLen backpatch
	buf, err := stats.AppendAccumulator(buf, e.acc)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	return buf, nil
}

func frameCheckpoint(kind byte, body func(buf []byte) ([]byte, error)) ([]byte, error) {
	buf := append([]byte(nil), ckptMagic...)
	buf = append(buf, byte(ckptVersion), 0, kind, 0)
	buf, err := body(buf)
	if err != nil {
		return nil, err
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// openCheckpoint validates the outer frame (magic, version, CRC) and returns
// the kind byte and body bytes.
func openCheckpoint(data []byte) (kind byte, body []byte, err error) {
	fail := func(format string, args ...any) (byte, []byte, error) {
		return 0, nil, fmt.Errorf("%w: %s", errCorruptCheckpoint, fmt.Sprintf(format, args...))
	}
	if len(data) < len(ckptMagic)+4+4 {
		return fail("short checkpoint: %d bytes", len(data))
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return fail("bad magic")
	}
	if v := binary.LittleEndian.Uint16(data[len(ckptMagic):]); v != ckptVersion {
		return fail("unsupported version %d", v)
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != want {
		return fail("crc mismatch: computed %#x, stored %#x", got, want)
	}
	return data[len(ckptMagic)+2], data[len(ckptMagic)+4 : len(data)-4], nil
}

// parseEngineBody parses one engine body (epoch, builtAt, accumulator
// record), returning the bytes consumed.
func parseEngineBody(body []byte) (*engineCkpt, int, error) {
	if len(body) < 20 {
		return nil, 0, fmt.Errorf("%w: short engine body", errCorruptCheckpoint)
	}
	ck := &engineCkpt{
		epoch:   binary.LittleEndian.Uint64(body),
		builtAt: int64(binary.LittleEndian.Uint64(body[8:])),
	}
	recLen := int(binary.LittleEndian.Uint32(body[16:]))
	if recLen < 0 || len(body) < 20+recLen {
		return nil, 0, fmt.Errorf("%w: truncated accumulator record", errCorruptCheckpoint)
	}
	acc, n, err := stats.DecodeAccumulator(body[20 : 20+recLen])
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", errCorruptCheckpoint, err)
	}
	if n != recLen {
		return nil, 0, fmt.Errorf("%w: accumulator record length %d, consumed %d", errCorruptCheckpoint, recLen, n)
	}
	ck.acc = acc
	return ck, 20 + recLen, nil
}

// validateAgainst checks the parsed checkpoint matches the engine's shape:
// same dimension and the same moment configuration (cumulative / window n /
// decay λ). A mismatch means the checkpoint belongs to a differently
// configured engine and must not be installed.
func (ck *engineCkpt) validateAgainst(e *Engine) error {
	if got, want := ck.acc.Dim(), e.rm.NumPaths(); got != want {
		return fmt.Errorf("lia: checkpoint dimension %d, engine has %d paths", got, want)
	}
	switch acc := ck.acc.(type) {
	case *stats.CovAccumulator:
		if e.window != 0 || e.decay != 0 {
			return fmt.Errorf("lia: cumulative checkpoint for engine with window=%d decay=%g", e.window, e.decay)
		}
	case *stats.WindowedCovAccumulator:
		if acc.Window() != e.window {
			return fmt.Errorf("lia: checkpoint window %d, engine configured %d", acc.Window(), e.window)
		}
	case *stats.DecayCovAccumulator:
		if acc.Lambda() != e.decay {
			return fmt.Errorf("lia: checkpoint decay %g, engine configured %g", acc.Lambda(), e.decay)
		}
	default:
		return fmt.Errorf("lia: unknown accumulator type %T", ck.acc)
	}
	return nil
}

// install replaces the engine's moment state with the parsed checkpoint.
// Caller has validated; after install the next query rebuilds from the
// restored moments.
func (e *Engine) install(ck *engineCkpt) {
	e.mu.Lock()
	e.acc = ck.acc
	e.epoch.Store(ck.epoch)
	e.mu.Unlock()
	e.state.Store(nil)
	e.restoredAt.Store(ck.builtAt)
	e.degraded.Store(false)
}

// Checkpoint writes the engine's complete moment state to w in the exact
// binary checkpoint format. See CheckpointRestorer.
func (e *Engine) Checkpoint(w io.Writer) error {
	buf, err := frameCheckpoint(ckptKindEngine, e.appendEngineBody)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// RestoreFrom replaces the engine's moment state with a checkpoint written
// by Engine.Checkpoint on an identically configured engine. See
// CheckpointRestorer.
func (e *Engine) RestoreFrom(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("lia: read checkpoint: %w", err)
	}
	kind, body, err := openCheckpoint(data)
	if err != nil {
		return err
	}
	if kind != ckptKindEngine {
		return fmt.Errorf("%w: checkpoint kind %d, want engine", errCorruptCheckpoint, kind)
	}
	ck, n, err := parseEngineBody(body)
	if err != nil {
		return err
	}
	if n != len(body) {
		return fmt.Errorf("%w: %d trailing bytes", errCorruptCheckpoint, len(body)-n)
	}
	if err := ck.validateAgainst(e); err != nil {
		return err
	}
	e.install(ck)
	return nil
}

// Checkpoint writes the sharded engine's complete moment state — one nested
// engine checkpoint per component — to w. See CheckpointRestorer.
func (e *ShardedEngine) Checkpoint(w io.Writer) error {
	buf, err := frameCheckpoint(ckptKindSharded, func(buf []byte) ([]byte, error) {
		// Hold the sharded ingest lock across all components so every
		// nested checkpoint reflects the same global epoch.
		e.mu.Lock()
		defer e.mu.Unlock()
		buf = binary.LittleEndian.AppendUint64(buf, e.epoch.Load())
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.comps)))
		for _, sc := range e.comps {
			nested, err := frameCheckpoint(ckptKindEngine, sc.eng.appendEngineBody)
			if err != nil {
				return nil, err
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nested)))
			buf = append(buf, nested...)
		}
		return buf, nil
	})
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// RestoreFrom replaces every component's moment state with a checkpoint
// written by ShardedEngine.Checkpoint over the same topology and options.
// All components parse and validate before any installs, so a bad
// checkpoint leaves the engine untouched. See CheckpointRestorer.
func (e *ShardedEngine) RestoreFrom(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("lia: read checkpoint: %w", err)
	}
	kind, body, err := openCheckpoint(data)
	if err != nil {
		return err
	}
	if kind != ckptKindSharded {
		return fmt.Errorf("%w: checkpoint kind %d, want sharded", errCorruptCheckpoint, kind)
	}
	if len(body) < 12 {
		return fmt.Errorf("%w: short sharded body", errCorruptCheckpoint)
	}
	epoch := binary.LittleEndian.Uint64(body)
	ncomps := int(binary.LittleEndian.Uint32(body[8:]))
	if ncomps != len(e.comps) {
		return fmt.Errorf("lia: checkpoint has %d components, engine has %d", ncomps, len(e.comps))
	}
	body = body[12:]
	cks := make([]*engineCkpt, ncomps)
	for c := 0; c < ncomps; c++ {
		if len(body) < 4 {
			return fmt.Errorf("%w: truncated component %d", errCorruptCheckpoint, c)
		}
		nlen := int(binary.LittleEndian.Uint32(body))
		if nlen < 0 || len(body) < 4+nlen {
			return fmt.Errorf("%w: truncated component %d", errCorruptCheckpoint, c)
		}
		nested := body[4 : 4+nlen]
		body = body[4+nlen:]
		nkind, nbody, err := openCheckpoint(nested)
		if err != nil {
			return fmt.Errorf("component %d: %w", c, err)
		}
		if nkind != ckptKindEngine {
			return fmt.Errorf("%w: component %d kind %d", errCorruptCheckpoint, c, nkind)
		}
		ck, n, err := parseEngineBody(nbody)
		if err != nil {
			return fmt.Errorf("component %d: %w", c, err)
		}
		if n != len(nbody) {
			return fmt.Errorf("%w: component %d has %d trailing bytes", errCorruptCheckpoint, c, len(nbody)-n)
		}
		if err := ck.validateAgainst(e.comps[c].eng); err != nil {
			return fmt.Errorf("component %d: %w", c, err)
		}
		cks[c] = ck
	}
	if len(body) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errCorruptCheckpoint, len(body))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for c, ck := range cks {
		e.comps[c].eng.install(ck)
	}
	e.epoch.Store(epoch)
	return nil
}

// DurabilityOptions configures the WithDurability layer. The zero value is
// usable: checkpoint every 256 snapshots, keep 2 checkpoints, fsync the WAL
// per batch.
type DurabilityOptions struct {
	// CheckpointEvery takes a checkpoint after this many ingested snapshots
	// (default 256; negative disables count-based checkpoints).
	CheckpointEvery int
	// CheckpointInterval additionally takes a checkpoint when at least this
	// much time has passed since the last one and new snapshots arrived
	// (0 = disabled). The check runs on ingest, so an idle engine does not
	// checkpoint repeatedly.
	CheckpointInterval time.Duration
	// Keep is how many checkpoints to retain (default 2 — the previous one
	// is the fallback when the newest is corrupt; minimum 1).
	Keep int
	// Fsync is the WAL fsync policy (default wal.SyncBatch).
	Fsync wal.SyncPolicy
	// FsyncInterval is the wal.SyncInterval cadence (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation size (default 64 MiB).
	SegmentBytes int64
}

func (o DurabilityOptions) withDefaults() DurabilityOptions {
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 256
	}
	if o.Keep < 1 {
		o.Keep = 2
	}
	return o
}

// DurabilityStats is the observability surface of a DurableEngine, exported
// through liaserve's /v1/status and /metrics.
type DurabilityStats struct {
	// Dir is the durability directory.
	Dir string
	// SyncPolicy is the WAL fsync policy ("batch", "interval", "off").
	SyncPolicy string
	// Checkpoints counts checkpoints taken this process lifetime.
	Checkpoints uint64
	// CheckpointEpoch is the ingestion epoch the newest durable checkpoint
	// covers (0 when none).
	CheckpointEpoch uint64
	// LastCheckpoint is the wall time the most recent checkpoint write took.
	LastCheckpoint time.Duration
	// LastCheckpointAt is when the most recent checkpoint completed.
	LastCheckpointAt time.Time
	// WALBytes is the current total size of the WAL segment files.
	WALBytes int64
	// WALRecords counts WAL records appended this process lifetime.
	WALRecords uint64
	// WALSegments is the number of WAL segment files.
	WALSegments int
	// RecoveredEpoch is the ingestion epoch restored from a checkpoint at
	// boot (0 on a cold boot).
	RecoveredEpoch uint64
	// ReplayedSnapshots is how many snapshots boot recovery replayed from
	// the WAL tail on top of the restored checkpoint.
	ReplayedSnapshots int
	// CorruptCheckpoints counts checkpoint files recovery had to skip
	// (CRC mismatch, truncation, configuration mismatch).
	CorruptCheckpoints int
}

// DurableEngine wraps an Engine or ShardedEngine with crash durability:
// every ingested batch is appended to a write-ahead log (wal package) before
// it folds into the moments, and the full moment state checkpoints to disk
// periodically. Construction (via New with WithDurability) recovers the
// previous process's state first — newest valid checkpoint, then WAL tail
// replay — falling back to the previous checkpoint when the newest fails
// its CRC, and surfacing *CorruptStateError when nothing is salvageable.
// Because both the checkpoint codec and WAL replay round-trip float64 bits
// exactly and replay preserves fold order, a recovered engine's moments —
// and therefore its Variances/Infer output — are bitwise-identical to an
// uninterrupted run over the same snapshot stream.
//
// Queries delegate straight to the inner engine and stay lock-free;
// ingestion serialises on one mutex around the WAL append + inner fold
// (WAL-then-ingest: a snapshot is never in the moments without being in the
// log, so an acknowledged ingest can never be lost past the fsync policy).
//
// Close takes a final checkpoint (making graceful restarts replay-free) and
// closes the log. A DurableEngine abandoned without Close loses nothing
// either — that is the point — it just replays the WAL tail on next boot.
type DurableEngine struct {
	inner Inferencer
	ckpt  CheckpointRestorer
	dir   string
	opts  DurabilityOptions

	mu         sync.Mutex // serialises ingest, checkpoint, close
	log        *wal.Log
	closed     bool
	sinceCkpt  int // snapshots ingested since the last checkpoint
	lastCkptAt time.Time
	buf        []byte // WAL record scratch, reused per batch

	// Stats fields, guarded by mu.
	checkpoints  uint64
	ckptEpoch    uint64
	lastCkptDur  time.Duration
	recovered    uint64
	replayed     int
	corruptCkpts int
}

var _ Inferencer = (*DurableEngine)(nil)

// checkpointName formats/parses the checkpoint file name for an epoch; the
// zero-padded epoch makes lexical order equal epoch order.
func checkpointName(epoch uint64) string { return fmt.Sprintf("checkpoint-%020d.ckpt", epoch) }

func checkpointEpoch(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	var epoch uint64
	if _, err := fmt.Sscanf(name, "checkpoint-%020d.ckpt", &epoch); err != nil {
		return 0, false
	}
	return epoch, true
}

// listCheckpoints returns the checkpoint file names in dir, newest first.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := checkpointEpoch(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// newDurableEngine wraps inner with durability rooted at dir, running
// recovery first. See DurableEngine.
func newDurableEngine(inner Inferencer, dir string, opts DurabilityOptions) (*DurableEngine, error) {
	ckpt, ok := inner.(CheckpointRestorer)
	if !ok {
		return nil, fmt.Errorf("lia: engine type %T does not support checkpointing", inner)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lia: durability dir: %w", err)
	}
	d := &DurableEngine{inner: inner, ckpt: ckpt, dir: dir, opts: opts.withDefaults()}

	// Phase 1: newest checkpoint that validates wins; skipped ones count as
	// corrupt and are repaired (replaced + deleted) after recovery.
	names, err := listCheckpoints(dir)
	if err != nil {
		return nil, fmt.Errorf("lia: durability dir: %w", err)
	}
	var restoreErrs []error
	var failed []string
	restored := false
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err == nil {
			err = ckpt.RestoreFrom(f)
			f.Close()
		}
		if err == nil {
			restored = true
			d.recovered = uint64(inner.Snapshots())
			break
		}
		restoreErrs = append(restoreErrs, fmt.Errorf("%s: %w", name, err))
		failed = append(failed, name)
		d.corruptCkpts++
	}

	// Phase 2: open the WAL (truncating any torn tail) and replay every
	// snapshot past the restored epoch, in original fold order.
	log, err := wal.Open(dir, wal.Options{
		SegmentBytes: d.opts.SegmentBytes,
		Policy:       d.opts.Fsync,
		SyncEvery:    d.opts.FsyncInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("lia: durability wal: %w", err)
	}
	d.log = log
	restoredEpoch := d.recovered
	expect := restoredEpoch + 1
	replayErr := log.Replay(0, func(seq uint64, payload []byte) error {
		vecs, err := decodeWALBatch(payload, inner.RoutingMatrix().NumPaths())
		if err != nil {
			return err
		}
		batchEnd := seq + uint64(len(vecs)) - 1
		if batchEnd < expect {
			return nil // batch fully covered by the restored checkpoint
		}
		if seq > expect {
			return fmt.Errorf("lia: wal gap: record at epoch %d, expected %d", seq, expect)
		}
		vecs = vecs[expect-seq:] // skip the checkpoint-covered prefix
		if err := inner.IngestBatch(vecs); err != nil {
			return err
		}
		d.replayed += len(vecs)
		expect = batchEnd + 1
		return nil
	})
	if replayErr != nil || (!restored && len(names) > 0) {
		errs := append(restoreErrs, replayErr)
		if !restored && len(names) > 0 && replayErr == nil && d.replayed == 0 && len(failed) > 0 {
			// All checkpoints bad and the WAL alone could not rebuild:
			// surface rather than silently booting cold over dead state.
			errs = append(errs, errors.New("wal does not reach back to epoch 1"))
		}
		if replayErr != nil || d.replayed == 0 || uint64(inner.Snapshots()) == 0 {
			log.Close()
			return nil, &CorruptStateError{Dir: dir, Checkpoints: names, Err: errors.Join(errs...)}
		}
	}
	d.sinceCkpt = inner.Snapshots() - int(restoredEpoch)
	d.ckptEpoch = restoredEpoch

	// Phase 3: if recovery skipped corrupt checkpoints, immediately write a
	// fresh one covering the recovered state, then clear the bad files — so
	// the next crash does not have to limp over them again.
	if len(failed) > 0 && inner.Snapshots() > 0 {
		d.mu.Lock()
		err := d.checkpointLocked()
		d.mu.Unlock()
		if err != nil {
			log.Close()
			return nil, err
		}
		for _, name := range failed {
			if _, ok := checkpointEpoch(name); ok && name != checkpointName(d.ckptEpoch) {
				_ = os.Remove(filepath.Join(dir, name))
			}
		}
	}
	return d, nil
}

// appendWALBatch frames a batch of snapshot vectors as one WAL payload:
// u32 count | u32 dim | count·dim·f64 (float64 bits, little-endian).
func appendWALBatch(buf []byte, ys [][]float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ys)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ys[0])))
	for _, y := range ys {
		for _, v := range y {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

func decodeWALBatch(payload []byte, wantDim int) ([][]float64, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("lia: wal batch too short: %d bytes", len(payload))
	}
	count := int(binary.LittleEndian.Uint32(payload))
	dim := int(binary.LittleEndian.Uint32(payload[4:]))
	if count <= 0 || dim != wantDim {
		return nil, fmt.Errorf("lia: wal batch count=%d dim=%d (engine has %d paths)", count, dim, wantDim)
	}
	if len(payload) != 8+8*count*dim {
		return nil, fmt.Errorf("lia: wal batch length %d, want %d", len(payload), 8+8*count*dim)
	}
	backing := make([]float64, count*dim)
	for i := range backing {
		backing[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8+8*i:]))
	}
	vecs := make([][]float64, count)
	for i := range vecs {
		vecs[i] = backing[i*dim : (i+1)*dim]
	}
	return vecs, nil
}

// Ingest folds one learning snapshot, appending it to the WAL first.
func (d *DurableEngine) Ingest(y []float64) error {
	return d.IngestBatch([][]float64{y})
}

// IngestBatch folds a batch of snapshots, appending them to the WAL as one
// record first (WAL-then-ingest). The batch is validated before it is
// logged, so a dimension error leaves both the log and the moments
// untouched.
func (d *DurableEngine) IngestBatch(ys [][]float64) error {
	if len(ys) == 0 {
		return nil
	}
	rm := d.inner.RoutingMatrix()
	for i, y := range ys {
		if err := checkDim(rm, y); err != nil {
			return fmt.Errorf("lia: batch snapshot %d of %d (0 ingested): %w", i, len(ys), err)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("lia: durable engine is closed")
	}
	seq := uint64(d.inner.Snapshots()) + 1
	d.buf = appendWALBatch(d.buf[:0], ys)
	if err := d.log.Append(seq, d.buf); err != nil {
		return fmt.Errorf("lia: wal append: %w", err)
	}
	if err := d.inner.IngestBatch(ys); err != nil {
		return err
	}
	d.sinceCkpt += len(ys)
	return d.maybeCheckpointLocked()
}

// Consume drains a source with the same batching semantics as
// Engine.Consume; each internal batch becomes one WAL record.
func (d *DurableEngine) Consume(ctx context.Context, src SnapshotSource) (int, error) {
	return consumeSource(ctx, src, d.inner.RoutingMatrix(), d.IngestBatch)
}

func (d *DurableEngine) maybeCheckpointLocked() error {
	if d.sinceCkpt <= 0 {
		return nil
	}
	due := d.opts.CheckpointEvery > 0 && d.sinceCkpt >= d.opts.CheckpointEvery
	if !due && d.opts.CheckpointInterval > 0 && time.Since(d.lastCkptAt) >= d.opts.CheckpointInterval {
		due = true
	}
	if !due {
		return nil
	}
	return d.checkpointLocked()
}

// checkpointLocked atomically persists the inner engine's moment state:
// write to a temp file, fsync, rename into place, then prune old
// checkpoints and truncate the WAL segments a retained checkpoint covers.
// Caller holds d.mu, so the inner state cannot advance mid-write.
func (d *DurableEngine) checkpointLocked() error {
	start := time.Now()
	epoch := uint64(d.inner.Snapshots())
	tmp := filepath.Join(d.dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("lia: checkpoint: %w", err)
	}
	err = d.ckpt.Checkpoint(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lia: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, checkpointName(epoch))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lia: checkpoint: %w", err)
	}
	syncDir(d.dir)
	d.checkpoints++
	d.ckptEpoch = epoch
	d.sinceCkpt = 0
	d.lastCkptAt = time.Now()
	d.lastCkptDur = time.Since(start)

	// Prune: keep the newest Keep checkpoints; WAL records below the oldest
	// retained epoch are covered and their sealed segments can go.
	names, err := listCheckpoints(d.dir)
	if err != nil {
		return nil // pruning is best-effort; the checkpoint itself landed
	}
	for i, name := range names {
		if i >= d.opts.Keep {
			_ = os.Remove(filepath.Join(d.dir, name))
		}
	}
	oldest := epoch
	for i := 0; i < len(names) && i < d.opts.Keep; i++ {
		if e, ok := checkpointEpoch(names[i]); ok {
			oldest = e
		}
	}
	_ = d.log.TruncateBefore(oldest + 1)
	return nil
}

// CheckpointNow forces a checkpoint of the current moment state regardless
// of cadence (a no-op on a completely empty engine).
func (d *DurableEngine) CheckpointNow() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("lia: durable engine is closed")
	}
	if d.inner.Snapshots() == 0 {
		return nil
	}
	return d.checkpointLocked()
}

// Close takes a final checkpoint of any state the last one does not cover
// and closes the WAL. The engine must not be used after Close; a crashed
// process that never got to Close loses nothing — recovery replays the WAL.
func (d *DurableEngine) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var err error
	if d.sinceCkpt > 0 {
		err = d.checkpointLocked()
	}
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// DurabilityStats reports the durability counters: checkpoint cadence and
// cost, WAL footprint, and what boot recovery did.
func (d *DurableEngine) DurabilityStats() DurabilityStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DurabilityStats{
		Dir:                d.dir,
		SyncPolicy:         d.opts.Fsync.String(),
		Checkpoints:        d.checkpoints,
		CheckpointEpoch:    d.ckptEpoch,
		LastCheckpoint:     d.lastCkptDur,
		LastCheckpointAt:   d.lastCkptAt,
		WALBytes:           d.log.Bytes(),
		WALRecords:         d.log.Appended(),
		WALSegments:        d.log.Segments(),
		RecoveredEpoch:     d.recovered,
		ReplayedSnapshots:  d.replayed,
		CorruptCheckpoints: d.corruptCkpts,
	}
}

// Inner returns the wrapped engine (an *Engine or *ShardedEngine).
func (d *DurableEngine) Inner() Inferencer { return d.inner }

// The query surface delegates to the inner engine unchanged; see Engine and
// ShardedEngine for semantics.

func (d *DurableEngine) RoutingMatrix() *RoutingMatrix { return d.inner.RoutingMatrix() }
func (d *DurableEngine) Snapshots() int                { return d.inner.Snapshots() }
func (d *DurableEngine) Threshold() float64            { return d.inner.Threshold() }
func (d *DurableEngine) Stats() Stats                  { return d.inner.Stats() }

func (d *DurableEngine) Infer(ctx context.Context, y []float64) (*Result, error) {
	return d.inner.Infer(ctx, y)
}

func (d *DurableEngine) InferCongested(ctx context.Context, y []float64) ([]bool, *Result, error) {
	return d.inner.InferCongested(ctx, y)
}

func (d *DurableEngine) Variances(ctx context.Context) ([]float64, error) {
	return d.inner.Variances(ctx)
}

func (d *DurableEngine) Eliminated(ctx context.Context) (kept, removed []int, err error) {
	return d.inner.Eliminated(ctx)
}

func (d *DurableEngine) Steady(ctx context.Context) (*SteadyState, error) {
	return d.inner.Steady(ctx)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Errors are ignored — every filesystem this runs on flushes the
// rename with the next segment fsync anyway, and there is no recovery
// action a caller could take.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}
