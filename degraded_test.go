package lia_test

// degraded_test.go covers the engine's degraded-mode boundary: a rebuild
// that fails after at least one state was built keeps serving the
// last-good epoch, surfaces the failure through Stats, and self-heals
// when the data becomes solvable again. The reliable failure trigger is
// WithWindow + NegDrop: once a window holds only anti-correlated
// snapshots, the negative path covariance equation is dropped and the
// system loses identifiability.

import (
	"context"
	"errors"
	"testing"

	"lia"
)

// sharedPairTopology is the smallest topology whose identifiability
// depends on one covariance equation: two paths sharing link 1, so
// dropping cov(p0,p1) leaves 2 equations for 3 virtual links.
func sharedPairTopology(t *testing.T) *lia.RoutingMatrix {
	t.Helper()
	rm, err := lia.NewTopology([]lia.Path{
		{Beacon: 0, Dst: 2, Links: []int{1, 2}},
		{Beacon: 0, Dst: 3, Links: []int{1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

// correlated snapshots keep cov(p0,p1) > 0 (solvable); antiCorrelated
// flip the pairing so the windowed covariance goes negative (NegDrop
// discards the equation → unidentifiable).
var (
	correlated = [][]float64{
		{-0.01, -0.01}, {-0.04, -0.04}, {-0.02, -0.02}, {-0.05, -0.05},
	}
	antiCorrelated = [][]float64{
		{-0.01, -0.04}, {-0.04, -0.01}, {-0.02, -0.05}, {-0.05, -0.02},
	}
)

func TestEngineDegradesOnRebuildFailure(t *testing.T) {
	ctx := context.Background()
	eng, err := lia.NewEngine(sharedPairTopology(t),
		lia.WithWindow(4), lia.WithNegCovPolicy(lia.NegDrop))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch(correlated); err != nil {
		t.Fatal(err)
	}
	good, err := eng.Variances(ctx)
	if err != nil {
		t.Fatalf("solvable regime: %v", err)
	}
	if st := eng.Stats(); st.Degraded || st.RebuildFailures != 0 {
		t.Fatalf("healthy engine reports degradation: %+v", st)
	}

	// Regime shift: the window now holds only anti-correlated snapshots,
	// so the rebuild fails — but queries must keep answering from the
	// last-good epoch, bitwise unchanged.
	if err := eng.IngestBatch(antiCorrelated); err != nil {
		t.Fatal(err)
	}
	served, err := eng.Variances(ctx)
	if err != nil {
		t.Fatalf("degraded query failed instead of serving last-good: %v", err)
	}
	for k := range good {
		if served[k] != good[k] {
			t.Fatalf("link %d: degraded answer %g != last-good %g", k, served[k], good[k])
		}
	}
	if _, err := eng.Infer(ctx, antiCorrelated[0]); err != nil {
		t.Fatalf("degraded Infer: %v", err)
	}
	st := eng.Stats()
	if !st.Degraded {
		t.Fatal("Stats.Degraded = false after a failed rebuild")
	}
	if st.RebuildFailures == 0 {
		t.Fatal("Stats.RebuildFailures = 0 after a failed rebuild")
	}
	if st.LastError == "" || st.LastFailure.IsZero() {
		t.Fatalf("failure record empty: LastError=%q LastFailure=%v", st.LastError, st.LastFailure)
	}
	if st.StateEpoch != len(correlated) {
		t.Fatalf("served epoch %d, want last-good %d", st.StateEpoch, len(correlated))
	}
	if st.StateAge < 0 {
		t.Fatalf("StateAge = %v, want non-negative", st.StateAge)
	}

	// Recovery: a solvable window clears the degradation on the next query.
	if err := eng.IngestBatch(correlated); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Variances(ctx); err != nil {
		t.Fatalf("recovered regime: %v", err)
	}
	if st := eng.Stats(); st.Degraded || st.StateEpoch != 12 {
		t.Fatalf("engine did not recover: %+v", st)
	}
}

func TestEngineStrictRebuildsFailFast(t *testing.T) {
	ctx := context.Background()
	eng, err := lia.NewEngine(sharedPairTopology(t),
		lia.WithWindow(4), lia.WithNegCovPolicy(lia.NegDrop), lia.WithStrictRebuilds())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch(correlated); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Variances(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch(antiCorrelated); err != nil {
		t.Fatal(err)
	}
	_, err = eng.Variances(ctx)
	if !errors.Is(err, lia.ErrRebuildFailed) {
		t.Fatalf("strict engine error = %v, want ErrRebuildFailed", err)
	}
	if !errors.Is(err, lia.ErrUnidentifiable) {
		t.Fatalf("cause lost from the chain: %v", err)
	}
}

func TestEngineRebuildFailureWithoutStateSurfaces(t *testing.T) {
	ctx := context.Background()
	eng, err := lia.NewEngine(sharedPairTopology(t),
		lia.WithWindow(4), lia.WithNegCovPolicy(lia.NegDrop))
	if err != nil {
		t.Fatal(err)
	}
	// No state has ever been built: there is nothing to degrade to, so the
	// failure must surface, typed and with its cause intact.
	if err := eng.IngestBatch(antiCorrelated); err != nil {
		t.Fatal(err)
	}
	_, err = eng.Variances(ctx)
	if !errors.Is(err, lia.ErrRebuildFailed) || !errors.Is(err, lia.ErrUnidentifiable) {
		t.Fatalf("stateless failure = %v, want ErrRebuildFailed wrapping ErrUnidentifiable", err)
	}
}

func TestEngineColdStartIsNotAFailure(t *testing.T) {
	ctx := context.Background()
	eng, err := lia.NewEngine(sharedPairTopology(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest([]float64{-0.01, -0.02}); err != nil {
		t.Fatal(err)
	}
	_, err = eng.Variances(ctx)
	if !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Fatalf("cold engine error = %v, want ErrTooFewSnapshots", err)
	}
	if errors.Is(err, lia.ErrRebuildFailed) {
		t.Fatalf("warm-up wrongly typed as a rebuild failure: %v", err)
	}
	if st := eng.Stats(); st.RebuildFailures != 0 || st.Degraded || st.LastError != "" {
		t.Fatalf("warm-up polluted the failure record: %+v", st)
	}
}
