// Durability benches at the incremental-rebuild scale target (600 paths):
// what a checkpoint costs to encode and restore, what the WAL adds to the
// ingest hot path under each fsync policy, and what boot recovery costs
// with and without a journal tail to replay. BENCH_pr8.json tracks them.
package lia_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"lia"
	"lia/internal/topogen"
	"lia/wal"
)

// benchDurablePaths builds the 600-path tree of benchRebuildWorkload as
// public lia.Paths, so the durability benches exercise the exported
// engine surface end to end.
func benchDurablePaths(b *testing.B) []lia.Path {
	b.Helper()
	rng := rand.New(rand.NewPCG(42, 1))
	net := topogen.Tree(rng, 1600, 6)
	if len(net.Hosts) < 600 {
		b.Fatalf("tree has %d hosts, need 600", len(net.Hosts))
	}
	routes := topogen.Routes(net, []int{0}, net.Hosts[:600])
	paths := make([]lia.Path, len(routes))
	for i, p := range routes {
		paths[i] = lia.Path{Beacon: p.Beacon, Dst: p.Dst, Links: p.Links}
	}
	return paths
}

// benchDurableSnapshots synthesizes Gaussian path observations for rm, the
// same moment regime as benchRebuildWorkload.
func benchDurableSnapshots(b *testing.B, rm *lia.RoutingMatrix, n int) [][]float64 {
	b.Helper()
	rng := rand.New(rand.NewPCG(7, 1))
	truth := make([]float64, rm.NumLinks())
	for k := range truth {
		if rng.Float64() < 0.1 {
			truth[k] = 0.005 + 0.02*rng.Float64()
		} else {
			truth[k] = 1e-6 * rng.Float64()
		}
	}
	x := make([]float64, rm.NumLinks())
	snaps := make([][]float64, n)
	for t := range snaps {
		for k := range x {
			x[k] = rng.NormFloat64() * truth[k]
		}
		y := make([]float64, rm.NumPaths())
		for i := range y {
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		snaps[t] = y
	}
	return snaps
}

// BenchmarkCheckpointEncode measures one exact binary checkpoint of the
// 600-path engine's moment state (encode) and the inverse (restore), the
// unit of work the durable engine pays every CheckpointEvery snapshots.
func BenchmarkCheckpointEncode(b *testing.B) {
	rm, err := lia.NewTopology(benchDurablePaths(b))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.IngestBatch(benchDurableSnapshots(b, rm, 60)); err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.Checkpoint(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restore", func(b *testing.B) {
		var buf bytes.Buffer
		if err := eng.Checkpoint(&buf); err != nil {
			b.Fatal(err)
		}
		dst, err := lia.NewEngine(rm)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dst.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALAppend measures one journal append of a 64-snapshot batch
// record (the durable engine's WAL unit for batch ingest) under each fsync
// policy — the direct cost the log adds to the ingest hot path.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 8+64*600*8) // header + 64 vectors of 600 floats
	rng := rand.New(rand.NewPCG(3, 9))
	for i := range payload {
		payload[i] = byte(rng.UintN(256))
	}
	for _, policy := range []wal.SyncPolicy{wal.SyncBatch, wal.SyncInterval, wal.SyncOff} {
		b.Run(policy.String(), func(b *testing.B) {
			log, err := wal.Open(b.TempDir(), wal.Options{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := log.Append(uint64(i+1), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDurableIngestBatch compares the 64-snapshot batch-ingest hot
// path of a plain 600-path engine against the durable wrapper under each
// fsync policy. plain vs wal-interval is the acceptance number: the
// journal's overhead on acknowledged ingest throughput.
func BenchmarkDurableIngestBatch(b *testing.B) {
	rm, err := lia.NewTopology(benchDurablePaths(b))
	if err != nil {
		b.Fatal(err)
	}
	snaps := benchDurableSnapshots(b, rm, 64)
	bench := func(b *testing.B, eng lia.Inferencer) {
		b.SetBytes(int64(len(snaps) * len(snaps[0]) * 8))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.IngestBatch(snaps); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) {
		eng, err := lia.NewEngine(rm)
		if err != nil {
			b.Fatal(err)
		}
		bench(b, eng)
	})
	for _, policy := range []wal.SyncPolicy{wal.SyncBatch, wal.SyncInterval, wal.SyncOff} {
		b.Run("wal-"+policy.String(), func(b *testing.B) {
			eng, err := lia.New(rm, lia.WithDurability(b.TempDir(), lia.DurabilityOptions{
				CheckpointEvery: -1, // isolate the WAL append from checkpoint cost
				Fsync:           policy,
			}))
			if err != nil {
				b.Fatal(err)
			}
			defer eng.(*lia.DurableEngine).Close()
			bench(b, eng)
		})
	}
}

// BenchmarkRecovery measures boot recovery of the 600-path durable engine:
// restoring the newest checkpoint alone (a gracefully closed state dir)
// and restoring plus replaying a 128-snapshot WAL tail (a killed process).
func BenchmarkRecovery(b *testing.B) {
	rm, err := lia.NewTopology(benchDurablePaths(b))
	if err != nil {
		b.Fatal(err)
	}
	open := func(dir string) *lia.DurableEngine {
		eng, err := lia.New(rm, lia.WithDurability(dir, lia.DurabilityOptions{CheckpointEvery: 256}))
		if err != nil {
			b.Fatal(err)
		}
		return eng.(*lia.DurableEngine)
	}
	b.Run("checkpoint-only", func(b *testing.B) {
		// 256 snapshots, gracefully closed: the final checkpoint covers
		// everything, so each open restores it and replays nothing.
		dir := b.TempDir()
		seed := open(dir)
		if err := seed.IngestBatch(benchDurableSnapshots(b, rm, 256)); err != nil {
			b.Fatal(err)
		}
		if err := seed.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := open(dir)
			if eng.Snapshots() != 256 || eng.DurabilityStats().ReplayedSnapshots != 0 {
				b.Fatalf("recovered %d snapshots, %d replayed; want 256, 0",
					eng.Snapshots(), eng.DurabilityStats().ReplayedSnapshots)
			}
			b.StopTimer()
			if err := eng.Close(); err != nil { // no-op on disk: nothing since the checkpoint
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("replay-128", func(b *testing.B) {
		// Checkpoint at epoch 256 plus a 128-snapshot WAL tail, abandoned
		// without Close — the SIGKILL shape. Recovery mutates nothing, but
		// the untimed Close between iterations would (final checkpoint +
		// truncation), so each iteration opens a fresh copy of the dir.
		pristine := b.TempDir()
		seed := open(pristine)
		if err := seed.IngestBatch(benchDurableSnapshots(b, rm, 256)); err != nil {
			b.Fatal(err)
		}
		if err := seed.IngestBatch(benchDurableSnapshots(b, rm, 128)); err != nil {
			b.Fatal(err)
		}
		// Abandoned: the WAL is write-through, so the open handles need no
		// Close for the records to be on disk.
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := filepath.Join(b.TempDir(), fmt.Sprintf("copy-%d", i))
			copyDir(b, pristine, dir)
			b.StartTimer()
			eng := open(dir)
			if eng.Snapshots() != 384 || eng.DurabilityStats().ReplayedSnapshots != 128 {
				b.Fatalf("recovered %d snapshots, %d replayed; want 384, 128",
					eng.Snapshots(), eng.DurabilityStats().ReplayedSnapshots)
			}
			b.StopTimer()
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// copyDir clones a state directory for a destructive-recovery iteration.
func copyDir(b *testing.B, src, dst string) {
	b.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		b.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
