package lia_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lia"
)

func TestLogRates(t *testing.T) {
	y := lia.LogRates([]float64{1.0, 0.5, 0}, 1000)
	if y[0] != 0 {
		t.Fatalf("log(1) = %g, want 0", y[0])
	}
	if want := math.Log(0.5); y[1] != want {
		t.Fatalf("log(0.5) = %g, want %g", y[1], want)
	}
	if want := math.Log(0.5 / 1000); y[2] != want {
		t.Fatalf("zero-delivery clamp = %g, want %g", y[2], want)
	}
}

func TestFileSourceFormats(t *testing.T) {
	ctx := context.Background()
	input := strings.Join([]string{
		`[1.0, 0.9, 0.8]`,
		``, // blank lines are skipped
		`{"snapshot": 1, "frac": [0.7, 0.6, 0.5]}`,
		`  [0.4, 0.3, 0.2]  `,
	}, "\n")
	src := lia.NewFileSource(strings.NewReader(input), 1000)
	want := [][]float64{
		lia.LogRates([]float64{1.0, 0.9, 0.8}, 1000),
		lia.LogRates([]float64{0.7, 0.6, 0.5}, 1000),
		lia.LogRates([]float64{0.4, 0.3, 0.2}, 1000),
	}
	for i, w := range want {
		snap, err := src.Next(ctx)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		for j := range w {
			if snap.Y[j] != w[j] {
				t.Fatalf("snapshot %d path %d: %g, want %g", i, j, snap.Y[j], w[j])
			}
		}
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("exhausted source returned %v, want io.EOF", err)
	}
}

func TestFileSourceErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := lia.NewFileSource(strings.NewReader("not json\n"), 0).Next(ctx); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("garbage line error = %v, want parse error", err)
	}
	if _, err := lia.NewFileSource(strings.NewReader(`{"frac": []}`), 0).Next(ctx); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("empty frac error = %v, want error", err)
	}
	if _, err := lia.OpenFileSource("testdata-does-not-exist.ndjson", 0); err == nil {
		t.Fatal("OpenFileSource on a missing path must fail")
	}
}

func TestSourceContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srcs := []lia.SnapshotSource{
		lia.NewSliceSource([][]float64{{1}}),
		lia.NewTraceSource([][]float64{{1}}, 100),
		lia.NewFileSource(strings.NewReader("[1.0]\n"), 100),
	}
	for i, src := range srcs {
		if _, err := src.Next(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("source %d with cancelled ctx returned %v, want context.Canceled", i, err)
		}
	}
}

func TestTraceAndSliceAndLimit(t *testing.T) {
	ctx := context.Background()
	fracs := [][]float64{{0.9, 0.8}, {0.7, 0.6}, {0.5, 0.4}}
	trace := lia.NewTraceSource(fracs, 100)
	for i := range fracs {
		snap, err := trace.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want := lia.LogRates(fracs[i], 100)
		for j := range want {
			if snap.Y[j] != want[j] {
				t.Fatalf("trace snapshot %d differs at %d", i, j)
			}
		}
	}
	if _, err := trace.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("trace EOF = %v", err)
	}

	ys := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	limited := lia.Limit(lia.NewSliceSource(ys), 2)
	for i := 0; i < 2; i++ {
		snap, err := limited.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Y[0] != ys[i][0] {
			t.Fatalf("slice snapshot %d passed through wrong vector", i)
		}
	}
	if _, err := limited.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("limit EOF = %v", err)
	}
}

func TestFileSourceOffsetTracking(t *testing.T) {
	ctx := context.Background()
	lines := []string{
		`[1.0, 0.9]`,
		``, // blank: consumed by the Next that returns the following line
		`{"frac": [0.8, 0.7]}`,
		`not json`,
		`[0.6, 0.5]`, // final line, unterminated
	}
	input := strings.Join(lines, "\n")
	src := lia.NewFileSource(strings.NewReader(input), 1000)
	if got := src.Offset(); got != 0 {
		t.Fatalf("initial offset %d", got)
	}
	if _, err := src.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := src.Offset(), int64(len(lines[0])+1); got != want {
		t.Fatalf("offset after line 1: %d, want %d", got, want)
	}
	if _, err := src.Next(ctx); err != nil {
		t.Fatal(err) // skips the blank line, returns line 3
	}
	want := int64(len(lines[0]) + 1 + 1 + len(lines[2]) + 1)
	if got := src.Offset(); got != want {
		t.Fatalf("offset after line 3: %d, want %d", got, want)
	}
	var le *lia.LineError
	if _, err := src.Next(ctx); !errors.As(err, &le) {
		t.Fatalf("bad line error: %v", err)
	}
	want += int64(len(lines[3]) + 1)
	if got := src.Offset(); got != want {
		t.Fatalf("offset after bad line: %d, want %d", got, want)
	}
	if _, err := src.Next(ctx); err != nil {
		t.Fatal(err) // unterminated final line still counts its bytes
	}
	if got := src.Offset(); got != int64(len(input)) {
		t.Fatalf("final offset %d, want %d", src.Offset(), len(input))
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestOpenFileSourceAtResumes(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "snaps.ndjson")
	var sb strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, "[0.9%d, 0.8%d]\n", i, i)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	first, err := lia.OpenFileSource(path, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var firstYs [][]float64
	for i := 0; i < 3; i++ {
		snap, err := first.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		firstYs = append(firstYs, snap.Y)
	}
	cut := first.Offset()
	first.Close()

	// A resumed source continues exactly after the last consumed line and
	// reports stream-absolute offsets.
	second, err := lia.OpenFileSourceAt(path, cut, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if got := second.Offset(); got != cut {
		t.Fatalf("resumed offset %d, want %d", got, cut)
	}
	whole, err := lia.OpenFileSource(path, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	for i := 0; i < 3; i++ { // skip the prefix in the uninterrupted reader
		if _, err := whole.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 3; ; i++ {
		wantSnap, wantErr := whole.Next(ctx)
		gotSnap, gotErr := second.Next(ctx)
		if !errors.Is(gotErr, wantErr) {
			t.Fatalf("snapshot %d: err %v vs %v", i, gotErr, wantErr)
		}
		if wantErr != nil {
			break
		}
		for k := range wantSnap.Y {
			if math.Float64bits(gotSnap.Y[k]) != math.Float64bits(wantSnap.Y[k]) {
				t.Fatalf("snapshot %d entry %d differs after resume", i, k)
			}
		}
	}
	if got := second.Offset(); got != int64(len(sb.String())) {
		t.Fatalf("exhausted offset %d, want file size %d", got, len(sb.String()))
	}

	// Resuming mid-line surfaces the partial line as a LineError, then
	// continues with the next whole line.
	mid, err := lia.OpenFileSourceAt(path, cut+2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	var le *lia.LineError
	if _, err := mid.Next(ctx); !errors.As(err, &le) {
		t.Fatalf("mid-line resume: %v", err)
	}
	if snap, err := mid.Next(ctx); err != nil || len(snap.Y) != 2 {
		t.Fatalf("post-partial resume: %v", err)
	}
}
