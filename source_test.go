package lia_test

import (
	"context"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"lia"
)

func TestLogRates(t *testing.T) {
	y := lia.LogRates([]float64{1.0, 0.5, 0}, 1000)
	if y[0] != 0 {
		t.Fatalf("log(1) = %g, want 0", y[0])
	}
	if want := math.Log(0.5); y[1] != want {
		t.Fatalf("log(0.5) = %g, want %g", y[1], want)
	}
	if want := math.Log(0.5 / 1000); y[2] != want {
		t.Fatalf("zero-delivery clamp = %g, want %g", y[2], want)
	}
}

func TestFileSourceFormats(t *testing.T) {
	ctx := context.Background()
	input := strings.Join([]string{
		`[1.0, 0.9, 0.8]`,
		``, // blank lines are skipped
		`{"snapshot": 1, "frac": [0.7, 0.6, 0.5]}`,
		`  [0.4, 0.3, 0.2]  `,
	}, "\n")
	src := lia.NewFileSource(strings.NewReader(input), 1000)
	want := [][]float64{
		lia.LogRates([]float64{1.0, 0.9, 0.8}, 1000),
		lia.LogRates([]float64{0.7, 0.6, 0.5}, 1000),
		lia.LogRates([]float64{0.4, 0.3, 0.2}, 1000),
	}
	for i, w := range want {
		snap, err := src.Next(ctx)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		for j := range w {
			if snap.Y[j] != w[j] {
				t.Fatalf("snapshot %d path %d: %g, want %g", i, j, snap.Y[j], w[j])
			}
		}
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("exhausted source returned %v, want io.EOF", err)
	}
}

func TestFileSourceErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := lia.NewFileSource(strings.NewReader("not json\n"), 0).Next(ctx); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("garbage line error = %v, want parse error", err)
	}
	if _, err := lia.NewFileSource(strings.NewReader(`{"frac": []}`), 0).Next(ctx); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("empty frac error = %v, want error", err)
	}
	if _, err := lia.OpenFileSource("testdata-does-not-exist.ndjson", 0); err == nil {
		t.Fatal("OpenFileSource on a missing path must fail")
	}
}

func TestSourceContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srcs := []lia.SnapshotSource{
		lia.NewSliceSource([][]float64{{1}}),
		lia.NewTraceSource([][]float64{{1}}, 100),
		lia.NewFileSource(strings.NewReader("[1.0]\n"), 100),
	}
	for i, src := range srcs {
		if _, err := src.Next(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("source %d with cancelled ctx returned %v, want context.Canceled", i, err)
		}
	}
}

func TestTraceAndSliceAndLimit(t *testing.T) {
	ctx := context.Background()
	fracs := [][]float64{{0.9, 0.8}, {0.7, 0.6}, {0.5, 0.4}}
	trace := lia.NewTraceSource(fracs, 100)
	for i := range fracs {
		snap, err := trace.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want := lia.LogRates(fracs[i], 100)
		for j := range want {
			if snap.Y[j] != want[j] {
				t.Fatalf("trace snapshot %d differs at %d", i, j)
			}
		}
	}
	if _, err := trace.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("trace EOF = %v", err)
	}

	ys := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	limited := lia.Limit(lia.NewSliceSource(ys), 2)
	for i := 0; i < 2; i++ {
		snap, err := limited.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Y[0] != ys[i][0] {
			t.Fatalf("slice snapshot %d passed through wrong vector", i)
		}
	}
	if _, err := limited.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("limit EOF = %v", err)
	}
}
