package lia_test

import (
	"context"
	"sync"
	"testing"

	"lia"
	"lia/chaos"
	"lia/wal"
)

// TestDurableKillRestartSoak is the crash-recovery soak: a seeded schedule
// of kills interrupts ingestion mid-stream, each kill abandoning the
// durable engine without Close (everything acked is on disk — exactly a
// SIGKILL, since the engine never buffers WAL writes in user space), then
// recovery resumes from the same directory and the stream continues. After
// the full stream the recovered engine's variances must be bitwise-equal to
// an uninterrupted engine's. Concurrent queries run throughout so `go test
// -race` exercises the ingest/checkpoint/query interleavings.
func TestDurableKillRestartSoak(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	const total = 400

	for _, seed := range []uint64{1, 7, 42} {
		snaps := shardSnapshots(rm, total, seed)
		ref, err := lia.New(rm)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.IngestBatch(snaps); err != nil {
			t.Fatal(err)
		}
		want, err := ref.Variances(ctx)
		if err != nil {
			t.Fatal(err)
		}

		kills := chaos.KillSchedule(seed, total, 6)
		if len(kills) != 6 {
			t.Fatalf("seed %d: schedule %v", seed, kills)
		}
		dir := t.TempDir()
		opts := []lia.Option{lia.WithDurability(dir, lia.DurabilityOptions{
			CheckpointEvery: 32,
			Fsync:           wal.SyncOff, // crash model is process death, not power loss
		})}
		eng, err := lia.New(rm, opts...)
		if err != nil {
			t.Fatal(err)
		}

		next := 0
		totalReplayed := 0
		for _, kill := range append(kills, total) {
			// Hammer queries while this segment ingests.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						eng.Variances(ctx)
						eng.Stats()
					}
				}
			}()
			ingestBatches(t, eng, snaps, next, kill)
			close(stop)
			wg.Wait()
			next = kill
			if kill == total {
				break
			}
			// Kill: drop the engine on the floor and recover from disk.
			reborn, err := lia.New(rm, opts...)
			if err != nil {
				t.Fatalf("seed %d: recovery at epoch %d: %v", seed, kill, err)
			}
			eng = reborn
			ds := eng.(*lia.DurableEngine).DurabilityStats()
			totalReplayed += ds.ReplayedSnapshots
			if got := eng.Snapshots(); got != kill {
				t.Fatalf("seed %d: recovered %d snapshots at kill point %d (stats %+v)",
					seed, got, kill, ds)
			}
		}

		variancesBits(t, eng, want, "soak recovery")
		if totalReplayed == 0 {
			t.Fatalf("seed %d: no kill landed between checkpoints — weak schedule", seed)
		}
		if err := eng.(*lia.DurableEngine).Close(); err != nil {
			t.Fatal(err)
		}
	}
}
