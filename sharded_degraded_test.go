package lia_test

// sharded_degraded_test.go covers per-component failure isolation: one
// poisoned component of a ShardedEngine degrades only its own links —
// zeros, listed as Unresolved — while every healthy component's estimates
// stay bitwise-identical to a plain Engine over that component alone.

import (
	"context"
	"errors"
	"testing"

	"lia"
)

// twoComponentEngine builds a sharded engine over two link-disjoint
// two-path stars (A: links 1..3, B: links 1001..1003), interleaved so the
// components are non-contiguous in global path order: [A0 B0 A1 B1].
func twoComponentEngine(t *testing.T, opts ...lia.Option) (*lia.ShardedEngine, *lia.RoutingMatrix) {
	t.Helper()
	rm, err := lia.NewTopology(shardInterleave(shardStar(1, 100, 2), shardStar(1001, 200, 2)))
	if err != nil {
		t.Fatal(err)
	}
	se, err := lia.NewShardedEngine(rm, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if se.NumComponents() != 2 {
		t.Fatalf("topology has %d components, want 2", se.NumComponents())
	}
	return se, rm
}

// interleaveRows builds global snapshots from per-component pair streams:
// component A's pairs land on global paths 0/2, component B's on 1/3.
func interleaveRows(a, b [][]float64) [][]float64 {
	ys := make([][]float64, len(a))
	for i := range ys {
		ys[i] = []float64{a[i][0], b[i][0], a[i][1], b[i][1]}
	}
	return ys
}

// globalLinks maps a component's physical star links to their global
// virtual link IDs.
func globalLinks(t *testing.T, rm *lia.RoutingMatrix, base int) []int {
	t.Helper()
	out := make([]int, 0, 3)
	for _, phys := range []int{base, base + 1, base + 2} {
		kg, ok := rm.VirtualOf(phys)
		if !ok {
			t.Fatalf("physical link %d has no virtual identity", phys)
		}
		out = append(out, kg)
	}
	return out
}

func TestShardedPoisonedComponentDegradesOnlyItsLinks(t *testing.T) {
	ctx := context.Background()
	opts := []lia.Option{lia.WithWindow(4), lia.WithNegCovPolicy(lia.NegDrop), lia.WithShards(2)}
	se, rm := twoComponentEngine(t, opts...)

	// Component A sees solvable correlated pairs; component B sees only
	// anti-correlated ones, so B's covariance equation drops and B never
	// builds a state.
	if err := se.IngestBatch(interleaveRows(correlated, antiCorrelated)); err != nil {
		t.Fatal(err)
	}

	// The reference: a plain engine over component A alone, same options,
	// same rows. Bitwise parity must survive B's failure.
	crm, err := lia.NewTopology(shardStar(1, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lia.NewEngine(crm, lia.WithWindow(4), lia.WithNegCovPolicy(lia.NegDrop))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.IngestBatch(correlated); err != nil {
		t.Fatal(err)
	}

	// aLinks[kl] is the global virtual link behind the reference engine's
	// local link kl (mapped through a shared physical member, as virtual
	// link order differs between the global and component reductions);
	// bLinks is simply the set of B's global links.
	aLinks := make([]int, crm.NumLinks())
	for kl := range aLinks {
		kg, ok := rm.VirtualOf(crm.Members(kl)[0])
		if !ok {
			t.Fatalf("component link %d lost its global identity", kl)
		}
		aLinks[kl] = kg
	}
	bLinks := globalLinks(t, rm, 1001)

	vars, err := se.Variances(ctx)
	if err != nil {
		t.Fatalf("one healthy component should carry the gather: %v", err)
	}
	want, err := ref.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for kl, kg := range aLinks {
		if vars[kg] != want[kl] {
			t.Fatalf("healthy link %d: sharded %g != reference %g (not bitwise)", kg, vars[kg], want[kl])
		}
	}
	for _, kg := range bLinks {
		if vars[kg] != 0 {
			t.Fatalf("poisoned link %d reports %g, want 0", kg, vars[kg])
		}
	}

	probe := []float64{-0.02, -0.03, -0.02, -0.01}
	res, err := se.Infer(ctx, probe)
	if err != nil {
		t.Fatalf("degraded Infer: %v", err)
	}
	wantRes, err := ref.Infer(ctx, []float64{probe[0], probe[2]})
	if err != nil {
		t.Fatal(err)
	}
	for kl, kg := range aLinks {
		if res.LossRates[kg] != wantRes.LossRates[kl] || res.LogRates[kg] != wantRes.LogRates[kl] {
			t.Fatalf("healthy link %d: sharded inference (%g, %g) != reference (%g, %g)",
				kg, res.LossRates[kg], res.LogRates[kg], wantRes.LossRates[kl], wantRes.LogRates[kl])
		}
	}
	if len(res.Unresolved) != len(bLinks) {
		t.Fatalf("Unresolved = %v, want component B's links %v", res.Unresolved, bLinks)
	}
	unresolved := map[int]bool{}
	for _, kg := range res.Unresolved {
		unresolved[kg] = true
	}
	for _, kg := range bLinks {
		if !unresolved[kg] {
			t.Fatalf("poisoned link %d missing from Unresolved %v", kg, res.Unresolved)
		}
	}
	if got := len(res.Kept) + len(res.Removed) + len(res.Unresolved); got != rm.NumLinks() {
		t.Fatalf("kept+removed+unresolved = %d, want %d links", got, rm.NumLinks())
	}
	if res.Epoch != 4 {
		t.Fatalf("gathered epoch %d, want the healthy component's 4", res.Epoch)
	}

	st, err := se.Steady(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Unresolved) != len(bLinks) {
		t.Fatalf("Steady.Unresolved = %v, want %d links", st.Unresolved, len(bLinks))
	}

	stats := se.Stats()
	if !stats.Degraded || stats.DegradedComponents != 1 {
		t.Fatalf("Stats = %+v, want Degraded with exactly 1 degraded component", stats)
	}
	if stats.RebuildFailures == 0 || stats.LastError == "" {
		t.Fatalf("failure record empty: %+v", stats)
	}
	unhealthyCount := 0
	for _, cs := range se.ComponentStats() {
		if cs.RebuildFailures > 0 && cs.StateEpoch < 0 {
			unhealthyCount++
		}
	}
	if unhealthyCount != 1 {
		t.Fatalf("ComponentStats shows %d never-built failing components, want 1", unhealthyCount)
	}

	// Healing: once B's window turns solvable, the whole engine recovers.
	if err := se.IngestBatch(interleaveRows(correlated, correlated)); err != nil {
		t.Fatal(err)
	}
	res, err = se.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unresolved) != 0 {
		t.Fatalf("recovered Infer still reports Unresolved %v", res.Unresolved)
	}
	if stats := se.Stats(); stats.Degraded || stats.DegradedComponents != 0 {
		t.Fatalf("engine did not recover: %+v", stats)
	}
}

func TestShardedAllComponentsFailingSurfaces(t *testing.T) {
	ctx := context.Background()
	se, _ := twoComponentEngine(t,
		lia.WithWindow(4), lia.WithNegCovPolicy(lia.NegDrop), lia.WithShards(2))
	if err := se.IngestBatch(interleaveRows(antiCorrelated, antiCorrelated)); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Variances(ctx); !errors.Is(err, lia.ErrRebuildFailed) {
		t.Fatalf("total failure = %v, want ErrRebuildFailed", err)
	}
}

func TestShardedColdStartIsNotAFailure(t *testing.T) {
	ctx := context.Background()
	se, _ := twoComponentEngine(t, lia.WithShards(2))
	if err := se.Ingest([]float64{-0.01, -0.02, -0.03, -0.04}); err != nil {
		t.Fatal(err)
	}
	_, err := se.Variances(ctx)
	if !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Fatalf("cold sharded engine = %v, want ErrTooFewSnapshots", err)
	}
	if errors.Is(err, lia.ErrRebuildFailed) {
		t.Fatalf("warm-up wrongly typed as rebuild failure: %v", err)
	}
}
