package lia

// White-box coverage of the rebuild recover path: rebuildPanicHook stands
// in for a panic anywhere inside the Phase-1 solve, proving a poisoned
// rebuild is converted into degraded serving rather than unwinding the
// caller's goroutine.

import (
	"context"
	"strings"
	"testing"
)

func TestEngineRecoversRebuildPanic(t *testing.T) {
	ctx := context.Background()
	rm, err := NewTopology([]Path{
		{Beacon: 0, Dst: 2, Links: []int{1, 2}},
		{Beacon: 0, Dst: 3, Links: []int{1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	ys := [][]float64{{-0.01, -0.01}, {-0.04, -0.04}, {-0.02, -0.02}}
	if err := eng.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	good, err := eng.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}

	rebuildPanicHook = func() { panic("solver corrupted") }
	defer func() { rebuildPanicHook = nil }()
	if err := eng.Ingest([]float64{-0.05, -0.03}); err != nil {
		t.Fatal(err)
	}
	served, err := eng.Variances(ctx)
	if err != nil {
		t.Fatalf("panicking rebuild failed the query: %v", err)
	}
	for k := range good {
		if served[k] != good[k] {
			t.Fatalf("link %d: degraded answer %g != last-good %g", k, served[k], good[k])
		}
	}
	st := eng.Stats()
	if !st.Degraded || st.RebuildFailures == 0 {
		t.Fatalf("panic not recorded as degradation: %+v", st)
	}
	if !strings.Contains(st.LastError, "solver corrupted") {
		t.Fatalf("LastError %q lost the panic value", st.LastError)
	}

	// Removing the fault heals the engine on the next query.
	rebuildPanicHook = nil
	if _, err := eng.Variances(ctx); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Degraded || st.StateEpoch != 4 {
		t.Fatalf("engine did not heal after the panic cleared: %+v", st)
	}
}

func TestEngineStrictRebuildPanicSurfaces(t *testing.T) {
	ctx := context.Background()
	rm, err := NewTopology([]Path{{Beacon: 0, Dst: 1, Links: []int{1}}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(rm, WithStrictRebuilds())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch([][]float64{{-0.01}, {-0.02}}); err != nil {
		t.Fatal(err)
	}
	rebuildPanicHook = func() { panic("solver corrupted") }
	defer func() { rebuildPanicHook = nil }()
	if _, err := eng.Variances(ctx); err == nil {
		t.Fatal("strict engine served through a panicking rebuild")
	} else if !strings.Contains(err.Error(), "solver corrupted") {
		t.Fatalf("error %v lost the panic value", err)
	}
}
