package lia_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"lia/internal/baseline"
	"lia/internal/core"
	"lia/internal/emunet"
	"lia/internal/experiments"
	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

// TestFullPipelineSimulated is the repository's canonical integration test:
// topology generation → routing → packet simulation → Phase 1 → Phase 2 →
// evaluation, on a mesh with multiple beacons.
func TestFullPipelineSimulated(t *testing.T) {
	rng := rand.New(rand.NewPCG(1234, 0))
	network := topogen.BarabasiAlbert(rng, 150, 2)
	hosts := topogen.SelectHosts(rng, network, 8)
	paths := topogen.Routes(network, hosts, hosts)
	paths, _ = topology.RemoveFluttering(paths)
	rm, err := topology.Build(paths)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Identifiable(rm) {
		t.Fatal("mesh not identifiable")
	}

	scen := lossmodel.NewScenario(lossmodel.Config{Model: lossmodel.LLRD1, Fraction: 0.1}, rng, rm.NumLinks())
	sim := netsim.New(rm, netsim.Config{Probes: 1000, Seed: 55, Mode: netsim.ModeExact})
	lia := core.New(rm, core.Options{})
	for s := 0; s < 50; s++ {
		if s > 0 {
			scen.Advance()
		}
		lia.AddSnapshot(sim.Run(scen.Rates()).LogRates())
	}
	scen.Advance()
	truthRates := append([]float64(nil), scen.Rates()...)
	snap := sim.Run(truthRates)
	res, err := lia.Infer(snap.LogRates())
	if err != nil {
		t.Fatal(err)
	}

	truth := make([]bool, rm.NumLinks())
	for k, q := range truthRates {
		truth[k] = q > lossmodel.Threshold
	}
	gate := core.VarGateAt(lossmodel.Threshold, 1000)
	det := stats.Detect(truth, res.CongestedGated(lossmodel.Threshold+0.0005, gate))
	if det.DR < 0.9 {
		t.Errorf("integration DR = %.3f", det.DR)
	}
	if det.FPR > 0.3 {
		t.Errorf("integration FPR = %.3f", det.FPR)
	}
	// Inferred rates of kept links must track the realized rates closely.
	for _, k := range res.Kept {
		if math.Abs(res.LossRates[k]-snap.LinkRealized[k]) > 0.02 {
			t.Errorf("link %d: inferred %.4f vs realized %.4f",
				k, res.LossRates[k], snap.LinkRealized[k])
		}
	}
	// And LIA must beat SCFS on the same snapshot.
	scfs := baseline.GreedyCover(rm, baseline.PathStatus(rm, snap.Frac, lossmodel.Threshold))
	sdet := stats.Detect(truth, scfs)
	if det.DR < sdet.DR-0.05 {
		t.Errorf("LIA DR %.3f worse than SCFS %.3f", det.DR, sdet.DR)
	}
}

// TestFullPipelineOverlay runs the miniature Section 7 pipeline over real
// UDP sockets: deploy, discover, probe, infer, cross-validate.
func TestFullPipelineOverlay(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 0))
	network := topogen.PlanetLabLike(rng, 8, 2)
	hosts := topogen.SelectHosts(rng, network, 6)
	paths := topogen.Routes(network, hosts, hosts)
	paths, _ = topology.RemoveFluttering(paths)
	// SequentialBeacons makes the run bit-reproducible: with concurrent
	// beacons the interleaving at the shared core socket varies per run, and
	// the 0.8-consistency assertion sat within one validation path of the
	// threshold on unlucky interleavings.
	lab, err := emunet.NewLab(network, paths, emunet.LabConfig{
		Probes:            300,
		Seed:              99,
		Loss:              lossmodel.Config{Fraction: 0.05},
		SequentialBeacons: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	discovered, err := lab.Discover()
	if err != nil {
		t.Fatal(err)
	}
	discovered, _ = topology.RemoveFluttering(discovered)
	if len(discovered) < len(paths)/2 {
		t.Fatalf("discovery kept only %d of %d paths", len(discovered), len(paths))
	}
	rm, err := topology.Build(discovered)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Identifiable(rm) {
		t.Error("discovered topology not identifiable")
	}

	const m = 16
	for s := 0; s <= m; s++ {
		if _, err := lab.RunSnapshot(); err != nil {
			t.Fatalf("snapshot %d: %v", s, err)
		}
	}
	fracs := lab.History()

	// Cross-validation at a tolerance matched to S=300 sampling noise.
	consistent, err := experiments.CrossValidate(discovered, fracs, m, 300, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if consistent < 0.8 {
		t.Errorf("overlay cross-validation consistency %.2f, want ≥ 0.8", consistent)
	}
}

// TestExperimentHarnessSmall exercises every experiment entry point at tiny
// scale so regressions in any runner are caught by `go test ./...` at the
// repository root too.
func TestExperimentHarnessSmall(t *testing.T) {
	cfg := experiments.Config{Scale: 0.12, Runs: 1, Snapshots: 12, Seed: 5}
	if _, err := experiments.Figure5(cfg); err != nil {
		t.Error(err)
	}
	if _, _, err := experiments.Figure6(cfg); err != nil {
		t.Error(err)
	}
	if _, err := experiments.Figure7(cfg); err != nil {
		t.Error(err)
	}
	if _, err := experiments.Table2(cfg); err != nil {
		t.Error(err)
	}
	if _, err := experiments.Figure9(cfg); err != nil {
		t.Error(err)
	}
	if _, err := experiments.Table3(cfg); err != nil {
		t.Error(err)
	}
	if _, _, err := experiments.Figure3(cfg, 40); err != nil {
		t.Error(err)
	}
	if _, err := experiments.CongestionDurations(cfg, 6, 0.01); err != nil {
		t.Error(err)
	}
	if _, err := experiments.RunningTimes(cfg, "planetlab"); err != nil {
		t.Error(err)
	}
}
