package lia_test

// api_test.go exercises the full public pipeline — topology construction,
// snapshot streaming, concurrent inference — using ONLY exported
// identifiers of the root lia package: what an external importer of the
// module can write.

import (
	"context"
	"errors"
	"io"
	"math"
	"sync"
	"testing"

	"lia"
)

// apiTreePaths builds the paths of a complete fanout-ary probing tree of
// the given depth, beacon at the root probing every leaf. Trees satisfy
// T.1/T.2, so Theorem 1 guarantees variance identifiability.
func apiTreePaths(depth, fanout int) []lia.Path {
	var paths []lia.Path
	nextNode, nextLink := 1, 1
	var walk func(node int, trail []int, d int)
	walk = func(node int, trail []int, d int) {
		if d == depth {
			paths = append(paths, lia.Path{Beacon: 0, Dst: node, Links: append([]int(nil), trail...)})
			return
		}
		for c := 0; c < fanout; c++ {
			child := nextNode
			nextNode++
			link := nextLink
			nextLink++
			walk(child, append(trail, link), d+1)
		}
	}
	walk(0, nil, 0)
	return paths
}

func TestPublicAPIFullPipeline(t *testing.T) {
	ctx := context.Background()
	paths, removed := lia.RemoveFluttering(apiTreePaths(3, 3))
	if len(removed) != 0 {
		t.Fatalf("tree paths reported as fluttering: %v", removed)
	}
	rm, err := lia.NewTopology(paths)
	if err != nil {
		t.Fatal(err)
	}
	if rm.NumPaths() != 27 || rm.NumLinks() != 39 {
		t.Fatalf("tree reduced to %d×%d, want 27×39", rm.NumPaths(), rm.NumLinks())
	}
	if !lia.Identifiable(rm) {
		t.Fatal("tree topology must be identifiable (Theorem 1)")
	}
	if got := lia.AugmentedRank(rm); got != rm.NumLinks() {
		t.Fatalf("AugmentedRank = %d, want %d", got, rm.NumLinks())
	}

	eng, err := lia.NewEngine(rm, lia.WithWorkers(2), lia.WithStrategy(lia.StrategyPaperSequential))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CheckIdentifiable(); err != nil {
		t.Fatal(err)
	}

	// Stream a learning campaign from the simulator-backed source.
	src := lia.NewSimSource(rm, lia.SimConfig{Probes: 1000, Seed: 11, CongestedFraction: 0.15})
	const m = 40
	n, err := eng.Consume(ctx, lia.Limit(src, m))
	if err != nil {
		t.Fatal(err)
	}
	if n != m || eng.Snapshots() != m {
		t.Fatalf("consumed %d snapshots, engine has %d, want %d", n, eng.Snapshots(), m)
	}

	// The inference snapshot, with ground truth attached by the source.
	probe, err := src.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Many concurrent inferences against the shared cached state; all must
	// agree bit-for-bit since they solve the same system.
	const inferers = 8
	results := make([]*lia.Result, inferers)
	var wg sync.WaitGroup
	errs := make([]error, inferers)
	for g := 0; g < inferers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = eng.Infer(ctx, probe.Y)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("inferer %d: %v", g, err)
		}
	}
	res := results[0]
	for g := 1; g < inferers; g++ {
		for k := range res.LossRates {
			if res.LossRates[k] != results[g].LossRates[k] {
				t.Fatalf("inferer %d disagrees at link %d", g, k)
			}
		}
	}

	if len(res.Kept)+len(res.Removed) != rm.NumLinks() {
		t.Fatalf("kept %d + removed %d != %d links", len(res.Kept), len(res.Removed), rm.NumLinks())
	}
	for _, k := range res.Removed {
		if res.LossRates[k] != 0 {
			t.Fatalf("eliminated link %d reports loss %g, want 0", k, res.LossRates[k])
		}
	}

	// Inference quality: every solidly congested link (true rate > 0.02)
	// must come out lossy, and the per-link error must stay small.
	detected, congested := 0, 0
	for k, q := range probe.Truth {
		if q > 0.02 {
			congested++
			if res.LossRates[k] > lia.DefaultThreshold {
				detected++
			}
		}
		if e := math.Abs(res.LossRates[k] - q); e > 0.05 {
			t.Fatalf("link %d: inferred %.4f vs true %.4f", k, res.LossRates[k], q)
		}
	}
	if congested == 0 {
		t.Fatal("campaign produced no congested links; seed needs adjusting")
	}
	if detected < congested*3/4 {
		t.Fatalf("detected only %d of %d congested links", detected, congested)
	}

	// The source keeps streaming; a bounded source ends with io.EOF.
	bounded := lia.NewSimSource(rm, lia.SimConfig{Probes: 100, Seed: 3, Snapshots: 2})
	for i := 0; i < 2; i++ {
		if _, err := bounded.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bounded.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("bounded source returned %v, want io.EOF", err)
	}
}

// TestConcurrentIngestInfer hammers one engine from ingesting and
// inferring goroutines simultaneously — the contract the epoch-cached state
// exists for. Run with -race.
func TestConcurrentIngestInfer(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm, lia.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	src := lia.NewSimSource(rm, lia.SimConfig{Probes: 200, Seed: 5})
	if _, err := eng.Consume(ctx, lia.Limit(src, 8)); err != nil {
		t.Fatal(err)
	}
	probe, err := src.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan error, 64)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				snap, err := src.Next(ctx)
				if err != nil {
					fail <- err
					return
				}
				if err := eng.Ingest(snap.Y); err != nil {
					fail <- err
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := eng.Infer(ctx, probe.Y)
				if err != nil {
					fail <- err
					return
				}
				if len(res.LossRates) != rm.NumLinks() {
					fail <- errors.New("short result")
					return
				}
			}
		}()
	}
	// A watcher works the incremental system concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := eng.Watch()
		if err != nil {
			fail <- err
			return
		}
		for i := 0; i < 5; i++ {
			if err := w.Deactivate(i); err != nil {
				fail <- err
				return
			}
			if _, err := w.Variances(); err != nil {
				fail <- err
				return
			}
			if err := w.Reactivate(i); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	if got := eng.Snapshots(); got != 8+30 {
		t.Fatalf("engine absorbed %d snapshots, want %d", got, 8+30)
	}
	if _, err := eng.Infer(ctx, probe.Y); err != nil {
		t.Fatal(err)
	}
}
