package lia_test

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"

	"lia"
)

// collectSnapshots drains n snapshot vectors from a fresh simulator source.
func collectSnapshots(t *testing.T, rm *lia.RoutingMatrix, seed uint64, n int) [][]float64 {
	t.Helper()
	ctx := context.Background()
	src := lia.NewSimSource(rm, lia.SimConfig{Probes: 600, Seed: seed, CongestedFraction: 0.2})
	ys := make([][]float64, 0, n)
	for len(ys) < n {
		snap, err := src.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ys = append(ys, snap.Y)
	}
	return ys
}

// TestEngineWindowMatchesFresh: a WithWindow(n) engine that has ingested a
// long history must produce the same Phase-1 variances as a fresh engine fed
// only the last n snapshots, up to the rounding error of the exact
// reverse-Welford removals.
func TestEngineWindowMatchesFresh(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	const window, total = 40, 130
	ys := collectSnapshots(t, rm, 77, total)

	windowed, err := lia.NewEngine(rm, lia.WithWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range ys {
		if err := windowed.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	if got := windowed.Snapshots(); got != total {
		t.Fatalf("Snapshots = %d, want lifetime count %d", got, total)
	}

	fresh, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.IngestBatch(ys[total-window:]); err != nil {
		t.Fatal(err)
	}

	got, err := windowed.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if d := math.Abs(got[k] - want[k]); d > 1e-12+1e-8*math.Abs(want[k]) {
			t.Fatalf("link %d: windowed variance %g, fresh-last-%d variance %g (Δ=%g)",
				k, got[k], window, want[k], d)
		}
	}
}

// TestEngineWindowTracksRegimeChange: after a congestion regime change that
// fills the window, the windowed engine's variance ordering reflects the new
// regime while staying a valid Phase-1 input (inference still works).
func TestEngineWindowTracksRegimeChange(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm, lia.WithWindow(30))
	if err != nil {
		t.Fatal(err)
	}
	// Two campaigns with different seeds → different congested link sets.
	old := collectSnapshots(t, rm, 5, 60)
	cur := collectSnapshots(t, rm, 6, 60)
	if err := eng.IngestBatch(old); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch(cur); err != nil {
		t.Fatal(err)
	}
	// The window now holds only new-regime snapshots: the engine must agree
	// with a fresh engine over the same 30, and inference must run.
	fresh, _ := lia.NewEngine(rm)
	if err := fresh.IngestBatch(cur[len(cur)-30:]); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if d := math.Abs(got[k] - want[k]); d > 1e-12+1e-8*math.Abs(want[k]) {
			t.Fatalf("link %d: windowed %g vs fresh %g after regime change", k, got[k], want[k])
		}
	}
	if _, err := eng.Infer(ctx, cur[len(cur)-1]); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDecayOneMatchesDefault: WithDecay(1) is the cumulative engine,
// bit for bit.
func TestEngineDecayOneMatchesDefault(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	ys := collectSnapshots(t, rm, 9, 40)
	decayed, err := lia.NewEngine(rm, lia.WithDecay(1))
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := lia.NewEngine(rm)
	if err := decayed.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	if err := plain.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	a, err := decayed.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("link %d: WithDecay(1) %g != default %g", k, a[k], b[k])
		}
	}
}

// TestEngineDecaySmoke: a λ < 1 engine stays solvable and inferable.
func TestEngineDecaySmoke(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm, lia.WithDecay(0.97))
	if err != nil {
		t.Fatal(err)
	}
	ys := collectSnapshots(t, rm, 15, 80)
	if err := eng.IngestBatch(ys); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(ctx, ys[len(ys)-1]); err != nil {
		t.Fatal(err)
	}
}

// TestMomentOptionValidation: invalid window/decay configurations fail at
// construction, not at first use.
func TestMomentOptionValidation(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string][]lia.Option{
		"window-1":     {lia.WithWindow(1)},
		"decay-0":      {lia.WithDecay(0)},
		"decay-1.5":    {lia.WithDecay(1.5)},
		"window+decay": {lia.WithWindow(10), lia.WithDecay(0.9)},
	} {
		if _, err := lia.NewEngine(rm, opts...); err == nil {
			t.Fatalf("%s: NewEngine accepted an invalid moment configuration", name)
		}
	}
}

// failAfterSource yields n snapshots from the wrapped source, then a
// non-EOF error.
type failAfterSource struct {
	src  lia.SnapshotSource
	left int
}

var errSourceBroke = errors.New("source broke")

func (f *failAfterSource) Next(ctx context.Context) (lia.Snapshot, error) {
	if f.left <= 0 {
		return lia.Snapshot{}, errSourceBroke
	}
	f.left--
	return f.src.Next(ctx)
}

// TestConsumeBatchingMatchesIngestLoop: the batched Consume must fold the
// same snapshots in the same order as a per-snapshot Ingest loop — same
// count, bitwise-same variances — including when the stream length is not a
// multiple of the batch size, and must flush the buffered prefix when the
// source fails mid-stream.
func TestConsumeBatchingMatchesIngestLoop(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	const total = 150 // 2×64 + 22: exercises full and partial batches
	ys := collectSnapshots(t, rm, 33, total)

	consumed, _ := lia.NewEngine(rm)
	if n, err := consumed.Consume(ctx, lia.NewSliceSource(ys)); err != nil || n != total {
		t.Fatalf("Consume = (%d, %v), want (%d, nil)", n, err, total)
	}
	looped, _ := lia.NewEngine(rm)
	for _, y := range ys {
		if err := looped.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	if consumed.Snapshots() != looped.Snapshots() {
		t.Fatalf("Snapshots: consumed %d, looped %d", consumed.Snapshots(), looped.Snapshots())
	}
	a, err := consumed.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := looped.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("link %d: batched Consume %g != Ingest loop %g", k, a[k], b[k])
		}
	}

	// A mid-stream failure (not at a batch boundary) must still fold the
	// snapshots read so far.
	broken, _ := lia.NewEngine(rm)
	n, err := broken.Consume(ctx, &failAfterSource{src: lia.NewSliceSource(ys), left: 70})
	if !errors.Is(err, errSourceBroke) {
		t.Fatalf("Consume error = %v, want errSourceBroke", err)
	}
	if n != 70 || broken.Snapshots() != 70 {
		t.Fatalf("Consume flushed (%d, %d snapshots), want 70", n, broken.Snapshots())
	}
	_ = io.EOF // (EOF path covered by the happy case above)
}
