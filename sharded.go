package lia

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lia/internal/topology"
)

// Inferencer is the behavioural surface shared by Engine and ShardedEngine:
// everything a serving layer needs to stream learning data in and query
// estimates out, without caring whether the topology runs as one solver or
// as many. New returns the right implementation for a routing matrix.
type Inferencer interface {
	// RoutingMatrix returns the (global) matrix the engine operates on.
	RoutingMatrix() *RoutingMatrix
	// Snapshots returns the lifetime number of learning snapshots ingested.
	Snapshots() int
	// Threshold returns the effective congestion threshold tl.
	Threshold() float64
	// Ingest folds one learning snapshot of per-path observations.
	Ingest(y []float64) error
	// IngestBatch folds a batch of snapshots atomically.
	IngestBatch(ys [][]float64) error
	// Consume drains a source, ingesting every snapshot it yields.
	Consume(ctx context.Context, src SnapshotSource) (int, error)
	// Infer runs Phase 2 on one observation vector.
	Infer(ctx context.Context, y []float64) (*Result, error)
	// InferCongested runs Infer and classifies links against Threshold.
	InferCongested(ctx context.Context, y []float64) ([]bool, *Result, error)
	// Variances returns the Phase-1 per-link variance estimates.
	Variances(ctx context.Context) ([]float64, error)
	// Eliminated returns the Phase-2 kept/removed partition.
	Eliminated(ctx context.Context) (kept, removed []int, err error)
	// Steady returns one consistent steady-state learning view.
	Steady(ctx context.Context) (*SteadyState, error)
	// Stats reports observability counters.
	Stats() Stats
}

// Interface conformance, checked at compile time.
var (
	_ Inferencer = (*Engine)(nil)
	_ Inferencer = (*ShardedEngine)(nil)
)

// New returns the appropriate inference engine for the routing matrix: a
// ShardedEngine when WithShards requests more than one shard or when — with
// the default WithShards(0) auto policy — the topology splits into several
// link-disjoint components, and a plain Engine otherwise. WithShards(1)
// forces the single unsharded engine regardless of the topology. With
// WithDurability the chosen engine is additionally wrapped in a
// DurableEngine, recovering any previously persisted state first.
func New(rm *RoutingMatrix, options ...Option) (Inferencer, error) {
	if rm == nil {
		return nil, errors.New("lia: nil routing matrix")
	}
	var s settings
	for _, o := range options {
		o(&s)
	}
	inner, err := newInner(rm, &s, options)
	if err != nil {
		return nil, err
	}
	if s.durDir == "" {
		return inner, nil
	}
	return newDurableEngine(inner, s.durDir, s.dur)
}

// newInner picks the plain or sharded implementation for New.
func newInner(rm *RoutingMatrix, s *settings, options []Option) (Inferencer, error) {
	if s.shards < 0 {
		return nil, fmt.Errorf("lia: shard count %d must be non-negative", s.shards)
	}
	if s.shards == 1 {
		return NewEngine(rm, options...)
	}
	part := topology.NewPartition(rm)
	if part.NumComponents() == 1 {
		// One component means the sharded machinery could only add scatter/
		// gather overhead around a single inner engine; the plain Engine is
		// equivalent (bitwise) and strictly cheaper, whatever k was asked.
		return NewEngine(rm, options...)
	}
	return newShardedEngine(rm, part, s, options)
}

// shardComponent is one link-connected component of a sharded engine: an
// inner Engine over the component's own routing matrix plus the index maps
// tying its local rows and columns back to the global ones.
type shardComponent struct {
	eng   *Engine
	paths []int // global path indices (ascending); local row pl = paths[pl]
	links []int // local virtual link kl -> global virtual link

	// scratch and batchScratch are the scatter buffers for serialized
	// ingestion, reused across calls under the sharded engine's ingest lock
	// (the accumulators copy what they need before Ingest/IngestBatch
	// return). batchScratch grows to the largest batch seen.
	scratch      []float64
	batchScratch []float64
	batchSub     [][]float64
}

// scatterBatch scatters a whole batch into the component's cached batch
// buffers and returns the per-snapshot views. Caller must hold the sharded
// engine's ingest lock.
func (sc *shardComponent) scatterBatch(ys [][]float64) [][]float64 {
	np := len(sc.paths)
	if cap(sc.batchScratch) < len(ys)*np {
		sc.batchScratch = make([]float64, len(ys)*np)
		sc.batchSub = make([][]float64, len(ys))
	}
	sub := sc.batchSub[:0]
	for i, y := range ys {
		sub = append(sub, sc.scatter(y, sc.batchScratch[i*np:(i+1)*np]))
	}
	sc.batchSub = sub
	return sub
}

// scatter copies the component's rows out of a global observation vector
// into dst (allocated when nil) and returns it.
func (sc *shardComponent) scatter(y []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(sc.paths))
	}
	for pl, pg := range sc.paths {
		dst[pl] = y[pg]
	}
	return dst
}

// ShardedEngine runs one inference session over a partitioned routing
// matrix: the topology's link-connected components (see topology.Partition)
// each get their own complete solver — accumulator, cached Phase-1
// Gram/Cholesky factorization and Phase-2 elimination cache — and the
// components are grouped into shards that rebuild concurrently. Ingested
// snapshots are scattered to the per-component accumulators; Infer,
// Variances, Eliminated and Steady gather the per-component results back
// into global link order.
//
// Phase 1's moment system and Phase 2's elimination never couple paths that
// share no links, so the decomposition is exact: each component's estimates
// are bitwise-identical to a plain Engine run on that component's paths
// alone. The win is superlinear — a component of n paths contributes
// n(n+1)/2 covariance equations, so k equal components cost k·(n/k)² pair
// work instead of n², and the shards rebuild on separate cores on top.
//
// Construct with NewShardedEngine (or New, which picks sharding
// automatically for disconnected topologies). A ShardedEngine is safe for
// concurrent use under the same contract as Engine.
type ShardedEngine struct {
	rm    *RoutingMatrix
	part  *topology.Partition
	comps []*shardComponent

	// groups holds the component indices of each concurrent rebuild group.
	// It is behind an atomic pointer because dynamic LPT rebalancing (see
	// WithRebalance) swaps in a new grouping between rebuild waves; the
	// group count never changes, only the assignment.
	groups atomic.Pointer[[][]int]

	threshold float64
	window    int
	decay     float64
	rebTheta  float64 // LPT rebalance hysteresis; negative = disabled

	mu        sync.Mutex // serialises ingestion so every component sees the same order
	epoch     atomic.Uint64
	sparsePos []int // IngestSparse scratch: global path -> snapshot position (-1 idle); under mu

	rebMu      sync.Mutex // guards rebCost and regrouping decisions
	rebCost    []float64  // per-component rebuild-cost EWMA (ns); 0 = never measured
	rebalances atomic.Uint64

	// Most-recent-rebuild-wave gauges and the lifetime skip counter behind
	// Stats.DirtyComponents / DirtyShards / SkippedComponents.
	waveDirtyComponents atomic.Int64
	waveDirtyShards     atomic.Int64
	skippedComponents   atomic.Uint64
}

// NewShardedEngine creates a sharded engine over the routing matrix,
// partitioning it into link-connected components and grouping them into at
// most WithShards(k) concurrent rebuild groups (k = 0, the default, sizes
// the group count to GOMAXPROCS; the count never exceeds the number of
// components). All other options apply to every per-component solver
// exactly as they would to a plain Engine.
func NewShardedEngine(rm *RoutingMatrix, options ...Option) (*ShardedEngine, error) {
	if rm == nil {
		return nil, errors.New("lia: nil routing matrix")
	}
	var s settings
	for _, o := range options {
		o(&s)
	}
	if s.shards < 0 {
		return nil, fmt.Errorf("lia: shard count %d must be non-negative", s.shards)
	}
	return newShardedEngine(rm, topology.NewPartition(rm), &s, options)
}

// newShardedEngine assembles the engine from an already-computed partition
// (New hands over the one it used for the auto-shard decision) and the
// resolved settings; options is re-threaded to the per-component engines.
func newShardedEngine(rm *RoutingMatrix, part *topology.Partition, s *settings, options []Option) (*ShardedEngine, error) {
	k := s.shards
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
	}
	e := &ShardedEngine{
		rm:       rm,
		part:     part,
		comps:    make([]*shardComponent, part.NumComponents()),
		rebTheta: s.effectiveRebalance(),
		rebCost:  make([]float64, part.NumComponents()),
	}
	groups := part.Shards(k)
	e.groups.Store(&groups)
	for c := range e.comps {
		sub, links, err := part.ComponentMatrix(c)
		if err != nil {
			return nil, fmt.Errorf("lia: %w", err)
		}
		eng, err := NewEngine(sub, options...)
		if err != nil {
			return nil, err
		}
		e.comps[c] = &shardComponent{
			eng:     eng,
			paths:   part.Component(c).Paths,
			links:   links,
			scratch: make([]float64, sub.NumPaths()),
		}
	}
	e.threshold = e.comps[0].eng.Threshold()
	e.window = e.comps[0].eng.window
	e.decay = e.comps[0].eng.decay
	return e, nil
}

// RoutingMatrix returns the global matrix the engine operates on.
func (e *ShardedEngine) RoutingMatrix() *RoutingMatrix { return e.rm }

// Partition returns the topology decomposition behind the engine.
func (e *ShardedEngine) Partition() *topology.Partition { return e.part }

// NumShards returns the number of concurrent rebuild groups. Rebalancing
// regroups components across the shards but never changes their count.
func (e *ShardedEngine) NumShards() int { return len(*e.groups.Load()) }

// ShardGroups returns the current component-index grouping of the rebuild
// shards — one slice of component indices per concurrent group, in the
// order dynamic rebalancing last left them. The result is a copy.
func (e *ShardedEngine) ShardGroups() [][]int {
	cur := *e.groups.Load()
	out := make([][]int, len(cur))
	for i, g := range cur {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// NumComponents returns the number of link-connected components.
func (e *ShardedEngine) NumComponents() int { return len(e.comps) }

// Snapshots returns the lifetime number of learning snapshots ingested.
// Full snapshots scatter to every component; IngestSparse snapshots count
// once here but advance only the components they cover, so per-component
// counts can trail this value on sparse streams.
func (e *ShardedEngine) Snapshots() int { return int(e.epoch.Load()) }

// Threshold returns the effective congestion threshold tl.
func (e *ShardedEngine) Threshold() float64 { return e.threshold }

// Ingest folds one learning snapshot, scattering its rows to every
// component's accumulator. Safe for concurrent use; concurrent ingests
// serialise so all components observe the same snapshot order.
func (e *ShardedEngine) Ingest(y []float64) error {
	if err := checkDim(e.rm, y); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, sc := range e.comps {
		if err := sc.eng.Ingest(sc.scatter(y, sc.scratch)); err != nil {
			return err // unreachable: dimensions hold by construction
		}
	}
	e.epoch.Add(1)
	return nil
}

// IngestBatch folds a batch of snapshots under one serialisation point. All
// vectors are validated against the global matrix before any is folded, so
// a dimension error leaves every component's moments untouched.
func (e *ShardedEngine) IngestBatch(ys [][]float64) error {
	for i, y := range ys {
		if err := checkDim(e.rm, y); err != nil {
			return fmt.Errorf("lia: batch snapshot %d of %d (0 ingested): %w", i, len(ys), err)
		}
	}
	if len(ys) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, sc := range e.comps {
		if err := sc.eng.IngestBatch(sc.scatterBatch(ys)); err != nil {
			return err // unreachable: dimensions hold by construction
		}
	}
	e.epoch.Add(uint64(len(ys)))
	return nil
}

// Consume pulls snapshots from a source until it is exhausted or the
// context is cancelled, with the same batching semantics as Engine.Consume.
func (e *ShardedEngine) Consume(ctx context.Context, src SnapshotSource) (int, error) {
	return consumeSource(ctx, src, e.rm, e.IngestBatch)
}

// SparseIngester is the optional component-granular ingestion surface:
// engines that can fold snapshots covering only part of the topology
// implement it (Engine requires full coverage, ShardedEngine accepts any
// union of complete components). Callers holding an Inferencer type-assert
// for it; wrappers that cannot journal sparse folds (DurableEngine's WAL
// records whole snapshots) deliberately do not implement it.
type SparseIngester interface {
	// IngestSparse folds one snapshot covering exactly the named global
	// paths (strictly ascending). Coverage must be a union of complete
	// link-connected components; ErrPartialComponent otherwise.
	IngestSparse(paths []int, y []float64) error
}

// Interface conformance, checked at compile time.
var (
	_ SparseIngester = (*Engine)(nil)
	_ SparseIngester = (*ShardedEngine)(nil)
)

// IngestSparse folds one learning snapshot that covers only part of the
// topology: paths holds strictly ascending global path indices and y the
// matching observations, and together they must cover the union of complete
// link-connected components — each component is either fully present or
// entirely absent (anything else returns ErrPartialComponent with nothing
// ingested anywhere). Only the covered components' moments and epochs
// advance; at the next rebuild wave every untouched component skips its
// Phase-1 solve and serves its cached state — variances, elimination and
// all — bitwise unchanged. This is the O(delta) steady-state ingest path:
// an epoch where k of K components saw traffic rebuilds only those k.
//
// The global Snapshots count advances by one per sparse snapshot, like any
// other ingest; per-component counts advance only where covered, so
// gathered Epochs report the oldest covered state as usual.
func (e *ShardedEngine) IngestSparse(paths []int, y []float64) error {
	if err := checkSparse(e.rm, paths, y); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sparsePos == nil {
		e.sparsePos = make([]int, e.rm.NumPaths())
		for i := range e.sparsePos {
			e.sparsePos[i] = -1
		}
	}
	pos := e.sparsePos
	for i, p := range paths {
		pos[p] = i
	}
	defer func() {
		for _, p := range paths {
			pos[p] = -1
		}
	}()
	// Validate coverage for every component before folding into any, so a
	// partial snapshot leaves all moments untouched.
	covered := make([]bool, len(e.comps))
	for c, sc := range e.comps {
		n := 0
		for _, pg := range sc.paths {
			if pos[pg] >= 0 {
				n++
			}
		}
		switch {
		case n == 0:
		case n == len(sc.paths):
			covered[c] = true
		default:
			return fmt.Errorf("lia: sparse snapshot covers %d of %d paths of component %d: %w",
				n, len(sc.paths), c, ErrPartialComponent)
		}
	}
	for c, sc := range e.comps {
		if !covered[c] {
			continue
		}
		dst := sc.scratch
		for pl, pg := range sc.paths {
			dst[pl] = y[pos[pg]]
		}
		if err := sc.eng.Ingest(dst); err != nil {
			return err // unreachable: dimensions hold by construction
		}
	}
	e.epoch.Add(1)
	return nil
}

// runComponents runs fn for every component, fanning the shards out on
// their own goroutines; components within a shard run sequentially, which
// is what bounds rebuild concurrency at the shard count. The returned
// slice holds each component's error (nil on success) in component-index
// order, deterministically.
func (e *ShardedEngine) runComponents(fn func(c int, sc *shardComponent) error) []error {
	groups := *e.groups.Load()
	before := make([]uint64, len(e.comps))
	for c, sc := range e.comps {
		before[c] = sc.eng.rebuilds.Load()
	}
	errs := make([]error, len(e.comps))
	if len(groups) == 1 {
		for _, c := range groups[0] {
			errs[c] = fn(c, e.comps[c])
		}
	} else {
		var wg sync.WaitGroup
		for _, shard := range groups {
			wg.Add(1)
			go func(shard []int) {
				defer wg.Done()
				for _, c := range shard {
					errs[c] = fn(c, e.comps[c])
				}
			}(shard)
		}
		wg.Wait()
	}
	e.observeWave(groups, before)
	return errs
}

// observeWave inspects which components rebuilt during one runComponents
// pass: it publishes the dirty-component and dirty-shard gauges, counts the
// untouched components that skipped Phase-1 outright, refreshes the
// rebuild-cost EWMAs and gives the LPT rebalancer a chance to regroup.
// Passes where nothing rebuilt (warm gathers over unchanged epochs) leave
// everything untouched, so the gauges always describe the most recent wave
// that did rebuild work.
func (e *ShardedEngine) observeWave(groups [][]int, before []uint64) {
	dirty := 0
	var rebuilt []bool
	for c, sc := range e.comps {
		if sc.eng.rebuilds.Load() > before[c] {
			if rebuilt == nil {
				rebuilt = make([]bool, len(e.comps))
			}
			rebuilt[c] = true
			dirty++
		}
	}
	if dirty == 0 {
		return
	}
	dirtyGroups := 0
	for _, g := range groups {
		for _, c := range g {
			if rebuilt[c] {
				dirtyGroups++
				break
			}
		}
	}
	e.waveDirtyComponents.Store(int64(dirty))
	e.waveDirtyShards.Store(int64(dirtyGroups))
	e.skippedComponents.Add(uint64(len(e.comps) - dirty))
	e.maybeRebalance(groups, rebuilt)
}

// rebalanceEWMA is the smoothing factor of the per-component rebuild-cost
// estimate: cost ← 0.7·cost + 0.3·observed. Heavy smoothing so one outlier
// rebuild (a cold factorization, a GC pause) cannot flip the layout.
const rebalanceEWMA = 0.7

// maybeRebalance updates the measured per-component rebuild costs from the
// wave that just finished and re-groups the components across the rebuild
// shards when a fresh LPT grouping over those costs would cut the estimated
// critical path of a wave by more than the hysteresis fraction rebTheta.
// Costs are measured, not static: windowed or decayed moments shifting a
// component's regime (delta folds turning into full folds, elimination
// caches missing) show up in its rebuild durations and eventually in the
// layout. Regrouping moves no component state — accumulators, cached
// factorizations and elimination caches stay put; only the shard assignment
// changes — so results and Checkpoint bytes are identical to a
// never-rebalanced engine.
func (e *ShardedEngine) maybeRebalance(groups [][]int, rebuilt []bool) {
	if e.rebTheta < 0 || len(groups) >= len(e.comps) || len(groups) < 2 {
		return
	}
	e.rebMu.Lock()
	defer e.rebMu.Unlock()
	for c, sc := range e.comps {
		last := float64(sc.eng.lastRebuildNano.Load())
		if last <= 0 {
			continue
		}
		switch {
		case e.rebCost[c] == 0:
			// First measurement (or one recorded before tracking began).
			e.rebCost[c] = last
		case rebuilt[c]:
			e.rebCost[c] = rebalanceEWMA*e.rebCost[c] + (1-rebalanceEWMA)*last
		}
	}
	for _, w := range e.rebCost {
		if w == 0 {
			return // rebalance only once every component has a measured cost
		}
	}
	cand := lptGroups(e.rebCost, len(groups))
	if maxGroupCost(cand, e.rebCost)*(1+e.rebTheta) < maxGroupCost(groups, e.rebCost) {
		e.groups.Store(&cand)
		e.rebalances.Add(1)
	}
}

// lptGroups is longest-processing-time grouping over measured costs:
// components in descending cost order (ties by index) each join the
// currently lightest group (ties by group index). The same deterministic
// heuristic as topology.Partition.Shards, but over observed rebuild
// durations instead of static pair counts.
func lptGroups(cost []float64, k int) [][]int {
	order := make([]int, len(cost))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cost[order[a]] > cost[order[b]] })
	groups := make([][]int, k)
	load := make([]float64, k)
	for _, c := range order {
		g := 0
		for i := 1; i < k; i++ {
			if load[i] < load[g] {
				g = i
			}
		}
		groups[g] = append(groups[g], c)
		load[g] += cost[c]
	}
	return groups
}

// maxGroupCost is the estimated critical path of one rebuild wave under a
// grouping: the heaviest group's total cost — components within a group
// run sequentially, groups run concurrently.
func maxGroupCost(groups [][]int, cost []float64) float64 {
	m := 0.0
	for _, g := range groups {
		t := 0.0
		for _, c := range g {
			t += cost[c]
		}
		if t > m {
			m = t
		}
	}
	return m
}

// forEachComponent is the all-or-nothing variant of runComponents: any
// component error fails the whole pass (errors join in component order).
func (e *ShardedEngine) forEachComponent(fn func(c int, sc *shardComponent) error) error {
	return errors.Join(e.runComponents(fn)...)
}

// gatherError decides the fate of a tolerant gather from its per-component
// errors: caller cancellation always propagates, and a gather where every
// component failed has nothing to serve, so the joined error surfaces
// (preserving ErrTooFewSnapshots cold-start semantics — warm-up is
// synchronized across components, they all fail together). Any other mix
// of failures degrades only the failing components' links.
func gatherError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return errors.Join(errs...)
}

// gatherSteady collects every component's consistent steady-state view,
// concurrently per shard, tolerating per-component failures: a failed
// component's slot stays nil and its error is reported alongside.
func (e *ShardedEngine) gatherSteady(ctx context.Context) ([]*SteadyState, []error, error) {
	states := make([]*SteadyState, len(e.comps))
	errs := e.runComponents(func(c int, sc *shardComponent) error {
		st, err := sc.eng.Steady(ctx)
		states[c] = st
		return err
	})
	if err := gatherError(ctx, errs); err != nil {
		return nil, nil, err
	}
	return states, errs, nil
}

// globalEpoch reduces per-component state epochs to the global epoch the
// gathered view represents: the minimum, i.e. the oldest state any
// component served (they only diverge under concurrent ingestion).
func globalEpoch(epochs []int) int {
	min := epochs[0]
	for _, e := range epochs[1:] {
		if e < min {
			min = e
		}
	}
	return min
}

// Infer runs Phase 2 on one snapshot of per-path observations: each shard
// solves its components' reduced systems concurrently, then the per-link
// results gather back into global link order. Eliminated links report 0,
// exactly as with Engine.Infer.
//
// Component failures are isolated: a component whose solve fails (one that
// never built a Phase-1 state, or a strict engine in a bad regime) degrades
// only its own links — they report zero, join neither Kept nor Removed, and
// are listed in Result.Unresolved — while every healthy component's values
// stay bitwise what they would be with no failure anywhere. Only a gather
// in which every component fails returns an error.
func (e *ShardedEngine) Infer(ctx context.Context, y []float64) (*Result, error) {
	if err := checkDim(e.rm, y); err != nil {
		return nil, err
	}
	results := make([]*Result, len(e.comps))
	errs := e.runComponents(func(c int, sc *shardComponent) error {
		res, err := sc.eng.Infer(ctx, sc.scatter(y, nil))
		results[c] = res
		return err
	})
	if err := gatherError(ctx, errs); err != nil {
		return nil, err
	}
	nc := e.rm.NumLinks()
	out := &Result{
		LossRates: make([]float64, nc),
		LogRates:  make([]float64, nc),
		Variances: make([]float64, nc),
	}
	var epochs []int
	for c, res := range results {
		links := e.comps[c].links
		if errs[c] != nil {
			out.Unresolved = append(out.Unresolved, links...)
			continue
		}
		for kl, kg := range links {
			out.LossRates[kg] = res.LossRates[kl]
			out.LogRates[kg] = res.LogRates[kl]
			out.Variances[kg] = res.Variances[kl]
		}
		for _, kl := range res.Kept {
			out.Kept = append(out.Kept, links[kl])
		}
		for _, kl := range res.Removed {
			out.Removed = append(out.Removed, links[kl])
		}
		epochs = append(epochs, res.Epoch)
	}
	sort.Ints(out.Kept)
	sort.Ints(out.Removed)
	sort.Ints(out.Unresolved)
	out.Epoch = globalEpoch(epochs)
	return out, nil
}

// InferCongested runs Infer and classifies every virtual link against the
// engine's congestion threshold.
func (e *ShardedEngine) InferCongested(ctx context.Context, y []float64) ([]bool, *Result, error) {
	res, err := e.Infer(ctx, y)
	if err != nil {
		return nil, nil, err
	}
	return res.Congested(e.threshold), res, nil
}

// Steady returns the steady-state learning view gathered across all
// components, in global link order. Per-component fields are mutually
// consistent; the Epoch is the oldest healthy component state in the view.
// Failed components degrade only their own links (zero variances, listed
// in Unresolved — see Infer); only a total failure returns an error.
func (e *ShardedEngine) Steady(ctx context.Context) (*SteadyState, error) {
	states, errs, err := e.gatherSteady(ctx)
	if err != nil {
		return nil, err
	}
	out := &SteadyState{Variances: make([]float64, e.rm.NumLinks())}
	var epochs []int
	for c, st := range states {
		links := e.comps[c].links
		if errs[c] != nil {
			out.Unresolved = append(out.Unresolved, links...)
			continue
		}
		for kl, v := range st.Variances {
			out.Variances[links[kl]] = v
		}
		for _, kl := range st.Kept {
			out.Kept = append(out.Kept, links[kl])
		}
		for _, kl := range st.Removed {
			out.Removed = append(out.Removed, links[kl])
		}
		epochs = append(epochs, st.Epoch)
	}
	sort.Ints(out.Kept)
	sort.Ints(out.Removed)
	sort.Ints(out.Unresolved)
	out.Epoch = globalEpoch(epochs)
	return out, nil
}

// Variances returns the Phase-1 per-link variance estimates in global link
// order, rebuilding stale components (concurrently per shard) first. A
// failed component's links report zero, with every healthy component's
// estimates bitwise unaffected; use Steady or Stats to see which links are
// unresolved. Only a total failure returns an error.
func (e *ShardedEngine) Variances(ctx context.Context) ([]float64, error) {
	out := make([]float64, e.rm.NumLinks())
	errs := e.runComponents(func(c int, sc *shardComponent) error {
		vars, err := sc.eng.Variances(ctx)
		if err != nil {
			return err
		}
		for kl, v := range vars {
			out[sc.links[kl]] = v
		}
		return nil
	})
	if err := gatherError(ctx, errs); err != nil {
		return nil, err
	}
	return out, nil
}

// Eliminated returns the Phase-2 kept/removed partition in global link
// order. A failed component's links appear in neither slice (they are
// unresolved — see Steady).
func (e *ShardedEngine) Eliminated(ctx context.Context) (kept, removed []int, err error) {
	st, err := e.Steady(ctx)
	if err != nil {
		return nil, nil, err
	}
	return st.Kept, st.Removed, nil
}

// CheckIdentifiable verifies identifiability component by component; the
// whole matrix is identifiable exactly when every component is (the
// augmented matrix is block-diagonal across components).
func (e *ShardedEngine) CheckIdentifiable() error {
	return e.forEachComponent(func(c int, sc *shardComponent) error {
		if err := sc.eng.CheckIdentifiable(); err != nil {
			return fmt.Errorf("component %d: %w", c, err)
		}
		return nil
	})
}

// Stats aggregates the observability counters across components: Rebuilds,
// ElimReuses and RebuildFailures sum, StateEpoch is the oldest component
// state (-1 before every component rebuilt once), LastRebuild is the
// slowest component's most recent rebuild — the wall-clock floor of a full
// sharded rebuild — and the degradation surface reports componentwise:
// Degraded is true while any component is unhealthy, DegradedComponents
// counts them, LastError/LastFailure carry the most recent component
// failure, and StateAge is the stalest served component state. The
// steady-state surface reads componentwise too: DeltaRebuilds sums the
// per-component incremental RHS folds, DirtyComponents/DirtyShards describe
// the most recent wave that rebuilt anything, and SkippedComponents counts
// the lifetime Phase-1 solves avoided on untouched components. Use
// ComponentStats for the per-component breakdown.
func (e *ShardedEngine) Stats() Stats {
	s := Stats{
		Snapshots:         int(e.epoch.Load()),
		StateEpoch:        -1,
		Window:            e.window,
		Decay:             e.decay,
		Shards:            e.NumShards(),
		Components:        len(e.comps),
		DirtyComponents:   int(e.waveDirtyComponents.Load()),
		DirtyShards:       int(e.waveDirtyShards.Load()),
		SkippedComponents: e.skippedComponents.Load(),
		Rebalances:        e.rebalances.Load(),
	}
	oldest := -1
	var last time.Duration
	for c, sc := range e.comps {
		cs := sc.eng.Stats()
		s.Rebuilds += cs.Rebuilds
		s.ElimReuses += cs.ElimReuses
		s.RebuildFailures += cs.RebuildFailures
		s.DeltaRebuilds += cs.DeltaRebuilds
		if componentUnhealthy(cs) {
			s.DegradedComponents++
		}
		if cs.LastFailure.After(s.LastFailure) {
			s.LastFailure, s.LastError = cs.LastFailure, cs.LastError
		}
		if cs.StateAge > s.StateAge {
			s.StateAge = cs.StateAge
		}
		if cs.LastRebuild > last {
			last = cs.LastRebuild
		}
		if c == 0 || cs.StateEpoch < oldest {
			oldest = cs.StateEpoch
		}
	}
	s.Degraded = s.DegradedComponents > 0
	s.LastRebuild = last
	s.StateEpoch = oldest
	if s.StateEpoch >= 0 {
		if s.EpochLag = s.Snapshots - s.StateEpoch; s.EpochLag < 0 {
			s.EpochLag = 0 // counters raced; lag is defined non-negative
		}
	} else {
		s.EpochLag = s.Snapshots
	}
	return s
}

// componentUnhealthy classifies one inner engine's stats for the sharded
// degradation surface: serving stale after a failed rebuild (Degraded), or
// failing with nothing built yet (failures recorded, no state epoch).
func componentUnhealthy(cs Stats) bool {
	return cs.Degraded || (cs.StateEpoch < 0 && cs.RebuildFailures > 0)
}

// ComponentStats reports each component's own observability counters, in
// component-index order — the per-component breakdown behind the aggregate
// Stats, for pinpointing which component is degraded and how stale its
// served state is.
func (e *ShardedEngine) ComponentStats() []Stats {
	out := make([]Stats, len(e.comps))
	for c, sc := range e.comps {
		out[c] = sc.eng.Stats()
	}
	return out
}
