// Anomaly: the second Section 8 extension — detecting network anomalies
// from a few vantage points by watching the *learned link variances* drift.
//
// A baseline variance profile is learned over a quiet window. The monitor
// then re-estimates variances over a sliding window; a link whose variance
// jumps by orders of magnitude has changed behaviour (new congestion,
// flapping, rerouting-induced loss) even before its mean loss is large
// enough to flag. The inference is fast (a linear solve), as the paper
// suggests for anomaly detection use.
//
//	go run ./examples/anomaly
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"lia"
	"lia/internal/netsim"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func main() {
	rng := rand.New(rand.NewPCG(31, 0))
	network := topogen.HierarchicalTopDown(rng, 6, 15)
	hosts := topogen.SelectHosts(rng, network, 8)
	paths := topogen.Routes(network, hosts, hosts)
	paths, _ = topology.RemoveFluttering(paths)
	rm, err := lia.NewTopology(paths)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sim := netsim.New(rm, netsim.Config{Probes: 1000, Seed: 5})

	quiet := make([]float64, rm.NumLinks()) // all links healthy
	drawQuiet := func() []float64 {
		for k := range quiet {
			quiet[k] = 0.0005 * rng.Float64()
		}
		return quiet
	}

	// Baseline variance profile over a healthy window.
	const window = 40
	base, err := lia.NewEngine(rm)
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < window; s++ {
		if err := base.Ingest(sim.Run(drawQuiet()).LogRates()); err != nil {
			log.Fatal(err)
		}
	}
	baseVars, err := base.Variances(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Fault injection: one link starts flapping between healthy and lossy.
	victim := rm.NumLinks() / 2
	fmt.Printf("injecting intermittent loss on virtual link %d (members %v)\n\n", victim, rm.Members(victim))
	live, err := lia.NewEngine(rm)
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < window; s++ {
		rates := drawQuiet()
		if s%2 == 0 {
			rates[victim] = 0.05 + 0.1*rng.Float64()
		}
		if err := live.Ingest(sim.Run(rates).LogRates()); err != nil {
			log.Fatal(err)
		}
	}
	liveVars, err := live.Variances(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Alarm on variance ratio. The floor absorbs estimation noise on quiet
	// links.
	const floor = 1e-6
	fmt.Println("link  baseline var  live var   ratio")
	detected, falseAlarms := false, 0
	for k := range liveVars {
		b := maxf(baseVars[k], floor)
		l := maxf(liveVars[k], floor)
		ratio := l / b
		if ratio > 50 {
			fmt.Printf("%4d    %.2e  %.2e  %7.1f  <-- ANOMALY\n", k, b, l, ratio)
			if k == victim {
				detected = true
			} else {
				falseAlarms++
			}
		}
	}
	fmt.Printf("\nvictim detected: %v, false alarms: %d\n", detected, falseAlarms)
	if !detected {
		log.Fatal("anomaly detection failed")
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
