// Anomaly: the second Section 8 extension — detecting network anomalies
// from a few vantage points by watching the *learned link variances* drift.
//
// A baseline variance profile is learned over a quiet window. The monitor
// then re-estimates variances over a sliding window; a link whose variance
// jumps by orders of magnitude has changed behaviour (new congestion,
// flapping, rerouting-induced loss) even before its mean loss is large
// enough to flag. The inference is fast (a linear solve), as the paper
// suggests for anomaly detection use.
//
// The faulty network is an in-process world server (package lia/world): the
// quiet baseline streams from one scenario, and the live stream from a
// second scenario whose schedule flaps the victim link's physical members —
// alternating healthy and lossy phases, the classic intermittent fault.
// Both streams arrive through lia.WorldSource, the same socket path a
// production monitor would use.
//
//	go run ./examples/anomaly
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"lia"
	"lia/internal/topogen"
	"lia/internal/topology"
	"lia/world"
)

func main() {
	rng := rand.New(rand.NewPCG(31, 0))
	network := topogen.HierarchicalTopDown(rng, 6, 15)
	hosts := topogen.SelectHosts(rng, network, 8)
	paths := topogen.Routes(network, hosts, hosts)
	paths, _ = topology.RemoveFluttering(paths)
	rm, err := lia.NewTopology(paths)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// One world server, two scenarios: "baseline" runs the schedule-free
	// quiet regime, "live" gets the flapping fault injected below.
	srv := world.NewServer(world.ServerConfig{World: world.Config{Seed: 5}})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Baseline variance profile over a healthy window.
	const window = 40
	base, err := lia.NewEngine(rm)
	if err != nil {
		log.Fatal(err)
	}
	quiet := lia.NewWorldSource(srv.Addr(), rm, lia.WorldConfig{Scenario: "baseline"})
	if _, err := base.Consume(ctx, lia.Limit(quiet, window)); err != nil {
		log.Fatal(err)
	}
	baseVars, err := base.Variances(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Fault injection: the victim virtual link's physical members start
	// flapping between healthy and lossy every other snapshot. The fault is
	// scheduled on the "live" scenario through the world's control surface
	// before its consumer attaches.
	victim := rm.NumLinks() / 2
	fmt.Printf("injecting intermittent loss on virtual link %d (members %v)\n\n", victim, rm.Members(victim))
	physPaths := make([][]int, rm.NumPaths())
	for i := range physPaths {
		physPaths[i] = rm.Path(i).Links
	}
	ctl, err := world.Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	if _, err := ctl.Assign("live", physPaths, 0); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Shift("live", world.Event{
		Kind:   world.KindFlap,
		Tick:   0,
		Links:  rm.Members(victim),
		Period: 2, // lossy on even ticks, healthy on odd — intermittent
		Loss:   0.1,
	}); err != nil {
		log.Fatal(err)
	}

	live, err := lia.NewEngine(rm)
	if err != nil {
		log.Fatal(err)
	}
	faulty := lia.NewWorldSource(srv.Addr(), rm, lia.WorldConfig{Scenario: "live"})
	if _, err := live.Consume(ctx, lia.Limit(faulty, window)); err != nil {
		log.Fatal(err)
	}
	liveVars, err := live.Variances(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Alarm on variance ratio. The floor absorbs estimation noise on quiet
	// links.
	const floor = 1e-6
	fmt.Println("link  baseline var  live var   ratio")
	detected, falseAlarms := false, 0
	for k := range liveVars {
		b := maxf(baseVars[k], floor)
		l := maxf(liveVars[k], floor)
		ratio := l / b
		if ratio > 50 {
			fmt.Printf("%4d    %.2e  %.2e  %7.1f  <-- ANOMALY\n", k, b, l, ratio)
			if k == victim {
				detected = true
			} else {
				falseAlarms++
			}
		}
	}
	fmt.Printf("\nvictim detected: %v, false alarms: %d\n", detected, falseAlarms)
	if !detected {
		log.Fatal("anomaly detection failed")
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
